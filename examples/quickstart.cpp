// Quickstart: the estimation machinery end to end in ~100 lines.
//
//  1. Algorithm 1/2 directly: track a queue, compute Q, λ and the
//     Little's-law delay from two snapshots.
//  2. A full simulated connection: client sends requests, server echoes
//     responses, both ends exchange 36-byte metadata payloads in TCP
//     options, and each side's ConnectionEstimator reports end-to-end
//     latency without either application being instrumented.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build &&
//               ./build/examples/quickstart

#include <cstdio>

#include "src/core/queue_state.h"
#include "src/sim/stats.h"
#include "src/testbed/topology.h"

using namespace e2e;

static void Part1QueueState() {
  std::printf("-- Part 1: Algorithm 1 (TRACK) + Algorithm 2 (GETAVGS) --\n");
  QueueState queue(TimePoint::Zero());

  // The paper's worked example: one item for 10 us, then four for 20 us.
  queue.Track(TimePoint::Zero(), +1);
  queue.Track(TimePoint::FromNanos(10000), +3);           // 1 item for 10 us.
  const QueueSnapshot before = queue.Snapshot();          // (time, total, integral)
  queue.Track(TimePoint::FromNanos(30000), -4);           // 4 items for 20 us.
  const QueueSnapshot after = queue.Snapshot();

  const QueueAverages avgs = GetAvgs(QueueSnapshot{}, after);
  std::printf("  avg occupancy Q        = %.2f items (expected 3: (1*10+4*20)/30)\n",
              avgs.avg_occupancy);
  std::printf("  departure rate lambda  = %.0f items/s\n", avgs.throughput);
  std::printf("  Little's-law delay Q/l = %.2f us\n\n", avgs.delay->ToMicros());
  (void)before;
}

static void Part2FullStack() {
  std::printf("-- Part 2: live estimation over a simulated TCP connection --\n");
  TwoHostTopology topo;  // client host <-> 100 Gbps link <-> server host

  TcpConfig tcp;
  tcp.nodelay = true;
  tcp.e2e_exchange_interval = Duration::Millis(1);  // Metadata every 1 ms.
  ConnectedPair conn = topo.Connect(/*conn_id=*/1, tcp, tcp);

  // Server: read each request, reply with 32 bytes after 5 us of "work".
  conn.b->SetReadableCallback([&] {
    topo.server_host().app_core().Submit(
        [&]() -> Duration {
          return Duration::Micros(5) * static_cast<int64_t>(conn.b->ReadableMessages());
        },
        [&] {
          auto in = conn.b->Recv();
          for (auto& msg : in.messages) {
            MessageRecord reply;
            reply.id = msg.id;
            conn.b->Send(32, std::move(reply));
          }
        });
  });

  // Client: issue a 256-byte request every 50 us, read replies.
  uint64_t next_id = 1;
  std::function<void()> issue = [&] {
    MessageRecord req;
    req.id = next_id++;
    conn.a->Send(256, std::move(req));
    if (next_id <= 2000) {
      topo.sim().Schedule(Duration::Micros(50), issue);
    }
  };
  conn.a->SetReadableCallback([&] {
    topo.client_host().app_core().SubmitFixed(Duration::Micros(1), [&] { conn.a->Recv(); });
  });
  topo.sim().Schedule(Duration::Micros(10), issue);

  // Each estimate refresh (one per metadata exchange) fires this callback.
  RunningStats estimate_us[2];
  conn.a->SetEstimateCallback([&](const ConnectionEstimator& est) {
    if (est.has_estimate()) {
      estimate_us[0].Add(est.estimate().latency->ToMicros());
    }
  });
  conn.b->SetEstimateCallback([&](const ConnectionEstimator& est) {
    if (est.has_estimate()) {
      estimate_us[1].Add(est.estimate().latency->ToMicros());
    }
  });

  topo.sim().RunFor(Duration::Millis(120));

  // Both sides computed estimates purely from the exchanged counters.
  for (TcpEndpoint* side : {conn.a, conn.b}) {
    const RunningStats& stats = estimate_us[side->is_a() ? 0 : 1];
    std::printf("  %s view: end-to-end latency ~ %.1f us over %lld exchange intervals\n",
                side->is_a() ? "client" : "server", stats.mean(),
                static_cast<long long>(stats.count()));
  }
  std::printf("  (request rate 20 kRPS, 5 us service -> stack latency dominated by\n"
              "   wire + wakeups; both views should roughly agree)\n");
}

int main() {
  Part1QueueState();
  Part2FullStack();
  return 0;
}
