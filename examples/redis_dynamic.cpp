// The headline system in action: a Redis-like server under a load ramp with
// the ε-greedy controller toggling Nagle from live end-to-end estimates.
//
// The offered load steps from 15 kRPS (where batching hurts) to 65 kRPS
// (where the no-batching default collapses); a timeline shows the estimate,
// the controller's current setting, and the response/packet coalescing.
//
// Run: ./build/examples/redis_dynamic

#include <cstdio>
#include <functional>
#include <memory>

#include "src/apps/lancet.h"
#include "src/apps/redis_server.h"
#include "src/core/controller.h"
#include "src/testbed/experiment.h"
#include "src/testbed/topology.h"

using namespace e2e;

int main() {
  TwoHostTopology topo(RedisExperimentConfig::DefaultRedisTopology());
  Simulator& sim = topo.sim();

  TcpConfig client_tcp = RedisExperimentConfig::DefaultClientTcp();
  TcpConfig server_tcp = RedisExperimentConfig::DefaultServerTcp();
  ConnectedPair conn = topo.Connect(1, client_tcp, server_tcp);

  RedisServerApp server(&sim, conn.b, RedisServerApp::Config{});

  // Two load phases from one generator: low, then high.
  LancetClient::Config low;
  low.rate_rps = 15000;
  low.warmup = Duration::Millis(50);
  low.measure = Duration::Millis(350);
  LancetClient client_low(&sim, conn.a, low);

  SloThroughputPolicy policy(Duration::Micros(500));
  ControllerConfig controller_config;
  ToggleController controller(controller_config, &policy, Rng(99));

  std::function<void()> tick = [&] {
    std::optional<PerfSample> sample;
    const ConnectionEstimator& est = conn.b->estimator();
    if (est.has_estimate()) {
      sample = PerfSample{*est.estimate().latency, est.estimate().a_send_throughput};
    }
    conn.b->SetNoDelay(!controller.OnTick(sim.Now(), sample));
    sim.Schedule(controller_config.tick, tick);
  };
  sim.Schedule(controller_config.tick, tick);

  uint64_t last_sends = 0;
  uint64_t last_segs = 0;
  std::function<void()> report = [&] {
    const ConnectionEstimator& est = conn.b->estimator();
    const TcpEndpoint::Stats& stats = conn.b->stats();
    const double dsends = static_cast<double>(stats.sends - last_sends);
    const double dsegs = static_cast<double>(stats.data_segments_sent - last_segs);
    std::printf("[%4.0f ms] est latency %7.1f us | nagle %-3s | resp/pkt %4.2f | switches %llu\n",
                sim.Now().ToMicros() / 1000.0,
                est.has_estimate() ? est.estimate().latency->ToMicros() : 0.0,
                conn.b->nodelay() ? "off" : "on", dsegs > 0 ? dsends / dsegs : 0.0,
                static_cast<unsigned long long>(controller.switches()));
    last_sends = stats.sends;
    last_segs = stats.data_segments_sent;
    if (sim.Now() < TimePoint::FromNanos(900000000)) {
      sim.Schedule(Duration::Millis(50), report);
    }
  };
  sim.Schedule(Duration::Millis(50), report);

  std::printf("Phase 1: 15 kRPS (batching should stay mostly OFF)\n");
  client_low.Start();
  sim.RunFor(Duration::Millis(420));

  std::printf("Phase 2: 65 kRPS (controller should switch batching ON)\n");
  LancetClient::Config high = low;
  high.rate_rps = 65000;
  high.seed = 2;
  LancetClient client_high(&sim, conn.a, high);
  client_high.Start();
  sim.RunFor(Duration::Millis(480));

  std::printf("\nPhase 1 measured mean latency: %.1f us over %llu requests\n",
              client_low.results().latency_us.mean(),
              static_cast<unsigned long long>(client_low.results().measured));
  std::printf("Phase 2 measured mean latency: %.1f us over %llu requests\n",
              client_high.results().latency_us.mean(),
              static_cast<unsigned long long>(client_high.results().measured));
  std::printf("Controller: %llu switches, %llu explorations\n",
              static_cast<unsigned long long>(controller.switches()),
              static_cast<unsigned long long>(controller.explorations()));
  return 0;
}
