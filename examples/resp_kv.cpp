// The protocol substrate on real bytes: encode RESP commands, stream them
// through the incremental parser (in awkward chunk sizes, as TCP would
// deliver them), execute against the in-memory KvStore, and encode replies.
// No simulator involved — this is the codec/store layer that gives the
// simulated workloads their protocol-exact byte counts.
//
// Run: ./build/examples/resp_kv

#include <cstdio>
#include <string>
#include <vector>

#include "src/apps/kv_store.h"
#include "src/apps/resp.h"

using namespace e2e;

namespace {

std::string Execute(KvStore& store, const RespValue& command) {
  if (command.kind != RespValue::Kind::kArray || command.array.empty()) {
    return RespEncodeError("ERR malformed command");
  }
  const std::string& op = command.array[0].str;
  if (op == "SET" && command.array.size() == 3) {
    store.Set(command.array[1].str, command.array[2].str);
    return RespEncodeSimpleString("OK");
  }
  if (op == "GET" && command.array.size() == 2) {
    auto value = store.Get(command.array[1].str);
    return value.has_value() ? RespEncodeBulk(*value) : RespEncodeNullBulk();
  }
  if (op == "DEL" && command.array.size() == 2) {
    return RespEncodeInteger(store.Del(command.array[1].str) ? 1 : 0);
  }
  return RespEncodeError("ERR unknown command '" + op + "'");
}

}  // namespace

int main() {
  KvStore store;
  RespParser parser;

  const std::vector<std::vector<std::string_view>> commands = {
      {"SET", "user:1", "alice"},  {"SET", "user:2", "bob"}, {"GET", "user:1"},
      {"GET", "user:404"},         {"DEL", "user:2"},        {"GET", "user:2"},
      {"HELLO", "there"},
  };

  // Concatenate the encoded commands and feed them to the parser in 7-byte
  // chunks — the parser must handle arbitrary message fragmentation, just
  // like a TCP receiver.
  std::string wire;
  for (const auto& cmd : commands) {
    wire += RespEncodeCommand(cmd);
  }
  std::printf("wire stream: %zu bytes for %zu commands\n\n", wire.size(), commands.size());

  size_t executed = 0;
  for (size_t off = 0; off < wire.size(); off += 7) {
    parser.Feed(std::string_view(wire).substr(off, 7));
    while (auto value = parser.TryParse()) {
      const std::string reply = Execute(store, *value);
      std::printf("cmd %zu -> %s", ++executed, reply.c_str());
      if (reply.back() != '\n') {
        std::printf("\n");
      }
    }
  }

  std::printf("\nstore: %zu keys | %llu sets, %llu gets (%llu hits)\n", store.size(),
              static_cast<unsigned long long>(store.stats().sets),
              static_cast<unsigned long long>(store.stats().gets),
              static_cast<unsigned long long>(store.stats().hits));

  // The size calculators used by the simulator must agree with the encoder.
  const std::string set_cmd = RespEncodeCommand({"SET", std::string(16, 'k'),
                                                 std::string(16384, 'v')});
  std::printf("16 KiB SET command: encoder %zu bytes, calculator %zu bytes (must match)\n",
              set_cmd.size(), RespSetCommandSize(16, 16384));
  return 0;
}
