// The cooperative path (paper §3.3): an RPC-framework-style wrapper that
// calls create()/complete() around each call and passes the hint queue
// state to the stack via send() ancillary data. The server's stack then
// estimates exactly the latency the application perceives — no kernel queue
// monitoring, no semantic gap — which is why the paper suggests the API for
// frameworks like gRPC and Thrift.
//
// The workload is deliberately heterogeneous (tiny pings mixed with bulk
// fetches) — the regime where byte-based estimates mislead but hint-based
// ones stay exact.
//
// Run: ./build/examples/hinted_rpc

#include <cstdio>
#include <deque>
#include <functional>

#include "src/core/hints.h"
#include "src/sim/stats.h"
#include "src/testbed/topology.h"

using namespace e2e;

// A minimal RPC client: Call() stamps create(), the response path stamps
// complete(); the framework owns the HintTracker so applications get
// accurate end-to-end estimation for free.
class RpcClient {
 public:
  RpcClient(Simulator* sim, TcpEndpoint* socket) : sim_(sim), socket_(socket), hints_(sim->Now()) {
    socket_->SetReadableCallback([this] { OnReadable(); });
  }

  void Call(uint64_t request_bytes) {
    hints_.Create(sim_->Now());  // create(1): the call exists from here on.
    MessageRecord record;
    record.id = next_id_++;
    pending_.push_back(sim_->Now());
    socket_->host()->app_core().SubmitFixed(Duration::Nanos(500), [this, request_bytes,
                                                                   record]() mutable {
      socket_->SendWithHints(request_bytes, std::move(record), &hints_);
    });
  }

  const HintTracker& hints() const { return hints_; }
  const RunningStats& true_latency_us() const { return true_latency_us_; }
  uint64_t completed() const { return completed_; }

 private:
  void OnReadable() {
    socket_->host()->app_core().SubmitFixed(Duration::Micros(1), [this] {
      auto in = socket_->Recv();
      for (size_t i = 0; i < in.messages.size(); ++i) {
        hints_.Complete(sim_->Now());  // complete(1): response fully handled.
        if (!pending_.empty()) {
          true_latency_us_.Add((sim_->Now() - pending_.front()).ToMicros());
          pending_.pop_front();
        }
        ++completed_;
      }
    });
  }

  Simulator* sim_;
  TcpEndpoint* socket_;
  HintTracker hints_;
  uint64_t next_id_ = 1;
  std::deque<TimePoint> pending_;
  RunningStats true_latency_us_;
  uint64_t completed_ = 0;
};

int main() {
  TwoHostTopology topo;
  TcpConfig tcp;
  tcp.nodelay = true;
  ConnectedPair conn = topo.Connect(1, tcp, tcp);
  RpcClient rpc(&topo.sim(), conn.a);

  // Server: tiny replies to pings, 16 KiB replies to every 20th call.
  uint64_t served = 0;
  conn.b->SetReadableCallback([&] {
    topo.server_host().app_core().Submit(
        [&]() -> Duration {
          return Duration::Micros(4) * static_cast<int64_t>(conn.b->ReadableMessages());
        },
        [&] {
          auto in = conn.b->Recv();
          for (auto& msg : in.messages) {
            MessageRecord reply;
            reply.id = msg.id;
            conn.b->Send(++served % 20 == 0 ? 16384 : 16, std::move(reply));
          }
        });
  });

  // Issue 5000 calls at 25 kRPS.
  int remaining = 5000;
  std::function<void()> issue = [&] {
    rpc.Call(64);
    if (--remaining > 0) {
      topo.sim().Schedule(Duration::Micros(40), issue);
    }
  };
  topo.sim().Schedule(Duration::Micros(10), issue);
  topo.sim().RunFor(Duration::Millis(400));

  // The server-side estimator received the client's hint queue states via
  // the metadata exchange; compare its view with the client's ground truth.
  const ConnectionEstimator& server_est = conn.b->estimator();
  std::printf("calls completed                 : %llu\n",
              static_cast<unsigned long long>(rpc.completed()));
  std::printf("client ground-truth latency     : %.1f us mean\n", rpc.true_latency_us().mean());
  if (server_est.hint_latency().has_value()) {
    std::printf("server's hint-based estimate    : %.1f us (from create/complete counters)\n",
                server_est.hint_latency()->ToMicros());
    std::printf("server's hint-based throughput  : %.0f calls/s\n", server_est.hint_throughput());
  }
  if (server_est.last_valid_estimate().has_value()) {
    std::printf("server's byte-based estimate    : %.1f us (semantic gap: mixed reply sizes)\n",
                server_est.last_valid_estimate()->latency->ToMicros());
  }
  return 0;
}
