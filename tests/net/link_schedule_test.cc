// Time-varying link coverage: scripted steps rewrite bandwidth, propagation
// and loss; ramp/square-wave builders produce the right step sequences; a
// scheduled bandwidth cut changes serialization for later packets only.

#include "src/net/impair/link_schedule.h"

#include <gtest/gtest.h>

#include <vector>

namespace e2e {
namespace {

class RecordingSink : public PacketSink {
 public:
  explicit RecordingSink(Simulator* sim) : sim_(sim) {}
  void DeliverPacket(Packet packet) override { arrivals.push_back({sim_->Now(), packet.id}); }
  struct Arrival {
    TimePoint when;
    uint64_t id;
  };
  std::vector<Arrival> arrivals;

 private:
  Simulator* sim_;
};

Packet Pkt(uint64_t id, size_t bytes) {
  Packet packet;
  packet.id = id;
  packet.wire_bytes = bytes;
  return packet;
}

TEST(LinkScheduleTest, StepRewritesBandwidthForLaterPackets) {
  Simulator sim;
  Link::Config config;
  config.bandwidth_bps = 1e9;  // 8 ns/byte.
  config.propagation = Duration::Zero();
  Link link(&sim, config, Rng(1), "l");
  RecordingSink sink(&sim);
  link.SetSink(&sink);

  LinkScheduleStep cut;
  cut.at = TimePoint::Zero() + Duration::Micros(50);
  cut.bandwidth_bps = 0.5e9;  // Halve the rate: 16 ns/byte.
  LinkScheduler scheduler(&sim, &link, LinkSchedule::Step(cut));
  scheduler.Start();

  link.Send(Pkt(1, 1000));  // Before the step: 8 us serialization.
  sim.RunFor(Duration::Micros(100));
  link.Send(Pkt(2, 1000));  // After the step: 16 us serialization.
  sim.Run();

  ASSERT_EQ(sink.arrivals.size(), 2u);
  EXPECT_EQ(sink.arrivals[0].when, TimePoint::FromNanos(8000));
  EXPECT_EQ(sink.arrivals[1].when, TimePoint::FromNanos(100000 + 16000));
  EXPECT_EQ(scheduler.steps_applied(), 1u);
  EXPECT_DOUBLE_EQ(link.bandwidth_bps(), 0.5e9);
}

TEST(LinkScheduleTest, StepRewritesPropagationAndLoss) {
  Simulator sim;
  Link::Config config;
  config.bandwidth_bps = 0;
  config.propagation = Duration::Micros(1);
  Link link(&sim, config, Rng(1), "l");
  RecordingSink sink(&sim);
  link.SetSink(&sink);

  LinkScheduleStep step;
  step.at = TimePoint::Zero() + Duration::Micros(10);
  step.propagation = Duration::Micros(5);
  step.loss_probability = 0.999999;  // Effectively drop everything after.
  LinkScheduler scheduler(&sim, &link, LinkSchedule::Step(step));
  scheduler.Start();

  link.Send(Pkt(1, 100));
  sim.RunFor(Duration::Micros(20));
  for (int i = 0; i < 50; ++i) {
    link.Send(Pkt(2 + i, 100));
  }
  sim.Run();

  ASSERT_EQ(sink.arrivals.size(), 1u);  // Everything after the step is lost.
  EXPECT_EQ(sink.arrivals[0].when, TimePoint::FromNanos(1000));
  EXPECT_EQ(link.propagation(), Duration::Micros(5));
  EXPECT_GE(link.packets_dropped(), 49u);
}

TEST(LinkScheduleTest, RampInterpolatesLinearly) {
  LinkScheduleStep from;
  from.bandwidth_bps = 10e9;
  from.loss_probability = 0.0;
  LinkScheduleStep to;
  to.bandwidth_bps = 2e9;
  to.loss_probability = 0.4;
  const LinkSchedule ramp =
      LinkSchedule::Ramp(TimePoint::Zero() + Duration::Millis(1), Duration::Millis(4), 4, from, to);
  ASSERT_EQ(ramp.steps.size(), 4u);
  EXPECT_EQ(ramp.steps[0].at, TimePoint::Zero() + Duration::Millis(2));
  EXPECT_DOUBLE_EQ(*ramp.steps[0].bandwidth_bps, 8e9);
  EXPECT_DOUBLE_EQ(*ramp.steps[0].loss_probability, 0.1);
  EXPECT_DOUBLE_EQ(*ramp.steps[1].bandwidth_bps, 6e9);
  EXPECT_DOUBLE_EQ(*ramp.steps[3].bandwidth_bps, 2e9);  // Lands exactly on `to`.
  EXPECT_DOUBLE_EQ(*ramp.steps[3].loss_probability, 0.4);
  EXPECT_FALSE(ramp.steps[0].propagation.has_value());  // Unset in both ends.
}

TEST(LinkScheduleTest, SquareWaveAlternatesLoHi) {
  LinkScheduleStep lo;
  lo.bandwidth_bps = 1e9;
  LinkScheduleStep hi;
  hi.bandwidth_bps = 10e9;
  const LinkSchedule wave = LinkSchedule::SquareWave(TimePoint::Zero() + Duration::Millis(10),
                                                     Duration::Millis(5), 4, lo, hi);
  ASSERT_EQ(wave.steps.size(), 4u);
  EXPECT_EQ(wave.steps[0].at, TimePoint::Zero() + Duration::Millis(10));
  EXPECT_EQ(wave.steps[1].at, TimePoint::Zero() + Duration::Millis(15));
  EXPECT_DOUBLE_EQ(*wave.steps[0].bandwidth_bps, 1e9);
  EXPECT_DOUBLE_EQ(*wave.steps[1].bandwidth_bps, 10e9);
  EXPECT_DOUBLE_EQ(*wave.steps[2].bandwidth_bps, 1e9);
  EXPECT_DOUBLE_EQ(*wave.steps[3].bandwidth_bps, 10e9);
}

TEST(LinkScheduleTest, PastStepsApplyImmediatelyAtStart) {
  Simulator sim;
  Link::Config config;
  config.bandwidth_bps = 1e9;
  Link link(&sim, config, Rng(1), "l");

  sim.RunFor(Duration::Millis(1));  // Now = 1 ms.
  LinkScheduleStep past;
  past.at = TimePoint::Zero() + Duration::Micros(10);
  past.bandwidth_bps = 4e9;
  LinkScheduler scheduler(&sim, &link, LinkSchedule::Step(past));
  scheduler.Start();
  EXPECT_DOUBLE_EQ(link.bandwidth_bps(), 4e9);
  EXPECT_EQ(scheduler.steps_applied(), 1u);
}

}  // namespace
}  // namespace e2e
