#include "src/net/nic.h"

#include <gtest/gtest.h>

#include <vector>

namespace e2e {
namespace {

struct NicFixture {
  NicFixture(const Nic::Config& config = Nic::Config{}, const Link::Config& link_config = {})
      : softirq(&sim, "sirq"), link(&sim, link_config, Rng(1), "l"),
        nic(&sim, &softirq, &link, config, "nic") {}

  Simulator sim;
  CpuCore softirq;
  Link link;
  Nic nic;
};

Packet Pkt(uint64_t id, size_t bytes) {
  Packet packet;
  packet.id = id;
  packet.wire_bytes = bytes;
  return packet;
}

TEST(NicTest, TxCompletionFiresAfterSerialization) {
  Link::Config link_config;
  link_config.bandwidth_bps = 1e9;  // 8 us for 1000B.
  NicFixture f(Nic::Config{}, link_config);
  size_t completions = 0;
  f.nic.SetTxCompleteHandler([&](size_t n) { completions += n; });
  f.nic.Transmit(Pkt(1, 1000));
  EXPECT_EQ(f.nic.tx_in_flight(), 1u);
  f.sim.Run();
  EXPECT_EQ(f.nic.tx_in_flight(), 0u);
  EXPECT_EQ(completions, 1u);
}

TEST(NicTest, TxRingLimitsInFlightSegments) {
  Nic::Config config;
  config.tx_ring_size = 2;
  Link::Config link_config;
  link_config.bandwidth_bps = 1e6;  // Slow: completions far away.
  NicFixture f(config, link_config);
  EXPECT_TRUE(f.nic.Transmit(Pkt(1, 1000)));
  EXPECT_TRUE(f.nic.Transmit(Pkt(2, 1000)));
  EXPECT_FALSE(f.nic.Transmit(Pkt(3, 1000)));  // Ring full.
  f.sim.Run();
  EXPECT_TRUE(f.nic.Transmit(Pkt(3, 1000)));  // Freed by completions.
}

TEST(NicTest, SuperSegmentSlicesGoOnTheWireIndividually) {
  NicFixture f;
  Packet super = Pkt(10, 3000);
  for (int i = 0; i < 3; ++i) {
    super.slices.push_back(Pkt(11 + i, 1000));
  }
  f.nic.Transmit(std::move(super));
  f.sim.Run();
  EXPECT_EQ(f.link.packets_sent(), 3u);       // Slices, not the super-seg.
  EXPECT_EQ(f.nic.tx_segments(), 1u);         // One descriptor...
  EXPECT_EQ(f.nic.tx_wire_packets(), 3u);     // ...three wire packets.
}

TEST(NicTest, RxDeliversThroughSoftirqPoll) {
  NicFixture f;
  std::vector<uint64_t> delivered;
  f.nic.SetRx([](const std::vector<Packet>&) { return Duration::Micros(1); },
              [&](const Packet& packet) { delivered.push_back(packet.id); });
  f.nic.DeliverPacket(Pkt(1, 100));
  f.nic.DeliverPacket(Pkt(2, 100));
  f.sim.Run();
  EXPECT_EQ(delivered, (std::vector<uint64_t>{1, 2}));
  EXPECT_GE(f.nic.polls(), 1u);
}

TEST(NicTest, BurstAmortizesInterruptOverhead) {
  Nic::Config config;
  config.irq_overhead = Duration::Micros(5);
  config.poll_continue_cost = Duration::Nanos(100);
  NicFixture f(config);
  int delivered = 0;
  f.nic.SetRx([](const std::vector<Packet>& batch) {
                return Duration::Nanos(200) * static_cast<int64_t>(batch.size());
              },
              [&](const Packet&) { ++delivered; });
  // 32 packets arrive while the softirq core is busy with the first poll:
  // exactly one hard interrupt should be taken.
  for (int i = 0; i < 32; ++i) {
    f.sim.Schedule(Duration::Nanos(50 * i), [&f, i] { f.nic.DeliverPacket(Pkt(i, 100)); });
  }
  f.sim.Run();
  EXPECT_EQ(delivered, 32);
  EXPECT_EQ(f.nic.irqs(), 1u);
}

TEST(NicTest, SeparatedArrivalsTakeSeparateInterrupts) {
  Nic::Config config;
  config.irq_overhead = Duration::Micros(1);
  NicFixture f(config);
  int delivered = 0;
  f.nic.SetRx([](const std::vector<Packet>&) { return Duration::Nanos(100); },
              [&](const Packet&) { ++delivered; });
  f.nic.DeliverPacket(Pkt(1, 100));
  f.sim.RunFor(Duration::Millis(1));
  f.nic.DeliverPacket(Pkt(2, 100));
  f.sim.Run();
  EXPECT_EQ(delivered, 2);
  EXPECT_EQ(f.nic.irqs(), 2u);
}

TEST(NicTest, NapiBudgetBoundsPacketsPerPoll) {
  Nic::Config config;
  config.napi_budget = 4;
  NicFixture f(config);
  std::vector<size_t> batch_sizes;
  f.nic.SetRx(
      [&](const std::vector<Packet>& batch) {
        batch_sizes.push_back(batch.size());
        return Duration::Micros(1);
      },
      [](const Packet&) {});
  for (int i = 0; i < 10; ++i) {
    f.nic.DeliverPacket(Pkt(i, 100));
  }
  f.sim.Run();
  ASSERT_GE(batch_sizes.size(), 3u);
  for (size_t size : batch_sizes) {
    EXPECT_LE(size, 4u);
  }
  EXPECT_EQ(f.nic.rx_packets(), 10u);
}

TEST(NicTest, TxCompletionsBatchIntoPolls) {
  Link::Config link_config;
  link_config.bandwidth_bps = 100e9;
  NicFixture f(Nic::Config{}, link_config);
  std::vector<size_t> completion_batches;
  f.nic.SetTxCompleteHandler([&](size_t n) { completion_batches.push_back(n); });
  for (int i = 0; i < 8; ++i) {
    f.nic.Transmit(Pkt(i, 1500));
  }
  f.sim.Run();
  size_t total = 0;
  for (size_t n : completion_batches) {
    total += n;
  }
  EXPECT_EQ(total, 8u);
}

}  // namespace
}  // namespace e2e
