// Move-semantics audit for the packet path (DESIGN.md §12): a Packet's
// shared_ptr payload must MOVE through NIC TX → link → NIC RX, never be
// copied and retained by a stage. The observable contract: while the test
// holds one reference, the in-flight packet holds exactly one more, so
// use_count() stays 2 from Transmit to the RX handler and returns to 1 once
// the simulation drains.

#include <gtest/gtest.h>

#include <memory>
#include <utility>
#include <vector>

#include "src/net/link.h"
#include "src/net/nic.h"
#include "src/net/packet.h"
#include "src/sim/cpu.h"
#include "src/sim/simulator.h"

namespace e2e {
namespace {

struct TestPayload : PacketPayload {
  explicit TestPayload(int v) : value(v) {}
  int value = 0;
};

struct PipelineFixture {
  PipelineFixture()
      : softirq(&sim, "sirq"),
        link(&sim, Link::Config{}, Rng(1), "l"),
        tx_nic(&sim, &softirq, &link, Nic::Config{}, "tx"),
        rx_softirq(&sim, "rx_sirq"),
        rx_link(&sim, Link::Config{}, Rng(2), "rl"),
        rx_nic(&sim, &rx_softirq, &rx_link, Nic::Config{}, "rx") {
    link.SetSink(&rx_nic);
  }

  Simulator sim;
  CpuCore softirq;
  Link link;
  Nic tx_nic;
  CpuCore rx_softirq;
  Link rx_link;  // Unused TX side of the receiving NIC.
  Nic rx_nic;
};

TEST(PacketMoveTest, PayloadRefcountStaysFlatAcrossNicLinkNic) {
  PipelineFixture f;
  auto payload = std::make_shared<TestPayload>(7);
  ASSERT_EQ(payload.use_count(), 1);

  Packet packet;
  packet.id = 1;
  packet.wire_bytes = 1000;
  packet.payload = payload;
  ASSERT_EQ(payload.use_count(), 2);  // Test + packet.

  int delivered = 0;
  f.rx_nic.SetRx([](const std::vector<Packet>&) { return Duration::Micros(1); },
                 [&](const Packet& got) {
                   ++delivered;
                   EXPECT_EQ(got.payload.get(), payload.get());
                   // Test handle + the in-flight packet: any stage that
                   // copied-and-retained the shared_ptr would show here.
                   EXPECT_EQ(payload.use_count(), 2);
                 });
  f.tx_nic.Transmit(std::move(packet));
  EXPECT_EQ(payload.use_count(), 2);  // Moved into the NIC, not copied.
  f.sim.Run();
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(payload.use_count(), 1);  // Pipeline fully released it.
}

TEST(PacketMoveTest, TsoSlicePayloadsMoveIndividually) {
  PipelineFixture f;
  std::vector<std::shared_ptr<TestPayload>> payloads;
  Packet super;
  super.id = 10;
  super.wire_bytes = 3000;
  for (int i = 0; i < 3; ++i) {
    Packet slice;
    slice.id = 11 + i;
    slice.wire_bytes = 1000;
    payloads.push_back(std::make_shared<TestPayload>(i));
    slice.payload = payloads.back();
    super.slices.push_back(std::move(slice));
  }

  int delivered = 0;
  f.rx_nic.SetRx([](const std::vector<Packet>&) { return Duration::Micros(1); },
                 [&](const Packet& got) {
                   ASSERT_GE(got.id, 11u);
                   const auto& payload = payloads[got.id - 11];
                   EXPECT_EQ(got.payload.get(), payload.get());
                   EXPECT_EQ(payload.use_count(), 2);
                   ++delivered;
                 });
  f.tx_nic.Transmit(std::move(super));
  f.sim.Run();
  EXPECT_EQ(delivered, 3);
  for (const auto& payload : payloads) {
    EXPECT_EQ(payload.use_count(), 1);
  }
}

}  // namespace
}  // namespace e2e
