#include "src/net/fabric/diag/flow_diag.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/net/link.h"
#include "src/tcp/segment.h"

namespace e2e {
namespace {

// Synthetic segment observations: the diagnoser only reads header fields
// and the admission event, so tests can feed it directly without a fabric.
Packet Seg(uint64_t conn, bool from_a, uint32_t seq, uint32_t ack, uint32_t len,
           uint32_t window, uint16_t flags = kFlagAck) {
  auto seg = std::make_shared<TcpSegment>();
  seg->conn_id = conn;
  seg->from_a = from_a;
  seg->seq = seq;
  seg->ack = ack;
  seg->len = len;
  seg->window = window;
  seg->flags = flags;
  Packet packet;
  packet.wire_bytes = len + kWireHeaderBytes;
  packet.payload = std::move(seg);
  return packet;
}

// Runs `fn` at `at` sim-time so the diagnoser's Now() reads are exact.
template <typename Fn>
void At(Simulator& sim, int64_t at_us, Fn fn) {
  sim.Schedule(TimePoint::FromNanos(at_us * 1000) - sim.Now(), std::move(fn));
}

DiagConfig TestConfig() {
  DiagConfig config;
  config.epoch = Duration::Millis(1);
  config.rwnd_fill_frac = 0.85;
  config.backpressure_frac = 0.5;
  config.freshness_bound = Duration::Millis(5);
  return config;
}

TEST(FlowDiagnoserTest, InfersFlightAndCwndFromSeqAckStream) {
  Simulator sim;
  FlowDiagnoser diag(&sim, TestConfig());
  // Three 1000-byte segments out, then an ack covering the first two.
  At(sim, 100, [&] { diag.OnSwitchPacket(Seg(7, true, 0, 0, 1000, 64000), {}); });
  At(sim, 200, [&] { diag.OnSwitchPacket(Seg(7, true, 1000, 0, 1000, 64000), {}); });
  At(sim, 300, [&] { diag.OnSwitchPacket(Seg(7, true, 2000, 0, 1000, 64000), {}); });
  At(sim, 400, [&] { diag.OnSwitchPacket(Seg(7, false, 0, 2000, 0, 64000), {}); });
  sim.Run();

  const auto snap = diag.Peek(7, true);
  ASSERT_TRUE(snap.valid);
  EXPECT_EQ(snap.current_flight_bytes, 1000u);  // 3000 sent, 2000 acked.
  EXPECT_EQ(snap.last_rwnd_bytes, 64000u);

  // Closing the epoch freezes peak flight as the inferred cwnd.
  const auto verdict = diag.ClosedVerdict(7, true, TimePoint::FromNanos(1000000));
  EXPECT_EQ(verdict.epoch_end, TimePoint::FromNanos(1000000));
  EXPECT_EQ(verdict.evidence.max_flight_bytes, 3000u);
  EXPECT_EQ(verdict.evidence.data_packets, 3u);
  EXPECT_EQ(diag.Peek(7, true).inferred_cwnd_bytes, 3000u);
}

TEST(FlowDiagnoserTest, DetectsRetransmissionsByNonAdvancingSeq) {
  Simulator sim;
  FlowDiagnoser diag(&sim, TestConfig());
  At(sim, 100, [&] { diag.OnSwitchPacket(Seg(1, true, 0, 0, 1000, 64000), {}); });
  At(sim, 200, [&] { diag.OnSwitchPacket(Seg(1, true, 1000, 0, 1000, 64000), {}); });
  // Same bytes again: does not advance the high-water mark.
  At(sim, 300, [&] { diag.OnSwitchPacket(Seg(1, true, 0, 0, 1000, 64000), {}); });
  sim.Run();

  const auto verdict = diag.ClosedVerdict(1, true, TimePoint::FromNanos(1000000));
  EXPECT_EQ(verdict.limit, FlowLimit::kNetwork);
  EXPECT_EQ(verdict.evidence.retransmits, 1u);
  EXPECT_EQ(diag.CountersFor(1, true)->retransmits, 1u);
}

TEST(FlowDiagnoserTest, TwoHalfRttProbesSumToPathRtt) {
  Simulator sim;
  FlowDiagnoser diag(&sim, TestConfig());
  // Forward probe: data passes the switch at 100 us, covering ack returns
  // at 300 us -> switch->receiver->switch = 200 us.
  At(sim, 100, [&] { diag.OnSwitchPacket(Seg(3, true, 0, 0, 1000, 64000), {}); });
  At(sim, 200, [&] { diag.OnSwitchPacket(Seg(3, true, 1000, 0, 1000, 64000), {}); });
  At(sim, 300, [&] { diag.OnSwitchPacket(Seg(3, false, 0, 1000, 0, 64000), {}); });
  // Reverse probe armed by that ack-advance (flight still open); the next
  // new data it clocks out at 450 us -> switch->sender->switch = 150 us.
  At(sim, 450, [&] { diag.OnSwitchPacket(Seg(3, true, 2000, 0, 1000, 64000), {}); });
  sim.Run();

  const auto snap = diag.Peek(3, true);
  EXPECT_DOUBLE_EQ(snap.srtt_us, 200.0 + 150.0);
  EXPECT_EQ(diag.CountersFor(3, true)->rtt_samples, 2u);
}

TEST(FlowDiagnoserTest, KarnSkipsSamplesTaintedByRetransmission) {
  Simulator sim;
  FlowDiagnoser diag(&sim, TestConfig());
  At(sim, 100, [&] { diag.OnSwitchPacket(Seg(4, true, 0, 0, 1000, 64000), {}); });
  // Retransmit while the forward probe is in flight: the ack at 400 us is
  // ambiguous (original or retransmission?) and must not produce a sample.
  At(sim, 250, [&] { diag.OnSwitchPacket(Seg(4, true, 0, 0, 1000, 64000), {}); });
  At(sim, 400, [&] { diag.OnSwitchPacket(Seg(4, false, 0, 1000, 0, 64000), {}); });
  sim.Run();
  EXPECT_EQ(diag.CountersFor(4, true)->rtt_samples, 0u);
  EXPECT_EQ(diag.Peek(4, true).srtt_us, 0.0);
}

// Like Seg, but decorated with recovery options (timestamps / SACK).
Packet SegOpts(uint64_t conn, bool from_a, uint32_t seq, uint32_t ack, uint32_t len,
               uint32_t window, std::optional<TsOption> ts,
               std::vector<SackBlock> sack = {}) {
  Packet packet = Seg(conn, from_a, seq, ack, len, window);
  auto* seg = static_cast<TcpSegment*>(packet.payload.get());
  seg->ts = ts;
  seg->sack = std::move(sack);
  return packet;
}

TEST(FlowDiagnoserTest, SackBearingAcksAreNetworkEvidence) {
  Simulator sim;
  FlowDiagnoser diag(&sim, TestConfig());
  At(sim, 100, [&] { diag.OnSwitchPacket(Seg(20, true, 0, 0, 1000, 64000), {}); });
  At(sim, 200, [&] { diag.OnSwitchPacket(Seg(20, true, 1000, 0, 1000, 64000), {}); });
  // The receiver acks nothing but advertises [1000, 2000) as a SACK block:
  // the hole at [0, 1000) is direct forward-loss evidence at the switch —
  // available even before any retransmission passes.
  At(sim, 300, [&] {
    diag.OnSwitchPacket(
        SegOpts(20, false, 0, 0, 0, 64000, std::nullopt, {SackBlock{1000, 2000}}), {});
  });
  sim.Run();
  const auto verdict = diag.ClosedVerdict(20, true, TimePoint::FromNanos(1000000));
  EXPECT_EQ(verdict.limit, FlowLimit::kNetwork);
  EXPECT_EQ(verdict.evidence.sack_acks, 1u);
  EXPECT_EQ(verdict.evidence.sack_blocks, 1u);
  EXPECT_EQ(diag.CountersFor(20, true)->sack_acks, 1u);
}

TEST(FlowDiagnoserTest, TimestampEchoMeasuresThroughKarnAmbiguity) {
  Simulator sim;
  FlowDiagnoser diag(&sim, TestConfig());
  // Data at 100 us arms both the plain forward probe and the ts probe.
  At(sim, 100, [&] {
    diag.OnSwitchPacket(SegOpts(22, true, 0, 0, 1000, 64000, TsOption{1000, 0}), {});
  });
  // A retransmission taints the plain probe (Karn: the covering ack is
  // ambiguous), but the echo names the exact transmission it answers.
  At(sim, 250, [&] {
    diag.OnSwitchPacket(SegOpts(22, true, 0, 0, 1000, 64000, TsOption{1150, 0}), {});
  });
  At(sim, 400, [&] {
    diag.OnSwitchPacket(SegOpts(22, false, 0, 1000, 0, 64000, TsOption{5, 1000}), {});
  });
  sim.Run();
  const auto* counters = diag.CountersFor(22, true);
  ASSERT_NE(counters, nullptr);
  EXPECT_EQ(counters->ts_rtt_samples, 1u);
  EXPECT_EQ(counters->rtt_samples, 1u);  // The ts sample; the plain probe skipped.
  // Probe armed at 100 us, echo observed at 400 us: one forward half-RTT.
  EXPECT_DOUBLE_EQ(diag.Peek(22, true).srtt_us, 300.0);
}

TEST(FlowDiagnoserTest, ClassifiesSenderLimitedWhenWindowIsOpen) {
  Simulator sim;
  FlowDiagnoser diag(&sim, TestConfig());
  // 1000 bytes in flight against a 64 KB advertised window, no evidence of
  // loss or pressure: the application simply isn't writing more.
  At(sim, 100, [&] { diag.OnSwitchPacket(Seg(5, true, 0, 0, 1000, 64000), {}); });
  At(sim, 300, [&] { diag.OnSwitchPacket(Seg(5, false, 0, 1000, 0, 64000), {}); });
  sim.Run();
  const auto verdict = diag.ClosedVerdict(5, true, TimePoint::FromNanos(1000000));
  EXPECT_EQ(verdict.limit, FlowLimit::kSender);
}

TEST(FlowDiagnoserTest, ClassifiesReceiverLimitedByRwndFillAndZeroWindow) {
  Simulator sim;
  FlowDiagnoser diag(&sim, TestConfig());
  // Flight pinned at the advertised window: 8000 of rwnd 8000 >= 85%.
  At(sim, 100, [&] { diag.OnSwitchPacket(Seg(6, false, 0, 0, 0, 8000), {}); });
  At(sim, 200, [&] { diag.OnSwitchPacket(Seg(6, true, 0, 0, 4000, 64000), {}); });
  At(sim, 300, [&] { diag.OnSwitchPacket(Seg(6, true, 4000, 0, 4000, 64000), {}); });
  sim.Run();
  EXPECT_EQ(diag.ClosedVerdict(6, true, TimePoint::FromNanos(1000000)).limit,
            FlowLimit::kReceiver);

  // A zero-window ack is receiver-limited evidence on its own.
  Simulator sim2;
  FlowDiagnoser diag2(&sim2, TestConfig());
  At(sim2, 100, [&] { diag2.OnSwitchPacket(Seg(6, true, 0, 0, 1000, 64000), {}); });
  At(sim2, 300, [&] { diag2.OnSwitchPacket(Seg(6, false, 0, 1000, 0, 0), {}); });
  sim2.Run();
  const auto verdict = diag2.ClosedVerdict(6, true, TimePoint::FromNanos(1000000));
  EXPECT_EQ(verdict.limit, FlowLimit::kReceiver);
  EXPECT_EQ(verdict.evidence.zero_window_acks, 1u);
}

TEST(FlowDiagnoserTest, NetworkEvidenceOutranksReceiverPressure) {
  Simulator sim;
  FlowDiagnoser diag(&sim, TestConfig());
  // ECE echo + rwnd-pinned flight in the same epoch: loss/marks win.
  At(sim, 100, [&] { diag.OnSwitchPacket(Seg(8, true, 0, 0, 8000, 64000), {}); });
  At(sim, 300, [&] {
    diag.OnSwitchPacket(Seg(8, false, 0, 0, 0, 8000, kFlagAck | kFlagEce), {});
  });
  sim.Run();
  const auto verdict = diag.ClosedVerdict(8, true, TimePoint::FromNanos(1000000));
  EXPECT_EQ(verdict.limit, FlowLimit::kNetwork);
  EXPECT_EQ(verdict.evidence.ece_acks, 1u);
}

TEST(FlowDiagnoserTest, DropAndMarkEventsAreNetworkEvidence) {
  Simulator sim;
  FlowDiagnoser diag(&sim, TestConfig());
  SwitchTapEvent dropped;
  dropped.dropped = true;
  At(sim, 100, [&] { diag.OnSwitchPacket(Seg(9, true, 0, 0, 1000, 64000), dropped); });
  SwitchTapEvent marked;
  marked.marked = true;
  At(sim, 200, [&] { diag.OnSwitchPacket(Seg(10, true, 0, 0, 1000, 64000), marked); });
  sim.Run();
  const auto v9 = diag.ClosedVerdict(9, true, TimePoint::FromNanos(1000000));
  EXPECT_EQ(v9.limit, FlowLimit::kNetwork);
  EXPECT_EQ(v9.evidence.drops, 1u);
  const auto v10 = diag.ClosedVerdict(10, true, TimePoint::FromNanos(1000000));
  EXPECT_EQ(v10.limit, FlowLimit::kNetwork);
  EXPECT_EQ(v10.evidence.ce_marked, 1u);
}

TEST(FlowDiagnoserTest, EpochsAlignToAbsoluteGridAndRollLazily) {
  Simulator sim;
  FlowDiagnoser diag(&sim, TestConfig());
  At(sim, 500, [&] { diag.OnSwitchPacket(Seg(2, true, 0, 0, 1000, 64000), {}); });
  // Next observation lands three epochs later: epoch 0 closes with data,
  // epochs 1 and 2 close idle, all lazily on this packet's arrival.
  At(sim, 3500, [&] { diag.OnSwitchPacket(Seg(2, true, 1000, 0, 1000, 64000), {}); });
  sim.Run();

  const auto* counters = diag.CountersFor(2, true);
  ASSERT_NE(counters, nullptr);
  EXPECT_EQ(counters->epochs_by_limit[static_cast<size_t>(FlowLimit::kSender)], 1u);
  EXPECT_EQ(counters->epochs_by_limit[static_cast<size_t>(FlowLimit::kIdle)], 2u);

  // Polling exactly at an epoch boundary closes the epoch ending there.
  const auto verdict = diag.ClosedVerdict(2, true, TimePoint::FromNanos(4000000));
  EXPECT_EQ(verdict.epoch_end, TimePoint::FromNanos(4000000));
  // An unknown flow yields the zero verdict, not a table entry. (The two
  // tracked flows are the data direction and its implied reverse ack flow.)
  EXPECT_EQ(diag.ClosedVerdict(99, true, TimePoint::FromNanos(4000000)).epoch_end,
            TimePoint{});
  EXPECT_EQ(diag.num_flows(), 2u);
}

TEST(FlowDiagnoserTest, PortTalliesAttributeEpochsToEgressPort) {
  Simulator sim;
  Link::Config fast;
  fast.bandwidth_bps = 100e9;
  fast.propagation = Duration::Zero();
  Link egress(&sim, fast, Rng(1), "e");
  SwitchPort port(&sim, &egress, SwitchPortConfig{}, "sw.srv0");
  FlowDiagnoser diag(&sim, TestConfig());
  SwitchTapEvent event;
  event.port = &port;
  At(sim, 100, [&] { diag.OnSwitchPacket(Seg(11, true, 0, 0, 1000, 64000), event); });
  sim.Run();
  diag.ClosedVerdict(11, true, TimePoint::FromNanos(1000000));
  const auto& tallies = diag.port_tallies();
  ASSERT_EQ(tallies.count("sw.srv0"), 1u);
  EXPECT_EQ(tallies.at("sw.srv0").epochs_by_limit[static_cast<size_t>(FlowLimit::kSender)],
            1u);
}

TEST(FlowDiagnoserTest, BackpressureOnEgressPortIsNetworkEvidence) {
  Simulator sim;
  Link::Config slow;
  slow.bandwidth_bps = 1e6;  // Packets pile up behind the first.
  slow.propagation = Duration::Zero();
  Link egress(&sim, slow, Rng(1), "e");
  SwitchPortConfig pc;
  pc.buffer_bytes = 10000;
  SwitchPort port(&sim, &egress, pc, "p");
  FlowDiagnoser diag(&sim, TestConfig());
  // Fill the queue past backpressure_frac * buffer (50% of 10000).
  At(sim, 100, [&] {
    for (int i = 0; i < 6; ++i) {
      Packet p;
      p.wire_bytes = 1000;
      port.Enqueue(p);
    }
  });
  SwitchTapEvent event;
  event.port = &port;
  At(sim, 200, [&] { diag.OnSwitchPacket(Seg(12, true, 0, 0, 1000, 64000), event); });
  sim.Run();
  const auto verdict = diag.ClosedVerdict(12, true, TimePoint::FromNanos(1000000));
  EXPECT_EQ(verdict.limit, FlowLimit::kNetwork);
  EXPECT_GE(verdict.evidence.backpressure_packets, 1u);
}

TEST(FlowDiagnoserTest, FreshnessTracksLastObservation) {
  Simulator sim;
  FlowDiagnoser diag(&sim, TestConfig());
  At(sim, 100, [&] { diag.OnSwitchPacket(Seg(13, true, 0, 0, 1000, 64000), {}); });
  sim.Run();
  const TimePoint seen = TimePoint::FromNanos(100 * 1000);
  EXPECT_TRUE(diag.Fresh(13, true, seen + Duration::Millis(5)));
  EXPECT_FALSE(diag.Fresh(13, true, seen + Duration::Millis(5) + Duration::Nanos(1)));
  EXPECT_FALSE(diag.Fresh(14, true, seen));  // Never observed.
}

TEST(FlowDiagnoserTest, FlowTableCapCountsUntrackedPackets) {
  Simulator sim;
  DiagConfig config = TestConfig();
  config.max_flows = 2;
  FlowDiagnoser diag(&sim, config);
  At(sim, 100, [&] { diag.OnSwitchPacket(Seg(1, true, 0, 0, 1000, 64000), {}); });
  At(sim, 200, [&] { diag.OnSwitchPacket(Seg(2, true, 0, 0, 1000, 64000), {}); });
  At(sim, 300, [&] { diag.OnSwitchPacket(Seg(3, true, 0, 0, 1000, 64000), {}); });
  sim.Run();
  EXPECT_EQ(diag.num_flows(), 2u);
  // The third flow's data observation plus its implied reverse-flow ack.
  EXPECT_GE(diag.untracked_packets(), 1u);
  EXPECT_FALSE(diag.Peek(3, true).valid);
}

TEST(FlowDiagnoserTest, NonTcpPacketsAreCountedAndIgnored) {
  Simulator sim;
  FlowDiagnoser diag(&sim, TestConfig());
  Packet raw;
  raw.wire_bytes = 500;
  At(sim, 100, [&] { diag.OnSwitchPacket(raw, {}); });
  sim.Run();
  EXPECT_EQ(diag.non_tcp_packets(), 1u);
  EXPECT_EQ(diag.num_flows(), 0u);
}

// The passivity contract at the switch level: an attached diagnoser leaves
// every forwarded packet's timing and marking identical to an untapped run.
TEST(FlowDiagnoserTest, TapIsPassiveAtTheSwitch) {
  struct Arrival {
    int64_t when_ns;
    uint64_t id;
    bool ecn_ce;
  };
  auto run = [](bool tapped) {
    Simulator sim;
    Link::Config lc;
    lc.bandwidth_bps = 1e9;
    lc.propagation = Duration::MicrosF(1.0);
    Link egress(&sim, lc, Rng(7), "e");
    std::vector<Arrival> arrivals;
    struct Sink : PacketSink {
      Simulator* sim;
      std::vector<Arrival>* out;
      void DeliverPacket(Packet packet) override {
        out->push_back({sim->Now().nanos(), packet.id, packet.ecn_ce});
      }
    } sink;
    sink.sim = &sim;
    sink.out = &arrivals;
    egress.SetSink(&sink);

    Switch sw(&sim, "sw");
    SwitchPortConfig pc;
    pc.buffer_bytes = 4000;
    pc.ecn_threshold_bytes = 2000;
    sw.SetRoute(1, sw.AddPort(&egress, pc, "sw.p"));
    FlowDiagnoser diag(&sim, DiagConfig{});
    if (tapped) {
      sw.SetTap(&diag);
    }
    for (int i = 0; i < 6; ++i) {
      Packet p = Seg(1, true, static_cast<uint32_t>(i) * 1000, 0, 1000, 64000);
      p.id = static_cast<uint64_t>(i);
      p.dst_host = 1;
      sw.DeliverPacket(std::move(p));
    }
    sim.Run();
    return arrivals;
  };
  const auto plain = run(false);
  const auto tapped = run(true);
  ASSERT_EQ(plain.size(), tapped.size());
  for (size_t i = 0; i < plain.size(); ++i) {
    EXPECT_EQ(plain[i].when_ns, tapped[i].when_ns);
    EXPECT_EQ(plain[i].id, tapped[i].id);
    EXPECT_EQ(plain[i].ecn_ce, tapped[i].ecn_ce);
  }
}

TEST(FlowDiagnoserTest, LimitNamesAreStable) {
  EXPECT_STREQ(FlowLimitName(FlowLimit::kIdle), "idle");
  EXPECT_STREQ(FlowLimitName(FlowLimit::kSender), "sender");
  EXPECT_STREQ(FlowLimitName(FlowLimit::kNetwork), "network");
  EXPECT_STREQ(FlowLimitName(FlowLimit::kReceiver), "receiver");
}

}  // namespace
}  // namespace e2e
