#include "src/net/fabric/switch.h"

#include <gtest/gtest.h>

#include <vector>

namespace e2e {
namespace {

class RecordingSink : public PacketSink {
 public:
  explicit RecordingSink(Simulator* sim) : sim_(sim) {}
  void DeliverPacket(Packet packet) override {
    arrivals.push_back({sim_->Now(), packet.id, packet.wire_bytes, packet.ecn_ce});
  }
  struct Arrival {
    TimePoint when;
    uint64_t id;
    size_t bytes;
    bool ecn_ce;
  };
  std::vector<Arrival> arrivals;

 private:
  Simulator* sim_;
};

Packet Pkt(uint64_t id, size_t bytes, uint32_t dst = 0) {
  Packet packet;
  packet.id = id;
  packet.wire_bytes = bytes;
  packet.dst_host = dst;
  return packet;
}

Link::Config SlowLink() {
  Link::Config config;
  config.bandwidth_bps = 1e9;  // 8 ns per byte: 1000 B takes 8 us.
  config.propagation = Duration::Zero();
  return config;
}

TEST(SwitchPortTest, DrainsFifoInOrder) {
  Simulator sim;
  Link egress(&sim, SlowLink(), Rng(1), "e");
  RecordingSink sink(&sim);
  egress.SetSink(&sink);
  SwitchPort port(&sim, &egress, SwitchPortConfig{}, "p");

  port.Enqueue(Pkt(1, 1000));
  port.Enqueue(Pkt(2, 1000));
  port.Enqueue(Pkt(3, 500));
  sim.Run();

  ASSERT_EQ(sink.arrivals.size(), 3u);
  EXPECT_EQ(sink.arrivals[0].id, 1u);
  EXPECT_EQ(sink.arrivals[1].id, 2u);
  EXPECT_EQ(sink.arrivals[2].id, 3u);
  // One packet serializes at a time: arrivals are spaced by full
  // serialization delays, never overlapped.
  EXPECT_EQ(sink.arrivals[0].when, TimePoint::FromNanos(8000));
  EXPECT_EQ(sink.arrivals[1].when, TimePoint::FromNanos(16000));
  EXPECT_EQ(sink.arrivals[2].when, TimePoint::FromNanos(20000));
  EXPECT_EQ(port.counters().packets_out, 3u);
  EXPECT_EQ(port.counters().bytes_out, 2500u);
  EXPECT_EQ(port.queue_bytes(), 0u);
  EXPECT_EQ(port.queue_packets(), 0u);
}

TEST(SwitchPortTest, ByteLimitDropTailIsExact) {
  Simulator sim;
  Link egress(&sim, SlowLink(), Rng(1), "e");
  RecordingSink sink(&sim);
  egress.SetSink(&sink);
  SwitchPortConfig config;
  config.buffer_bytes = 2000;  // Exactly two 1000 B packets.
  SwitchPort port(&sim, &egress, config, "p");

  port.Enqueue(Pkt(1, 1000));  // In service; still occupies its slot.
  port.Enqueue(Pkt(2, 1000));  // Fills the buffer: 2000/2000.
  port.Enqueue(Pkt(3, 1000));  // 3000 > 2000: tail-dropped.
  EXPECT_EQ(port.queue_bytes(), 2000u);
  EXPECT_EQ(port.counters().tail_drops, 1u);
  EXPECT_EQ(port.counters().byte_limit_drops, 1u);
  EXPECT_EQ(port.counters().packet_limit_drops, 0u);
  EXPECT_EQ(port.counters().dropped_bytes, 1000u);
  EXPECT_EQ(port.counters().max_queue_bytes, 2000u);

  sim.Run();
  ASSERT_EQ(sink.arrivals.size(), 2u);
  EXPECT_EQ(port.counters().packets_in, 3u);
  EXPECT_EQ(port.counters().packets_out, 2u);
  EXPECT_EQ(port.queue_bytes(), 0u);

  // A slot freed by serialization re-admits new arrivals.
  port.Enqueue(Pkt(4, 2000));
  EXPECT_EQ(port.counters().tail_drops, 1u);
  sim.Run();
  EXPECT_EQ(sink.arrivals.size(), 3u);
}

TEST(SwitchPortTest, PacketLimitDropTail) {
  Simulator sim;
  Link egress(&sim, SlowLink(), Rng(1), "e");
  RecordingSink sink(&sim);
  egress.SetSink(&sink);
  SwitchPortConfig config;
  config.buffer_bytes = 0;  // Unlimited bytes; limit packets only.
  config.buffer_packets = 2;
  SwitchPort port(&sim, &egress, config, "p");

  port.Enqueue(Pkt(1, 100));
  port.Enqueue(Pkt(2, 100));
  port.Enqueue(Pkt(3, 100));
  EXPECT_EQ(port.counters().tail_drops, 1u);
  EXPECT_EQ(port.counters().packet_limit_drops, 1u);
  EXPECT_EQ(port.counters().byte_limit_drops, 0u);
  EXPECT_EQ(port.counters().max_queue_packets, 2u);
  sim.Run();
  EXPECT_EQ(sink.arrivals.size(), 2u);
}

TEST(SwitchPortTest, EcnMarksAboveThreshold) {
  Simulator sim;
  Link egress(&sim, SlowLink(), Rng(1), "e");
  RecordingSink sink(&sim);
  egress.SetSink(&sink);
  SwitchPortConfig config;
  config.buffer_bytes = 100000;
  config.ecn_threshold_bytes = 1500;
  SwitchPort port(&sim, &egress, config, "p");

  port.Enqueue(Pkt(1, 1000));  // Occupancy 1000 <= 1500: clean.
  port.Enqueue(Pkt(2, 1000));  // Occupancy 2000 > 1500: marked.
  port.Enqueue(Pkt(3, 1000));  // Occupancy 3000 > 1500: marked.
  EXPECT_EQ(port.counters().ecn_marked, 2u);
  sim.Run();
  ASSERT_EQ(sink.arrivals.size(), 3u);
  EXPECT_FALSE(sink.arrivals[0].ecn_ce);
  EXPECT_TRUE(sink.arrivals[1].ecn_ce);
  EXPECT_TRUE(sink.arrivals[2].ecn_ce);
}

TEST(SwitchPortTest, MarkedAndDroppedBytesAreDisjointInTheSameEpoch) {
  // A congestion epoch where marking and dropping overlap: every wire byte
  // is attributed to exactly one of ecn_marked_bytes / dropped_bytes, so
  // the two tell marked-and-forwarded apart from never-forwarded.
  Simulator sim;
  Link egress(&sim, SlowLink(), Rng(1), "e");
  RecordingSink sink(&sim);
  egress.SetSink(&sink);
  SwitchPortConfig config;
  config.buffer_bytes = 2500;
  config.ecn_threshold_bytes = 1500;
  SwitchPort port(&sim, &egress, config, "p");

  port.Enqueue(Pkt(1, 1000));  // Occupancy 1000: clean.
  port.Enqueue(Pkt(2, 1000));  // Occupancy 2000 > 1500: marked.
  port.Enqueue(Pkt(3, 1000));  // Would be 3000 > 2500: dropped, NOT marked.
  port.Enqueue(Pkt(4, 500));   // Occupancy 2500 > 1500: marked.
  sim.Run();

  const SwitchPort::Counters& c = port.counters();
  EXPECT_EQ(c.ecn_marked, 2u);
  EXPECT_EQ(c.ecn_marked_bytes, 1500u);  // Packets 2 and 4: admitted+marked.
  EXPECT_EQ(c.tail_drops, 1u);
  EXPECT_EQ(c.dropped_bytes, 1000u);  // Packet 3 only: never forwarded.
  EXPECT_EQ(c.bytes_out, 2500u);
  // Disjoint by construction: marked bytes were all forwarded.
  EXPECT_EQ(c.ecn_marked_bytes + c.dropped_bytes, 2500u);
  ASSERT_EQ(sink.arrivals.size(), 3u);
  EXPECT_FALSE(sink.arrivals[0].ecn_ce);
  EXPECT_TRUE(sink.arrivals[1].ecn_ce);
  EXPECT_TRUE(sink.arrivals[2].ecn_ce);
}

TEST(SwitchTest, ForwardsByDestinationHost) {
  Simulator sim;
  Link link_a(&sim, SlowLink(), Rng(1), "a");
  Link link_b(&sim, SlowLink(), Rng(2), "b");
  RecordingSink sink_a(&sim);
  RecordingSink sink_b(&sim);
  link_a.SetSink(&sink_a);
  link_b.SetSink(&sink_b);

  Switch sw(&sim, "sw");
  const size_t port_a = sw.AddPort(&link_a, SwitchPortConfig{}, "sw.a");
  const size_t port_b = sw.AddPort(&link_b, SwitchPortConfig{}, "sw.b");
  sw.SetRoute(1, port_a);
  sw.SetRoute(2, port_b);

  sw.DeliverPacket(Pkt(10, 500, /*dst=*/1));
  sw.DeliverPacket(Pkt(11, 500, /*dst=*/2));
  sw.DeliverPacket(Pkt(12, 500, /*dst=*/2));
  sim.Run();

  ASSERT_EQ(sink_a.arrivals.size(), 1u);
  EXPECT_EQ(sink_a.arrivals[0].id, 10u);
  ASSERT_EQ(sink_b.arrivals.size(), 2u);
  EXPECT_EQ(sink_b.arrivals[0].id, 11u);
  EXPECT_EQ(sink_b.arrivals[1].id, 12u);
  EXPECT_EQ(sw.forwarding_misses(), 0u);
  EXPECT_EQ(sw.RouteFor(1), &sw.port(port_a));
  EXPECT_EQ(sw.RouteFor(2), &sw.port(port_b));
}

TEST(SwitchTest, ForwardingMissIsCountedAndDropped) {
  Simulator sim;
  Link link_a(&sim, SlowLink(), Rng(1), "a");
  RecordingSink sink_a(&sim);
  link_a.SetSink(&sink_a);
  Switch sw(&sim, "sw");
  sw.SetRoute(1, sw.AddPort(&link_a, SwitchPortConfig{}, "sw.a"));

  sw.DeliverPacket(Pkt(1, 500, /*dst=*/9));  // No such route.
  sw.DeliverPacket(Pkt(2, 500, /*dst=*/0));  // Unaddressed never matches.
  sim.Run();

  EXPECT_EQ(sw.forwarding_misses(), 2u);
  EXPECT_TRUE(sink_a.arrivals.empty());
  EXPECT_EQ(sw.RouteFor(9), nullptr);
  EXPECT_EQ(sw.port(0).counters().packets_in, 0u);  // Misses never enqueue.
}

}  // namespace
}  // namespace e2e
