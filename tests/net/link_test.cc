#include "src/net/link.h"

#include <gtest/gtest.h>

#include <vector>

namespace e2e {
namespace {

class RecordingSink : public PacketSink {
 public:
  explicit RecordingSink(Simulator* sim) : sim_(sim) {}
  void DeliverPacket(Packet packet) override {
    arrivals.push_back({sim_->Now(), packet.id, packet.wire_bytes});
  }
  struct Arrival {
    TimePoint when;
    uint64_t id;
    size_t bytes;
  };
  std::vector<Arrival> arrivals;

 private:
  Simulator* sim_;
};

Packet Pkt(uint64_t id, size_t bytes) {
  Packet packet;
  packet.id = id;
  packet.wire_bytes = bytes;
  return packet;
}

TEST(LinkTest, SerializationPlusPropagation) {
  Simulator sim;
  Link::Config config;
  config.bandwidth_bps = 1e9;  // 1 Gbps: 8 ns per byte.
  config.propagation = Duration::Micros(10);
  Link link(&sim, config, Rng(1), "l");
  RecordingSink sink(&sim);
  link.SetSink(&sink);

  const TimePoint tx_end = link.Send(Pkt(1, 1000));  // 8 us serialization.
  EXPECT_EQ(tx_end, TimePoint::FromNanos(8000));
  sim.Run();
  ASSERT_EQ(sink.arrivals.size(), 1u);
  EXPECT_EQ(sink.arrivals[0].when, TimePoint::FromNanos(18000));
}

TEST(LinkTest, BackToBackPacketsQueueBehindEachOther) {
  Simulator sim;
  Link::Config config;
  config.bandwidth_bps = 1e9;
  config.propagation = Duration::Zero();
  Link link(&sim, config, Rng(1), "l");
  RecordingSink sink(&sim);
  link.SetSink(&sink);

  link.Send(Pkt(1, 1000));
  link.Send(Pkt(2, 1000));  // Starts only after the first finishes.
  sim.Run();
  ASSERT_EQ(sink.arrivals.size(), 2u);
  EXPECT_EQ(sink.arrivals[0].when, TimePoint::FromNanos(8000));
  EXPECT_EQ(sink.arrivals[1].when, TimePoint::FromNanos(16000));
  EXPECT_EQ(sink.arrivals[0].id, 1u);  // FIFO, no reordering.
  EXPECT_EQ(sink.arrivals[1].id, 2u);
}

TEST(LinkTest, WireFreesUpBetweenSpacedPackets) {
  Simulator sim;
  Link::Config config;
  config.bandwidth_bps = 1e9;
  config.propagation = Duration::Zero();
  Link link(&sim, config, Rng(1), "l");
  RecordingSink sink(&sim);
  link.SetSink(&sink);
  link.Send(Pkt(1, 1000));
  sim.RunFor(Duration::Micros(100));
  link.Send(Pkt(2, 1000));  // Wire idle again: starts immediately.
  sim.Run();
  EXPECT_EQ(sink.arrivals[1].when, TimePoint::FromNanos(108000));
}

TEST(LinkTest, InfiniteBandwidthSkipsSerialization) {
  Simulator sim;
  Link::Config config;
  config.bandwidth_bps = 0;
  config.propagation = Duration::Micros(3);
  Link link(&sim, config, Rng(1), "l");
  RecordingSink sink(&sim);
  link.SetSink(&sink);
  EXPECT_EQ(link.Send(Pkt(1, 1000000)), TimePoint::Zero());
  sim.Run();
  EXPECT_EQ(sink.arrivals[0].when, TimePoint::FromNanos(3000));
}

TEST(LinkTest, CountsPacketsAndBytes) {
  Simulator sim;
  Link link(&sim, Link::Config{}, Rng(1), "l");
  RecordingSink sink(&sim);
  link.SetSink(&sink);
  link.Send(Pkt(1, 100));
  link.Send(Pkt(2, 200));
  sim.Run();
  EXPECT_EQ(link.packets_sent(), 2u);
  EXPECT_EQ(link.bytes_sent(), 300u);
  EXPECT_EQ(link.packets_dropped(), 0u);
}

TEST(LinkTest, LossDropsApproximatelyTheConfiguredFraction) {
  Simulator sim;
  Link::Config config;
  config.bandwidth_bps = 0;
  config.loss_probability = 0.2;
  Link link(&sim, config, Rng(42), "l");
  RecordingSink sink(&sim);
  link.SetSink(&sink);
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    link.Send(Pkt(i, 100));
  }
  sim.Run();
  EXPECT_NEAR(static_cast<double>(link.packets_dropped()) / n, 0.2, 0.02);
  EXPECT_EQ(sink.arrivals.size(), n - link.packets_dropped());
}

TEST(LinkTest, DroppedPacketsStillOccupyTheWire) {
  Simulator sim;
  Link::Config config;
  config.bandwidth_bps = 1e9;
  config.loss_probability = 0.999999;  // Effectively always drop.
  Link link(&sim, config, Rng(1), "l");
  RecordingSink sink(&sim);
  link.SetSink(&sink);
  link.Send(Pkt(1, 1000));
  const TimePoint second_end = link.Send(Pkt(2, 1000));
  EXPECT_EQ(second_end, TimePoint::FromNanos(16000));  // Queued behind #1.
}

}  // namespace
}  // namespace e2e
