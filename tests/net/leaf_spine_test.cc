// Leaf-spine fabric contract tests (DESIGN.md §17):
//   - rendezvous (HRW) ECMP is a pure function of member keys, independent
//     of member insertion order, and adding a member moves only the flows
//     the new member wins (minimal disruption);
//   - per-flow path pinning: every packet of a flow leaves its leaf on one
//     uplink, so the fabric can never reorder inside a flow — verified by
//     a passive tap recording per-flow packet-id monotonicity at the
//     server rack;
//   - a multi-switch leaf-spine cell is bit-identical across worker
//     counts (the sharded-engine contract, DESIGN.md §16, exercised on
//     the topology this fabric was built to scale).

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/net/fabric/switch.h"
#include "src/testbed/fabric_topology.h"

namespace e2e {
namespace {

TcpConfig BulkTcp() {
  TcpConfig tcp;
  tcp.nodelay = true;
  tcp.sndbuf_bytes = 1024 * 1024;
  tcp.rcvbuf_bytes = 1024 * 1024;
  return tcp;
}

Link::Config FastLink() {
  Link::Config config;
  config.bandwidth_bps = 100e9;
  config.propagation = Duration::MicrosF(1.5);
  return config;
}

// Builds a switch with `keys.size()` ECMP members, adding them in the
// given order; returns the member key of the port EcmpRouteFor picks for
// each flow in `flows`.
std::vector<uint64_t> WinningKeys(Simulator* sim, const std::vector<uint64_t>& keys,
                                  const std::vector<std::pair<uint32_t, uint32_t>>& flows) {
  Switch sw(sim, "leaf");
  std::vector<std::unique_ptr<Link>> links;
  std::map<const SwitchPort*, uint64_t> port_key;
  for (size_t i = 0; i < keys.size(); ++i) {
    links.push_back(
        std::make_unique<Link>(sim, FastLink(), Rng(keys[i]), "up" + std::to_string(i)));
    const size_t port = sw.AddPort(links.back().get(), SwitchPortConfig{}, links.back()->name());
    sw.AddEcmpMember(port, keys[i]);
    port_key[&sw.port(port)] = keys[i];
  }
  std::vector<uint64_t> winners;
  for (const auto& flow : flows) {
    SwitchPort* port = sw.EcmpRouteFor(flow.first, flow.second);
    winners.push_back(port_key.at(port));
  }
  return winners;
}

std::vector<std::pair<uint32_t, uint32_t>> SomeFlows(int n) {
  std::vector<std::pair<uint32_t, uint32_t>> flows;
  for (int i = 0; i < n; ++i) {
    flows.push_back({static_cast<uint32_t>(i + 1), static_cast<uint32_t>(1000 + i * 7)});
  }
  return flows;
}

TEST(EcmpRendezvousTest, SelectionIgnoresMemberInsertionOrder) {
  // The same member-key set must route every flow identically no matter
  // the order AddEcmpMember was called in — the property that makes one
  // spine hash the same at every leaf.
  Simulator sim;
  const std::vector<uint64_t> keys = {0x9e3779b97f4a7c15ull, 0xbf58476d1ce4e5b9ull,
                                      0x94d049bb133111ebull, 0x2545f4914f6cdd1dull};
  std::vector<uint64_t> reversed(keys.rbegin(), keys.rend());
  const auto flows = SomeFlows(128);
  EXPECT_EQ(WinningKeys(&sim, keys, flows), WinningKeys(&sim, reversed, flows));
}

TEST(EcmpRendezvousTest, MemberAdditionMovesOnlyFlowsTheNewMemberWins) {
  // Rendezvous hashing's minimal-disruption property: growing the spine
  // tier re-paths only the flows that now score highest on the new spine;
  // every other flow keeps its pinned path.
  Simulator sim;
  std::vector<uint64_t> keys = {11, 22, 33};
  const auto flows = SomeFlows(256);
  const std::vector<uint64_t> before = WinningKeys(&sim, keys, flows);
  keys.push_back(44);
  const std::vector<uint64_t> after = WinningKeys(&sim, keys, flows);
  size_t moved = 0;
  for (size_t i = 0; i < flows.size(); ++i) {
    if (after[i] != before[i]) {
      EXPECT_EQ(after[i], 44u) << "flow " << i << " moved to an old member";
      ++moved;
    }
  }
  // Expect roughly 1/4 of flows on the new member; assert loose bounds so
  // the test pins the property, not the hash values.
  EXPECT_GT(moved, flows.size() / 8);
  EXPECT_LT(moved, flows.size() / 2);
}

// Passive observer: per flow key, the set of egress ports used and the
// last-seen packet id (ids are stamped monotonically per sending endpoint,
// so a decrease means the fabric reordered inside the flow).
class FlowOrderTap : public SwitchTap {
 public:
  void OnSwitchPacket(const Packet& packet, const SwitchTapEvent& event) override {
    if (event.port == nullptr || event.dropped) {
      return;
    }
    const auto key = std::make_pair(packet.src_host, packet.dst_host);
    ports_[key].insert(event.port);
    auto [it, inserted] = last_id_.emplace(key, packet.id);
    if (!inserted) {
      if (packet.id <= it->second) {
        ++reorders_;
      }
      it->second = packet.id;
    }
  }

  const std::map<std::pair<uint32_t, uint32_t>, std::set<const SwitchPort*>>& ports() const {
    return ports_;
  }
  uint64_t reorders() const { return reorders_; }

 private:
  std::map<std::pair<uint32_t, uint32_t>, std::set<const SwitchPort*>> ports_;
  std::map<std::pair<uint32_t, uint32_t>, uint64_t> last_id_;
  uint64_t reorders_ = 0;
};

TEST(LeafSpineTest, FlowsPinToOneUplinkAndNeverReorder) {
  // 8 clients pinned to rack 1, one server per flow pinned to rack 0:
  // every flow crosses the ECMP uplinks. A tap on each rack checks that a
  // flow's packets all leave on a single uplink (client rack) and arrive
  // in send order (server rack) — under concurrent bulk traffic that
  // keeps multiple uplink queues busy.
  constexpr int kFlows = 8;
  FabricConfig config = FabricConfig::LeafSpine(kFlows, kFlows, 2, 2, /*trunk_bps=*/50e9);
  config.client_leaf_pin = 1;
  config.server_leaf_pin = 0;
  FabricTopology topo(config);

  FlowOrderTap client_rack_tap;
  FlowOrderTap server_rack_tap;
  topo.leaf_switch(1).SetTap(&client_rack_tap);
  topo.leaf_switch(0).SetTap(&server_rack_tap);

  std::vector<ConnectedPair> conns(kFlows);
  std::vector<uint64_t> received(kFlows, 0);
  for (int i = 0; i < kFlows; ++i) {
    conns[i] = topo.Connect(i, i, static_cast<uint64_t>(i + 1), BulkTcp(), BulkTcp());
    TcpEndpoint* dst = conns[i].b;
    dst->SetReadableCallback([dst, &received, i] { received[i] += dst->Recv().bytes; });
    TcpEndpoint* src = conns[i].a;
    auto pump = [src] {
      while (src->Send(16 * 1024, MessageRecord{})) {
      }
    };
    src->SetWritableCallback(pump);
    topo.sim().Schedule(Duration::Zero(), pump);
  }
  topo.sim().RunFor(Duration::Millis(5));

  EXPECT_EQ(client_rack_tap.reorders(), 0u);
  EXPECT_EQ(server_rack_tap.reorders(), 0u);
  std::set<const SwitchPort*> uplinks_used;
  for (int i = 0; i < kFlows; ++i) {
    EXPECT_GT(received[i], 0u) << "flow " << i << " moved no data";
    const auto key = std::make_pair(topo.client_host(i).id(), topo.server_host(i).id());
    const auto it = client_rack_tap.ports().find(key);
    ASSERT_NE(it, client_rack_tap.ports().end()) << "flow " << i << " never crossed its rack";
    EXPECT_EQ(it->second.size(), 1u) << "flow " << i << " used more than one uplink";
    uplinks_used.insert(*it->second.begin());
  }
  // With 8 flows over 2 spines the keyed hash spreads across both (fixed
  // seed; a change here means the hash, not the traffic, changed).
  EXPECT_EQ(uplinks_used.size(), 2u);
  EXPECT_EQ(topo.total_forwarding_misses(), 0u);
}

// One leaf-spine cell's observable outcome, as a flat digest: app bytes,
// endpoint retransmits, final event count, and every switch port's
// counters. Any worker-count-dependent divergence shows up here.
std::vector<uint64_t> RunLeafSpineCell(int shards) {
  constexpr int kClients = 6;
  FabricConfig config = FabricConfig::LeafSpine(kClients, 2, 3, 2, /*trunk_bps=*/50e9);
  config.shards = shards;
  FabricTopology topo(config);
  std::vector<ConnectedPair> conns(kClients);
  std::vector<uint64_t> received(kClients, 0);
  for (int i = 0; i < kClients; ++i) {
    conns[i] = topo.Connect(i, i % 2, static_cast<uint64_t>(i + 1), BulkTcp(), BulkTcp());
    TcpEndpoint* dst = conns[i].b;
    dst->SetReadableCallback([dst, &received, i] { received[i] += dst->Recv().bytes; });
    TcpEndpoint* src = conns[i].a;
    auto pump = [src] {
      while (src->Send(8 * 1024, MessageRecord{})) {
      }
    };
    src->SetWritableCallback(pump);
    DomainScope in_client(&topo.sim(), topo.client_host(i).domain());
    topo.sim().Schedule(Duration::Zero(), pump);
  }
  topo.sim().RunFor(Duration::Millis(3));

  std::vector<uint64_t> digest = received;
  for (int i = 0; i < kClients; ++i) {
    digest.push_back(conns[i].a->stats().retransmits);
  }
  digest.push_back(topo.sim().events_fired());
  for (size_t s = 0; s < topo.num_switches(); ++s) {
    Switch& sw = topo.fabric_switch(s);
    digest.push_back(sw.ecmp_forwards());
    for (size_t p = 0; p < sw.num_ports(); ++p) {
      const SwitchPort::Counters& c = sw.port(p).counters();
      digest.push_back(c.packets_out);
      digest.push_back(c.bytes_out);
      digest.push_back(c.tail_drops);
      digest.push_back(c.max_queue_bytes);
    }
  }
  return digest;
}

TEST(LeafSpineTest, CellIsBitIdenticalAcrossWorkerCounts) {
  const std::vector<uint64_t> one = RunLeafSpineCell(1);
  ASSERT_GT(one.size(), 6u);
  for (int shards : {2, 4}) {
    EXPECT_EQ(RunLeafSpineCell(shards), one) << "shards=" << shards;
  }
}

}  // namespace
}  // namespace e2e
