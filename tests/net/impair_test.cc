// Unit coverage for the impairment engine: Gilbert-Elliott convergence to
// the analytic stationary loss rate, FIFO preservation when reordering is
// disabled, exact duplicate/corrupt counters, reorder-gap semantics, and
// the determinism contract (same seed => identical arrival trace).

#include "src/net/impair/impairment.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/testbed/topology.h"

namespace e2e {
namespace {

class RecordingSink : public PacketSink {
 public:
  explicit RecordingSink(Simulator* sim) : sim_(sim) {}
  void DeliverPacket(Packet packet) override {
    arrivals.push_back({sim_->Now(), packet.id, packet.corrupted});
  }
  struct Arrival {
    TimePoint when;
    uint64_t id;
    bool corrupted;
    bool operator==(const Arrival&) const = default;
  };
  std::vector<Arrival> arrivals;

 private:
  Simulator* sim_;
};

Packet Pkt(uint64_t id, size_t bytes = 100) {
  Packet packet;
  packet.id = id;
  packet.wire_bytes = bytes;
  return packet;
}

TEST(GilbertElliottTest, StationaryRateMatchesAnalyticFormula) {
  GilbertElliottConfig config = GilbertElliottConfig::FromBurstAndRate(10.0, 0.05);
  EXPECT_DOUBLE_EQ(config.MeanBurstPackets(), 10.0);
  EXPECT_NEAR(config.StationaryLossRate(), 0.05, 1e-12);
  EXPECT_NEAR(config.StationaryBadProbability(), 0.05, 1e-12);  // Classic Gilbert.
}

TEST(GilbertElliottTest, EmpiricalLossConvergesToStationaryRate) {
  const GilbertElliottConfig config = GilbertElliottConfig::FromBurstAndRate(8.0, 0.02);
  GilbertElliottModel model(config);
  Rng rng(1234);
  const int n = 400000;
  int dropped = 0;
  for (int i = 0; i < n; ++i) {
    dropped += model.ShouldDrop(rng) ? 1 : 0;
  }
  const double empirical = static_cast<double>(dropped) / n;
  // Burst correlation inflates the variance vs. i.i.d.; 25% relative slack
  // is still far tighter than, say, a doubled or halved rate.
  EXPECT_NEAR(empirical, config.StationaryLossRate(), 0.25 * config.StationaryLossRate());
}

TEST(ImpairmentChainTest, GeStageDropsAtStationaryRate) {
  Simulator sim;
  ImpairmentConfig config;
  config.gilbert_elliott = GilbertElliottConfig::FromBurstAndRate(5.0, 0.1);
  ImpairmentChain chain(&sim, config, Rng(7), "t");
  RecordingSink sink(&sim);
  chain.SetSink(&sink);
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    chain.DeliverPacket(Pkt(i));
  }
  sim.Run();
  ASSERT_EQ(chain.num_stages(), 1u);
  const ImpairmentCounters& c = chain.stage(0).counters();
  EXPECT_EQ(c.packets_in, static_cast<uint64_t>(n));
  EXPECT_EQ(c.packets_in, c.packets_out + c.dropped);
  EXPECT_EQ(sink.arrivals.size(), c.packets_out);
  const double empirical = static_cast<double>(c.dropped) / n;
  EXPECT_NEAR(empirical, 0.1, 0.025);
}

TEST(ImpairmentChainTest, ChainIsFifoWhenReorderingDisabled) {
  // Loss + corruption + duplication + order-preserving jitter: arrival ids
  // must be non-decreasing (duplicates repeat an id, never regress).
  Simulator sim;
  ImpairmentConfig config;
  config.iid_loss = 0.05;
  config.corrupt_probability = 0.05;
  config.duplicate_probability = 0.1;
  config.jitter = JitterConfig{};
  config.jitter->dist = JitterConfig::Dist::kExponential;
  config.jitter->mean = Duration::Micros(30);
  ImpairmentChain chain(&sim, config, Rng(99), "t");
  RecordingSink sink(&sim);
  chain.SetSink(&sink);

  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    sim.Schedule(Duration::Micros(2), [&chain, i] { chain.DeliverPacket(Pkt(i)); });
    sim.RunFor(Duration::Micros(2));
  }
  sim.Run();
  ASSERT_GT(sink.arrivals.size(), 1000u);
  for (size_t i = 1; i < sink.arrivals.size(); ++i) {
    ASSERT_GE(sink.arrivals[i].id, sink.arrivals[i - 1].id) << "FIFO violated at index " << i;
    ASSERT_GE(sink.arrivals[i].when, sink.arrivals[i - 1].when);
  }
}

TEST(ImpairmentChainTest, CorruptCounterIsExact) {
  Simulator sim;
  ImpairmentConfig config;
  config.corrupt_probability = 0.25;
  ImpairmentChain chain(&sim, config, Rng(5), "t");
  RecordingSink sink(&sim);
  chain.SetSink(&sink);
  const int n = 2000;
  for (int i = 0; i < n; ++i) {
    chain.DeliverPacket(Pkt(i));
  }
  sim.Run();
  ASSERT_EQ(chain.num_stages(), 1u);
  const ImpairmentCounters& c = chain.stage(0).counters();
  // Exact: every arrival is delivered (corruption never drops here) and the
  // counter equals the number of marked packets.
  EXPECT_EQ(sink.arrivals.size(), static_cast<size_t>(n));
  uint64_t corrupted_arrivals = 0;
  for (const auto& a : sink.arrivals) {
    corrupted_arrivals += a.corrupted ? 1 : 0;
  }
  EXPECT_EQ(corrupted_arrivals, c.corrupted);
  EXPECT_GT(c.corrupted, 0u);
  EXPECT_LT(c.corrupted, static_cast<uint64_t>(n));
}

TEST(ImpairmentChainTest, DuplicateCounterIsExact) {
  Simulator sim;
  ImpairmentConfig config;
  config.duplicate_probability = 0.25;
  ImpairmentChain chain(&sim, config, Rng(5), "t");
  RecordingSink sink(&sim);
  chain.SetSink(&sink);
  const int n = 2000;
  for (int i = 0; i < n; ++i) {
    chain.DeliverPacket(Pkt(i));
  }
  sim.Run();
  ASSERT_EQ(chain.num_stages(), 1u);
  const ImpairmentCounters& c = chain.stage(0).counters();
  // Exact: arrivals are originals plus one copy per duplication event, and
  // each duplicate follows its original immediately.
  EXPECT_EQ(sink.arrivals.size(), static_cast<size_t>(n) + c.duplicated);
  EXPECT_EQ(c.packets_out, c.packets_in + c.duplicated);
  uint64_t adjacent_repeats = 0;
  for (size_t i = 1; i < sink.arrivals.size(); ++i) {
    adjacent_repeats += sink.arrivals[i].id == sink.arrivals[i - 1].id ? 1 : 0;
  }
  EXPECT_EQ(adjacent_repeats, c.duplicated);
  EXPECT_GT(c.duplicated, 0u);
}

TEST(ImpairmentChainTest, ReorderGapReleasesAfterOvertakes) {
  Simulator sim;
  ImpairmentConfig config;
  config.reorder = ReorderConfig{};
  config.reorder->probability = 0.3;
  config.reorder->gap = 2;
  config.reorder->max_hold = Duration::Millis(10);
  ImpairmentChain chain(&sim, config, Rng(11), "t");
  RecordingSink sink(&sim);
  chain.SetSink(&sink);

  const int n = 2000;
  for (int i = 0; i < n; ++i) {
    chain.DeliverPacket(Pkt(i));
  }
  sim.Run();
  ASSERT_EQ(chain.num_stages(), 1u);
  const ImpairmentCounters& c = chain.stage(0).counters();
  EXPECT_EQ(sink.arrivals.size(), static_cast<size_t>(n));  // Nothing lost.
  EXPECT_GT(c.reordered, 100u);
  // Verify actual reordering happened and displacement is bounded by the
  // gap: a held packet is re-injected after exactly `gap` passers (so it
  // lands at most gap + (held backlog) positions late, never earlier than
  // a packet held before it).
  bool saw_inversion = false;
  for (size_t i = 1; i < sink.arrivals.size(); ++i) {
    if (sink.arrivals[i].id < sink.arrivals[i - 1].id) {
      saw_inversion = true;
      break;
    }
  }
  EXPECT_TRUE(saw_inversion);
}

TEST(ImpairmentChainTest, ReorderTimeoutReleasesTailPacket) {
  // A held packet with no following traffic must come out via max_hold.
  Simulator sim;
  ImpairmentConfig config;
  config.reorder = ReorderConfig{};
  config.reorder->probability = 0.999999;  // Hold (essentially) everything.
  config.reorder->gap = 3;
  config.reorder->max_hold = Duration::Micros(50);
  ImpairmentChain chain(&sim, config, Rng(3), "t");
  RecordingSink sink(&sim);
  chain.SetSink(&sink);
  chain.DeliverPacket(Pkt(1));
  sim.Run();
  ASSERT_EQ(sink.arrivals.size(), 1u);
  EXPECT_EQ(sink.arrivals[0].when, TimePoint::Zero() + Duration::Micros(50));
}

TEST(ImpairmentChainTest, SameSeedReplaysByteIdentically) {
  auto run = [](uint64_t seed) {
    Simulator sim;
    ImpairmentConfig config;
    config.gilbert_elliott = GilbertElliottConfig::FromBurstAndRate(4.0, 0.05);
    config.iid_loss = 0.02;
    config.corrupt_probability = 0.03;
    config.duplicate_probability = 0.05;
    config.reorder = ReorderConfig{};
    config.reorder->probability = 0.1;
    config.jitter = JitterConfig{};
    config.jitter->mean = Duration::Micros(15);
    ImpairmentChain chain(&sim, config, Rng(seed), "t");
    RecordingSink sink(&sim);
    chain.SetSink(&sink);
    for (int i = 0; i < 3000; ++i) {
      sim.Schedule(Duration::Micros(1), [&chain, i] { chain.DeliverPacket(Pkt(i)); });
      sim.RunFor(Duration::Micros(1));
    }
    sim.Run();
    return sink.arrivals;
  };
  const auto a = run(42);
  const auto b = run(42);
  const auto c = run(43);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);  // And the seed actually matters.
}

TEST(ImpairmentChainTest, EmptyConfigIsTransparent) {
  Simulator sim;
  ImpairmentChain chain(&sim, ImpairmentConfig{}, Rng(1), "t");
  RecordingSink sink(&sim);
  chain.SetSink(&sink);
  EXPECT_EQ(chain.num_stages(), 0u);
  chain.DeliverPacket(Pkt(9));
  sim.Run();
  ASSERT_EQ(sink.arrivals.size(), 1u);
  EXPECT_EQ(sink.arrivals[0].when, TimePoint::Zero());  // No added delay.
}

TEST(ImpairmentIntegrationTest, CorruptedPacketsAreDroppedByReceiverChecksum) {
  TopologyConfig topo_config;
  topo_config.c2s_impairment.corrupt_probability = 0.05;
  TwoHostTopology topo(topo_config);
  TcpConfig tcp;
  tcp.nodelay = true;
  ConnectedPair conn = topo.Connect(1, tcp, tcp);

  MessageRecord record;
  for (int i = 0; i < 200; ++i) {
    topo.sim().Schedule(Duration::Micros(20 * (i + 1)), [&, record] {
      topo.client_host().app_core().SubmitFixed(Duration::Micros(1),
                                                [&, record] { conn.a->Send(2000, record); });
    });
  }
  // Two seconds: corrupted segments that slip past fast retransmit wait out
  // the 200 ms RTO floor (possibly more than once) before being repaired.
  topo.sim().RunFor(Duration::Seconds(2));

  ASSERT_NE(topo.c2s_impairment(), nullptr);
  EXPECT_GT(topo.c2s_impairment()->TotalCorrupted(), 0u);
  EXPECT_EQ(topo.server_host().nic().rx_checksum_drops(),
            topo.c2s_impairment()->TotalCorrupted());
  // TCP retransmits recover every corrupted segment.
  EXPECT_GT(conn.a->stats().retransmits, 0u);
  EXPECT_EQ(conn.b->Recv().bytes, 200u * 2000u);
}

}  // namespace
}  // namespace e2e
