#include "src/apps/resp.h"

#include <gtest/gtest.h>

#include <string>

namespace e2e {
namespace {

TEST(RespEncodeTest, CommandFormat) {
  EXPECT_EQ(RespEncodeCommand({"SET", "k", "v"}), "*3\r\n$3\r\nSET\r\n$1\r\nk\r\n$1\r\nv\r\n");
  EXPECT_EQ(RespEncodeCommand({"GET", "key"}), "*2\r\n$3\r\nGET\r\n$3\r\nkey\r\n");
}

TEST(RespEncodeTest, ReplyFormats) {
  EXPECT_EQ(RespEncodeSimpleString("OK"), "+OK\r\n");
  EXPECT_EQ(RespEncodeError("ERR boom"), "-ERR boom\r\n");
  EXPECT_EQ(RespEncodeInteger(-42), ":-42\r\n");
  EXPECT_EQ(RespEncodeBulk("hello"), "$5\r\nhello\r\n");
  EXPECT_EQ(RespEncodeNullBulk(), "$-1\r\n");
}

TEST(RespSizeTest, OkReplyIsFiveBytes) {
  EXPECT_EQ(kRespOkSize, RespEncodeSimpleString("OK").size());
  EXPECT_EQ(kRespNullBulkSize, RespEncodeNullBulk().size());
}

TEST(RespSizeTest, PaperByteRatioFor95to5Mix) {
  // One 16 KiB GET reply vs 95 SET replies: the ~34x from Figure 4b.
  const double ratio =
      static_cast<double>(RespBulkReplySize(16384)) / (95.0 * kRespOkSize);
  EXPECT_NEAR(ratio, 34.5, 0.2);
}

// Property: the size calculators must agree with the real encoder for any
// key/value size.
class RespSizeAgreementTest : public ::testing::TestWithParam<std::pair<size_t, size_t>> {};

TEST_P(RespSizeAgreementTest, CalculatorMatchesEncoder) {
  const auto [key_len, value_len] = GetParam();
  const std::string key(key_len, 'k');
  const std::string value(value_len, 'v');
  EXPECT_EQ(RespSetCommandSize(key_len, value_len),
            RespEncodeCommand({"SET", key, value}).size());
  EXPECT_EQ(RespGetCommandSize(key_len), RespEncodeCommand({"GET", key}).size());
  EXPECT_EQ(RespBulkReplySize(value_len), RespEncodeBulk(value).size());
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, RespSizeAgreementTest,
    ::testing::Values(std::pair<size_t, size_t>{1, 1}, std::pair<size_t, size_t>{16, 9},
                      std::pair<size_t, size_t>{16, 10}, std::pair<size_t, size_t>{16, 99},
                      std::pair<size_t, size_t>{16, 100}, std::pair<size_t, size_t>{16, 16384},
                      std::pair<size_t, size_t>{100, 65536},
                      std::pair<size_t, size_t>{9, 999999}));

TEST(RespParserTest, ParsesWholeValues) {
  RespParser parser;
  parser.Feed("+PONG\r\n:123\r\n$3\r\nabc\r\n$-1\r\n-ERR x\r\n");
  auto v1 = parser.TryParse();
  ASSERT_TRUE(v1.has_value());
  EXPECT_EQ(v1->kind, RespValue::Kind::kSimpleString);
  EXPECT_EQ(v1->str, "PONG");
  auto v2 = parser.TryParse();
  EXPECT_EQ(v2->kind, RespValue::Kind::kInteger);
  EXPECT_EQ(v2->integer, 123);
  auto v3 = parser.TryParse();
  EXPECT_EQ(v3->kind, RespValue::Kind::kBulkString);
  EXPECT_EQ(v3->str, "abc");
  auto v4 = parser.TryParse();
  EXPECT_EQ(v4->kind, RespValue::Kind::kNullBulk);
  auto v5 = parser.TryParse();
  EXPECT_EQ(v5->kind, RespValue::Kind::kError);
  EXPECT_EQ(v5->str, "ERR x");
  EXPECT_FALSE(parser.TryParse().has_value());
  EXPECT_EQ(parser.buffered_bytes(), 0u);
}

TEST(RespParserTest, ParsesNestedArrays) {
  RespParser parser;
  parser.Feed("*2\r\n*2\r\n+a\r\n+b\r\n$1\r\nc\r\n");
  auto value = parser.TryParse();
  ASSERT_TRUE(value.has_value());
  ASSERT_EQ(value->kind, RespValue::Kind::kArray);
  ASSERT_EQ(value->array.size(), 2u);
  EXPECT_EQ(value->array[0].array[1].str, "b");
  EXPECT_EQ(value->array[1].str, "c");
}

// Property: feeding the stream in any chunk size yields the same commands.
class RespChunkingTest : public ::testing::TestWithParam<size_t> {};

TEST_P(RespChunkingTest, IncrementalParsingIsChunkInvariant) {
  const std::string wire = RespEncodeCommand({"SET", "key", std::string(100, 'v')}) +
                           RespEncodeCommand({"GET", "key"}) + RespEncodeSimpleString("OK") +
                           RespEncodeBulk(std::string(57, 'x'));
  RespParser parser;
  std::vector<RespValue> values;
  const size_t chunk = GetParam();
  for (size_t off = 0; off < wire.size(); off += chunk) {
    parser.Feed(std::string_view(wire).substr(off, chunk));
    while (auto value = parser.TryParse()) {
      values.push_back(std::move(*value));
    }
  }
  ASSERT_EQ(values.size(), 4u);
  EXPECT_EQ(values[0].array[0].str, "SET");
  EXPECT_EQ(values[0].array[2].str.size(), 100u);
  EXPECT_EQ(values[1].array[0].str, "GET");
  EXPECT_EQ(values[2].str, "OK");
  EXPECT_EQ(values[3].str.size(), 57u);
}

INSTANTIATE_TEST_SUITE_P(ChunkSizes, RespChunkingTest,
                         ::testing::Values(1u, 2u, 3u, 7u, 16u, 64u, 1024u));

TEST(RespParserTest, IncompleteBulkWaitsForBytes) {
  RespParser parser;
  parser.Feed("$10\r\n12345");
  EXPECT_FALSE(parser.TryParse().has_value());
  parser.Feed("67890\r\n");
  auto value = parser.TryParse();
  ASSERT_TRUE(value.has_value());
  EXPECT_EQ(value->str, "1234567890");
}

TEST(RespParserTest, MalformedInputThrows) {
  RespParser bad_type;
  bad_type.Feed("?what\r\n");
  EXPECT_THROW(bad_type.TryParse(), std::runtime_error);

  RespParser bad_int;
  bad_int.Feed(":12x\r\n");
  EXPECT_THROW(bad_int.TryParse(), std::runtime_error);

  RespParser bad_terminator;
  bad_terminator.Feed("$3\r\nabcXY\r\n");
  EXPECT_THROW(bad_terminator.TryParse(), std::runtime_error);
}

}  // namespace
}  // namespace e2e
