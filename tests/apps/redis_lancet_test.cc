// Server + load-generator behavior over the full stack (short runs).

#include <gtest/gtest.h>

#include "src/apps/lancet.h"
#include "src/apps/redis_server.h"
#include "src/testbed/experiment.h"
#include "src/testbed/topology.h"

namespace e2e {
namespace {

struct AppFixture {
  AppFixture(double rate_rps, const WorkloadMix& mix, bool prefill = true)
      : topo(RedisExperimentConfig::DefaultRedisTopology()),
        conn(topo.Connect(1, RedisExperimentConfig::DefaultClientTcp(),
                          RedisExperimentConfig::DefaultServerTcp())),
        server(&topo.sim(), conn.b, RedisServerApp::Config{}) {
    if (prefill) {
      for (uint64_t key = 0; key < mix.key_space; ++key) {
        server.mutable_store().Set(key, mix.get_value_len);
      }
    }
    LancetClient::Config config;
    config.rate_rps = rate_rps;
    config.mix = mix;
    config.warmup = Duration::Millis(20);
    config.measure = Duration::Millis(100);
    config.seed = 3;
    client = std::make_unique<LancetClient>(&topo.sim(), conn.a, config);
  }

  void Run() {
    client->Start();
    topo.sim().RunFor(Duration::Millis(160));
  }

  TwoHostTopology topo;
  ConnectedPair conn;
  RedisServerApp server;
  std::unique_ptr<LancetClient> client;
};

TEST(RedisLancetTest, EveryRequestGetsExactlyOneResponse) {
  AppFixture f(10000, WorkloadMix::SetOnly16K());
  f.Run();
  const LancetClient::Results& results = f.client->results();
  EXPECT_GT(results.sent, 1000u);
  EXPECT_EQ(results.dropped, 0u);
  EXPECT_EQ(f.server.stats().requests, f.server.stats().responses);
  // Everything sent before the drain phase completes.
  EXPECT_EQ(results.completed, results.sent);
  EXPECT_EQ(f.client->in_flight(), 0u);
}

TEST(RedisLancetTest, HintQueueBalancesAtQuiescence) {
  AppFixture f(10000, WorkloadMix::SetOnly16K());
  f.Run();
  EXPECT_EQ(f.client->hints().outstanding(), 0);
  EXPECT_EQ(f.client->hints().completed(),
            static_cast<int64_t>(f.client->results().completed +
                                 f.client->results().dropped));
}

TEST(RedisLancetTest, LatenciesArePositiveAndSane) {
  AppFixture f(10000, WorkloadMix::SetOnly16K());
  f.Run();
  const LancetClient::Results& results = f.client->results();
  ASSERT_GT(results.measured, 100u);
  EXPECT_GT(results.latency_us.min(), 1.0);    // More than a microsecond...
  EXPECT_LT(results.latency_us.mean(), 1000);  // ...but well under a ms at 10k.
  EXPECT_GE(results.sojourn_us.mean(), results.latency_us.mean());
  EXPECT_NEAR(results.achieved_rps, 10000, 1500);
}

TEST(RedisLancetTest, GetsAreServedFromTheStore) {
  WorkloadMix mix = WorkloadMix::SetGet16K(0.5);
  AppFixture f(5000, mix);
  f.Run();
  EXPECT_GT(f.server.stats().gets, 50u);
  EXPECT_GT(f.server.stats().sets, 50u);
  // Prefilled store: every GET must hit.
  EXPECT_EQ(f.server.store().stats().hits, f.server.store().stats().gets);
}

TEST(RedisLancetTest, UnprefilledStoreServesMisses) {
  WorkloadMix mix = WorkloadMix::SetGet16K(0.0);  // GET-only.
  AppFixture f(2000, mix, /*prefill=*/false);
  f.Run();
  EXPECT_GT(f.server.stats().gets, 20u);
  EXPECT_EQ(f.server.store().stats().hits, 0u);
  // Misses still produce (null bulk) responses.
  EXPECT_EQ(f.server.stats().requests, f.server.stats().responses);
  EXPECT_EQ(f.client->results().completed, f.client->results().sent);
}

TEST(RedisLancetTest, ServerBatchesUnderBurstyLoad) {
  AppFixture f(50000, WorkloadMix::SetOnly16K());
  f.Run();
  // At 50 kRPS the event loop must be picking up multiple requests per
  // wakeup at least occasionally.
  EXPECT_GT(f.server.stats().max_batch, 1u);
}

TEST(RedisLancetTest, OverloadDropsInsteadOfWedging) {
  AppFixture f(200000, WorkloadMix::SetOnly16K());  // ~5x capacity.
  f.Run();
  const LancetClient::Results& results = f.client->results();
  EXPECT_GT(results.dropped, 0u);  // Flow control backed up to the client.
  EXPECT_GT(results.completed, 1000u);  // But the server kept serving.
  EXPECT_EQ(f.client->hints().outstanding(),
            static_cast<int64_t>(f.client->in_flight()));
}

}  // namespace
}  // namespace e2e
