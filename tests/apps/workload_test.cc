#include "src/apps/workload.h"

#include <gtest/gtest.h>

#include "src/apps/cost_profile.h"
#include "src/sim/stats.h"

namespace e2e {
namespace {

TEST(WorkloadTest, SetOnlyProducesOnlySets) {
  WorkloadGenerator gen(WorkloadMix::SetOnly16K(), Rng(1));
  for (int i = 0; i < 100; ++i) {
    const AppRequest req = gen.Next();
    EXPECT_EQ(req.op, OpType::kSet);
    EXPECT_EQ(req.value_len, 16384u);
    EXPECT_EQ(req.key_len, 16u);
  }
}

TEST(WorkloadTest, MixedRatioApproximatelyHolds) {
  WorkloadGenerator gen(WorkloadMix::SetGet16K(0.95), Rng(2));
  int sets = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    sets += gen.Next().op == OpType::kSet ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(sets) / n, 0.95, 0.01);
}

TEST(WorkloadTest, IdsAreSequentialAndUnique) {
  WorkloadGenerator gen(WorkloadMix::SetOnly16K(), Rng(3));
  uint64_t last = 0;
  for (int i = 0; i < 50; ++i) {
    const AppRequest req = gen.Next();
    EXPECT_EQ(req.id, last + 1);
    last = req.id;
  }
}

TEST(WorkloadTest, DispersedValueSizesMatchMeanAndCv) {
  WorkloadMix mix;
  mix.set_value_cv = 1.0;
  WorkloadGenerator gen(mix, Rng(9));
  RunningStats sizes;
  for (int i = 0; i < 50000; ++i) {
    const AppRequest req = gen.Next();
    ASSERT_GE(req.value_len, 64u);
    sizes.Add(req.value_len);
  }
  EXPECT_NEAR(sizes.mean(), 16384.0, 600.0);
  EXPECT_NEAR(sizes.stddev() / sizes.mean(), 1.0, 0.1);
}

TEST(WorkloadTest, ZeroCvKeepsSizesFixed) {
  WorkloadMix mix;
  WorkloadGenerator gen(mix, Rng(10));
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(gen.Next().value_len, 16384u);
  }
}

TEST(WorkloadTest, KeyIdsStayInKeySpace) {
  WorkloadMix mix;
  mix.key_space = 17;
  WorkloadGenerator gen(mix, Rng(4));
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(gen.NextKeyId(), 17u);
  }
}

TEST(WorkloadTest, WireSizesMatchResp) {
  WorkloadGenerator gen(WorkloadMix::SetGet16K(0.5), Rng(5));
  for (int i = 0; i < 100; ++i) {
    const AppRequest req = gen.Next();
    if (req.op == OpType::kSet) {
      EXPECT_EQ(req.WireSize(), RespSetCommandSize(16, 16384));
    } else {
      EXPECT_EQ(req.WireSize(), RespGetCommandSize(16));
    }
  }
}

TEST(MessagesTest, ResponseWireSizes) {
  AppResponse set_ok;
  set_ok.op = OpType::kSet;
  EXPECT_EQ(set_ok.WireSize(), kRespOkSize);

  AppResponse get_hit;
  get_hit.op = OpType::kGet;
  get_hit.found = true;
  get_hit.value_len = 16384;
  EXPECT_EQ(get_hit.WireSize(), RespBulkReplySize(16384));

  AppResponse get_miss;
  get_miss.op = OpType::kGet;
  get_miss.found = false;
  EXPECT_EQ(get_miss.WireSize(), kRespNullBulkSize);
}

TEST(CostProfileTest, MessageCostScalesWithPayload) {
  AppCosts costs;
  costs.per_message = Duration::Micros(2);
  costs.per_kilobyte = Duration::Nanos(500);
  EXPECT_EQ(costs.MessageCost(0), Duration::Micros(2));
  EXPECT_EQ(costs.MessageCost(16384), Duration::Micros(2) + Duration::Nanos(16 * 500));
}

TEST(CostProfileTest, ScaledMultipliesEverything) {
  const AppCosts base = BareMetalClientCosts();
  const AppCosts vm = base.Scaled(6.0);
  EXPECT_EQ(vm.per_message, base.per_message * 6);
  EXPECT_EQ(vm.syscall, base.syscall * 6);
  EXPECT_EQ(vm.wakeup, base.wakeup * 6);
  EXPECT_EQ(vm.per_kilobyte, base.per_kilobyte * 6);
  EXPECT_EQ(vm.MessageCost(1024), base.MessageCost(1024) * 6);
}

}  // namespace
}  // namespace e2e
