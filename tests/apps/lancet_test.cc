// Load-generator behaviors: open-loop pacing, measurement windows,
// pipelining flush, and component bookkeeping.

#include <gtest/gtest.h>

#include "src/apps/lancet.h"
#include "src/apps/redis_server.h"
#include "src/testbed/experiment.h"
#include "src/testbed/topology.h"

namespace e2e {
namespace {

struct LancetFixture {
  explicit LancetFixture(const LancetClient::Config& config)
      : topo(RedisExperimentConfig::DefaultRedisTopology()),
        conn(topo.Connect(1, RedisExperimentConfig::DefaultClientTcp(),
                          RedisExperimentConfig::DefaultServerTcp())),
        server(&topo.sim(), conn.b, RedisServerApp::Config{}),
        client(&topo.sim(), conn.a, config) {}

  TwoHostTopology topo;
  ConnectedPair conn;
  RedisServerApp server;
  LancetClient client;
};

LancetClient::Config Cfg(double rate) {
  LancetClient::Config config;
  config.rate_rps = rate;
  config.warmup = Duration::Millis(20);
  config.measure = Duration::Millis(200);
  config.seed = 8;
  return config;
}

TEST(LancetTest, OpenLoopRateIsPoissonPaced) {
  LancetFixture f(Cfg(20000));
  f.client.Start();
  f.topo.sim().RunFor(Duration::Millis(260));
  // 220 ms of arrivals at 20k/s: ~4400 sends; Poisson sd ~66.
  EXPECT_NEAR(static_cast<double>(f.client.results().sent), 4400.0, 300.0);
}

TEST(LancetTest, OnlyWindowRequestsAreMeasured) {
  LancetFixture f(Cfg(20000));
  f.client.Start();
  f.topo.sim().RunFor(Duration::Millis(260));
  const LancetClient::Results& results = f.client.results();
  // The measurement window is 200 of the 220 arrival milliseconds.
  EXPECT_LT(results.measured, results.completed);
  EXPECT_NEAR(static_cast<double>(results.measured), 4000.0, 300.0);
  EXPECT_NEAR(results.achieved_rps, 20000.0, 1500.0);
}

TEST(LancetTest, ArrivalsStopAtMeasureEnd) {
  LancetFixture f(Cfg(20000));
  f.client.Start();
  f.topo.sim().RunFor(Duration::Millis(500));  // Far past warmup + measure.
  const uint64_t sent = f.client.results().sent;
  f.topo.sim().RunFor(Duration::Millis(100));
  EXPECT_EQ(f.client.results().sent, sent);  // No stragglers.
  EXPECT_EQ(f.client.in_flight(), 0u);
}

TEST(LancetTest, ComponentStatsCoverEveryMeasuredRequest) {
  LancetFixture f(Cfg(15000));
  f.client.Start();
  f.topo.sim().RunFor(Duration::Millis(300));
  const LancetClient::Results& results = f.client.results();
  EXPECT_EQ(results.request_leg_us.count(), results.latency_us.count());
  EXPECT_EQ(results.server_us.count(), results.latency_us.count());
  EXPECT_EQ(results.response_leg_us.count(), results.latency_us.count());
  EXPECT_GT(results.server_us.mean(), 5.0);  // ~12 us of server work.
  EXPECT_LT(results.server_us.stddev(), 1.0);  // Deterministic per request.
}

TEST(LancetTest, PipelinePartialBatchFlushesOnTimer) {
  // 500 RPS with depth 8: batches essentially never fill; the 100 us flush
  // timer must carry every request anyway.
  LancetClient::Config config = Cfg(500);
  config.pipeline_depth = 8;
  config.pipeline_flush = Duration::Micros(100);
  LancetFixture f(config);
  f.client.Start();
  f.topo.sim().RunFor(Duration::Millis(300));
  const LancetClient::Results& results = f.client.results();
  EXPECT_GT(results.completed, 50u);
  EXPECT_EQ(results.completed, results.sent);
  // The flush delay bounds the extra sojourn: roughly flush + service.
  EXPECT_LT(results.sojourn_us.mean(), results.latency_us.mean() + 150.0);
}

TEST(LancetTest, PipelineDepthReducesSyscallCount) {
  LancetClient::Config config = Cfg(30000);
  config.pipeline_depth = 4;
  config.pipeline_flush = Duration::Millis(1);
  LancetFixture f(config);
  f.client.Start();
  f.topo.sim().RunFor(Duration::Millis(300));
  const int64_t syscalls =
      f.conn.a->queues().Get(QueueKind::kUnacked, UnitMode::kSyscalls).total();
  const uint64_t messages = f.client.results().sent;
  EXPECT_GT(messages, 4000u);
  // ~4 messages per syscall (some partial batches at the flush timer).
  EXPECT_LT(syscalls, static_cast<int64_t>(messages / 3));
  EXPECT_GT(syscalls, static_cast<int64_t>(messages / 5));
}

TEST(LancetTest, HintsCanBeDisabled) {
  LancetClient::Config config = Cfg(10000);
  config.use_hints = false;
  LancetFixture f(config);
  f.client.Start();
  f.topo.sim().RunFor(Duration::Millis(300));
  // The tracker still runs app-side, but nothing reaches the peer.
  EXPECT_GT(f.client.results().completed, 1000u);
  EXPECT_FALSE(f.conn.b->estimator().hint_latency().has_value());
}

}  // namespace
}  // namespace e2e
