#include "src/apps/kv_store.h"

#include <gtest/gtest.h>

namespace e2e {
namespace {

TEST(KvStoreTest, SetGetRoundTrip) {
  KvStore store;
  store.Set("k1", "hello");
  auto value = store.Get("k1");
  ASSERT_TRUE(value.has_value());
  EXPECT_EQ(*value, "hello");
  EXPECT_FALSE(store.Get("missing").has_value());
}

TEST(KvStoreTest, SetOverwrites) {
  KvStore store;
  store.Set("k", "old");
  store.Set("k", "new");
  EXPECT_EQ(*store.Get("k"), "new");
  EXPECT_EQ(store.size(), 1u);
}

TEST(KvStoreTest, DelAndExists) {
  KvStore store;
  store.Set("k", "v");
  EXPECT_TRUE(store.Exists("k"));
  EXPECT_TRUE(store.Del("k"));
  EXPECT_FALSE(store.Exists("k"));
  EXPECT_FALSE(store.Del("k"));  // Already gone.
}

TEST(KvStoreTest, StatsCountOperations) {
  KvStore store;
  store.Set("a", "1");
  store.Get("a");
  store.Get("b");
  store.Del("a");
  EXPECT_EQ(store.stats().sets, 1u);
  EXPECT_EQ(store.stats().gets, 2u);
  EXPECT_EQ(store.stats().hits, 1u);
  EXPECT_EQ(store.stats().dels, 1u);
}

TEST(VirtualKvStoreTest, StoresOnlySizes) {
  VirtualKvStore store;
  store.Set(7, 16384);
  auto size = store.Get(7);
  ASSERT_TRUE(size.has_value());
  EXPECT_EQ(*size, 16384u);
  EXPECT_FALSE(store.Get(8).has_value());
  EXPECT_EQ(store.stats().hits, 1u);
  EXPECT_EQ(store.stats().gets, 2u);
}

}  // namespace
}  // namespace e2e
