// Closed-loop behavior of the dynamic controllers on the live system.

#include <gtest/gtest.h>

#include "src/testbed/experiment.h"

namespace e2e {
namespace {

RedisExperimentConfig DynConfig(double krps, BatchMode mode) {
  RedisExperimentConfig config;
  config.rate_rps = krps * 1e3;
  config.batch_mode = mode;
  config.warmup = Duration::Millis(200);
  config.measure = Duration::Millis(400);
  config.seed = 13;
  return config;
}

TEST(DynamicControlIntegration, HighLoadConvergesToBatching) {
  const RedisExperimentResult r = RunRedisExperiment(DynConfig(65, BatchMode::kDynamic));
  EXPECT_GT(r.duty_cycle_on, 0.8);
  // Must sidestep the no-batching collapse (12+ ms at this load).
  EXPECT_LT(r.measured_mean_us, 2000.0);
}

TEST(DynamicControlIntegration, LowLoadMostlyDisablesBatching) {
  const RedisExperimentResult r = RunRedisExperiment(DynConfig(10, BatchMode::kDynamic));
  EXPECT_LT(r.duty_cycle_on, 0.6);
  const RedisExperimentResult off = RunRedisExperiment(DynConfig(10, BatchMode::kStaticOff));
  const RedisExperimentResult on = RunRedisExperiment(DynConfig(10, BatchMode::kStaticOn));
  // Dynamic lands between the static settings, nearer the good one.
  EXPECT_LT(r.measured_mean_us, on.measured_mean_us);
  EXPECT_GT(r.measured_mean_us, off.measured_mean_us * 0.9);
}

TEST(DynamicControlIntegration, ControllerActuallySwitches) {
  const RedisExperimentResult r = RunRedisExperiment(DynConfig(30, BatchMode::kDynamic));
  EXPECT_GT(r.controller_switches, 2u);
}

TEST(DynamicControlIntegration, AimdOpensLimitUnderPressure) {
  RedisExperimentConfig config = DynConfig(60, BatchMode::kAimd);
  config.aimd.aimd.max_limit = 1448;
  config.aimd.aimd.add_step = 64;
  const RedisExperimentResult r = RunRedisExperiment(config);
  EXPECT_GT(r.aimd_limit_bytes, 300.0);   // Substantial batching engaged.
  EXPECT_LT(r.measured_mean_us, 2000.0);  // And it kept the system stable.
}

TEST(DynamicControlIntegration, AimdStaysNodelayLikeAtLowLoad) {
  RedisExperimentConfig config = DynConfig(10, BatchMode::kAimd);
  config.aimd.aimd.max_limit = 1448;
  const RedisExperimentResult r = RunRedisExperiment(config);
  EXPECT_LT(r.aimd_limit_bytes, 200.0);
  EXPECT_LT(r.responses_per_packet, 1.2);
}

}  // namespace
}  // namespace e2e
