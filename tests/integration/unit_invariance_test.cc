// Paper §4: for homogeneous workloads, byte-unit estimates are accurate
// because bytes correlate with requests — "the difference is simply a
// matter of scaling by a constant". Little's-law *delays* are unit-free, so
// on fixed-size traffic all three kernel unit modes must report the same
// latency (their throughputs differing exactly by the unit scale).

#include <gtest/gtest.h>

#include "src/testbed/experiment.h"

namespace e2e {
namespace {

class UnitInvarianceTest : public ::testing::TestWithParam<double> {};

TEST_P(UnitInvarianceTest, KernelModesAgreeOnLatencyForFixedSizeTraffic) {
  RedisExperimentConfig config;
  config.rate_rps = GetParam() * 1e3;
  config.batch_mode = BatchMode::kStaticOff;
  config.warmup = Duration::Millis(100);
  config.measure = Duration::Millis(300);
  config.seed = 37;
  const RedisExperimentResult r = RunRedisExperiment(config);
  ASSERT_TRUE(r.est_bytes_us.has_value());
  ASSERT_TRUE(r.est_packets_us.has_value());
  ASSERT_TRUE(r.est_syscalls_us.has_value());
  // Latencies agree across unit modes to within 25% (they weight the
  // request/response directions slightly differently, but fixed sizes keep
  // them on one scale).
  EXPECT_NEAR(*r.est_packets_us, *r.est_bytes_us, *r.est_bytes_us * 0.25);
  EXPECT_NEAR(*r.est_syscalls_us, *r.est_bytes_us, *r.est_bytes_us * 0.35);
  // Throughputs differ by exactly the unit scale: requests are ~16430 B and
  // ~12 packets each, so bytes/s / syscalls/s ~ request size.
  EXPECT_NEAR(r.est_krps, r.offered_krps, r.offered_krps * 0.15);
}

INSTANTIATE_TEST_SUITE_P(Loads, UnitInvarianceTest, ::testing::Values(10.0, 25.0, 35.0));

}  // namespace
}  // namespace e2e
