// End-to-end accuracy of the estimation machinery against ground truth on
// the full Redis/Lancet experiment (short windows; the benches do the full
// sweeps).

#include <gtest/gtest.h>

#include "src/testbed/experiment.h"

namespace e2e {
namespace {

RedisExperimentConfig ShortConfig(double krps, BatchMode mode) {
  RedisExperimentConfig config;
  config.rate_rps = krps * 1e3;
  config.batch_mode = mode;
  config.warmup = Duration::Millis(100);
  config.measure = Duration::Millis(300);
  config.seed = 9;
  return config;
}

TEST(EstimationIntegration, EstimatesExistInEveryUnitMode) {
  const RedisExperimentResult r = RunRedisExperiment(ShortConfig(20, BatchMode::kStaticOff));
  ASSERT_TRUE(r.est_bytes_us.has_value());
  ASSERT_TRUE(r.est_packets_us.has_value());
  ASSERT_TRUE(r.est_syscalls_us.has_value());
  ASSERT_TRUE(r.est_hints_us.has_value());
  ASSERT_TRUE(r.online_est_us.has_value());
  EXPECT_GT(*r.est_bytes_us, 0);
}

TEST(EstimationIntegration, HintEstimateTracksGroundTruthClosely) {
  // Hints measure exactly what the app perceives (create -> complete), so
  // they should sit near the client's sojourn time at moderate load.
  const RedisExperimentResult r = RunRedisExperiment(ShortConfig(30, BatchMode::kStaticOff));
  ASSERT_TRUE(r.est_hints_us.has_value());
  EXPECT_NEAR(*r.est_hints_us, r.measured_mean_us, r.measured_mean_us * 0.4);
}

TEST(EstimationIntegration, ByteEstimateTracksQueueingGrowth) {
  // Under heavy load the measured latency is queueing-dominated and the
  // byte estimate must track it tightly (the paper's Figure 4a accuracy).
  const RedisExperimentResult heavy = RunRedisExperiment(ShortConfig(50, BatchMode::kStaticOff));
  ASSERT_TRUE(heavy.est_bytes_us.has_value());
  EXPECT_GT(heavy.measured_mean_us, 500.0);  // Past saturation.
  EXPECT_NEAR(*heavy.est_bytes_us, heavy.measured_mean_us, heavy.measured_mean_us * 0.15);
}

TEST(EstimationIntegration, EstimatesUnderestimateOnlyModestlyAtLowLoad) {
  // At low load the estimator excludes app processing time by design
  // (paper §3.2); the gap must stay bounded.
  const RedisExperimentResult light = RunRedisExperiment(ShortConfig(10, BatchMode::kStaticOff));
  ASSERT_TRUE(light.est_bytes_us.has_value());
  EXPECT_LT(*light.est_bytes_us, light.measured_mean_us);
  EXPECT_GT(*light.est_bytes_us, light.measured_mean_us * 0.4);
}

TEST(EstimationIntegration, NagleDirectionIsVisibleInBothMeasuredAndEstimated) {
  // The paper's key property: estimates order the two settings the same
  // way ground truth does, at loads on either side of the cutoff.
  const RedisExperimentResult low_off = RunRedisExperiment(ShortConfig(10, BatchMode::kStaticOff));
  const RedisExperimentResult low_on = RunRedisExperiment(ShortConfig(10, BatchMode::kStaticOn));
  EXPECT_LT(low_off.measured_mean_us, low_on.measured_mean_us);
  EXPECT_LT(*low_off.est_bytes_us, *low_on.est_bytes_us);

  const RedisExperimentResult high_off =
      RunRedisExperiment(ShortConfig(55, BatchMode::kStaticOff));
  const RedisExperimentResult high_on = RunRedisExperiment(ShortConfig(55, BatchMode::kStaticOn));
  EXPECT_GT(high_off.measured_mean_us, high_on.measured_mean_us);
  EXPECT_GT(*high_off.est_bytes_us, *high_on.est_bytes_us);
}

TEST(EstimationIntegration, ByteModeMispredictsHeterogeneousNagleAtLowLoad) {
  // Figure 4b: with 5% GETs, byte-weighted estimates miss most of the Nagle
  // penalty at low load while hint estimates keep seeing it.
  RedisExperimentConfig config = ShortConfig(10, BatchMode::kStaticOn);
  config.mix = WorkloadMix::SetGet16K(0.95);
  const RedisExperimentResult on = RunRedisExperiment(config);
  config.batch_mode = BatchMode::kStaticOff;
  const RedisExperimentResult off = RunRedisExperiment(config);
  ASSERT_TRUE(on.est_bytes_us.has_value() && on.est_hints_us.has_value());
  // Measured: Nagle clearly worse at 10 kRPS.
  EXPECT_GT(on.measured_mean_us, off.measured_mean_us * 1.5);
  // Byte estimates barely move; hint estimates see most of the penalty.
  const double byte_ratio = *on.est_bytes_us / *off.est_bytes_us;
  const double hint_ratio = *on.est_hints_us / *off.est_hints_us;
  EXPECT_LT(byte_ratio, 1.35);
  EXPECT_GT(hint_ratio, 1.5);
}

TEST(EstimationIntegration, LatencyComponentsSumToTheTotal) {
  // request leg + server + response leg partition [send(), response read]
  // exactly (shared timestamps, no gaps or overlaps).
  for (BatchMode mode : {BatchMode::kStaticOff, BatchMode::kStaticOn}) {
    const RedisExperimentResult r = RunRedisExperiment(ShortConfig(25, mode));
    const double sum = r.comp_request_leg_us + r.comp_server_us + r.comp_response_leg_us;
    EXPECT_NEAR(sum, r.measured_mean_us, 0.01);
  }
}

TEST(EstimationIntegration, NaglePenaltyLivesInTheResponseLeg) {
  const RedisExperimentResult off = RunRedisExperiment(ShortConfig(10, BatchMode::kStaticOff));
  const RedisExperimentResult on = RunRedisExperiment(ShortConfig(10, BatchMode::kStaticOn));
  // The held replies inflate the response leg; the other components barely
  // move.
  EXPECT_GT(on.comp_response_leg_us, off.comp_response_leg_us * 3);
  EXPECT_NEAR(on.comp_server_us, off.comp_server_us, 2.0);
  EXPECT_NEAR(on.comp_request_leg_us, off.comp_request_leg_us, 15.0);
}

TEST(EstimationIntegration, UtilizationsAreSane) {
  const RedisExperimentResult r = RunRedisExperiment(ShortConfig(30, BatchMode::kStaticOff));
  for (double util : {r.client_app_util, r.client_softirq_util, r.server_app_util,
                      r.server_softirq_util}) {
    EXPECT_GE(util, 0.0);
    EXPECT_LE(util, 1.001);
  }
  EXPECT_GT(r.server_app_util, r.server_softirq_util);  // App-bound system.
  EXPECT_NEAR(r.achieved_krps, 30, 3);
}

}  // namespace
}  // namespace e2e
