// Fabric-level ECN round trip (DESIGN.md §13): a switch port marks CE
// above its threshold, the receiving endpoint echoes ECE, the sender's
// congestion control reacts and announces CWR — all observable through the
// buffer-sizing driver's counters. Plus the study's qualitative headline:
// DCTCP on a shallow ECN threshold holds the queue (and therefore p99
// queueing delay) far below drop-tail Reno at a full BDP, without giving
// up throughput.

#include <gtest/gtest.h>

#include "src/testbed/buffer_sizing.h"

namespace e2e {
namespace {

// Short windows: these cells run in a few hundred ms of wall clock.
BufferSizingConfig QuickCell(FabricShape shape, CcAlgorithm algorithm) {
  BufferSizingConfig config;
  config.shape = shape;
  config.num_flows = 4;
  config.algorithm = algorithm;
  config.warmup = Duration::Millis(5);
  config.measure = Duration::Millis(20);
  return config;
}

TEST(EcnFabric, CeEceCwrRoundTripOnTheDumbbell) {
  BufferSizingConfig config = QuickCell(FabricShape::kDumbbell, CcAlgorithm::kDctcp);
  config.ecn = true;
  const uint64_t bdp = BdpBytes(config.bottleneck_bps, BufferSizingBaseRtt(config));
  config.buffer_bytes = bdp;
  config.ecn_threshold_bytes = bdp / 4;

  const BufferSizingResult r = RunBufferSizing(config);

  // Every leg of the loop fired: switch marked CE, server-side endpoints
  // saw the marks, client-side endpoints got the ECE echoes back, reacted
  // (decrease events), and announced the reductions with CWR.
  EXPECT_GT(r.ecn_marked, 0u);
  EXPECT_GT(r.ce_received, 0u);
  EXPECT_GT(r.ece_received, 0u);
  EXPECT_GT(r.cc_decreases, 0u);
  EXPECT_GT(r.cwr_sent, 0u);
  // Marks did the regulating: no buffer overflow, no loss recovery.
  EXPECT_EQ(r.drops, 0u);
  EXPECT_EQ(r.retransmits, 0u);
  // And the link still moved real traffic.
  EXPECT_GT(r.bottleneck_utilization, 0.5);
}

TEST(EcnFabric, CeEceCwrRoundTripOnTheIncastStar) {
  BufferSizingConfig config = QuickCell(FabricShape::kStar, CcAlgorithm::kDctcp);
  config.ecn = true;
  config.buffer_bytes = 256 * 1024;
  config.ecn_threshold_bytes = 32 * 1024;

  const BufferSizingResult r = RunBufferSizing(config);
  EXPECT_GT(r.ecn_marked, 0u);
  EXPECT_GT(r.ce_received, 0u);
  EXPECT_GT(r.ece_received, 0u);
  EXPECT_GT(r.cwr_sent, 0u);
  EXPECT_GT(r.aggregate_goodput_bps, 0.0);
}

TEST(EcnFabric, EcnOffNeverEmitsEcnSignalling) {
  BufferSizingConfig config = QuickCell(FabricShape::kDumbbell, CcAlgorithm::kReno);
  config.ecn = false;
  const uint64_t bdp = BdpBytes(config.bottleneck_bps, BufferSizingBaseRtt(config));
  config.buffer_bytes = bdp;
  // Threshold set but endpoints dark: the switch may mark, nobody echoes.
  config.ecn_threshold_bytes = bdp / 4;

  const BufferSizingResult r = RunBufferSizing(config);
  EXPECT_EQ(r.ce_received, 0u);
  EXPECT_EQ(r.ece_received, 0u);
  EXPECT_EQ(r.cwr_sent, 0u);
  EXPECT_GT(r.bottleneck_utilization, 0.5);
}

// The Spang et al. headline, one cell per side: Reno needs the BDP of
// drop-tail buffer and fills it (p99 queueing delay ~ the whole buffer's
// drain time); DCTCP on a BDP/4 buffer with a shallow threshold keeps
// comparable throughput at a fraction of the queue.
TEST(EcnFabric, DctcpHoldsTheQueueFarBelowDropTailReno) {
  BufferSizingConfig reno = QuickCell(FabricShape::kDumbbell, CcAlgorithm::kReno);
  const uint64_t bdp = BdpBytes(reno.bottleneck_bps, BufferSizingBaseRtt(reno));
  reno.buffer_bytes = bdp;

  BufferSizingConfig dctcp = QuickCell(FabricShape::kDumbbell, CcAlgorithm::kDctcp);
  dctcp.ecn = true;
  // Half-BDP buffer (the BDP/sqrt(n) rule at n = 4) with the marking
  // threshold at the DCTCP stability bound K ~ C*RTT/7 — below that the
  // queue drains dry between marks and throughput collapses.
  dctcp.buffer_bytes = bdp / 2;
  dctcp.ecn_threshold_bytes = bdp / 6;

  const BufferSizingResult r_reno = RunBufferSizing(reno);
  const BufferSizingResult r_dctcp = RunBufferSizing(dctcp);

  // Comparable goodput (DCTCP within 20% of Reno)...
  EXPECT_GT(r_dctcp.aggregate_goodput_bps, 0.8 * r_reno.aggregate_goodput_bps);
  // ...at well under half the standing queue, mean and tail.
  EXPECT_LT(r_dctcp.mean_queue_bytes, 0.5 * r_reno.mean_queue_bytes);
  EXPECT_LT(r_dctcp.p99_queue_delay_us, 0.5 * r_reno.p99_queue_delay_us);
}

// Same-seed cells are byte-identical (the determinism contract the sweep's
// --jobs=N mode and CI byte-compare both lean on).
TEST(EcnFabric, SameSeedRunsAreIdentical) {
  BufferSizingConfig config = QuickCell(FabricShape::kDumbbell, CcAlgorithm::kDctcp);
  config.ecn = true;
  config.buffer_bytes = 64 * 1024;
  config.ecn_threshold_bytes = 16 * 1024;

  const BufferSizingResult a = RunBufferSizing(config);
  const BufferSizingResult b = RunBufferSizing(config);
  EXPECT_EQ(a.aggregate_goodput_bps, b.aggregate_goodput_bps);
  EXPECT_EQ(a.mean_queue_bytes, b.mean_queue_bytes);
  EXPECT_EQ(a.p99_queue_bytes, b.p99_queue_bytes);
  EXPECT_EQ(a.drops, b.drops);
  EXPECT_EQ(a.ecn_marked, b.ecn_marked);
  EXPECT_EQ(a.ece_received, b.ece_received);
  EXPECT_EQ(a.cwr_sent, b.cwr_sent);
  EXPECT_EQ(a.cc_decreases, b.cc_decreases);
  EXPECT_EQ(a.mean_cwnd_bytes, b.mean_cwnd_bytes);
}

}  // namespace
}  // namespace e2e
