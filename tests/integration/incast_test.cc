// Incast regression: N clients simultaneously push requests at one server
// whose switch downlink port has a deliberately small buffer. The port must
// tail-drop, TCP retransmission must recover every request, and the
// end-to-end estimator must stay bounded despite the loss — the fabric
// analogue of the impairment-engine loss tests.

#include <gtest/gtest.h>

#include <cmath>

#include "src/testbed/fleet.h"

namespace e2e {
namespace {

TEST(IncastIntegration, DropsRecoverAndEstimatorStaysBounded) {
  constexpr int kClients = 8;
  FleetExperimentConfig config;
  // ~1.5 requests' worth of 16 KB SETs: bursts of concurrent arrivals
  // overflow the port while steady state fits. 10 Gbps edges make the
  // serialization window (~13 us per request) long enough that Poisson
  // overlaps pile up in the port buffer instead of draining instantly.
  config.fabric = FleetExperimentConfig::DefaultFleetFabric(kClients);
  config.fabric.edge_link.bandwidth_bps = 10e9;
  config.fabric.server_port.buffer_bytes = 24 * 1024;
  config.fabric.server_port.ecn_threshold_bytes = 8 * 1024;
  config.total_rate_rps = 24000;
  config.warmup = Duration::Millis(30);
  config.measure = Duration::Millis(120);
  config.drain = Duration::Millis(30);
  config.seed = 5;

  const FleetExperimentResult result = RunFleetExperiment(config);

  // The incast actually happened: the port clipped and marked.
  EXPECT_GT(result.switch_tail_drops, 0u);
  EXPECT_GT(result.switch_ecn_marked, 0u);
  EXPECT_EQ(result.forwarding_misses, 0u);
  // High-water occupancy pressed against the configured cap.
  EXPECT_GT(result.server_port_max_queue_bytes, 16u * 1024u);
  EXPECT_LE(result.server_port_max_queue_bytes, 24u * 1024u);

  // Retransmits recovered the dropped segments: every client kept
  // completing requests and aggregate goodput stayed near offered.
  EXPECT_GT(result.retransmits, 0u);
  for (const FleetConnectionResult& cr : result.connections) {
    EXPECT_GT(cr.requests_completed, 0u) << "client " << cr.client;
  }
  EXPECT_GT(result.achieved_krps, 0.8 * result.offered_krps);

  // The estimator survives the loss episodes with bounded error (the
  // impairment sweeps show the same estimator inside ~±40% when losses are
  // recovered within the window; allow slack for retransmission tails).
  ASSERT_TRUE(result.fleet_est_bytes_us.has_value());
  ASSERT_TRUE(result.FleetEstimateErrorPct().has_value());
  EXPECT_LT(std::abs(*result.FleetEstimateErrorPct()), 100.0);
}

}  // namespace
}  // namespace e2e
