// Full-stack invariants swept over the TCP feature matrix: for every
// combination of Nagle, auto-corking, TSO, GRO and packet loss, a bursty
// bidirectional workload must deliver every byte and every message exactly
// once and in order, and the instrumentation of all three queues must
// account for exactly the traffic that flowed, in every unit mode.

#include <gtest/gtest.h>

#include <tuple>

#include "src/testbed/topology.h"

namespace e2e {
namespace {

struct StackVariant {
  bool nodelay;
  bool autocork;
  bool tso;
  bool gro;
  double loss;
};

// (nodelay, autocork, tso, gro, loss) — a representative slice of the
// 2^4 x loss matrix plus the interesting extremes.
const StackVariant kVariants[] = {
    {true, false, true, true, 0.0},    //
    {false, false, true, true, 0.0},   //
    {true, true, true, true, 0.0},     //
    {false, true, false, true, 0.0},   //
    {true, false, false, false, 0.0},  //
    {false, false, true, false, 0.0},  //
    {true, false, true, true, 0.02},   //
    {false, false, true, true, 0.02},  //
    {false, true, true, true, 0.05},   //
};

class StackMatrixTest : public ::testing::TestWithParam<StackVariant> {};

TEST_P(StackMatrixTest, ExactlyOnceInOrderWithConsistentAccounting) {
  const StackVariant& v = GetParam();
  TopologyConfig topo_config;
  topo_config.link.loss_probability = v.loss;
  topo_config.client_stack_costs.gro = v.gro;
  topo_config.server_stack_costs.gro = v.gro;
  TwoHostTopology topo(topo_config);

  TcpConfig config;
  config.nodelay = v.nodelay;
  config.autocork = v.autocork;
  config.tso = v.tso;
  config.nagle_timeout = Duration::Millis(20);
  ConnectedPair conn = topo.Connect(1, config, config);

  // Bursty bidirectional traffic with mixed sizes (sub-MSS to multi-MSS).
  constexpr int kMessages = 120;
  uint64_t a_bytes = 0;
  uint64_t b_bytes = 0;
  Rng rng(GetParam().nodelay ? 5 : 6);
  for (int i = 0; i < kMessages; ++i) {
    const uint64_t a_len = static_cast<uint64_t>(rng.UniformInt(1, 4000));
    const uint64_t b_len = static_cast<uint64_t>(rng.UniformInt(1, 2000));
    a_bytes += a_len;
    b_bytes += b_len;
    topo.sim().Schedule(Duration::Micros(40 * i), [&, i, a_len, b_len] {
      topo.client_host().app_core().SubmitFixed(Duration::Nanos(200), [&, i, a_len] {
        MessageRecord record;
        record.id = static_cast<uint64_t>(i);
        ASSERT_TRUE(conn.a->Send(a_len, std::move(record)));
      });
      topo.server_host().app_core().SubmitFixed(Duration::Nanos(200), [&, i, b_len] {
        MessageRecord record;
        record.id = static_cast<uint64_t>(i);
        ASSERT_TRUE(conn.b->Send(b_len, std::move(record)));
      });
    });
  }
  // Loss recovery can take several RTO cycles.
  topo.sim().RunFor(v.loss > 0 ? Duration::Seconds(10) : Duration::Seconds(1));

  // Exactly once, in order, all bytes.
  auto at_b = conn.b->Recv();
  auto at_a = conn.a->Recv();
  ASSERT_EQ(at_b.messages.size(), static_cast<size_t>(kMessages));
  ASSERT_EQ(at_a.messages.size(), static_cast<size_t>(kMessages));
  EXPECT_EQ(at_b.bytes, a_bytes);
  EXPECT_EQ(at_a.bytes, b_bytes);
  for (int i = 0; i < kMessages; ++i) {
    EXPECT_EQ(at_b.messages[i].id, static_cast<uint64_t>(i));
    EXPECT_EQ(at_a.messages[i].id, static_cast<uint64_t>(i));
  }

  // Let the final acks and delack timers settle, then check accounting.
  topo.sim().RunFor(Duration::Millis(300));
  for (TcpEndpoint* endpoint : {conn.a, conn.b}) {
    const uint64_t sent = endpoint == conn.a ? a_bytes : b_bytes;
    const uint64_t received = endpoint == conn.a ? b_bytes : a_bytes;
    for (UnitMode mode : kKernelUnitModes) {
      for (QueueKind kind : kAllQueueKinds) {
        EXPECT_EQ(endpoint->queues().Get(kind, mode).size(), 0)
            << UnitModeName(mode) << "/" << QueueKindName(kind);
      }
    }
    // Byte totals equal the traffic exactly (retransmissions must not
    // double-count: queues track stream bytes, not wire bytes).
    EXPECT_EQ(endpoint->queues().Get(QueueKind::kUnacked, UnitMode::kBytes).total(),
              static_cast<int64_t>(sent));
    EXPECT_EQ(endpoint->queues().Get(QueueKind::kUnread, UnitMode::kBytes).total(),
              static_cast<int64_t>(received));
    EXPECT_EQ(endpoint->queues().Get(QueueKind::kAckDelay, UnitMode::kBytes).total(),
              static_cast<int64_t>(received));
    // Message totals likewise.
    EXPECT_EQ(endpoint->queues().Get(QueueKind::kUnacked, UnitMode::kSyscalls).total(),
              kMessages);
    EXPECT_EQ(endpoint->queues().Get(QueueKind::kUnread, UnitMode::kSyscalls).total(),
              kMessages);
    // Packet-unit totals agree between sender-unacked and receiver-unread
    // (same MSS grid over the same stream).
    EXPECT_EQ(conn.a->queues().Get(QueueKind::kUnacked, UnitMode::kPackets).total(),
              conn.b->queues().Get(QueueKind::kUnread, UnitMode::kPackets).total());
  }
}

INSTANTIATE_TEST_SUITE_P(FeatureMatrix, StackMatrixTest, ::testing::ValuesIn(kVariants));

}  // namespace
}  // namespace e2e
