// Crash/reconnect recovery, end to end (DESIGN.md §10): the server is
// killed and restarted mid-run; the client must back off and redial, the
// health layer must ride the fallback chain down to the static policy and
// re-earn kFull, and the online estimate must re-converge after recovery.

#include <gtest/gtest.h>

#include <cmath>

#include "src/testbed/robustness.h"

namespace e2e {
namespace {

TimePoint Ms(int64_t ms) { return TimePoint::FromNanos(ms * 1000000); }

RobustnessConfig SmokeConfig() {
  RobustnessConfig config;
  config.warmup = Duration::Millis(50);
  config.measure = Duration::Millis(150);
  config.seed = 1;
  return config;
}

TEST(CrashReconnectTest, ClientRecoversAndEstimatorReconverges) {
  RobustnessConfig config = SmokeConfig();
  // Crash 50 ms into the measurement window, 20 ms of downtime.
  config.faults.Add(FaultKind::kServerCrash, Ms(100), Duration::Millis(20));
  const RobustnessResult result = RunRobustnessExperiment(config);

  // Fault counters match the injected schedule exactly.
  EXPECT_EQ(result.faults.crashes, config.faults.CountOf(FaultKind::kServerCrash));
  EXPECT_EQ(result.faults.restarts, result.faults.crashes);
  EXPECT_EQ(result.faults.meta_windows, 0u);

  // Exactly one connection incarnation died and one replaced it: the old
  // endpoints were zombie-parked, the client backed off and redialed.
  EXPECT_EQ(result.endpoints_closed, 1u);
  EXPECT_EQ(result.reconnects, 1u);
  EXPECT_GE(result.reconnect_attempts, result.reconnects);
  // Requests kept arriving during the 20 ms outage and were shed.
  EXPECT_GT(result.failed_disconnected, 0u);
  EXPECT_GT(result.abandoned_on_crash, 0u);

  // The health layer saw the loss, hard-demoted, and re-earned kFull.
  EXPECT_EQ(result.health.connection_losses, 1u);
  EXPECT_GT(result.health.demotions, 0u);
  EXPECT_GT(result.health.promotions, 0u);
  ASSERT_TRUE(result.time_to_detect_ms.has_value());
  EXPECT_LE(*result.time_to_detect_ms, 1.0);  // Hard demote at the crash.
  ASSERT_TRUE(result.time_to_recover_ms.has_value());
  // Recovery = reconnect backoff + promote_after healthy exchanges; well
  // under half the remaining window.
  EXPECT_LE(*result.time_to_recover_ms, 40.0);

  // The run completed meaningfully on both sides of the outage.
  EXPECT_GT(result.pre_fault_count, 0u);
  EXPECT_GT(result.post_recovery_count, 0u);
  EXPECT_GT(result.requests_completed, 0u);

  // Estimator re-convergence: the post-recovery online estimate must be at
  // least as trustworthy as the pre-crash one (fresh incarnation, fresh
  // estimator state — no stale-counter hangover).
  ASSERT_TRUE(result.est_err_pre_pct.has_value());
  ASSERT_TRUE(result.est_err_post_pct.has_value());
  EXPECT_LE(std::fabs(*result.est_err_post_pct), std::fabs(*result.est_err_pre_pct) + 10.0);

  // No degraded estimate ever reached the policy.
  EXPECT_EQ(result.non_finite_samples, 0u);
}

TEST(CrashReconnectTest, FaultFreeRunHasNoFalsePositives) {
  const RobustnessResult result = RunRobustnessExperiment(SmokeConfig());
  EXPECT_EQ(result.faults.crashes, 0u);
  EXPECT_EQ(result.endpoints_closed, 0u);
  EXPECT_EQ(result.reconnect_attempts, 0u);
  EXPECT_EQ(result.failed_disconnected, 0u);
  EXPECT_EQ(result.health.connection_losses, 0u);
  EXPECT_FALSE(result.time_to_detect_ms.has_value());
  EXPECT_EQ(result.non_finite_samples, 0u);
  // Health still starts at kStatic and climbs: some static time is normal,
  // but the bulk of the run must be spent trusting the full estimate.
  EXPECT_GT(result.time_in_full_ms, result.time_in_static_ms);
}

TEST(CrashReconnectTest, SameSeedSameResult) {
  RobustnessConfig config = SmokeConfig();
  config.faults.Add(FaultKind::kServerCrash, Ms(100), Duration::Millis(20));
  const RobustnessResult a = RunRobustnessExperiment(config);
  const RobustnessResult b = RunRobustnessExperiment(config);
  EXPECT_EQ(a.requests_completed, b.requests_completed);
  EXPECT_DOUBLE_EQ(a.measured_mean_us, b.measured_mean_us);
  EXPECT_DOUBLE_EQ(a.measured_p99_us, b.measured_p99_us);
  EXPECT_EQ(a.controller_switches, b.controller_switches);
  EXPECT_EQ(a.reconnect_attempts, b.reconnect_attempts);
  EXPECT_EQ(a.failed_disconnected, b.failed_disconnected);
  EXPECT_EQ(a.health_transitions.size(), b.health_transitions.size());
}

}  // namespace
}  // namespace e2e
