// End-to-end sanity tests: raw request/response exchanges over the full
// simulated stack (links, NICs, NAPI, TCP) without the Redis apps.

#include <gtest/gtest.h>

#include <memory>

#include "src/testbed/topology.h"

namespace e2e {
namespace {

MessageRecord Rec(uint64_t id) {
  MessageRecord record;
  record.id = id;
  return record;
}

TEST(EchoIntegration, SingleSmallMessageArrives) {
  TwoHostTopology topo;
  TcpConfig tcp;
  tcp.nodelay = true;
  ConnectedPair conn = topo.Connect(1, tcp, tcp);

  bool got = false;
  conn.b->SetReadableCallback([&] { got = true; });
  topo.client_host().app_core().SubmitFixed(Duration::Micros(1),
                                            [&] { conn.a->Send(100, Rec(1)); });
  topo.sim().RunFor(Duration::Millis(5));
  ASSERT_TRUE(got);
  auto result = conn.b->Recv();
  EXPECT_EQ(result.bytes, 100u);
  ASSERT_EQ(result.messages.size(), 1u);
  EXPECT_EQ(result.messages[0].id, 1u);
}

TEST(EchoIntegration, LargeMessageIsSegmentedAndReassembled) {
  TwoHostTopology topo;
  TcpConfig tcp;
  tcp.nodelay = true;
  ConnectedPair conn = topo.Connect(1, tcp, tcp);

  topo.client_host().app_core().SubmitFixed(Duration::Micros(1),
                                            [&] { conn.a->Send(50000, Rec(7)); });
  topo.sim().RunFor(Duration::Millis(20));
  auto result = conn.b->Recv();
  EXPECT_EQ(result.bytes, 50000u);
  ASSERT_EQ(result.messages.size(), 1u);
  EXPECT_EQ(result.messages[0].id, 7u);
  EXPECT_GT(conn.a->stats().wire_packets_sent, 30u);  // ~35 MSS slices.
}

TEST(EchoIntegration, RequestResponseRoundTrip) {
  TwoHostTopology topo;
  TcpConfig tcp;
  tcp.nodelay = true;
  ConnectedPair conn = topo.Connect(1, tcp, tcp);

  // Server: echo every received message back with 10 bytes.
  conn.b->SetReadableCallback([&] {
    topo.server_host().app_core().SubmitFixed(Duration::Micros(2), [&] {
      auto in = conn.b->Recv();
      for (auto& msg : in.messages) {
        conn.b->Send(10, Rec(msg.id + 1000));
      }
    });
  });

  size_t responses = 0;
  conn.a->SetReadableCallback([&] {
    topo.client_host().app_core().SubmitFixed(Duration::Micros(1), [&] {
      auto in = conn.a->Recv();
      responses += in.messages.size();
    });
  });

  for (int i = 0; i < 10; ++i) {
    topo.sim().Schedule(Duration::Micros(100 * (i + 1)), [&, i] {
      topo.client_host().app_core().SubmitFixed(Duration::Micros(1),
                                                [&, i] { conn.a->Send(500, Rec(i)); });
    });
  }
  topo.sim().RunFor(Duration::Millis(50));
  EXPECT_EQ(responses, 10u);
  EXPECT_EQ(conn.a->stats().bytes_received, 100u);
  EXPECT_EQ(conn.b->stats().bytes_received, 5000u);
}

TEST(EchoIntegration, PipelinedBidirectionalTraffic) {
  TwoHostTopology topo;
  TcpConfig tcp;
  tcp.nodelay = true;
  ConnectedPair conn = topo.Connect(1, tcp, tcp);

  // 200 messages each way, no app-level coordination.
  for (int i = 0; i < 200; ++i) {
    topo.sim().Schedule(Duration::Micros(10 * (i + 1)), [&, i] {
      topo.client_host().app_core().SubmitFixed(Duration::Nanos(500),
                                                [&, i] { conn.a->Send(2000, Rec(i)); });
      topo.server_host().app_core().SubmitFixed(Duration::Nanos(500),
                                                [&, i] { conn.b->Send(300, Rec(i)); });
    });
  }
  topo.sim().RunFor(Duration::Millis(100));
  auto at_b = conn.b->Recv();
  auto at_a = conn.a->Recv();
  EXPECT_EQ(at_b.bytes, 200u * 2000u);
  EXPECT_EQ(at_b.messages.size(), 200u);
  EXPECT_EQ(at_a.bytes, 200u * 300u);
  EXPECT_EQ(at_a.messages.size(), 200u);
}

}  // namespace
}  // namespace e2e
