// Multi-connection aggregation (paper §3.2).

#include <gtest/gtest.h>

#include "src/core/aggregator.h"
#include "src/testbed/experiment.h"

namespace e2e {
namespace {

RedisExperimentConfig MultiConfig(double krps, int conns, BatchMode mode) {
  RedisExperimentConfig config;
  config.rate_rps = krps * 1e3;
  config.num_connections = conns;
  config.batch_mode = mode;
  config.warmup = Duration::Millis(150);
  config.measure = Duration::Millis(300);
  config.seed = 21;
  return config;
}

TEST(MultiConnectionIntegration, SplittingLoadPreservesMeasuredBehavior) {
  const RedisExperimentResult one = RunRedisExperiment(MultiConfig(30, 1, BatchMode::kStaticOff));
  const RedisExperimentResult four = RunRedisExperiment(MultiConfig(30, 4, BatchMode::kStaticOff));
  EXPECT_NEAR(four.achieved_krps, one.achieved_krps, 3.0);
  // Same server-bound queueing regime; latencies in the same ballpark.
  EXPECT_NEAR(four.measured_mean_us, one.measured_mean_us, one.measured_mean_us * 0.5);
}

TEST(MultiConnectionIntegration, AveragedEstimateTracksMeasured) {
  const RedisExperimentResult r = RunRedisExperiment(MultiConfig(50, 4, BatchMode::kStaticOn));
  ASSERT_TRUE(r.est_bytes_us.has_value());
  EXPECT_NEAR(*r.est_bytes_us, r.measured_mean_us, r.measured_mean_us * 0.5);
  ASSERT_TRUE(r.est_hints_us.has_value());
  EXPECT_NEAR(*r.est_hints_us, r.measured_mean_us, r.measured_mean_us * 0.4);
}

TEST(MultiConnectionIntegration, SharedControllerConvergesAtHighLoad) {
  const RedisExperimentResult r = RunRedisExperiment(MultiConfig(65, 4, BatchMode::kDynamic));
  EXPECT_GT(r.duty_cycle_on, 0.7);
  EXPECT_LT(r.measured_mean_us, 3000.0);
}

TEST(EstimateAggregatorTest, AveragesAcrossSources) {
  ConnectionEstimator a(UnitMode::kBytes);
  ConnectionEstimator b(UnitMode::kBytes);
  EstimateAggregator aggregator;
  aggregator.AddSource(&a);
  aggregator.AddSource(&b);
  EXPECT_EQ(aggregator.size(), 2u);
  // Both estimators empty: invalid aggregate.
  EXPECT_FALSE(aggregator.Aggregate().valid());
  EXPECT_FALSE(aggregator.AggregateLastValid().valid());
}

}  // namespace
}  // namespace e2e
