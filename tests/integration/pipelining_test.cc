// Syscall batching (paper §3.3's caveat) and the hint path's immunity.

#include <gtest/gtest.h>

#include "src/testbed/experiment.h"
#include "src/testbed/topology.h"

namespace e2e {
namespace {

RedisExperimentConfig PipelineConfig(int depth) {
  RedisExperimentConfig config;
  config.rate_rps = 25e3;
  config.pipeline_depth = depth;
  config.warmup = Duration::Millis(100);
  config.measure = Duration::Millis(300);
  config.seed = 29;
  return config;
}

TEST(PipeliningIntegration, BatchedSendsStillServeEveryRequest) {
  const RedisExperimentResult r = RunRedisExperiment(PipelineConfig(4));
  EXPECT_NEAR(r.achieved_krps, 25, 3);
  EXPECT_GT(r.requests_completed, 5000u);
}

TEST(PipeliningIntegration, HintsTrackAppPerceivedLatencyAtAnyDepth) {
  for (int depth : {1, 4, 8}) {
    const RedisExperimentResult r = RunRedisExperiment(PipelineConfig(depth));
    ASSERT_TRUE(r.est_hints_us.has_value()) << "depth " << depth;
    // The hint queue spans create->complete, i.e. the sojourn including the
    // client's own pipelining wait; agreement should be tight.
    EXPECT_NEAR(*r.est_hints_us, r.measured_sojourn_us, r.measured_sojourn_us * 0.05)
        << "depth " << depth;
  }
}

TEST(PipeliningIntegration, PipelineWaitIsInvisibleToKernelUnits) {
  const RedisExperimentResult deep = RunRedisExperiment(PipelineConfig(8));
  // The app-perceived latency includes the pre-syscall pipelining wait the
  // kernel cannot see; with depth 8 at 25 kRPS that wait is substantial.
  EXPECT_GT(deep.measured_sojourn_us, deep.measured_mean_us + 30.0);
}

TEST(SendBatchTest, CountsOneSyscallUnitForManyMessages) {
  TwoHostTopology topo;
  TcpConfig tcp;
  tcp.nodelay = true;
  tcp.e2e_exchange_interval = Duration::Zero();
  ConnectedPair conn = topo.Connect(1, tcp, tcp);

  topo.client_host().app_core().SubmitFixed(Duration::Nanos(100), [&] {
    std::vector<TcpEndpoint::BatchItem> items(5);
    for (int i = 0; i < 5; ++i) {
      items[i].len = 100;
      items[i].record.id = static_cast<uint64_t>(i);
    }
    ASSERT_TRUE(conn.a->SendBatch(std::move(items)));
  });
  topo.sim().RunFor(Duration::Millis(100));

  // All five messages arrive individually...
  auto received = conn.b->Recv();
  EXPECT_EQ(received.messages.size(), 5u);
  EXPECT_EQ(received.bytes, 500u);
  // ...but the syscall-unit queues saw exactly one unit end-to-end.
  EXPECT_EQ(conn.a->queues().Get(QueueKind::kUnacked, UnitMode::kSyscalls).total(), 1);
  EXPECT_EQ(conn.b->queues().Get(QueueKind::kUnread, UnitMode::kSyscalls).total(), 1);
  EXPECT_EQ(conn.b->queues().Get(QueueKind::kAckDelay, UnitMode::kSyscalls).total(), 1);
  // Bytes are unit-mode independent.
  EXPECT_EQ(conn.a->queues().Get(QueueKind::kUnacked, UnitMode::kBytes).total(), 500);
}

TEST(SendBatchTest, AtomicRejectionWhenBufferLacksSpace) {
  TwoHostTopology topo;
  TcpConfig tcp;
  tcp.nodelay = true;
  tcp.sndbuf_bytes = 300;
  ConnectedPair conn = topo.Connect(1, tcp, tcp);
  topo.client_host().app_core().SubmitFixed(Duration::Nanos(100), [&] {
    std::vector<TcpEndpoint::BatchItem> items(4);
    for (int i = 0; i < 4; ++i) {
      items[i].len = 100;  // 400 > 300: the whole batch must be refused.
    }
    EXPECT_FALSE(conn.a->SendBatch(std::move(items)));
  });
  topo.sim().RunFor(Duration::Millis(10));
  EXPECT_EQ(conn.b->ReadableBytes(), 0u);
  EXPECT_EQ(conn.a->queues().Get(QueueKind::kUnacked, UnitMode::kSyscalls).total(), 0);
}

}  // namespace
}  // namespace e2e
