#include "src/obs/timeseries.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "src/sim/simulator.h"

namespace e2e {
namespace {

TimePoint Us(int64_t us) { return TimePoint::FromNanos(us * 1000); }

std::string CsvOf(const TimeSeries& series) {
  char* buf = nullptr;
  size_t len = 0;
  FILE* mem = open_memstream(&buf, &len);
  series.WriteCsv(mem);
  std::fclose(mem);
  std::string out(buf, len);
  free(buf);
  return out;
}

std::string JsonOf(const TimeSeries& series) {
  char* buf = nullptr;
  size_t len = 0;
  FILE* mem = open_memstream(&buf, &len);
  series.WriteJson(mem);
  std::fclose(mem);
  std::string out(buf, len);
  free(buf);
  return out;
}

TEST(TimeSeriesSamplerTest, SamplesGaugesOnAlignedTicks) {
  Simulator sim;
  double signal = 1.0;
  TimeSeriesSampler sampler(&sim, Duration::Micros(10));
  sampler.AddGauge("signal", [&] { return signal; });
  // Change the signal between ticks: each row sees the value current at its
  // own tick, all rows share one clock.
  sim.ScheduleAt(Us(15), [&] { signal = 2.0; });
  sim.ScheduleAt(Us(35), [&] { signal = 3.0; });
  sampler.Start(Us(50));
  sim.RunUntil(Us(100));

  const TimeSeries& series = sampler.series();
  ASSERT_EQ(series.columns, (std::vector<std::string>{"signal"}));
  ASSERT_EQ(series.num_rows(), 6u);  // t = 0, 10, 20, 30, 40, 50.
  for (size_t i = 0; i < 6; ++i) {
    EXPECT_EQ(series.times[i], Us(static_cast<int64_t>(i) * 10));
  }
  EXPECT_DOUBLE_EQ(series.rows[0][0], 1.0);
  EXPECT_DOUBLE_EQ(series.rows[1][0], 1.0);
  EXPECT_DOUBLE_EQ(series.rows[2][0], 2.0);
  EXPECT_DOUBLE_EQ(series.rows[3][0], 2.0);
  EXPECT_DOUBLE_EQ(series.rows[4][0], 3.0);
  EXPECT_DOUBLE_EQ(series.rows[5][0], 3.0);
}

TEST(TimeSeriesSamplerTest, RegistryColumnsRideAlongFlattened) {
  Simulator sim;
  CounterRegistry registry;
  uint64_t tx = 5;
  registry.Register("nic0", {"tx", "rx"},
                    [&]() -> std::vector<uint64_t> { return {tx, tx * 2}; });

  TimeSeriesSampler sampler(&sim, Duration::Micros(10));
  sampler.AddGauge("gauge", [] { return 7.0; });
  sampler.AttachRegistry(&registry);
  sim.ScheduleAt(Us(5), [&] { tx = 9; });
  sampler.Start(Us(10));
  sim.RunUntil(Us(20));

  const TimeSeries& series = sampler.series();
  ASSERT_EQ(series.columns, (std::vector<std::string>{"gauge", "nic0.tx", "nic0.rx"}));
  ASSERT_EQ(series.num_rows(), 2u);
  EXPECT_DOUBLE_EQ(series.rows[0][1], 5.0);
  EXPECT_DOUBLE_EQ(series.rows[0][2], 10.0);
  EXPECT_DOUBLE_EQ(series.rows[1][1], 9.0);
  EXPECT_DOUBLE_EQ(series.rows[1][2], 18.0);
}

TEST(TimeSeriesExportTest, CsvMatchesGoldenAndIsDeterministic) {
  TimeSeries series;
  series.columns = {"a", "b"};
  series.times = {Us(0), Us(10)};
  series.rows = {{1.0, 2.5}, {3.0, 4.125}};
  const std::string expected =
      "time_us,a,b\n"
      "0.000,1.000000,2.500000\n"
      "10.000,3.000000,4.125000\n";
  EXPECT_EQ(CsvOf(series), expected);
  EXPECT_EQ(CsvOf(series), CsvOf(series));  // Fixed formatting: stable bytes.
}

TEST(TimeSeriesExportTest, JsonShapeMatchesGolden) {
  TimeSeries series;
  series.columns = {"a"};
  series.times = {Us(1)};
  series.rows = {{42.0}};
  EXPECT_EQ(JsonOf(series),
            "{\"columns\":[\"time_us\",\"a\"],\"rows\":[\n[1.000,42.000000]\n]}\n");
}

TEST(TimeSeriesExportTest, WriteFilePicksFormatBySuffix) {
  TimeSeries series;
  series.columns = {"x"};
  series.times = {Us(0)};
  series.rows = {{1.0}};

  const std::string csv_path = ::testing::TempDir() + "/series_test_out.csv";
  const std::string json_path = ::testing::TempDir() + "/series_test_out.json";
  ASSERT_TRUE(series.WriteFile(csv_path));
  ASSERT_TRUE(series.WriteFile(json_path));

  const auto slurp = [](const std::string& path) {
    FILE* in = std::fopen(path.c_str(), "r");
    EXPECT_NE(in, nullptr);
    std::string text;
    char buf[256];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), in)) > 0) {
      text.append(buf, n);
    }
    std::fclose(in);
    std::remove(path.c_str());
    return text;
  };
  EXPECT_EQ(slurp(csv_path).substr(0, 9), "time_us,x");
  EXPECT_EQ(slurp(json_path).substr(0, 12), "{\"columns\":[");
}

}  // namespace
}  // namespace e2e
