// The observability layer's core contract (DESIGN.md §11): observation is
// passive. Binding a TraceRecorder and enabling the time-series sampler must
// not change anything a same-seed run computes — hooks are pure reads plus
// an append into the recorder, and sampler gauges are pure reads on their
// own schedule. This test runs the full robustness experiment (endpoints,
// estimator, health chain, controller, fault injector — every hook site)
// with tracing off, off again, and fully on, and requires exact equality.

#include <gtest/gtest.h>

#include "src/obs/trace.h"
#include "src/testbed/robustness.h"

namespace e2e {
namespace {

RobustnessConfig SmallConfig() {
  RobustnessConfig config;
  config.seed = 99;
  config.rate_rps = 20000;
  config.warmup = Duration::Millis(10);
  config.measure = Duration::Millis(60);
  config.drain = Duration::Millis(10);
  // A metadata blackout long enough to walk the fallback chain, so the
  // health and controller hook sites actually fire.
  const TimePoint ms = TimePoint::Zero() + config.warmup;
  config.faults.Add(FaultKind::kMetaWithhold, ms + Duration::Millis(20), Duration::Millis(15));
  return config;
}

void ExpectIdentical(const RobustnessResult& a, const RobustnessResult& b) {
  // Exact equality, not tolerance: the runs must be bit-identical.
  EXPECT_EQ(a.measured_mean_us, b.measured_mean_us);
  EXPECT_EQ(a.measured_p99_us, b.measured_p99_us);
  EXPECT_EQ(a.achieved_krps, b.achieved_krps);
  EXPECT_EQ(a.requests_completed, b.requests_completed);
  EXPECT_EQ(a.controller_switches, b.controller_switches);
  EXPECT_EQ(a.duty_cycle_on, b.duty_cycle_on);
  EXPECT_EQ(a.frozen_ticks, b.frozen_ticks);
  EXPECT_EQ(a.ticks, b.ticks);
  EXPECT_EQ(a.online_est_us, b.online_est_us);
  EXPECT_EQ(a.health.demotions, b.health.demotions);
  EXPECT_EQ(a.health.promotions, b.health.promotions);
  EXPECT_EQ(a.health.healthy_exchanges, b.health.healthy_exchanges);
  EXPECT_EQ(a.health_transitions, b.health_transitions);
  EXPECT_EQ(a.faults.payloads_withheld, b.faults.payloads_withheld);
  EXPECT_EQ(a.estimator_rejected_payloads, b.estimator_rejected_payloads);
}

TEST(TraceDeterminismTest, TracingAndSamplingArePassive) {
  ASSERT_EQ(CurrentTrace(), nullptr);

  // Tracing off: the reference run, twice (pure same-seed determinism).
  const RobustnessResult off1 = RunRobustnessExperiment(SmallConfig());
  const RobustnessResult off2 = RunRobustnessExperiment(SmallConfig());
  ExpectIdentical(off1, off2);

  // Tracing on, every category, plus the gauge sampler.
  TraceRecorder recorder(1 << 16);
  RobustnessConfig traced = SmallConfig();
  traced.series_interval = Duration::Millis(1);
  RobustnessResult on;
  {
    ScopedTrace bind(&recorder);
    on = RunRobustnessExperiment(traced);
  }
  ASSERT_EQ(CurrentTrace(), nullptr);
  ExpectIdentical(off1, on);

  // The recorder actually observed the run: every category fired.
  EXPECT_GT(recorder.recorded(), 0u);
  uint32_t seen = 0;
  for (const TraceEvent& e : recorder.Events()) {
    seen |= TraceBit(e.category);
  }
  EXPECT_NE(seen & TraceBit(TraceCategory::kPacket), 0u);
  EXPECT_NE(seen & TraceBit(TraceCategory::kSyscall), 0u);
  EXPECT_NE(seen & TraceBit(TraceCategory::kQueue), 0u);
  EXPECT_NE(seen & TraceBit(TraceCategory::kEstimator), 0u);
  EXPECT_NE(seen & TraceBit(TraceCategory::kHealth), 0u);
  EXPECT_NE(seen & TraceBit(TraceCategory::kController), 0u);

  // And the sampler rode along: rows at 1 ms ticks over the whole run.
  ASSERT_NE(on.series, nullptr);
  EXPECT_GT(on.series->num_rows(), 50u);
  EXPECT_EQ(on.series->rows.front().size(), on.series->columns.size());
}

TEST(TraceDeterminismTest, MaskedCategoriesRecordNothing) {
  TraceRecorder recorder(1 << 14, TraceBit(TraceCategory::kHealth));
  RobustnessResult result;
  {
    ScopedTrace bind(&recorder);
    result = RunRobustnessExperiment(SmallConfig());
  }
  EXPECT_GT(recorder.recorded(), 0u);  // Health transitions did occur...
  for (const TraceEvent& e : recorder.Events()) {
    EXPECT_EQ(e.category, TraceCategory::kHealth);  // ...and nothing else.
  }
}

}  // namespace
}  // namespace e2e
