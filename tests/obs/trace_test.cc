#include "src/obs/trace.h"

#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <variant>
#include <vector>

namespace e2e {
namespace {

TimePoint Us(int64_t us) { return TimePoint::FromNanos(us * 1000); }

TraceEvent Instant(int64_t us, TraceCategory cat, const char* name, uint32_t track = 0) {
  TraceEvent e;
  e.time = Us(us);
  e.category = cat;
  e.name = name;
  e.track = track;
  return e;
}

// ---------------------------------------------------------------------------
// A minimal JSON parser, enough to validate the Chrome trace export without
// external dependencies. Numbers parse as double, strings stay escaped-free
// (the export only escapes control characters we never emit in names).
// ---------------------------------------------------------------------------

struct JsonValue;
using JsonObject = std::map<std::string, JsonValue>;
using JsonArray = std::vector<JsonValue>;

struct JsonValue {
  std::variant<std::nullptr_t, bool, double, std::string, std::shared_ptr<JsonArray>,
               std::shared_ptr<JsonObject>>
      v;

  bool is_object() const { return std::holds_alternative<std::shared_ptr<JsonObject>>(v); }
  bool is_array() const { return std::holds_alternative<std::shared_ptr<JsonArray>>(v); }
  const JsonObject& object() const { return *std::get<std::shared_ptr<JsonObject>>(v); }
  const JsonArray& array() const { return *std::get<std::shared_ptr<JsonArray>>(v); }
  double number() const { return std::get<double>(v); }
  const std::string& str() const { return std::get<std::string>(v); }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  bool Parse(JsonValue* out) {
    const bool ok = ParseValue(out);
    SkipSpace();
    return ok && pos_ == text_.size();
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ParseString(std::string* out) {
    if (!Consume('"')) {
      return false;
    }
    out->clear();
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        if (pos_ >= text_.size()) {
          return false;
        }
        const char esc = text_[pos_++];
        switch (esc) {
          case 'n':
            c = '\n';
            break;
          case 't':
            c = '\t';
            break;
          case '"':
          case '\\':
          case '/':
            c = esc;
            break;
          default:
            return false;  // \uXXXX etc.: never emitted by the exporter.
        }
      }
      out->push_back(c);
    }
    return pos_ < text_.size() && text_[pos_++] == '"';
  }

  bool ParseValue(JsonValue* out) {
    SkipSpace();
    if (pos_ >= text_.size()) {
      return false;
    }
    const char c = text_[pos_];
    if (c == '{') {
      ++pos_;
      auto obj = std::make_shared<JsonObject>();
      SkipSpace();
      if (Consume('}')) {
        out->v = obj;
        return true;
      }
      while (true) {
        std::string key;
        JsonValue value;
        if (!ParseString(&key) || !Consume(':') || !ParseValue(&value)) {
          return false;
        }
        (*obj)[key] = value;
        if (Consume(',')) {
          continue;
        }
        break;
      }
      out->v = obj;
      return Consume('}');
    }
    if (c == '[') {
      ++pos_;
      auto arr = std::make_shared<JsonArray>();
      SkipSpace();
      if (Consume(']')) {
        out->v = arr;
        return true;
      }
      while (true) {
        JsonValue value;
        if (!ParseValue(&value)) {
          return false;
        }
        arr->push_back(value);
        if (Consume(',')) {
          continue;
        }
        break;
      }
      out->v = arr;
      return Consume(']');
    }
    if (c == '"') {
      std::string s;
      if (!ParseString(&s)) {
        return false;
      }
      out->v = s;
      return true;
    }
    if (text_.compare(pos_, 4, "true") == 0) {
      pos_ += 4;
      out->v = true;
      return true;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
      out->v = false;
      return true;
    }
    if (text_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      out->v = nullptr;
      return true;
    }
    // Number.
    size_t end = pos_;
    while (end < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[end])) || text_[end] == '-' ||
            text_[end] == '+' || text_[end] == '.' || text_[end] == 'e' || text_[end] == 'E')) {
      ++end;
    }
    if (end == pos_) {
      return false;
    }
    out->v = std::stod(text_.substr(pos_, end - pos_));
    pos_ = end;
    return true;
  }

  const std::string& text_;
  size_t pos_ = 0;
};

std::string ExportToString(const TraceRecorder& recorder) {
  char* buf = nullptr;
  size_t len = 0;
  FILE* mem = open_memstream(&buf, &len);
  recorder.WriteChromeTrace(mem);
  std::fclose(mem);
  std::string out(buf, len);
  free(buf);
  return out;
}

// ---------------------------------------------------------------------------
// Recorder mechanics.
// ---------------------------------------------------------------------------

TEST(TraceRecorderTest, RecordsInOrder) {
  TraceRecorder recorder(8);
  recorder.Record(Instant(1, TraceCategory::kPacket, "a"));
  recorder.Record(Instant(2, TraceCategory::kSyscall, "b"));
  const std::vector<TraceEvent> events = recorder.Events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_STREQ(events[0].name, "a");
  EXPECT_STREQ(events[1].name, "b");
  EXPECT_EQ(recorder.recorded(), 2u);
  EXPECT_EQ(recorder.overwritten(), 0u);
}

TEST(TraceRecorderTest, RingWrapKeepsNewestEvents) {
  TraceRecorder recorder(4);
  for (int i = 0; i < 10; ++i) {
    TraceEvent e = Instant(i, TraceCategory::kPacket, "e");
    e.v1 = i;
    e.k1 = "i";
    recorder.Record(e);
  }
  EXPECT_EQ(recorder.size(), 4u);
  EXPECT_EQ(recorder.recorded(), 10u);
  EXPECT_EQ(recorder.overwritten(), 6u);
  const std::vector<TraceEvent> events = recorder.Events();
  ASSERT_EQ(events.size(), 4u);
  // Oldest-first ordering across the wrap point: 6, 7, 8, 9.
  for (int i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(events[i].v1, 6 + i);
    EXPECT_EQ(events[i].time, Us(6 + i));
  }
}

TEST(TraceRecorderTest, CategoryMaskFiltersRecording) {
  TraceRecorder recorder(8, TraceBit(TraceCategory::kHealth) |
                                TraceBit(TraceCategory::kController));
  EXPECT_FALSE(recorder.enabled(TraceCategory::kPacket));
  EXPECT_TRUE(recorder.enabled(TraceCategory::kHealth));
  recorder.Record(Instant(1, TraceCategory::kPacket, "dropme"));
  recorder.Record(Instant(2, TraceCategory::kHealth, "keep"));
  recorder.Record(Instant(3, TraceCategory::kQueue, "dropme"));
  recorder.Record(Instant(4, TraceCategory::kController, "keep"));
  const std::vector<TraceEvent> events = recorder.Events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_STREQ(events[0].name, "keep");
  EXPECT_STREQ(events[1].name, "keep");
  EXPECT_EQ(recorder.recorded(), 2u);  // Masked events never count.
}

TEST(TraceRecorderTest, TrackIdsAreStableAndNamed) {
  TraceRecorder recorder;
  const uint32_t a = recorder.Track("conn1/client");
  const uint32_t b = recorder.Track("conn1/server");
  EXPECT_NE(a, b);
  EXPECT_EQ(recorder.Track("conn1/client"), a);  // Create-or-get.
  ASSERT_GE(recorder.track_names().size(), 2u);
}

TEST(TraceGuardTest, TraceIfIsNullWhenUnboundOrMasked) {
  ASSERT_EQ(CurrentTrace(), nullptr);  // Tests run with no global binding.
  EXPECT_EQ(TraceIf(TraceCategory::kPacket), nullptr);
  TraceRecorder recorder(8, TraceBit(TraceCategory::kHealth));
  {
    ScopedTrace bind(&recorder);
    EXPECT_EQ(TraceIf(TraceCategory::kPacket), nullptr);  // Masked out.
    EXPECT_EQ(TraceIf(TraceCategory::kHealth), &recorder);
  }
  EXPECT_EQ(CurrentTrace(), nullptr);  // Restored on scope exit.
}

TEST(TraceGuardTest, ScopedTraceNestsAndRestores) {
  TraceRecorder outer(8);
  TraceRecorder inner(8);
  ScopedTrace bind_outer(&outer);
  {
    ScopedTrace bind_inner(&inner);
    EXPECT_EQ(CurrentTrace(), &inner);
  }
  EXPECT_EQ(CurrentTrace(), &outer);
}

// ---------------------------------------------------------------------------
// Chrome trace-event export, parsed back in-test.
// ---------------------------------------------------------------------------

TEST(ChromeTraceExportTest, ParsesBackWithSchema) {
  TraceRecorder recorder;
  const uint32_t conn = recorder.Track("conn1/client");

  TraceEvent instant = Instant(100, TraceCategory::kEstimator, "exchange_rx", conn);
  instant.k1 = "latency_us";
  instant.v1 = 123.5;
  instant.k2 = "verdict";
  instant.v2 = 0;
  recorder.Record(instant);

  TraceEvent span = Instant(200, TraceCategory::kPacket, "wire", conn);
  span.duration = Duration::Micros(50);
  span.k1 = "packet_id";
  span.v1 = 7;
  recorder.Record(span);

  const std::string text = ExportToString(recorder);
  JsonValue root;
  ASSERT_TRUE(JsonParser(text).Parse(&root)) << text;
  ASSERT_TRUE(root.is_object());
  const auto it = root.object().find("traceEvents");
  ASSERT_NE(it, root.object().end());
  ASSERT_TRUE(it->second.is_array());
  const JsonArray& events = it->second.array();

  size_t instants = 0;
  size_t spans = 0;
  size_t metadata = 0;
  bool saw_track_name = false;
  for (const JsonValue& ev : events) {
    ASSERT_TRUE(ev.is_object());
    const JsonObject& obj = ev.object();
    ASSERT_NE(obj.find("ph"), obj.end());
    ASSERT_NE(obj.find("pid"), obj.end());
    ASSERT_NE(obj.find("tid"), obj.end());
    ASSERT_NE(obj.find("name"), obj.end());
    const std::string& ph = obj.at("ph").str();
    if (ph == "M") {
      ++metadata;
      if (obj.at("name").str() == "thread_name" && obj.count("args") != 0u &&
          obj.at("args").object().at("name").str() == "conn1/client") {
        saw_track_name = true;
      }
      continue;
    }
    ASSERT_NE(obj.find("ts"), obj.end());
    ASSERT_NE(obj.find("cat"), obj.end());
    if (ph == "i") {
      ++instants;
      EXPECT_EQ(obj.at("name").str(), "exchange_rx");
      EXPECT_DOUBLE_EQ(obj.at("ts").number(), 100.0);
      EXPECT_EQ(obj.at("cat").str(), "estimator");
      EXPECT_DOUBLE_EQ(obj.at("args").object().at("latency_us").number(), 123.5);
    } else if (ph == "X") {
      ++spans;
      EXPECT_EQ(obj.at("name").str(), "wire");
      EXPECT_DOUBLE_EQ(obj.at("ts").number(), 200.0);
      EXPECT_DOUBLE_EQ(obj.at("dur").number(), 50.0);
      EXPECT_DOUBLE_EQ(obj.at("args").object().at("packet_id").number(), 7.0);
    } else {
      FAIL() << "unexpected phase " << ph;
    }
  }
  EXPECT_EQ(instants, 1u);
  EXPECT_EQ(spans, 1u);
  EXPECT_GE(metadata, 2u);  // process_name + at least one thread_name.
  EXPECT_TRUE(saw_track_name);
}

TEST(ChromeTraceExportTest, ExportIsByteDeterministic) {
  const auto build = [] {
    TraceRecorder recorder;
    const uint32_t t = recorder.Track("health");
    TraceEvent e = Instant(10, TraceCategory::kHealth, "local_only", t);
    e.k1 = "from";
    e.v1 = 0;
    recorder.Record(e);
    return ExportToString(recorder);
  };
  EXPECT_EQ(build(), build());
}

TEST(ChromeTraceExportTest, EmptyRecorderStillValidJson) {
  TraceRecorder recorder;
  const std::string text = ExportToString(recorder);
  JsonValue root;
  ASSERT_TRUE(JsonParser(text).Parse(&root)) << text;
  ASSERT_TRUE(root.is_object());
  EXPECT_NE(root.object().find("traceEvents"), root.object().end());
}

}  // namespace
}  // namespace e2e
