#include "src/tcp/sequence.h"

#include <gtest/gtest.h>

#include "src/sim/random.h"

namespace e2e {
namespace {

TEST(SequenceTest, WrapTruncates) {
  EXPECT_EQ(WrapSeq(0), 0u);
  EXPECT_EQ(WrapSeq(0xFFFFFFFFull), 0xFFFFFFFFu);
  EXPECT_EQ(WrapSeq(0x100000000ull), 0u);
  EXPECT_EQ(WrapSeq(0x100000005ull), 5u);
}

TEST(SequenceTest, UnwrapRecoversNearbyOffsets) {
  EXPECT_EQ(UnwrapSeq(WrapSeq(1000), 990), 1000u);
  EXPECT_EQ(UnwrapSeq(WrapSeq(1000), 1010), 1000u);
  // Across the 2^32 boundary in both directions.
  const uint64_t boundary = 0x100000000ull;
  EXPECT_EQ(UnwrapSeq(WrapSeq(boundary + 5), boundary - 5), boundary + 5);
  EXPECT_EQ(UnwrapSeq(WrapSeq(boundary - 5), boundary + 5), boundary - 5);
}

TEST(SequenceTest, UnwrapNeverGoesNegative) {
  // Reference near zero, seq slightly "behind": the next congruent value.
  EXPECT_EQ(UnwrapSeq(0xFFFFFFFFu, 0), 0xFFFFFFFFull);
  EXPECT_EQ(UnwrapSeq(0xFFFFFFF0u, 5), 0xFFFFFFF0ull);
}

TEST(SequenceTest, BeforeAfterAreWrapAware) {
  EXPECT_TRUE(SeqBefore(10, 20));
  EXPECT_FALSE(SeqBefore(20, 10));
  EXPECT_TRUE(SeqBefore(0xFFFFFFF0u, 5u));  // Wraps forward.
  EXPECT_TRUE(SeqAfter(5u, 0xFFFFFFF0u));
  EXPECT_TRUE(SeqBeforeEq(7u, 7u));
  EXPECT_FALSE(SeqBefore(7u, 7u));
}

// Property: for any 64-bit offset and any reference within 2^31, unwrapping
// the wrapped value recovers the original exactly.
class UnwrapRoundTripTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(UnwrapRoundTripTest, RoundTripsWithinHalfWindow) {
  Rng rng(GetParam());
  for (int i = 0; i < 2000; ++i) {
    const uint64_t offset = rng.NextU64() >> 4;  // Leave headroom.
    const int64_t skew = rng.UniformInt(-(int64_t{1} << 30), int64_t{1} << 30);
    const uint64_t reference =
        skew < 0 && offset < static_cast<uint64_t>(-skew) ? 0 : offset + skew;
    EXPECT_EQ(UnwrapSeq(WrapSeq(offset), reference), offset)
        << "offset=" << offset << " ref=" << reference;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, UnwrapRoundTripTest, ::testing::Values(1u, 2u, 3u, 4u));

}  // namespace
}  // namespace e2e
