// SACK scoreboard + RACK/TLP recovery behavior (DESIGN.md §15): holes are
// repaired individually from sack evidence, time-based marking replaces
// dup-ack counting when RACK is on, and a clean path never triggers any of
// it. The deterministic simulator makes the lossy runs reproducible: a
// fixed topology seed yields the same drop pattern every build.

#include <gtest/gtest.h>

#include "src/testbed/topology.h"

namespace e2e {
namespace {

MessageRecord Rec(uint64_t id) {
  MessageRecord record;
  record.id = id;
  return record;
}

TcpConfig BaseConfig() {
  TcpConfig tcp;
  tcp.nodelay = true;
  tcp.e2e_exchange_interval = Duration::Zero();
  return tcp;
}

TEST(SackRackTest, SackRepairsHolesIndividually) {
  TopologyConfig topo_config;
  topo_config.link.loss_probability = 0.05;
  topo_config.seed = 7;
  TwoHostTopology topo(topo_config);
  TcpConfig tcp = BaseConfig();
  tcp.features.sack = true;
  ConnectedPair conn = topo.Connect(1, tcp, tcp);

  topo.client_host().app_core().SubmitFixed(Duration::Nanos(100),
                                            [&] { conn.a->Send(200000, Rec(1)); });
  topo.sim().RunFor(Duration::Seconds(5));

  EXPECT_EQ(conn.b->ReadableBytes(), 200000u);
  // Losses were repaired from the scoreboard, not by a go-back-N rewind:
  // sack-driven retransmits happened, and the receiver generated blocks.
  EXPECT_GT(conn.a->stats().sack_retransmits, 0u);
  EXPECT_GT(conn.b->stats().sack_blocks_sent, 0u);
  // Selective repair keeps duplicate delivery far below the retransmit
  // count (go-back-N re-sends everything past the hole).
  EXPECT_LT(conn.b->stats().dup_segments_received, conn.a->stats().retransmits);
}

TEST(SackRackTest, RackMarksLossesByTimeNotDupAckCount) {
  TopologyConfig topo_config;
  topo_config.link.loss_probability = 0.05;
  topo_config.seed = 7;
  TwoHostTopology topo(topo_config);
  TcpConfig tcp = BaseConfig();
  tcp.features.sack = true;
  tcp.features.rack = true;
  tcp.features.timestamps = true;
  ConnectedPair conn = topo.Connect(1, tcp, tcp);

  topo.client_host().app_core().SubmitFixed(Duration::Nanos(100),
                                            [&] { conn.a->Send(200000, Rec(1)); });
  topo.sim().RunFor(Duration::Seconds(5));

  EXPECT_EQ(conn.b->ReadableBytes(), 200000u);
  EXPECT_GT(conn.a->stats().rack_marked_lost, 0u);
  EXPECT_GT(conn.a->stats().sack_retransmits, 0u);
}

TEST(SackRackTest, CleanPathNeverEntersRecovery) {
  TwoHostTopology topo;
  TcpConfig tcp = BaseConfig();
  tcp.features.sack = true;
  tcp.features.rack = true;
  tcp.features.timestamps = true;
  ConnectedPair conn = topo.Connect(1, tcp, tcp);

  topo.client_host().app_core().SubmitFixed(Duration::Nanos(100),
                                            [&] { conn.a->Send(500000, Rec(1)); });
  topo.sim().RunFor(Duration::Seconds(2));

  EXPECT_EQ(conn.b->ReadableBytes(), 500000u);
  EXPECT_EQ(conn.a->stats().retransmits, 0u);
  EXPECT_EQ(conn.a->stats().rack_marked_lost, 0u);
  EXPECT_EQ(conn.a->stats().rto_fires, 0u);
  EXPECT_EQ(conn.a->stats().recovery_events, 0u);
  EXPECT_EQ(conn.b->stats().dup_segments_received, 0u);
}

TEST(SackRackTest, TimestampsFeedKarnSafeRttSamples) {
  TwoHostTopology topo;
  TcpConfig tcp = BaseConfig();
  tcp.features.timestamps = true;
  ConnectedPair conn = topo.Connect(1, tcp, tcp);

  topo.client_host().app_core().SubmitFixed(Duration::Nanos(100),
                                            [&] { conn.a->Send(100000, Rec(1)); });
  topo.sim().RunFor(Duration::Seconds(1));

  EXPECT_EQ(conn.b->ReadableBytes(), 100000u);
  // Every ack with a sane echo contributes a sample; without timestamps
  // only one segment per window is timed.
  EXPECT_GT(conn.a->stats().rtt_ts_samples, 0u);
  EXPECT_GE(conn.a->rtt().samples(), 1);
}

TEST(SackRackTest, TailLossIsProbedNotTimedOut) {
  // Paced small writes with idle gaps create single-segment flights whose
  // loss only a tail-loss probe can detect before the backed-off RTO.
  TopologyConfig topo_config;
  topo_config.link.loss_probability = 0.08;
  topo_config.seed = 11;
  TwoHostTopology topo(topo_config);
  TcpConfig tcp = BaseConfig();
  tcp.features.sack = true;
  tcp.features.rack = true;
  tcp.features.timestamps = true;
  ConnectedPair conn = topo.Connect(1, tcp, tcp);

  constexpr int kSends = 200;
  for (int i = 0; i < kSends; ++i) {
    topo.sim().Schedule(Duration::Millis(5) * i, [&, i] {
      topo.client_host().app_core().SubmitFixed(Duration::Nanos(100),
                                                [&, i] { conn.a->Send(600, Rec(i + 1)); });
    });
  }
  topo.sim().RunFor(Duration::Seconds(3));

  EXPECT_EQ(conn.b->ReadableBytes(), kSends * 600u);
  EXPECT_GT(conn.a->stats().tlp_probes, 0u);
}

// Close-during-TLP: a tail segment is deterministically blackholed so a
// tail-loss probe arms; the softirq core is stalled across the PTO window so
// the probe's CPU work sits queued while the endpoint closes. The drained
// work must notice the zombie instead of retransmitting with it, and the
// re-armed RTO (canceled by Shutdown) must never fire post-close.
TEST(SackRackTest, CloseDuringTlpFiresNothingOnZombie) {
  TopologyConfig topo_config;
  LinkScheduleStep blackhole;
  blackhole.at = TimePoint::Zero() + Duration::Millis(100);
  blackhole.loss_probability = 0.999999;  // The model requires p < 1.
  topo_config.c2s_impairment.schedule.Add(blackhole);
  TwoHostTopology topo(topo_config);
  TcpConfig tcp = BaseConfig();
  tcp.features.sack = true;
  tcp.features.rack = true;
  tcp.features.timestamps = true;
  ConnectedPair conn = topo.Connect(1, tcp, tcp);

  // Warm-up on the clean link establishes SRTT, so the doomed send arms the
  // RTO in TLP mode (PTO = 2*SRTT + delayed-ack allowance, ~42 ms here).
  topo.client_host().app_core().SubmitFixed(Duration::Nanos(100),
                                            [&] { conn.a->Send(5000, Rec(1)); });
  topo.sim().RunFor(Duration::Millis(100));
  ASSERT_EQ(conn.b->ReadableBytes(), 5000u);

  // The doomed tail segment goes into the blackhole at 110 ms; the PTO
  // fires at ~152 ms, inside the 120-320 ms stall, queueing the probe's
  // CPU work. The endpoint closes at 300 ms with that work still pending.
  topo.sim().Schedule(Duration::Millis(10), [&] {
    topo.client_host().app_core().SubmitFixed(Duration::Nanos(100),
                                              [&] { conn.a->Send(600, Rec(2)); });
  });
  topo.sim().Schedule(Duration::Millis(20), [&] {
    topo.client_host().softirq_core().Stall(Duration::Millis(200));
  });
  uint64_t packets_at_close = 0;
  uint64_t retransmits_at_close = 0;
  topo.sim().Schedule(Duration::Millis(200), [&] {
    EXPECT_GE(conn.a->stats().tlp_probes, 1u);  // The PTO fired into the stall.
    packets_at_close = conn.a->stats().wire_packets_sent;
    retransmits_at_close = conn.a->stats().retransmits;
    topo.client_stack().CloseEndpoint(1, /*is_a=*/true);
  });
  topo.sim().RunFor(Duration::Seconds(2));

  EXPECT_EQ(conn.a->stats().wire_packets_sent, packets_at_close);
  EXPECT_EQ(conn.a->stats().retransmits, retransmits_at_close);
  EXPECT_EQ(conn.a->stats().rto_fires, 0u);  // Canceled at close; never fired.
}

}  // namespace
}  // namespace e2e
