// Zero-window persist probing: a closed peer window with nothing in flight
// must not deadlock — the sender probes until the window reopens, even when
// window-update acks can be lost.

#include <gtest/gtest.h>

#include "src/testbed/topology.h"

namespace e2e {
namespace {

MessageRecord Rec(uint64_t id) {
  MessageRecord record;
  record.id = id;
  return record;
}

TEST(PersistTest, ProbesWhileWindowClosedAndResumesOnRead) {
  TwoHostTopology topo;
  TcpConfig sender;
  sender.nodelay = true;
  sender.e2e_exchange_interval = Duration::Zero();
  TcpConfig receiver = sender;
  receiver.rcvbuf_bytes = 2000;  // Closes after ~2 KB.
  ConnectedPair conn = topo.Connect(1, sender, receiver);

  topo.client_host().app_core().SubmitFixed(Duration::Nanos(100),
                                            [&] { conn.a->Send(10000, Rec(1)); });
  // Receiver does not read for a second: the window sits at zero with
  // nothing in flight, so only persist probes may move.
  topo.sim().RunFor(Duration::Seconds(1));
  EXPECT_GE(conn.a->stats().persist_probes, 1u);
  EXPECT_LT(conn.b->ReadableBytes(), 2100u);  // Window held (plus probes).

  // Reading reopens the window; with the receiver's 2 KB buffer the
  // transfer completes in window-sized installments across several
  // read/update cycles.
  uint64_t total = 0;
  for (int i = 0; i < 200; ++i) {
    topo.sim().Schedule(Duration::Millis(2) * i, [&] {
      topo.server_host().app_core().SubmitFixed(Duration::Nanos(200),
                                                [&] { total += conn.b->Recv().bytes; });
    });
  }
  topo.sim().RunFor(Duration::Millis(450));
  total += conn.b->Recv().bytes;
  EXPECT_EQ(total, 10000u);
}

TEST(PersistTest, SurvivesLostWindowUpdates) {
  // With 20% loss, the single window-update ack is frequently dropped; the
  // persist machinery must still complete the transfer.
  TopologyConfig topo_config;
  topo_config.link.loss_probability = 0.2;
  TwoHostTopology topo(topo_config);
  TcpConfig sender;
  sender.nodelay = true;
  sender.e2e_exchange_interval = Duration::Zero();
  TcpConfig receiver = sender;
  receiver.rcvbuf_bytes = 3000;
  ConnectedPair conn = topo.Connect(1, sender, receiver);

  topo.client_host().app_core().SubmitFixed(Duration::Nanos(100),
                                            [&] { conn.a->Send(30000, Rec(1)); });
  // Slow reader: a read every 50 ms opens the window in small steps, each
  // opening signaled by exactly one (lossy) window-update ack.
  uint64_t total = 0;
  for (int i = 1; i <= 400; ++i) {
    topo.sim().Schedule(Duration::Millis(50) * i, [&] {
      topo.server_host().app_core().SubmitFixed(Duration::Nanos(200),
                                                [&] { total += conn.b->Recv().bytes; });
    });
  }
  topo.sim().RunFor(Duration::Seconds(25));
  total += conn.b->Recv().bytes;
  EXPECT_EQ(total, 30000u);
}

TEST(PersistTest, LongZeroWindowBacksOffProbeRate) {
  // A receiver that never reads must not be probed at a constant rate: the
  // interval doubles per unanswered probe (persist_backoffs counts the
  // doublings) up to persist_max_interval. At the 200 ms RTO floor a
  // constant-rate prober would fire ~100 times in 20 s; the backed-off
  // schedule ramps 200→400→800 ms and then sits at the 1 s cap.
  TwoHostTopology topo;
  TcpConfig sender;
  sender.nodelay = true;
  sender.e2e_exchange_interval = Duration::Zero();
  TcpConfig receiver = sender;
  receiver.rcvbuf_bytes = 2000;
  ConnectedPair conn = topo.Connect(1, sender, receiver);

  topo.client_host().app_core().SubmitFixed(Duration::Nanos(100),
                                            [&] { conn.a->Send(10000, Rec(1)); });
  const Duration run = Duration::Seconds(20);
  topo.sim().RunFor(run);

  const uint64_t constant_rate_bound =
      static_cast<uint64_t>(run.nanos() / conn.a->rtt().rto().nanos());
  EXPECT_GE(conn.a->stats().persist_probes, 5u);  // Still probing, not dead.
  EXPECT_LT(conn.a->stats().persist_probes, constant_rate_bound / 2);
  EXPECT_LE(conn.a->stats().persist_probes, 25u);  // Ramp + ~18 at the cap.
  EXPECT_GE(conn.a->stats().persist_backoffs, 3u);
}

// Close-during-persist-backoff: the endpoint closes while a persist probe's
// CPU work sits queued behind a stalled softirq core. When the work drains,
// it must notice the zombie (graveyard-parked endpoint) instead of building
// and transmitting a probe with it, and the canceled persist timer must not
// schedule any further probes.
TEST(PersistTest, CloseDuringPersistBackoffFiresNothingOnZombie) {
  TwoHostTopology topo;
  TcpConfig sender;
  sender.nodelay = true;
  sender.e2e_exchange_interval = Duration::Zero();
  TcpConfig receiver = sender;
  receiver.rcvbuf_bytes = 2000;
  ConnectedPair conn = topo.Connect(1, sender, receiver);

  topo.client_host().app_core().SubmitFixed(Duration::Nanos(100),
                                            [&] { conn.a->Send(10000, Rec(1)); });
  // Get well into the backed-off schedule (interval at the 1 s cap).
  topo.sim().RunFor(Duration::Seconds(4));
  ASSERT_GE(conn.a->stats().persist_probes, 2u);
  ASSERT_GE(conn.a->stats().persist_backoffs, 3u);

  // Freeze the softirq core across the next probe interval: the persist
  // timer fires into the stall, so its Submit()ed work is still queued when
  // the endpoint closes underneath it 1.5 s in.
  topo.client_host().softirq_core().Stall(Duration::Seconds(2));
  uint64_t probes_at_close = 0;
  uint64_t packets_at_close = 0;
  topo.sim().Schedule(Duration::Millis(1500), [&] {
    probes_at_close = conn.a->stats().persist_probes;
    packets_at_close = conn.a->stats().wire_packets_sent;
    topo.client_stack().CloseEndpoint(1, /*is_a=*/true);
  });
  topo.sim().RunFor(Duration::Seconds(4));  // Stall drains, then 2 s idle.

  ASSERT_GE(probes_at_close, 3u);  // A probe did fire into the stall.
  EXPECT_EQ(conn.a->stats().persist_probes, probes_at_close);
  EXPECT_EQ(conn.a->stats().wire_packets_sent, packets_at_close);
}

TEST(PersistTest, NoProbesWhenWindowNeverCloses) {
  TwoHostTopology topo;
  TcpConfig tcp;
  tcp.nodelay = true;
  ConnectedPair conn = topo.Connect(1, tcp, tcp);
  topo.client_host().app_core().SubmitFixed(Duration::Nanos(100),
                                            [&] { conn.a->Send(10000, Rec(1)); });
  topo.sim().RunFor(Duration::Seconds(1));
  EXPECT_EQ(conn.a->stats().persist_probes, 0u);
  EXPECT_EQ(conn.b->ReadableBytes(), 10000u);
}

}  // namespace
}  // namespace e2e
