// Retransmit-path behavior under impaired networks (the paths the pristine
// seed topology never exercised): mild reordering below the dup-ack
// threshold must NOT trigger spurious fast retransmits, while burst loss
// must recover via RTO/fast-retransmit with the stats counters reflecting
// the actual events.

#include <gtest/gtest.h>

#include "src/testbed/topology.h"

namespace e2e {
namespace {

MessageRecord Rec(uint64_t id) {
  MessageRecord record;
  record.id = id;
  return record;
}

// Sends `count` messages of `bytes` each from the client app core, paced
// `every` apart, then runs until `total`.
void DriveClientSends(TwoHostTopology& topo, ConnectedPair& conn, int count, uint64_t bytes,
                      Duration every, Duration total) {
  for (int i = 0; i < count; ++i) {
    topo.sim().Schedule(every * (i + 1), [&topo, &conn, bytes, i] {
      topo.client_host().app_core().SubmitFixed(Duration::Micros(1),
                                                [&conn, bytes, i] {
                                                  conn.a->Send(bytes, Rec(static_cast<uint64_t>(i)));
                                                });
    });
  }
  topo.sim().RunFor(total);
}

TEST(ReorderRetransmitTest, MildReorderingDoesNotTriggerSpuriousFastRetransmit) {
  TopologyConfig config;
  // Gap-1 reordering: a held packet is re-injected after ONE later packet
  // passes it. The receiver acks from softirq work that drains after the
  // poll batch, so every hole still open at the END of a batch contributes
  // one duplicate ack at the stuck rcv_nxt. With two-packet bursts at most
  // one hole can be open per batch, so the client never sees more than one
  // duplicate ack per ack value — structurally below the three-dup-ack
  // fast-retransmit threshold (RFC 5681).
  config.c2s_impairment.reorder = ReorderConfig{};
  config.c2s_impairment.reorder->probability = 0.25;
  config.c2s_impairment.reorder->gap = 1;
  config.c2s_impairment.reorder->max_hold = Duration::Micros(200);
  TwoHostTopology topo(config);
  TcpConfig tcp;
  tcp.nodelay = true;
  ConnectedPair conn = topo.Connect(1, tcp, tcp);

  // 60 messages of 2 MSS each: each send is a two-packet wire burst the
  // reorder stage can flip without ever stacking holes within one burst.
  const uint64_t kMsgBytes = 2 * 1448;
  DriveClientSends(topo, conn, 60, kMsgBytes, Duration::Micros(200), Duration::Millis(100));

  ASSERT_NE(topo.c2s_impairment(), nullptr);
  EXPECT_GT(topo.c2s_impairment()->TotalReordered(), 0u);  // Reordering did happen...
  EXPECT_GT(conn.b->stats().ooo_segments, 0u);             // ...and was observed by TCP...
  EXPECT_EQ(conn.a->stats().retransmits, 0u);              // ...without spurious retransmits.
  EXPECT_EQ(conn.b->Recv().bytes, 60u * kMsgBytes);        // All data delivered in order.
}

TEST(ReorderRetransmitTest, BurstLossRecoversWithRetransmits) {
  TopologyConfig config;
  // Classic Gilbert bursts: ~6-packet outages, 2% stationary loss on the
  // request path. Every burst knocks out several consecutive segments, so
  // recovery needs genuine retransmissions (fast retransmit and/or RTO).
  config.c2s_impairment.gilbert_elliott = GilbertElliottConfig::FromBurstAndRate(6.0, 0.02);
  TwoHostTopology topo(config);
  TcpConfig tcp;
  tcp.nodelay = true;
  ConnectedPair conn = topo.Connect(1, tcp, tcp);

  const uint64_t kMsgBytes = 20 * 1448;
  DriveClientSends(topo, conn, 100, kMsgBytes, Duration::Micros(300), Duration::Seconds(2));

  ASSERT_NE(topo.c2s_impairment(), nullptr);
  const uint64_t dropped = topo.c2s_impairment()->TotalDropped();
  const TcpEndpoint::Stats& client = conn.a->stats();
  EXPECT_GT(dropped, 0u);
  // Every dropped data segment must eventually be covered by a retransmit
  // (retransmits can exceed drops when a retransmission is itself lost, and
  // be below them when one MSS retransmit covers a multi-slice hole — but
  // zero retransmits with drops > 0 would mean the path is broken).
  EXPECT_GT(client.retransmits, 0u);
  // Ground truth: despite the bursts, everything arrives exactly once.
  EXPECT_EQ(conn.b->Recv().bytes, 100u * kMsgBytes);
  EXPECT_EQ(conn.b->stats().bytes_received, 100u * kMsgBytes);
}

TEST(ReorderRetransmitTest, DeepReorderingAboveThresholdTriggersFastRetransmit) {
  TopologyConfig config;
  // Gap-6 reordering: six packets overtake each held packet, producing
  // >= 3 dup-acks per hole — enough to trip fast retransmit even though
  // nothing was actually lost (the classic spurious-retransmit regime).
  config.c2s_impairment.reorder = ReorderConfig{};
  config.c2s_impairment.reorder->probability = 0.2;
  config.c2s_impairment.reorder->gap = 6;
  config.c2s_impairment.reorder->max_hold = Duration::Millis(5);
  TwoHostTopology topo(config);
  TcpConfig tcp;
  tcp.nodelay = true;
  ConnectedPair conn = topo.Connect(1, tcp, tcp);

  // Two seconds of run time: holes that dodge fast retransmit still need a
  // full RTO (200 ms Linux floor) before the sender repairs them.
  const uint64_t kMsgBytes = 30 * 1448;
  DriveClientSends(topo, conn, 80, kMsgBytes, Duration::Micros(200), Duration::Seconds(2));

  EXPECT_GT(conn.a->stats().retransmits, 0u);  // Spurious, but expected here.
  EXPECT_EQ(conn.b->Recv().bytes, 80u * kMsgBytes);
  EXPECT_EQ(conn.b->stats().bytes_received, 80u * kMsgBytes);
}

TEST(ReorderRetransmitTest, WindowUpdateAcksAreNotCountedAsDuplicates) {
  TopologyConfig config;
  // Jitter (order-preserving) stretches data arrivals without ever
  // reordering or dropping them. In the gaps, the receiving app drains its
  // backlog in small reads, each of which emits a window-update pure ack at
  // the SAME ack offset. RFC 5681 excludes window updates from duplicate-ack
  // counting; miscounting them fires spurious fast retransmits on a
  // loss-free, order-preserving path.
  JitterConfig jitter;
  jitter.dist = JitterConfig::Dist::kExponential;
  jitter.mean = Duration::Micros(40);
  config.c2s_impairment.jitter = jitter;
  TwoHostTopology topo(config);
  TcpConfig tcp;
  tcp.nodelay = true;
  ConnectedPair conn = topo.Connect(1, tcp, tcp);

  const uint64_t kMsgBytes = 6 * 1448;
  const int kMsgs = 150;
  for (int i = 0; i < kMsgs; ++i) {
    topo.sim().Schedule(Duration::Micros(80) * (i + 1), [&topo, &conn, i] {
      topo.client_host().app_core().SubmitFixed(
          Duration::Micros(1), [&conn, i] { conn.a->Send(kMsgBytes, Rec(static_cast<uint64_t>(i))); });
    });
  }
  // Reader slightly slower than the sender, so a backlog builds and every
  // read reopens the window enough to trigger an update.
  uint64_t drained = 0;
  for (int i = 0; i < 6000; ++i) {
    topo.sim().Schedule(Duration::Micros(20) * (i + 1), [&topo, &conn, &drained] {
      topo.server_host().app_core().SubmitFixed(
          Duration::Micros(1), [&conn, &drained] { drained += conn.b->Recv(2 * 1448).bytes; });
    });
  }
  topo.sim().RunFor(Duration::Millis(200));

  EXPECT_EQ(drained, static_cast<uint64_t>(kMsgs) * kMsgBytes);  // Path is loss-free...
  EXPECT_EQ(conn.a->stats().retransmits, 0u);  // ...so no retransmit is ever justified.
}

}  // namespace
}  // namespace e2e
