#include "src/tcp/congestion.h"

#include <gtest/gtest.h>

#include "src/testbed/topology.h"

namespace e2e {
namespace {

CongestionControl::Config Cfg() {
  CongestionControl::Config config;
  config.mss = 1000;
  config.initial_window_segments = 10;
  config.max_window_bytes = 1000000;
  return config;
}

TEST(CongestionControlTest, StartsAtInitialWindow) {
  CongestionControl cc(Cfg());
  EXPECT_EQ(cc.window_bytes(), 10000u);
  EXPECT_TRUE(cc.in_slow_start());
}

TEST(CongestionControlTest, SlowStartDoublesPerWindow) {
  CongestionControl cc(Cfg());
  cc.OnAck(10000);  // A full window acked -> window doubles.
  EXPECT_EQ(cc.window_bytes(), 20000u);
  cc.OnAck(20000);
  EXPECT_EQ(cc.window_bytes(), 40000u);
}

TEST(CongestionControlTest, CongestionAvoidanceGrowsOneMssPerWindow) {
  CongestionControl cc(Cfg());
  cc.OnFastRetransmit();  // ssthresh = 5000, cwnd = 5000: avoidance mode.
  EXPECT_FALSE(cc.in_slow_start());
  const uint64_t before = cc.window_bytes();
  cc.OnAck(before);  // One full window of acks.
  EXPECT_EQ(cc.window_bytes(), before + 1000);
  // Partial windows accumulate instead of rounding to zero growth.
  const uint64_t start = cc.window_bytes();
  for (int i = 0; i < 6; ++i) {
    cc.OnAck(start / 6 + 1);
  }
  EXPECT_GE(cc.window_bytes(), start + 1000);
}

TEST(CongestionControlTest, FastRetransmitHalves) {
  CongestionControl cc(Cfg());
  cc.OnAck(30000);  // cwnd 40000.
  cc.OnFastRetransmit();
  EXPECT_EQ(cc.window_bytes(), 20000u);
  EXPECT_EQ(cc.ssthresh(), 20000u);
}

TEST(CongestionControlTest, TimeoutCollapsesToOneMss) {
  CongestionControl cc(Cfg());
  cc.OnAck(30000);
  cc.OnTimeout();
  EXPECT_EQ(cc.window_bytes(), 1000u);
  EXPECT_TRUE(cc.in_slow_start());
  EXPECT_EQ(cc.ssthresh(), 20000u);
}

TEST(CongestionControlTest, FloorsAtTwoMss) {
  CongestionControl cc(Cfg());
  for (int i = 0; i < 10; ++i) {
    cc.OnFastRetransmit();
  }
  EXPECT_EQ(cc.window_bytes(), 2000u);
}

TEST(CongestionControlTest, CapsAtMaxWindow) {
  CongestionControl cc(Cfg());
  for (int i = 0; i < 40; ++i) {
    cc.OnAck(cc.window_bytes());
  }
  EXPECT_EQ(cc.window_bytes(), 1000000u);
}

TEST(CongestionControlTest, DisabledIsUnbounded) {
  CongestionControl::Config config = Cfg();
  config.enabled = false;
  CongestionControl cc(config);
  EXPECT_GT(cc.window_bytes(), 1ull << 60);
  cc.OnTimeout();
  EXPECT_GT(cc.window_bytes(), 1ull << 60);
}

// Full-stack: a cold connection's first flight is bounded by IW10, then the
// window opens as acks return.
TEST(CongestionIntegration, InitialFlightIsWindowLimited) {
  TwoHostTopology topo;
  TcpConfig tcp;
  tcp.nodelay = true;
  tcp.e2e_exchange_interval = Duration::Zero();
  tcp.cc.initial_window_segments = 4;  // 4 * 1448 = 5792 bytes.
  ConnectedPair conn = topo.Connect(1, tcp, tcp);
  topo.client_host().app_core().SubmitFixed(Duration::Nanos(100), [&] {
    MessageRecord record;
    record.id = 1;
    conn.a->Send(100000, std::move(record));
  });
  // Before any ack returns (propagation 3 us each way), at most IW bytes
  // can be on the wire.
  topo.sim().RunUntil(TimePoint::FromNanos(4000));
  EXPECT_LE(conn.a->stats().bytes_sent, 4u * 1448u);
  // Eventually everything arrives.
  topo.sim().RunFor(Duration::Millis(50));
  EXPECT_EQ(conn.b->Recv().bytes, 100000u);
  EXPECT_FALSE(conn.a->congestion().in_slow_start() &&
               conn.a->congestion().window_bytes() < 100000u);
}

}  // namespace
}  // namespace e2e
