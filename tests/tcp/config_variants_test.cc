// TCP configuration variants: non-default MSS, GRO coalescing bounds,
// window-update thresholds, and the cork-limit continuum.

#include <gtest/gtest.h>

#include "src/testbed/topology.h"

namespace e2e {
namespace {

MessageRecord Rec(uint64_t id) {
  MessageRecord record;
  record.id = id;
  return record;
}

TEST(MssConfigTest, SegmentationFollowsConfiguredMss) {
  TwoHostTopology topo;
  TcpConfig config;
  config.nodelay = true;
  config.mss = 500;
  config.cc.enabled = false;
  config.e2e_exchange_interval = Duration::Zero();
  ConnectedPair conn = topo.Connect(1, config, config);
  topo.client_host().app_core().SubmitFixed(Duration::Nanos(100),
                                            [&] { conn.a->Send(5000, Rec(1)); });
  topo.sim().RunFor(Duration::Millis(5));
  EXPECT_EQ(conn.a->stats().wire_packets_sent, 10u);  // 5000 / 500.
  EXPECT_EQ(conn.b->ReadableBytes(), 5000u);
  // Packet-unit accounting uses the same grid.
  EXPECT_EQ(conn.a->queues().Get(QueueKind::kUnacked, UnitMode::kPackets).total(), 10);
}

TEST(MssConfigTest, NagleHoldThresholdScalesWithMss) {
  TwoHostTopology topo;
  TcpConfig config;
  config.nodelay = false;
  config.mss = 200;  // A 300-byte write is now super-MSS: never held.
  config.e2e_exchange_interval = Duration::Zero();
  TcpConfig peer;
  peer.nodelay = true;
  peer.delack_timeout = Duration::Millis(200);
  ConnectedPair conn = topo.Connect(1, config, peer);
  topo.client_host().app_core().SubmitFixed(Duration::Nanos(100), [&] {
    conn.a->Send(300, Rec(1));
    conn.a->Send(300, Rec(2));  // >= MSS: sent despite in-flight data.
  });
  topo.sim().RunFor(Duration::Millis(2));
  EXPECT_EQ(conn.b->ReadableBytes(), 600u);
  EXPECT_EQ(conn.a->stats().nagle_holds, 0u);
}

TEST(GroConfigTest, MaxBytesBoundsCoalescing) {
  TopologyConfig topo_config;
  topo_config.server_stack_costs.gro = true;
  topo_config.server_stack_costs.gro_max_bytes = 3000;  // ~2 slices max.
  TwoHostTopology topo(topo_config);
  TcpConfig config;
  config.nodelay = true;
  config.cc.enabled = false;
  config.e2e_exchange_interval = Duration::Zero();
  ConnectedPair conn = topo.Connect(1, config, config);
  topo.client_host().app_core().SubmitFixed(Duration::Nanos(100),
                                            [&] { conn.a->Send(14480, Rec(1)); });  // 10 slices.
  topo.sim().RunFor(Duration::Millis(5));
  // With a 3000-byte cap, at most 2 slices merge per group: >= 5 groups, so
  // at most 5 of the 10 stack passes were saved.
  EXPECT_LE(topo.server_stack().gro_merged(), 5u);
  EXPECT_GT(topo.server_stack().gro_merged(), 0u);
}

TEST(CorkLimitTest, IntermediateLimitsBatchProportionally) {
  // Sweep the AIMD knob: higher cork limits hold more consecutive small
  // writes per flush, monotonically reducing segment counts.
  uint64_t previous_segments = UINT64_MAX;
  for (uint32_t limit : {0u, 120u, 260u, 1448u}) {
    TwoHostTopology topo;
    TcpConfig config;
    config.nodelay = false;
    config.e2e_exchange_interval = Duration::Zero();
    TcpConfig peer;
    peer.nodelay = true;
    peer.delack_timeout = Duration::Millis(5);
    ConnectedPair conn = topo.Connect(1, config, peer);
    conn.a->SetCorkLimit(limit);
    for (int i = 0; i < 40; ++i) {
      topo.sim().Schedule(Duration::Micros(100 * i), [&, i] {
        topo.client_host().app_core().SubmitFixed(Duration::Nanos(100),
                                                  [&, i] { conn.a->Send(50, Rec(i)); });
      });
    }
    topo.sim().RunFor(Duration::Millis(200));
    EXPECT_EQ(conn.b->Recv().messages.size(), 40u) << "limit " << limit;
    const uint64_t segments = conn.a->stats().data_segments_sent;
    EXPECT_LE(segments, previous_segments) << "limit " << limit;
    previous_segments = segments;
    if (limit == 0) {
      EXPECT_EQ(segments, 40u);  // Nodelay-equivalent.
    }
  }
  EXPECT_LT(previous_segments, 40u);  // Full Nagle batched at least some.
}

TEST(WindowUpdateTest, SmallReadsDoNotSpamWindowUpdates) {
  TwoHostTopology topo;
  TcpConfig config;
  config.nodelay = true;
  config.e2e_exchange_interval = Duration::Zero();
  TcpConfig peer = config;
  peer.rcvbuf_bytes = 64 * 1024;
  ConnectedPair conn = topo.Connect(1, config, peer);
  topo.client_host().app_core().SubmitFixed(Duration::Nanos(100),
                                            [&] { conn.a->Send(40000, Rec(1)); });
  topo.sim().RunFor(Duration::Millis(5));
  const uint64_t acks_before = conn.b->stats().pure_acks_sent;
  // 100 tiny reads: window growth per read (400 B) is far under the 2-MSS
  // update threshold, so almost no update acks should go out.
  for (int i = 0; i < 100; ++i) {
    topo.sim().Schedule(Duration::Micros(10 * i), [&] {
      topo.server_host().app_core().SubmitFixed(Duration::Nanos(100),
                                                [&] { conn.b->Recv(400); });
    });
  }
  topo.sim().RunFor(Duration::Millis(10));
  EXPECT_LE(conn.b->stats().pure_acks_sent - acks_before, 20u);
}

}  // namespace
}  // namespace e2e
