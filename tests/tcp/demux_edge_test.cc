// Stack demultiplexing edge cases: packets that match no endpoint, or
// carry no TCP payload at all, are counted and dropped without disturbing
// live connections.

#include <gtest/gtest.h>

#include "src/testbed/topology.h"

namespace e2e {
namespace {

TEST(DemuxEdgeTest, UnknownConnectionIsCountedAndIgnored) {
  TwoHostTopology topo;
  TcpConfig tcp;
  tcp.nodelay = true;
  ConnectedPair conn = topo.Connect(1, tcp, tcp);

  // Hand-deliver a segment for a connection id nobody owns.
  auto seg = std::make_shared<TcpSegment>();
  seg->conn_id = 999;
  seg->from_a = true;
  seg->len = 100;
  Packet packet;
  packet.id = 1;
  packet.wire_bytes = 100 + kWireHeaderBytes;
  packet.payload = seg;
  topo.server_host().nic().DeliverPacket(std::move(packet));
  topo.sim().RunFor(Duration::Millis(1));
  EXPECT_EQ(topo.server_stack().unknown_segments(), 1u);

  // The live connection is unaffected.
  topo.client_host().app_core().SubmitFixed(Duration::Nanos(100), [&] {
    MessageRecord record;
    conn.a->Send(50, std::move(record));
  });
  topo.sim().RunFor(Duration::Millis(2));
  EXPECT_EQ(conn.b->ReadableBytes(), 50u);
}

TEST(DemuxEdgeTest, NonTcpPayloadIsCountedAndIgnored) {
  TwoHostTopology topo;
  struct AlienPayload : public PacketPayload {};
  Packet packet;
  packet.id = 2;
  packet.wire_bytes = 500;
  packet.payload = std::make_shared<AlienPayload>();
  topo.server_host().nic().DeliverPacket(std::move(packet));
  topo.sim().RunFor(Duration::Millis(1));
  EXPECT_EQ(topo.server_stack().unknown_segments(), 1u);
}

TEST(DemuxEdgeTest, OwnDirectionSegmentFindsNoEndpoint) {
  TwoHostTopology topo;
  TcpConfig tcp;
  tcp.nodelay = true;
  ConnectedPair conn = topo.Connect(1, tcp, tcp);
  (void)conn;
  // A segment stamped "from A" delivered to A's own host resolves to the
  // key (conn 1, is_a = false) — the B side, which A's stack does not own.
  auto bogus = std::make_shared<TcpSegment>();
  bogus->conn_id = 1;
  bogus->from_a = true;
  Packet packet;
  packet.id = 4;
  packet.wire_bytes = kWireHeaderBytes;
  packet.payload = bogus;
  topo.client_host().nic().DeliverPacket(std::move(packet));
  topo.sim().RunFor(Duration::Millis(1));
  EXPECT_EQ(topo.client_stack().unknown_segments(), 1u);
}

}  // namespace
}  // namespace e2e
