// Second batch of endpoint behavior tests: the classic Nagle/delayed-ack
// interaction, configuration variations, unit accounting, and buffer
// backpressure callbacks.

#include <gtest/gtest.h>

#include "src/testbed/topology.h"

namespace e2e {
namespace {

MessageRecord Rec(uint64_t id) {
  MessageRecord record;
  record.id = id;
  return record;
}

TcpConfig Cfg(bool nodelay) {
  TcpConfig config;
  config.nodelay = nodelay;
  config.e2e_exchange_interval = Duration::Zero();
  return config;
}

// The famous pathology (paper §2, citing Cheshire): a sender performing
// write-write with no reverse data stalls for a full delayed-ack timeout —
// the second small write waits for the ack of the first, and the receiver
// is holding that ack for 40 ms hoping to piggyback it.
TEST(NagleDelackInteraction, WriteWriteStallsForTheDelackTimeout) {
  TcpConfig sender = Cfg(/*nodelay=*/false);
  sender.nagle_timeout = Duration::Seconds(10);  // Out of the picture.
  TcpConfig receiver = Cfg(true);
  receiver.delack_timeout = Duration::Millis(40);
  TwoHostTopology topo;
  ConnectedPair conn = topo.Connect(1, sender, receiver);

  TimePoint second_arrival;
  conn.b->SetReadableCallback([&] {
    if (conn.b->ReadableBytes() >= 200) {
      second_arrival = topo.sim().Now();
    }
  });
  topo.client_host().app_core().SubmitFixed(Duration::Nanos(100), [&] {
    conn.a->Send(100, Rec(1));
    conn.a->Send(100, Rec(2));  // Held by Nagle until #1 is acked.
  });
  topo.sim().RunFor(Duration::Millis(100));
  // The second write lands only after the receiver's 40 ms delack fires.
  EXPECT_GT(second_arrival, TimePoint::FromNanos(39000000));
  EXPECT_LT(second_arrival, TimePoint::FromNanos(45000000));
  // At least the stall-causing delack fired (the second write's own ack
  // may add another cycle within the run window).
  EXPECT_GE(conn.b->stats().delack_timer_fires, 1u);
}

// With TCP_NODELAY the same pattern completes in microseconds — the fix
// every "it's always TCP_NODELAY" article recommends.
TEST(NagleDelackInteraction, NodelayAvoidsTheStall) {
  TcpConfig sender = Cfg(/*nodelay=*/true);
  TwoHostTopology topo;
  ConnectedPair conn = topo.Connect(1, sender, Cfg(true));
  topo.client_host().app_core().SubmitFixed(Duration::Nanos(100), [&] {
    conn.a->Send(100, Rec(1));
    conn.a->Send(100, Rec(2));
  });
  topo.sim().RunFor(Duration::Millis(1));
  EXPECT_EQ(conn.b->ReadableBytes(), 200u);
}

TEST(DelackConfig, SegmentThresholdIsConfigurable) {
  TcpConfig receiver = Cfg(true);
  receiver.delack_segments = 4;  // Ack only every 4th MSS.
  TcpConfig sender = Cfg(true);
  sender.cc.enabled = false;
  TwoHostTopology topo;
  ConnectedPair conn = topo.Connect(1, sender, receiver);
  topo.client_host().app_core().SubmitFixed(Duration::Nanos(100), [&] {
    conn.a->Send(3 * 1448, Rec(1));  // Below the 4-MSS threshold.
  });
  topo.sim().RunFor(Duration::Millis(10));
  EXPECT_EQ(conn.b->stats().pure_acks_sent, 0u);  // Still delayed.
  topo.client_host().app_core().SubmitFixed(Duration::Nanos(100), [&] {
    conn.a->Send(1448, Rec(2));  // Crosses the threshold.
  });
  topo.sim().RunFor(Duration::Millis(5));
  EXPECT_EQ(conn.b->stats().pure_acks_sent, 1u);
}

TEST(ExchangeConfig, ZeroIntervalDisablesTheExchangeEntirely) {
  TwoHostTopology topo;
  ConnectedPair conn = topo.Connect(1, Cfg(true), Cfg(true));
  for (int i = 0; i < 50; ++i) {
    topo.sim().Schedule(Duration::Micros(100 * i), [&, i] {
      topo.client_host().app_core().SubmitFixed(Duration::Nanos(100),
                                                [&, i] { conn.a->Send(100, Rec(i)); });
    });
  }
  topo.sim().RunFor(Duration::Millis(100));
  EXPECT_EQ(conn.a->stats().exchanges_sent, 0u);
  EXPECT_EQ(conn.b->stats().exchanges_received, 0u);
  EXPECT_FALSE(conn.b->estimator().has_estimate());
}

TEST(UnitAccounting, PacketUnitsCountMssGridCrossings) {
  TcpConfig config = Cfg(true);
  config.cc.enabled = false;
  TwoHostTopology topo;
  ConnectedPair conn = topo.Connect(1, config, Cfg(true));
  // 10 x 1448 bytes = exactly 10 MSS-grid crossings on the send stream.
  topo.client_host().app_core().SubmitFixed(Duration::Nanos(100), [&] {
    conn.a->Send(10 * 1448, Rec(1));
  });
  topo.sim().RunFor(Duration::Millis(60));
  EXPECT_EQ(conn.a->queues().Get(QueueKind::kUnacked, UnitMode::kPackets).total(), 10);
  EXPECT_EQ(conn.b->queues().Get(QueueKind::kAckDelay, UnitMode::kPackets).total(), 10);
  // Sub-MSS messages contribute zero packet units until a crossing
  // accumulates — the packet-mode semantic gap.
  topo.client_host().app_core().SubmitFixed(Duration::Nanos(100), [&] {
    conn.a->Send(100, Rec(2));
  });
  topo.sim().RunFor(Duration::Millis(60));
  EXPECT_EQ(conn.a->queues().Get(QueueKind::kUnacked, UnitMode::kPackets).total(), 10);
}

TEST(SendBuffer, FullBufferFailsAndWritableCallbackFires) {
  TcpConfig config = Cfg(true);
  config.sndbuf_bytes = 10000;
  TcpConfig peer = Cfg(true);
  peer.rcvbuf_bytes = 4000;  // Backpressure: the peer never reads.
  TwoHostTopology topo;
  ConnectedPair conn = topo.Connect(1, config, peer);

  int writable_calls = 0;
  conn.a->SetWritableCallback([&] { ++writable_calls; });

  bool first = false;
  bool second = false;
  topo.client_host().app_core().SubmitFixed(Duration::Nanos(100), [&] {
    first = conn.a->Send(9000, Rec(1));
    second = conn.a->Send(9000, Rec(2));  // Exceeds sndbuf: rejected.
  });
  topo.sim().RunFor(Duration::Millis(10));
  EXPECT_TRUE(first);
  EXPECT_FALSE(second);
  EXPECT_EQ(conn.a->stats().send_buffer_full, 1u);
  // Note: writable may already have fired — the peer's *kernel* buffer
  // accepts (and acks) up to its 4000-byte window without the app reading,
  // and acked bytes leave the send buffer.

  // Drain the peer; acks free send-buffer space; writable fires.
  for (int i = 0; i < 20; ++i) {
    topo.sim().Schedule(Duration::Millis(1) * (i + 1), [&] {
      topo.server_host().app_core().SubmitFixed(Duration::Nanos(200), [&] { conn.b->Recv(); });
    });
  }
  topo.sim().RunFor(Duration::Millis(100));
  EXPECT_GT(writable_calls, 0);
  EXPECT_GT(conn.a->SendBufferAvailable(), 0u);
}

TEST(NicBackpressure, TinyTxRingStillDeliversEverything) {
  TopologyConfig topo_config;
  topo_config.client_nic.tx_ring_size = 2;
  topo_config.link.bandwidth_bps = 1e9;  // Slow enough for the ring to fill.
  TwoHostTopology topo(topo_config);
  TcpConfig config = Cfg(true);
  config.cc.enabled = false;
  ConnectedPair conn = topo.Connect(1, config, Cfg(true));
  for (int i = 0; i < 30; ++i) {
    topo.sim().Schedule(Duration::Micros(10 * i), [&, i] {
      topo.client_host().app_core().SubmitFixed(Duration::Nanos(100),
                                                [&, i] { conn.a->Send(1448, Rec(i)); });
    });
  }
  // Ring-full drops are recovered by retransmission, one RTO-paced hole at
  // a time (~200 ms each); give the tail time to drain.
  topo.sim().RunFor(Duration::Seconds(8));
  EXPECT_EQ(conn.b->Recv().messages.size(), 30u);
  EXPECT_GT(conn.a->stats().retransmits, 0u);
}

TEST(RecvGranularity, ChunkedRecvPreservesOrderAndBytes) {
  TwoHostTopology topo;
  ConnectedPair conn = topo.Connect(1, Cfg(true), Cfg(true));
  for (int i = 0; i < 10; ++i) {
    topo.sim().Schedule(Duration::Micros(50 * i), [&, i] {
      topo.client_host().app_core().SubmitFixed(Duration::Nanos(100),
                                                [&, i] { conn.a->Send(700, Rec(i)); });
    });
  }
  topo.sim().RunFor(Duration::Millis(10));
  uint64_t bytes = 0;
  uint64_t next_id = 0;
  while (conn.b->ReadableBytes() > 0) {
    auto result = conn.b->Recv(300);  // Awkward chunk: splits messages.
    bytes += result.bytes;
    for (const MessageRecord& record : result.messages) {
      EXPECT_EQ(record.id, next_id++);
    }
  }
  EXPECT_EQ(bytes, 7000u);
  EXPECT_EQ(next_id, 10u);
}

}  // namespace
}  // namespace e2e
