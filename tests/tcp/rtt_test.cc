#include "src/tcp/rtt.h"

#include <gtest/gtest.h>

namespace e2e {
namespace {

RttEstimator::Config WideConfig() {
  RttEstimator::Config config;
  config.min_rto = Duration::Micros(1);
  config.max_rto = Duration::Seconds(60);
  return config;
}

TEST(RttEstimatorTest, FirstSampleInitializesPerRfc6298) {
  RttEstimator rtt(WideConfig());
  EXPECT_FALSE(rtt.srtt().has_value());
  rtt.AddSample(Duration::Millis(100));
  ASSERT_TRUE(rtt.srtt().has_value());
  EXPECT_EQ(*rtt.srtt(), Duration::Millis(100));
  EXPECT_EQ(rtt.rttvar(), Duration::Millis(50));
  // RTO = SRTT + 4 * RTTVAR = 300 ms.
  EXPECT_EQ(rtt.rto(), Duration::Millis(300));
}

TEST(RttEstimatorTest, SmoothingUsesSevenEighthsOneEighth) {
  RttEstimator rtt(WideConfig());
  rtt.AddSample(Duration::Millis(80));
  rtt.AddSample(Duration::Millis(160));
  // SRTT = 7/8*80 + 1/8*160 = 90 ms.
  // RTTVAR = 3/4*40 + 1/4*|80-160| = 3/4*40... initial RTTVAR is 80/2 = 40:
  // RTTVAR = 3/4*40 + 1/4*80 = 50 ms.
  EXPECT_EQ(*rtt.srtt(), Duration::Millis(90));
  EXPECT_EQ(rtt.rttvar(), Duration::Millis(50));
}

TEST(RttEstimatorTest, ConvergesOnSteadySamples) {
  RttEstimator rtt(WideConfig());
  for (int i = 0; i < 200; ++i) {
    rtt.AddSample(Duration::Micros(500));
  }
  EXPECT_NEAR(rtt.srtt()->ToMicros(), 500, 1);
  EXPECT_LT(rtt.rttvar(), Duration::Micros(5));
  // With near-zero variance the RTO floors at SRTT + a minimum variance term.
  EXPECT_GE(rtt.rto(), Duration::Micros(500));
  EXPECT_LE(rtt.rto(), Duration::Millis(2));
}

TEST(RttEstimatorTest, RtoClampsToConfiguredBounds) {
  RttEstimator::Config config;
  config.min_rto = Duration::Millis(200);
  config.max_rto = Duration::Seconds(1);
  RttEstimator rtt(config);
  rtt.AddSample(Duration::Micros(10));  // Tiny RTT.
  EXPECT_EQ(rtt.rto(), Duration::Millis(200));
  for (int i = 0; i < 10; ++i) {
    rtt.AddSample(Duration::Seconds(30));  // Huge RTT.
  }
  EXPECT_EQ(rtt.rto(), Duration::Seconds(1));
}

TEST(RttEstimatorTest, BackoffDoublesUpToMax) {
  RttEstimator::Config config;
  config.initial_rto = Duration::Millis(100);
  config.max_rto = Duration::Millis(350);
  RttEstimator rtt(config);
  rtt.Backoff();
  EXPECT_EQ(rtt.rto(), Duration::Millis(200));
  rtt.Backoff();
  EXPECT_EQ(rtt.rto(), Duration::Millis(350));  // Clamped.
  rtt.Backoff();
  EXPECT_EQ(rtt.rto(), Duration::Millis(350));
}

TEST(RttEstimatorTest, CountsSamples) {
  RttEstimator rtt;
  rtt.AddSample(Duration::Millis(1));
  rtt.AddSample(Duration::Millis(2));
  EXPECT_EQ(rtt.samples(), 2);
}

}  // namespace
}  // namespace e2e
