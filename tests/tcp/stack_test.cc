#include "src/tcp/stack.h"

#include <gtest/gtest.h>

#include "src/testbed/topology.h"

namespace e2e {
namespace {

MessageRecord Rec(uint64_t id) {
  MessageRecord record;
  record.id = id;
  return record;
}

TEST(TcpStackTest, MultipleConnectionsDemultiplex) {
  TwoHostTopology topo;
  TcpConfig config;
  config.nodelay = true;
  ConnectedPair c1 = topo.Connect(1, config, config);
  ConnectedPair c2 = topo.Connect(2, config, config);

  topo.client_host().app_core().SubmitFixed(Duration::Nanos(100), [&] {
    c1.a->Send(111, Rec(1));
    c2.a->Send(222, Rec(2));
  });
  topo.sim().RunFor(Duration::Millis(5));
  EXPECT_EQ(c1.b->ReadableBytes(), 111u);
  EXPECT_EQ(c2.b->ReadableBytes(), 222u);
  EXPECT_EQ(topo.server_stack().unknown_segments(), 0u);
}

TEST(TcpStackTest, GroCoalescesContiguousSlices) {
  TwoHostTopology topo;
  TcpConfig config;
  config.nodelay = true;
  config.tso = true;
  ConnectedPair conn = topo.Connect(1, config, config);
  // A 20 KB send slices into ~14 contiguous wire packets arriving
  // back-to-back: GRO should merge most of their stack traversals.
  topo.client_host().app_core().SubmitFixed(Duration::Nanos(100),
                                            [&] { conn.a->Send(20000, Rec(1)); });
  topo.sim().RunFor(Duration::Millis(5));
  EXPECT_EQ(conn.b->ReadableBytes(), 20000u);
  EXPECT_GT(topo.server_stack().gro_merged(), 5u);
}

TEST(TcpStackTest, GroDoesNotMergeAcrossConnections) {
  TwoHostTopology topo;
  TcpConfig config;
  config.nodelay = true;
  ConnectedPair c1 = topo.Connect(1, config, config);
  ConnectedPair c2 = topo.Connect(2, config, config);
  // Interleaved small sends from two connections: nothing contiguous.
  for (int i = 0; i < 10; ++i) {
    topo.sim().Schedule(Duration::Micros(2 * i), [&, i] {
      topo.client_host().app_core().SubmitFixed(Duration::Nanos(50), [&, i] {
        (i % 2 == 0 ? c1.a : c2.a)->Send(100, Rec(i));
      });
    });
  }
  topo.sim().RunFor(Duration::Millis(5));
  EXPECT_EQ(topo.server_stack().gro_merged(), 0u);
}

TEST(TcpStackTest, GroDisabledPaysPerPacket) {
  TopologyConfig topo_config;
  topo_config.server_stack_costs.gro = false;
  TwoHostTopology topo(topo_config);
  TcpConfig config;
  config.nodelay = true;
  ConnectedPair conn = topo.Connect(1, config, config);
  topo.client_host().app_core().SubmitFixed(Duration::Nanos(100),
                                            [&] { conn.a->Send(20000, Rec(1)); });
  topo.sim().RunFor(Duration::Millis(5));
  EXPECT_EQ(conn.b->ReadableBytes(), 20000u);
  EXPECT_EQ(topo.server_stack().gro_merged(), 0u);
}

}  // namespace
}  // namespace e2e
