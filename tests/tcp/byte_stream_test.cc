#include "src/tcp/byte_stream.h"

#include <gtest/gtest.h>

#include "src/sim/random.h"

namespace e2e {
namespace {

MessageRecord Rec(uint64_t id) {
  MessageRecord record;
  record.id = id;
  return record;
}

TEST(ByteStreamQueueTest, AppendExtendsTail) {
  ByteStreamQueue queue;
  EXPECT_TRUE(queue.empty());
  queue.Append(100);
  EXPECT_EQ(queue.size_bytes(), 100u);
  EXPECT_EQ(queue.head_offset(), 0u);
  EXPECT_EQ(queue.tail_offset(), 100u);
}

TEST(ByteStreamQueueTest, ConsumeReturnsCompletedBoundaries) {
  ByteStreamQueue queue;
  queue.Append(100);
  queue.AddBoundary(40, Rec(1));
  queue.AddBoundary(100, Rec(2));
  auto consumed = queue.Consume(50);
  EXPECT_EQ(consumed.bytes, 50u);
  ASSERT_EQ(consumed.completed.size(), 1u);
  EXPECT_EQ(consumed.completed[0].record.id, 1u);
  EXPECT_EQ(queue.boundary_count(), 1u);

  consumed = queue.Consume(1000);  // More than available: clamps.
  EXPECT_EQ(consumed.bytes, 50u);
  ASSERT_EQ(consumed.completed.size(), 1u);
  EXPECT_EQ(consumed.completed[0].record.id, 2u);
  EXPECT_TRUE(queue.empty());
}

TEST(ByteStreamQueueTest, BoundaryExactlyAtConsumptionPointCompletes) {
  ByteStreamQueue queue;
  queue.Append(10);
  queue.AddBoundary(10, Rec(9));
  auto consumed = queue.Consume(10);
  EXPECT_EQ(consumed.completed.size(), 1u);
}

TEST(ByteStreamQueueTest, PartialConsumeKeepsBoundaryPending) {
  ByteStreamQueue queue;
  queue.Append(10);
  queue.AddBoundary(10, Rec(3));
  EXPECT_EQ(queue.Consume(9).completed.size(), 0u);
  EXPECT_EQ(queue.Consume(1).completed.size(), 1u);
}

TEST(ByteStreamQueueTest, ConsumeToAbsoluteOffset) {
  ByteStreamQueue queue(1000);  // Nonzero start offset.
  queue.Append(500);
  queue.AddBoundary(1200, Rec(1));
  auto consumed = queue.ConsumeTo(1300);
  EXPECT_EQ(consumed.bytes, 300u);
  EXPECT_EQ(consumed.completed.size(), 1u);
  EXPECT_EQ(queue.head_offset(), 1300u);
}

TEST(ByteStreamQueueTest, BoundariesInSelectsHalfOpenRange) {
  ByteStreamQueue queue;
  queue.Append(100);
  queue.AddBoundary(10, Rec(1));
  queue.AddBoundary(20, Rec(2));
  queue.AddBoundary(30, Rec(3));
  // (start, end] semantics: boundary at `start` excluded, at `end` included.
  auto in = queue.BoundariesIn(10, 30);
  ASSERT_EQ(in.size(), 2u);
  EXPECT_EQ(in[0].record.id, 2u);
  EXPECT_EQ(in[1].record.id, 3u);
  EXPECT_TRUE(queue.BoundariesIn(30, 100).empty());
}

TEST(ByteStreamQueueTest, RecordsCarrySharedPayloads) {
  ByteStreamQueue queue;
  auto payload = std::make_shared<int>(42);
  queue.Append(5);
  MessageRecord record;
  record.id = 1;
  record.data = payload;
  queue.AddBoundary(5, std::move(record));
  EXPECT_EQ(payload.use_count(), 2);
  auto consumed = queue.Consume(5);
  ASSERT_EQ(consumed.completed.size(), 1u);
  EXPECT_EQ(*std::static_pointer_cast<int>(consumed.completed[0].record.data), 42);
}

// Property: random appends/consumes conserve bytes and deliver every
// boundary exactly once, in order.
class ByteStreamConservationTest : public ::testing::TestWithParam<int> {};

TEST_P(ByteStreamConservationTest, BytesAndBoundariesConserved) {
  Rng rng(1000 + GetParam());
  ByteStreamQueue queue;
  uint64_t appended = 0;
  uint64_t consumed_bytes = 0;
  uint64_t boundaries_added = 0;
  uint64_t last_seen_id = 0;
  for (int i = 0; i < 2000; ++i) {
    if (rng.Bernoulli(0.5)) {
      const uint64_t len = rng.UniformInt(1, 300);
      queue.Append(len);
      appended += len;
      queue.AddBoundary(queue.tail_offset(), Rec(++boundaries_added));
    } else {
      auto consumed = queue.Consume(rng.UniformInt(0, 400));
      consumed_bytes += consumed.bytes;
      for (const BoundaryEntry& entry : consumed.completed) {
        EXPECT_EQ(entry.record.id, last_seen_id + 1);  // In-order, no gaps.
        last_seen_id = entry.record.id;
      }
    }
  }
  auto rest = queue.Consume(UINT64_MAX);
  consumed_bytes += rest.bytes;
  for (const BoundaryEntry& entry : rest.completed) {
    EXPECT_EQ(entry.record.id, ++last_seen_id - 0);
  }
  EXPECT_EQ(consumed_bytes, appended);
  EXPECT_EQ(last_seen_id, boundaries_added);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ByteStreamConservationTest, ::testing::Range(0, 8));

}  // namespace
}  // namespace e2e
