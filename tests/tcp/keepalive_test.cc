// Dead-peer detection (DESIGN.md §15): idle keepalives with an R1/R2-style
// give-up, and the rto_give_up path for peers that die with data in
// flight. The DeadPeerFn signal is what lets the faults harness (and
// Lancet) distinguish "slow" from "gone".

#include <string>

#include <gtest/gtest.h>

#include "src/apps/lancet.h"
#include "src/apps/redis_server.h"
#include "src/testbed/experiment.h"
#include "src/testbed/topology.h"

namespace e2e {
namespace {

MessageRecord Rec(uint64_t id) {
  MessageRecord record;
  record.id = id;
  return record;
}

TcpConfig BaseConfig() {
  TcpConfig tcp;
  tcp.nodelay = true;
  tcp.e2e_exchange_interval = Duration::Zero();
  return tcp;
}

TEST(KeepaliveTest, DeclaresDeadPeerAfterUnansweredProbes) {
  TwoHostTopology topo;
  TcpConfig tcp = BaseConfig();
  tcp.keepalive.enabled = true;
  tcp.keepalive.idle = Duration::Millis(50);
  tcp.keepalive.interval = Duration::Millis(20);
  tcp.keepalive.probes = 3;
  ConnectedPair conn = topo.Connect(1, tcp, tcp);

  std::string reason;
  conn.a->SetDeadPeerCallback([&](const char* r) { reason = r; });

  // A little traffic proves the connection; the 100 ms settle covers the
  // receiver's delayed ack, so nothing is in flight when the peer crashes
  // (with data unacked, liveness belongs to the RTO ladder instead).
  topo.client_host().app_core().SubmitFixed(Duration::Nanos(100),
                                            [&] { conn.a->Send(1000, Rec(1)); });
  topo.sim().RunFor(Duration::Millis(100));
  ASSERT_EQ(conn.b->ReadableBytes(), 1000u);
  conn.b->Shutdown();

  topo.sim().RunFor(Duration::Seconds(1));
  EXPECT_GE(conn.a->stats().keepalive_probes, 3u);
  EXPECT_EQ(conn.a->stats().dead_peer_declarations, 1u);
  EXPECT_EQ(reason, "keepalive");
}

TEST(KeepaliveTest, LivePeerAnswersProbesNoDeclaration) {
  TwoHostTopology topo;
  TcpConfig tcp = BaseConfig();
  tcp.keepalive.enabled = true;
  tcp.keepalive.idle = Duration::Millis(50);
  tcp.keepalive.interval = Duration::Millis(20);
  tcp.keepalive.probes = 3;
  ConnectedPair conn = topo.Connect(1, tcp, tcp);

  topo.client_host().app_core().SubmitFixed(Duration::Nanos(100),
                                            [&] { conn.a->Send(1000, Rec(1)); });
  // A long idle stretch with both endpoints alive: probes flow, each
  // answered with a duplicate ack that resets the liveness clock.
  topo.sim().RunFor(Duration::Seconds(2));
  EXPECT_GE(conn.a->stats().keepalive_probes, 1u);
  EXPECT_EQ(conn.a->stats().dead_peer_declarations, 0u);
  EXPECT_EQ(conn.b->stats().dead_peer_declarations, 0u);
}

TEST(KeepaliveTest, RtoGiveUpDeclaresDeadPeerWithDataInFlight) {
  TwoHostTopology topo;
  TcpConfig tcp = BaseConfig();
  tcp.rto_give_up = 4;
  ConnectedPair conn = topo.Connect(1, tcp, tcp);

  std::string reason;
  conn.a->SetDeadPeerCallback([&](const char* r) { reason = r; });

  // The peer dies before the send: every transmission goes unacked, so
  // liveness is owned by the RTO ladder, not keepalives.
  conn.b->Shutdown();
  topo.client_host().app_core().SubmitFixed(Duration::Nanos(100),
                                            [&] { conn.a->Send(5000, Rec(1)); });
  topo.sim().RunFor(Duration::Seconds(10));

  EXPECT_GE(conn.a->stats().rto_fires, 4u);
  EXPECT_EQ(conn.a->stats().dead_peer_declarations, 1u);
  EXPECT_EQ(reason, "rto");
}

TEST(KeepaliveTest, SeedBehaviorRetriesForever) {
  // rto_give_up = 0 (the default) preserves the seed stack's semantics:
  // a dead peer is retried indefinitely and nothing is ever declared.
  TwoHostTopology topo;
  TcpConfig tcp = BaseConfig();
  ConnectedPair conn = topo.Connect(1, tcp, tcp);

  conn.b->Shutdown();
  topo.client_host().app_core().SubmitFixed(Duration::Nanos(100),
                                            [&] { conn.a->Send(5000, Rec(1)); });
  topo.sim().RunFor(Duration::Seconds(10));

  EXPECT_GT(conn.a->stats().rto_fires, 0u);
  EXPECT_EQ(conn.a->stats().dead_peer_declarations, 0u);
  EXPECT_EQ(conn.a->stats().keepalive_probes, 0u);
}

TEST(KeepaliveTest, LancetSelfDetectsSilentServerDeath) {
  // The end-to-end payoff of DeadPeerFn: the load generator learns the
  // server is gone from the transport itself — no supervisor calls
  // OnConnectionLost — and stops treating "slow" as "alive".
  TwoHostTopology topo(RedisExperimentConfig::DefaultRedisTopology());
  TcpConfig client_tcp = RedisExperimentConfig::DefaultClientTcp();
  client_tcp.rto_give_up = 4;
  ConnectedPair conn =
      topo.Connect(1, client_tcp, RedisExperimentConfig::DefaultServerTcp());
  RedisServerApp server(&topo.sim(), conn.b, RedisServerApp::Config{});

  LancetClient::Config cfg;
  cfg.rate_rps = 5000;
  cfg.warmup = Duration::Millis(10);
  cfg.measure = Duration::Millis(5000);
  cfg.seed = 8;
  cfg.detect_dead_peer = true;
  LancetClient client(&topo.sim(), conn.a, cfg);
  client.Start();

  topo.sim().RunFor(Duration::Millis(50));
  EXPECT_GT(client.results().completed, 0u);
  conn.b->Shutdown();  // Silent: the harness tells the client nothing.

  // Four backed-off RTOs (~3 s) later the endpoint declares the peer dead
  // and the client disconnects; arrivals after that fail fast, open-loop.
  topo.sim().RunFor(Duration::Seconds(10));
  EXPECT_EQ(client.results().transport_death_detections, 1u);
  EXPECT_FALSE(client.connected());
  EXPECT_GT(client.results().failed_disconnected, 0u);
}

}  // namespace
}  // namespace e2e
