// Behavior tests for the TCP endpoint over the full simulated path:
// Nagle/cork decisions, delayed acks and piggybacking, flow control, TSO,
// retransmission, queue instrumentation, and the metadata exchange.

#include "src/tcp/endpoint.h"

#include <gtest/gtest.h>

#include "src/testbed/topology.h"

namespace e2e {
namespace {

MessageRecord Rec(uint64_t id) {
  MessageRecord record;
  record.id = id;
  return record;
}

struct Fixture {
  explicit Fixture(const TcpConfig& config_a, const TcpConfig& config_b,
                   const TopologyConfig& topo_config = TopologyConfig{})
      : topo(topo_config), conn(topo.Connect(1, config_a, config_b)) {}

  // Issues `n` small sends from A, `gap` apart, starting at `start`.
  void SendSmallBurst(int n, uint64_t bytes, Duration gap,
                      Duration start = Duration::Micros(1)) {
    for (int i = 0; i < n; ++i) {
      topo.sim().Schedule(start + gap * i, [this, bytes, i] {
        topo.client_host().app_core().SubmitFixed(Duration::Nanos(100),
                                                  [this, bytes, i] { conn.a->Send(bytes, Rec(i)); });
      });
    }
  }

  TwoHostTopology topo;
  ConnectedPair conn;
};

TcpConfig Cfg(bool nodelay) {
  TcpConfig config;
  config.nodelay = nodelay;
  config.e2e_exchange_interval = Duration::Zero();  // Isolate behaviors.
  return config;
}

TEST(NagleTest, HoldsSmallSegmentsWhileDataInFlight) {
  Fixture f(Cfg(/*nodelay=*/false), Cfg(true));
  // 10 small sends back-to-back: the first goes out alone; the rest must
  // coalesce into few segments released by returning acks.
  f.SendSmallBurst(10, 50, Duration::Micros(1));
  f.topo.sim().RunFor(Duration::Millis(300));
  EXPECT_EQ(f.conn.b->Recv().messages.size(), 10u);
  EXPECT_GT(f.conn.a->stats().nagle_holds, 0u);
  EXPECT_LT(f.conn.a->stats().data_segments_sent, 6u);
}

TEST(NagleTest, NodelaySendsEachWriteImmediately) {
  Fixture f(Cfg(/*nodelay=*/true), Cfg(true));
  f.SendSmallBurst(10, 50, Duration::Micros(5));
  f.topo.sim().RunFor(Duration::Millis(50));
  EXPECT_EQ(f.conn.b->Recv().messages.size(), 10u);
  EXPECT_EQ(f.conn.a->stats().data_segments_sent, 10u);
  EXPECT_EQ(f.conn.a->stats().nagle_holds, 0u);
}

TEST(NagleTest, FullMssSegmentsAreNeverHeld) {
  TcpConfig config = Cfg(false);
  Fixture f(config, Cfg(true));
  // Two back-to-back MSS-sized writes: both go out despite in-flight data.
  f.topo.client_host().app_core().SubmitFixed(Duration::Nanos(100), [&] {
    f.conn.a->Send(config.mss, Rec(1));
    f.conn.a->Send(config.mss, Rec(2));
  });
  f.topo.sim().RunFor(Duration::Millis(1));
  EXPECT_EQ(f.conn.b->ReadableBytes(), 2u * config.mss);
  EXPECT_EQ(f.conn.a->stats().nagle_holds, 0u);
}

TEST(NagleTest, SafetyTimerForcesHeldData) {
  TcpConfig config = Cfg(false);
  config.nagle_timeout = Duration::Millis(5);
  // Peer never acks fast: disable its delayed-ack path entirely by using a
  // huge delack threshold... instead simply verify the timer stat fires when
  // holds happen under a quiet peer (no reverse traffic, delack 40 ms).
  TcpConfig peer = Cfg(true);
  peer.delack_timeout = Duration::Millis(100);
  Fixture f(config, peer);
  f.topo.client_host().app_core().SubmitFixed(Duration::Nanos(100), [&] {
    f.conn.a->Send(50, Rec(1));
    f.conn.a->Send(50, Rec(2));  // Held: first send unacked for 100 ms.
  });
  f.topo.sim().RunFor(Duration::Millis(20));
  EXPECT_EQ(f.conn.b->ReadableBytes(), 100u);  // Timer pushed it at ~5 ms.
  EXPECT_GE(f.conn.a->stats().nagle_timer_fires, 1u);
}

TEST(NagleTest, CorkLimitZeroBehavesLikeNodelay) {
  TcpConfig config = Cfg(false);
  Fixture f(config, Cfg(true));
  f.conn.a->SetCorkLimit(0);
  f.SendSmallBurst(8, 50, Duration::Micros(5));
  f.topo.sim().RunFor(Duration::Millis(50));
  EXPECT_EQ(f.conn.a->stats().data_segments_sent, 8u);
  EXPECT_EQ(f.conn.a->stats().nagle_holds, 0u);
}

TEST(NagleTest, TogglingNodelayFlushesHeldData) {
  TcpConfig peer = Cfg(true);
  peer.delack_timeout = Duration::Millis(200);
  Fixture f(Cfg(false), peer);
  f.topo.client_host().app_core().SubmitFixed(Duration::Nanos(100), [&] {
    f.conn.a->Send(50, Rec(1));
    f.conn.a->Send(50, Rec(2));  // Held.
  });
  f.topo.sim().RunFor(Duration::Millis(2));
  EXPECT_EQ(f.conn.b->ReadableBytes(), 50u);  // Second write held.
  f.topo.client_host().app_core().SubmitFixed(Duration::Nanos(100),
                                              [&] { f.conn.a->SetNoDelay(true); });
  f.topo.sim().RunFor(Duration::Millis(2));
  EXPECT_EQ(f.conn.b->ReadableBytes(), 100u);
}

TEST(DelayedAckTest, LoneSmallSegmentIsAckedByTimer) {
  TcpConfig config = Cfg(true);
  TcpConfig peer = Cfg(true);
  peer.delack_timeout = Duration::Millis(40);
  Fixture f(config, peer);
  f.topo.client_host().app_core().SubmitFixed(Duration::Nanos(100),
                                              [&] { f.conn.a->Send(100, Rec(1)); });
  f.topo.sim().RunFor(Duration::Millis(30));
  EXPECT_EQ(f.conn.b->stats().pure_acks_sent, 0u);  // Still delayed.
  f.topo.sim().RunFor(Duration::Millis(20));
  EXPECT_EQ(f.conn.b->stats().pure_acks_sent, 1u);  // Timer fired at ~40 ms.
  EXPECT_EQ(f.conn.b->stats().delack_timer_fires, 1u);
}

TEST(DelayedAckTest, TwoMssTriggersImmediateAck) {
  TcpConfig config = Cfg(true);
  Fixture f(config, Cfg(true));
  f.topo.client_host().app_core().SubmitFixed(
      Duration::Nanos(100), [&] { f.conn.a->Send(2 * config.mss, Rec(1)); });
  f.topo.sim().RunFor(Duration::Millis(1));
  EXPECT_GE(f.conn.b->stats().pure_acks_sent, 1u);
  EXPECT_EQ(f.conn.b->stats().delack_timer_fires, 0u);
}

TEST(DelayedAckTest, ReverseDataPiggybacksTheAck) {
  Fixture f(Cfg(true), Cfg(true));
  // B has data to send shortly after receiving A's segment: its ack must
  // ride the data segment, not a pure ack.
  f.topo.client_host().app_core().SubmitFixed(Duration::Nanos(100),
                                              [&] { f.conn.a->Send(100, Rec(1)); });
  f.topo.sim().Schedule(Duration::Micros(50), [&] {
    f.topo.server_host().app_core().SubmitFixed(Duration::Nanos(100),
                                                [&] { f.conn.b->Send(100, Rec(2)); });
  });
  f.topo.sim().RunFor(Duration::Millis(100));
  EXPECT_EQ(f.conn.b->stats().pure_acks_sent, 0u);
  EXPECT_GE(f.conn.b->stats().acks_piggybacked, 1u);
  // A's unacked queue must have drained through the piggybacked ack.
  EXPECT_EQ(f.conn.a->queues().Get(QueueKind::kUnacked, UnitMode::kBytes).size(), 0);
}

TEST(FlowControlTest, ZeroWindowBlocksAndWindowUpdateResumes) {
  TcpConfig config = Cfg(true);
  TcpConfig peer = Cfg(true);
  peer.rcvbuf_bytes = 4000;  // Tiny receive buffer.
  Fixture f(config, peer);
  // 20 KB send while the receiver never reads: only ~4000B may be in flight.
  f.topo.client_host().app_core().SubmitFixed(Duration::Nanos(100),
                                              [&] { f.conn.a->Send(20000, Rec(1)); });
  f.topo.sim().RunFor(Duration::Millis(100));
  EXPECT_LE(f.conn.b->ReadableBytes(), 4000u);
  EXPECT_GT(f.conn.b->ReadableBytes(), 0u);

  // Drain the receiver in app context; window updates let the rest flow.
  uint64_t total = 0;
  for (int i = 0; i < 40; ++i) {
    f.topo.sim().Schedule(Duration::Millis(1) * i, [&] {
      f.topo.server_host().app_core().SubmitFixed(Duration::Nanos(200), [&] {
        total += f.conn.b->Recv().bytes;
      });
    });
  }
  f.topo.sim().RunFor(Duration::Millis(200));
  total += f.conn.b->Recv().bytes;
  EXPECT_EQ(total, 20000u);
}

TEST(TsoTest, SuperSegmentUsesOneStackPassManyWirePackets) {
  TcpConfig config = Cfg(true);
  config.tso = true;
  config.tso_max_bytes = 65536;
  config.cc.enabled = false;  // Window-unlimited: isolate TSO segmentation.
  Fixture f(config, Cfg(true));
  f.topo.client_host().app_core().SubmitFixed(Duration::Nanos(100),
                                              [&] { f.conn.a->Send(20000, Rec(1)); });
  f.topo.sim().RunFor(Duration::Millis(5));
  const TcpEndpoint::Stats& stats = f.conn.a->stats();
  EXPECT_EQ(stats.data_segments_sent, 1u);  // One TSO super-segment.
  EXPECT_EQ(stats.wire_packets_sent, (20000 + config.mss - 1) / config.mss);
  EXPECT_EQ(f.conn.b->ReadableBytes(), 20000u);
}

TEST(TsoTest, DisabledTsoEmitsPerMssSegments) {
  TcpConfig config = Cfg(true);
  config.tso = false;
  Fixture f(config, Cfg(true));
  f.topo.client_host().app_core().SubmitFixed(Duration::Nanos(100),
                                              [&] { f.conn.a->Send(20000, Rec(1)); });
  f.topo.sim().RunFor(Duration::Millis(5));
  EXPECT_EQ(f.conn.a->stats().data_segments_sent,
            (20000 + config.mss - 1) / config.mss);
  EXPECT_EQ(f.conn.b->ReadableBytes(), 20000u);
}

TEST(AutocorkTest, HoldsWhileTxRingBusyAndFlushesOnCompletion) {
  TcpConfig config = Cfg(true);
  config.autocork = true;
  // Slow the link so TX completions lag and auto-corking engages.
  TopologyConfig topo_config;
  topo_config.link.bandwidth_bps = 50e6;  // 1000B takes 160 us.
  Fixture f(config, Cfg(true), topo_config);
  f.topo.client_host().app_core().SubmitFixed(Duration::Nanos(100), [&] {
    f.conn.a->Send(1000, Rec(1));
    f.conn.a->Send(60, Rec(2));  // TX of #1 not complete: held by autocork.
    f.conn.a->Send(60, Rec(3));
  });
  f.topo.sim().RunFor(Duration::Millis(50));
  EXPECT_GT(f.conn.a->stats().autocork_holds, 0u);
  // The two held writes flush together after the completion: 2 segments.
  EXPECT_EQ(f.conn.a->stats().data_segments_sent, 2u);
  EXPECT_EQ(f.conn.b->Recv().messages.size(), 3u);
}

TEST(InstrumentationTest, QueuesDrainToZeroInAllModesAfterQuiescence) {
  Fixture f(Cfg(true), Cfg(true));
  f.SendSmallBurst(20, 500, Duration::Micros(20));
  f.topo.sim().RunFor(Duration::Millis(200));
  f.conn.b->Recv();
  f.topo.sim().RunFor(Duration::Millis(200));  // Let acks settle.
  for (UnitMode mode : kKernelUnitModes) {
    for (QueueKind kind : kAllQueueKinds) {
      EXPECT_EQ(f.conn.a->queues().Get(kind, mode).size(), 0)
          << UnitModeName(mode) << "/" << QueueKindName(kind) << " on A";
      EXPECT_EQ(f.conn.b->queues().Get(kind, mode).size(), 0)
          << UnitModeName(mode) << "/" << QueueKindName(kind) << " on B";
    }
  }
  // Totals: 20 messages of 500B each flowed A->B.
  EXPECT_EQ(f.conn.a->queues().Get(QueueKind::kUnacked, UnitMode::kBytes).total(), 20 * 500);
  EXPECT_EQ(f.conn.a->queues().Get(QueueKind::kUnacked, UnitMode::kSyscalls).total(), 20);
  EXPECT_EQ(f.conn.b->queues().Get(QueueKind::kUnread, UnitMode::kBytes).total(), 20 * 500);
  EXPECT_EQ(f.conn.b->queues().Get(QueueKind::kUnread, UnitMode::kSyscalls).total(), 20);
  EXPECT_EQ(f.conn.b->queues().Get(QueueKind::kAckDelay, UnitMode::kSyscalls).total(), 20);
}

TEST(RetransmitTest, LossyLinkDeliversEverythingExactlyOnce) {
  TcpConfig config = Cfg(true);
  config.rtt.min_rto = Duration::Millis(5);
  config.rtt.initial_rto = Duration::Millis(20);
  TopologyConfig topo_config;
  topo_config.link.loss_probability = 0.05;
  Fixture f(config, Cfg(true), topo_config);
  f.SendSmallBurst(200, 800, Duration::Micros(50));
  f.topo.sim().RunFor(Duration::Seconds(2));
  auto received = f.conn.b->Recv();
  EXPECT_EQ(received.messages.size(), 200u);
  EXPECT_EQ(received.bytes, 200u * 800u);
  for (size_t i = 0; i < received.messages.size(); ++i) {
    EXPECT_EQ(received.messages[i].id, i);  // In order, exactly once.
  }
  EXPECT_GT(f.conn.a->stats().retransmits, 0u);
  EXPECT_GT(f.conn.b->stats().ooo_segments, 0u);
}

TEST(RttTest, SamplesApproximateActualRoundTrip) {
  Fixture f(Cfg(true), Cfg(true));
  f.SendSmallBurst(50, 2 * 1448, Duration::Micros(500));
  f.topo.sim().RunFor(Duration::Millis(100));
  ASSERT_GT(f.conn.a->rtt().samples(), 10);
  // Propagation is 3 us each way plus serialization/processing: single-digit
  // microseconds, far below the delayed-ack timer (2 MSS -> immediate acks).
  EXPECT_LT(f.conn.a->rtt().srtt()->ToMicros(), 50.0);
  EXPECT_GT(f.conn.a->rtt().srtt()->ToMicros(), 5.0);
}

TEST(ExchangeTest, MetadataFlowsAtConfiguredInterval) {
  TcpConfig config = Cfg(true);
  config.e2e_exchange_interval = Duration::Millis(2);
  TcpConfig peer = Cfg(true);
  peer.e2e_exchange_interval = Duration::Millis(2);
  Fixture f(config, peer);
  f.SendSmallBurst(500, 200, Duration::Micros(100));  // 50 ms of traffic.
  f.topo.sim().RunFor(Duration::Millis(60));
  // ~30 exchange opportunities; piggybacked on data from A, pure-ack
  // fallback from B. Both direction counts should be in the ballpark.
  EXPECT_NEAR(static_cast<double>(f.conn.a->stats().exchanges_sent), 30.0, 8.0);
  EXPECT_NEAR(static_cast<double>(f.conn.b->stats().exchanges_received), 30.0, 8.0);
  EXPECT_GT(f.conn.b->stats().exchanges_sent, 10u);
}

TEST(ExchangeTest, EstimatorConvergesOnLiveConnection) {
  TcpConfig config = Cfg(true);
  config.e2e_exchange_interval = Duration::Millis(1);
  TcpConfig peer = config;
  Fixture f(config, peer);
  // Server drains continuously so unread delays stay small.
  f.conn.b->SetReadableCallback([&] {
    f.topo.server_host().app_core().SubmitFixed(Duration::Micros(1), [&] { f.conn.b->Recv(); });
  });
  f.SendSmallBurst(2000, 1000, Duration::Micros(25));
  f.topo.sim().RunFor(Duration::Millis(40));
  ASSERT_TRUE(f.conn.a->estimator().has_estimate() ||
              f.conn.a->estimator().last_valid_estimate().has_value());
  const E2eEstimate est = f.conn.a->estimator().last_valid_estimate().value();
  // One-way stack latency is single-digit us; estimates must be sane (>0,
  // well under a millisecond).
  EXPECT_GT(est.latency->ToMicros(), 0.5);
  EXPECT_LT(est.latency->ToMicros(), 1000.0);
  // A sends ~40k msg/s of 1000B; its unacked throughput is in bytes/s.
  EXPECT_NEAR(est.a_send_throughput, 40e6, 15e6);
}

}  // namespace
}  // namespace e2e
