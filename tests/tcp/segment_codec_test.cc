#include "src/tcp/segment_codec.h"

#include <gtest/gtest.h>

namespace e2e {
namespace {

TcpSegment SampleSegment(bool with_option, bool with_hint) {
  TcpSegment seg;
  seg.conn_id = 42;
  seg.from_a = true;
  seg.seq = 0xDEADBEEF;
  seg.ack = 0x12345678;
  seg.len = 1448;
  seg.flags = kFlagAck | kFlagPsh;
  seg.window = 65000;
  if (with_option) {
    WirePayload payload;
    payload.mode = UnitMode::kBytes;
    payload.unacked = {1, 2, 3};
    payload.unread = {4, 5, 6};
    payload.ackdelay = {7, 8, 9};
    if (with_hint) {
      payload.hint = WireCounters{10, 11, 12};
    }
    seg.e2e_option = payload;
  }
  return seg;
}

TEST(SegmentCodecTest, PlainHeaderIs20Bytes) {
  const auto encoded = EncodeSegmentHeader(SampleSegment(false, false));
  ASSERT_TRUE(encoded.has_value());
  EXPECT_EQ(encoded->header.size(), kTcpBaseHeaderBytes);
  EXPECT_EQ(encoded->payload_len, 1448u);
}

TEST(SegmentCodecTest, RoundTripsAllHeaderFields) {
  const TcpSegment original = SampleSegment(true, false);
  const auto encoded = EncodeSegmentHeader(original);
  ASSERT_TRUE(encoded.has_value());
  const auto decoded =
      DecodeSegmentHeader(encoded->header.data(), encoded->header.size(), encoded->payload_len);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->conn_id, original.conn_id);
  EXPECT_EQ(decoded->from_a, original.from_a);
  EXPECT_EQ(decoded->seq, original.seq);
  EXPECT_EQ(decoded->ack, original.ack);
  EXPECT_EQ(decoded->flags, original.flags);
  EXPECT_EQ(decoded->window, original.window);
  EXPECT_EQ(decoded->len, original.len);
  ASSERT_TRUE(decoded->e2e_option.has_value());
  EXPECT_EQ(*decoded->e2e_option, *original.e2e_option);
}

TEST(SegmentCodecTest, BaseExchangeFitsOptionSpaceExactly) {
  // The paper's feasibility argument: 36 counter bytes + 2 header bytes +
  // 2 TLV bytes == the TCP option-space maximum.
  const TcpSegment seg = SampleSegment(true, false);
  EXPECT_EQ(E2eOptionSize(*seg.e2e_option), kTcpMaxOptionBytes);
  const auto encoded = EncodeSegmentHeader(seg);
  ASSERT_TRUE(encoded.has_value());
  EXPECT_EQ(encoded->header.size(), kTcpBaseHeaderBytes + kTcpMaxOptionBytes);  // 60 = max.
}

TEST(SegmentCodecTest, HintPayloadExceedsStandardOptionSpace) {
  const TcpSegment seg = SampleSegment(true, true);
  EXPECT_GT(E2eOptionSize(*seg.e2e_option), kTcpMaxOptionBytes);
  EXPECT_FALSE(EncodeSegmentHeader(seg).has_value());
  // The experimental/oversize mode still encodes and round-trips.
  const auto oversize = EncodeSegmentHeader(seg, /*allow_oversize=*/true);
  ASSERT_TRUE(oversize.has_value());
  const auto decoded =
      DecodeSegmentHeader(oversize->header.data(), oversize->header.size(), seg.len);
  ASSERT_TRUE(decoded.has_value());
  ASSERT_TRUE(decoded->e2e_option.has_value());
  EXPECT_EQ(decoded->e2e_option->hint, seg.e2e_option->hint);
}

TEST(SegmentCodecTest, OptionsArePaddedToWordBoundary) {
  TcpSegment seg = SampleSegment(true, false);
  const auto encoded = EncodeSegmentHeader(seg);
  ASSERT_TRUE(encoded.has_value());
  EXPECT_EQ(encoded->header.size() % 4, 0u);
  // Data offset nibble reflects the padded length.
  EXPECT_EQ(static_cast<size_t>(encoded->header[12] >> 4) * 4, encoded->header.size());
}

TEST(SegmentCodecTest, DecodeRejectsTruncatedAndMalformed) {
  const auto encoded = EncodeSegmentHeader(SampleSegment(true, false));
  ASSERT_TRUE(encoded.has_value());
  // Truncated base header.
  EXPECT_FALSE(DecodeSegmentHeader(encoded->header.data(), 10, 0).has_value());
  // Header claims more options than present.
  std::vector<uint8_t> bad = encoded->header;
  bad[12] = 0xF0;  // Data offset 60 bytes...
  EXPECT_FALSE(DecodeSegmentHeader(bad.data(), 24, 0).has_value());
  // Corrupt option length.
  bad = encoded->header;
  bad[kTcpBaseHeaderBytes + 1] = 1;  // TLV length < 2 is illegal.
  EXPECT_FALSE(
      DecodeSegmentHeader(bad.data(), bad.size(), 0).has_value());
}

TEST(SegmentCodecTest, DecodeSkipsNopOptions) {
  // Hand-build a header with two NOPs before the e2e option.
  const TcpSegment seg = SampleSegment(true, false);
  auto encoded = EncodeSegmentHeader(seg, /*allow_oversize=*/true);
  ASSERT_TRUE(encoded.has_value());
  std::vector<uint8_t> hdr(encoded->header.begin(), encoded->header.begin() + 20);
  hdr.push_back(1);  // NOP.
  hdr.push_back(1);  // NOP.
  hdr.insert(hdr.end(), encoded->header.begin() + 20, encoded->header.end());
  hdr.push_back(0);
  hdr.push_back(0);  // Re-pad to a word boundary.
  hdr[12] = static_cast<uint8_t>((hdr.size() / 4) << 4);
  const auto decoded = DecodeSegmentHeader(hdr.data(), hdr.size(), 0);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(decoded->e2e_option.has_value());
}

TEST(SegmentCodecTest, EceAndCwrFlagsRoundTrip) {
  // RFC 3168 ECN signalling bits survive the wire, independently and
  // together, without disturbing ACK/PSH.
  for (uint16_t ecn_bits : {static_cast<uint16_t>(kFlagEce), static_cast<uint16_t>(kFlagCwr),
                            static_cast<uint16_t>(kFlagEce | kFlagCwr)}) {
    TcpSegment seg = SampleSegment(false, false);
    seg.flags = kFlagAck | ecn_bits;
    const auto encoded = EncodeSegmentHeader(seg);
    ASSERT_TRUE(encoded.has_value());
    const auto decoded =
        DecodeSegmentHeader(encoded->header.data(), encoded->header.size(), seg.len);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->flags, seg.flags);
    EXPECT_EQ(decoded->flags & kFlagEce, ecn_bits & kFlagEce);
    EXPECT_EQ(decoded->flags & kFlagCwr, ecn_bits & kFlagCwr);
  }
  // A plain segment decodes with both bits clear.
  const TcpSegment plain = SampleSegment(false, false);
  const auto encoded = EncodeSegmentHeader(plain);
  const auto decoded =
      DecodeSegmentHeader(encoded->header.data(), encoded->header.size(), plain.len);
  EXPECT_EQ(decoded->flags & (kFlagEce | kFlagCwr), 0);
}

TEST(SegmentCodecTest, BothDirectionsDistinguishedByPortBit) {
  TcpSegment seg = SampleSegment(false, false);
  seg.from_a = false;
  const auto encoded = EncodeSegmentHeader(seg);
  const auto decoded =
      DecodeSegmentHeader(encoded->header.data(), encoded->header.size(), seg.len);
  EXPECT_FALSE(decoded->from_a);
  EXPECT_EQ(decoded->conn_id, 42u);
}

}  // namespace
}  // namespace e2e
