#include "src/tcp/segment_codec.h"

#include <gtest/gtest.h>

namespace e2e {
namespace {

TcpSegment SampleSegment(bool with_option, bool with_hint) {
  TcpSegment seg;
  seg.conn_id = 42;
  seg.from_a = true;
  seg.seq = 0xDEADBEEF;
  seg.ack = 0x12345678;
  seg.len = 1448;
  seg.flags = kFlagAck | kFlagPsh;
  seg.window = 65000;
  if (with_option) {
    WirePayload payload;
    payload.mode = UnitMode::kBytes;
    payload.unacked = {1, 2, 3};
    payload.unread = {4, 5, 6};
    payload.ackdelay = {7, 8, 9};
    if (with_hint) {
      payload.hint = WireCounters{10, 11, 12};
    }
    seg.e2e_option = payload;
  }
  return seg;
}

TEST(SegmentCodecTest, PlainHeaderIs20Bytes) {
  const auto encoded = EncodeSegmentHeader(SampleSegment(false, false));
  ASSERT_TRUE(encoded.has_value());
  EXPECT_EQ(encoded->header.size(), kTcpBaseHeaderBytes);
  EXPECT_EQ(encoded->payload_len, 1448u);
}

TEST(SegmentCodecTest, RoundTripsAllHeaderFields) {
  const TcpSegment original = SampleSegment(true, false);
  const auto encoded = EncodeSegmentHeader(original);
  ASSERT_TRUE(encoded.has_value());
  const auto decoded =
      DecodeSegmentHeader(encoded->header.data(), encoded->header.size(), encoded->payload_len);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->conn_id, original.conn_id);
  EXPECT_EQ(decoded->from_a, original.from_a);
  EXPECT_EQ(decoded->seq, original.seq);
  EXPECT_EQ(decoded->ack, original.ack);
  EXPECT_EQ(decoded->flags, original.flags);
  EXPECT_EQ(decoded->window, original.window);
  EXPECT_EQ(decoded->len, original.len);
  ASSERT_TRUE(decoded->e2e_option.has_value());
  EXPECT_EQ(*decoded->e2e_option, *original.e2e_option);
}

TEST(SegmentCodecTest, BaseExchangeFitsOptionSpaceExactly) {
  // The paper's feasibility argument: 36 counter bytes + 2 header bytes +
  // 2 TLV bytes == the TCP option-space maximum.
  const TcpSegment seg = SampleSegment(true, false);
  EXPECT_EQ(E2eOptionSize(*seg.e2e_option), kTcpMaxOptionBytes);
  const auto encoded = EncodeSegmentHeader(seg);
  ASSERT_TRUE(encoded.has_value());
  EXPECT_EQ(encoded->header.size(), kTcpBaseHeaderBytes + kTcpMaxOptionBytes);  // 60 = max.
}

TEST(SegmentCodecTest, HintPayloadExceedsStandardOptionSpace) {
  const TcpSegment seg = SampleSegment(true, true);
  EXPECT_GT(E2eOptionSize(*seg.e2e_option), kTcpMaxOptionBytes);
  EXPECT_FALSE(EncodeSegmentHeader(seg).has_value());
  // The experimental/oversize mode still encodes and round-trips.
  const auto oversize = EncodeSegmentHeader(seg, /*allow_oversize=*/true);
  ASSERT_TRUE(oversize.has_value());
  const auto decoded =
      DecodeSegmentHeader(oversize->header.data(), oversize->header.size(), seg.len);
  ASSERT_TRUE(decoded.has_value());
  ASSERT_TRUE(decoded->e2e_option.has_value());
  EXPECT_EQ(decoded->e2e_option->hint, seg.e2e_option->hint);
}

TEST(SegmentCodecTest, OptionsArePaddedToWordBoundary) {
  TcpSegment seg = SampleSegment(true, false);
  const auto encoded = EncodeSegmentHeader(seg);
  ASSERT_TRUE(encoded.has_value());
  EXPECT_EQ(encoded->header.size() % 4, 0u);
  // Data offset nibble reflects the padded length.
  EXPECT_EQ(static_cast<size_t>(encoded->header[12] >> 4) * 4, encoded->header.size());
}

TEST(SegmentCodecTest, DecodeRejectsTruncatedAndMalformed) {
  const auto encoded = EncodeSegmentHeader(SampleSegment(true, false));
  ASSERT_TRUE(encoded.has_value());
  // Truncated base header.
  EXPECT_FALSE(DecodeSegmentHeader(encoded->header.data(), 10, 0).has_value());
  // Header claims more options than present.
  std::vector<uint8_t> bad = encoded->header;
  bad[12] = 0xF0;  // Data offset 60 bytes...
  EXPECT_FALSE(DecodeSegmentHeader(bad.data(), 24, 0).has_value());
  // Corrupt option length.
  bad = encoded->header;
  bad[kTcpBaseHeaderBytes + 1] = 1;  // TLV length < 2 is illegal.
  EXPECT_FALSE(
      DecodeSegmentHeader(bad.data(), bad.size(), 0).has_value());
}

TEST(SegmentCodecTest, DecodeSkipsNopOptions) {
  // Hand-build a header with two NOPs before the e2e option.
  const TcpSegment seg = SampleSegment(true, false);
  auto encoded = EncodeSegmentHeader(seg, /*allow_oversize=*/true);
  ASSERT_TRUE(encoded.has_value());
  std::vector<uint8_t> hdr(encoded->header.begin(), encoded->header.begin() + 20);
  hdr.push_back(1);  // NOP.
  hdr.push_back(1);  // NOP.
  hdr.insert(hdr.end(), encoded->header.begin() + 20, encoded->header.end());
  hdr.push_back(0);
  hdr.push_back(0);  // Re-pad to a word boundary.
  hdr[12] = static_cast<uint8_t>((hdr.size() / 4) << 4);
  const auto decoded = DecodeSegmentHeader(hdr.data(), hdr.size(), 0);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(decoded->e2e_option.has_value());
}

TEST(SegmentCodecTest, EceAndCwrFlagsRoundTrip) {
  // RFC 3168 ECN signalling bits survive the wire, independently and
  // together, without disturbing ACK/PSH.
  for (uint16_t ecn_bits : {static_cast<uint16_t>(kFlagEce), static_cast<uint16_t>(kFlagCwr),
                            static_cast<uint16_t>(kFlagEce | kFlagCwr)}) {
    TcpSegment seg = SampleSegment(false, false);
    seg.flags = kFlagAck | ecn_bits;
    const auto encoded = EncodeSegmentHeader(seg);
    ASSERT_TRUE(encoded.has_value());
    const auto decoded =
        DecodeSegmentHeader(encoded->header.data(), encoded->header.size(), seg.len);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->flags, seg.flags);
    EXPECT_EQ(decoded->flags & kFlagEce, ecn_bits & kFlagEce);
    EXPECT_EQ(decoded->flags & kFlagCwr, ecn_bits & kFlagCwr);
  }
  // A plain segment decodes with both bits clear.
  const TcpSegment plain = SampleSegment(false, false);
  const auto encoded = EncodeSegmentHeader(plain);
  const auto decoded =
      DecodeSegmentHeader(encoded->header.data(), encoded->header.size(), plain.len);
  EXPECT_EQ(decoded->flags & (kFlagEce | kFlagCwr), 0);
}

TEST(SegmentCodecTest, BothDirectionsDistinguishedByPortBit) {
  TcpSegment seg = SampleSegment(false, false);
  seg.from_a = false;
  const auto encoded = EncodeSegmentHeader(seg);
  const auto decoded =
      DecodeSegmentHeader(encoded->header.data(), encoded->header.size(), seg.len);
  EXPECT_FALSE(decoded->from_a);
  EXPECT_EQ(decoded->conn_id, 42u);
}

// ---------------------------------------------------------------------------
// Option-combination round trips (timestamps / SACK / e2e exchange).
// ---------------------------------------------------------------------------

TcpSegment WithTs(TcpSegment seg) {
  seg.ts = TsOption{0xA1B2C3D4, 0x00000001};
  return seg;
}

TcpSegment WithSack(TcpSegment seg, size_t blocks) {
  for (size_t i = 0; i < blocks; ++i) {
    const uint32_t base = seg.ack + 3000 * static_cast<uint32_t>(i + 1);
    seg.sack.push_back(SackBlock{base, base + 1448});
  }
  return seg;
}

void ExpectOptionsRoundTrip(const TcpSegment& original) {
  const auto encoded = EncodeSegmentHeader(original);
  ASSERT_TRUE(encoded.has_value());
  EXPECT_LE(encoded->header.size(), kTcpBaseHeaderBytes + kTcpMaxOptionBytes);
  EXPECT_EQ(encoded->header.size() % 4, 0u);
  const auto decoded =
      DecodeSegmentHeader(encoded->header.data(), encoded->header.size(), original.len);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->ts, original.ts);
  EXPECT_EQ(decoded->sack, original.sack);
  EXPECT_EQ(decoded->e2e_option, original.e2e_option);
  EXPECT_EQ(decoded->seq, original.seq);
  EXPECT_EQ(decoded->ack, original.ack);
  EXPECT_EQ(decoded->window, original.window);
}

TEST(SegmentCodecTest, TimestampsAloneRoundTrip) {
  ExpectOptionsRoundTrip(WithTs(SampleSegment(false, false)));
}

TEST(SegmentCodecTest, SackAloneRoundTripsUpToFourBlocks) {
  for (size_t blocks = 1; blocks <= kMaxSackBlocks; ++blocks) {
    ExpectOptionsRoundTrip(WithSack(SampleSegment(false, false), blocks));
  }
}

TEST(SegmentCodecTest, TimestampsPlusSackRoundTrip) {
  // 12 + SackOptionBytes(n) for n <= 3 fits; ArbitrateOptions never asks
  // for more alongside timestamps.
  for (size_t blocks = 1; blocks <= 3; ++blocks) {
    ExpectOptionsRoundTrip(WithSack(WithTs(SampleSegment(false, false)), blocks));
  }
}

TEST(SegmentCodecTest, ExchangeAloneRoundTrips) {
  ExpectOptionsRoundTrip(SampleSegment(true, false));
}

TEST(SegmentCodecTest, AllThreeOptionsOnlyFitOversize) {
  // The base exchange is exactly 40 bytes, so ts + SACK + exchange can
  // never share a standard header — the arbiter guarantees callers never
  // ask. The oversize escape hatch still round-trips all three for the
  // experimental/EDO modelling path.
  const TcpSegment seg = WithSack(WithTs(SampleSegment(true, false)), 1);
  EXPECT_FALSE(EncodeSegmentHeader(seg).has_value());
  const auto oversize = EncodeSegmentHeader(seg, /*allow_oversize=*/true);
  ASSERT_TRUE(oversize.has_value());
  const auto decoded =
      DecodeSegmentHeader(oversize->header.data(), oversize->header.size(), seg.len);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->ts, seg.ts);
  EXPECT_EQ(decoded->sack, seg.sack);
  EXPECT_EQ(decoded->e2e_option, seg.e2e_option);
}

TEST(SegmentCodecTest, TimestampsPlusThreeSackBlocksFillOptionSpaceExactly) {
  // The other exact-fit boundary: 12 (ts) + 4 + 8*3 (SACK) == 40. One more
  // block would burst the header; the encoder must neither pad past 60
  // bytes nor reject the exact fit.
  const TcpSegment seg = WithSack(WithTs(SampleSegment(false, false)), 3);
  EXPECT_EQ(kTimestampOptionBytes + SackOptionBytes(3), kTcpMaxOptionBytes);
  const auto encoded = EncodeSegmentHeader(seg);
  ASSERT_TRUE(encoded.has_value());
  EXPECT_EQ(encoded->header.size(), kTcpBaseHeaderBytes + kTcpMaxOptionBytes);
  ExpectOptionsRoundTrip(seg);

  const TcpSegment burst = WithSack(WithTs(SampleSegment(false, false)), 4);
  EXPECT_FALSE(EncodeSegmentHeader(burst).has_value());
}

// ---------------------------------------------------------------------------
// Option-space arbitration: the shed priority order.
// ---------------------------------------------------------------------------

TEST(ArbitrateOptionsTest, EverythingFitsNothingShed) {
  OptionDemand demand;
  demand.timestamps = true;
  demand.sack_blocks = 2;
  const OptionPlan plan = ArbitrateOptions(demand);
  EXPECT_TRUE(plan.timestamps);
  EXPECT_EQ(plan.sack_blocks, 2u);
  EXPECT_EQ(plan.sack_blocks_trimmed, 0u);
  EXPECT_FALSE(plan.exchange_deferred);
  EXPECT_FALSE(plan.timestamps_omitted);
  EXPECT_EQ(plan.bytes_used, kTimestampOptionBytes + SackOptionBytes(2));
}

TEST(ArbitrateOptionsTest, SackBlocksTrimFirst) {
  // Rule 2: with timestamps present only 3 of 4 demanded blocks fit; the
  // tail block (stalest information) is shed and counted.
  OptionDemand demand;
  demand.timestamps = true;
  demand.sack_blocks = 4;
  const OptionPlan plan = ArbitrateOptions(demand);
  EXPECT_TRUE(plan.timestamps);
  EXPECT_EQ(plan.sack_blocks, 3u);
  EXPECT_EQ(plan.sack_blocks_trimmed, 1u);
  EXPECT_EQ(plan.bytes_used, kTcpMaxOptionBytes);
}

TEST(ArbitrateOptionsTest, ExchangeDefersBeforeEvictingTimestamps) {
  // Rule 3 first half: a due-but-not-overdue exchange that cannot share
  // the header is pushed to a later segment; timestamps stay.
  OptionDemand demand;
  demand.timestamps = true;
  demand.exchange_due = true;
  demand.exchange_size = kTcpMaxOptionBytes;  // The base payload: 40 bytes.
  const OptionPlan plan = ArbitrateOptions(demand);
  EXPECT_TRUE(plan.timestamps);
  EXPECT_FALSE(plan.exchange);
  EXPECT_TRUE(plan.exchange_deferred);
  EXPECT_FALSE(plan.timestamps_omitted);
}

TEST(ArbitrateOptionsTest, OverdueExchangeEvictsTimestampsAndSack) {
  // Rule 3 second half: once overdue, the exchange wins the whole option
  // space for one segment; both sheds are visible to the caller.
  OptionDemand demand;
  demand.timestamps = true;
  demand.sack_blocks = 2;
  demand.exchange_due = true;
  demand.exchange_overdue = true;
  demand.exchange_size = kTcpMaxOptionBytes;
  const OptionPlan plan = ArbitrateOptions(demand);
  EXPECT_TRUE(plan.exchange);
  EXPECT_FALSE(plan.timestamps);
  EXPECT_TRUE(plan.timestamps_omitted);
  EXPECT_EQ(plan.sack_blocks, 0u);
  EXPECT_EQ(plan.sack_blocks_trimmed, 2u);
  EXPECT_FALSE(plan.exchange_deferred);
  EXPECT_EQ(plan.bytes_used, kTcpMaxOptionBytes);
}

TEST(ArbitrateOptionsTest, SmallExchangeSharesWithTimestamps) {
  // A hypothetical trimmed exchange (< 28 bytes) coexists with
  // timestamps; nothing is shed. Guards the arbiter against hardcoding
  // "exchange == 40 bytes".
  OptionDemand demand;
  demand.timestamps = true;
  demand.exchange_due = true;
  demand.exchange_size = 20;
  const OptionPlan plan = ArbitrateOptions(demand);
  EXPECT_TRUE(plan.timestamps);
  EXPECT_TRUE(plan.exchange);
  EXPECT_FALSE(plan.exchange_deferred);
  EXPECT_EQ(plan.bytes_used, kTimestampOptionBytes + 20);
}

}  // namespace
}  // namespace e2e
