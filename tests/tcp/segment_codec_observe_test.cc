// Mid-fabric header observation (DESIGN.md §14): the in-switch diagnoser
// reads seq/ack/rwnd/flags off forwarded segments. These tests prove the
// switch's vantage is faithful — a segment re-parsed from its wire header
// mid-fabric yields field-for-field exactly what endpoint parsing yields,
// including the ECE/CWR ECN bits and zero-window advertisements, so
// shadow-state inference works from the same facts the endpoints see.

#include <gtest/gtest.h>

#include "src/net/fabric/diag/flow_diag.h"
#include "src/tcp/segment.h"
#include "src/tcp/segment_codec.h"

namespace e2e {
namespace {

// The diagnoser's view of an in-memory segment (mirrors flow_diag.cc).
TcpSegmentView ViewOf(const TcpSegment& seg) {
  TcpSegmentView view;
  view.conn_id = seg.conn_id;
  view.from_a = seg.from_a;
  view.seq = seg.seq;
  view.ack = seg.ack;
  view.len = seg.len;
  view.window = seg.window;
  view.flags = seg.flags;
  if (seg.ts.has_value()) {
    view.has_ts = true;
    view.tsval = seg.ts->tsval;
    view.tsecr = seg.ts->tsecr;
  }
  view.sack_blocks = static_cast<uint32_t>(seg.sack.size());
  return view;
}

// Encode at the "sender", decode at the "switch", and check the decoded
// segment reads identically to the in-memory one the tap observes.
void ExpectMidFabricParity(const TcpSegment& seg) {
  const auto encoded = EncodeSegmentHeader(seg);
  ASSERT_TRUE(encoded.has_value());
  const auto decoded =
      DecodeSegmentHeader(encoded->header.data(), encoded->header.size(), encoded->payload_len);
  ASSERT_TRUE(decoded.has_value());
  const TcpSegmentView direct = ViewOf(seg);
  const TcpSegmentView wire = ViewOf(*decoded);
  EXPECT_EQ(wire.conn_id, direct.conn_id);
  EXPECT_EQ(wire.from_a, direct.from_a);
  EXPECT_EQ(wire.seq, direct.seq);
  EXPECT_EQ(wire.ack, direct.ack);
  EXPECT_EQ(wire.len, direct.len);
  EXPECT_EQ(wire.window, direct.window);
  EXPECT_EQ(wire.flags, direct.flags);
  EXPECT_EQ(wire.has_ts, direct.has_ts);
  EXPECT_EQ(wire.tsval, direct.tsval);
  EXPECT_EQ(wire.tsecr, direct.tsecr);
  EXPECT_EQ(wire.sack_blocks, direct.sack_blocks);
}

TcpSegment DataSegment() {
  TcpSegment seg;
  seg.conn_id = 17;
  seg.from_a = true;
  seg.seq = 0x7FFFFE00;  // Near the wrap midpoint: sign-bit territory.
  seg.ack = 0xFFFFFC00;  // Near the 32-bit wrap.
  seg.len = 1448;
  seg.window = 65535;
  seg.flags = kFlagAck | kFlagPsh;
  return seg;
}

TEST(SegmentCodecObserveTest, DataSegmentParsesIdenticallyMidFabric) {
  ExpectMidFabricParity(DataSegment());
}

TEST(SegmentCodecObserveTest, PureAckParsesIdenticallyMidFabric) {
  TcpSegment seg = DataSegment();
  seg.from_a = false;
  seg.len = 0;
  seg.flags = kFlagAck;
  ExpectMidFabricParity(seg);
}

TEST(SegmentCodecObserveTest, EceAndCwrBitsSurviveToTheSwitch) {
  // The diagnoser's ECN evidence: ECE on reverse acks, CWR on forward
  // data. Each bit must survive the wire alone and combined.
  for (uint16_t bits :
       {static_cast<uint16_t>(kFlagEce), static_cast<uint16_t>(kFlagCwr),
        static_cast<uint16_t>(kFlagEce | kFlagCwr)}) {
    TcpSegment seg = DataSegment();
    seg.flags = static_cast<uint16_t>(kFlagAck | bits);
    ExpectMidFabricParity(seg);
  }
}

TEST(SegmentCodecObserveTest, ZeroWindowAdvertisementSurvivesToTheSwitch) {
  // A zero-window ack is the diagnoser's strongest receiver-limited
  // evidence; the window field must not be clamped or defaulted anywhere.
  TcpSegment seg = DataSegment();
  seg.len = 0;
  seg.window = 0;
  seg.flags = kFlagAck;
  ExpectMidFabricParity(seg);
}

TEST(SegmentCodecObserveTest, RetransmissionIsVisibleAsNonAdvancingSeq) {
  // Two encodings of the same stream bytes decode to the same seq/len —
  // what the diagnoser's retransmit detector keys on. A distinct later
  // segment decodes with an advancing seq.
  const TcpSegment first = DataSegment();
  TcpSegment retrans = first;  // Same bytes, sent again.
  TcpSegment next = first;
  next.seq = first.seq + first.len;

  const auto e1 = EncodeSegmentHeader(first);
  const auto e2 = EncodeSegmentHeader(retrans);
  const auto e3 = EncodeSegmentHeader(next);
  ASSERT_TRUE(e1.has_value() && e2.has_value() && e3.has_value());
  const auto d1 = DecodeSegmentHeader(e1->header.data(), e1->header.size(), e1->payload_len);
  const auto d2 = DecodeSegmentHeader(e2->header.data(), e2->header.size(), e2->payload_len);
  const auto d3 = DecodeSegmentHeader(e3->header.data(), e3->header.size(), e3->payload_len);
  ASSERT_TRUE(d1.has_value() && d2.has_value() && d3.has_value());
  EXPECT_EQ(d2->seq, d1->seq);
  EXPECT_EQ(d2->len, d1->len);
  EXPECT_EQ(d3->seq, d1->seq + d1->len);
}

TEST(SegmentCodecObserveTest, ViewIsInsensitiveToTheE2eOption) {
  // The metadata option rides in the options space; its presence must not
  // shift any of the fields the diagnoser reads. (This is what makes the
  // diag signal independent: it survives when the option is withheld.)
  TcpSegment with_option = DataSegment();
  WirePayload payload;
  payload.mode = UnitMode::kBytes;
  payload.unacked = {1, 2, 3};
  payload.unread = {4, 5, 6};
  payload.ackdelay = {7, 8, 9};
  with_option.e2e_option = payload;
  ExpectMidFabricParity(with_option);

  TcpSegment without = DataSegment();
  const auto ew = EncodeSegmentHeader(with_option);
  const auto eo = EncodeSegmentHeader(without);
  ASSERT_TRUE(ew.has_value() && eo.has_value());
  const auto dw = DecodeSegmentHeader(ew->header.data(), ew->header.size(), ew->payload_len);
  const auto dout = DecodeSegmentHeader(eo->header.data(), eo->header.size(), eo->payload_len);
  ASSERT_TRUE(dw.has_value() && dout.has_value());
  EXPECT_EQ(dw->seq, dout->seq);
  EXPECT_EQ(dw->ack, dout->ack);
  EXPECT_EQ(dw->window, dout->window);
  EXPECT_EQ(dw->flags, dout->flags);
  EXPECT_TRUE(dw->e2e_option.has_value());
  EXPECT_FALSE(dout->e2e_option.has_value());
}

TEST(SegmentCodecObserveTest, TimestampEchoSurvivesToTheSwitch) {
  // The diagnoser's forward-RTT probe pairs a data segment's TSval with
  // the TSecr echoed on a later reverse ack; both values must read
  // identically mid-fabric or the probe measures a different transmission
  // than the endpoints timed.
  TcpSegment data = DataSegment();
  data.ts = TsOption{0xCAFE0001, 0};
  ExpectMidFabricParity(data);

  TcpSegment ack = DataSegment();
  ack.from_a = false;
  ack.len = 0;
  ack.flags = kFlagAck;
  ack.ts = TsOption{0x00000007, 0xCAFE0001};
  ExpectMidFabricParity(ack);
}

TEST(SegmentCodecObserveTest, SackBlocksAreCountableMidFabric) {
  // Sack-bearing reverse acks are the diagnoser's direct forward-loss
  // evidence; the block count must survive re-parsing from wire bytes.
  for (size_t blocks = 1; blocks <= 3; ++blocks) {
    TcpSegment ack = DataSegment();
    ack.from_a = false;
    ack.len = 0;
    ack.flags = kFlagAck;
    ack.ts = TsOption{0x00000007, 0xCAFE0001};
    for (size_t i = 0; i < blocks; ++i) {
      const uint32_t base = ack.ack + 3000 * static_cast<uint32_t>(i + 1);
      ack.sack.push_back(SackBlock{base, base + 1448});
    }
    ExpectMidFabricParity(ack);
  }
}

TEST(SegmentCodecObserveTest, ViewIsInsensitiveToTsAndSackOptions) {
  // As with the e2e option: recovery options ride in the option space and
  // must not shift the core fields the shadow-state inference reads.
  TcpSegment plain = DataSegment();
  TcpSegment decorated = DataSegment();
  decorated.ts = TsOption{42, 7};
  decorated.sack.push_back(SackBlock{decorated.ack + 5000, decorated.ack + 6448});

  const auto ep = EncodeSegmentHeader(plain);
  const auto ed = EncodeSegmentHeader(decorated);
  ASSERT_TRUE(ep.has_value() && ed.has_value());
  const auto dp = DecodeSegmentHeader(ep->header.data(), ep->header.size(), ep->payload_len);
  const auto dd = DecodeSegmentHeader(ed->header.data(), ed->header.size(), ed->payload_len);
  ASSERT_TRUE(dp.has_value() && dd.has_value());
  EXPECT_EQ(dd->seq, dp->seq);
  EXPECT_EQ(dd->ack, dp->ack);
  EXPECT_EQ(dd->window, dp->window);
  EXPECT_EQ(dd->flags, dp->flags);
  EXPECT_EQ(dd->len, dp->len);
}

}  // namespace
}  // namespace e2e
