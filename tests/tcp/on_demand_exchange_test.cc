// On-demand metadata exchange (paper §5): explicit RequestExchange() works
// with and without the periodic exchange, enabling controller-paced
// exchanges instead of a fixed interval.

#include <gtest/gtest.h>

#include "src/testbed/topology.h"

namespace e2e {
namespace {

MessageRecord Rec(uint64_t id) {
  MessageRecord record;
  record.id = id;
  return record;
}

TEST(OnDemandExchangeTest, WorksWithPeriodicExchangeDisabled) {
  TwoHostTopology topo;
  TcpConfig tcp;
  tcp.nodelay = true;
  tcp.e2e_exchange_interval = Duration::Zero();  // Periodic path off.
  ConnectedPair conn = topo.Connect(1, tcp, tcp);

  // Traffic so estimates have something to measure.
  for (int i = 0; i < 200; ++i) {
    topo.sim().Schedule(Duration::Micros(50 * i), [&, i] {
      topo.client_host().app_core().SubmitFixed(Duration::Nanos(100),
                                                [&, i] { conn.a->Send(500, Rec(i)); });
    });
  }
  // Client pushes its counters on demand, twice, mid-run.
  topo.sim().Schedule(Duration::Millis(3), [&] { conn.a->RequestExchange(); });
  topo.sim().Schedule(Duration::Millis(8), [&] { conn.a->RequestExchange(); });
  topo.sim().RunFor(Duration::Millis(60));

  EXPECT_EQ(conn.a->stats().exchanges_sent, 2u);
  EXPECT_EQ(conn.b->stats().exchanges_received, 2u);
  EXPECT_EQ(conn.b->estimator().exchanges(), 2u);
  // Two one-sided exchanges: the server can evaluate the client-orientation
  // formula from the client's counters plus its own locally-snapshotted
  // queues.
  EXPECT_TRUE(conn.b->estimator().has_estimate() ||
              conn.b->estimator().last_valid_estimate().has_value());
}

TEST(OnDemandExchangeTest, PiggybacksOnPendingData) {
  TwoHostTopology topo;
  TcpConfig tcp;
  tcp.nodelay = true;
  tcp.e2e_exchange_interval = Duration::Zero();
  ConnectedPair conn = topo.Connect(1, tcp, tcp);
  // The demand waits out a short grace window; data written within it
  // carries the option, so no pure ack is spent.
  topo.sim().Schedule(Duration::Millis(1), [&] { conn.a->RequestExchange(); });
  topo.sim().Schedule(Duration::Millis(1) + Duration::Micros(40), [&] {
    topo.client_host().app_core().SubmitFixed(Duration::Nanos(100),
                                              [&] { conn.a->Send(500, Rec(1)); });
  });
  topo.sim().RunFor(Duration::Millis(5));
  EXPECT_EQ(conn.a->stats().exchanges_sent, 1u);
  EXPECT_EQ(conn.a->stats().pure_acks_sent, 0u);
  EXPECT_EQ(conn.b->stats().exchanges_received, 1u);
}

TEST(OnDemandExchangeTest, IdleConnectionUsesPureAck) {
  TwoHostTopology topo;
  TcpConfig tcp;
  tcp.nodelay = true;
  tcp.e2e_exchange_interval = Duration::Zero();
  ConnectedPair conn = topo.Connect(1, tcp, tcp);
  topo.sim().Schedule(Duration::Millis(1), [&] { conn.a->RequestExchange(); });
  topo.sim().RunFor(Duration::Millis(5));
  EXPECT_EQ(conn.a->stats().exchanges_sent, 1u);
  EXPECT_EQ(conn.a->stats().pure_acks_sent, 1u);
  EXPECT_EQ(conn.b->stats().exchanges_received, 1u);
}

}  // namespace
}  // namespace e2e
