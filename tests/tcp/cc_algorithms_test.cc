// Invariants of the pluggable congestion-control algorithms (DESIGN.md
// §13): the CUBIC curve's shape around W_max, DCTCP's alpha EWMA
// convergence and proportional decrease, the RFC 5681 §3.1 RTO collapse
// shared by all three, and the once-per-RTT ECN reaction gating.

#include <gtest/gtest.h>

#include <cmath>

#include "src/tcp/cc/congestion_control.h"
#include "src/tcp/cc/cubic.h"
#include "src/tcp/cc/dctcp.h"
#include "src/tcp/cc/reno.h"

namespace e2e {
namespace {

CcConfig Cfg(CcAlgorithm algorithm) {
  CcConfig config;
  config.algorithm = algorithm;
  config.mss = 1000;
  config.initial_window_segments = 10;
  config.max_window_bytes = 1000000;
  return config;
}

// ---- Factory ----

TEST(CcFactory, BuildsTheSelectedAlgorithm) {
  EXPECT_STREQ(MakeCongestionControl(Cfg(CcAlgorithm::kReno))->name(), "reno");
  EXPECT_STREQ(MakeCongestionControl(Cfg(CcAlgorithm::kCubic))->name(), "cubic");
  EXPECT_STREQ(MakeCongestionControl(Cfg(CcAlgorithm::kDctcp))->name(), "dctcp");
}

TEST(CcFactory, NamesAreStable) {
  EXPECT_STREQ(CcAlgorithmName(CcAlgorithm::kReno), "reno");
  EXPECT_STREQ(CcAlgorithmName(CcAlgorithm::kCubic), "cubic");
  EXPECT_STREQ(CcAlgorithmName(CcAlgorithm::kDctcp), "dctcp");
}

// ---- RTO collapse (RFC 5681 §3.1), identical contract for every policy ----

TEST(CcRtoCollapse, AllAlgorithmsCollapseToOneMssAndReenterSlowStart) {
  for (CcAlgorithm algorithm :
       {CcAlgorithm::kReno, CcAlgorithm::kCubic, CcAlgorithm::kDctcp}) {
    SCOPED_TRACE(CcAlgorithmName(algorithm));
    auto cc = MakeCongestionControl(Cfg(algorithm));
    // Open the window well past the initial 10 segments.
    TimePoint now = TimePoint::Zero();
    for (int i = 0; i < 4; ++i) {
      now = now + Duration::Micros(100);
      cc->OnAck(cc->cwnd_bytes(), now);
    }
    const uint64_t before = cc->cwnd_bytes();
    ASSERT_GT(before, 20000u);

    cc->OnRto();
    // cwnd = 1 MSS and slow start restarts. ssthresh remembers half the
    // window (RFC 5681 §3.1) — beta = 0.7 of it for CUBIC (RFC 8312 §4.7).
    EXPECT_EQ(cc->cwnd_bytes(), 1000u);
    if (algorithm == CcAlgorithm::kCubic) {
      EXPECT_NEAR(static_cast<double>(cc->ssthresh()), 0.7 * static_cast<double>(before),
                  1000.0);
    } else {
      EXPECT_EQ(cc->ssthresh(), before / 2);
    }
    EXPECT_TRUE(cc->in_slow_start());
    EXPECT_GE(cc->decrease_events(), 1u);

    // Slow-start regrowth: exponential until ssthresh.
    now = now + Duration::Micros(100);
    cc->OnAck(cc->cwnd_bytes(), now);
    EXPECT_EQ(cc->cwnd_bytes(), 2000u);
    now = now + Duration::Micros(100);
    cc->OnAck(cc->cwnd_bytes(), now);
    EXPECT_EQ(cc->cwnd_bytes(), 4000u);
  }
}

TEST(CcRtoCollapse, SsthreshFloorsAtTwoMss) {
  for (CcAlgorithm algorithm :
       {CcAlgorithm::kReno, CcAlgorithm::kCubic, CcAlgorithm::kDctcp}) {
    SCOPED_TRACE(CcAlgorithmName(algorithm));
    auto cc = MakeCongestionControl(Cfg(algorithm));
    for (int i = 0; i < 10; ++i) {
      cc->OnRto();
    }
    EXPECT_EQ(cc->cwnd_bytes(), 1000u);
    EXPECT_EQ(cc->ssthresh(), 2000u);
  }
}

// ---- CUBIC curve shape (RFC 8312) ----

TEST(CubicCurve, PlateausExactlyAtWmaxAtK) {
  const double c = 0.4;
  const double w_max = 100.0;
  const double k = std::cbrt(w_max * (1.0 - 0.7) / c);
  EXPECT_DOUBLE_EQ(CubicWindowSegments(c, w_max, k, k), w_max);
}

TEST(CubicCurve, MonotonicallyNondecreasing) {
  const double c = 0.4;
  const double w_max = 100.0;
  const double k = std::cbrt(w_max * (1.0 - 0.7) / c);
  double prev = CubicWindowSegments(c, w_max, k, 0.0);
  for (int i = 1; i <= 400; ++i) {
    const double t = 2.0 * k * i / 400.0;  // [0, 2K].
    const double w = CubicWindowSegments(c, w_max, k, t);
    EXPECT_GE(w, prev) << "t=" << t;
    prev = w;
  }
}

TEST(CubicCurve, ConcaveBeforeKConvexAfterK) {
  const double c = 0.4;
  const double w_max = 100.0;
  const double k = std::cbrt(w_max * (1.0 - 0.7) / c);
  const double h = k / 100.0;
  auto second_diff = [&](double t) {
    return CubicWindowSegments(c, w_max, k, t + h) - 2.0 * CubicWindowSegments(c, w_max, k, t) +
           CubicWindowSegments(c, w_max, k, t - h);
  };
  // Strictly inside each half; at t = K the curvature crosses zero.
  for (int i = 2; i <= 98; ++i) {
    const double t = k * i / 100.0;
    EXPECT_LE(second_diff(t), 1e-9) << "concave region, t=" << t;
    EXPECT_GE(second_diff(t + k), -1e-9) << "convex region, t=" << t + k;
  }
}

TEST(CubicControl, DecreaseIsByBetaAndEpochTargetsOldWindow) {
  CubicCongestionControl cc(Cfg(CcAlgorithm::kCubic));
  TimePoint now = TimePoint::Zero();
  for (int i = 0; i < 4; ++i) {
    now = now + Duration::Micros(100);
    cc.OnAck(cc.cwnd_bytes(), now);
  }
  const uint64_t before = cc.cwnd_bytes();
  cc.OnDupAckThreshold();
  // beta = 0.7: gentler than Reno's half.
  EXPECT_NEAR(static_cast<double>(cc.cwnd_bytes()), 0.7 * static_cast<double>(before),
              1000.0);
  EXPECT_FALSE(cc.in_slow_start());
  // W_max remembers where the loss happened (in segments).
  EXPECT_NEAR(cc.w_max_segments(), static_cast<double>(before) / 1000.0, 1.0);

  // Avoidance acks start the epoch and regrow toward W_max.
  for (int i = 0; i < 50; ++i) {
    now = now + Duration::Micros(100);
    cc.OnAck(cc.cwnd_bytes(), now);
  }
  EXPECT_TRUE(cc.epoch_started());
  EXPECT_GT(cc.cwnd_bytes(), static_cast<uint64_t>(0.7 * static_cast<double>(before)));
}

TEST(CubicControl, FastConvergenceReleasesRoomOnBackToBackLosses) {
  CubicCongestionControl cc(Cfg(CcAlgorithm::kCubic));
  TimePoint now = TimePoint::Zero();
  for (int i = 0; i < 4; ++i) {
    now = now + Duration::Micros(100);
    cc.OnAck(cc.cwnd_bytes(), now);
  }
  cc.OnDupAckThreshold();
  const double w_max_first = cc.w_max_segments();
  // A second loss below the previous W_max: the flow is losing ground, so
  // fast convergence sets W_max below the current window.
  cc.OnDupAckThreshold();
  EXPECT_LT(cc.w_max_segments(), w_max_first);
}

// ---- DCTCP alpha EWMA (RFC 8257) ----

// Drives `windows` observation windows with mark fraction `f`, advancing
// time one fallback-RTT per window so each rolls exactly once.
void DriveDctcpWindows(DctcpCongestionControl* cc, int windows, double f, TimePoint* now) {
  for (int w = 0; w < windows; ++w) {
    // 10 acks of 1000 bytes per window; the first f*10 carry ECE.
    const int marked = static_cast<int>(f * 10.0 + 0.5);
    for (int a = 0; a < 10; ++a) {
      *now = *now + Duration::Micros(10);
      if (a < marked) {
        cc->OnEcnEcho(1000, *now);
      }
      cc->OnAck(1000, *now);
    }
  }
}

TEST(DctcpControl, AlphaConvergesToTheMarkFraction) {
  CcConfig config = Cfg(CcAlgorithm::kDctcp);
  config.dctcp_alpha_init = 1.0;
  DctcpCongestionControl cc(config);
  TimePoint now = TimePoint::Zero();
  // alpha decays from 1.0 toward F = 0.3 with gain 1/16: after 200
  // windows, (1 - 1/16)^200 ~ 2.5e-6 of the initial error remains.
  DriveDctcpWindows(&cc, 200, 0.3, &now);
  EXPECT_NEAR(cc.alpha(), 0.3, 0.02);
}

TEST(DctcpControl, AlphaDecaysToZeroWithoutMarks) {
  CcConfig config = Cfg(CcAlgorithm::kDctcp);
  config.dctcp_alpha_init = 1.0;
  DctcpCongestionControl cc(config);
  TimePoint now = TimePoint::Zero();
  DriveDctcpWindows(&cc, 200, 0.0, &now);
  EXPECT_LT(cc.alpha(), 0.01);
}

TEST(DctcpControl, LightMarkingBarelyDentsTheWindow) {
  CcConfig config = Cfg(CcAlgorithm::kDctcp);
  DctcpCongestionControl cc(config);
  TimePoint now = TimePoint::Zero();
  // Converge alpha down to ~0.1 first.
  DriveDctcpWindows(&cc, 300, 0.1, &now);
  ASSERT_NEAR(cc.alpha(), 0.1, 0.02);
  const uint64_t before = cc.cwnd_bytes();
  DriveDctcpWindows(&cc, 1, 0.1, &now);
  // cwnd * (1 - alpha/2) ~ 0.95 * cwnd: proportional, not halved. Growth
  // in the same window can offset the dent; the point is the floor.
  EXPECT_GT(cc.cwnd_bytes(), static_cast<uint64_t>(0.9 * static_cast<double>(before)));
}

TEST(DctcpControl, DecreaseIsExactlyCwndTimesOneMinusHalfAlpha) {
  CcConfig config = Cfg(CcAlgorithm::kDctcp);
  config.dctcp_alpha_init = 0.5;
  DctcpCongestionControl cc(config);
  // One observation window: 10 acks of 1000 bytes, 5 of them marked, so
  // F = 0.5 keeps alpha pinned at 0.5 through the EWMA.
  TimePoint now = TimePoint::Zero();
  for (int a = 0; a < 10; ++a) {
    now = now + Duration::Micros(10);
    if (a < 5) {
      cc.OnEcnEcho(1000, now);
    }
    cc.OnAck(1000, now);  // Slow start: cwnd 10000 -> 20000.
  }
  ASSERT_EQ(cc.cwnd_bytes(), 20000u);
  // A zero-byte echo past the window boundary triggers the roll without
  // perturbing either tally: cwnd * (1 - alpha/2) = 20000 * 0.75.
  cc.OnEcnEcho(0, now + Duration::Micros(100));
  EXPECT_DOUBLE_EQ(cc.alpha(), 0.5);
  EXPECT_EQ(cc.cwnd_bytes(), 15000u);
  EXPECT_EQ(cc.ssthresh(), 15000u);  // The decrease also ends slow start.
  EXPECT_EQ(cc.decrease_events(), 1u);
}

TEST(DctcpControl, SustainedMarkingBoundsTheWindowUnmarkedDoesNot) {
  CcConfig config = Cfg(CcAlgorithm::kDctcp);
  config.dctcp_alpha_init = 1.0;
  DctcpCongestionControl unmarked(config);
  DctcpCongestionControl marked(config);
  TimePoint now_a = TimePoint::Zero();
  TimePoint now_b = TimePoint::Zero();
  DriveDctcpWindows(&unmarked, 50, 0.0, &now_a);
  DriveDctcpWindows(&marked, 50, 1.0, &now_b);
  // Unmarked slow start keeps absorbing every acked byte; heavy marking
  // pins the window near the bottom despite identical ack volume.
  EXPECT_GT(unmarked.cwnd_bytes(), 400000u);
  EXPECT_LT(marked.cwnd_bytes(), unmarked.cwnd_bytes() / 5);
  EXPECT_GT(marked.decrease_events(), 10u);
}

TEST(DctcpControl, AlphaSurvivesAnRto) {
  CcConfig config = Cfg(CcAlgorithm::kDctcp);
  DctcpCongestionControl cc(config);
  TimePoint now = TimePoint::Zero();
  DriveDctcpWindows(&cc, 300, 0.2, &now);
  const double alpha = cc.alpha();
  cc.OnRto();
  EXPECT_EQ(cc.cwnd_bytes(), 1000u);
  EXPECT_DOUBLE_EQ(cc.alpha(), alpha);  // RFC 8257 §3.5: alpha is kept.
}

// ---- Classic ECN reaction gating (RFC 3168) ----

TEST(RenoControl, EcnEchoHalvesOncePerRtt) {
  RenoCongestionControl cc(Cfg(CcAlgorithm::kReno));
  TimePoint now = TimePoint::FromNanos(1);
  cc.OnAck(30000, now);  // cwnd 40000.
  const uint64_t opened = cc.cwnd_bytes();

  cc.OnEcnEcho(1000, now);
  EXPECT_EQ(cc.cwnd_bytes(), opened / 2);
  EXPECT_EQ(cc.decrease_events(), 1u);
  EXPECT_EQ(cc.state(now), CcState::kCwr);

  // More echoes inside the same reaction window (fallback RTT = 100 us)
  // are the same congestion event: no further decrease.
  cc.OnEcnEcho(1000, now + Duration::Micros(50));
  EXPECT_EQ(cc.cwnd_bytes(), opened / 2);
  EXPECT_EQ(cc.decrease_events(), 1u);

  // Past the window, a new echo is a new event.
  cc.OnEcnEcho(1000, now + Duration::Micros(150));
  EXPECT_EQ(cc.cwnd_bytes(), opened / 4);
  EXPECT_EQ(cc.decrease_events(), 2u);
}

TEST(RenoControl, RttSampleSetsTheReactionWindow) {
  RenoCongestionControl cc(Cfg(CcAlgorithm::kReno));
  TimePoint now = TimePoint::FromNanos(1);
  cc.OnRttSample(Duration::Millis(1), now);
  cc.OnAck(30000, now);
  cc.OnEcnEcho(1000, now);
  const uint64_t after_first = cc.cwnd_bytes();
  // 150 us later is still inside the 1 ms smoothed RTT: still gated.
  cc.OnEcnEcho(1000, now + Duration::Micros(150));
  EXPECT_EQ(cc.cwnd_bytes(), after_first);
  EXPECT_EQ(cc.decrease_events(), 1u);
}

TEST(CcState, ReportsSlowStartAvoidanceAndCwr) {
  RenoCongestionControl cc(Cfg(CcAlgorithm::kReno));
  EXPECT_EQ(cc.state(), CcState::kSlowStart);
  cc.OnDupAckThreshold();
  EXPECT_EQ(cc.state(), CcState::kAvoidance);
  TimePoint now = TimePoint::FromNanos(1);
  cc.OnEcnEcho(1000, now);
  EXPECT_EQ(cc.state(now), CcState::kCwr);
  EXPECT_EQ(cc.state(now + Duration::Millis(1)), CcState::kAvoidance);
}

}  // namespace
}  // namespace e2e
