#include "src/sim/random.h"

#include <gtest/gtest.h>

#include <cmath>

namespace e2e {
namespace {

TEST(RngTest, DeterministicPerSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    same += a.NextU64() == b.NextU64() ? 1 : 0;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, Uniform01InRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.Uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformIntCoversInclusiveRange) {
  Rng rng(7);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const int64_t v = rng.UniformInt(3, 6);
    ASSERT_GE(v, 3);
    ASSERT_LE(v, 6);
    saw_lo |= v == 3;
    saw_hi |= v == 6;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, ExponentialHasRequestedMean) {
  Rng rng(11);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    sum += rng.Exponential(50.0);
  }
  EXPECT_NEAR(sum / n, 50.0, 0.5);
}

TEST(RngTest, ExpInterarrivalMatchesRate) {
  Rng rng(13);
  Duration total;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    total += rng.ExpInterarrival(20000.0);  // 20k/s -> mean 50 us.
    EXPECT_GE(total, Duration::Zero());
  }
  EXPECT_NEAR(total.ToSeconds() / n, 50e-6, 1e-6);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(17);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    hits += rng.Bernoulli(0.3) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, NormalMoments) {
  Rng rng(19);
  double sum = 0;
  double sq = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Normal(10.0, 2.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
}

TEST(RngTest, LogNormalMeanAndCv) {
  Rng rng(23);
  double sum = 0;
  double sq = 0;
  const int n = 400000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.LogNormalMeanCv(100.0, 0.5);
    EXPECT_GT(x, 0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double cv = std::sqrt(sq / n - mean * mean) / mean;
  EXPECT_NEAR(mean, 100.0, 1.0);
  EXPECT_NEAR(cv, 0.5, 0.02);
}

TEST(RngTest, ZipfBoundsAndSkew) {
  Rng rng(29);
  int first = 0;
  for (int i = 0; i < 10000; ++i) {
    const int64_t r = rng.Zipf(100, 1.0);
    ASSERT_GE(r, 0);
    ASSERT_LT(r, 100);
    first += r == 0 ? 1 : 0;
  }
  // Rank 0 under s=1, n=100 has probability ~1/H_100 ~ 0.19.
  EXPECT_GT(first, 1500);
  EXPECT_LT(first, 2500);
}

TEST(RngTest, ZipfZeroExponentIsUniform) {
  Rng rng(31);
  int low_half = 0;
  for (int i = 0; i < 10000; ++i) {
    low_half += rng.Zipf(10, 0.0) < 5 ? 1 : 0;
  }
  EXPECT_NEAR(low_half / 10000.0, 0.5, 0.03);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(37);
  Rng child = parent.Fork();
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    same += parent.NextU64() == child.NextU64() ? 1 : 0;
  }
  EXPECT_LT(same, 2);
}

}  // namespace
}  // namespace e2e
