#include "src/sim/logging.h"

#include <gtest/gtest.h>

namespace e2e {
namespace {

class LoggingTest : public ::testing::Test {
 protected:
  void TearDown() override { SetLogLevel(LogLevel::kWarn); }  // Restore default.
};

TEST_F(LoggingTest, LevelIsGlobalAndSettable) {
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(LogLevel::kOff);
  EXPECT_EQ(GetLogLevel(), LogLevel::kOff);
}

TEST_F(LoggingTest, LevelsAreOrdered) {
  EXPECT_LT(LogLevel::kTrace, LogLevel::kDebug);
  EXPECT_LT(LogLevel::kDebug, LogLevel::kInfo);
  EXPECT_LT(LogLevel::kInfo, LogLevel::kWarn);
  EXPECT_LT(LogLevel::kWarn, LogLevel::kError);
  EXPECT_LT(LogLevel::kError, LogLevel::kOff);
}

TEST_F(LoggingTest, MacroSkipsBelowThreshold) {
  SetLogLevel(LogLevel::kError);
  int evaluations = 0;
  auto count = [&] {
    ++evaluations;
    return 1;
  };
  // The macro must not evaluate arguments for filtered-out levels.
  E2E_DEBUG(TimePoint::Zero(), "test", "x=%d", count());
  EXPECT_EQ(evaluations, 0);
  E2E_ERROR(TimePoint::Zero(), "test", "x=%d", count());
  EXPECT_EQ(evaluations, 1);
}

TEST_F(LoggingTest, OffSilencesEverything) {
  SetLogLevel(LogLevel::kOff);
  int evaluations = 0;
  auto count = [&] {
    ++evaluations;
    return 1;
  };
  E2E_ERROR(TimePoint::Zero(), "test", "x=%d", count());
  EXPECT_EQ(evaluations, 0);
}

}  // namespace
}  // namespace e2e
