#include "src/sim/time.h"

#include <gtest/gtest.h>

namespace e2e {
namespace {

TEST(DurationTest, NamedConstructorsAgree) {
  EXPECT_EQ(Duration::Micros(1), Duration::Nanos(1000));
  EXPECT_EQ(Duration::Millis(1), Duration::Micros(1000));
  EXPECT_EQ(Duration::Seconds(1), Duration::Millis(1000));
  EXPECT_EQ(Duration::MicrosF(1.5), Duration::Nanos(1500));
  EXPECT_EQ(Duration::MillisF(0.25), Duration::Micros(250));
  EXPECT_EQ(Duration::SecondsF(2e-9), Duration::Nanos(2));
}

TEST(DurationTest, Arithmetic) {
  const Duration a = Duration::Micros(10);
  const Duration b = Duration::Micros(4);
  EXPECT_EQ(a + b, Duration::Micros(14));
  EXPECT_EQ(a - b, Duration::Micros(6));
  EXPECT_EQ(b - a, -Duration::Micros(6));
  EXPECT_EQ(a * 3, Duration::Micros(30));
  EXPECT_EQ(3 * a, Duration::Micros(30));
  EXPECT_EQ(a * 0.5, Duration::Micros(5));
  EXPECT_EQ(a / 2, Duration::Micros(5));
  EXPECT_DOUBLE_EQ(a.Ratio(b), 2.5);
}

TEST(DurationTest, CompoundAssignment) {
  Duration d = Duration::Micros(1);
  d += Duration::Micros(2);
  EXPECT_EQ(d, Duration::Micros(3));
  d -= Duration::Micros(5);
  EXPECT_EQ(d, -Duration::Micros(2));
}

TEST(DurationTest, Comparisons) {
  EXPECT_LT(Duration::Nanos(999), Duration::Micros(1));
  EXPECT_GE(Duration::Zero(), -Duration::Nanos(1));
  EXPECT_TRUE(Duration::Zero().IsZero());
  EXPECT_FALSE(Duration::Nanos(1).IsZero());
}

TEST(DurationTest, Conversions) {
  const Duration d = Duration::Nanos(1234567);
  EXPECT_DOUBLE_EQ(d.ToMicros(), 1234.567);
  EXPECT_DOUBLE_EQ(d.ToMillis(), 1.234567);
  EXPECT_DOUBLE_EQ(d.ToSeconds(), 0.001234567);
}

TEST(DurationTest, ToStringSelectsUnit) {
  EXPECT_EQ(Duration::Nanos(5).ToString(), "5ns");
  EXPECT_EQ(Duration::Micros(12).ToString(), "12.00us");
  EXPECT_EQ(Duration::Millis(3).ToString(), "3.00ms");
  EXPECT_EQ(Duration::Seconds(2).ToString(), "2.000s");
  EXPECT_EQ((-Duration::Micros(12)).ToString(), "-12.00us");
}

TEST(TimePointTest, Arithmetic) {
  const TimePoint t = TimePoint::FromNanos(1000);
  EXPECT_EQ(t + Duration::Nanos(500), TimePoint::FromNanos(1500));
  EXPECT_EQ(t - Duration::Nanos(500), TimePoint::FromNanos(500));
  EXPECT_EQ(TimePoint::FromNanos(1500) - t, Duration::Nanos(500));
  TimePoint u = t;
  u += Duration::Micros(1);
  EXPECT_EQ(u, TimePoint::FromNanos(2000));
}

TEST(TimePointTest, Ordering) {
  EXPECT_LT(TimePoint::Zero(), TimePoint::FromNanos(1));
  EXPECT_LT(TimePoint::FromNanos(1), TimePoint::Max());
}

TEST(TimePointTest, ConstexprUsable) {
  static constexpr TimePoint kT = TimePoint::FromNanos(42) + Duration::Nanos(8);
  static_assert(kT.nanos() == 50);
  EXPECT_EQ(kT.nanos(), 50);
}

}  // namespace
}  // namespace e2e
