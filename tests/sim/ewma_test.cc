#include "src/sim/ewma.h"

#include <gtest/gtest.h>

namespace e2e {
namespace {

TEST(EwmaTest, FirstSampleInitializes) {
  Ewma ewma(0.25);
  EXPECT_FALSE(ewma.initialized());
  ewma.Add(10);
  EXPECT_TRUE(ewma.initialized());
  EXPECT_DOUBLE_EQ(ewma.value(), 10);
}

TEST(EwmaTest, BlendsWithAlpha) {
  Ewma ewma(0.25);
  ewma.Add(0);
  ewma.Add(100);
  EXPECT_DOUBLE_EQ(ewma.value(), 25);
  ewma.Add(100);
  EXPECT_DOUBLE_EQ(ewma.value(), 43.75);
}

TEST(EwmaTest, ConvergesToConstantInput) {
  Ewma ewma(0.2);
  ewma.Add(0);
  for (int i = 0; i < 100; ++i) {
    ewma.Add(50);
  }
  EXPECT_NEAR(ewma.value(), 50, 1e-6);
}

TEST(EwmaTest, ResetForgets) {
  Ewma ewma(0.5);
  ewma.Add(10);
  ewma.Reset();
  EXPECT_FALSE(ewma.initialized());
  ewma.Add(99);
  EXPECT_DOUBLE_EQ(ewma.value(), 99);
}

TEST(IrregularEwmaTest, DecayDependsOnElapsedTime) {
  // After exactly one time constant, the old value's weight is e^-1.
  IrregularEwma ewma(Duration::Millis(10));
  ewma.Add(TimePoint::Zero(), 100);
  ewma.Add(TimePoint::FromNanos(10000000), 0);
  EXPECT_NEAR(ewma.value(), 100 * std::exp(-1.0), 1e-9);
}

TEST(IrregularEwmaTest, LongGapNearlyReplaces) {
  IrregularEwma ewma(Duration::Millis(1));
  ewma.Add(TimePoint::Zero(), 100);
  ewma.Add(TimePoint::FromNanos(100000000), 7);  // 100 time constants later.
  EXPECT_NEAR(ewma.value(), 7, 1e-6);
}

TEST(IrregularEwmaTest, ZeroGapKeepsOldValue) {
  IrregularEwma ewma(Duration::Millis(1));
  ewma.Add(TimePoint::FromNanos(5000), 42);
  ewma.Add(TimePoint::FromNanos(5000), 0);
  // Coincident samples are averaged equally, not discarded: exp(0) == 1
  // would silently give the new sample weight zero.
  EXPECT_DOUBLE_EQ(ewma.value(), 21);
}

TEST(IrregularEwmaTest, CoincidentSamplesFoldInOneAtATime) {
  IrregularEwma ewma(Duration::Millis(1));
  const TimePoint t = TimePoint::FromNanos(5000);
  ewma.Add(t, 100);
  ewma.Add(t, 0);
  EXPECT_DOUBLE_EQ(ewma.value(), 50);
  ewma.Add(t, 0);  // Each coincident sample halves again.
  EXPECT_DOUBLE_EQ(ewma.value(), 25);
}

TEST(IrregularEwmaTest, CoincidentSampleDoesNotAdvanceTheClock) {
  // A burst at t=0 must not reset the decay reference: the next spaced
  // sample still decays relative to t=0.
  IrregularEwma ewma(Duration::Millis(10));
  ewma.Add(TimePoint::Zero(), 100);
  ewma.Add(TimePoint::Zero(), 100);  // Coincident, value stays 100.
  EXPECT_DOUBLE_EQ(ewma.value(), 100);
  ewma.Add(TimePoint::FromNanos(10000000), 0);  // One tau later.
  EXPECT_NEAR(ewma.value(), 100 * std::exp(-1.0), 1e-9);
}

TEST(IrregularEwmaTest, BackwardsClockTreatedAsCoincident) {
  IrregularEwma ewma(Duration::Millis(1));
  ewma.Add(TimePoint::FromNanos(8000), 80);
  ewma.Add(TimePoint::FromNanos(2000), 0);  // Clock stepped back: dt < 0.
  EXPECT_DOUBLE_EQ(ewma.value(), 40);
  // last_ did not move backwards either.
  ewma.Add(TimePoint::FromNanos(8000), 40);
  EXPECT_DOUBLE_EQ(ewma.value(), 40);
}

TEST(IrregularEwmaTest, MatchesRegularEwmaForEvenSpacing) {
  // With spacing dt, irregular EWMA is a fixed-alpha EWMA with
  // alpha = 1 - e^(-dt/tau).
  IrregularEwma irregular(Duration::Millis(10));
  Ewma regular(1.0 - std::exp(-0.1));
  int64_t t = 0;
  for (int i = 0; i < 50; ++i) {
    const double x = (i * 37) % 100;
    irregular.Add(TimePoint::FromNanos(t), x);
    regular.Add(x);
    t += 1000000;  // 1 ms.
  }
  EXPECT_NEAR(irregular.value(), regular.value(), 1e-9);
}

}  // namespace
}  // namespace e2e
