#include "src/sim/cpu.h"

#include <gtest/gtest.h>

#include <vector>

namespace e2e {
namespace {

TEST(CpuCoreTest, ExecutesFifo) {
  Simulator sim;
  CpuCore core(&sim, "t");
  std::vector<int> done;
  core.SubmitFixed(Duration::Micros(3), [&] { done.push_back(1); });
  core.SubmitFixed(Duration::Micros(1), [&] { done.push_back(2); });
  core.SubmitFixed(Duration::Micros(2), [&] { done.push_back(3); });
  sim.Run();
  EXPECT_EQ(done, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.Now(), TimePoint::FromNanos(6000));
  EXPECT_EQ(core.items_done(), 3u);
}

TEST(CpuCoreTest, CostComputedAtStartTime) {
  Simulator sim;
  CpuCore core(&sim, "t");
  int pending = 0;
  core.SubmitFixed(Duration::Micros(2));  // Keeps the core busy until 2 us.
  // Cost depends on state observed when the work begins (at 2 us), not at
  // submission time (now, when pending is still 0).
  core.Submit([&]() -> Duration { return Duration::Micros(pending); });
  pending = 7;
  TimePoint done_at;
  core.SubmitFixed(Duration::Zero(), [&] { done_at = sim.Now(); });
  sim.Run();
  EXPECT_EQ(done_at, TimePoint::FromNanos(9000));
}

TEST(CpuCoreTest, BusyTimeAccumulatesAndIncludesPartialWork) {
  Simulator sim;
  CpuCore core(&sim, "t");
  core.SubmitFixed(Duration::Micros(10));
  sim.RunUntil(TimePoint::FromNanos(4000));
  EXPECT_EQ(core.busy_time(), Duration::Micros(4));  // Mid-execution.
  EXPECT_TRUE(core.busy());
  sim.Run();
  EXPECT_EQ(core.busy_time(), Duration::Micros(10));
  EXPECT_FALSE(core.busy());
}

TEST(CpuCoreTest, IdleGapsDoNotCountAsBusy) {
  Simulator sim;
  CpuCore core(&sim, "t");
  core.SubmitFixed(Duration::Micros(2));
  sim.Run();
  sim.Schedule(Duration::Micros(100), [&] { core.SubmitFixed(Duration::Micros(3)); });
  sim.Run();
  EXPECT_EQ(core.busy_time(), Duration::Micros(5));
}

TEST(CpuCoreTest, QueueDepthExcludesExecutingItem) {
  Simulator sim;
  CpuCore core(&sim, "t");
  core.SubmitFixed(Duration::Micros(5));
  core.SubmitFixed(Duration::Micros(5));
  core.SubmitFixed(Duration::Micros(5));
  sim.RunUntil(TimePoint::FromNanos(1000));
  EXPECT_EQ(core.queue_depth(), 2u);
}

TEST(CpuCoreTest, DoneCallbackMaySubmitMoreWork) {
  Simulator sim;
  CpuCore core(&sim, "t");
  std::vector<int> order;
  core.SubmitFixed(Duration::Micros(1), [&] {
    order.push_back(1);
    core.SubmitFixed(Duration::Micros(1), [&] { order.push_back(3); });
  });
  core.SubmitFixed(Duration::Micros(1), [&] { order.push_back(2); });
  sim.Run();
  // Work submitted from a done-callback queues behind already-queued work.
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(CpuCoreTest, ZeroCostWorkCompletesAtCurrentInstant) {
  Simulator sim;
  CpuCore core(&sim, "t");
  TimePoint done_at = TimePoint::Max();
  sim.Schedule(Duration::Micros(3), [&] {
    core.SubmitFixed(Duration::Zero(), [&] { done_at = sim.Now(); });
  });
  sim.Run();
  EXPECT_EQ(done_at, TimePoint::FromNanos(3000));
}

TEST(CpuCoreTest, UtilizationFromBusyDeltas) {
  Simulator sim;
  CpuCore core(&sim, "t");
  // 30% duty cycle: 3 us of work every 10 us.
  for (int i = 0; i < 10; ++i) {
    sim.Schedule(Duration::Micros(10 * i), [&] { core.SubmitFixed(Duration::Micros(3)); });
  }
  const Duration before = core.busy_time();
  sim.RunUntil(TimePoint::FromNanos(100000));
  const double util = (core.busy_time() - before).ToSeconds() / 100e-6;
  EXPECT_NEAR(util, 0.3, 1e-9);
}

}  // namespace
}  // namespace e2e
