#include <gtest/gtest.h>

#include "src/sim/random.h"
#include "src/sim/stats.h"

namespace e2e {
namespace {

TEST(LogHistogramMergeTest, MergedEqualsCombinedStream) {
  Rng rng(91);
  LogHistogram all(1.0, 1e9, 100);
  LogHistogram left(1.0, 1e9, 100);
  LogHistogram right(1.0, 1e9, 100);
  for (int i = 0; i < 20000; ++i) {
    const double x = rng.LogNormalMeanCv(500, 1.0);
    all.Add(x);
    (i % 2 == 0 ? left : right).Add(x);
  }
  left.Merge(right);
  EXPECT_EQ(left.count(), all.count());
  // Summation order differs between the merged and combined streams; allow
  // floating-point reassociation error.
  EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
  EXPECT_DOUBLE_EQ(left.max_seen(), all.max_seen());
  for (double q : {0.1, 0.5, 0.9, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(left.Quantile(q), all.Quantile(q)) << "q=" << q;
  }
}

TEST(LogHistogramMergeTest, MergeWithEmptyIsIdentity) {
  LogHistogram a(1.0, 1e9, 100);
  LogHistogram b(1.0, 1e9, 100);
  a.Add(42);
  a.Merge(b);
  EXPECT_EQ(a.count(), 1);
  EXPECT_DOUBLE_EQ(a.Quantile(0.5), 42.0);
  b.Merge(a);
  EXPECT_EQ(b.count(), 1);
}

TEST(LogHistogramMergeTest, UnderflowCountsMerge) {
  LogHistogram a(100.0, 1e6, 50);
  LogHistogram b(100.0, 1e6, 50);
  a.Add(1.0);  // Underflow.
  b.Add(1.0);
  b.Add(500.0);
  a.Merge(b);
  EXPECT_EQ(a.count(), 3);
  EXPECT_EQ(a.Quantile(0.5), 100.0);  // Two of three below min.
}

}  // namespace
}  // namespace e2e
