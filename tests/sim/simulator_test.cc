#include "src/sim/simulator.h"

#include <gtest/gtest.h>

#include <vector>

namespace e2e {
namespace {

TEST(SimulatorTest, ClockAdvancesToEventTimes) {
  Simulator sim;
  std::vector<int64_t> seen;
  sim.Schedule(Duration::Micros(5), [&] { seen.push_back(sim.Now().nanos()); });
  sim.Schedule(Duration::Micros(2), [&] { seen.push_back(sim.Now().nanos()); });
  sim.Run();
  EXPECT_EQ(seen, (std::vector<int64_t>{2000, 5000}));
  EXPECT_EQ(sim.Now(), TimePoint::FromNanos(5000));
}

TEST(SimulatorTest, NestedSchedulingFromCallbacks) {
  Simulator sim;
  int depth = 0;
  std::function<void()> recur = [&] {
    if (++depth < 5) {
      sim.Schedule(Duration::Micros(1), recur);
    }
  };
  sim.Schedule(Duration::Micros(1), recur);
  sim.Run();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(sim.Now(), TimePoint::FromNanos(5000));
}

TEST(SimulatorTest, RunUntilAdvancesClockToDeadlineEvenWhenIdle) {
  Simulator sim;
  sim.RunUntil(TimePoint::FromNanos(1234));
  EXPECT_EQ(sim.Now(), TimePoint::FromNanos(1234));
}

TEST(SimulatorTest, RunUntilExecutesOnlyEventsWithinDeadline) {
  Simulator sim;
  int fired = 0;
  sim.Schedule(Duration::Micros(1), [&] { ++fired; });
  sim.Schedule(Duration::Micros(10), [&] { ++fired; });
  sim.RunUntil(TimePoint::FromNanos(5000));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.Run();
  EXPECT_EQ(fired, 2);
}

TEST(SimulatorTest, EventAtDeadlineBoundaryFires) {
  Simulator sim;
  bool fired = false;
  sim.Schedule(Duration::Micros(5), [&] { fired = true; });
  sim.RunUntil(TimePoint::FromNanos(5000));
  EXPECT_TRUE(fired);
}

TEST(SimulatorTest, ZeroDelayFiresAfterPendingSameInstantEvents) {
  Simulator sim;
  std::vector<int> order;
  sim.Schedule(Duration::Zero(), [&] {
    order.push_back(1);
    sim.Schedule(Duration::Zero(), [&] { order.push_back(3); });
  });
  sim.Schedule(Duration::Zero(), [&] { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(SimulatorTest, CancelWorks) {
  Simulator sim;
  bool fired = false;
  const EventId id = sim.Schedule(Duration::Micros(1), [&] { fired = true; });
  EXPECT_TRUE(sim.Cancel(id));
  sim.Run();
  EXPECT_FALSE(fired);
}

TEST(SimulatorTest, StepExecutesExactlyOne) {
  Simulator sim;
  int fired = 0;
  sim.Schedule(Duration::Micros(1), [&] { ++fired; });
  sim.Schedule(Duration::Micros(2), [&] { ++fired; });
  EXPECT_TRUE(sim.Step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.Step());
  EXPECT_FALSE(sim.Step());
  EXPECT_EQ(fired, 2);
}

TEST(SimulatorTest, CountsEventsFired) {
  Simulator sim;
  for (int i = 0; i < 7; ++i) {
    sim.Schedule(Duration::Micros(i + 1), [] {});
  }
  sim.Run();
  EXPECT_EQ(sim.events_fired(), 7u);
}

TEST(SimulatorTest, RunForIsRelative) {
  Simulator sim;
  sim.RunFor(Duration::Micros(10));
  sim.RunFor(Duration::Micros(10));
  EXPECT_EQ(sim.Now(), TimePoint::FromNanos(20000));
}

}  // namespace
}  // namespace e2e
