#include "src/sim/event_queue.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "src/sim/arena.h"

namespace e2e {
namespace {

TimePoint At(int64_t us) { return TimePoint::FromNanos(us * 1000); }

TEST(EventQueueTest, PopsInTimeOrder) {
  EventQueue queue;
  std::vector<int> fired;
  queue.Push(At(30), [&] { fired.push_back(3); });
  queue.Push(At(10), [&] { fired.push_back(1); });
  queue.Push(At(20), [&] { fired.push_back(2); });
  while (!queue.Empty()) {
    queue.Pop().cb();
  }
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, SameTimeIsFifo) {
  EventQueue queue;
  std::vector<int> fired;
  for (int i = 0; i < 100; ++i) {
    queue.Push(At(5), [&fired, i] { fired.push_back(i); });
  }
  while (!queue.Empty()) {
    queue.Pop().cb();
  }
  ASSERT_EQ(fired.size(), 100u);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(fired[i], i);
  }
}

TEST(EventQueueTest, CancelPreventsFiring) {
  EventQueue queue;
  int fired = 0;
  const EventId keep = queue.Push(At(1), [&] { ++fired; });
  const EventId cancel = queue.Push(At(2), [&] { fired += 100; });
  EXPECT_TRUE(queue.Cancel(cancel));
  EXPECT_FALSE(queue.Cancel(cancel));  // Double cancel is a no-op.
  while (!queue.Empty()) {
    queue.Pop().cb();
  }
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(queue.Cancel(keep));  // Already fired.
}

TEST(EventQueueTest, CancelHeadUpdatesNextTime) {
  EventQueue queue;
  const EventId head = queue.Push(At(1), [] {});
  queue.Push(At(7), [] {});
  EXPECT_EQ(queue.NextTime(), At(1));
  queue.Cancel(head);
  EXPECT_EQ(queue.NextTime(), At(7));
}

TEST(EventQueueTest, SizeTracksLiveEvents) {
  EventQueue queue;
  const EventId a = queue.Push(At(1), [] {});
  queue.Push(At(2), [] {});
  EXPECT_EQ(queue.size(), 2u);
  queue.Cancel(a);
  EXPECT_EQ(queue.size(), 1u);
  queue.Pop();
  EXPECT_EQ(queue.size(), 0u);
  EXPECT_TRUE(queue.Empty());
}

TEST(EventQueueTest, IdsAreUniqueAndNeverInvalid) {
  EventQueue queue;
  EventId last = kInvalidEventId;
  for (int i = 0; i < 10; ++i) {
    const EventId id = queue.Push(At(i), [] {});
    EXPECT_NE(id, kInvalidEventId);
    EXPECT_NE(id, last);
    last = id;
  }
}

// The generation tag must keep a stale id from touching a reused slot: after
// the only event fires (or cancels), its slot goes back on the freelist and
// the next Push reuses it under a bumped generation.
TEST(EventQueueTest, StaleIdNeverCancelsReusedSlot) {
  EventQueue queue;
  const EventId first = queue.Push(At(1), [] {});
  queue.Pop().cb();  // Fires `first`; its slot is free again.

  int fired = 0;
  const EventId reused = queue.Push(At(2), [&] { ++fired; });
  EXPECT_NE(first, reused);
  EXPECT_FALSE(queue.Cancel(first));  // Stale id: must not hit the new event.
  EXPECT_EQ(queue.size(), 1u);
  queue.Pop().cb();
  EXPECT_EQ(fired, 1);

  // Same story when the slot is freed by Cancel instead of Pop.
  const EventId canceled = queue.Push(At(3), [] {});
  EXPECT_TRUE(queue.Cancel(canceled));
  int fired2 = 0;
  queue.Push(At(4), [&] { ++fired2; });
  EXPECT_FALSE(queue.Cancel(canceled));
  queue.Pop().cb();
  EXPECT_EQ(fired2, 1);
}

// Slots are recycled many times; every incarnation must be independently
// cancelable and old ids must stay dead forever.
TEST(EventQueueTest, GenerationSurvivesHeavySlotReuse) {
  EventQueue queue;
  std::vector<EventId> dead;
  for (int round = 0; round < 1000; ++round) {
    const EventId id = queue.Push(At(round), [] {});
    for (const EventId old : dead) {
      ASSERT_FALSE(queue.Cancel(old));
    }
    if (round % 2 == 0) {
      ASSERT_TRUE(queue.Cancel(id));
    } else {
      queue.Pop().cb();
    }
    dead.push_back(id);
    if (dead.size() > 8) {
      dead.erase(dead.begin());
    }
  }
  EXPECT_TRUE(queue.Empty());
}

// Regression for the 32-bit generation truncation: under the old packed
// layout an id whose generation differed from the slot's by an exact
// multiple of 2^32 compared equal after truncation, so a stale id held
// across 2^32 slot reuses could cancel an unrelated event. Force a slot's
// generation across the wrap boundary and check the stale id stays dead.
TEST(EventQueueTest, StaleIdStaysDeadAcrossGenerationWrapBoundary) {
  EventQueue queue;
  const EventId stale = queue.Push(At(1), [] {});
  ASSERT_EQ(stale.slot, 1u);       // Slot index 0, stored as index + 1.
  ASSERT_EQ(stale.generation, 1u);  // First incarnation.
  ASSERT_TRUE(queue.Cancel(stale));  // Slot 0 is free again.

  // Simulate 2^32 reuses of slot 0: its next incarnation's generation is
  // congruent to the stale id's modulo 2^32 (1 + 2^32), which the old
  // truncated compare could not tell apart from 1.
  queue.SetSlotGenerationForTest(0, (1ull << 32) + 1);

  int fired = 0;
  const EventId reused = queue.Push(At(2), [&] { ++fired; });
  ASSERT_EQ(reused.slot, stale.slot);  // Same slot, new incarnation.
  EXPECT_EQ(reused.generation, (1ull << 32) + 1);
  EXPECT_NE(stale, reused);

  EXPECT_FALSE(queue.Cancel(stale));  // Must not kill the new event.
  EXPECT_EQ(queue.size(), 1u);
  queue.Pop().cb();
  EXPECT_EQ(fired, 1);  // The reused-slot event still fires.

  // And the live id from the wrapped incarnation cancels normally.
  const EventId after = queue.Push(At(3), [] {});
  EXPECT_TRUE(queue.Cancel(after));
  EXPECT_TRUE(queue.Empty());
}

// Callbacks only need to be movable: a move-only capture must survive the
// Push → slot → Pop round trip (InlineCallback, not std::function).
TEST(EventQueueTest, MaxLiveTracksHighWaterOccupancy) {
  EventQueue queue;
  EXPECT_EQ(queue.max_live(), 0u);
  std::vector<EventId> ids;
  for (int i = 0; i < 5; ++i) {
    ids.push_back(queue.Push(At(i + 1), [] {}));
  }
  EXPECT_EQ(queue.max_live(), 5u);
  queue.Pop();
  queue.Cancel(ids[4]);
  EXPECT_EQ(queue.max_live(), 5u);  // High-water, not current size.
  queue.Push(At(10), [] {});
  queue.Push(At(11), [] {});
  EXPECT_EQ(queue.max_live(), 5u);  // 3 live + 2 pushed = 5, no new peak.
  queue.Push(At(12), [] {});
  EXPECT_EQ(queue.max_live(), 6u);
}

TEST(EventQueueTest, ArenaBackedQueueMatchesDefaultResourceOrder) {
  // The pmr plumbing must be invisible to ordering: an arena-backed queue
  // (growing through several chunk generations) pops the same sequence as
  // a default-resource queue under an interleaved push/cancel/pop load.
  ArenaMemoryResource arena(/*first_chunk_bytes=*/64);
  EventQueue on_arena(&arena);
  EventQueue on_heap;
  std::vector<int> fired_arena;
  std::vector<int> fired_heap;
  auto drive = [](EventQueue& queue, std::vector<int>& fired) {
    std::vector<EventId> cancelable;
    for (int i = 0; i < 2000; ++i) {
      const int64_t when = (i * 37) % 211;
      const EventId id = queue.Push(At(when), [&fired, i] { fired.push_back(i); });
      if (i % 5 == 0) {
        cancelable.push_back(id);
      }
      if (i % 7 == 0 && !queue.Empty()) {
        queue.Pop().cb();
      }
    }
    for (const EventId& id : cancelable) {
      queue.Cancel(id);
    }
    while (!queue.Empty()) {
      queue.Pop().cb();
    }
  };
  drive(on_arena, fired_arena);
  drive(on_heap, fired_heap);
  EXPECT_EQ(fired_arena, fired_heap);
  EXPECT_GT(arena.bytes_allocated(), 0u);
  EXPECT_EQ(on_arena.max_live(), on_heap.max_live());
}

TEST(EventQueueTest, MoveOnlyCallbackCapture) {
  EventQueue queue;
  auto payload = std::make_unique<int>(42);
  int seen = 0;
  queue.Push(At(1), [p = std::move(payload), &seen] { seen = *p; });
  queue.Pop().cb();
  EXPECT_EQ(seen, 42);
}

// 1M-event stress with deterministic pseudo-random times and a cancel mix:
// exercises slot growth, freelist reuse, stale-record skipping, and ordering
// at scale. Runs in well under a second at -O2, so it stays in the default
// suite rather than behind the "slow" label.
TEST(EventQueueTest, MillionEventStress) {
  EventQueue queue;
  uint64_t rng = 0x9E3779B97F4A7C15ull;
  auto next_rand = [&rng] {
    rng ^= rng << 13;
    rng ^= rng >> 7;
    rng ^= rng << 17;
    return rng;
  };

  constexpr size_t kEvents = 1'000'000;
  size_t scheduled = 0;
  size_t canceled = 0;
  uint64_t fired = 0;
  std::vector<EventId> cancel_pool;
  for (size_t i = 0; i < kEvents; ++i) {
    const int64_t when = static_cast<int64_t>(next_rand() % 1'000'000);
    const EventId id = queue.Push(At(when), [&fired] { ++fired; });
    ++scheduled;
    if (next_rand() % 4 == 0) {
      cancel_pool.push_back(id);
    }
    // Cancel in bursts so freed slots interleave with fresh pushes.
    if (cancel_pool.size() >= 64) {
      for (const EventId victim : cancel_pool) {
        ASSERT_TRUE(queue.Cancel(victim));
        ++canceled;
      }
      cancel_pool.clear();
    }
  }
  for (const EventId victim : cancel_pool) {
    ASSERT_TRUE(queue.Cancel(victim));
    ++canceled;
  }
  ASSERT_EQ(queue.size(), scheduled - canceled);

  TimePoint last = TimePoint::Zero();
  while (!queue.Empty()) {
    auto entry = queue.Pop();
    ASSERT_GE(entry.when, last);  // Never goes backwards.
    last = entry.when;
    entry.cb();
  }
  EXPECT_EQ(fired, scheduled - canceled);
  EXPECT_EQ(queue.size(), 0u);
}

}  // namespace
}  // namespace e2e
