#include "src/sim/event_queue.h"

#include <gtest/gtest.h>

#include <vector>

namespace e2e {
namespace {

TimePoint At(int64_t us) { return TimePoint::FromNanos(us * 1000); }

TEST(EventQueueTest, PopsInTimeOrder) {
  EventQueue queue;
  std::vector<int> fired;
  queue.Push(At(30), [&] { fired.push_back(3); });
  queue.Push(At(10), [&] { fired.push_back(1); });
  queue.Push(At(20), [&] { fired.push_back(2); });
  while (!queue.Empty()) {
    queue.Pop().cb();
  }
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, SameTimeIsFifo) {
  EventQueue queue;
  std::vector<int> fired;
  for (int i = 0; i < 100; ++i) {
    queue.Push(At(5), [&fired, i] { fired.push_back(i); });
  }
  while (!queue.Empty()) {
    queue.Pop().cb();
  }
  ASSERT_EQ(fired.size(), 100u);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(fired[i], i);
  }
}

TEST(EventQueueTest, CancelPreventsFiring) {
  EventQueue queue;
  int fired = 0;
  const EventId keep = queue.Push(At(1), [&] { ++fired; });
  const EventId cancel = queue.Push(At(2), [&] { fired += 100; });
  EXPECT_TRUE(queue.Cancel(cancel));
  EXPECT_FALSE(queue.Cancel(cancel));  // Double cancel is a no-op.
  while (!queue.Empty()) {
    queue.Pop().cb();
  }
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(queue.Cancel(keep));  // Already fired.
}

TEST(EventQueueTest, CancelHeadUpdatesNextTime) {
  EventQueue queue;
  const EventId head = queue.Push(At(1), [] {});
  queue.Push(At(7), [] {});
  EXPECT_EQ(queue.NextTime(), At(1));
  queue.Cancel(head);
  EXPECT_EQ(queue.NextTime(), At(7));
}

TEST(EventQueueTest, SizeTracksLiveEvents) {
  EventQueue queue;
  const EventId a = queue.Push(At(1), [] {});
  queue.Push(At(2), [] {});
  EXPECT_EQ(queue.size(), 2u);
  queue.Cancel(a);
  EXPECT_EQ(queue.size(), 1u);
  queue.Pop();
  EXPECT_EQ(queue.size(), 0u);
  EXPECT_TRUE(queue.Empty());
}

TEST(EventQueueTest, IdsAreUniqueAndNeverInvalid) {
  EventQueue queue;
  EventId last = kInvalidEventId;
  for (int i = 0; i < 10; ++i) {
    const EventId id = queue.Push(At(i), [] {});
    EXPECT_NE(id, kInvalidEventId);
    EXPECT_NE(id, last);
    last = id;
  }
}

}  // namespace
}  // namespace e2e
