// Tests for the domain-partitioned (sharded) simulator engine: worker-count
// bit-identity, cross-domain delivery order, global-event semantics,
// DomainScope, and clock clamping. DESIGN.md §16.

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/sim/simulator.h"
#include "src/sim/time.h"

namespace e2e {
namespace {

std::string Entry(const std::string& tag, TimePoint at) {
  return tag + "@" + std::to_string(at.nanos());
}

// A fixed 4-shard workload: each shard runs a self-rescheduling ticker with a
// shard-specific period, and every third tick sends a cross-shard message to
// the next shard at +lookahead. Per-domain logs have a single writer (the
// owning domain), so appends are race-free under any worker count.
struct ShardWorkload {
  static constexpr int kShards = 4;
  static constexpr int kTicks = 30;

  Simulator sim;
  Duration lookahead = Duration::Micros(5);
  std::vector<uint32_t> ids;
  std::vector<std::vector<std::string>> logs;  // [0] global, [i+1] shard i.

  explicit ShardWorkload(int workers) : logs(kShards + 1) {
    sim.SetLookahead(lookahead);
    for (int i = 0; i < kShards; ++i) {
      ids.push_back(sim.AddDomain());
    }
    sim.SetWorkers(workers);
    for (int i = 0; i < kShards; ++i) {
      DomainScope scope(&sim, ids[i]);
      sim.Schedule(Duration::Micros(1), [this, i] { Tick(i, 1); });
    }
  }

  void Tick(int shard, int n) {
    logs[shard + 1].push_back(Entry("t" + std::to_string(n), sim.Now()));
    if (n % 3 == 0) {
      const int dst = (shard + 1) % kShards;
      const std::string tag = "x" + std::to_string(shard) + "-" + std::to_string(n);
      sim.ScheduleCrossAt(ids[dst], sim.Now() + lookahead,
                          [this, dst, tag] { logs[dst + 1].push_back(Entry(tag, sim.Now())); });
    }
    if (n < kTicks) {
      sim.Schedule(Duration::Micros(1 + shard), [this, shard, n] { Tick(shard, n + 1); });
    }
  }
};

TEST(DomainTest, BitIdenticalAcrossWorkerCounts) {
  ShardWorkload one(1);
  const uint64_t events_one = one.sim.Run();
  ASSERT_GT(events_one, 0u);
  for (int workers : {2, 4, 8}) {
    ShardWorkload many(workers);
    const uint64_t events_many = many.sim.Run();
    EXPECT_EQ(events_one, events_many) << "workers=" << workers;
    EXPECT_EQ(one.logs, many.logs) << "workers=" << workers;
  }
}

TEST(DomainTest, CrossDeliveriesMergeInSourceDomainSeqOrder) {
  for (int workers : {1, 3}) {
    Simulator sim;
    sim.SetLookahead(Duration::Micros(1));
    const uint32_t a = sim.AddDomain();
    const uint32_t b = sim.AddDomain();
    const uint32_t c = sim.AddDomain();
    sim.SetWorkers(workers);
    std::vector<std::string> log;
    const TimePoint when = TimePoint::Zero() + Duration::Micros(10);
    // All three sends fire at the same instant (one epoch), so all three
    // deliveries merge at one barrier. B is scheduled first and could be
    // executed by another worker first, but A is the lower source domain:
    // the barrier must order same-instant deliveries by (src_domain,
    // src_seq), a key no worker interleaving can perturb.
    {
      DomainScope scope(&sim, b);
      sim.Schedule(Duration::Micros(1), [&sim, &log, c, when] {
        sim.ScheduleCrossAt(c, when, [&log] { log.push_back("b0"); });
        sim.ScheduleCrossAt(c, when, [&log] { log.push_back("b1"); });
      });
    }
    {
      DomainScope scope(&sim, a);
      sim.Schedule(Duration::Micros(1), [&sim, &log, c, when] {
        sim.ScheduleCrossAt(c, when, [&log] { log.push_back("a0"); });
      });
    }
    sim.Run();
    EXPECT_EQ(log, (std::vector<std::string>{"a0", "b0", "b1"})) << "workers=" << workers;
  }
}

TEST(DomainTest, GlobalEventRunsAtItsTimeAndCanPokeShards) {
  Simulator sim;
  sim.SetLookahead(Duration::Micros(1));
  const uint32_t shard = sim.AddDomain();
  sim.SetWorkers(2);
  std::vector<std::string> log;
  {
    DomainScope scope(&sim, shard);
    for (int n = 1; n <= 10; ++n) {
      sim.Schedule(Duration::Micros(n), [&sim, &log, shard, n] {
        EXPECT_EQ(sim.current_domain(), shard);
        log.push_back(Entry("s" + std::to_string(n), sim.Now()));
      });
    }
  }
  // Scheduled from outside any domain context: a global (domain 0) event. It
  // observes its own fire time and schedules into the shard via DomainScope.
  sim.Schedule(Duration::MicrosF(5.5), [&sim, &log, shard] {
    EXPECT_EQ(sim.current_domain(), 0u);
    EXPECT_EQ(sim.Now(), TimePoint::Zero() + Duration::MicrosF(5.5));
    log.push_back(Entry("g", sim.Now()));
    DomainScope scope(&sim, shard);
    sim.Schedule(Duration::Micros(2), [&sim, &log] { log.push_back(Entry("poke", sim.Now())); });
  });
  sim.Run();
  // The shard log interleaves with the global event and the poke lands at
  // 5.5 + 2 = 7.5 us, between the shard's own 7 and 8 us ticks.
  const std::vector<std::string> expected = {
      Entry("s1", TimePoint::Zero() + Duration::Micros(1)),
      Entry("s2", TimePoint::Zero() + Duration::Micros(2)),
      Entry("s3", TimePoint::Zero() + Duration::Micros(3)),
      Entry("s4", TimePoint::Zero() + Duration::Micros(4)),
      Entry("s5", TimePoint::Zero() + Duration::Micros(5)),
      Entry("g", TimePoint::Zero() + Duration::MicrosF(5.5)),
      Entry("s6", TimePoint::Zero() + Duration::Micros(6)),
      Entry("s7", TimePoint::Zero() + Duration::Micros(7)),
      Entry("poke", TimePoint::Zero() + Duration::MicrosF(7.5)),
      Entry("s8", TimePoint::Zero() + Duration::Micros(8)),
      Entry("s9", TimePoint::Zero() + Duration::Micros(9)),
      Entry("s10", TimePoint::Zero() + Duration::Micros(10)),
  };
  EXPECT_EQ(log, expected);
}

TEST(DomainTest, CancelWorksWithinADomain) {
  Simulator sim;
  sim.SetLookahead(Duration::Micros(1));
  const uint32_t shard = sim.AddDomain();
  sim.SetWorkers(2);
  bool doomed_fired = false;
  bool survivor_fired = false;
  {
    DomainScope scope(&sim, shard);
    const EventId doomed = sim.Schedule(Duration::Micros(5), [&] { doomed_fired = true; });
    sim.Schedule(Duration::Micros(6), [&] { survivor_fired = true; });
    EXPECT_TRUE(sim.Cancel(doomed));
    EXPECT_FALSE(sim.Cancel(doomed));  // Already canceled.
  }
  sim.Run();
  EXPECT_FALSE(doomed_fired);
  EXPECT_TRUE(survivor_fired);
}

TEST(DomainTest, RunUntilClampsEveryDomainClock) {
  Simulator sim;
  sim.SetLookahead(Duration::Micros(1));
  const uint32_t d1 = sim.AddDomain();
  const uint32_t d2 = sim.AddDomain();
  sim.SetWorkers(2);
  {
    DomainScope scope(&sim, d1);
    sim.Schedule(Duration::Micros(2), [] {});
  }
  const TimePoint deadline = TimePoint::Zero() + Duration::Millis(1);
  sim.RunUntil(deadline);
  EXPECT_EQ(sim.Now(), deadline);  // Global clock.
  {
    DomainScope scope(&sim, d1);
    EXPECT_EQ(sim.Now(), deadline);
  }
  {
    DomainScope scope(&sim, d2);  // Never had an event; still clamped.
    EXPECT_EQ(sim.Now(), deadline);
  }
}

TEST(DomainTest, IdleDomainReactivatesOnCrossMessageAndGlobalPoke) {
  // Lane-heap stress: a domain that drains to empty leaves the per-worker
  // lane heaps, and must re-enter them when (a) a cross message lands in
  // it and (b) a global event schedules into it. Identical logs across
  // worker counts prove the reactivation path is deterministic.
  auto run = [](int workers) {
    Simulator sim;
    sim.SetLookahead(Duration::Micros(1));
    const uint32_t busy = sim.AddDomain();
    const uint32_t idle = sim.AddDomain();
    sim.SetWorkers(workers);
    std::vector<std::string> busy_log;
    std::vector<std::string> idle_log;
    // Ticker, plus one cross message into the empty domain mid-run. Lives
    // at this scope so the by-reference captures outlive sim.Run().
    std::function<void(int)> tick = [&](int n) {
      busy_log.push_back(Entry("t" + std::to_string(n), sim.Now()));
      if (n == 5) {
        sim.ScheduleCrossAt(idle, sim.Now() + Duration::Micros(1),
                            [&] { idle_log.push_back(Entry("cross", sim.Now())); });
      }
      if (n < 12) {
        sim.Schedule(Duration::Micros(2), [&tick, n] { tick(n + 1); });
      }
    };
    {
      DomainScope scope(&sim, busy);
      sim.Schedule(Duration::Micros(1), [&tick] { tick(1); });
    }
    // Global event after the cross delivery has long drained: the idle
    // domain is empty again and must wake a second time.
    sim.Schedule(Duration::Micros(20), [&sim, &idle_log, idle] {
      DomainScope scope(&sim, idle);
      sim.Schedule(Duration::Micros(1), [&] { idle_log.push_back(Entry("poke", sim.Now())); });
    });
    sim.Run();
    EXPECT_EQ(idle_log.size(), 2u) << "workers=" << workers;
    busy_log.insert(busy_log.end(), idle_log.begin(), idle_log.end());
    return busy_log;
  };
  const std::vector<std::string> one = run(1);
  ASSERT_EQ(one.size(), 14u);
  for (int workers : {2, 4, 8}) {
    EXPECT_EQ(run(workers), one) << "workers=" << workers;
  }
}

TEST(DomainTest, CancelingADomainHeadFromAGlobalEventRescans) {
  // A global event cancels the earliest pending event of a shard. The lane
  // entry for that event goes stale; the engine must rescan and still fire
  // the shard's later event at its exact time (not stall, not fire the
  // canceled one).
  for (int workers : {1, 2, 4}) {
    Simulator sim;
    sim.SetLookahead(Duration::Micros(1));
    const uint32_t shard = sim.AddDomain();
    sim.SetWorkers(workers);
    bool doomed_fired = false;
    std::vector<std::string> log;
    EventId doomed;
    {
      DomainScope scope(&sim, shard);
      doomed = sim.Schedule(Duration::Micros(10), [&] { doomed_fired = true; });
      sim.Schedule(Duration::Micros(12), [&] { log.push_back(Entry("later", sim.Now())); });
    }
    sim.Schedule(Duration::Micros(5), [&] {
      DomainScope scope(&sim, shard);
      EXPECT_TRUE(sim.Cancel(doomed));
    });
    sim.Run();
    EXPECT_FALSE(doomed_fired) << "workers=" << workers;
    EXPECT_EQ(log, (std::vector<std::string>{Entry("later", TimePoint::Zero() +
                                                               Duration::Micros(12))}))
        << "workers=" << workers;
  }
}

TEST(DomainTest, EventsFiredAndPendingAggregateAllDomains) {
  Simulator sim;
  sim.SetLookahead(Duration::Micros(1));
  const uint32_t d1 = sim.AddDomain();
  const uint32_t d2 = sim.AddDomain();
  sim.SetWorkers(2);
  {
    DomainScope scope(&sim, d1);
    sim.Schedule(Duration::Micros(1), [] {});
    sim.Schedule(Duration::Micros(2), [] {});
  }
  {
    DomainScope scope(&sim, d2);
    sim.Schedule(Duration::Micros(1), [] {});
  }
  sim.Schedule(Duration::Micros(3), [] {});  // Global.
  EXPECT_EQ(sim.pending_events(), 4u);
  EXPECT_EQ(sim.Run(), 4u);
  EXPECT_EQ(sim.events_fired(), 4u);
  EXPECT_EQ(sim.pending_events(), 0u);
}

}  // namespace
}  // namespace e2e
