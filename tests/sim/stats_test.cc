#include "src/sim/stats.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/sim/random.h"

namespace e2e {
namespace {

TEST(RunningStatsTest, MatchesClosedForm) {
  RunningStats stats;
  const std::vector<double> xs = {2, 4, 4, 4, 5, 5, 7, 9};
  for (double x : xs) {
    stats.Add(x);
  }
  EXPECT_EQ(stats.count(), 8);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_DOUBLE_EQ(stats.sum(), 40.0);
  EXPECT_NEAR(stats.variance(), 32.0 / 7.0, 1e-12);  // Sample variance.
  EXPECT_EQ(stats.min(), 2);
  EXPECT_EQ(stats.max(), 9);
}

TEST(RunningStatsTest, EmptyIsZero) {
  RunningStats stats;
  EXPECT_EQ(stats.count(), 0);
  EXPECT_EQ(stats.mean(), 0);
  EXPECT_EQ(stats.variance(), 0);
}

TEST(RunningStatsTest, MergeEqualsCombinedStream) {
  Rng rng(5);
  RunningStats all;
  RunningStats left;
  RunningStats right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.Normal(3, 7);
    all.Add(x);
    (i % 2 == 0 ? left : right).Add(x);
  }
  left.Merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-6);
  EXPECT_EQ(left.min(), all.min());
  EXPECT_EQ(left.max(), all.max());
}

TEST(RunningStatsTest, MergeWithEmptySides) {
  RunningStats a;
  RunningStats b;
  b.Add(5);
  a.Merge(b);  // Empty <- nonempty.
  EXPECT_EQ(a.count(), 1);
  EXPECT_EQ(a.mean(), 5);
  RunningStats c;
  a.Merge(c);  // Nonempty <- empty.
  EXPECT_EQ(a.count(), 1);
}

TEST(LogHistogramTest, QuantilesOnUniformData) {
  LogHistogram hist(1.0, 1e7, 200);
  for (int i = 1; i <= 10000; ++i) {
    hist.Add(i);
  }
  EXPECT_EQ(hist.count(), 10000);
  // Log-bucket upper bounds overshoot by at most one bucket width (~1.2%).
  EXPECT_NEAR(hist.Percentile(50), 5000, 5000 * 0.02);
  EXPECT_NEAR(hist.Percentile(99), 9900, 9900 * 0.02);
  EXPECT_NEAR(hist.Quantile(1.0), 10000, 1);
  EXPECT_DOUBLE_EQ(hist.mean(), 5000.5);
}

TEST(LogHistogramTest, UnderflowCountsTowardLowQuantiles) {
  LogHistogram hist(100.0, 1e6, 100);
  for (int i = 0; i < 90; ++i) {
    hist.Add(1.0);  // Below min_value.
  }
  for (int i = 0; i < 10; ++i) {
    hist.Add(1000.0);
  }
  EXPECT_EQ(hist.Quantile(0.5), 100.0);  // Clamped to min_value.
  EXPECT_NEAR(hist.Quantile(0.95), 1000.0, 15.0);
}

TEST(LogHistogramTest, QuantileNeverExceedsMaxSeen) {
  LogHistogram hist;
  hist.Add(123.0);
  EXPECT_EQ(hist.Quantile(1.0), 123.0);
  EXPECT_EQ(hist.max_seen(), 123.0);
}

TEST(LogHistogramTest, EmptyAndClear) {
  LogHistogram hist;
  EXPECT_EQ(hist.Quantile(0.5), 0.0);
  hist.Add(5);
  hist.Clear();
  EXPECT_EQ(hist.count(), 0);
  EXPECT_EQ(hist.Quantile(0.5), 0.0);
  EXPECT_EQ(hist.underflow(), 0);
  EXPECT_EQ(hist.overflow(), 0);
}

TEST(LogHistogramTest, QuantileZeroTracksSmallestSample) {
  // p0 must be the smallest sample's bucket bound, not min_value_: with no
  // sample anywhere near min_value, returning it would invent a value no
  // sample is at or below (the old ceil(0)==0 target bug).
  LogHistogram hist(1.0, 1e7, 100);
  hist.Add(5000.0);
  hist.Add(9000.0);
  EXPECT_NEAR(hist.Quantile(0.0), 5000.0, 5000.0 * 0.03);
  EXPECT_GE(hist.Quantile(0.0), 5000.0);  // Bucket upper bound.
}

TEST(LogHistogramTest, QuantileZeroWithUnderflowIsMinValue) {
  LogHistogram hist(100.0, 1e6, 100);
  hist.Add(1.0);  // Underflows: clamped to the min_value bucket.
  hist.Add(5000.0);
  EXPECT_EQ(hist.underflow(), 1);
  EXPECT_EQ(hist.Quantile(0.0), 100.0);
}

TEST(LogHistogramTest, QuantileOneIsMaxSeenWithOverflow) {
  LogHistogram hist(1.0, 1e3, 10);
  hist.Add(10.0);
  hist.Add(5e6);  // Far above max_value: lands in the overflow tail.
  EXPECT_EQ(hist.overflow(), 1);
  EXPECT_EQ(hist.count(), 2);
  // The overflow tail reports the exact max rather than a stale bucket
  // bound ~1e3 that would underreport the tail by orders of magnitude.
  EXPECT_EQ(hist.Quantile(1.0), 5e6);
  EXPECT_DOUBLE_EQ(hist.mean(), (10.0 + 5e6) / 2);
  // Low quantiles are unaffected by the overflow sample.
  EXPECT_NEAR(hist.Quantile(0.0), 10.0, 10.0 * 0.3);
}

TEST(LogHistogramTest, MergeCombinesOverflowAndUnderflow) {
  LogHistogram a(10.0, 1e3, 10);
  LogHistogram b(10.0, 1e3, 10);
  a.Add(1.0);   // Underflow in a.
  b.Add(1e6);   // Overflow in b.
  b.Add(50.0);
  a.Merge(b);
  EXPECT_EQ(a.count(), 3);
  EXPECT_EQ(a.underflow(), 1);
  EXPECT_EQ(a.overflow(), 1);
  EXPECT_EQ(a.Quantile(0.0), 10.0);  // Underflow clamps to min_value.
  EXPECT_EQ(a.Quantile(1.0), 1e6);
}

TEST(TimeWeightedTest, PaperWorkedExample) {
  // 1 item for 10 us then 4 items for 20 us -> average 3.
  TimeWeighted tw(TimePoint::Zero(), 1.0);
  tw.Set(TimePoint::FromNanos(10000), 4.0);
  EXPECT_DOUBLE_EQ(tw.AverageUntil(TimePoint::FromNanos(30000)), 3.0);
}

TEST(TimeWeightedTest, NoElapsedTimeReturnsCurrent) {
  TimeWeighted tw(TimePoint::Zero(), 7.0);
  EXPECT_DOUBLE_EQ(tw.AverageUntil(TimePoint::Zero()), 7.0);
}

TEST(TimeWeightedTest, ResetWindowDropsHistory) {
  TimeWeighted tw(TimePoint::Zero(), 100.0);
  tw.Set(TimePoint::FromNanos(1000000), 0.0);
  tw.ResetWindow(TimePoint::FromNanos(1000000));
  EXPECT_DOUBLE_EQ(tw.AverageUntil(TimePoint::FromNanos(2000000)), 0.0);
}

}  // namespace
}  // namespace e2e
