#include "src/model/batch_model.h"

#include <gtest/gtest.h>

namespace e2e {
namespace {

BatchModelParams Params(double c) {
  BatchModelParams params;  // n=3, alpha=2, beta=4 — the paper's Figure 1.
  params.c = c;
  return params;
}

TEST(BatchModelTest, ServerSideTimesMatchTheFigure) {
  const BatchComparison cmp = CompareBatching(Params(1));
  // Batched: one batch of 3 finishes at n*alpha + beta = 10.
  EXPECT_EQ(cmp.batched.emit_times, (std::vector<double>{10, 10, 10}));
  // Unbatched: i * (alpha + beta) = 6, 12, 18.
  EXPECT_EQ(cmp.unbatched.emit_times, (std::vector<double>{6, 12, 18}));
}

TEST(BatchModelTest, EmissionTimesAreIndependentOfClientCost) {
  // The crux of Figure 1: the server's view is identical in every panel.
  for (double c : {1.0, 3.0, 5.0}) {
    const BatchComparison cmp = CompareBatching(Params(c));
    EXPECT_EQ(cmp.batched.emit_times, CompareBatching(Params(1)).batched.emit_times);
    EXPECT_EQ(cmp.unbatched.emit_times, CompareBatching(Params(1)).unbatched.emit_times);
  }
}

TEST(BatchModelTest, Panel1aBatchingImprovesBoth) {
  const BatchComparison cmp = CompareBatching(Params(1));
  EXPECT_EQ(cmp.batched.completion_times, (std::vector<double>{11, 12, 13}));
  EXPECT_EQ(cmp.unbatched.completion_times, (std::vector<double>{7, 13, 19}));
  EXPECT_DOUBLE_EQ(cmp.batched.avg_latency, 12);
  EXPECT_DOUBLE_EQ(cmp.unbatched.avg_latency, 13);
  EXPECT_TRUE(cmp.BatchingImprovesLatency());
  EXPECT_TRUE(cmp.BatchingImprovesThroughput());
}

TEST(BatchModelTest, Panel1cMixedOutcome) {
  const BatchComparison cmp = CompareBatching(Params(3));
  EXPECT_DOUBLE_EQ(cmp.batched.avg_latency, 16);
  EXPECT_DOUBLE_EQ(cmp.unbatched.avg_latency, 15);
  EXPECT_FALSE(cmp.BatchingImprovesLatency());
  EXPECT_TRUE(cmp.BatchingImprovesThroughput());  // Makespan 19 vs 21.
}

TEST(BatchModelTest, Panel1bBatchingDegradesBoth) {
  const BatchComparison cmp = CompareBatching(Params(5));
  EXPECT_DOUBLE_EQ(cmp.batched.avg_latency, 20);
  EXPECT_DOUBLE_EQ(cmp.unbatched.avg_latency, 17);
  EXPECT_FALSE(cmp.BatchingImprovesLatency());
  EXPECT_FALSE(cmp.BatchingImprovesThroughput());
}

TEST(BatchModelTest, ClientSerializationQueuesResponses) {
  // With a very slow client, completion spacing equals c regardless of
  // emission times.
  BatchModelParams params = Params(100);
  const BatchModelResult result = EvaluateBatchModel(params, false);
  EXPECT_DOUBLE_EQ(result.completion_times[1] - result.completion_times[0], 100);
  EXPECT_DOUBLE_EQ(result.completion_times[2] - result.completion_times[1], 100);
}

TEST(BatchModelTest, ZeroClientCostMakesBatchedCompletionsSimultaneous) {
  BatchModelParams params = Params(0);
  const BatchModelResult result = EvaluateBatchModel(params, true);
  EXPECT_EQ(result.completion_times, (std::vector<double>{10, 10, 10}));
  EXPECT_DOUBLE_EQ(result.throughput, 0.3);
}

// Property: sweeping c finely, batching's latency advantage is monotone
// non-increasing in c — the paper's core claim that the client-side cost
// flips the verdict exactly once.
class BatchModelSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(BatchModelSweepTest, AdvantageDecreasesMonotonicallyInC) {
  BatchModelParams params;
  params.n = 2 + GetParam();       // Sweep n as well.
  params.alpha = 1 + GetParam() % 3;
  params.beta = 4;
  double previous_advantage = 1e18;
  for (double c = 0; c <= 10; c += 0.25) {
    params.c = c;
    const BatchComparison cmp = CompareBatching(params);
    const double advantage = cmp.unbatched.avg_latency - cmp.batched.avg_latency;
    EXPECT_LE(advantage, previous_advantage + 1e-12) << "n=" << params.n << " c=" << c;
    previous_advantage = advantage;
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, BatchModelSweepTest, ::testing::Range(0, 6));

}  // namespace
}  // namespace e2e
