#include "src/core/units.h"

#include <gtest/gtest.h>

#include "src/core/endpoint_queues.h"

namespace e2e {
namespace {

TEST(UnitsTest, NamesAreDistinctAndStable) {
  EXPECT_STREQ(UnitModeName(UnitMode::kBytes), "bytes");
  EXPECT_STREQ(UnitModeName(UnitMode::kPackets), "packets");
  EXPECT_STREQ(UnitModeName(UnitMode::kSyscalls), "syscalls");
  EXPECT_STREQ(UnitModeName(UnitMode::kHints), "hints");
  EXPECT_STREQ(QueueKindName(QueueKind::kUnacked), "unacked");
  EXPECT_STREQ(QueueKindName(QueueKind::kUnread), "unread");
  EXPECT_STREQ(QueueKindName(QueueKind::kAckDelay), "ackdelay");
}

TEST(UnitsTest, KernelModesExcludeHints) {
  for (UnitMode mode : kKernelUnitModes) {
    EXPECT_NE(mode, UnitMode::kHints);
  }
  EXPECT_EQ(kKernelUnitModes.size(), 3u);
}

TEST(EndpointQueuesTest, QueuesAreIndependentAcrossKindAndMode) {
  EndpointQueues queues(TimePoint::Zero());
  queues.Track(QueueKind::kUnacked, UnitMode::kBytes, TimePoint::FromNanos(1000), 100);
  queues.Track(QueueKind::kUnread, UnitMode::kSyscalls, TimePoint::FromNanos(1000), 2);
  EXPECT_EQ(queues.Get(QueueKind::kUnacked, UnitMode::kBytes).size(), 100);
  EXPECT_EQ(queues.Get(QueueKind::kUnacked, UnitMode::kSyscalls).size(), 0);
  EXPECT_EQ(queues.Get(QueueKind::kUnread, UnitMode::kSyscalls).size(), 2);
  EXPECT_EQ(queues.Get(QueueKind::kAckDelay, UnitMode::kBytes).size(), 0);
}

TEST(EndpointQueuesTest, SnapshotAllAdvancesToRequestedTime) {
  EndpointQueues queues(TimePoint::Zero());
  queues.Track(QueueKind::kUnread, UnitMode::kBytes, TimePoint::Zero(), 10);
  const EndpointSnapshot snap = queues.SnapshotAll(UnitMode::kBytes, TimePoint::FromNanos(5000));
  EXPECT_EQ(snap.unread.time, TimePoint::FromNanos(5000));
  EXPECT_EQ(snap.unread.integral, 10 * 5000);
  EXPECT_EQ(snap.unacked.time, TimePoint::FromNanos(5000));
}

TEST(EndpointQueuesTest, SnapshotGetMatchesFields) {
  EndpointQueues queues;
  queues.Track(QueueKind::kAckDelay, UnitMode::kPackets, TimePoint::FromNanos(10), 1);
  queues.Track(QueueKind::kAckDelay, UnitMode::kPackets, TimePoint::FromNanos(20), -1);
  const EndpointSnapshot snap = queues.SnapshotAll(UnitMode::kPackets, TimePoint::FromNanos(30));
  EXPECT_EQ(snap.Get(QueueKind::kAckDelay).total, 1);
  EXPECT_EQ(snap.Get(QueueKind::kUnacked).total, 0);
}

}  // namespace
}  // namespace e2e
