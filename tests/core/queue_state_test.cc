#include "src/core/queue_state.h"

#include <gtest/gtest.h>

#include <deque>
#include <tuple>
#include <vector>

#include "src/sim/random.h"

namespace e2e {
namespace {

TimePoint Us(int64_t us) { return TimePoint::FromNanos(us * 1000); }

TEST(QueueStateTest, PaperWorkedExample) {
  // §3.1: one item for 10 us, then four items for 20 us -> Q = 3.
  QueueState qs(Us(0));
  qs.Track(Us(0), +1);
  qs.Track(Us(10), +3);
  qs.Track(Us(30), -4);
  const QueueAverages avgs = GetAvgs(QueueSnapshot{Us(0), 0, 0}, qs.Snapshot());
  EXPECT_DOUBLE_EQ(avgs.avg_occupancy, 3.0);
  EXPECT_DOUBLE_EQ(avgs.throughput, 4.0 / 30e-6);
  ASSERT_TRUE(avgs.delay.has_value());
  // Little's law: D = Q / lambda = 3 / (4/30us) = 22.5 us.
  EXPECT_DOUBLE_EQ(avgs.delay->ToMicros(), 22.5);
}

TEST(QueueStateTest, TotalCountsOnlyDepartures) {
  QueueState qs;
  qs.Track(Us(1), +10);
  EXPECT_EQ(qs.total(), 0);
  qs.Track(Us(2), -3);
  qs.Track(Us(3), +5);
  qs.Track(Us(4), -7);
  EXPECT_EQ(qs.total(), 10);
  EXPECT_EQ(qs.size(), 5);
}

TEST(QueueStateTest, AdvanceToAccruesIntegralWithoutSizeChange) {
  QueueState qs;
  qs.Track(Us(0), +2);
  qs.AdvanceTo(Us(5));
  EXPECT_EQ(qs.size(), 2);
  EXPECT_EQ(qs.integral(), 2 * 5000);  // item-ns
}

TEST(QueueStateTest, ResetClearsEverything) {
  QueueState qs;
  qs.Track(Us(1), +4);
  qs.Track(Us(2), -1);
  qs.Reset(Us(10));
  EXPECT_EQ(qs.size(), 0);
  EXPECT_EQ(qs.total(), 0);
  EXPECT_EQ(qs.integral(), 0);
  EXPECT_EQ(qs.time(), Us(10));
}

TEST(QueueStateTest, BackwardsTimestampClampedAndCounted) {
  QueueState qs;
  qs.Track(Us(10), +2);
  qs.Track(Us(4), +1);  // Clock ran backwards: clamped to t=10.
  EXPECT_EQ(qs.time_violations(), 1u);
  EXPECT_EQ(qs.size(), 3);
  EXPECT_EQ(qs.time(), Us(10));
  // No negative area leaked into the integral; it keeps accruing forward.
  qs.AdvanceTo(Us(20));
  EXPECT_EQ(qs.integral(), 3 * 10000);
}

TEST(QueueStateTest, NegativeSizeClampedAndCounted) {
  QueueState qs;
  qs.Track(Us(0), +2);
  qs.Track(Us(5), -6);  // Removes more than the queue holds.
  EXPECT_EQ(qs.size_violations(), 1u);
  EXPECT_EQ(qs.size(), 0);
  EXPECT_EQ(qs.total(), 6);  // Departures still counted as presented.
  // A clamped (empty) queue accrues no occupancy.
  qs.AdvanceTo(Us(15));
  EXPECT_EQ(qs.integral(), 2 * 5000);
}

TEST(QueueStateTest, ResetClearsViolationCounters) {
  QueueState qs;
  qs.Track(Us(10), -1);
  qs.Track(Us(5), 0);
  EXPECT_EQ(qs.size_violations(), 1u);
  EXPECT_EQ(qs.time_violations(), 1u);
  qs.Reset(Us(20));
  EXPECT_EQ(qs.size_violations(), 0u);
  EXPECT_EQ(qs.time_violations(), 0u);
}

TEST(GetAvgsTest, ZeroIntervalYieldsZeroAverages) {
  QueueState qs;
  qs.Track(Us(1), +1);
  const QueueSnapshot snap = qs.Snapshot();
  const QueueAverages avgs = GetAvgs(snap, snap);
  EXPECT_EQ(avgs.avg_occupancy, 0);
  EXPECT_EQ(avgs.throughput, 0);
  EXPECT_FALSE(avgs.delay.has_value());
}

TEST(GetAvgsTest, NoDeparturesMeansNoDelayEstimate) {
  QueueState qs(Us(0));
  qs.Track(Us(0), +5);
  qs.AdvanceTo(Us(100));
  const QueueAverages avgs = GetAvgs(QueueSnapshot{Us(0), 0, 0}, qs.Snapshot());
  EXPECT_DOUBLE_EQ(avgs.avg_occupancy, 5.0);
  EXPECT_EQ(avgs.throughput, 0);
  EXPECT_FALSE(avgs.delay.has_value());
  EXPECT_EQ(avgs.DelayOr(Duration::Micros(9)), Duration::Micros(9));
}

TEST(GetAvgsTest, DelayIsIntervalLocal) {
  // Deltas between snapshots isolate the interval: history before `prev`
  // must not affect the result.
  QueueState qs(Us(0));
  qs.Track(Us(0), +100);
  qs.Track(Us(50), -100);  // Burst fully drained before the interval.
  const QueueSnapshot prev = qs.Snapshot();
  qs.Track(Us(60), +2);
  qs.Track(Us(80), -2);
  qs.AdvanceTo(Us(100));
  const QueueAverages avgs = GetAvgs(prev, qs.Snapshot());
  // 2 items for 20 us over a 50 us window: Q = 0.8, lambda = 2/50us.
  EXPECT_DOUBLE_EQ(avgs.avg_occupancy, 0.8);
  EXPECT_DOUBLE_EQ(avgs.delay->ToMicros(), 20.0);
}

// Property: for a FIFO queue with known element residence times, the
// Little's-law delay from GETAVGS equals the true mean residence time once
// the queue drains (L = λW exactly, not just asymptotically).
TEST(QueueStateProperty, LittlesLawMatchesTrueMeanDelayOnDrainedQueue) {
  Rng rng(71);
  for (int trial = 0; trial < 50; ++trial) {
    QueueState qs(Us(0));
    std::deque<int64_t> entry_times;
    std::vector<int64_t> residences;
    int64_t now_us = 0;
    const int ops = 200;
    for (int i = 0; i < ops; ++i) {
      now_us += rng.UniformInt(0, 50);
      if (!entry_times.empty() && rng.Bernoulli(0.5)) {
        residences.push_back(now_us - entry_times.front());
        entry_times.pop_front();
        qs.Track(Us(now_us), -1);
      } else {
        entry_times.push_back(now_us);
        qs.Track(Us(now_us), +1);
      }
    }
    while (!entry_times.empty()) {  // Drain.
      now_us += rng.UniformInt(1, 50);
      residences.push_back(now_us - entry_times.front());
      entry_times.pop_front();
      qs.Track(Us(now_us), -1);
    }
    double true_mean_us = 0;
    for (int64_t r : residences) {
      true_mean_us += static_cast<double>(r);
    }
    true_mean_us /= static_cast<double>(residences.size());

    const QueueAverages avgs = GetAvgs(QueueSnapshot{Us(0), 0, 0}, qs.Snapshot());
    ASSERT_TRUE(avgs.delay.has_value());
    // Exact up to the 1 ns truncation of the Duration result.
    EXPECT_NEAR(avgs.delay->ToMicros(), true_mean_us, 2e-3) << "trial " << trial;
  }
}

// Property: snapshot deltas compose — averages over [a, c] equal the
// time-weighted combination of [a, b] and [b, c] for any split point.
class SnapshotCompositionTest : public ::testing::TestWithParam<int> {};

TEST_P(SnapshotCompositionTest, SplitsCompose) {
  Rng rng(100 + GetParam());
  QueueState qs(Us(0));
  std::vector<QueueSnapshot> snaps;
  int64_t now_us = 0;
  int64_t size = 0;
  snaps.push_back(qs.Snapshot());
  for (int i = 0; i < 300; ++i) {
    now_us += rng.UniformInt(1, 20);
    int64_t delta = rng.UniformInt(-3, 3);
    if (size + delta < 0) {
      delta = -size;
    }
    size += delta;
    qs.Track(Us(now_us), delta);
    if (i % 30 == 29) {
      qs.AdvanceTo(Us(now_us));
      snaps.push_back(qs.Snapshot());
    }
  }
  ASSERT_GE(snaps.size(), 3u);
  for (size_t mid = 1; mid + 1 < snaps.size(); ++mid) {
    const QueueSnapshot& a = snaps.front();
    const QueueSnapshot& b = snaps[mid];
    const QueueSnapshot& c = snaps.back();
    const QueueAverages whole = GetAvgs(a, c);
    const QueueAverages left = GetAvgs(a, b);
    const QueueAverages right = GetAvgs(b, c);
    const double t1 = (b.time - a.time).ToSeconds();
    const double t2 = (c.time - b.time).ToSeconds();
    EXPECT_NEAR(whole.avg_occupancy,
                (left.avg_occupancy * t1 + right.avg_occupancy * t2) / (t1 + t2), 1e-9);
    EXPECT_NEAR(whole.throughput, (left.throughput * t1 + right.throughput * t2) / (t1 + t2),
                1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SnapshotCompositionTest, ::testing::Range(0, 10));

}  // namespace
}  // namespace e2e
