// Randomized round-trip coverage for the wire format and the segment/option
// codec: any payload the encoder produces must decode to an identical value,
// and no random byte soup may crash the decoders.

#include <gtest/gtest.h>

#include "src/core/wire_format.h"
#include "src/sim/random.h"
#include "src/tcp/segment_codec.h"

namespace e2e {
namespace {

WireCounters RandomCounters(Rng& rng) {
  return WireCounters{static_cast<uint32_t>(rng.NextU64()), static_cast<uint32_t>(rng.NextU64()),
                      static_cast<uint32_t>(rng.NextU64())};
}

WirePayload RandomPayload(Rng& rng) {
  WirePayload payload;
  // Mode 3 (kHints) never travels on the wire and is rejected by DecodePayload.
  payload.mode = static_cast<UnitMode>(rng.UniformInt(0, 2));
  payload.unacked = RandomCounters(rng);
  payload.unread = RandomCounters(rng);
  payload.ackdelay = RandomCounters(rng);
  if (rng.Bernoulli(0.5)) {
    payload.hint = RandomCounters(rng);
  }
  return payload;
}

class WireFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(WireFuzzTest, PayloadRoundTripsForArbitraryCounterValues) {
  Rng rng(GetParam());
  for (int i = 0; i < 2000; ++i) {
    const WirePayload payload = RandomPayload(rng);
    uint8_t buf[kWirePayloadMaxSize];
    const size_t n = EncodePayload(payload, buf, sizeof(buf));
    ASSERT_GT(n, 0u);
    const auto decoded = DecodePayload(buf, n);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, payload);
  }
}

TEST_P(WireFuzzTest, SegmentHeaderRoundTripsForArbitraryFields) {
  Rng rng(GetParam() + 1000);
  for (int i = 0; i < 1000; ++i) {
    TcpSegment seg;
    seg.conn_id = static_cast<uint64_t>(rng.UniformInt(0, 0x7FFF));
    seg.from_a = rng.Bernoulli(0.5);
    seg.seq = static_cast<uint32_t>(rng.NextU64());
    seg.ack = static_cast<uint32_t>(rng.NextU64());
    seg.len = static_cast<uint32_t>(rng.UniformInt(0, 65535));
    seg.flags = static_cast<uint16_t>((rng.Bernoulli(0.9) ? kFlagAck : 0) |
                                      (rng.Bernoulli(0.3) ? kFlagPsh : 0));
    seg.window = static_cast<uint32_t>(rng.UniformInt(0, 0xFFFF));
    if (rng.Bernoulli(0.5)) {
      WirePayload payload = RandomPayload(rng);
      payload.hint.reset();  // Keep within the 40-byte option space.
      seg.e2e_option = payload;
    }
    const auto encoded = EncodeSegmentHeader(seg);
    ASSERT_TRUE(encoded.has_value());
    const auto decoded =
        DecodeSegmentHeader(encoded->header.data(), encoded->header.size(), seg.len);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->conn_id, seg.conn_id);
    EXPECT_EQ(decoded->from_a, seg.from_a);
    EXPECT_EQ(decoded->seq, seg.seq);
    EXPECT_EQ(decoded->ack, seg.ack);
    EXPECT_EQ(decoded->flags, seg.flags);
    EXPECT_EQ(decoded->window, seg.window);
    EXPECT_EQ(decoded->e2e_option, seg.e2e_option);
  }
}

TEST_P(WireFuzzTest, DecodersNeverCrashOnRandomBytes) {
  Rng rng(GetParam() + 2000);
  uint8_t buf[128];
  for (int i = 0; i < 5000; ++i) {
    const size_t len = static_cast<size_t>(rng.UniformInt(0, sizeof(buf)));
    for (size_t j = 0; j < len; ++j) {
      buf[j] = static_cast<uint8_t>(rng.NextU64());
    }
    // Either outcome (nullopt or a parsed value) is fine; no UB/crash.
    (void)DecodePayload(buf, len);
    (void)DecodeSegmentHeader(buf, len, 0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WireFuzzTest, ::testing::Values(1u, 2u, 3u));

}  // namespace
}  // namespace e2e
