#include "src/core/policy.h"

#include <gtest/gtest.h>

namespace e2e {
namespace {

PerfSample Sample(double latency_us, double tput) {
  return PerfSample{Duration::MicrosF(latency_us), tput};
}

TEST(MinLatencyPolicyTest, PrefersLowerLatencyRegardlessOfThroughput) {
  MinLatencyPolicy policy;
  EXPECT_TRUE(policy.Prefers(Sample(50, 1), Sample(60, 1000000)));
  EXPECT_FALSE(policy.Prefers(Sample(60, 1000000), Sample(50, 1)));
}

TEST(SloThroughputPolicyTest, CompliantPointsRankByThroughput) {
  SloThroughputPolicy policy(Duration::Micros(500));
  EXPECT_TRUE(policy.Prefers(Sample(400, 2000), Sample(100, 1000)));
}

TEST(SloThroughputPolicyTest, LatencyBreaksThroughputTies) {
  SloThroughputPolicy policy(Duration::Micros(500));
  EXPECT_TRUE(policy.Prefers(Sample(100, 1000), Sample(400, 1000)));
}

TEST(SloThroughputPolicyTest, AnyCompliantBeatsAnyViolator) {
  SloThroughputPolicy policy(Duration::Micros(500));
  EXPECT_TRUE(policy.Prefers(Sample(499, 1), Sample(501, 1000000)));
}

TEST(SloThroughputPolicyTest, ViolatorsRankByLowerLatency) {
  SloThroughputPolicy policy(Duration::Micros(500));
  EXPECT_TRUE(policy.Prefers(Sample(600, 1), Sample(5000, 1000000)));
}

TEST(WeightedPolicyTest, TradesOffLinearly) {
  WeightedPolicy policy(/*throughput_weight=*/1.0, /*latency_weight=*/1.0);
  // +1000 RPS is worth +1 score; +1 us latency costs 1 score.
  EXPECT_GT(policy.Score(Sample(100, 102000)), policy.Score(Sample(100, 100000)));
  EXPECT_TRUE(policy.Prefers(Sample(100, 102000), Sample(101, 102000)));
}

// Property: every policy must be monotone — improving one metric while
// holding the other fixed never lowers the score.
class PolicyMonotonicityTest : public ::testing::TestWithParam<int> {
 protected:
  const BatchPolicy& policy() const {
    switch (GetParam()) {
      case 0:
        return min_latency_;
      case 1:
        return slo_;
      default:
        return weighted_;
    }
  }
  MinLatencyPolicy min_latency_;
  SloThroughputPolicy slo_{Duration::Micros(500)};
  WeightedPolicy weighted_{1.0, 0.5};
};

TEST_P(PolicyMonotonicityTest, LowerLatencyNeverHurts) {
  for (double tput : {100.0, 10000.0, 1e6}) {
    for (double lat : {10.0, 100.0, 499.0, 501.0, 5000.0}) {
      EXPECT_GE(policy().Score(Sample(lat * 0.9, tput)), policy().Score(Sample(lat, tput)))
          << policy().name() << " lat=" << lat << " tput=" << tput;
    }
  }
}

TEST_P(PolicyMonotonicityTest, HigherThroughputNeverHurts) {
  for (double tput : {100.0, 10000.0, 1e6}) {
    for (double lat : {10.0, 499.0, 501.0, 5000.0}) {
      EXPECT_GE(policy().Score(Sample(lat, tput * 1.1)), policy().Score(Sample(lat, tput)))
          << policy().name() << " lat=" << lat << " tput=" << tput;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, PolicyMonotonicityTest, ::testing::Range(0, 3));

}  // namespace
}  // namespace e2e
