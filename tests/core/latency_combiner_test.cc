#include "src/core/latency_combiner.h"

#include <gtest/gtest.h>

namespace e2e {
namespace {

QueueAverages Avg(double delay_us, double tput = 1000.0) {
  QueueAverages avgs;
  avgs.throughput = tput;
  avgs.delay = Duration::MicrosF(delay_us);
  avgs.avg_occupancy = delay_us * tput / 1e6;
  return avgs;
}

QueueAverages NoTraffic() { return QueueAverages{}; }

TEST(CombineLatencyTest, ImplementsThePaperFormula) {
  // L ≈ L_unacked^local − L_ackdelay^remote + L_unread^local + L_unread^remote
  EndpointAverages local{Avg(100), Avg(10), Avg(3)};
  EndpointAverages remote{Avg(50), Avg(20), Avg(40)};
  const auto latency = CombineLatency(local, remote);
  ASSERT_TRUE(latency.has_value());
  EXPECT_DOUBLE_EQ(latency->ToMicros(), 100 - 40 + 10 + 20);
}

TEST(CombineLatencyTest, RequiresLocalUnackedTraffic) {
  EndpointAverages local{NoTraffic(), Avg(10), Avg(3)};
  EndpointAverages remote{Avg(50), Avg(20), Avg(40)};
  EXPECT_FALSE(CombineLatency(local, remote).has_value());
}

TEST(CombineLatencyTest, IdleSecondaryQueuesContributeZero) {
  EndpointAverages local{Avg(100), NoTraffic(), NoTraffic()};
  EndpointAverages remote{NoTraffic(), NoTraffic(), NoTraffic()};
  const auto latency = CombineLatency(local, remote);
  ASSERT_TRUE(latency.has_value());
  EXPECT_DOUBLE_EQ(latency->ToMicros(), 100);
}

TEST(CombineLatencyTest, ClampsNegativeResults) {
  // A large remote ack delay can make the approximation go negative.
  EndpointAverages local{Avg(10), NoTraffic(), NoTraffic()};
  EndpointAverages remote{NoTraffic(), NoTraffic(), Avg(500)};
  const auto latency = CombineLatency(local, remote);
  ASSERT_TRUE(latency.has_value());
  EXPECT_EQ(*latency, Duration::Zero());
}

TEST(EstimateEndToEndTest, TakesMaxOfBothOrientations) {
  EndpointAverages a{Avg(100), Avg(5), Avg(1)};   // From A: 100 - 1? ...
  EndpointAverages b{Avg(30), Avg(8), Avg(2)};
  // From A: 100 - 2 + 5 + 8 = 111. From B: 30 - 1 + 8 + 5 = 42.
  const E2eEstimate est = EstimateEndToEnd(a, b);
  ASSERT_TRUE(est.valid());
  EXPECT_DOUBLE_EQ(est.latency->ToMicros(), 111);
  EXPECT_DOUBLE_EQ(est.a_send_throughput, 1000);
  EXPECT_DOUBLE_EQ(est.b_send_throughput, 1000);
}

TEST(EstimateEndToEndTest, OneSidedTrafficStillEstimates) {
  EndpointAverages a{Avg(100), NoTraffic(), NoTraffic()};
  EndpointAverages b{NoTraffic(), Avg(8), NoTraffic()};
  const E2eEstimate est = EstimateEndToEnd(a, b);
  ASSERT_TRUE(est.valid());
  EXPECT_DOUBLE_EQ(est.latency->ToMicros(), 108);  // Only orientation A valid.
}

TEST(EstimateEndToEndTest, NoTrafficAnywhereIsInvalid) {
  EndpointAverages idle{NoTraffic(), NoTraffic(), NoTraffic()};
  EXPECT_FALSE(EstimateEndToEnd(idle, idle).valid());
}

TEST(GetEndpointAvgsTest, AppliesGetAvgsPerQueue) {
  auto snap_at = [](int64_t us, int64_t total, int64_t integral_item_us) {
    QueueSnapshot snap;
    snap.time = TimePoint::FromNanos(us * 1000);
    snap.total = total;
    snap.integral = integral_item_us * 1000;
    return snap;
  };
  EndpointSnapshot prev{snap_at(0, 0, 0), snap_at(0, 0, 0), snap_at(0, 0, 0)};
  EndpointSnapshot cur{snap_at(100, 10, 500), snap_at(100, 20, 400), snap_at(100, 0, 0)};
  const EndpointAverages avgs = GetEndpointAvgs(prev, cur);
  EXPECT_DOUBLE_EQ(avgs.unacked.delay->ToMicros(), 50);  // 500/10.
  EXPECT_DOUBLE_EQ(avgs.unread.delay->ToMicros(), 20);   // 400/20.
  EXPECT_FALSE(avgs.ackdelay.delay.has_value());
}

TEST(AverageEstimatesTest, AveragesValidsAndSumsThroughputs) {
  E2eEstimate estimates[3];
  estimates[0].latency = Duration::Micros(100);
  estimates[0].a_send_throughput = 10;
  estimates[1].latency = Duration::Micros(300);
  estimates[1].a_send_throughput = 20;
  estimates[2] = E2eEstimate{};  // Invalid; skipped for latency.
  estimates[2].b_send_throughput = 5;
  const E2eEstimate avg = AverageEstimates(estimates, 3);
  ASSERT_TRUE(avg.valid());
  EXPECT_DOUBLE_EQ(avg.latency->ToMicros(), 200);
  EXPECT_DOUBLE_EQ(avg.a_send_throughput, 30);
  EXPECT_DOUBLE_EQ(avg.b_send_throughput, 5);
}

TEST(AverageEstimatesTest, AllInvalidStaysInvalid) {
  E2eEstimate estimates[2];
  EXPECT_FALSE(AverageEstimates(estimates, 2).valid());
}

}  // namespace
}  // namespace e2e
