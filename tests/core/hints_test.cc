#include "src/core/hints.h"

#include <gtest/gtest.h>

namespace e2e {
namespace {

TimePoint Us(int64_t us) { return TimePoint::FromNanos(us * 1000); }

TEST(HintTrackerTest, OutstandingFollowsCreateComplete) {
  HintTracker hints(Us(0));
  EXPECT_EQ(hints.outstanding(), 0);
  hints.Create(Us(1));
  hints.Create(Us(2), 3);
  EXPECT_EQ(hints.outstanding(), 4);
  hints.Complete(Us(3), 2);
  EXPECT_EQ(hints.outstanding(), 2);
  EXPECT_EQ(hints.completed(), 2);
}

TEST(HintTrackerTest, SnapshotDeltaGivesAppPerceivedLatency) {
  HintTracker hints(Us(0));
  const QueueSnapshot before = hints.Snapshot(Us(0));
  // Ten requests, each outstanding for exactly 80 us.
  for (int i = 0; i < 10; ++i) {
    hints.Create(Us(100 * i));
    hints.Complete(Us(100 * i + 80));
  }
  const QueueSnapshot after = hints.Snapshot(Us(1000));
  const QueueAverages avgs = GetAvgs(before, after);
  ASSERT_TRUE(avgs.delay.has_value());
  EXPECT_DOUBLE_EQ(avgs.delay->ToMicros(), 80.0);
  EXPECT_DOUBLE_EQ(avgs.throughput, 10.0 / 1e-3);
}

TEST(HintTrackerTest, OverlappingRequestsAverageCorrectly) {
  HintTracker hints(Us(0));
  // Two overlapping requests: residence 100 us and 300 us -> mean 200 us.
  hints.Create(Us(0));
  hints.Create(Us(50));
  hints.Complete(Us(100));
  hints.Complete(Us(350));
  const QueueAverages avgs = GetAvgs(QueueSnapshot{Us(0), 0, 0}, hints.Snapshot(Us(400)));
  ASSERT_TRUE(avgs.delay.has_value());
  EXPECT_DOUBLE_EQ(avgs.delay->ToMicros(), 200.0);
}

TEST(HintTrackerTest, WireSnapshotCompresses) {
  HintTracker hints(Us(0));
  hints.Create(Us(10));
  hints.Complete(Us(20));
  const WireCounters wire = hints.WireSnapshot(Us(1000));
  EXPECT_EQ(wire.time_us, 1000u);
  EXPECT_EQ(wire.total, 1u);
  EXPECT_EQ(wire.integral_us, 10u);  // 1 item x 10 us.
}

}  // namespace
}  // namespace e2e
