#include "src/core/controller.h"

#include <gtest/gtest.h>

namespace e2e {
namespace {

TimePoint Ms(int64_t ms) { return TimePoint::FromNanos(ms * 1000000); }

PerfSample Sample(double latency_us, double tput = 1000.0) {
  return PerfSample{Duration::MicrosF(latency_us), tput};
}

ControllerConfig FastConfig() {
  ControllerConfig config;
  config.tick = Duration::Millis(1);
  config.min_dwell = Duration::Millis(2);
  config.settle = Duration::Millis(1);
  config.epsilon = 0.0;  // Deterministic unless a test opts in.
  config.stale_after = Duration::Seconds(100);
  config.explore_latency_veto.reset();
  return config;
}

// Feeds ticks where the observed latency depends on the controller's own
// current setting — a closed loop, like the real system.
double RunClosedLoop(ToggleController& controller, double lat_on_us, double lat_off_us,
                     int ticks, int start_ms = 0) {
  int on_count = 0;
  for (int i = 0; i < ticks; ++i) {
    const bool on = controller.batching_on();
    controller.OnTick(Ms(start_ms + i), Sample(on ? lat_on_us : lat_off_us));
    on_count += controller.batching_on() ? 1 : 0;
  }
  return static_cast<double>(on_count) / ticks;
}

TEST(ToggleControllerTest, ExploresUnobservedArmFirst) {
  SloThroughputPolicy policy;
  ToggleController controller(FastConfig(), &policy, Rng(1), /*initial_on=*/false);
  // After the dwell, the never-tried ON arm must be explored.
  controller.OnTick(Ms(0), Sample(100));
  controller.OnTick(Ms(5), Sample(100));
  EXPECT_TRUE(controller.batching_on());
  EXPECT_GE(controller.explorations(), 1u);
}

TEST(ToggleControllerTest, ConvergesToLowerLatencyArmUnderSlo) {
  SloThroughputPolicy policy;
  ToggleController controller(FastConfig(), &policy, Rng(1), /*initial_on=*/true);
  // ON shows 300 us, OFF shows 50 us; both compliant, equal throughput.
  const double duty_on = RunClosedLoop(controller, 300, 50, 300);
  EXPECT_LT(duty_on, 0.1);
  EXPECT_FALSE(controller.batching_on());
}

TEST(ToggleControllerTest, ConvergesToSloCompliantArm) {
  SloThroughputPolicy policy;
  ToggleController controller(FastConfig(), &policy, Rng(1), /*initial_on=*/false);
  // OFF violates the 500 us SLO; ON is compliant.
  const double duty_on = RunClosedLoop(controller, 120, 4000, 300);
  EXPECT_GT(duty_on, 0.9);
  EXPECT_TRUE(controller.batching_on());
}

TEST(ToggleControllerTest, MinDwellPreventsInstantFlapping) {
  ControllerConfig config = FastConfig();
  config.min_dwell = Duration::Millis(50);
  SloThroughputPolicy policy;
  ToggleController controller(config, &policy, Rng(1), /*initial_on=*/false);
  controller.OnTick(Ms(0), Sample(100));
  const uint64_t switches_before = controller.switches();
  for (int i = 1; i < 40; ++i) {
    controller.OnTick(Ms(i), Sample(100));
  }
  // Still within the dwell of the initial state: at most the one switch
  // that the dwell clock started from.
  EXPECT_LE(controller.switches() - switches_before, 1u);
}

TEST(ToggleControllerTest, SettleDiscardsPostSwitchSamples) {
  ControllerConfig config = FastConfig();
  config.settle = Duration::Millis(10);
  SloThroughputPolicy policy;
  ToggleController controller(config, &policy, Rng(1), /*initial_on=*/false);
  controller.OnTick(Ms(0), Sample(100));  // Within settle of construction.
  EXPECT_FALSE(controller.ArmEstimate(false).has_value());
  controller.OnTick(Ms(11), Sample(100));
  ASSERT_TRUE(controller.ArmEstimate(false).has_value());
}

TEST(ToggleControllerTest, EpsilonZeroNeverRandomlyExplores) {
  SloThroughputPolicy policy;
  ToggleController controller(FastConfig(), &policy, Rng(1), /*initial_on=*/false);
  RunClosedLoop(controller, 300, 50, 500);
  // Only the single forced exploration of the unobserved arm.
  EXPECT_EQ(controller.explorations(), 1u);
}

TEST(ToggleControllerTest, EpsilonGreedyKeepsRevisitingOtherArm) {
  ControllerConfig config = FastConfig();
  config.epsilon = 0.2;
  SloThroughputPolicy policy;
  ToggleController controller(config, &policy, Rng(7), /*initial_on=*/false);
  RunClosedLoop(controller, 300, 50, 1000);
  EXPECT_GT(controller.explorations(), 10u);
}

TEST(ToggleControllerTest, StaleArmIsReExplored) {
  ControllerConfig config = FastConfig();
  config.stale_after = Duration::Millis(100);
  SloThroughputPolicy policy;
  ToggleController controller(config, &policy, Rng(1), /*initial_on=*/false);
  RunClosedLoop(controller, 300, 50, 50);  // Converges to OFF.
  EXPECT_FALSE(controller.batching_on());
  const uint64_t explorations = controller.explorations();
  // 200 ms later the ON arm's data is stale; it must be re-probed.
  RunClosedLoop(controller, 300, 50, 10, /*start_ms=*/250);
  EXPECT_GT(controller.explorations(), explorations);
}

TEST(ToggleControllerTest, VetoBlocksExplorationOfUnstableArm) {
  ControllerConfig config = FastConfig();
  config.epsilon = 0.5;  // Would explore aggressively without the veto.
  config.explore_latency_veto = Duration::Millis(1);
  config.veto_memory = Duration::Seconds(10);
  config.stale_after = Duration::Seconds(1);
  SloThroughputPolicy policy;
  ToggleController controller(config, &policy, Rng(7), /*initial_on=*/false);
  // OFF is catastrophic (10 ms), ON is fine. After the first taste of OFF,
  // the veto must pin the controller to ON despite the huge epsilon.
  RunClosedLoop(controller, 120, 10000, 100);
  EXPECT_TRUE(controller.batching_on());
  const uint64_t switches = controller.switches();
  RunClosedLoop(controller, 120, 10000, 200, /*start_ms=*/100);
  EXPECT_EQ(controller.switches(), switches);
}

TEST(ToggleControllerTest, EstimateGapLongerThanStaleAfterHoldsCurrentArm) {
  ControllerConfig config = FastConfig();
  config.stale_after = Duration::Millis(20);
  SloThroughputPolicy policy;
  ToggleController controller(config, &policy, Rng(1), /*initial_on=*/false);
  RunClosedLoop(controller, 300, 50, 50);
  const uint64_t switches = controller.switches();
  // The estimate pipeline goes dark. Within stale_after of the last real
  // sample the controller may still fire a last few staleness probes (it
  // cannot yet know the pipeline is down)...
  for (int i = 0; i < 50; ++i) {
    controller.OnTick(Ms(50 + i), std::nullopt);
  }
  const uint64_t after_grace = controller.switches();
  EXPECT_LE(after_grace - switches, 3u);
  // ...but once no sample has arrived within stale_after, it must hold the
  // current arm — without the hold, both arms stay stale forever and
  // forced exploration would flip them every min_dwell (a thrash loop:
  // ~100 switches over this window).
  for (int i = 50; i < 250; ++i) {
    controller.OnTick(Ms(50 + i), std::nullopt);
  }
  EXPECT_EQ(controller.switches(), after_grace);
  // Once samples resume, normal staleness re-exploration may fire again.
  RunClosedLoop(controller, 300, 50, 10, /*start_ms=*/250);
}

TEST(ToggleControllerTest, FrozenControllerNeverSwitchesOrConsumesSamples) {
  SloThroughputPolicy policy;
  ToggleController controller(FastConfig(), &policy, Rng(1), /*initial_on=*/false);
  RunClosedLoop(controller, 300, 50, 50);  // Converges to OFF.
  const auto off_before = controller.ArmEstimate(false);
  ASSERT_TRUE(off_before.has_value());
  const uint64_t switches = controller.switches();

  controller.SetFrozen(true, Ms(50));
  EXPECT_TRUE(controller.frozen());
  // Poisoned samples while frozen: catastrophic latency that would both
  // flip the decision and wreck the OFF arm's EWMA if consumed.
  for (int i = 0; i < 100; ++i) {
    controller.OnTick(Ms(50 + i), Sample(50000));
  }
  EXPECT_EQ(controller.switches(), switches);
  EXPECT_FALSE(controller.batching_on());
  const auto off_after = controller.ArmEstimate(false);
  ASSERT_TRUE(off_after.has_value());
  EXPECT_DOUBLE_EQ(off_after->latency.ToMicros(), off_before->latency.ToMicros());
}

TEST(ToggleControllerTest, VetoSurvivesFreezeRecoveryCycle) {
  ControllerConfig config = FastConfig();
  config.epsilon = 0.5;
  config.explore_latency_veto = Duration::Millis(1);
  config.veto_memory = Duration::Millis(200);
  config.stale_after = Duration::Millis(50);
  SloThroughputPolicy policy;
  ToggleController controller(config, &policy, Rng(7), /*initial_on=*/false);
  // OFF is catastrophic; after one taste the veto pins the controller ON.
  RunClosedLoop(controller, 120, 10000, 60);
  EXPECT_TRUE(controller.batching_on());
  const uint64_t switches = controller.switches();

  // Health fallback: frozen for 300 ms — far beyond veto_memory and
  // stale_after on the wall clock. Unfreezing excises the window from the
  // arm timestamps, so the OFF arm's bad observation must still veto
  // exploration; without the shift it would look stale and get re-probed.
  controller.SetFrozen(true, Ms(60));
  controller.SetFrozen(false, Ms(360));
  RunClosedLoop(controller, 120, 10000, 40, /*start_ms=*/360);
  EXPECT_EQ(controller.switches(), switches);
  EXPECT_TRUE(controller.batching_on());
}

TEST(ToggleControllerTest, MissingSamplesDoNotCrashOrSwitchBlindly) {
  SloThroughputPolicy policy;
  ToggleController controller(FastConfig(), &policy, Rng(1), /*initial_on=*/false);
  for (int i = 0; i < 20; ++i) {
    controller.OnTick(Ms(i), std::nullopt);
  }
  // Only the forced exploration ping-pong (no arm ever gets observed).
  EXPECT_FALSE(controller.ArmEstimate(false).has_value());
  EXPECT_FALSE(controller.ArmEstimate(true).has_value());
}

}  // namespace
}  // namespace e2e
