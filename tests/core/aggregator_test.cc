#include "src/core/aggregator.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <utility>
#include <vector>

namespace e2e {
namespace {

TimePoint Ms(int64_t ms) { return TimePoint::FromNanos(ms * 1000000); }

// One item per `spacing_us` through the unacked queue, each residing
// 200 us. Applied incrementally so snapshots between applications observe
// a live, monotone queue clock.
class StreamCursor {
 public:
  StreamCursor(EndpointQueues* queues, int64_t to_ms, int64_t spacing_us) : queues_(queues) {
    for (int64_t us = 0; us < to_ms * 1000; us += spacing_us) {
      events_.push_back({us, +1});
      events_.push_back({us + 200, -1});
    }
    std::stable_sort(events_.begin(), events_.end(),
                     [](const auto& a, const auto& b) { return a.first < b.first; });
  }

  void ApplyUntil(int64_t ms) {
    while (next_ < events_.size() && events_[next_].first <= ms * 1000) {
      queues_->Track(QueueKind::kUnacked, UnitMode::kSyscalls,
                     TimePoint::FromNanos(events_[next_].first * 1000), events_[next_].second);
      ++next_;
    }
  }

 private:
  EndpointQueues* queues_;
  std::vector<std::pair<int64_t, int>> events_;  // (time us, delta)
  size_t next_ = 0;
};

// Feeds `est` one exchange at `ms`: an idle-but-alive remote whose snapshot
// clock advances (a frozen clock would be rejected as a replay).
void Exchange(ConnectionEstimator& est, EndpointQueues& queues, int64_t ms) {
  const uint32_t us = static_cast<uint32_t>(ms * 1000);
  WirePayload remote;
  remote.unacked.time_us = us;
  remote.unread.time_us = us;
  remote.ackdelay.time_us = us;
  est.OnRemotePayload(remote, queues, nullptr, Ms(ms));
}

TEST(EstimateAggregatorTest, StaleSourceFallsOutOfTheAverage) {
  ConnectionEstimator fresh(UnitMode::kSyscalls);
  ConnectionEstimator stale(UnitMode::kSyscalls);
  EndpointQueues fresh_queues;
  EndpointQueues stale_queues;

  // Distinguishable throughputs: 20 k/s on the fresh source, 10 k/s on the
  // soon-to-be-silent one.
  StreamCursor fresh_stream(&fresh_queues, 30, 50);
  StreamCursor stale_stream(&stale_queues, 10, 100);
  for (int64_t ms : {2, 8}) {
    fresh_stream.ApplyUntil(ms);
    Exchange(fresh, fresh_queues, ms);
    stale_stream.ApplyUntil(ms);
    Exchange(stale, stale_queues, ms);
  }
  // Only the fresh source keeps exchanging.
  for (int64_t ms : {14, 20, 26}) {
    fresh_stream.ApplyUntil(ms);
    Exchange(fresh, fresh_queues, ms);
  }

  EstimateAggregator agg;
  agg.AddSource(&fresh);
  agg.AddSource(&stale);
  agg.SetStalenessBound(Duration::Millis(10));

  // The stale source's last accepted exchange was at 8 ms — 18 ms ago. It
  // must be skipped, not aggregated in at its final value. (Aggregate
  // throughput is the *sum* across connections.)
  const E2eEstimate bounded = agg.Aggregate(Ms(26));
  EXPECT_NEAR(bounded.a_send_throughput, 20000.0, 1500.0);
  EXPECT_EQ(agg.stale_connections(), 1u);

  // The legacy staleness-blind form still counts both.
  const E2eEstimate blind = agg.Aggregate();
  EXPECT_NEAR(blind.a_send_throughput, 30000.0, 1500.0);

  // A zero bound disables the check.
  agg.SetStalenessBound(Duration::Zero());
  const E2eEstimate unbounded = agg.Aggregate(Ms(26));
  EXPECT_NEAR(unbounded.a_send_throughput, 30000.0, 1500.0);
  EXPECT_EQ(agg.stale_connections(), 1u);  // Unchanged.
}

TEST(EstimateAggregatorTest, RemoveSourceUnregisters) {
  ConnectionEstimator a(UnitMode::kSyscalls);
  ConnectionEstimator b(UnitMode::kSyscalls);
  EstimateAggregator agg;
  agg.AddSource(&a);
  agg.AddSource(&b);
  EXPECT_EQ(agg.size(), 2u);
  agg.RemoveSource(&b);
  EXPECT_EQ(agg.size(), 1u);
  agg.RemoveSource(&b);  // No-op.
  EXPECT_EQ(agg.size(), 1u);
  agg.Clear();
  EXPECT_EQ(agg.size(), 0u);
}

TEST(EstimateAggregatorTest, AllSourcesStaleYieldsInvalidEstimate) {
  ConnectionEstimator est(UnitMode::kSyscalls);
  EndpointQueues queues;
  StreamCursor stream(&queues, 10, 50);
  stream.ApplyUntil(2);
  Exchange(est, queues, 2);
  stream.ApplyUntil(8);
  Exchange(est, queues, 8);
  ASSERT_TRUE(est.has_estimate());

  EstimateAggregator agg;
  agg.AddSource(&est);
  agg.SetStalenessBound(Duration::Millis(10));
  const E2eEstimate all_stale = agg.Aggregate(Ms(100));
  EXPECT_FALSE(all_stale.valid());
  EXPECT_EQ(agg.stale_connections(), 1u);
}

}  // namespace
}  // namespace e2e
