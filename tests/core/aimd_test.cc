#include "src/core/aimd.h"

#include <gtest/gtest.h>

namespace e2e {
namespace {

TimePoint Ms(int64_t ms) { return TimePoint::FromNanos(ms * 1000000); }

AimdLimit::Config LimitConfig() {
  AimdLimit::Config config;
  config.min_limit = 0;
  config.max_limit = 1000;
  config.add_step = 100;
  config.decrease_factor = 0.5;
  config.initial = 0;
  return config;
}

TEST(AimdLimitTest, AdditiveIncreaseIsLinearAndCapped) {
  AimdLimit limit(LimitConfig());
  for (int i = 1; i <= 5; ++i) {
    limit.Increase();
    EXPECT_DOUBLE_EQ(limit.limit(), 100.0 * i);
  }
  for (int i = 0; i < 20; ++i) {
    limit.Increase();
  }
  EXPECT_DOUBLE_EQ(limit.limit(), 1000.0);
}

TEST(AimdLimitTest, MultiplicativeDecreaseHalvesAndFloors) {
  AimdLimit limit(LimitConfig());
  for (int i = 0; i < 8; ++i) {
    limit.Increase();
  }
  EXPECT_DOUBLE_EQ(limit.limit(), 800.0);
  limit.Decrease();
  EXPECT_DOUBLE_EQ(limit.limit(), 400.0);
  limit.Decrease();
  EXPECT_DOUBLE_EQ(limit.limit(), 200.0);
  for (int i = 0; i < 80; ++i) {
    limit.Decrease();
  }
  // Multiplicative decay approaches the floor geometrically; it never
  // undershoots it.
  EXPECT_NEAR(limit.limit(), 0.0, 1e-9);
  EXPECT_GE(limit.limit(), 0.0);
}

TEST(AimdLimitTest, SawtoothStaysWithinBounds) {
  AimdLimit limit(LimitConfig());
  for (int i = 0; i < 1000; ++i) {
    if (i % 3 == 0) {
      limit.Decrease();
    } else {
      limit.Increase();
    }
    ASSERT_GE(limit.limit(), 0.0);
    ASSERT_LE(limit.limit(), 1000.0);
  }
}

AimdBatchController::Config ControllerConfigFor(double max_limit) {
  AimdBatchController::Config config;
  config.slo = Duration::Micros(500);
  config.aimd.min_limit = 0;
  config.aimd.max_limit = max_limit;
  config.aimd.add_step = 64;
  config.aimd.decrease_factor = 0.5;
  config.aimd.initial = 0;  // Headroom 0 -> start at full batching.
  config.ewma_tau = Duration::Millis(2);
  return config;
}

TEST(AimdBatchControllerTest, StartsAtFullBatching) {
  AimdBatchController controller(ControllerConfigFor(1448));
  EXPECT_DOUBLE_EQ(controller.limit_bytes(), 1448);
}

TEST(AimdBatchControllerTest, CompliantLatencyDrainsTowardNodelay) {
  AimdBatchController controller(ControllerConfigFor(1448));
  for (int i = 0; i < 100; ++i) {
    controller.OnTick(Ms(i), PerfSample{Duration::Micros(100), 1000});
  }
  EXPECT_DOUBLE_EQ(controller.limit_bytes(), 0.0);
}

TEST(AimdBatchControllerTest, ViolationJumpsBackTowardBatching) {
  AimdBatchController controller(ControllerConfigFor(1448));
  for (int i = 0; i < 100; ++i) {
    controller.OnTick(Ms(i), PerfSample{Duration::Micros(100), 1000});
  }
  ASSERT_DOUBLE_EQ(controller.limit_bytes(), 0.0);  // Headroom = max.
  // Sustained violation: headroom halves each tick -> limit rises fast.
  // The EWMA needs a few ticks to cross the SLO after the cheap history.
  double last = controller.limit_bytes();
  bool rising = false;
  for (int i = 100; i < 130; ++i) {
    const double limit = controller.OnTick(Ms(i), PerfSample{Duration::Millis(5), 1000});
    rising |= limit > last;
    last = limit;
  }
  EXPECT_TRUE(rising);
  EXPECT_GT(controller.limit_bytes(), 1448.0 * 0.9);  // Nearly full batching.
}

TEST(AimdBatchControllerTest, NoDeadlockAtFullBatchingUnderViolation) {
  // Even if latency stays above the SLO (true overload), the controller
  // must keep batching enabled — the safe side — not oscillate to 0.
  AimdBatchController controller(ControllerConfigFor(1448));
  for (int i = 0; i < 50; ++i) {
    controller.OnTick(Ms(i), PerfSample{Duration::Millis(10), 1000});
  }
  EXPECT_DOUBLE_EQ(controller.limit_bytes(), 1448.0);
}

TEST(AimdBatchControllerTest, MissingSamplesHoldTheLimit) {
  AimdBatchController controller(ControllerConfigFor(1448));
  const double before = controller.limit_bytes();
  controller.OnTick(Ms(1), std::nullopt);
  EXPECT_DOUBLE_EQ(controller.limit_bytes(), before);
}

TEST(AimdBatchControllerTest, EwmaSmoothsSingleOutlier) {
  AimdBatchController controller(ControllerConfigFor(1448));
  for (int i = 0; i < 100; ++i) {
    controller.OnTick(Ms(i), PerfSample{Duration::Micros(50), 1000});
  }
  ASSERT_DOUBLE_EQ(controller.limit_bytes(), 0.0);
  // One wild sample must not collapse the headroom (EWMA absorbs it).
  controller.OnTick(Ms(100), PerfSample{Duration::Micros(800), 1000});
  EXPECT_LT(controller.limit_bytes(), 1448.0 * 0.6);
}

}  // namespace
}  // namespace e2e
