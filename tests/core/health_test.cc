#include "src/core/health.h"

#include <gtest/gtest.h>

namespace e2e {
namespace {

TimePoint Ms(int64_t ms) { return TimePoint::FromNanos(ms * 1000000); }

HealthConfig FastConfig() {
  HealthConfig config;
  config.freshness_bound = Duration::Millis(10);
  config.static_after = Duration::Millis(50);
  config.promote_after = 4;
  config.demote_after_rejects = 3;
  return config;
}

// Feeds `n` healthy exchanges 1 ms apart starting at `start_ms`.
void FeedHealthy(EstimatorHealth& health, int n, int start_ms) {
  for (int i = 0; i < n; ++i) {
    health.OnExchange(Ms(start_ms + i), WireDeltaVerdict::kOk);
  }
}

TEST(EstimatorHealthTest, TrustIsEarnedStartsStatic) {
  EstimatorHealth health(FastConfig(), Ms(0));
  EXPECT_EQ(health.state(), HealthState::kStatic);
  ASSERT_EQ(health.transitions().size(), 1u);
  EXPECT_EQ(health.transitions()[0].second, HealthState::kStatic);
}

TEST(EstimatorHealthTest, PromotesOneLevelPerHealthyStreak) {
  EstimatorHealth health(FastConfig(), Ms(0));
  FeedHealthy(health, 3, 0);
  EXPECT_EQ(health.state(), HealthState::kStatic);  // Streak not yet complete.
  FeedHealthy(health, 1, 3);
  EXPECT_EQ(health.state(), HealthState::kLocalOnly);  // One level, not two.
  FeedHealthy(health, 4, 4);
  EXPECT_EQ(health.state(), HealthState::kFull);
  EXPECT_EQ(health.counters().promotions, 2u);
  EXPECT_EQ(health.counters().healthy_exchanges, 8u);
}

TEST(EstimatorHealthTest, SingleRejectResetsPromotionStreak) {
  EstimatorHealth health(FastConfig(), Ms(0));
  FeedHealthy(health, 3, 0);
  health.OnExchange(Ms(3), WireDeltaVerdict::kNoProgress);
  FeedHealthy(health, 3, 4);
  EXPECT_EQ(health.state(), HealthState::kStatic);  // 3 + 3 != 4 consecutive.
  FeedHealthy(health, 1, 7);
  EXPECT_EQ(health.state(), HealthState::kLocalOnly);
}

TEST(EstimatorHealthTest, RejectStreakDemotesOneLevelAtATime) {
  EstimatorHealth health(FastConfig(), Ms(0));
  FeedHealthy(health, 8, 0);
  ASSERT_EQ(health.state(), HealthState::kFull);
  // Two rejects: below the streak. A healthy exchange resets it.
  health.OnExchange(Ms(8), WireDeltaVerdict::kWrapViolation);
  health.OnExchange(Ms(9), WireDeltaVerdict::kWrapViolation);
  health.OnExchange(Ms(10), WireDeltaVerdict::kOk);
  EXPECT_EQ(health.state(), HealthState::kFull);
  // Three consecutive rejects demote kFull -> kLocalOnly, three more
  // -> kStatic, and further streaks saturate there.
  for (int i = 0; i < 3; ++i) {
    health.OnExchange(Ms(11 + i), WireDeltaVerdict::kImplausibleDelay);
  }
  EXPECT_EQ(health.state(), HealthState::kLocalOnly);
  for (int i = 0; i < 3; ++i) {
    health.OnExchange(Ms(14 + i), WireDeltaVerdict::kNoProgress);
  }
  EXPECT_EQ(health.state(), HealthState::kStatic);
  for (int i = 0; i < 3; ++i) {
    health.OnExchange(Ms(17 + i), WireDeltaVerdict::kNoProgress);
  }
  EXPECT_EQ(health.state(), HealthState::kStatic);
  EXPECT_EQ(health.counters().rejected_total(), 11u);
  EXPECT_EQ(health.counters().rejected_wrap_violation, 2u);
  EXPECT_EQ(health.counters().rejected_implausible_delay, 3u);
  EXPECT_EQ(health.counters().rejected_no_progress, 6u);
}

TEST(EstimatorHealthTest, FreshnessTickDemotesFullThenStatic) {
  EstimatorHealth health(FastConfig(), Ms(0));
  FeedHealthy(health, 8, 0);
  ASSERT_EQ(health.state(), HealthState::kFull);
  // Last healthy exchange at 7 ms. Inside the bound: no demotion.
  health.Tick(Ms(16));
  EXPECT_EQ(health.state(), HealthState::kFull);
  // Past freshness_bound (10 ms): one level.
  health.Tick(Ms(18));
  EXPECT_EQ(health.state(), HealthState::kLocalOnly);
  // Still short of static_after: holds.
  health.Tick(Ms(40));
  EXPECT_EQ(health.state(), HealthState::kLocalOnly);
  // Past static_after (50 ms since last healthy): all the way down.
  health.Tick(Ms(58));
  EXPECT_EQ(health.state(), HealthState::kStatic);
  EXPECT_EQ(health.counters().demotions, 2u);
}

TEST(EstimatorHealthTest, ZeroDepartureRefreshesFreshnessButNotStreaks) {
  EstimatorHealth health(FastConfig(), Ms(0));
  FeedHealthy(health, 8, 0);
  ASSERT_EQ(health.state(), HealthState::kFull);
  // A trickle of zero-departure exchanges keeps the channel provably alive
  // long past the freshness bound: no demotion.
  for (int i = 0; i < 40; ++i) {
    health.OnExchange(Ms(8 + i * 5), WireDeltaVerdict::kZeroDeparture);
    health.Tick(Ms(8 + i * 5));
  }
  EXPECT_EQ(health.state(), HealthState::kFull);
  EXPECT_EQ(health.counters().zero_departure_exchanges, 40u);

  // But it proves nothing about plausibility: from kStatic, zero-departure
  // exchanges interleaved with a healthy streak neither reset nor advance
  // the promotion count.
  EstimatorHealth cold(FastConfig(), Ms(0));
  for (int i = 0; i < 3; ++i) {
    cold.OnExchange(Ms(i * 2), WireDeltaVerdict::kOk);
    cold.OnExchange(Ms(i * 2 + 1), WireDeltaVerdict::kZeroDeparture);
  }
  EXPECT_EQ(cold.state(), HealthState::kStatic);
  cold.OnExchange(Ms(6), WireDeltaVerdict::kOk);  // 4th consecutive kOk.
  EXPECT_EQ(cold.state(), HealthState::kLocalOnly);
}

TEST(EstimatorHealthTest, ConnectionLossIsAHardDemotionToStatic) {
  EstimatorHealth health(FastConfig(), Ms(0));
  FeedHealthy(health, 8, 0);
  ASSERT_EQ(health.state(), HealthState::kFull);
  health.OnConnectionLost(Ms(10));
  EXPECT_EQ(health.state(), HealthState::kStatic);
  EXPECT_EQ(health.counters().connection_losses, 1u);
  // Reconnect restarts the freshness clock but not the trust level: the
  // replacement connection re-earns kFull through the normal streak.
  health.OnReconnect(Ms(30));
  EXPECT_EQ(health.state(), HealthState::kStatic);
  health.Tick(Ms(35));  // 5 ms since reconnect, not 35 since last healthy.
  EXPECT_EQ(health.state(), HealthState::kStatic);
  FeedHealthy(health, 8, 36);
  EXPECT_EQ(health.state(), HealthState::kFull);
}

TEST(EstimatorHealthTest, TimeInStateAccountsOpenSpans) {
  EstimatorHealth health(FastConfig(), Ms(0));
  FeedHealthy(health, 4, 0);  // kLocalOnly at t=3.
  FeedHealthy(health, 4, 10);  // kFull at t=13.
  EXPECT_EQ(health.TimeIn(HealthState::kStatic, Ms(20)), Duration::Millis(3));
  EXPECT_EQ(health.TimeIn(HealthState::kLocalOnly, Ms(20)), Duration::Millis(10));
  EXPECT_EQ(health.TimeIn(HealthState::kFull, Ms(20)), Duration::Millis(7));

  ASSERT_EQ(health.transitions().size(), 3u);
  EXPECT_EQ(health.transitions()[1].first, Ms(3));
  EXPECT_EQ(health.transitions()[1].second, HealthState::kLocalOnly);
  EXPECT_EQ(health.transitions()[2].first, Ms(13));
  EXPECT_EQ(health.transitions()[2].second, HealthState::kFull);
}

TEST(EstimatorHealthTest, StateNamesAreStable) {
  EXPECT_STREQ(HealthStateName(HealthState::kFull), "full");
  EXPECT_STREQ(HealthStateName(HealthState::kLocalOnly), "local_only");
  EXPECT_STREQ(HealthStateName(HealthState::kDiagAssisted), "diag_assisted");
  EXPECT_STREQ(HealthStateName(HealthState::kStatic), "static");
}

TEST(EstimatorHealthTest, FreshDiagSignalCatchesAWouldBeFreezeAsRescue) {
  EstimatorHealth health(FastConfig(), Ms(0));
  health.SetDiagSignal([](TimePoint) { return true; });
  FeedHealthy(health, 8, 0);
  ASSERT_EQ(health.state(), HealthState::kFull);
  // Freshness path: past static_after the floor is kDiagAssisted, not
  // kStatic, because the in-network observer vouches for the flow.
  health.Tick(Ms(18));
  EXPECT_EQ(health.state(), HealthState::kLocalOnly);
  health.Tick(Ms(58));
  EXPECT_EQ(health.state(), HealthState::kDiagAssisted);
  EXPECT_EQ(health.counters().diag_rescues, 1u);
  EXPECT_EQ(health.counters().diag_dropouts, 0u);
}

TEST(EstimatorHealthTest, DiagSignalDropoutFallsToStatic) {
  EstimatorHealth health(FastConfig(), Ms(0));
  bool fresh = true;
  health.SetDiagSignal([&fresh](TimePoint) { return fresh; });
  FeedHealthy(health, 8, 0);
  health.Tick(Ms(58));
  ASSERT_EQ(health.state(), HealthState::kDiagAssisted);
  // The tapped flow goes quiet: the refuge is gone, freeze for real.
  fresh = false;
  health.Tick(Ms(60));
  EXPECT_EQ(health.state(), HealthState::kStatic);
  EXPECT_EQ(health.counters().diag_dropouts, 1u);
  // And a returning signal recovers kDiagAssisted from kStatic.
  fresh = true;
  health.Tick(Ms(62));
  EXPECT_EQ(health.state(), HealthState::kDiagAssisted);
  EXPECT_EQ(health.counters().diag_rescues, 2u);
}

TEST(EstimatorHealthTest, RejectStreaksAlsoLandOnDiagAssisted) {
  EstimatorHealth health(FastConfig(), Ms(0));
  health.SetDiagSignal([](TimePoint) { return true; });
  FeedHealthy(health, 8, 0);
  ASSERT_EQ(health.state(), HealthState::kFull);
  for (int i = 0; i < 3; ++i) {
    health.OnExchange(Ms(8 + i), WireDeltaVerdict::kNoProgress);
  }
  EXPECT_EQ(health.state(), HealthState::kLocalOnly);
  // The step below kLocalOnly is the diag-gated floor.
  for (int i = 0; i < 3; ++i) {
    health.OnExchange(Ms(11 + i), WireDeltaVerdict::kNoProgress);
  }
  EXPECT_EQ(health.state(), HealthState::kDiagAssisted);
  EXPECT_EQ(health.counters().diag_rescues, 1u);
}

TEST(EstimatorHealthTest, DiagAssistedIsNotATrustRung) {
  // Promotion out of kDiagAssisted goes straight to kLocalOnly: installing
  // a diag signal never lengthens the climb back to kFull.
  EstimatorHealth health(FastConfig(), Ms(0));
  health.SetDiagSignal([](TimePoint) { return true; });
  FeedHealthy(health, 8, 0);
  health.Tick(Ms(58));
  ASSERT_EQ(health.state(), HealthState::kDiagAssisted);
  FeedHealthy(health, 4, 60);
  EXPECT_EQ(health.state(), HealthState::kLocalOnly);
  FeedHealthy(health, 4, 70);
  EXPECT_EQ(health.state(), HealthState::kFull);
}

TEST(EstimatorHealthTest, WithoutDiagSignalChainIsThreeState) {
  // No signal installed: behavior is byte-for-byte the pre-diag ladder —
  // kDiagAssisted is unreachable and every floor is kStatic.
  EstimatorHealth health(FastConfig(), Ms(0));
  FeedHealthy(health, 8, 0);
  health.Tick(Ms(58));
  EXPECT_EQ(health.state(), HealthState::kStatic);
  EXPECT_EQ(health.counters().diag_rescues, 0u);
  EXPECT_EQ(health.counters().diag_dropouts, 0u);
  for (const auto& [when, state] : health.transitions()) {
    (void)when;
    EXPECT_NE(state, HealthState::kDiagAssisted);
  }

  // Same for a stale signal: installed but never fresh.
  EstimatorHealth stale(FastConfig(), Ms(0));
  stale.SetDiagSignal([](TimePoint) { return false; });
  FeedHealthy(stale, 8, 0);
  stale.Tick(Ms(58));
  EXPECT_EQ(stale.state(), HealthState::kStatic);
  EXPECT_EQ(stale.counters().diag_rescues, 0u);
}

TEST(EstimatorHealthTest, ConnectionLossBypassesTheDiagRefuge) {
  // A dead metadata *connection* is a hard stop: the diag signal vouches
  // for the data flow, not for the estimator, so loss still lands kStatic.
  EstimatorHealth health(FastConfig(), Ms(0));
  health.SetDiagSignal([](TimePoint) { return true; });
  FeedHealthy(health, 8, 0);
  health.OnConnectionLost(Ms(10));
  EXPECT_EQ(health.state(), HealthState::kStatic);
}

}  // namespace
}  // namespace e2e
