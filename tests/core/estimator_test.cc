#include "src/core/estimator.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <deque>
#include <utility>
#include <vector>

namespace e2e {
namespace {

TimePoint Ms(int64_t ms) { return TimePoint::FromNanos(ms * 1000000); }

// A payload from an idle-but-alive peer: queues empty, snapshot clock
// advancing. A payload whose clock never moves is indistinguishable from a
// replay and is (correctly) rejected by the delta-plausibility checks.
WirePayload RemoteAt(int64_t ms) {
  const uint32_t us = static_cast<uint32_t>(ms * 1000);
  WirePayload payload;
  payload.unacked.time_us = us;
  payload.unread.time_us = us;
  payload.ackdelay.time_us = us;
  return payload;
}

// A steady request stream for one endpoint's unacked queue: items enter
// every `spacing` and leave after `residence`. Events are generated up
// front and must be applied incrementally (ApplyUntil) so that snapshots
// taken between applications observe a live queue, as they would online.
class UnackedStream {
 public:
  UnackedStream(EndpointQueues* queues, UnitMode mode, TimePoint from, TimePoint to,
                Duration residence, Duration spacing)
      : queues_(queues), mode_(mode) {
    for (TimePoint t = from; t + residence <= to; t += spacing) {
      events_.push_back({t, +1});
      events_.push_back({t + residence, -1});
    }
    std::stable_sort(events_.begin(), events_.end(),
                     [](const Event& a, const Event& b) { return a.time < b.time; });
  }

  void ApplyUntil(TimePoint upto) {
    while (next_ < events_.size() && events_[next_].time <= upto) {
      queues_->Track(QueueKind::kUnacked, mode_, events_[next_].time, events_[next_].delta);
      ++next_;
    }
  }

 private:
  struct Event {
    TimePoint time;
    int delta;
  };
  EndpointQueues* queues_;
  UnitMode mode_;
  std::vector<Event> events_;
  size_t next_ = 0;
};

TEST(ConnectionEstimatorTest, NoEstimateBeforeTwoExchanges) {
  ConnectionEstimator est(UnitMode::kSyscalls);
  EndpointQueues queues;
  WirePayload remote;
  est.OnRemotePayload(remote, queues, nullptr, Ms(1));
  EXPECT_FALSE(est.has_estimate());
  EXPECT_EQ(est.exchanges(), 1u);
}

TEST(ConnectionEstimatorTest, SteadyQueueYieldsResidenceTime) {
  ConnectionEstimator local_est(UnitMode::kSyscalls);
  ConnectionEstimator remote_est(UnitMode::kSyscalls);
  EndpointQueues local_queues;
  EndpointQueues remote_queues;

  // Local sends messages that live 200 us in its unacked queue; the remote
  // side is idle. Expected end-to-end estimate: ~200 us.
  UnackedStream stream(&local_queues, UnitMode::kSyscalls, Ms(0), Ms(10), Duration::Micros(200),
                       Duration::Micros(50));

  // Exchange at 2 ms and 8 ms in both directions.
  for (int64_t ms : {2, 8}) {
    stream.ApplyUntil(Ms(ms));
    const WirePayload from_remote =
        remote_est.BuildLocalPayload(remote_queues, nullptr, Ms(ms));
    local_est.OnRemotePayload(from_remote, local_queues, nullptr, Ms(ms));
  }
  ASSERT_TRUE(local_est.has_estimate());
  EXPECT_NEAR(local_est.estimate().latency->ToMicros(), 200.0, 5.0);
  EXPECT_NEAR(local_est.estimate().a_send_throughput, 1e6 / 50, 1500.0);
}

TEST(ConnectionEstimatorTest, LastValidSurvivesIdleInterval) {
  ConnectionEstimator est(UnitMode::kSyscalls);
  EndpointQueues queues;
  UnackedStream stream(&queues, UnitMode::kSyscalls, Ms(0), Ms(10), Duration::Micros(100),
                       Duration::Micros(50));
  stream.ApplyUntil(Ms(2));
  est.OnRemotePayload(RemoteAt(2), queues, nullptr, Ms(2));
  stream.ApplyUntil(Ms(8));
  est.OnRemotePayload(RemoteAt(8), queues, nullptr, Ms(8));
  ASSERT_TRUE(est.has_estimate());

  // The (8, 20] interval drains the stream's tail and is the last one with
  // departures; its estimate is the one that must survive.
  stream.ApplyUntil(Ms(20));
  est.OnRemotePayload(RemoteAt(20), queues, nullptr, Ms(20));
  ASSERT_TRUE(est.has_estimate());
  const double valid_us = est.estimate().latency->ToMicros();

  // An exchange over a fully idle interval: the current estimate becomes
  // invalid, last_valid_estimate() keeps the old one.
  est.OnRemotePayload(RemoteAt(30), queues, nullptr, Ms(30));
  EXPECT_FALSE(est.has_estimate());
  ASSERT_TRUE(est.last_valid_estimate().has_value());
  EXPECT_DOUBLE_EQ(est.last_valid_estimate()->latency->ToMicros(), valid_us);
}

TEST(ConnectionEstimatorTest, HintChannelEstimatesCreateToCompleteDelay) {
  ConnectionEstimator server_est(UnitMode::kBytes);
  EndpointQueues server_queues;
  ConnectionEstimator client_est(UnitMode::kBytes);
  EndpointQueues client_queues;
  HintTracker hints(Ms(0));

  // Client app: create/complete pairs with 300 us latency, 25 us apart,
  // applied in time order and interleaved with the exchanges.
  std::vector<std::pair<int64_t, int>> events;  // (time us, +create/-complete)
  for (int64_t us = 0; us < 10000; us += 25) {
    events.push_back({us, +1});
    events.push_back({us + 300, -1});
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });

  size_t next = 0;
  for (int64_t ms : {2, 8}) {
    while (next < events.size() && events[next].first <= ms * 1000) {
      const TimePoint t = TimePoint::FromNanos(events[next].first * 1000);
      if (events[next].second > 0) {
        hints.Create(t);
      } else {
        hints.Complete(t);
      }
      ++next;
    }
    const WirePayload from_client = client_est.BuildLocalPayload(client_queues, &hints, Ms(ms));
    ASSERT_TRUE(from_client.hint.has_value());
    server_est.OnRemotePayload(from_client, server_queues, nullptr, Ms(ms));
  }
  ASSERT_TRUE(server_est.hint_latency().has_value());
  EXPECT_NEAR(server_est.hint_latency()->ToMicros(), 300.0, 5.0);
  EXPECT_NEAR(server_est.hint_throughput(), 40000.0, 500.0);
}

TEST(ConnectionEstimatorTest, ReplayedPayloadIsRejectedAndDoesNotPoisonEstimate) {
  ConnectionEstimator est(UnitMode::kSyscalls);
  EndpointQueues queues;
  UnackedStream stream(&queues, UnitMode::kSyscalls, Ms(0), Ms(10), Duration::Micros(200),
                       Duration::Micros(50));
  stream.ApplyUntil(Ms(2));
  EXPECT_TRUE(est.OnRemotePayload(RemoteAt(2), queues, nullptr, Ms(2)));
  stream.ApplyUntil(Ms(8));
  EXPECT_TRUE(est.OnRemotePayload(RemoteAt(8), queues, nullptr, Ms(8)));
  ASSERT_TRUE(est.has_estimate());
  const double before_us = est.estimate().latency->ToMicros();
  const TimePoint last_update = est.last_update();

  // The same remote payload again: a duplicated/replayed exchange. It must
  // be rejected, counted, and leave estimate, snapshots, and last_update()
  // untouched.
  stream.ApplyUntil(Ms(9));
  EXPECT_FALSE(est.OnRemotePayload(RemoteAt(8), queues, nullptr, Ms(9)));
  EXPECT_EQ(est.last_verdict(), WireDeltaVerdict::kNoProgress);
  EXPECT_EQ(est.rejected_payloads(), 1u);
  EXPECT_EQ(est.last_update(), last_update);
  EXPECT_DOUBLE_EQ(est.estimate().latency->ToMicros(), before_us);

  // A wrap-violating payload (clock jumped by > 2^31 us) likewise.
  WirePayload bogus = RemoteAt(9);
  bogus.unacked.time_us += 0x90000000u;
  EXPECT_FALSE(est.OnRemotePayload(bogus, queues, nullptr, Ms(9)));
  EXPECT_EQ(est.last_verdict(), WireDeltaVerdict::kWrapViolation);
  EXPECT_EQ(est.rejected_payloads(), 2u);

  // The channel recovers: a plausible payload resumes normal operation.
  stream.ApplyUntil(Ms(10));
  EXPECT_TRUE(est.OnRemotePayload(RemoteAt(10), queues, nullptr, Ms(10)));
  EXPECT_EQ(est.last_verdict(), WireDeltaVerdict::kOk);
}

TEST(ConnectionEstimatorTest, LocalOnlyEstimateNeedsNoRemotePayloads) {
  ConnectionEstimator est(UnitMode::kSyscalls);
  EndpointQueues queues;
  UnackedStream stream(&queues, UnitMode::kSyscalls, Ms(0), Ms(20), Duration::Micros(200),
                       Duration::Micros(50));

  // Metadata channel fully down: no OnRemotePayload at all. The one-sided
  // estimate still tracks the local unacked residence time.
  stream.ApplyUntil(Ms(2));
  EXPECT_FALSE(est.LocalOnlyEstimate(queues, Ms(2)).valid());  // First call: no pair yet.
  stream.ApplyUntil(Ms(8));
  const E2eEstimate local = est.LocalOnlyEstimate(queues, Ms(8));
  ASSERT_TRUE(local.valid());
  EXPECT_NEAR(local.latency->ToMicros(), 200.0, 5.0);
  EXPECT_GT(local.a_send_throughput, 0.0);
  // The two-sided estimate is still (correctly) absent.
  EXPECT_FALSE(est.has_estimate());
}

TEST(ConnectionEstimatorTest, BuildPayloadCarriesConfiguredMode) {
  ConnectionEstimator est(UnitMode::kPackets);
  EndpointQueues queues;
  const WirePayload payload = est.BuildLocalPayload(queues, nullptr, Ms(1));
  EXPECT_EQ(payload.mode, UnitMode::kPackets);
  EXPECT_FALSE(payload.hint.has_value());
}

TEST(ConnectionEstimatorTest, ResetDropsHistory) {
  ConnectionEstimator est(UnitMode::kSyscalls);
  EndpointQueues queues;
  UnackedStream stream(&queues, UnitMode::kSyscalls, Ms(0), Ms(10), Duration::Micros(100),
                       Duration::Micros(50));
  stream.ApplyUntil(Ms(2));
  est.OnRemotePayload(RemoteAt(2), queues, nullptr, Ms(2));
  stream.ApplyUntil(Ms(8));
  est.OnRemotePayload(RemoteAt(8), queues, nullptr, Ms(8));
  ASSERT_TRUE(est.has_estimate());
  est.Reset();
  EXPECT_FALSE(est.has_estimate());
  EXPECT_FALSE(est.last_valid_estimate().has_value());
  // One exchange after reset is again not enough.
  stream.ApplyUntil(Ms(9));
  est.OnRemotePayload(RemoteAt(9), queues, nullptr, Ms(9));
  EXPECT_FALSE(est.has_estimate());
}

}  // namespace
}  // namespace e2e
