#include "src/core/wire_format.h"

#include <gtest/gtest.h>

#include <cstring>

namespace e2e {
namespace {

WirePayload SamplePayload(bool with_hint) {
  WirePayload payload;
  payload.mode = UnitMode::kSyscalls;
  payload.unacked = {0x11111111, 0x22222222, 0x33333333};
  payload.unread = {0x44444444, 0x55555555, 0x66666666};
  payload.ackdelay = {0x77777777, 0x88888888, 0x99999999};
  if (with_hint) {
    payload.hint = WireCounters{0xaaaaaaaa, 0xbbbbbbbb, 0xcccccccc};
  }
  return payload;
}

class WireRoundTripTest : public ::testing::TestWithParam<bool> {};

TEST_P(WireRoundTripTest, EncodeDecodeIsIdentity) {
  const WirePayload payload = SamplePayload(GetParam());
  uint8_t buf[kWirePayloadMaxSize];
  const size_t n = EncodePayload(payload, buf, sizeof(buf));
  EXPECT_EQ(n, GetParam() ? kWirePayloadMaxSize : kWirePayloadBaseSize);
  const auto decoded = DecodePayload(buf, n);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, payload);
}

INSTANTIATE_TEST_SUITE_P(WithAndWithoutHint, WireRoundTripTest, ::testing::Bool());

TEST(WireFormatTest, ThePaperSizeIs36BytesOfCounters) {
  // Three 4-byte counters per queue, three queues (paper §3.2).
  EXPECT_EQ(kWirePayloadBaseSize - 2u, 36u);  // +2 header bytes.
}

TEST(WireFormatTest, EncodeFailsWhenBufferTooSmall) {
  uint8_t buf[kWirePayloadMaxSize];
  EXPECT_EQ(EncodePayload(SamplePayload(false), buf, kWirePayloadBaseSize - 1), 0u);
  EXPECT_EQ(EncodePayload(SamplePayload(true), buf, kWirePayloadBaseSize), 0u);
}

TEST(WireFormatTest, DecodeRejectsTruncation) {
  uint8_t buf[kWirePayloadMaxSize];
  const size_t n = EncodePayload(SamplePayload(true), buf, sizeof(buf));
  EXPECT_FALSE(DecodePayload(buf, n - 1).has_value());
  EXPECT_FALSE(DecodePayload(buf, 0).has_value());
  // Hint flag set but hint bytes missing.
  EXPECT_FALSE(DecodePayload(buf, kWirePayloadBaseSize).has_value());
}

TEST(WireFormatTest, DecodeRejectsUnknownVersion) {
  uint8_t buf[kWirePayloadMaxSize];
  const size_t n = EncodePayload(SamplePayload(false), buf, sizeof(buf));
  buf[0] = kWireFormatVersion + 1;
  EXPECT_FALSE(DecodePayload(buf, n).has_value());
}

TEST(WireFormatTest, EncodingIsLittleEndianAndStable) {
  WirePayload payload;
  payload.mode = UnitMode::kBytes;
  payload.unacked = {0x04030201, 0, 0};
  uint8_t buf[kWirePayloadMaxSize];
  ASSERT_GT(EncodePayload(payload, buf, sizeof(buf)), 0u);
  EXPECT_EQ(buf[0], kWireFormatVersion);
  EXPECT_EQ(buf[2], 0x01);
  EXPECT_EQ(buf[3], 0x02);
  EXPECT_EQ(buf[4], 0x03);
  EXPECT_EQ(buf[5], 0x04);
}

TEST(CompressSnapshotTest, ConvertsUnits) {
  QueueSnapshot snap;
  snap.time = TimePoint::FromNanos(1234567);      // -> 1234 us.
  snap.total = 99;
  snap.integral = 5678000;                        // item-ns -> 5678 item-us.
  const WireCounters wire = CompressSnapshot(snap);
  EXPECT_EQ(wire.time_us, 1234u);
  EXPECT_EQ(wire.total, 99u);
  EXPECT_EQ(wire.integral_us, 5678u);
}

TEST(WireGetAvgsTest, MatchesFullResolutionGetAvgs) {
  QueueSnapshot prev;
  prev.time = TimePoint::FromNanos(1000000);
  prev.total = 10;
  prev.integral = 4000000;
  QueueSnapshot cur;
  cur.time = TimePoint::FromNanos(21000000);  // +20 ms.
  cur.total = 2010;
  cur.integral = 604000000;  // +600 item-ms.
  const QueueAverages full = GetAvgs(prev, cur);
  const QueueAverages wire = WireGetAvgs(CompressSnapshot(prev), CompressSnapshot(cur));
  EXPECT_NEAR(wire.avg_occupancy, full.avg_occupancy, full.avg_occupancy * 1e-3);
  EXPECT_NEAR(wire.throughput, full.throughput, full.throughput * 1e-3);
  ASSERT_TRUE(full.delay.has_value());
  ASSERT_TRUE(wire.delay.has_value());
  EXPECT_NEAR(wire.delay->ToMicros(), full.delay->ToMicros(), 1.0);
}

// Property: wrapping 32-bit counters still produce correct deltas as long
// as one interval advances each counter by < 2^32.
class WireWraparoundTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(WireWraparoundTest, DeltasSurviveWrap) {
  const uint32_t base = GetParam();
  // Place prev just below the wrap point; cur wraps past zero.
  WireCounters prev{base, base, base};
  WireCounters cur{base + 20000u, base + 1000u, base + 30000u};  // Wrapping adds.
  const QueueAverages avgs = WireGetAvgs(prev, cur);
  // dt = 20 ms, dtotal = 1000, dintegral = 30000 item-us.
  EXPECT_NEAR(avgs.throughput, 1000.0 / 0.020, 1e-6);
  EXPECT_NEAR(avgs.avg_occupancy, 30000e-6 / 0.020, 1e-9);
  ASSERT_TRUE(avgs.delay.has_value());
  EXPECT_NEAR(avgs.delay->ToMicros(), 30.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(NearWrap, WireWraparoundTest,
                         ::testing::Values(0u, 0xFFFFFF00u, 0xFFFFFFFFu, 0x7FFFFFFFu,
                                           0x80000000u));

TEST(WireGetAvgsTest, ZeroTimeDeltaIsEmpty) {
  WireCounters c{5, 5, 5};
  const QueueAverages avgs = WireGetAvgs(c, c);
  EXPECT_EQ(avgs.throughput, 0);
  EXPECT_FALSE(avgs.delay.has_value());
}

TEST(WireFormatTest, DecodeRejectsUnknownModeByte) {
  uint8_t buf[kWirePayloadMaxSize];
  const size_t n = EncodePayload(SamplePayload(false), buf, sizeof(buf));
  // Unit-mode bits 0b11: kHints never travels on the wire (the hint queue
  // has its own trailer); an implementation that maps it to a queue array
  // index would read out of bounds.
  buf[1] = static_cast<uint8_t>((buf[1] & ~0x03) | 0x03);
  EXPECT_FALSE(DecodePayload(buf, n).has_value());
}

TEST(WireFormatTest, DecodeRejectsReservedFlagBits) {
  uint8_t buf[kWirePayloadMaxSize];
  const size_t n = EncodePayload(SamplePayload(false), buf, sizeof(buf));
  for (uint8_t bit : {0x04, 0x10, 0x40}) {
    uint8_t corrupt[kWirePayloadMaxSize];
    std::memcpy(corrupt, buf, n);
    corrupt[1] |= bit;
    EXPECT_FALSE(DecodePayload(corrupt, n).has_value()) << "reserved bit " << int(bit);
  }
}

// Wraparound straddling 2^32 exercised through the full wire pipeline:
// encode both snapshots, decode them, then take deltas — not just the
// arithmetic helper in isolation.
TEST(WireFormatTest, EncodedCountersSurviveWrapEndToEnd) {
  WirePayload prev = SamplePayload(false);
  prev.unacked = {0xFFFFFF06u, 0xFFFFFFFEu, 0xFFFFFA00u};  // All near wrap.
  WirePayload cur = prev;
  cur.unacked.time_us += 20000u;   // Wraps.
  cur.unacked.total += 1000u;      // Wraps.
  cur.unacked.integral_us += 30000u;  // Wraps.

  uint8_t prev_buf[kWirePayloadMaxSize];
  uint8_t cur_buf[kWirePayloadMaxSize];
  const size_t prev_n = EncodePayload(prev, prev_buf, sizeof(prev_buf));
  const size_t cur_n = EncodePayload(cur, cur_buf, sizeof(cur_buf));
  const auto prev_dec = DecodePayload(prev_buf, prev_n);
  const auto cur_dec = DecodePayload(cur_buf, cur_n);
  ASSERT_TRUE(prev_dec.has_value() && cur_dec.has_value());

  EXPECT_EQ(CheckWireDelta(prev_dec->unacked, cur_dec->unacked), WireDeltaVerdict::kOk);
  const QueueAverages avgs = WireGetAvgs(prev_dec->unacked, cur_dec->unacked);
  EXPECT_NEAR(avgs.throughput, 1000.0 / 0.020, 1e-6);
  ASSERT_TRUE(avgs.delay.has_value());
  EXPECT_NEAR(avgs.delay->ToMicros(), 30.0, 1e-9);
}

TEST(CheckWireDeltaTest, GradesDeltas) {
  const WireCounters base{1000, 50, 2000};

  EXPECT_EQ(CheckWireDelta(base, WireCounters{21000, 1050, 32000}), WireDeltaVerdict::kOk);
  // Identical counters: replayed or duplicated payload.
  EXPECT_EQ(CheckWireDelta(base, base), WireDeltaVerdict::kNoProgress);
  // Apparent interval > 2^31 us: indistinguishable from time running
  // backwards under wrapping arithmetic (here cur - prev wraps to
  // 0xF0000000 us).
  EXPECT_EQ(CheckWireDelta(WireCounters{0x10000000u, 0, 0}, WireCounters{0, 0, 0}),
            WireDeltaVerdict::kWrapViolation);
  // One departure carrying a >2^31 us integral: implausible derived delay.
  EXPECT_EQ(CheckWireDelta(WireCounters{0, 0, 0}, WireCounters{1000, 1, 0x90000000u}),
            WireDeltaVerdict::kImplausibleDelay);
  // Integral grew with zero departures: occupancy but no throughput.
  EXPECT_EQ(CheckWireDelta(base, WireCounters{21000, 50, 32000}),
            WireDeltaVerdict::kZeroDeparture);
}

TEST(CheckWireDeltaTest, RejectingVerdictsYieldEmptyAverages) {
  const WireCounters base{1000, 50, 2000};
  for (const WireCounters& cur :
       {base,                                    // kNoProgress.
        WireCounters{base.time_us + 0x90000000u, base.total + 1, base.integral_us},
        WireCounters{base.time_us + 1000u, base.total + 1,
                     base.integral_us + 0x90000000u}}) {
    const QueueAverages avgs = WireGetAvgs(base, cur);
    EXPECT_EQ(avgs.throughput, 0);
    EXPECT_EQ(avgs.avg_occupancy, 0);
    EXPECT_FALSE(avgs.delay.has_value());
  }
}

}  // namespace
}  // namespace e2e
