#include "src/testbed/topology.h"

#include <gtest/gtest.h>

namespace e2e {
namespace {

TEST(TopologyTest, HostsAndCoresAreNamed) {
  TwoHostTopology topo;
  EXPECT_EQ(topo.client_host().name(), "client");
  EXPECT_EQ(topo.server_host().name(), "server");
  EXPECT_EQ(topo.client_host().app_core().name(), "client.app");
  EXPECT_EQ(topo.server_host().softirq_core().name(), "server.softirq");
}

TEST(TopologyTest, LinksAreCrossWired) {
  TwoHostTopology topo;
  TcpConfig tcp;
  tcp.nodelay = true;
  ConnectedPair conn = topo.Connect(1, tcp, tcp);
  // Traffic in both directions proves client tx -> server rx and back.
  topo.client_host().app_core().SubmitFixed(Duration::Nanos(100), [&] {
    MessageRecord r;
    conn.a->Send(10, std::move(r));
  });
  topo.server_host().app_core().SubmitFixed(Duration::Nanos(100), [&] {
    MessageRecord r;
    conn.b->Send(20, std::move(r));
  });
  topo.sim().RunFor(Duration::Millis(5));
  EXPECT_EQ(conn.b->ReadableBytes(), 10u);
  EXPECT_EQ(conn.a->ReadableBytes(), 20u);
}

TEST(TopologyTest, ConnectSeedsPeerWindows) {
  TwoHostTopology topo;
  TcpConfig small;
  small.nodelay = true;
  small.rcvbuf_bytes = 5000;
  TcpConfig big;
  big.nodelay = true;
  ConnectedPair conn = topo.Connect(1, big, small);
  // A's first flight is limited by B's small receive buffer even before
  // any ack (the topology seeded the window from B's config).
  topo.client_host().app_core().SubmitFixed(Duration::Nanos(100), [&] {
    MessageRecord r;
    conn.a->Send(50000, std::move(r));
  });
  topo.sim().RunUntil(TimePoint::FromNanos(3000));  // Before the first ack.
  EXPECT_LE(conn.a->stats().bytes_sent, 5000u);
}

TEST(TopologyTest, DefaultLinkIsHundredGigabit) {
  TopologyConfig config;
  EXPECT_DOUBLE_EQ(config.link.bandwidth_bps, 100e9);
  EXPECT_EQ(config.link.propagation, Duration::MicrosF(3.0));
}

}  // namespace
}  // namespace e2e
