#include "src/obs/registry.h"

#include <gtest/gtest.h>

namespace e2e {
namespace {

TEST(CounterRegistryTest, SamplesEntitiesInRegistrationOrder) {
  CounterRegistry registry;
  uint64_t x = 10;
  uint64_t y = 100;
  registry.Register("a", {"x"}, [&]() -> std::vector<uint64_t> { return {x}; });
  registry.Register("b", {"y", "y2"}, [&]() -> std::vector<uint64_t> { return {y, y * 2}; });

  ASSERT_EQ(registry.num_entities(), 2u);
  EXPECT_EQ(registry.entity_name(0), "a");
  EXPECT_EQ(registry.entity_name(1), "b");
  EXPECT_EQ(registry.counter_names(1), (std::vector<std::string>{"y", "y2"}));

  const CounterRegistry::Values first = registry.Sample();
  ASSERT_EQ(first.size(), 2u);
  EXPECT_EQ(first[0], (std::vector<uint64_t>{10}));
  EXPECT_EQ(first[1], (std::vector<uint64_t>{100, 200}));

  x = 17;
  y = 130;
  const CounterRegistry::Values second = registry.Sample();
  const CounterRegistry::Values delta = CounterRegistry::Delta(first, second);
  EXPECT_EQ(delta[0], (std::vector<uint64_t>{7}));
  EXPECT_EQ(delta[1], (std::vector<uint64_t>{30, 60}));
}

TEST(CounterRegistryTest, DeltaClampsRegressionsAndFlagsThem) {
  // The crash/reconnect story: an entity's provider reads the *current*
  // endpoint, and after a crash the fresh incarnation restarts its counters
  // from zero. Raw cur - prev would underflow uint64_t into a ~2^64 delta.
  CounterRegistry registry;
  uint64_t sent = 900;
  uint64_t recv = 870;
  registry.Register("conn", {"sent", "recv"},
                    [&]() -> std::vector<uint64_t> { return {sent, recv}; });

  const CounterRegistry::Values before = registry.Sample();
  // Crash + reconnect: the new endpoint starts over, then makes progress.
  sent = 40;
  recv = 35;
  const CounterRegistry::Values after = registry.Sample();

  CounterRegistry::DeltaStats stats;
  const CounterRegistry::Values delta = CounterRegistry::Delta(before, after, &stats);
  EXPECT_EQ(delta[0], (std::vector<uint64_t>{0, 0}));  // Clamped, not 2^64-ish.
  EXPECT_TRUE(stats.regressed());
  EXPECT_EQ(stats.regressed_cells, 2u);
}

TEST(CounterRegistryTest, DeltaStatsCleanWhenMonotonic) {
  CounterRegistry::Values prev = {{5, 10}};
  CounterRegistry::Values cur = {{5, 12}};
  CounterRegistry::DeltaStats stats;
  const CounterRegistry::Values delta = CounterRegistry::Delta(prev, cur, &stats);
  EXPECT_EQ(delta[0], (std::vector<uint64_t>{0, 2}));
  EXPECT_FALSE(stats.regressed());
  EXPECT_EQ(stats.regressed_cells, 0u);
}

TEST(CounterRegistryTest, DeltaMixedRegressionCountsOnlyRegressedCells) {
  CounterRegistry::Values prev = {{100}, {7, 3}};
  CounterRegistry::Values cur = {{60}, {9, 5}};  // Entity 0 regressed only.
  CounterRegistry::DeltaStats stats;
  const CounterRegistry::Values delta = CounterRegistry::Delta(prev, cur, &stats);
  EXPECT_EQ(delta[0], (std::vector<uint64_t>{0}));
  EXPECT_EQ(delta[1], (std::vector<uint64_t>{2, 2}));
  EXPECT_EQ(stats.regressed_cells, 1u);
}

}  // namespace
}  // namespace e2e
