#include "src/testbed/registry.h"

#include <gtest/gtest.h>

namespace e2e {
namespace {

TEST(CounterRegistryTest, SamplesEntitiesInRegistrationOrder) {
  CounterRegistry registry;
  uint64_t x = 10;
  uint64_t y = 100;
  registry.Register("a", {"x"}, [&]() -> std::vector<uint64_t> { return {x}; });
  registry.Register("b", {"y", "y2"}, [&]() -> std::vector<uint64_t> { return {y, y * 2}; });

  ASSERT_EQ(registry.num_entities(), 2u);
  EXPECT_EQ(registry.entity_name(0), "a");
  EXPECT_EQ(registry.entity_name(1), "b");
  EXPECT_EQ(registry.counter_names(1), (std::vector<std::string>{"y", "y2"}));

  const CounterRegistry::Values first = registry.Sample();
  ASSERT_EQ(first.size(), 2u);
  EXPECT_EQ(first[0], (std::vector<uint64_t>{10}));
  EXPECT_EQ(first[1], (std::vector<uint64_t>{100, 200}));

  x = 17;
  y = 130;
  const CounterRegistry::Values second = registry.Sample();
  const CounterRegistry::Values delta = CounterRegistry::Delta(first, second);
  EXPECT_EQ(delta[0], (std::vector<uint64_t>{7}));
  EXPECT_EQ(delta[1], (std::vector<uint64_t>{30, 60}));
}

}  // namespace
}  // namespace e2e
