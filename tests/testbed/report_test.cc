#include "src/testbed/report.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>

namespace e2e {
namespace {

TEST(TableTest, PadsColumnsToWidestCell) {
  Table table({"a", "long_header"});
  table.Row().Cell("wide-cell-content").Int(7);
  char buf[4096] = {};
  FILE* mem = fmemopen(buf, sizeof(buf) - 1, "w");
  table.Print(mem);
  std::fclose(mem);
  const std::string out = buf;
  // Header line padded to the data width.
  EXPECT_NE(out.find("a                  long_header"), std::string::npos);
  EXPECT_NE(out.find("wide-cell-content  7"), std::string::npos);
  // Separator line present.
  EXPECT_NE(out.find("-----"), std::string::npos);
}

TEST(TableTest, NumUsesRequestedPrecision) {
  Table table({"x"});
  table.Row().Num(3.14159, 3);
  char buf[1024] = {};
  FILE* mem = fmemopen(buf, sizeof(buf) - 1, "w");
  table.Print(mem);
  std::fclose(mem);
  EXPECT_NE(std::string(buf).find("3.142"), std::string::npos);
}

TEST(TableTest, CsvOutputIsCommaSeparated) {
  Table table({"a", "b"});
  table.Row().Cell("x").Int(-5);
  table.Row().Num(1.5, 1).Cell("y");
  char buf[1024] = {};
  FILE* mem = fmemopen(buf, sizeof(buf) - 1, "w");
  table.PrintCsv(mem);
  std::fclose(mem);
  EXPECT_STREQ(buf, "a,b\nx,-5\n1.5,y\n");
}

TEST(TableTest, RowCountTracksRows) {
  Table table({"a"});
  EXPECT_EQ(table.rows(), 0u);
  table.Row().Cell("1");
  table.Row().Cell("2");
  EXPECT_EQ(table.rows(), 2u);
}

TEST(ReportTest, FormatFactor) {
  EXPECT_EQ(FormatFactor(1.934), "1.93x");
  EXPECT_EQ(FormatFactor(0.5), "0.50x");
}

TEST(ReportTest, SwitchPortsTableOneRowPerPort) {
  SwitchPort::Counters c;
  c.packets_in = 12;
  c.packets_out = 10;
  c.tail_drops = 2;
  c.max_queue_bytes = 3000;
  Table table = SwitchPortsTable({{"sw0.server", c}, {"sw0.client0", SwitchPort::Counters{}}});
  EXPECT_EQ(table.rows(), 2u);
  char buf[4096] = {};
  FILE* mem = fmemopen(buf, sizeof(buf) - 1, "w");
  table.Print(mem);
  std::fclose(mem);
  const std::string out = buf;
  EXPECT_NE(out.find("sw0.server"), std::string::npos);
  EXPECT_NE(out.find("tail_drops"), std::string::npos);
  EXPECT_NE(out.find("3000"), std::string::npos);
}

TEST(ReportTest, RegistryArrayEmitsEntityObjects) {
  CounterRegistry registry;
  registry.Register("client.nic", {"rx", "tx"},
                    []() -> std::vector<uint64_t> { return {3, 4}; });
  registry.Register("sw0.server.port", {"drops"},
                    []() -> std::vector<uint64_t> { return {7}; });
  char buf[1024] = {};
  FILE* mem = fmemopen(buf, sizeof(buf) - 1, "w");
  JsonWriter json(mem);
  json.RegistryArray(registry, registry.Sample());
  json.Finish();
  std::fclose(mem);
  EXPECT_STREQ(buf,
               "[{\"entity\":\"client.nic\",\"rx\":3,\"tx\":4},"
               "{\"entity\":\"sw0.server.port\",\"drops\":7}]\n");
}

TEST(ReportTest, BannerContainsTitle) {
  char buf[256] = {};
  FILE* mem = fmemopen(buf, sizeof(buf) - 1, "w");
  PrintBanner("Hello Figures", mem);
  std::fclose(mem);
  EXPECT_NE(std::string(buf).find("=== Hello Figures ==="), std::string::npos);
}

}  // namespace
}  // namespace e2e
