#include "src/testbed/collector.h"

#include <gtest/gtest.h>

#include "src/testbed/topology.h"

namespace e2e {
namespace {

MessageRecord Rec(uint64_t id) {
  MessageRecord record;
  record.id = id;
  return record;
}

struct CollectorFixture {
  CollectorFixture()
      : conn([this] {
          TcpConfig tcp;
          tcp.nodelay = true;
          return topo.Connect(1, tcp, tcp);
        }()),
        hints(topo.sim().Now()),
        collector(&topo.sim(), conn.a, conn.b, &hints, Duration::Millis(1)) {}

  TwoHostTopology topo;
  ConnectedPair conn;
  HintTracker hints;
  CounterCollector collector;
};

TEST(CounterCollectorTest, SamplesAtConfiguredInterval) {
  CollectorFixture f;
  f.collector.Start(TimePoint::FromNanos(10500000));  // 10.5 ms.
  f.topo.sim().RunFor(Duration::Millis(20));
  // Samples at 0, 1, ..., 10 ms.
  EXPECT_EQ(f.collector.samples().size(), 11u);
  EXPECT_EQ(f.collector.samples()[3].time, TimePoint::FromNanos(3000000));
}

TEST(CounterCollectorTest, WindowEstimateSeesTraffic) {
  CollectorFixture f;
  f.collector.Start(TimePoint::FromNanos(50000000));
  // Steady request stream with an echoing server.
  f.conn.b->SetReadableCallback([&] {
    f.topo.server_host().app_core().SubmitFixed(Duration::Micros(2), [&] {
      auto in = f.conn.b->Recv();
      for (auto& m : in.messages) {
        f.conn.b->Send(10, Rec(m.id));
      }
    });
  });
  f.conn.a->SetReadableCallback([&] {
    f.topo.client_host().app_core().SubmitFixed(Duration::Micros(1), [&] { f.conn.a->Recv(); });
  });
  for (int i = 0; i < 400; ++i) {
    f.topo.sim().Schedule(Duration::Micros(100 * i), [&f, i] {
      f.topo.client_host().app_core().SubmitFixed(Duration::Nanos(200),
                                                  [&f, i] { f.conn.a->Send(500, Rec(i)); });
    });
  }
  f.topo.sim().RunFor(Duration::Millis(50));
  const E2eEstimate est = f.collector.EstimateWindow(
      UnitMode::kBytes, TimePoint::FromNanos(5000000), TimePoint::FromNanos(40000000));
  ASSERT_TRUE(est.valid());
  EXPECT_GT(est.latency->ToMicros(), 1.0);
  EXPECT_LT(est.latency->ToMicros(), 500.0);
  // A sends 500 B every 100 us -> ~5 MB/s byte throughput.
  EXPECT_NEAR(est.a_send_throughput, 5e6, 1e6);

  // Syscall mode sees the same latency in message units.
  const E2eEstimate syscalls = f.collector.EstimateWindow(
      UnitMode::kSyscalls, TimePoint::FromNanos(5000000), TimePoint::FromNanos(40000000));
  ASSERT_TRUE(syscalls.valid());
  EXPECT_NEAR(syscalls.a_send_throughput, 10000, 2000);
}

TEST(CounterCollectorTest, EmptyWindowIsInvalid) {
  CollectorFixture f;
  f.collector.Start(TimePoint::FromNanos(5000000));
  f.topo.sim().RunFor(Duration::Millis(10));
  // Window beyond the sampled range.
  const E2eEstimate est = f.collector.EstimateWindow(
      UnitMode::kBytes, TimePoint::FromNanos(50000000), TimePoint::FromNanos(60000000));
  EXPECT_FALSE(est.valid());
  // Window narrower than one sampling interval.
  const E2eEstimate narrow = f.collector.EstimateWindow(
      UnitMode::kBytes, TimePoint::FromNanos(1200000), TimePoint::FromNanos(1800000));
  EXPECT_FALSE(narrow.valid());
}

TEST(CounterCollectorTest, HintWindowAveragesHintQueue) {
  CollectorFixture f;
  f.collector.Start(TimePoint::FromNanos(20000000));
  // create/complete pairs with 50 us residence, every 200 us.
  for (int i = 0; i < 80; ++i) {
    f.topo.sim().Schedule(Duration::Micros(200 * i),
                          [&f] { f.hints.Create(f.topo.sim().Now()); });
    f.topo.sim().Schedule(Duration::Micros(200 * i + 50),
                          [&f] { f.hints.Complete(f.topo.sim().Now()); });
  }
  f.topo.sim().RunFor(Duration::Millis(20));
  const QueueAverages avgs =
      f.collector.HintWindow(TimePoint::FromNanos(1000000), TimePoint::FromNanos(15000000));
  ASSERT_TRUE(avgs.delay.has_value());
  EXPECT_NEAR(avgs.delay->ToMicros(), 50.0, 1.0);
  EXPECT_NEAR(avgs.throughput, 5000.0, 300.0);
}

TEST(CounterCollectorTest, EstimateSeriesHasOneEntryPerIntervalPair) {
  CollectorFixture f;
  f.collector.Start(TimePoint::FromNanos(8000000));
  f.topo.sim().RunFor(Duration::Millis(10));
  const auto series = f.collector.EstimateSeries(UnitMode::kBytes);
  EXPECT_EQ(series.size(), f.collector.samples().size() - 1);
}

}  // namespace
}  // namespace e2e
