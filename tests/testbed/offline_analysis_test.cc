#include "src/testbed/offline_analysis.h"

#include <gtest/gtest.h>

namespace e2e {
namespace {

E2eEstimate Est(double latency_us, double tput = 1000) {
  E2eEstimate est;
  est.latency = Duration::MicrosF(latency_us);
  est.a_send_throughput = tput;
  return est;
}

EstimateSeries Series(std::initializer_list<double> latencies_us) {
  EstimateSeries series;
  int64_t t = 0;
  for (double lat : latencies_us) {
    t += 1000000;
    series.emplace_back(TimePoint::FromNanos(t), lat > 0 ? Est(lat) : E2eEstimate{});
  }
  return series;
}

TEST(OfflineToggleTest, PicksTheBetterArmPerTick) {
  MinLatencyPolicy policy;
  // OFF better for 3 ticks, then ON better for 2.
  const auto off = Series({50, 50, 50, 400, 400});
  const auto on = Series({150, 150, 150, 100, 100});
  const WouldBeToggleResult r = AnalyzeWouldBeToggle(off, on, policy);
  EXPECT_EQ(r.ticks, 5u);
  EXPECT_EQ(r.choose_on, 2u);
  EXPECT_EQ(r.switches, 1u);
  EXPECT_DOUBLE_EQ(r.mean_chosen_est_us, (50 + 50 + 50 + 100 + 100) / 5.0);
  EXPECT_DOUBLE_EQ(r.mean_best_est_us, r.mean_chosen_est_us);  // MinLatency = best.
}

TEST(OfflineToggleTest, SkipsInvalidTicks) {
  MinLatencyPolicy policy;
  const auto off = Series({50, -1, 50});  // -1 encodes an invalid estimate.
  const auto on = Series({150, 100, 150});
  const WouldBeToggleResult r = AnalyzeWouldBeToggle(off, on, policy);
  EXPECT_EQ(r.ticks, 2u);
  EXPECT_EQ(r.choose_on, 0u);
  EXPECT_EQ(r.switches, 0u);
}

TEST(OfflineToggleTest, MismatchedLengthsUseCommonPrefix) {
  MinLatencyPolicy policy;
  const auto off = Series({50, 50});
  const auto on = Series({10, 10, 10, 10});
  const WouldBeToggleResult r = AnalyzeWouldBeToggle(off, on, policy);
  EXPECT_EQ(r.ticks, 2u);
  EXPECT_EQ(r.choose_on, 2u);
  EXPECT_EQ(r.OnFraction(), 1.0);
}

TEST(OfflineToggleTest, SloPolicyPrefersCompliantArm) {
  SloThroughputPolicy policy(Duration::Micros(500));
  const auto off = Series({5000, 5000});  // Violating.
  const auto on = Series({400, 400});     // Compliant.
  const WouldBeToggleResult r = AnalyzeWouldBeToggle(off, on, policy);
  EXPECT_EQ(r.choose_on, 2u);
}

TEST(OfflineToggleTest, EmptySeriesYieldsZeroTicks) {
  MinLatencyPolicy policy;
  const WouldBeToggleResult r = AnalyzeWouldBeToggle({}, {}, policy);
  EXPECT_EQ(r.ticks, 0u);
  EXPECT_EQ(r.OnFraction(), 0.0);
  EXPECT_EQ(r.mean_chosen_est_us, 0.0);
}

}  // namespace
}  // namespace e2e
