// SweepExecutor contract tests (DESIGN.md §12): bodies may run on any
// worker in any order, but commits run on the calling thread, strictly in
// cell-index order, exactly once per cell — which is what makes --jobs=N
// output byte-identical to --jobs=1. The jobs=1-vs-jobs=4 identity is
// checked here at the result level on a real robustness grid; the
// byte-level stdout/JSON comparison lives in CI (parallel-identity job).

#include "src/testbed/sweep/executor.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <thread>
#include <vector>

#include "src/testbed/robustness.h"

namespace e2e {
namespace {

TEST(ParseJobsFlagTest, ParsesWellFormedValues) {
  int jobs = -1;
  bool ok = false;
  EXPECT_TRUE(ParseJobsFlag("--jobs=4", &jobs, &ok));
  EXPECT_TRUE(ok);
  EXPECT_EQ(jobs, 4);

  EXPECT_TRUE(ParseJobsFlag("--jobs=1", &jobs, &ok));
  EXPECT_TRUE(ok);
  EXPECT_EQ(jobs, 1);

  // 0 = "use all cores"; always resolves to at least one worker.
  EXPECT_TRUE(ParseJobsFlag("--jobs=0", &jobs, &ok));
  EXPECT_TRUE(ok);
  EXPECT_GE(jobs, 1);
}

TEST(ParseJobsFlagTest, RejectsMalformedValues) {
  int jobs = -1;
  bool ok = true;
  EXPECT_TRUE(ParseJobsFlag("--jobs=banana", &jobs, &ok));
  EXPECT_FALSE(ok);
  ok = true;
  EXPECT_TRUE(ParseJobsFlag("--jobs=", &jobs, &ok));
  EXPECT_FALSE(ok);
  ok = true;
  EXPECT_TRUE(ParseJobsFlag("--jobs=-2", &jobs, &ok));
  EXPECT_FALSE(ok);
  // Not a --jobs flag at all: untouched, caller handles it.
  EXPECT_FALSE(ParseJobsFlag("out.json", &jobs, &ok));
  EXPECT_FALSE(ParseJobsFlag("--smoke", &jobs, &ok));
}

TEST(SweepExecutorTest, CommitsInIndexOrderOnCallerThread) {
  const std::thread::id caller = std::this_thread::get_id();
  constexpr size_t kCells = 64;
  std::vector<int> body_runs(kCells, 0);
  std::vector<size_t> commit_order;

  SweepExecutor executor(4);
  executor.Run(
      kCells,
      [&](size_t i) {
        // Uneven cell durations so completion order differs from index
        // order under parallelism.
        if (i % 7 == 0) {
          std::this_thread::sleep_for(std::chrono::microseconds(200));
        }
        ++body_runs[i];
      },
      [&](size_t i) {
        EXPECT_EQ(std::this_thread::get_id(), caller);
        commit_order.push_back(i);
      });

  ASSERT_EQ(commit_order.size(), kCells);
  for (size_t i = 0; i < kCells; ++i) {
    EXPECT_EQ(commit_order[i], i);
    EXPECT_EQ(body_runs[i], 1);
  }
}

TEST(SweepExecutorTest, SerialAndDegenerateShapes) {
  std::vector<size_t> order;
  SweepExecutor serial(1);
  serial.Run(
      3, [&](size_t i) { order.push_back(i * 10); }, [&](size_t i) { order.push_back(i); });
  // jobs=1 interleaves body/commit per cell, in order.
  EXPECT_EQ(order, (std::vector<size_t>{0, 0, 10, 1, 20, 2}));

  // Zero cells: no calls, no hang.
  SweepExecutor parallel(4);
  parallel.Run(
      0, [&](size_t) { FAIL() << "body on empty sweep"; },
      [&](size_t) { FAIL() << "commit on empty sweep"; });
}

// Stress shape for TSan: many tiny cells, more workers than cores, shared
// counters touched only through the documented contract (body writes its
// own cell's state; commit reads it on the caller thread).
TEST(SweepExecutorTest, StressManyCellsExactlyOnce) {
  constexpr size_t kCells = 512;
  std::atomic<size_t> bodies{0};
  std::vector<uint64_t> cell_value(kCells, 0);
  size_t commits = 0;
  uint64_t checksum = 0;

  SweepExecutor executor(8);
  executor.Run(
      kCells,
      [&](size_t i) {
        cell_value[i] = i * 2654435761u;
        bodies.fetch_add(1, std::memory_order_relaxed);
      },
      [&](size_t i) {
        ++commits;
        checksum ^= cell_value[i] + i;
      });

  EXPECT_EQ(bodies.load(), kCells);
  EXPECT_EQ(commits, kCells);
  uint64_t expected = 0;
  for (size_t i = 0; i < kCells; ++i) {
    expected ^= i * 2654435761u + i;
  }
  EXPECT_EQ(checksum, expected);
}

// End-to-end identity on a real grid: four robustness cells (tiny windows)
// produce bitwise-identical results under jobs=1 and jobs=4. This is the
// behavioral half of the byte-identity acceptance bar.
TEST(SweepExecutorTest, RobustnessGridIdenticalAcrossJobs) {
  const auto make_cell = [](size_t i) {
    RobustnessConfig config;
    config.seed = 42 + i;
    config.rate_rps = 20000;
    config.warmup = Duration::Millis(20);
    config.measure = Duration::Millis(60);
    config.fallback_enabled = (i % 2) == 0;
    if (i >= 2) {
      config.faults.Add(FaultKind::kMetaWithhold,
                        TimePoint::Zero() + config.warmup + Duration::Millis(20),
                        Duration::Millis(15));
    }
    return config;
  };

  const auto run_grid = [&](int jobs) {
    std::vector<RobustnessResult> results(4);
    SweepExecutor executor(jobs);
    executor.Run(
        results.size(), [&](size_t i) { results[i] = RunRobustnessExperiment(make_cell(i)); },
        [](size_t) {});
    return results;
  };

  const std::vector<RobustnessResult> serial = run_grid(1);
  const std::vector<RobustnessResult> parallel = run_grid(4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    const RobustnessResult& a = serial[i];
    const RobustnessResult& b = parallel[i];
    EXPECT_EQ(a.requests_completed, b.requests_completed) << "cell " << i;
    // Bitwise double comparison: determinism means identical, not close.
    EXPECT_EQ(std::memcmp(&a.measured_mean_us, &b.measured_mean_us, sizeof(double)), 0)
        << "cell " << i;
    EXPECT_EQ(std::memcmp(&a.measured_p99_us, &b.measured_p99_us, sizeof(double)), 0)
        << "cell " << i;
    EXPECT_EQ(a.controller_switches, b.controller_switches) << "cell " << i;
    EXPECT_EQ(a.frozen_ticks, b.frozen_ticks) << "cell " << i;
    EXPECT_EQ(a.health.demotions, b.health.demotions) << "cell " << i;
    EXPECT_EQ(a.faults.meta_windows, b.faults.meta_windows) << "cell " << i;
  }
}

}  // namespace
}  // namespace e2e
