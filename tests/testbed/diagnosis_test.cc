// End-to-end checks on the diagnosis drivers (src/testbed/diagnosis):
// classification accuracy against ground truth on small configs, the
// health-chain A/B the diag signal exists to win, and determinism.

#include "src/testbed/diagnosis/diagnosis.h"

#include <gtest/gtest.h>

namespace e2e {
namespace {

DiagnosisValidationConfig SmallValidation(DiagScenario scenario, FabricShape shape,
                                          CcAlgorithm algorithm) {
  DiagnosisValidationConfig config = DiagnosisValidationConfig::For(scenario, shape, algorithm);
  config.warmup = Duration::Millis(10);
  config.measure = Duration::Millis(40);
  config.seed = 11;
  return config;
}

TEST(DiagnosisValidationTest, NetworkBoundDumbbellIsDiagnosedAgainstGroundTruth) {
  const auto result =
      RunDiagnosisValidation(SmallValidation(DiagScenario::kNetworkBound,
                                             FabricShape::kDumbbell, CcAlgorithm::kReno));
  EXPECT_GT(result.epochs_compared, 100u);
  EXPECT_GE(result.accuracy, 0.9);
  // The scenario produced real congestion evidence and the diagnoser saw it.
  EXPECT_GT(result.diag_retransmits + result.diag_drops, 0u);
  EXPECT_GT(result.inferred_dwell[static_cast<size_t>(FlowLimit::kNetwork)], 0.9);
  // Passive RTT inference lands near the truth on a queue-dominated path.
  EXPECT_GT(result.rtt_samples, 0u);
  EXPECT_LT(result.rtt_err_pct, 25.0);
  EXPECT_EQ(result.non_tcp_packets, 0u);
  EXPECT_EQ(result.untracked_packets, 0u);
}

TEST(DiagnosisValidationTest, DctcpIncastIsDiagnosedThroughEcnEvidence) {
  const auto result = RunDiagnosisValidation(
      SmallValidation(DiagScenario::kNetworkBound, FabricShape::kStar, CcAlgorithm::kDctcp));
  EXPECT_GE(result.accuracy, 0.9);
  // DCTCP's evidence is marks and echoes, not loss.
  EXPECT_GT(result.diag_ce_marked, 0u);
  EXPECT_GT(result.diag_ece_acks, 0u);
}

TEST(DiagnosisValidationTest, ReceiverBoundFlowsReadAsRwndPinned) {
  const auto result = RunDiagnosisValidation(
      SmallValidation(DiagScenario::kReceiverBound, FabricShape::kDumbbell, CcAlgorithm::kReno));
  EXPECT_GE(result.accuracy, 0.9);
  EXPECT_GT(result.inferred_dwell[static_cast<size_t>(FlowLimit::kReceiver)], 0.9);
  // No congestion artifacts in the benign fabric.
  EXPECT_EQ(result.diag_retransmits, 0u);
  EXPECT_EQ(result.diag_drops, 0u);
}

TEST(DiagnosisValidationTest, SenderPacedFlowsReadAsApplicationLimited) {
  const auto result = RunDiagnosisValidation(
      SmallValidation(DiagScenario::kSenderPaced, FabricShape::kStar, CcAlgorithm::kReno));
  EXPECT_GE(result.accuracy, 0.9);
  EXPECT_GT(result.inferred_dwell[static_cast<size_t>(FlowLimit::kSender)], 0.9);
}

TEST(DiagnosisValidationTest, SameSeedRunsAreIdentical) {
  const auto config =
      SmallValidation(DiagScenario::kNetworkBound, FabricShape::kDumbbell, CcAlgorithm::kCubic);
  const auto a = RunDiagnosisValidation(config);
  const auto b = RunDiagnosisValidation(config);
  EXPECT_EQ(a.epochs_compared, b.epochs_compared);
  EXPECT_EQ(a.epochs_correct, b.epochs_correct);
  EXPECT_EQ(a.rtt_samples, b.rtt_samples);
  EXPECT_EQ(a.diag_retransmits, b.diag_retransmits);
  EXPECT_EQ(a.aggregate_goodput_bps, b.aggregate_goodput_bps);
}

DiagnosisFallbackConfig SmallFallback(bool use_diag) {
  DiagnosisFallbackConfig config;
  config.use_diag = use_diag;
  config.seed = 11;
  config.warmup = Duration::Millis(60);
  config.measure = Duration::Millis(150);
  config.withhold_start = Duration::Millis(100);
  config.withhold_duration = Duration::Millis(80);  // > health.static_after.
  config.withhold_period = Duration::Millis(100);
  config.withhold_count = 1;
  return config;
}

TEST(DiagnosisFallbackTest, DiagSignalKeepsWithholdWindowsOutOfStatic) {
  const auto with = RunDiagnosisFallback(SmallFallback(true));
  const auto without = RunDiagnosisFallback(SmallFallback(false));

  // Both arms saw the identical fault schedule.
  EXPECT_EQ(with.faults.meta_windows, 1u);
  EXPECT_EQ(without.faults.meta_windows, 1u);
  EXPECT_GT(with.faults.payloads_withheld, 0u);
  EXPECT_EQ(with.non_finite_samples, 0u);
  EXPECT_EQ(without.non_finite_samples, 0u);

  // The headline: diag-assisted mode strictly reduces frozen dwell inside
  // the blackout, and is only reachable when the signal is wired in.
  EXPECT_LT(with.static_in_withhold_ms, without.static_in_withhold_ms);
  EXPECT_GT(without.static_in_withhold_ms, 0.0);
  EXPECT_GT(with.time_in_diag_ms, 0.0);
  EXPECT_EQ(without.time_in_diag_ms, 0.0);
  EXPECT_GT(with.health.diag_rescues, 0u);

  // The tapped switch fed the diagnoser real traffic in both arms (the
  // controller's batching choices differ, so request counts may not).
  EXPECT_GT(with.requests_completed, 0u);
  EXPECT_GT(without.requests_completed, 0u);
  EXPECT_GT(with.diag_data_packets, 0u);
}

TEST(DiagnosisFallbackTest, SameSeedRunsAreIdentical) {
  const auto a = RunDiagnosisFallback(SmallFallback(true));
  const auto b = RunDiagnosisFallback(SmallFallback(true));
  EXPECT_EQ(a.requests_completed, b.requests_completed);
  EXPECT_EQ(a.measured_mean_us, b.measured_mean_us);
  EXPECT_EQ(a.frozen_ticks, b.frozen_ticks);
  EXPECT_EQ(a.static_in_withhold_ms, b.static_in_withhold_ms);
  EXPECT_EQ(a.health.demotions, b.health.demotions);
}

}  // namespace
}  // namespace e2e
