// Fleet experiment driver tests. Kept on small smoke configs (few clients,
// short windows) so the suite stays inside the tier-1 wall-clock budget;
// the scale sweep itself lives in bench/fleet_sweep.

#include "src/testbed/fleet.h"

#include <gtest/gtest.h>

namespace e2e {
namespace {

FleetExperimentConfig SmokeConfig(int num_clients) {
  FleetExperimentConfig config;
  config.fabric = FleetExperimentConfig::DefaultFleetFabric(num_clients);
  config.total_rate_rps = 9000;
  config.warmup = Duration::Millis(20);
  config.measure = Duration::Millis(80);
  config.drain = Duration::Millis(20);
  config.seed = 11;
  return config;
}

TEST(FleetExperimentTest, SmallStarFleetCompletesAndEstimates) {
  const FleetExperimentResult result = RunFleetExperiment(SmokeConfig(3));

  ASSERT_EQ(result.connections.size(), 3u);
  for (const FleetConnectionResult& cr : result.connections) {
    EXPECT_GT(cr.requests_completed, 0u) << "client " << cr.client;
    EXPECT_GT(cr.measured_mean_us, 0.0);
    ASSERT_TRUE(cr.est_bytes_us.has_value());
    EXPECT_GT(*cr.est_bytes_us, 0.0);
  }
  // Heterogeneous profiles cycle through the default bare-metal/VM pair.
  EXPECT_EQ(result.connections[0].profile, 0);
  EXPECT_EQ(result.connections[1].profile, 1);
  EXPECT_EQ(result.connections[2].profile, 0);

  EXPECT_GT(result.requests_completed, 0u);
  ASSERT_TRUE(result.fleet_est_bytes_us.has_value());
  // Pristine fabric at low load: the aggregate estimate is the right order
  // of magnitude (the tight error band is checked against the two-host
  // baseline in bench/fleet_sweep).
  ASSERT_TRUE(result.FleetEstimateErrorPct().has_value());
  EXPECT_LT(std::abs(*result.FleetEstimateErrorPct()), 90.0);
  EXPECT_EQ(result.forwarding_misses, 0u);
  EXPECT_EQ(result.switch_tail_drops, 0u);
  EXPECT_GT(result.server_port_max_queue_bytes, 0u);

  // Per-port stats: one port per host, each saw traffic.
  ASSERT_EQ(result.port_stats.size(), 4u);
  for (const auto& [name, counters] : result.port_stats) {
    EXPECT_GT(counters.packets_out, 0u) << name;
  }
  // The registry window covers every NIC, link, port, and switch.
  EXPECT_EQ(result.fabric_window.size(), 4u + 8u + 4u + 1u);
}

TEST(FleetExperimentTest, SameSeedRunsAreByteIdentical) {
  const FleetExperimentConfig config = SmokeConfig(2);
  const FleetExperimentResult a = RunFleetExperiment(config);
  const FleetExperimentResult b = RunFleetExperiment(config);

  // Exact double equality on purpose: the keyed-seed contract
  // (fabric_topology.h) promises bit-identical replays.
  EXPECT_EQ(a.measured_mean_us, b.measured_mean_us);
  EXPECT_EQ(a.measured_p50_us, b.measured_p50_us);
  EXPECT_EQ(a.measured_p99_us, b.measured_p99_us);
  EXPECT_EQ(a.fleet_est_bytes_us, b.fleet_est_bytes_us);
  EXPECT_EQ(a.online_est_us, b.online_est_us);
  EXPECT_EQ(a.achieved_krps, b.achieved_krps);
  EXPECT_EQ(a.requests_completed, b.requests_completed);
  EXPECT_EQ(a.retransmits, b.retransmits);
  EXPECT_EQ(a.switch_tail_drops, b.switch_tail_drops);
  EXPECT_EQ(a.switch_ecn_marked, b.switch_ecn_marked);
  EXPECT_EQ(a.server_port_max_queue_bytes, b.server_port_max_queue_bytes);
  EXPECT_EQ(a.server_port_max_queue_packets, b.server_port_max_queue_packets);
  ASSERT_EQ(a.connections.size(), b.connections.size());
  for (size_t i = 0; i < a.connections.size(); ++i) {
    EXPECT_EQ(a.connections[i].measured_mean_us, b.connections[i].measured_mean_us);
    EXPECT_EQ(a.connections[i].est_bytes_us, b.connections[i].est_bytes_us);
    EXPECT_EQ(a.connections[i].requests_completed, b.connections[i].requests_completed);
  }
  ASSERT_EQ(a.fabric_window.size(), b.fabric_window.size());
  for (size_t i = 0; i < a.fabric_window.size(); ++i) {
    EXPECT_EQ(a.fabric_window[i], b.fabric_window[i]);
  }
}

TEST(FleetExperimentTest, AddingAClientDoesNotPerturbExistingSeeds) {
  // The keyed DeriveSeed contract: client 0's arrival stream depends only
  // on (seed, domain, host id), so growing the fleet must not change it.
  // Compare client 0's request count over identical windows. (Latency WILL
  // differ — the fleets share the server — so counts on the same offered
  // stream are the right invariant.)
  FleetExperimentConfig two = SmokeConfig(2);
  FleetExperimentConfig three = SmokeConfig(3);
  // Equal per-client rate so client 0's Poisson process is identical.
  two.total_rate_rps = 3000 * 2;
  three.total_rate_rps = 3000 * 3;
  const FleetExperimentResult a = RunFleetExperiment(two);
  const FleetExperimentResult b = RunFleetExperiment(three);
  EXPECT_EQ(a.connections[0].requests_completed, b.connections[0].requests_completed);
}

}  // namespace
}  // namespace e2e
