#include "src/testbed/experiment.h"

#include <gtest/gtest.h>

namespace e2e {
namespace {

RedisExperimentConfig SmokeConfig(BatchMode mode) {
  RedisExperimentConfig config;
  config.rate_rps = 25000;
  config.batch_mode = mode;
  config.warmup = Duration::Millis(50);
  config.measure = Duration::Millis(150);
  config.seed = 2;
  return config;
}

TEST(ExperimentTest, BatchModeNames) {
  EXPECT_STREQ(BatchModeName(BatchMode::kStaticOff), "nodelay");
  EXPECT_STREQ(BatchModeName(BatchMode::kStaticOn), "nagle");
  EXPECT_STREQ(BatchModeName(BatchMode::kDynamic), "dynamic");
  EXPECT_STREQ(BatchModeName(BatchMode::kAimd), "aimd");
}

TEST(ExperimentTest, ResultFieldsArePopulatedAndConsistent) {
  const RedisExperimentResult r = RunRedisExperiment(SmokeConfig(BatchMode::kStaticOff));
  EXPECT_DOUBLE_EQ(r.offered_krps, 25.0);
  EXPECT_NEAR(r.achieved_krps, 25.0, 3.0);
  EXPECT_GT(r.requests_completed, 2000u);
  EXPECT_GT(r.measured_p50_us, 0);
  EXPECT_GE(r.measured_p99_us, r.measured_p50_us);
  EXPECT_GT(r.server_wire_packets, r.server_data_segments / 2);
  EXPECT_EQ(r.retransmits, 0u);  // Lossless link.
  EXPECT_GT(r.exchanges, 50u);
  EXPECT_NEAR(r.est_krps, 25.0, 3.0);  // Syscall-unit throughput = RPS.
}

TEST(ExperimentTest, EstimateForSelectsModes) {
  const RedisExperimentResult r = RunRedisExperiment(SmokeConfig(BatchMode::kStaticOff));
  EXPECT_EQ(r.EstimateFor(UnitMode::kBytes), r.est_bytes_us);
  EXPECT_EQ(r.EstimateFor(UnitMode::kPackets), r.est_packets_us);
  EXPECT_EQ(r.EstimateFor(UnitMode::kSyscalls), r.est_syscalls_us);
  EXPECT_EQ(r.EstimateFor(UnitMode::kHints), r.est_hints_us);
}

TEST(ExperimentTest, NagleModeCoalescesResponses) {
  const RedisExperimentResult off = RunRedisExperiment(SmokeConfig(BatchMode::kStaticOff));
  const RedisExperimentResult on = RunRedisExperiment(SmokeConfig(BatchMode::kStaticOn));
  EXPECT_NEAR(off.responses_per_packet, 1.0, 0.05);
  EXPECT_GT(on.responses_per_packet, 1.2);
  EXPECT_GT(on.server_nagle_holds, 0u);
  EXPECT_EQ(off.server_nagle_holds, 0u);
}

TEST(ExperimentTest, SameSeedIsBitStable) {
  const RedisExperimentResult a = RunRedisExperiment(SmokeConfig(BatchMode::kStaticOff));
  const RedisExperimentResult b = RunRedisExperiment(SmokeConfig(BatchMode::kStaticOff));
  EXPECT_DOUBLE_EQ(a.measured_mean_us, b.measured_mean_us);
  EXPECT_EQ(a.requests_completed, b.requests_completed);
  EXPECT_EQ(a.server_wire_packets, b.server_wire_packets);
  EXPECT_EQ(a.est_bytes_us, b.est_bytes_us);
}

TEST(ExperimentTest, DifferentSeedsDifferButAgreeStatistically) {
  RedisExperimentConfig config = SmokeConfig(BatchMode::kStaticOff);
  const RedisExperimentResult a = RunRedisExperiment(config);
  config.seed = 3;
  const RedisExperimentResult b = RunRedisExperiment(config);
  EXPECT_NE(a.measured_mean_us, b.measured_mean_us);
  EXPECT_NEAR(a.measured_mean_us, b.measured_mean_us, a.measured_mean_us * 0.2);
}

TEST(ExperimentTest, ExchangeIntervalControlsExchangeCount) {
  RedisExperimentConfig config = SmokeConfig(BatchMode::kStaticOff);
  config.exchange_interval = Duration::Millis(10);
  const RedisExperimentResult sparse = RunRedisExperiment(config);
  config.exchange_interval = Duration::Millis(1);
  const RedisExperimentResult dense = RunRedisExperiment(config);
  EXPECT_GT(dense.exchanges, sparse.exchanges * 5);
}

}  // namespace
}  // namespace e2e
