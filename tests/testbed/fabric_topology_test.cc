#include "src/testbed/fabric_topology.h"

#include <gtest/gtest.h>

#include "src/obs/registry.h"

namespace e2e {
namespace {

MessageRecord Rec(uint64_t id) {
  MessageRecord record;
  record.id = id;
  return record;
}

TcpConfig NoDelayTcp() {
  TcpConfig tcp;
  tcp.nodelay = true;
  return tcp;
}

TEST(FabricTopologyTest, StarNamesAndIds) {
  FabricTopology topo(FabricConfig::Star(2, 2));
  EXPECT_EQ(topo.client_host(0).name(), "client0");
  EXPECT_EQ(topo.client_host(1).name(), "client1");
  EXPECT_EQ(topo.server_host(0).name(), "server0");
  EXPECT_EQ(topo.server_host(1).name(), "server1");
  EXPECT_EQ(topo.client_host(0).id(), 1u);
  EXPECT_EQ(topo.client_host(1).id(), 2u);
  EXPECT_EQ(topo.server_host(0).id(), 3u);
  EXPECT_EQ(topo.server_host(1).id(), 4u);
  EXPECT_EQ(topo.num_switches(), 1u);
  // One output port per host.
  EXPECT_EQ(topo.client_switch()->num_ports(), 4u);
}

TEST(FabricTopologyTest, SingleHostSidesKeepBareNames) {
  // The two-host facade depends on this: count==1 drops the index suffix.
  FabricTopology topo(FabricConfig::Star(1, 1));
  EXPECT_EQ(topo.client_host(0).name(), "client");
  EXPECT_EQ(topo.server_host(0).name(), "server");
}

TEST(FabricTopologyTest, StarDeliversBothDirectionsThroughSwitch) {
  FabricTopology topo(FabricConfig::Star(2, 1));
  ConnectedPair c0 = topo.Connect(0, 0, 1, NoDelayTcp(), NoDelayTcp());
  ConnectedPair c1 = topo.Connect(1, 0, 2, NoDelayTcp(), NoDelayTcp());

  topo.client_host(0).app_core().SubmitFixed(Duration::Micros(1),
                                             [&] { c0.a->Send(400, Rec(10)); });
  topo.client_host(1).app_core().SubmitFixed(Duration::Micros(1),
                                             [&] { c1.a->Send(600, Rec(20)); });
  topo.sim().RunFor(Duration::Millis(5));

  auto at_s0 = c0.b->Recv();
  auto at_s1 = c1.b->Recv();
  EXPECT_EQ(at_s0.bytes, 400u);
  ASSERT_EQ(at_s0.messages.size(), 1u);
  EXPECT_EQ(at_s0.messages[0].id, 10u);
  EXPECT_EQ(at_s1.bytes, 600u);

  // Response path: server -> switch -> each client.
  topo.server_host(0).app_core().SubmitFixed(Duration::Micros(1), [&] {
    c0.b->Send(100, Rec(11));
    c1.b->Send(200, Rec(21));
  });
  topo.sim().RunFor(Duration::Millis(5));
  EXPECT_EQ(c0.a->Recv().bytes, 100u);
  EXPECT_EQ(c1.a->Recv().bytes, 200u);

  // Everything routed; both client ports and the server port carried data.
  EXPECT_EQ(topo.total_forwarding_misses(), 0u);
  EXPECT_EQ(topo.total_switch_drops(), 0u);
  Switch& sw = *topo.client_switch();
  for (size_t p = 0; p < sw.num_ports(); ++p) {
    EXPECT_GT(sw.port(p).counters().packets_out, 0u) << sw.port(p).name();
  }
}

TEST(FabricTopologyTest, DumbbellRoutesThroughTrunk) {
  FabricTopology topo(FabricConfig::Dumbbell(1, 1, /*trunk_bps=*/10e9));
  ASSERT_EQ(topo.num_switches(), 2u);
  ConnectedPair conn = topo.Connect(0, 0, 1, NoDelayTcp(), NoDelayTcp());

  topo.client_host(0).app_core().SubmitFixed(Duration::Micros(1),
                                             [&] { conn.a->Send(1000, Rec(1)); });
  topo.sim().RunFor(Duration::Millis(5));
  EXPECT_EQ(conn.b->Recv().bytes, 1000u);

  // The trunk ports (registered last on each switch) carried the traffic:
  // requests left on swL's trunk, acks came back over swR's.
  Switch& left = *topo.client_switch();
  Switch& right = *topo.server_switch();
  const SwitchPort& left_trunk = left.port(left.num_ports() - 1);
  const SwitchPort& right_trunk = right.port(right.num_ports() - 1);
  EXPECT_EQ(left_trunk.name(), "swL.trunk");
  EXPECT_EQ(right_trunk.name(), "swR.trunk");
  EXPECT_GT(left_trunk.counters().packets_out, 0u);
  EXPECT_GT(right_trunk.counters().packets_out, 0u);
  EXPECT_EQ(topo.total_forwarding_misses(), 0u);
}

TEST(FabricTopologyTest, ExportCountersCoversEveryComponent) {
  FabricTopology topo(FabricConfig::Star(2, 1));
  CounterRegistry registry;
  topo.ExportCounters(&registry);
  // 3 host NICs + 6 edge links (up/down per host) + 3 ports + 1 switch.
  EXPECT_EQ(registry.num_entities(), 13u);
  const CounterRegistry::Values values = registry.Sample();
  ASSERT_EQ(values.size(), registry.num_entities());
  for (size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(values[i].size(), registry.counter_names(i).size()) << registry.entity_name(i);
  }
}

TEST(FabricTopologyTest, LeafSpineLayoutAndLocalDelivery) {
  // 4 clients + 2 servers over 2 leaves x 2 spines: hosts round-robin over
  // the racks, switches are leaves-then-spines.
  FabricTopology topo(FabricConfig::LeafSpine(4, 2, 2, 2));
  ASSERT_EQ(topo.num_switches(), 4u);
  EXPECT_EQ(topo.num_leaves(), 2);
  EXPECT_EQ(topo.num_spines(), 2);
  EXPECT_EQ(topo.leaf_switch(0).name(), "leaf0");
  EXPECT_EQ(topo.leaf_switch(1).name(), "leaf1");
  EXPECT_EQ(topo.spine_switch(0).name(), "spine0");
  EXPECT_EQ(topo.spine_switch(1).name(), "spine1");
  EXPECT_EQ(topo.client_leaf(0), 0);
  EXPECT_EQ(topo.client_leaf(1), 1);
  EXPECT_EQ(topo.server_leaf(0), 0);
  EXPECT_EQ(topo.server_leaf(1), 1);
  // Each leaf: 2 clients + 1 server + 2 uplinks = 5 ports; each spine: one
  // down-port per leaf.
  EXPECT_EQ(topo.leaf_switch(0).num_ports(), 5u);
  EXPECT_EQ(topo.spine_switch(0).num_ports(), 2u);
  EXPECT_EQ(topo.leaf_switch(0).ecmp_group_size(), 2u);

  // Rack-local: client0 -> server0, both on leaf 0 — no spine hop.
  ConnectedPair local = topo.Connect(0, 0, 1, NoDelayTcp(), NoDelayTcp());
  topo.client_host(0).app_core().SubmitFixed(Duration::Micros(1),
                                             [&] { local.a->Send(400, Rec(1)); });
  topo.sim().RunFor(Duration::Millis(5));
  EXPECT_EQ(local.b->Recv().bytes, 400u);
  EXPECT_EQ(topo.total_forwarding_misses(), 0u);
  EXPECT_EQ(topo.spine_switch(0).ecmp_forwards() + topo.spine_switch(1).ecmp_forwards(), 0u);
}

TEST(FabricTopologyTest, LeafSpineCrossRackDelivery) {
  // client1 lives on leaf 1, server0 on leaf 0: both directions must cross
  // the spine layer via the leaves' ECMP uplink groups.
  FabricTopology topo(FabricConfig::LeafSpine(4, 2, 2, 2));
  ConnectedPair conn = topo.Connect(1, 0, 7, NoDelayTcp(), NoDelayTcp());
  topo.client_host(1).app_core().SubmitFixed(Duration::Micros(1),
                                             [&] { conn.a->Send(1000, Rec(2)); });
  topo.sim().RunFor(Duration::Millis(5));
  EXPECT_EQ(conn.b->Recv().bytes, 1000u);
  EXPECT_EQ(topo.total_forwarding_misses(), 0u);
  EXPECT_EQ(topo.total_switch_drops(), 0u);
  // The request crossed leaf1's uplink group and some spine's down-port to
  // leaf 0; acks crossed back the other way.
  EXPECT_GT(topo.leaf_switch(1).ecmp_forwards(), 0u);
  EXPECT_GT(topo.leaf_switch(0).ecmp_forwards(), 0u);
  uint64_t spine_packets = 0;
  for (int s = 0; s < topo.num_spines(); ++s) {
    for (size_t p = 0; p < topo.spine_switch(s).num_ports(); ++p) {
      spine_packets += topo.spine_switch(s).port(p).counters().packets_out;
    }
  }
  EXPECT_GT(spine_packets, 0u);

  // Response path.
  topo.server_host(0).app_core().SubmitFixed(Duration::Micros(1),
                                             [&] { conn.b->Send(500, Rec(3)); });
  topo.sim().RunFor(Duration::Millis(5));
  EXPECT_EQ(conn.a->Recv().bytes, 500u);
  EXPECT_EQ(topo.total_forwarding_misses(), 0u);
}

TEST(FabricTopologyTest, LeafSpineBulkCrossRackSustainsThroughput) {
  // A windowed bulk transfer across the core: if ECMP re-paths packets
  // mid-flow or a route is missing, retransmissions crater goodput. Trunk
  // buffers are provisioned above the send window so the path itself is
  // lossless — this is a path-stability test, not a buffer-sizing one
  // (src/testbed/buffer_sizing.cc owns the shallow-buffer regime).
  FabricConfig config = FabricConfig::LeafSpine(2, 1, 2, 2, /*trunk_bps=*/50e9);
  config.trunk_port.buffer_bytes = 8 * 1024 * 1024;
  FabricTopology topo(config);
  ASSERT_EQ(topo.client_leaf(1), 1);
  ASSERT_EQ(topo.server_leaf(0), 0);
  TcpConfig tcp = NoDelayTcp();
  tcp.sndbuf_bytes = 4 * 1024 * 1024;
  tcp.rcvbuf_bytes = 4 * 1024 * 1024;
  ConnectedPair conn = topo.Connect(1, 0, 1, tcp, tcp);
  uint64_t received = 0;
  conn.b->SetReadableCallback([&] { received += conn.b->Recv().bytes; });
  auto pump = [&] {
    while (conn.a->Send(64 * 1024, MessageRecord{})) {
    }
  };
  conn.a->SetWritableCallback(pump);
  topo.sim().Schedule(Duration::Zero(), pump);
  topo.sim().RunFor(Duration::Millis(20));
  // 20 ms at 50 Gbps is 125 MB of headroom; a healthy flow moves at least
  // tens of MB. Retransmits should be rare on an uncongested path.
  EXPECT_GT(received, 20u * 1024 * 1024)
      << "cross-rack bulk flow starved; retransmits=" << conn.a->stats().retransmits;
  EXPECT_LT(conn.a->stats().retransmits, 100u);
  EXPECT_EQ(topo.total_forwarding_misses(), 0u);
  EXPECT_EQ(topo.total_switch_drops(), 0u);
}

TEST(FabricTopologyTest, KeyedSeedsAreOrderFreeAndDistinct) {
  // Same key, same stream; any coordinate change yields a different stream.
  EXPECT_EQ(DeriveSeed(42, kFabricSeedUplink, 1), DeriveSeed(42, kFabricSeedUplink, 1));
  EXPECT_NE(DeriveSeed(42, kFabricSeedUplink, 1), DeriveSeed(42, kFabricSeedUplink, 2));
  EXPECT_NE(DeriveSeed(42, kFabricSeedUplink, 1), DeriveSeed(42, kFabricSeedDownlink, 1));
  EXPECT_NE(DeriveSeed(42, kFabricSeedUplink, 1), DeriveSeed(43, kFabricSeedUplink, 1));
}

}  // namespace
}  // namespace e2e
