#include "src/testbed/fabric_topology.h"

#include <gtest/gtest.h>

#include "src/obs/registry.h"

namespace e2e {
namespace {

MessageRecord Rec(uint64_t id) {
  MessageRecord record;
  record.id = id;
  return record;
}

TcpConfig NoDelayTcp() {
  TcpConfig tcp;
  tcp.nodelay = true;
  return tcp;
}

TEST(FabricTopologyTest, StarNamesAndIds) {
  FabricTopology topo(FabricConfig::Star(2, 2));
  EXPECT_EQ(topo.client_host(0).name(), "client0");
  EXPECT_EQ(topo.client_host(1).name(), "client1");
  EXPECT_EQ(topo.server_host(0).name(), "server0");
  EXPECT_EQ(topo.server_host(1).name(), "server1");
  EXPECT_EQ(topo.client_host(0).id(), 1u);
  EXPECT_EQ(topo.client_host(1).id(), 2u);
  EXPECT_EQ(topo.server_host(0).id(), 3u);
  EXPECT_EQ(topo.server_host(1).id(), 4u);
  EXPECT_EQ(topo.num_switches(), 1u);
  // One output port per host.
  EXPECT_EQ(topo.client_switch()->num_ports(), 4u);
}

TEST(FabricTopologyTest, SingleHostSidesKeepBareNames) {
  // The two-host facade depends on this: count==1 drops the index suffix.
  FabricTopology topo(FabricConfig::Star(1, 1));
  EXPECT_EQ(topo.client_host(0).name(), "client");
  EXPECT_EQ(topo.server_host(0).name(), "server");
}

TEST(FabricTopologyTest, StarDeliversBothDirectionsThroughSwitch) {
  FabricTopology topo(FabricConfig::Star(2, 1));
  ConnectedPair c0 = topo.Connect(0, 0, 1, NoDelayTcp(), NoDelayTcp());
  ConnectedPair c1 = topo.Connect(1, 0, 2, NoDelayTcp(), NoDelayTcp());

  topo.client_host(0).app_core().SubmitFixed(Duration::Micros(1),
                                             [&] { c0.a->Send(400, Rec(10)); });
  topo.client_host(1).app_core().SubmitFixed(Duration::Micros(1),
                                             [&] { c1.a->Send(600, Rec(20)); });
  topo.sim().RunFor(Duration::Millis(5));

  auto at_s0 = c0.b->Recv();
  auto at_s1 = c1.b->Recv();
  EXPECT_EQ(at_s0.bytes, 400u);
  ASSERT_EQ(at_s0.messages.size(), 1u);
  EXPECT_EQ(at_s0.messages[0].id, 10u);
  EXPECT_EQ(at_s1.bytes, 600u);

  // Response path: server -> switch -> each client.
  topo.server_host(0).app_core().SubmitFixed(Duration::Micros(1), [&] {
    c0.b->Send(100, Rec(11));
    c1.b->Send(200, Rec(21));
  });
  topo.sim().RunFor(Duration::Millis(5));
  EXPECT_EQ(c0.a->Recv().bytes, 100u);
  EXPECT_EQ(c1.a->Recv().bytes, 200u);

  // Everything routed; both client ports and the server port carried data.
  EXPECT_EQ(topo.total_forwarding_misses(), 0u);
  EXPECT_EQ(topo.total_switch_drops(), 0u);
  Switch& sw = *topo.client_switch();
  for (size_t p = 0; p < sw.num_ports(); ++p) {
    EXPECT_GT(sw.port(p).counters().packets_out, 0u) << sw.port(p).name();
  }
}

TEST(FabricTopologyTest, DumbbellRoutesThroughTrunk) {
  FabricTopology topo(FabricConfig::Dumbbell(1, 1, /*trunk_bps=*/10e9));
  ASSERT_EQ(topo.num_switches(), 2u);
  ConnectedPair conn = topo.Connect(0, 0, 1, NoDelayTcp(), NoDelayTcp());

  topo.client_host(0).app_core().SubmitFixed(Duration::Micros(1),
                                             [&] { conn.a->Send(1000, Rec(1)); });
  topo.sim().RunFor(Duration::Millis(5));
  EXPECT_EQ(conn.b->Recv().bytes, 1000u);

  // The trunk ports (registered last on each switch) carried the traffic:
  // requests left on swL's trunk, acks came back over swR's.
  Switch& left = *topo.client_switch();
  Switch& right = *topo.server_switch();
  const SwitchPort& left_trunk = left.port(left.num_ports() - 1);
  const SwitchPort& right_trunk = right.port(right.num_ports() - 1);
  EXPECT_EQ(left_trunk.name(), "swL.trunk");
  EXPECT_EQ(right_trunk.name(), "swR.trunk");
  EXPECT_GT(left_trunk.counters().packets_out, 0u);
  EXPECT_GT(right_trunk.counters().packets_out, 0u);
  EXPECT_EQ(topo.total_forwarding_misses(), 0u);
}

TEST(FabricTopologyTest, ExportCountersCoversEveryComponent) {
  FabricTopology topo(FabricConfig::Star(2, 1));
  CounterRegistry registry;
  topo.ExportCounters(&registry);
  // 3 host NICs + 6 edge links (up/down per host) + 3 ports + 1 switch.
  EXPECT_EQ(registry.num_entities(), 13u);
  const CounterRegistry::Values values = registry.Sample();
  ASSERT_EQ(values.size(), registry.num_entities());
  for (size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(values[i].size(), registry.counter_names(i).size()) << registry.entity_name(i);
  }
}

TEST(FabricTopologyTest, KeyedSeedsAreOrderFreeAndDistinct) {
  // Same key, same stream; any coordinate change yields a different stream.
  EXPECT_EQ(DeriveSeed(42, kFabricSeedUplink, 1), DeriveSeed(42, kFabricSeedUplink, 1));
  EXPECT_NE(DeriveSeed(42, kFabricSeedUplink, 1), DeriveSeed(42, kFabricSeedUplink, 2));
  EXPECT_NE(DeriveSeed(42, kFabricSeedUplink, 1), DeriveSeed(42, kFabricSeedDownlink, 1));
  EXPECT_NE(DeriveSeed(42, kFabricSeedUplink, 1), DeriveSeed(43, kFabricSeedUplink, 1));
}

}  // namespace
}  // namespace e2e
