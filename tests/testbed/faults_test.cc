#include "src/testbed/faults/injector.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/net/host.h"
#include "src/net/link.h"
#include "src/sim/simulator.h"
#include "src/testbed/faults/fault_schedule.h"
#include "src/obs/registry.h"

namespace e2e {
namespace {

TimePoint Ms(int64_t ms) { return TimePoint::FromNanos(ms * 1000000); }

WirePayload PayloadAt(uint32_t us) {
  WirePayload payload;
  payload.unacked = {us, us / 10, us / 5};
  payload.unread = {us, 0, 0};
  payload.ackdelay = {us, 0, 0};
  return payload;
}

TEST(FaultScheduleTest, EventsSortByStartTimeStably) {
  FaultSchedule schedule;
  schedule.Add(FaultKind::kServerCrash, Ms(5), Duration::Millis(1))
      .Add(FaultKind::kClientStall, Ms(1), Duration::Millis(2))
      .Add(FaultKind::kMetaWithhold, Ms(5), Duration::Millis(3));
  ASSERT_EQ(schedule.events().size(), 3u);
  EXPECT_EQ(schedule.events()[0].kind, FaultKind::kClientStall);
  // Equal start times keep Add order.
  EXPECT_EQ(schedule.events()[1].kind, FaultKind::kServerCrash);
  EXPECT_EQ(schedule.events()[2].kind, FaultKind::kMetaWithhold);
}

TEST(FaultScheduleTest, PeriodicStopsStrictlyBeforeEnd) {
  FaultSchedule schedule;
  // Starts at 10, 30, 50, 70, 90: the event at 110 would not begin
  // strictly before end=110... and neither does 110 itself.
  schedule.Periodic(FaultKind::kServerStall, Ms(10), Ms(110), Duration::Millis(20),
                    Duration::Millis(5));
  EXPECT_EQ(schedule.CountOf(FaultKind::kServerStall), 5u);
  EXPECT_EQ(schedule.CountOf(FaultKind::kClientStall), 0u);
  EXPECT_EQ(schedule.events().back().at, Ms(90));
  EXPECT_FALSE(schedule.empty());
}

TEST(FaultInjectorTest, StallFreezesTargetHostCores) {
  Simulator sim;
  Link link(&sim, Link::Config{}, Rng(1), "l");
  Host host(&sim, &link, Nic::Config{}, "h");

  FaultSchedule schedule;
  schedule.Add(FaultKind::kClientStall, Ms(1), Duration::Millis(2));
  FaultTargets targets;
  targets.client_host = &host;
  FaultInjector injector(&sim, schedule, targets);
  injector.Arm();

  // Zero-cost work submitted mid-stall must not start until the stall
  // lifts at 3 ms.
  TimePoint done_at;
  sim.Schedule(Duration::MicrosF(1500), [&] {
    EXPECT_TRUE(host.app_core().stalled());
    host.app_core().SubmitFixed(Duration::Zero(), [&] { done_at = sim.Now(); });
  });
  sim.Run();
  EXPECT_EQ(done_at, Ms(3));
  EXPECT_EQ(injector.counters().client_stalls, 1u);
  EXPECT_EQ(injector.counters().server_stalls, 0u);
}

TEST(FaultInjectorTest, CrashCallsHooksAndTracksServerLiveness) {
  Simulator sim;
  FaultSchedule schedule;
  schedule.Add(FaultKind::kServerCrash, Ms(2), Duration::Millis(5));
  FaultTargets targets;
  std::vector<TimePoint> crashes;
  std::vector<TimePoint> restarts;
  targets.crash_server = [&] { crashes.push_back(sim.Now()); };
  targets.restart_server = [&] { restarts.push_back(sim.Now()); };
  FaultInjector injector(&sim, schedule, targets);
  injector.Arm();

  sim.Schedule(Duration::Millis(3), [&] { EXPECT_FALSE(injector.server_up()); });
  sim.Run();
  EXPECT_TRUE(injector.server_up());
  ASSERT_EQ(crashes.size(), 1u);
  EXPECT_EQ(crashes[0], Ms(2));
  ASSERT_EQ(restarts.size(), 1u);
  EXPECT_EQ(restarts[0], Ms(7));
  EXPECT_EQ(injector.counters().crashes, 1u);
  EXPECT_EQ(injector.counters().restarts, 1u);
}

TEST(FaultInjectorTest, MetadataFilterAppliesActiveWindow) {
  Simulator sim;
  FaultSchedule schedule;
  schedule.Add(FaultKind::kMetaWithhold, Ms(1), Duration::Millis(1))
      .Add(FaultKind::kMetaDuplicate, Ms(3), Duration::Millis(1))
      .Add(FaultKind::kMetaStaleReplay, Ms(5), Duration::Millis(2));
  FaultInjector injector(&sim, schedule, FaultTargets{});
  injector.Arm();
  auto filter = injector.MakeMetadataFilter();

  // A payload delivered at each phase; the filter consults Now().
  std::vector<std::vector<WirePayload>> seen;
  for (int64_t us : {500, 1500, 2500, 3500, 5100, 5600, 6900, 7500}) {
    sim.ScheduleAt(TimePoint::FromNanos(us * 1000), [&, us] {
      seen.push_back(filter(PayloadAt(static_cast<uint32_t>(us))));
    });
  }
  sim.Run();
  ASSERT_EQ(seen.size(), 8u);
  EXPECT_EQ(seen[0].size(), 1u);  // 0.5 ms: no window, passthrough.
  EXPECT_EQ(seen[1].size(), 0u);  // 1.5 ms: withheld.
  EXPECT_EQ(seen[2].size(), 1u);  // 2.5 ms: window closed.
  EXPECT_EQ(seen[3].size(), 2u);  // 3.5 ms: duplicated.
  EXPECT_EQ(seen[3][0], seen[3][1]);
  // 5.1 ms: first payload in the replay window passes and is cached.
  ASSERT_EQ(seen[4].size(), 1u);
  EXPECT_EQ(seen[4][0], PayloadAt(5100));
  // 5.6 / 6.9 ms: later payloads are replaced by the cached one.
  ASSERT_EQ(seen[5].size(), 1u);
  EXPECT_EQ(seen[5][0], PayloadAt(5100));
  ASSERT_EQ(seen[6].size(), 1u);
  EXPECT_EQ(seen[6][0], PayloadAt(5100));
  // 7.5 ms: window expired, passthrough resumes.
  ASSERT_EQ(seen[7].size(), 1u);
  EXPECT_EQ(seen[7][0], PayloadAt(7500));

  EXPECT_EQ(injector.counters().meta_windows, 3u);
  EXPECT_EQ(injector.counters().payloads_withheld, 1u);
  EXPECT_EQ(injector.counters().payloads_duplicated, 1u);
  EXPECT_EQ(injector.counters().payloads_replayed, 2u);
}

TEST(FaultInjectorTest, WithholdTakesPrecedenceOverOtherWindows) {
  Simulator sim;
  FaultSchedule schedule;
  schedule.Add(FaultKind::kMetaWithhold, Ms(1), Duration::Millis(2))
      .Add(FaultKind::kMetaDuplicate, Ms(1), Duration::Millis(2))
      .Add(FaultKind::kMetaStaleReplay, Ms(1), Duration::Millis(2));
  FaultInjector injector(&sim, schedule, FaultTargets{});
  injector.Arm();
  auto filter = injector.MakeMetadataFilter();
  size_t delivered = 99;
  sim.Schedule(Duration::Millis(2), [&] { delivered = filter(PayloadAt(2000)).size(); });
  sim.Run();
  EXPECT_EQ(delivered, 0u);
  EXPECT_EQ(injector.counters().payloads_withheld, 1u);
  EXPECT_EQ(injector.counters().payloads_duplicated, 0u);
  EXPECT_EQ(injector.counters().payloads_replayed, 0u);
}

TEST(FaultInjectorTest, PastEventsAreDroppedByArm) {
  Simulator sim;
  sim.Schedule(Duration::Millis(10), [] {});
  sim.Run();  // Now() = 10 ms.
  FaultSchedule schedule;
  schedule.Add(FaultKind::kServerCrash, Ms(2), Duration::Millis(1));
  FaultTargets targets;
  int crashes = 0;
  targets.crash_server = [&] { ++crashes; };
  targets.restart_server = [] {};
  FaultInjector injector(&sim, schedule, targets);
  injector.Arm();
  sim.Run();
  EXPECT_EQ(crashes, 0);
  EXPECT_EQ(injector.counters().crashes, 0u);
}

TEST(FaultInjectorTest, RegisterCountersExportsFaultHistory) {
  Simulator sim;
  FaultSchedule schedule;
  schedule.Add(FaultKind::kMetaWithhold, Ms(1), Duration::Millis(1));
  FaultInjector injector(&sim, schedule, FaultTargets{});
  injector.Arm();
  auto filter = injector.MakeMetadataFilter();
  sim.Schedule(Duration::MicrosF(1500), [&] { (void)filter(PayloadAt(1500)); });
  sim.Run();

  CounterRegistry registry;
  injector.RegisterCounters(&registry, "faults");
  ASSERT_EQ(registry.num_entities(), 1u);
  EXPECT_EQ(registry.entity_name(0), "faults");
  const auto& names = registry.counter_names(0);
  const auto values = registry.Sample();
  ASSERT_EQ(values.size(), 1u);
  ASSERT_EQ(values[0].size(), names.size());
  uint64_t windows = 99, withheld = 99, crashes = 99;
  for (size_t i = 0; i < names.size(); ++i) {
    if (names[i] == "meta_windows") windows = values[0][i];
    if (names[i] == "payloads_withheld") withheld = values[0][i];
    if (names[i] == "crashes") crashes = values[0][i];
  }
  EXPECT_EQ(windows, 1u);
  EXPECT_EQ(withheld, 1u);
  EXPECT_EQ(crashes, 0u);
}

}  // namespace
}  // namespace e2e
