#include "src/sim/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace e2e {

void RunningStats::Add(double x) {
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double RunningStats::variance() const {
  if (count_ < 2) {
    return 0.0;
  }
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void RunningStats::Merge(const RunningStats& other) {
  if (other.count_ == 0) {
    return;
  }
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double n1 = static_cast<double>(count_);
  const double n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

LogHistogram::LogHistogram(double min_value, double max_value, int buckets_per_decade)
    : min_value_(min_value), log_min_(std::log(min_value)) {
  assert(min_value > 0 && max_value > min_value && buckets_per_decade > 0);
  scale_ = static_cast<double>(buckets_per_decade) / std::log(10.0);
  const size_t n = static_cast<size_t>((std::log(max_value) - log_min_) * scale_) + 2;
  counts_.assign(n, 0);
}

size_t LogHistogram::BucketFor(double value) const {
  const double pos = (std::log(value) - log_min_) * scale_;
  return static_cast<size_t>(std::max(pos, 0.0));
}

double LogHistogram::BucketUpper(size_t idx) const {
  return std::exp(log_min_ + static_cast<double>(idx + 1) / scale_);
}

void LogHistogram::Add(double value) {
  ++count_;
  sum_ += value;
  max_seen_ = std::max(max_seen_, value);
  if (value < min_value_) {
    ++underflow_;
    return;
  }
  const size_t idx = BucketFor(value);
  if (idx >= counts_.size()) {
    // Above the configured range: count explicitly instead of silently
    // clamping into the last bucket (which would cap high quantiles at the
    // last bucket's upper bound and misreport the overflow mass as lying
    // inside the range).
    ++overflow_;
    return;
  }
  ++counts_[idx];
}

double LogHistogram::Quantile(double q) const {
  if (count_ == 0) {
    return 0.0;
  }
  q = std::clamp(q, 0.0, 1.0);
  // At least one sample must be at or below the answer: q = 0 means "the
  // smallest sample", not "a value no sample is below" (ceil(0) == 0 would
  // make `seen >= target` trivially true at the first bucket).
  const int64_t target =
      std::max<int64_t>(1, static_cast<int64_t>(std::ceil(q * static_cast<double>(count_))));
  int64_t seen = underflow_;
  if (seen >= target) {
    return min_value_;
  }
  for (size_t i = 0; i < counts_.size(); ++i) {
    seen += counts_[i];
    if (seen >= target) {
      return std::min(BucketUpper(i), max_seen_);
    }
  }
  // The target falls in the overflow tail (above the configured range).
  return max_seen_;
}

void LogHistogram::Merge(const LogHistogram& other) {
  assert(counts_.size() == other.counts_.size());
  assert(min_value_ == other.min_value_ && scale_ == other.scale_);
  for (size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  count_ += other.count_;
  underflow_ += other.underflow_;
  overflow_ += other.overflow_;
  sum_ += other.sum_;
  max_seen_ = std::max(max_seen_, other.max_seen_);
}

void LogHistogram::Clear() {
  std::fill(counts_.begin(), counts_.end(), 0);
  count_ = 0;
  underflow_ = 0;
  overflow_ = 0;
  sum_ = 0;
  max_seen_ = 0;
}

void TimeWeighted::Set(TimePoint now, double value) {
  assert(now >= last_time_);
  integral_ += value_ * (now - last_time_).ToSeconds();
  last_time_ = now;
  value_ = value;
}

double TimeWeighted::AverageUntil(TimePoint now) const {
  const double elapsed = (now - window_start_).ToSeconds();
  if (elapsed <= 0) {
    return value_;
  }
  const double integral = integral_ + value_ * (now - last_time_).ToSeconds();
  return integral / elapsed;
}

void TimeWeighted::ResetWindow(TimePoint now) {
  assert(now >= last_time_);
  window_start_ = now;
  last_time_ = now;
  integral_ = 0;
}

}  // namespace e2e
