// Minimal leveled logging for simulator components.
//
// Logging is off by default (level kWarn) so benches stay quiet; tests and
// examples can raise verbosity per component. Messages carry the virtual
// timestamp when a simulator is attached.

#ifndef SRC_SIM_LOGGING_H_
#define SRC_SIM_LOGGING_H_

#include <cstdarg>
#include <string>

#include "src/sim/time.h"

namespace e2e {

enum class LogLevel { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kError = 4, kOff = 5 };

// Global minimum level; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// printf-style log entry point. `component` is a short tag such as "tcp".
void LogF(LogLevel level, TimePoint when, const char* component, const char* fmt, ...)
    __attribute__((format(printf, 4, 5)));

}  // namespace e2e

// Convenience macros that skip argument evaluation when filtered out.
#define E2E_LOG(level, when, component, ...)          \
  do {                                                \
    if ((level) >= ::e2e::GetLogLevel()) {            \
      ::e2e::LogF(level, when, component, __VA_ARGS__); \
    }                                                 \
  } while (0)

#define E2E_TRACE(when, component, ...) \
  E2E_LOG(::e2e::LogLevel::kTrace, when, component, __VA_ARGS__)
#define E2E_DEBUG(when, component, ...) \
  E2E_LOG(::e2e::LogLevel::kDebug, when, component, __VA_ARGS__)
#define E2E_INFO(when, component, ...) \
  E2E_LOG(::e2e::LogLevel::kInfo, when, component, __VA_ARGS__)
#define E2E_WARN(when, component, ...) \
  E2E_LOG(::e2e::LogLevel::kWarn, when, component, __VA_ARGS__)
#define E2E_ERROR(when, component, ...) \
  E2E_LOG(::e2e::LogLevel::kError, when, component, __VA_ARGS__)

#endif  // SRC_SIM_LOGGING_H_
