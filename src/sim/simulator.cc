#include "src/sim/simulator.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <utility>

#include "src/obs/trace.h"

namespace e2e {

namespace sim_internal {
thread_local ExecContext g_exec;
}  // namespace sim_internal

namespace {
// Spin iterations before falling back to a condition variable at the two
// barrier edges. Epochs are short (microseconds of real time), so a brief
// yield loop usually catches the transition without a futex round trip.
constexpr int kBarrierSpins = 1024;
}  // namespace

Simulator::Domain::Domain(uint32_t id_in)
    : id(id_in),
      arena(std::make_unique<ArenaMemoryResource>()),
      queue(arena.get()),
      outbox(arena.get()) {}
Simulator::Domain::~Domain() = default;
Simulator::Domain::Domain(Domain&&) noexcept = default;

Simulator::Simulator() {
  domains_.emplace_back(0);
  root_ = &domains_[0];
}

Simulator::~Simulator() {
  assert(worker_threads_.empty());  // Workers live only inside a run.
}

uint32_t Simulator::AddDomain() {
  assert(worker_threads_.empty());
  const uint32_t id = static_cast<uint32_t>(domains_.size());
  domains_.emplace_back(id);
  root_ = &domains_[0];  // Deque: stable, but keep the invariant obvious.
  return id;
}

void Simulator::SetWorkers(int workers) { workers_ = std::max(1, workers); }

EventId Simulator::Schedule(Duration delay, Callback cb) {
  assert(delay >= Duration::Zero());
  Domain* d = CurrentDomain();
  EventId id = d->queue.Push(d->now + delay, std::move(cb));
  id.domain = d->id;
  return id;
}

EventId Simulator::ScheduleAt(TimePoint when, Callback cb) {
  Domain* d = CurrentDomain();
  assert(when >= d->now);
  EventId id = d->queue.Push(when, std::move(cb));
  id.domain = d->id;
  return id;
}

EventId Simulator::ScheduleCrossAt(uint32_t dst_domain, TimePoint when, Callback cb) {
  assert(dst_domain < domains_.size());
  sim_internal::ExecContext& ctx = sim_internal::g_exec;
  Domain* src = CurrentDomain();
  if (dst_domain == src->id) {
    assert(when >= src->now);
    EventId id = src->queue.Push(when, std::move(cb));
    id.domain = src->id;
    return id;
  }
  if (ctx.sim == this && ctx.parallel) {
    // Worker context: the destination runs concurrently. Buffer the message
    // for the barrier merge. The lookahead contract makes that safe: the
    // delivery cannot land inside the current epoch.
    assert(when >= src->now + lookahead_);
    src->outbox.push_back(CrossMsg{when, src->next_cross_seq++, src->id, dst_domain,
                                   std::move(cb)});
    return kInvalidEventId;
  }
  // Setup or global-event context: every domain is paused; push directly.
  Domain& dst = domains_[dst_domain];
  EventId id = dst.queue.Push(when, std::move(cb));
  id.domain = dst_domain;
  return id;
}

bool Simulator::Cancel(EventId id) {
  if (id == kInvalidEventId) {
    return false;
  }
  assert(id.domain < domains_.size());
  // A worker may only cancel events owned by the domain it is executing —
  // anything else would race with the owning worker.
  assert(!(sim_internal::g_exec.sim == this && sim_internal::g_exec.parallel) ||
         sim_internal::g_exec.domain_id == id.domain);
  return domains_[id.domain].queue.Cancel(id);
}

// ---------------------------------------------------------------------------
// Single-domain fast paths: bit-for-bit the pre-sharding engine.
// ---------------------------------------------------------------------------

bool Simulator::Step() {
  assert(domains_.size() == 1);
  if (root_->queue.Empty()) {
    return false;
  }
  EventQueue::Entry entry = root_->queue.Pop();
  assert(entry.when >= root_->now);
  root_->now = entry.when;
  ++root_->events_fired;
  entry.cb();
  return true;
}

uint64_t Simulator::RunLegacy() {
  uint64_t fired = 0;
  while (Step()) {
    ++fired;
  }
  return fired;
}

uint64_t Simulator::RunUntilLegacy(TimePoint deadline) {
  uint64_t fired = 0;
  Domain& d = *root_;
  while (!d.queue.Empty() && d.queue.NextTime() <= deadline) {
    EventQueue::Entry entry = d.queue.Pop();
    d.now = entry.when;
    ++d.events_fired;
    entry.cb();
    ++fired;
  }
  if (d.now < deadline) {
    d.now = deadline;
  }
  return fired;
}

uint64_t Simulator::Run() {
  if (domains_.size() == 1) {
    return RunLegacy();
  }
  return RunSharded(TimePoint::Max(), /*clamp=*/false);
}

uint64_t Simulator::RunUntil(TimePoint deadline) {
  if (domains_.size() == 1) {
    return RunUntilLegacy(deadline);
  }
  return RunSharded(deadline, /*clamp=*/true);
}

uint64_t Simulator::events_fired() const {
  uint64_t total = 0;
  for (const Domain& d : domains_) {
    total += d.events_fired;
  }
  return total;
}

size_t Simulator::pending_events() const {
  size_t total = 0;
  for (const Domain& d : domains_) {
    total += d.queue.size();
  }
  return total;
}

Simulator::QueueOccupancy Simulator::queue_occupancy() const {
  QueueOccupancy occ;
  occ.domains = domains_.size();
  uint64_t sum = 0;
  for (const Domain& d : domains_) {
    const uint64_t peak = d.queue.max_live();
    occ.peak_max = std::max(occ.peak_max, peak);
    sum += peak;
  }
  occ.peak_mean = occ.domains == 0 ? 0.0 : static_cast<double>(sum) / static_cast<double>(occ.domains);
  return occ;
}

// ---------------------------------------------------------------------------
// Parallel engine.
// ---------------------------------------------------------------------------

uint64_t Simulator::RunSharded(TimePoint deadline, bool clamp) {
  assert(lookahead_ > Duration::Zero());
  assert(sim_internal::g_exec.sim != this);  // No nested runs.
  const uint64_t fired_before = events_fired();
  SetUpDomainTraces();
  StartWorkers();
  const uint32_t n = num_domains();
  worker_lanes_.resize(static_cast<size_t>(active_workers_));
  // t_dom — the earliest pending shard event — is maintained incrementally:
  // after each epoch it is the min of the per-worker minima plus the
  // earliest barrier delivery. The lane heaps are rebuilt (a full scan) only
  // on entry and after global events, which may push into any shard queue
  // directly; every other epoch touches only domains that actually have
  // work.
  bool rescan_domains = true;
  TimePoint t_dom = TimePoint::Max();
  for (;;) {
    if (rescan_domains) {
      rescan_domains = false;
      t_dom = RebuildLanes();
    }
    const TimePoint t_g = root_->queue.Empty() ? TimePoint::Max() : root_->queue.NextTime();
    if (t_g == TimePoint::Max() && t_dom == TimePoint::Max()) {
      break;  // Drained.
    }
    if (t_g > deadline && t_dom > deadline) {
      break;  // Nothing left within the deadline.
    }
    if (t_g <= t_dom) {
      // Global events: run on this thread with every domain paused and every
      // clock advanced to the event time (no domain has pending work before
      // t_g, so this is a consistent snapshot). Global events at one instant
      // all run before any domain resumes; new global events they schedule
      // for the same instant run too (FIFO).
      for (uint32_t d = 0; d < n; ++d) {
        domains_[d].now = t_g;
      }
      while (!root_->queue.Empty() && root_->queue.NextTime() == t_g) {
        EventQueue::Entry entry = root_->queue.Pop();
        ++root_->events_fired;
        entry.cb();
      }
      rescan_domains = true;  // Global events may touch any shard queue.
      continue;
    }
    // Parallel epoch: each shard runs its events in [t_dom, end_excl). The
    // bound is safe because a cross-shard message sent at time tau arrives
    // at tau + lookahead or later, and tau >= t_dom for every sender.
    TimePoint end = TimePoint::Max() - lookahead_ >= t_dom ? t_dom + lookahead_ : TimePoint::Max();
    if (t_g < end) {
      end = t_g;
    }
    if (deadline != TimePoint::Max() && deadline + Duration::Nanos(1) < end) {
      end = deadline + Duration::Nanos(1);
    }
    epoch_end_excl_ = end;
    if (active_workers_ > 1) {
      outstanding_.store(active_workers_ - 1, std::memory_order_relaxed);
      {
        std::lock_guard<std::mutex> lock(start_mu_);
        epoch_seq_.fetch_add(1, std::memory_order_release);
      }
      start_cv_.notify_all();
      RunEpochShare(0);
      int spins = 0;
      while (outstanding_.load(std::memory_order_acquire) != 0) {
        if (++spins < kBarrierSpins) {
          std::this_thread::yield();
          continue;
        }
        std::unique_lock<std::mutex> lock(done_mu_);
        done_cv_.wait_for(lock, std::chrono::microseconds(100), [this] {
          return outstanding_.load(std::memory_order_acquire) == 0;
        });
      }
    } else {
      RunEpochShare(0);
    }
    t_dom = TimePoint::Max();
    for (int w = 0; w < active_workers_; ++w) {
      t_dom = std::min(t_dom, worker_lanes_[static_cast<size_t>(w)].min_next);
    }
    t_dom = std::min(t_dom, FlushMailboxes());
  }
  StopWorkers();
  if (clamp) {
    for (uint32_t d = 0; d < n; ++d) {
      if (domains_[d].now < deadline) {
        domains_[d].now = deadline;
      }
    }
  }
  MergeDomainTraces();
  return events_fired() - fired_before;
}

void Simulator::LanePush(WorkerLane& lane, LaneEntry entry) {
  lane.heap.push_back(entry);
  std::push_heap(lane.heap.begin(), lane.heap.end(),
                 [](const LaneEntry& a, const LaneEntry& b) { return a.when > b.when; });
}

TimePoint Simulator::RebuildLanes() {
  for (WorkerLane& lane : worker_lanes_) {
    lane.heap.clear();
  }
  TimePoint t_dom = TimePoint::Max();
  const uint32_t n = num_domains();
  for (uint32_t d = 1; d < n; ++d) {
    Domain& dom = domains_[d];
    if (!dom.queue.Empty()) {
      const TimePoint next = dom.queue.NextTime();
      t_dom = std::min(t_dom, next);
      LanePush(worker_lanes_[static_cast<size_t>(LaneFor(d))], LaneEntry{next, d});
    }
  }
  return t_dom;
}

void Simulator::RunEpochShare(int worker_id) {
  const TimePoint end = epoch_end_excl_;
  sim_internal::ExecContext& ctx = sim_internal::g_exec;
  const sim_internal::ExecContext saved = ctx;
  WorkerLane& lane = worker_lanes_[static_cast<size_t>(worker_id)];
  auto later = [](const LaneEntry& a, const LaneEntry& b) { return a.when > b.when; };
  // Drain the lane heap: only domains with an entry before the epoch end are
  // touched. A popped entry is acted on only if it still matches the
  // domain's NextTime — a mismatch means the domain already ran (or was
  // re-armed) under a fresher entry that is also in the heap.
  while (!lane.heap.empty() && lane.heap.front().when < end) {
    const LaneEntry top = lane.heap.front();
    std::pop_heap(lane.heap.begin(), lane.heap.end(), later);
    lane.heap.pop_back();
    Domain& dom = domains_[top.domain];
    if (dom.queue.Empty() || dom.queue.NextTime() != top.when) {
      continue;  // Stale entry.
    }
    ctx = sim_internal::ExecContext{this, &dom, top.domain, /*parallel=*/true};
    {
      ScopedTrace bind_trace(trace_sharded_ ? dom.trace.get() : nullptr);
      while (!dom.queue.Empty()) {
        if (dom.queue.NextTime() >= end) {
          break;
        }
        EventQueue::Entry entry = dom.queue.Pop();
        assert(entry.when >= dom.now);
        dom.now = entry.when;
        ++dom.events_fired;
        entry.cb();
      }
    }
    ctx = saved;
    if (!dom.outbox.empty()) {
      // Drain into the worker lane now, while this thread still owns the
      // domain: the coordinator then merges `active_workers_` lanes, not
      // every domain's outbox.
      lane.outbox.insert(lane.outbox.end(), std::make_move_iterator(dom.outbox.begin()),
                         std::make_move_iterator(dom.outbox.end()));
      dom.outbox.clear();
    }
    if (!dom.queue.Empty()) {
      LanePush(lane, LaneEntry{dom.queue.NextTime(), top.domain});
    }
  }
  // The validated heap top is the worker's contribution to the next epoch
  // bound; stale leftovers surfacing here are discarded for good.
  lane.min_next = TimePoint::Max();
  while (!lane.heap.empty()) {
    const LaneEntry top = lane.heap.front();
    Domain& dom = domains_[top.domain];
    if (!dom.queue.Empty() && dom.queue.NextTime() == top.when) {
      lane.min_next = top.when;
      break;
    }
    std::pop_heap(lane.heap.begin(), lane.heap.end(), later);
    lane.heap.pop_back();
  }
}

TimePoint Simulator::FlushMailboxes() {
  flush_buf_.clear();
  for (WorkerLane& lane : worker_lanes_) {
    for (CrossMsg& m : lane.outbox) {
      flush_buf_.push_back(std::move(m));
    }
    lane.outbox.clear();
  }
  TimePoint flushed_min = TimePoint::Max();
  if (flush_buf_.empty()) {
    return flushed_min;
  }
  // The determinism tie-break: deliveries are pushed in (when, src domain,
  // src seq) order, so destination-queue FIFO seqs — and therefore the whole
  // downstream execution — are independent of the worker count.
  std::sort(flush_buf_.begin(), flush_buf_.end(), [](const CrossMsg& a, const CrossMsg& b) {
    if (a.when != b.when) {
      return a.when < b.when;
    }
    if (a.src_domain != b.src_domain) {
      return a.src_domain < b.src_domain;
    }
    return a.src_seq < b.src_seq;
  });
  ++flush_round_;
  for (CrossMsg& m : flush_buf_) {
    Domain& dst = domains_[m.dst_domain];
    dst.queue.Push(m.when, std::move(m.cb));
    if (m.dst_domain != 0) {
      flushed_min = std::min(flushed_min, m.when);
      // Re-arm the destination's lane entry so an idle domain wakes up. The
      // buffer is sorted by `when`, so the first delivery per destination is
      // its minimum; flush_stamp dedupes the rest of this round. The pushed
      // time may exceed the queue's true NextTime (an older event is still
      // pending) — then the older valid entry wins and this one goes stale.
      if (dst.flush_stamp != flush_round_) {
        dst.flush_stamp = flush_round_;
        LanePush(worker_lanes_[static_cast<size_t>(LaneFor(m.dst_domain))],
                 LaneEntry{m.when, m.dst_domain});
      }
    }
  }
  flush_buf_.clear();
  return flushed_min;
}

// ---------------------------------------------------------------------------
// Worker pool.
// ---------------------------------------------------------------------------

void Simulator::StartWorkers() {
  active_workers_ = std::max(1, std::min(workers_, static_cast<int>(num_domains()) - 1));
  if (active_workers_ <= 1) {
    return;
  }
  stop_workers_.store(false, std::memory_order_relaxed);
  // Capture the epoch counter before any epoch of this run starts, so a
  // worker that gets scheduled late still sees every epoch as "new".
  const uint64_t base_epoch = epoch_seq_.load(std::memory_order_relaxed);
  worker_threads_.reserve(static_cast<size_t>(active_workers_) - 1);
  for (int w = 1; w < active_workers_; ++w) {
    worker_threads_.emplace_back([this, w, base_epoch] { WorkerMain(w, base_epoch); });
  }
}

void Simulator::StopWorkers() {
  if (worker_threads_.empty()) {
    return;
  }
  {
    std::lock_guard<std::mutex> lock(start_mu_);
    stop_workers_.store(true, std::memory_order_release);
  }
  start_cv_.notify_all();
  for (std::thread& t : worker_threads_) {
    t.join();
  }
  worker_threads_.clear();
  stop_workers_.store(false, std::memory_order_relaxed);
}

void Simulator::WorkerMain(int worker_id, uint64_t seen) {
  for (;;) {
    uint64_t cur = seen;
    int spins = 0;
    for (;;) {
      cur = epoch_seq_.load(std::memory_order_acquire);
      if (cur != seen || stop_workers_.load(std::memory_order_acquire)) {
        break;
      }
      if (++spins < kBarrierSpins) {
        std::this_thread::yield();
        continue;
      }
      std::unique_lock<std::mutex> lock(start_mu_);
      start_cv_.wait(lock, [&] {
        return epoch_seq_.load(std::memory_order_acquire) != seen ||
               stop_workers_.load(std::memory_order_acquire);
      });
    }
    if (cur == seen) {
      return;  // Stop requested with no new epoch.
    }
    seen = cur;
    RunEpochShare(worker_id);
    if (outstanding_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard<std::mutex> lock(done_mu_);
      done_cv_.notify_one();
    }
  }
}

// ---------------------------------------------------------------------------
// Sharded tracing.
// ---------------------------------------------------------------------------

void Simulator::SetUpDomainTraces() {
  run_trace_ = CurrentTrace();
  trace_sharded_ = run_trace_ != nullptr && num_domains() > 1;
  if (!trace_sharded_) {
    return;
  }
  // Memory for the per-shard rings is carved out of the caller's budget:
  // capacity / shard count (floored), so total trace memory stays within a
  // small factor of the unsharded run.
  const size_t per_domain =
      std::max<size_t>(run_trace_->capacity() / (num_domains() - 1), size_t{1} << 10);
  for (uint32_t d = 1; d < num_domains(); ++d) {
    Domain& dom = domains_[d];
    if (!dom.trace) {
      dom.trace = std::make_unique<TraceRecorder>(per_domain, run_trace_->mask());
    }
  }
}

void Simulator::MergeDomainTraces() {
  if (!trace_sharded_) {
    run_trace_ = nullptr;
    return;
  }
  // Gather (events, source) streams: source 0 is the caller's recorder
  // (setup-time and global events), source d>0 is shard d. The merged order
  // — (time, source, per-source ordinal) — depends only on the domain
  // layout, never on the worker count.
  struct MergeRef {
    TimePoint time;
    uint32_t source;
    uint64_t ordinal;
    const TraceEvent* event;
  };
  std::vector<std::vector<TraceEvent>> streams;
  streams.reserve(num_domains());
  streams.push_back(run_trace_->Events());
  for (uint32_t d = 1; d < num_domains(); ++d) {
    streams.push_back(domains_[d].trace->Events());
  }
  std::vector<MergeRef> refs;
  size_t total = 0;
  for (const auto& s : streams) {
    total += s.size();
  }
  refs.reserve(total);
  for (uint32_t s = 0; s < streams.size(); ++s) {
    for (uint64_t i = 0; i < streams[s].size(); ++i) {
      refs.push_back(MergeRef{streams[s][i].time, s, i, &streams[s][i]});
    }
  }
  std::sort(refs.begin(), refs.end(), [](const MergeRef& a, const MergeRef& b) {
    if (a.time != b.time) {
      return a.time < b.time;
    }
    if (a.source != b.source) {
      return a.source < b.source;
    }
    return a.ordinal < b.ordinal;
  });
  run_trace_->Clear();
  for (const MergeRef& r : refs) {
    TraceEvent e = *r.event;
    if (r.source > 0 && e.track != 0) {
      // Track ids are recorder-local; remap by name into the caller's table.
      e.track = run_trace_->Track(domains_[r.source].trace->track_names()[e.track - 1]);
    }
    run_trace_->Record(e);
  }
  for (uint32_t d = 1; d < num_domains(); ++d) {
    domains_[d].trace->Clear();
  }
  trace_sharded_ = false;
  run_trace_ = nullptr;
}

// ---------------------------------------------------------------------------
// DomainScope.
// ---------------------------------------------------------------------------

DomainScope::DomainScope(Simulator* sim, uint32_t domain) : saved_(sim_internal::g_exec) {
  assert(!(saved_.sim == sim && saved_.parallel));  // Not from a worker.
  sim_internal::g_exec =
      sim_internal::ExecContext{sim, &sim->DomainAt(domain), domain, /*parallel=*/false};
}

DomainScope::~DomainScope() { sim_internal::g_exec = saved_; }

}  // namespace e2e
