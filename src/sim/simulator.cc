#include "src/sim/simulator.h"

#include <cassert>
#include <utility>

namespace e2e {

EventId Simulator::Schedule(Duration delay, Callback cb) {
  assert(delay >= Duration::Zero());
  return queue_.Push(now_ + delay, std::move(cb));
}

EventId Simulator::ScheduleAt(TimePoint when, Callback cb) {
  assert(when >= now_);
  return queue_.Push(when, std::move(cb));
}

bool Simulator::Step() {
  if (queue_.Empty()) {
    return false;
  }
  EventQueue::Entry entry = queue_.Pop();
  assert(entry.when >= now_);
  now_ = entry.when;
  ++events_fired_;
  entry.cb();
  return true;
}

uint64_t Simulator::Run() {
  uint64_t fired = 0;
  while (Step()) {
    ++fired;
  }
  return fired;
}

uint64_t Simulator::RunUntil(TimePoint deadline) {
  uint64_t fired = 0;
  while (!queue_.Empty() && queue_.NextTime() <= deadline) {
    EventQueue::Entry entry = queue_.Pop();
    now_ = entry.when;
    ++events_fired_;
    entry.cb();
    ++fired;
  }
  if (now_ < deadline) {
    now_ = deadline;
  }
  return fired;
}

}  // namespace e2e
