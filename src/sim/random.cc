#include "src/sim/random.h"

#include <cassert>
#include <cmath>

namespace e2e {
namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t x = seed;
  for (auto& word : s_) {
    word = SplitMix64(x);
  }
}

uint64_t Rng::NextU64() {
  // xoshiro256** by Blackman & Vigna (public domain reference algorithm).
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::Uniform01() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform01(); }

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  const uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
  if (range == 0) {  // Full 64-bit range.
    return static_cast<int64_t>(NextU64());
  }
  // Modulo bias is negligible for our ranges (<< 2^64) and determinism
  // matters more than perfect uniformity here.
  return lo + static_cast<int64_t>(NextU64() % range);
}

double Rng::Exponential(double mean) {
  assert(mean > 0);
  double u = Uniform01();
  if (u <= 0.0) {
    u = 0x1.0p-53;
  }
  return -mean * std::log1p(-u);
}

Duration Rng::ExpInterarrival(double per_second) {
  assert(per_second > 0);
  return Duration::SecondsF(Exponential(1.0 / per_second));
}

bool Rng::Bernoulli(double p) { return Uniform01() < p; }

double Rng::Normal(double mean, double stddev) {
  double u1 = Uniform01();
  if (u1 <= 0.0) {
    u1 = 0x1.0p-53;
  }
  const double u2 = Uniform01();
  const double r = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * r * std::cos(2.0 * M_PI * u2);
}

double Rng::LogNormalMeanCv(double mean, double cv) {
  assert(mean > 0 && cv >= 0);
  if (cv == 0) {
    return mean;
  }
  const double sigma2 = std::log(1.0 + cv * cv);
  const double mu = std::log(mean) - sigma2 / 2.0;
  return std::exp(Normal(mu, std::sqrt(sigma2)));
}

int64_t Rng::Zipf(int64_t n, double s) {
  assert(n > 0);
  if (s == 0.0) {
    return UniformInt(0, n - 1);
  }
  // Inverse-CDF over explicit weights; fine for the modest n used in tests.
  double total = 0;
  for (int64_t i = 1; i <= n; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i), s);
  }
  double target = Uniform01() * total;
  for (int64_t i = 1; i <= n; ++i) {
    target -= 1.0 / std::pow(static_cast<double>(i), s);
    if (target <= 0) {
      return i - 1;
    }
  }
  return n - 1;
}

Rng Rng::Fork() { return Rng(NextU64()); }

uint64_t DeriveSeed(uint64_t base, uint64_t domain, uint64_t index) {
  uint64_t x = base;
  uint64_t mixed = SplitMix64(x);
  x ^= domain * 0xd1342543de82ef95ULL;
  mixed ^= SplitMix64(x);
  x ^= index * 0xaf251af3b0f025b5ULL;
  mixed ^= SplitMix64(x);
  return mixed;
}

}  // namespace e2e
