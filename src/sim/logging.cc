#include "src/sim/logging.h"

#include <cstdio>

namespace e2e {
namespace {

LogLevel g_level = LogLevel::kWarn;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace:
      return "TRACE";
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) { g_level = level; }
LogLevel GetLogLevel() { return g_level; }

void LogF(LogLevel level, TimePoint when, const char* component, const char* fmt, ...) {
  if (level < g_level) {
    return;
  }
  char msg[1024];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(msg, sizeof(msg), fmt, args);
  va_end(args);
  std::fprintf(stderr, "[%12.6fms] %-5s %-8s %s\n", when.ToMicros() / 1000.0, LevelName(level),
               component, msg);
}

}  // namespace e2e
