// The discrete-event simulation loop: a virtual clock plus an event queue.
//
// All simulated components share one `Simulator`. Scheduling a callback in
// the past is an error; scheduling at the current instant is allowed and the
// callback fires after already-pending events for that instant (FIFO order).
//
// ---- Domains: conservative-lookahead parallel DES (DESIGN.md §16) ----
//
// A simulator is partitioned into *domains*. Domain 0 — the global domain —
// always exists and is the whole simulator in the classic single-threaded
// mode; every Schedule()/Run() call behaves exactly as it always has when no
// further domains are added. Drivers that want within-cell parallelism call
// AddDomain() once per shard (one shard per host or switch), assign each
// component to its shard, and route cross-shard event handoffs (link
// arrivals) through ScheduleCrossAt().
//
// Execution then proceeds in barrier epochs: with L = SetLookahead() the
// minimum cross-domain link latency, every domain may safely run ahead to
// (earliest pending event time + L) without seeing another domain's output,
// because any cross-domain message sent at time t arrives at t + L or later.
// Worker threads execute disjoint domain sets during an epoch; cross-domain
// messages buffer in per-source outboxes and are merged at the barrier in
// (time, source domain, source sequence) order — a total order independent
// of the worker count, which makes an N-worker run bit-identical to the
// 1-worker run. Domain-0 events are *global* events (collector ticks,
// control loops): they run on the coordinator thread with all domains paused
// and every domain clock advanced to the global event's time, so they may
// read and mutate any domain's state (wrap mutations that schedule in a
// DomainScope so timers land in the touched component's domain).
//
// Determinism contract: for a fixed domain layout, results are bit-identical
// for every worker count (including 1). The *layout* is part of the cell
// definition — a domain-partitioned run orders same-instant events by
// (domain, intra-domain seq) rather than global insertion seq, so it is a
// different (equally valid) serialization than the single-domain run.

#ifndef SRC_SIM_SIMULATOR_H_
#define SRC_SIM_SIMULATOR_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <memory_resource>
#include <mutex>
#include <thread>
#include <vector>

#include "src/sim/arena.h"
#include "src/sim/event_queue.h"
#include "src/sim/time.h"

namespace e2e {

class Simulator;
class TraceRecorder;

namespace sim_internal {

// Per-thread execution context: which simulator/domain the running event
// belongs to. Bound by worker threads for the duration of a domain
// activation and by DomainScope for setup-time pokes; empty (sim == nullptr)
// on threads that never entered a domain, where Schedule()/Now() fall back
// to the simulator's global domain.
struct ExecContext {
  const Simulator* sim = nullptr;
  void* domain = nullptr;  // Simulator::Domain*, opaque at this layer.
  uint32_t domain_id = 0;
  bool parallel = false;  // True only while a worker runs an epoch.
};
extern thread_local ExecContext g_exec;

}  // namespace sim_internal

class Simulator {
 public:
  using Callback = EventQueue::Callback;

  Simulator();
  ~Simulator();
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  // ---- Domain setup (before the first Run*/Step call) ----

  // Creates a new domain and returns its id (1, 2, ...). Domain 0 (global)
  // always exists. Must not be called while a run is in progress.
  uint32_t AddDomain();

  // Total number of domains including the global domain 0.
  uint32_t num_domains() const { return static_cast<uint32_t>(domains_.size()); }

  // Worker threads used for parallel epochs (default 1; excess workers
  // beyond the domain count are not spawned). 1 keeps execution on the
  // calling thread but still runs the epoch/barrier machinery, so results
  // are identical to any higher worker count.
  void SetWorkers(int workers);
  int workers() const { return workers_; }

  // The conservative lookahead window: a lower bound on the latency of any
  // cross-domain handoff. Required (> 0) when domains exist.
  void SetLookahead(Duration lookahead) { lookahead_ = lookahead; }
  Duration lookahead() const { return lookahead_; }

  // ---- Scheduling ----

  // Current virtual time: the executing domain's clock on worker threads /
  // inside a DomainScope, the global clock otherwise.
  TimePoint Now() const {
    const sim_internal::ExecContext& ctx = sim_internal::g_exec;
    if (ctx.sim == this) {
      return static_cast<const Domain*>(ctx.domain)->now;
    }
    return root_->now;
  }

  // Schedules `cb` after `delay` (>= 0) in the current domain (the executing
  // event's domain; the global domain from outside any domain context).
  // Returns an id usable with Cancel().
  EventId Schedule(Duration delay, Callback cb);

  // Schedules `cb` at absolute time `when` (>= Now()) in the current domain.
  EventId ScheduleAt(TimePoint when, Callback cb);

  // Schedules `cb` at `when` in domain `dst_domain`. The only legal way to
  // make another domain act: from inside a parallel epoch the message is
  // buffered and delivered at the next barrier (requiring when >= sender
  // time + lookahead); from setup / global events it is a direct push. The
  // returned id is valid only for same-domain deliveries — cross-domain
  // deliveries return kInvalidEventId and cannot be canceled.
  EventId ScheduleCrossAt(uint32_t dst_domain, TimePoint when, Callback cb);

  // Cancels a pending event; returns false if it already fired/was canceled.
  // From worker context, only events of the executing domain may be
  // canceled.
  bool Cancel(EventId id);

  // ---- Running ----

  // Runs until every queue drains. Returns the number of events fired.
  uint64_t Run();

  // Runs events with time <= `deadline`, then sets the clock(s) to
  // `deadline` (even if the queues drained earlier). Returns the number of
  // events fired.
  uint64_t RunUntil(TimePoint deadline);

  // Convenience: RunUntil(Now() + d).
  uint64_t RunFor(Duration d) { return RunUntil(Now() + d); }

  // Executes exactly one event if any is pending. Single-domain only.
  bool Step();

  // Total events executed over the simulator's lifetime (all domains).
  uint64_t events_fired() const;

  // Number of currently pending events (all domains).
  size_t pending_events() const;

  // The id of the domain the calling context executes in (0 outside any
  // domain context).
  uint32_t current_domain() const {
    const sim_internal::ExecContext& ctx = sim_internal::g_exec;
    return ctx.sim == this ? ctx.domain_id : 0;
  }

  // Aggregate per-domain event-queue occupancy (lifetime high-water of live
  // events per domain): the max and mean across all domains. Reported by
  // engine_perf's fleet cell so queue pressure per shard is visible in
  // BENCH_engine.json.
  struct QueueOccupancy {
    uint64_t peak_max = 0;   // Largest per-domain high-water.
    double peak_mean = 0.0;  // Mean per-domain high-water.
    uint64_t domains = 0;    // Domains aggregated (all, including global).
  };
  QueueOccupancy queue_occupancy() const;

 private:
  friend class DomainScope;

  // A buffered cross-domain delivery, merged at the epoch barrier in
  // (when, src_domain, src_seq) order — the determinism tie-break key.
  struct CrossMsg {
    TimePoint when;
    uint64_t src_seq;
    uint32_t src_domain;
    uint32_t dst_domain;
    Callback cb;
  };

  // One shard: its own clock, event queue, outbox, and trace recorder.
  // Padded to a cache line so workers on distinct domains never false-share.
  // The arena backs the queue's slot store and the outbox, so a domain's
  // hot-path allocations stay in chunks only its owning worker touches;
  // declaration order matters (arena must outlive — i.e. precede — both).
  struct alignas(64) Domain {
    explicit Domain(uint32_t id_in);  // Out of line: TraceRecorder is incomplete here.
    ~Domain();
    Domain(Domain&&) noexcept;
    // No move assignment: the pmr members would keep the destination's
    // arena, silently mixing two domains' storage. Domains are only ever
    // emplaced into the deque.
    Domain& operator=(Domain&&) = delete;
    uint32_t id;
    TimePoint now;
    std::unique_ptr<ArenaMemoryResource> arena;
    EventQueue queue;
    uint64_t events_fired = 0;
    uint64_t next_cross_seq = 0;
    // Last FlushMailboxes round that re-armed this domain's lane entry;
    // dedupes lane pushes when one barrier delivers many messages here.
    uint64_t flush_stamp = 0;
    std::pmr::vector<CrossMsg> outbox;
    std::unique_ptr<TraceRecorder> trace;
  };

  Domain& DomainAt(uint32_t id) { return domains_[id]; }
  Domain* CurrentDomain() {
    sim_internal::ExecContext& ctx = sim_internal::g_exec;
    return ctx.sim == this ? static_cast<Domain*>(ctx.domain) : root_;
  }

  // Single-domain fast paths (bit-for-bit the pre-domain engine).
  uint64_t RunLegacy();
  uint64_t RunUntilLegacy(TimePoint deadline);

  // Parallel engine: runs global events and barrier epochs up to `deadline`
  // (inclusive). When `clamp` is set, advances every clock to `deadline`
  // after the last event.
  uint64_t RunSharded(TimePoint deadline, bool clamp);

  // Runs worker `worker_id`'s share of the current epoch by draining the
  // worker's lane heap: every owned domain with a pending event before
  // `epoch_end_excl_` executes (with its trace recorder bound), and a fresh
  // lane entry is pushed for each domain that still has work. Records the
  // minimum next-event time across the worker's domains — and the
  // cross-domain messages they emitted — in worker_lanes_[worker_id]. An
  // epoch therefore costs O(active domains · log heap), never O(all
  // domains): at 100k+ mostly idle domains that is the difference between a
  // shard curve that scales and one that drowns in empty-queue scans.
  void RunEpochShare(int worker_id);

  // Merges every worker lane's outbox into the destination queues in
  // tie-break order. Returns the earliest delivery time pushed into a shard
  // (non-global) queue, TimePoint::Max() if none — the flush contribution
  // to the next epoch's t_dom.
  TimePoint FlushMailboxes();

  // Lazily creates per-domain trace recorders mirroring the caller's
  // recorder; merges them back (sorted, tracks remapped) at run end.
  void SetUpDomainTraces();
  void MergeDomainTraces();

  std::deque<Domain> domains_;  // Stable addresses; [0] is the global domain.
  Domain* root_;                // == &domains_[0].
  Duration lookahead_ = Duration::Zero();
  int workers_ = 1;

  // Epoch coordination. The coordinator publishes epoch_end_excl_ and bumps
  // epoch_seq_ (under start_mu_, release); workers acquire it, run their
  // share, and decrement outstanding_ (release) — the coordinator acquires
  // outstanding_ == 0 before touching outboxes. Spin-then-wait on both
  // sides keeps epoch turnaround cheap without burning a core per worker.
  std::vector<std::thread> worker_threads_;
  std::atomic<uint64_t> epoch_seq_{0};
  std::atomic<int> outstanding_{0};
  std::atomic<bool> stop_workers_{false};
  TimePoint epoch_end_excl_;
  std::mutex start_mu_;
  std::condition_variable start_cv_;
  std::mutex done_mu_;
  std::condition_variable done_cv_;
  int active_workers_ = 1;  // min(workers_, shard domains) for this run.
  // Per-worker epoch state (padded so lanes never false-share): the minimum
  // next-event time over the worker's domains, the cross-domain messages
  // those domains emitted, and the worker's lane heap — a lazy min-heap of
  // (next event time, domain) entries for the domains this worker owns. An
  // entry is valid iff its time equals the domain's current NextTime();
  // anything else is a leftover from an earlier push and is discarded when
  // it surfaces. New entries are pushed by the owning worker after a domain
  // runs, and by the coordinator (between epochs, so never concurrently)
  // when a barrier flush delivers into a domain or a global event forces a
  // full rebuild. The invariant — every non-empty domain has an entry at its
  // exact NextTime — holds because every path that can lower a domain's
  // NextTime ends in one of those pushes.
  struct LaneEntry {
    TimePoint when;
    uint32_t domain;
  };
  struct alignas(64) WorkerLane {
    TimePoint min_next;
    std::vector<CrossMsg> outbox;
    std::vector<LaneEntry> heap;  // Binary min-heap by `when`, lazy entries.
  };
  std::vector<WorkerLane> worker_lanes_;
  // Which worker owns domain `d` (> 0): the round-robin striping shared by
  // the lane heaps and the epoch workers.
  int LaneFor(uint32_t domain) const {
    return static_cast<int>((domain - 1) % static_cast<uint32_t>(active_workers_));
  }
  static void LanePush(WorkerLane& lane, LaneEntry entry);
  // Rebuilds every lane heap from scratch and returns the earliest pending
  // shard event time. Used on run entry and after global events, which may
  // touch any queue directly.
  TimePoint RebuildLanes();
  uint64_t flush_round_ = 0;  // Monotone id for Domain::flush_stamp dedupe.
  bool trace_sharded_ = false;
  TraceRecorder* run_trace_ = nullptr;  // Caller's recorder during a run.
  std::vector<CrossMsg> flush_buf_;

  void StartWorkers();
  void StopWorkers();
  void WorkerMain(int worker_id, uint64_t seen_epoch);
};

// Binds the calling thread to `domain` for the scope: Now() reads that
// domain's clock and Schedule()/timer arms land in its queue. For setup-time
// construction of components that live in a shard, and for global events
// that poke a shard's component (e.g. a control loop toggling an endpoint
// option). Must not be used inside a parallel epoch.
class DomainScope {
 public:
  DomainScope(Simulator* sim, uint32_t domain);
  ~DomainScope();
  DomainScope(const DomainScope&) = delete;
  DomainScope& operator=(const DomainScope&) = delete;

 private:
  sim_internal::ExecContext saved_;
};

}  // namespace e2e

#endif  // SRC_SIM_SIMULATOR_H_
