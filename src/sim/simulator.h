// The discrete-event simulation loop: a virtual clock plus an event queue.
//
// All simulated components share one `Simulator`. Scheduling a callback in
// the past is an error; scheduling at the current instant is allowed and the
// callback fires after already-pending events for that instant (FIFO order).

#ifndef SRC_SIM_SIMULATOR_H_
#define SRC_SIM_SIMULATOR_H_

#include <cstdint>
#include <functional>

#include "src/sim/event_queue.h"
#include "src/sim/time.h"

namespace e2e {

class Simulator {
 public:
  using Callback = EventQueue::Callback;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  // Current virtual time.
  TimePoint Now() const { return now_; }

  // Schedules `cb` after `delay` (>= 0). Returns an id usable with Cancel().
  EventId Schedule(Duration delay, Callback cb);

  // Schedules `cb` at absolute time `when` (>= Now()).
  EventId ScheduleAt(TimePoint when, Callback cb);

  // Cancels a pending event; returns false if it already fired/was canceled.
  bool Cancel(EventId id) { return queue_.Cancel(id); }

  // Runs until the event queue drains. Returns the number of events fired.
  uint64_t Run();

  // Runs events with time <= `deadline`, then sets the clock to `deadline`
  // (even if the queue drained earlier). Returns the number of events fired.
  uint64_t RunUntil(TimePoint deadline);

  // Convenience: RunUntil(Now() + d).
  uint64_t RunFor(Duration d) { return RunUntil(now_ + d); }

  // Executes exactly one event if any is pending. Returns false on empty.
  bool Step();

  // Total events executed over the simulator's lifetime.
  uint64_t events_fired() const { return events_fired_; }

  // Number of currently pending events.
  size_t pending_events() const { return queue_.size(); }

 private:
  EventQueue queue_;
  TimePoint now_;
  uint64_t events_fired_ = 0;
};

}  // namespace e2e

#endif  // SRC_SIM_SIMULATOR_H_
