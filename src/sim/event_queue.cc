#include "src/sim/event_queue.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace e2e {

EventId EventQueue::Push(TimePoint when, Callback cb) {
  uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  Slot& s = slots_[slot];
  s.cb = std::move(cb);
  heap_.push_back(HeapItem{when, next_seq_++, s.generation, slot});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  ++live_;
  return MakeId(slot, s.generation);
}

void EventQueue::FreeSlot(uint32_t slot) {
  Slot& s = slots_[slot];
  s.cb = Callback();
  ++s.generation;
  free_slots_.push_back(slot);
}

bool EventQueue::Cancel(EventId id) {
  if (id == kInvalidEventId) {
    return false;
  }
  const uint32_t slot = id.slot - 1;
  if (slot >= slots_.size() || slots_[slot].generation != id.generation) {
    return false;  // Already fired, already canceled, or never issued.
  }
  FreeSlot(slot);
  assert(live_ > 0);
  --live_;
  // The heap record stays behind; SkipStale() discards it when it surfaces.
  return true;
}

void EventQueue::SetSlotGenerationForTest(uint32_t slot, uint64_t generation) {
  assert(slot < slots_.size());
  // Only free slots may be re-stamped; a live event's id must keep matching.
  assert(std::find(free_slots_.begin(), free_slots_.end(), slot) != free_slots_.end());
  slots_[slot].generation = generation;
}

void EventQueue::SkipStale() {
  while (!heap_.empty() && heap_.front().generation != slots_[heap_.front().slot].generation) {
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    heap_.pop_back();
  }
}

TimePoint EventQueue::NextTime() {
  assert(live_ > 0);
  SkipStale();
  assert(!heap_.empty());
  return heap_.front().when;
}

EventQueue::Entry EventQueue::Pop() {
  assert(live_ > 0);
  SkipStale();
  assert(!heap_.empty());
  const HeapItem item = heap_.front();
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  heap_.pop_back();
  Slot& s = slots_[item.slot];
  assert(s.generation == item.generation);
  Entry entry{item.when, MakeId(item.slot, item.generation), std::move(s.cb)};
  FreeSlot(item.slot);
  --live_;
  return entry;
}

}  // namespace e2e
