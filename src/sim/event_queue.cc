#include "src/sim/event_queue.h"

#include <cassert>
#include <utility>

namespace e2e {

EventId EventQueue::Push(TimePoint when, Callback cb) {
  const EventId id = next_id_++;
  heap_.push(HeapItem{when, next_seq_++, id});
  callbacks_.emplace(id, std::move(cb));
  return id;
}

bool EventQueue::Cancel(EventId id) {
  auto it = callbacks_.find(id);
  if (it == callbacks_.end()) {
    return false;
  }
  callbacks_.erase(it);
  canceled_.insert(id);
  return true;
}

void EventQueue::SkipCanceled() {
  while (!heap_.empty()) {
    auto it = canceled_.find(heap_.top().id);
    if (it == canceled_.end()) {
      return;
    }
    canceled_.erase(it);
    heap_.pop();
  }
}

bool EventQueue::Empty() {
  SkipCanceled();
  return heap_.empty();
}

TimePoint EventQueue::NextTime() {
  SkipCanceled();
  assert(!heap_.empty());
  return heap_.top().when;
}

EventQueue::Entry EventQueue::Pop() {
  SkipCanceled();
  assert(!heap_.empty());
  const HeapItem item = heap_.top();
  heap_.pop();
  auto it = callbacks_.find(item.id);
  assert(it != callbacks_.end());
  Entry entry{item.when, item.id, std::move(it->second)};
  callbacks_.erase(it);
  return entry;
}

}  // namespace e2e
