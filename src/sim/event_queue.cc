#include "src/sim/event_queue.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace e2e {

namespace {
// 4-ary layout: children of node i are 4i+1 .. 4i+4, parent is (i-1)/4.
constexpr size_t kArity = 4;
}  // namespace

void EventQueue::SiftHoleUp(size_t index, const HeapItem& item) {
  while (index > 0) {
    const size_t parent = (index - 1) / kArity;
    if (!Before(item, heap_[parent])) {
      break;
    }
    heap_[index] = heap_[parent];
    index = parent;
  }
  heap_[index] = item;
}

void EventQueue::RemoveTop() {
  const HeapItem last = heap_.back();
  heap_.pop_back();
  const size_t n = heap_.size();
  if (n == 0) {
    return;
  }
  // Sift the former last record down from the root: promote the smallest
  // child into the hole until `last` fits. The four children are contiguous,
  // so one level costs at most two cache lines.
  size_t index = 0;
  for (;;) {
    const size_t first = index * kArity + 1;
    if (first >= n) {
      break;
    }
    size_t best = first;
    const size_t end = std::min(first + kArity, n);
    for (size_t c = first + 1; c < end; ++c) {
      if (Before(heap_[c], heap_[best])) {
        best = c;
      }
    }
    if (!Before(heap_[best], last)) {
      break;
    }
    heap_[index] = heap_[best];
    index = best;
  }
  heap_[index] = last;
}

EventId EventQueue::Push(TimePoint when, Callback cb) {
  uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  Slot& s = slots_[slot];
  s.cb = std::move(cb);
  const HeapItem item{when, next_seq_++, s.generation, slot};
  heap_.push_back(item);  // Placeholder; SiftHoleUp fills the real position.
  SiftHoleUp(heap_.size() - 1, item);
  ++live_;
  if (live_ > max_live_) {
    max_live_ = live_;
  }
  return MakeId(slot, s.generation);
}

void EventQueue::FreeSlot(uint32_t slot) {
  Slot& s = slots_[slot];
  s.cb = Callback();
  ++s.generation;
  free_slots_.push_back(slot);
}

bool EventQueue::Cancel(EventId id) {
  if (id == kInvalidEventId) {
    return false;
  }
  const uint32_t slot = id.slot - 1;
  if (slot >= slots_.size() || slots_[slot].generation != id.generation) {
    return false;  // Already fired, already canceled, or never issued.
  }
  FreeSlot(slot);
  assert(live_ > 0);
  --live_;
  // The heap record stays behind; SkipStale() discards it when it surfaces.
  return true;
}

void EventQueue::SetSlotGenerationForTest(uint32_t slot, uint64_t generation) {
  assert(slot < slots_.size());
  // Only free slots may be re-stamped; a live event's id must keep matching.
  assert(std::find(free_slots_.begin(), free_slots_.end(), slot) != free_slots_.end());
  slots_[slot].generation = generation;
}

void EventQueue::SkipStale() {
  while (!heap_.empty() && heap_.front().generation != slots_[heap_.front().slot].generation) {
    RemoveTop();
  }
}

TimePoint EventQueue::NextTime() {
  assert(live_ > 0);
  SkipStale();
  assert(!heap_.empty());
  return heap_.front().when;
}

EventQueue::Entry EventQueue::Pop() {
  assert(live_ > 0);
  SkipStale();
  assert(!heap_.empty());
  const HeapItem item = heap_.front();
  RemoveTop();
  Slot& s = slots_[item.slot];
  assert(s.generation == item.generation);
  Entry entry{item.when, MakeId(item.slot, item.generation), std::move(s.cb)};
  FreeSlot(item.slot);
  --live_;
  return entry;
}

}  // namespace e2e
