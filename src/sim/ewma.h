// Exponentially weighted moving averages, used to smooth noisy end-to-end
// estimates before they feed batching decisions (paper §5, "Toggling
// Granularity").

#ifndef SRC_SIM_EWMA_H_
#define SRC_SIM_EWMA_H_

#include <cassert>
#include <cmath>

#include "src/sim/time.h"

namespace e2e {

// Classic fixed-alpha EWMA over regularly spaced samples.
class Ewma {
 public:
  // `alpha` in (0, 1]: weight of the newest sample.
  explicit Ewma(double alpha) : alpha_(alpha) { assert(alpha > 0 && alpha <= 1); }

  void Add(double x) {
    if (!initialized_) {
      value_ = x;
      initialized_ = true;
      return;
    }
    value_ += alpha_ * (x - value_);
  }

  bool initialized() const { return initialized_; }
  double value() const { return value_; }
  void Reset() { initialized_ = false; }

 private:
  double alpha_;
  double value_ = 0;
  bool initialized_ = false;
};

// EWMA for irregularly spaced samples: the effective weight of a new sample
// decays with the time elapsed since the previous one, with time constant
// `tau` (the half-life is tau * ln 2). Equivalent to Ewma when samples are
// equally spaced at interval tau * alpha-ish; robust when they are not.
//
// Coincident samples (now == last_, e.g. two observations from one
// simulator instant) have defined semantics: the new sample is averaged
// equally with the current value (weight 1/2) instead of being silently
// discarded (exp(0) == 1 would give it weight zero). The same rule covers
// a clock that stepped backwards: dt is clamped to zero first.
class IrregularEwma {
 public:
  explicit IrregularEwma(Duration tau) : tau_(tau) { assert(tau > Duration::Zero()); }

  void Add(TimePoint now, double x) {
    if (!initialized_) {
      value_ = x;
      last_ = now;
      initialized_ = true;
      return;
    }
    const double dt = (now - last_).ToSeconds();
    const double w = dt <= 0 ? 0.5 : std::exp(-dt / tau_.ToSeconds());
    value_ = w * value_ + (1.0 - w) * x;
    if (now > last_) {
      last_ = now;
    }
  }

  bool initialized() const { return initialized_; }
  double value() const { return value_; }
  void Reset() { initialized_ = false; }

 private:
  Duration tau_;
  TimePoint last_;
  double value_ = 0;
  bool initialized_ = false;
};

}  // namespace e2e

#endif  // SRC_SIM_EWMA_H_
