// Chunked object arena: bump-allocates objects of one type in fixed-size
// contiguous blocks and destroys them all at arena teardown, in reverse
// allocation order. There is no per-object free — the intended use is
// populations that only grow over a run (e.g. a host's TCP endpoints, where
// even closed endpoints must stay allocated because queued CPU work and
// in-flight packets may still reference them).
//
// Compared to one heap allocation per object this drops the allocator
// header/rounding overhead and gives sequential-iteration locality, which
// is what lets 100k-1M connection fleets fit in memory (DESIGN.md §16).
// Object addresses are stable for the arena's lifetime.

#ifndef SRC_SIM_ARENA_H_
#define SRC_SIM_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <memory_resource>
#include <new>
#include <utility>
#include <vector>

namespace e2e {

// Chunked bump allocator behind the std::pmr interface: allocations carve
// from geometrically growing chunks, deallocate is a no-op, and everything is
// released when the resource is destroyed. One instance per simulator domain
// backs that domain's EventQueue slot store and cross-domain outbox, so a
// domain's hot-path state lives in a few contiguous chunks owned by the
// domain (touched only by the worker that runs it) instead of being
// interleaved with every other domain's on the global heap.
//
// The trade-off is deliberate: pmr vectors that grow leave their old buffers
// dead in the arena (bounded by the usual doubling series, ~2x the steady
// state), in exchange for zero malloc/free traffic and no allocator-lock
// contention once queues reach steady capacity. Not thread-safe — per-domain
// ownership is the synchronization.
class ArenaMemoryResource : public std::pmr::memory_resource {
 public:
  explicit ArenaMemoryResource(size_t first_chunk_bytes = 1024)
      : next_chunk_bytes_(first_chunk_bytes) {}
  ArenaMemoryResource(const ArenaMemoryResource&) = delete;
  ArenaMemoryResource& operator=(const ArenaMemoryResource&) = delete;

  // Bytes handed out to containers (live + dead generations).
  size_t bytes_allocated() const { return bytes_allocated_; }
  // Bytes reserved from the upstream heap.
  size_t bytes_reserved() const { return bytes_reserved_; }

 private:
  static constexpr size_t kMaxChunkBytes = size_t{1} << 20;

  void* do_allocate(size_t bytes, size_t alignment) override {
    size_t offset = (offset_ + alignment - 1) & ~(alignment - 1);
    if (chunks_.empty() || offset + bytes > chunks_.back().size) {
      size_t chunk = next_chunk_bytes_;
      while (chunk < bytes + alignment) {
        chunk *= 2;
      }
      chunks_.push_back(Chunk{std::make_unique<unsigned char[]>(chunk), chunk});
      bytes_reserved_ += chunk;
      next_chunk_bytes_ = std::min(kMaxChunkBytes, next_chunk_bytes_ * 2);
      uintptr_t base = reinterpret_cast<uintptr_t>(chunks_.back().data.get());
      offset = ((base + alignment - 1) & ~(alignment - 1)) - base;
    }
    void* p = chunks_.back().data.get() + offset;
    offset_ = offset + bytes;
    bytes_allocated_ += bytes;
    return p;
  }

  void do_deallocate(void* /*p*/, size_t /*bytes*/, size_t /*alignment*/) override {
    // Bump allocator: individual frees are no-ops; chunks die with the arena.
  }

  bool do_is_equal(const std::pmr::memory_resource& other) const noexcept override {
    return this == &other;
  }

  struct Chunk {
    std::unique_ptr<unsigned char[]> data;
    size_t size;
  };
  std::vector<Chunk> chunks_;
  size_t offset_ = 0;  // Into chunks_.back().
  size_t next_chunk_bytes_;
  size_t bytes_allocated_ = 0;
  size_t bytes_reserved_ = 0;
};

template <typename T, size_t kChunkObjects = 64>
class ObjectArena {
 public:
  ObjectArena() = default;
  ObjectArena(const ObjectArena&) = delete;
  ObjectArena& operator=(const ObjectArena&) = delete;

  ~ObjectArena() {
    for (size_t i = size_; i > 0; --i) {
      At(i - 1)->~T();
    }
  }

  template <typename... Args>
  T* New(Args&&... args) {
    if (size_ == chunks_.size() * kChunkObjects) {
      chunks_.push_back(std::make_unique<Chunk>());
    }
    T* obj = new (Slot(size_)) T(std::forward<Args>(args)...);
    ++size_;
    return obj;
  }

  // Objects ever allocated (none are individually freed).
  size_t size() const { return size_; }

 private:
  struct Chunk {
    alignas(T) unsigned char storage[kChunkObjects * sizeof(T)];
  };

  void* Slot(size_t index) {
    return chunks_[index / kChunkObjects]->storage + (index % kChunkObjects) * sizeof(T);
  }
  T* At(size_t index) { return std::launder(reinterpret_cast<T*>(Slot(index))); }

  std::vector<std::unique_ptr<Chunk>> chunks_;
  size_t size_ = 0;
};

}  // namespace e2e

#endif  // SRC_SIM_ARENA_H_
