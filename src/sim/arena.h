// Chunked object arena: bump-allocates objects of one type in fixed-size
// contiguous blocks and destroys them all at arena teardown, in reverse
// allocation order. There is no per-object free — the intended use is
// populations that only grow over a run (e.g. a host's TCP endpoints, where
// even closed endpoints must stay allocated because queued CPU work and
// in-flight packets may still reference them).
//
// Compared to one heap allocation per object this drops the allocator
// header/rounding overhead and gives sequential-iteration locality, which
// is what lets 100k-1M connection fleets fit in memory (DESIGN.md §16).
// Object addresses are stable for the arena's lifetime.

#ifndef SRC_SIM_ARENA_H_
#define SRC_SIM_ARENA_H_

#include <cstddef>
#include <memory>
#include <new>
#include <utility>
#include <vector>

namespace e2e {

template <typename T, size_t kChunkObjects = 64>
class ObjectArena {
 public:
  ObjectArena() = default;
  ObjectArena(const ObjectArena&) = delete;
  ObjectArena& operator=(const ObjectArena&) = delete;

  ~ObjectArena() {
    for (size_t i = size_; i > 0; --i) {
      At(i - 1)->~T();
    }
  }

  template <typename... Args>
  T* New(Args&&... args) {
    if (size_ == chunks_.size() * kChunkObjects) {
      chunks_.push_back(std::make_unique<Chunk>());
    }
    T* obj = new (Slot(size_)) T(std::forward<Args>(args)...);
    ++size_;
    return obj;
  }

  // Objects ever allocated (none are individually freed).
  size_t size() const { return size_; }

 private:
  struct Chunk {
    alignas(T) unsigned char storage[kChunkObjects * sizeof(T)];
  };

  void* Slot(size_t index) {
    return chunks_[index / kChunkObjects]->storage + (index % kChunkObjects) * sizeof(T);
  }
  T* At(size_t index) { return std::launder(reinterpret_cast<T*>(Slot(index))); }

  std::vector<std::unique_ptr<Chunk>> chunks_;
  size_t size_ = 0;
};

}  // namespace e2e

#endif  // SRC_SIM_ARENA_H_
