// A cancelable priority queue of timed events with deterministic ordering.
//
// Events scheduled for the same instant fire in insertion order (FIFO), which
// keeps whole-simulation runs bit-reproducible for a fixed seed. Cancellation
// is lazy: canceled entries are skipped on pop.

#ifndef SRC_SIM_EVENT_QUEUE_H_
#define SRC_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/sim/time.h"

namespace e2e {

// Identifies a scheduled event for cancellation. Id 0 is never issued.
using EventId = uint64_t;
inline constexpr EventId kInvalidEventId = 0;

class EventQueue {
 public:
  using Callback = std::function<void()>;

  // Schedules `cb` to fire at `when`. Returns an id usable with Cancel().
  EventId Push(TimePoint when, Callback cb);

  // Cancels a pending event. Returns false if the event already fired or was
  // already canceled (both are harmless).
  bool Cancel(EventId id);

  // True when no live (non-canceled) events remain.
  bool Empty();

  // Time of the earliest live event. Must not be called when Empty().
  TimePoint NextTime();

  // Removes and returns the earliest live event. Must not be called when
  // Empty().
  struct Entry {
    TimePoint when;
    EventId id = kInvalidEventId;
    Callback cb;
  };
  Entry Pop();

  // Number of live events currently pending.
  size_t size() const { return heap_.size() - canceled_.size(); }

 private:
  struct HeapItem {
    TimePoint when;
    uint64_t seq = 0;  // Insertion order; breaks ties deterministically.
    EventId id = kInvalidEventId;
  };
  struct Later {
    bool operator()(const HeapItem& a, const HeapItem& b) const {
      if (a.when != b.when) {
        return a.when > b.when;
      }
      return a.seq > b.seq;
    }
  };

  // Drops canceled items from the head of the heap.
  void SkipCanceled();

  std::priority_queue<HeapItem, std::vector<HeapItem>, Later> heap_;
  std::unordered_map<EventId, Callback> callbacks_;
  std::unordered_set<EventId> canceled_;
  uint64_t next_seq_ = 0;
  EventId next_id_ = 1;
};

}  // namespace e2e

#endif  // SRC_SIM_EVENT_QUEUE_H_
