// A cancelable priority queue of timed events with deterministic ordering.
//
// Events scheduled for the same instant fire in insertion order (FIFO), which
// keeps whole-simulation runs bit-reproducible for a fixed seed.
//
// Storage is a slot store, not a hash map: each live event owns one slot in a
// freelist-backed vector that holds the callback inline (InlineCallback), and
// a 4-ary implicit heap orders {when, seq, slot, generation} records. An
// EventId carries (generation, slot + 1); Cancel() is an O(1) generation
// check that frees the slot immediately, leaving the heap record behind as a
// stale entry that Pop()/NextTime() discard lazily (a freed slot's generation
// is bumped, so a stale record — or a stale id — can never match a reused
// slot). The schedule/pop path therefore does no hashing and, for callbacks
// that fit InlineCallback's buffer, no allocation beyond amortized vector
// growth.
//
// The heap is 4-ary rather than binary: sift-down — the Pop() hot path —
// visits half as many levels, and the four children of a node share one or
// two cache lines (32-byte records), which is what puts schedule/pop ahead
// of the legacy map-backed queue, not just cancel. The (when, seq) comparator
// is a strict total order (seq is unique), so pop order is identical to any
// other correct heap — arity is invisible to determinism.
//
// Storage lives behind std::pmr: a queue can be bound to an arena
// (ArenaMemoryResource in src/sim/arena.h) so a simulator domain's slots,
// heap records, and freelist occupy domain-owned chunks instead of the
// global heap. The default constructor uses the default pmr resource and
// behaves exactly as before.
//
// Complexity (n = live + stale heap records):
//   Push      O(log n); allocation-free once vectors reach steady capacity.
//   Cancel    O(1); never touches the heap.
//   Pop       O(log n) amortized — each stale record is discarded exactly once.
//   NextTime  O(log n) amortized, same skip loop as Pop.
//   Empty     O(1), const (live-event counter; never mutates).
//   size      O(1), const, always in sync with Empty().

#ifndef SRC_SIM_EVENT_QUEUE_H_
#define SRC_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <memory_resource>
#include <vector>

#include "src/sim/callback.h"
#include "src/sim/time.h"

namespace e2e {

// Identifies a scheduled event for cancellation. The generation counter is a
// full 64 bits: a stale id can never alias a recycled slot, no matter how
// many times the slot turns over (the old packed-uint64 layout truncated the
// generation to 32 bits, so an id held across 2^32 reuses of one slot could
// cancel an unrelated event). `slot` stores index + 1 so the all-zero value
// is never issued and serves as the invalid id.
struct EventId {
  uint64_t generation = 0;
  uint32_t slot = 0;    // Slot index + 1; 0 marks the invalid id.
  uint32_t domain = 0;  // Owning domain; stamped by the Simulator for routing.

  friend constexpr bool operator==(const EventId& a, const EventId& b) {
    return a.generation == b.generation && a.slot == b.slot && a.domain == b.domain;
  }
  friend constexpr bool operator!=(const EventId& a, const EventId& b) { return !(a == b); }
};
inline constexpr EventId kInvalidEventId{};

class EventQueue {
 public:
  using Callback = InlineCallback;

  // Default: storage on the default pmr resource (the global heap).
  EventQueue() : EventQueue(std::pmr::get_default_resource()) {}

  // Storage (slots, heap records, freelist) allocated from `mr`. The
  // resource must outlive the queue; the queue never deallocates piecemeal,
  // so a bump arena is the intended resource.
  explicit EventQueue(std::pmr::memory_resource* mr)
      : heap_(mr), slots_(mr), free_slots_(mr) {}

  // Schedules `cb` to fire at `when`. Returns an id usable with Cancel().
  EventId Push(TimePoint when, Callback cb);

  // Cancels a pending event. Returns false if the event already fired or was
  // already canceled (both are harmless). O(1).
  bool Cancel(EventId id);

  // True when no live (non-canceled) events remain. O(1), const.
  bool Empty() const { return live_ == 0; }

  // Time of the earliest live event. Must not be called when Empty().
  TimePoint NextTime();

  // Removes and returns the earliest live event. Must not be called when
  // Empty().
  struct Entry {
    TimePoint when;
    EventId id = kInvalidEventId;
    Callback cb;
  };
  Entry Pop();

  // Number of live events currently pending. O(1), const.
  size_t size() const { return live_; }

  // Sequence number the next Push() will be stamped with. Exposed so the
  // sharded simulator can order cross-domain deliveries deterministically.
  uint64_t next_seq() const { return next_seq_; }

  // High-water mark of live events over the queue's lifetime — the
  // per-domain occupancy statistic engine_perf commits to BENCH_engine.json.
  uint64_t max_live() const { return max_live_; }

  // Test-only: overwrite a free slot's generation counter to exercise the
  // wraparound regression (e.g. the old 32-bit truncation boundary). The slot
  // must exist and must not hold a live event.
  void SetSlotGenerationForTest(uint32_t slot, uint64_t generation);

 private:
  struct Slot {
    Callback cb;
    // Matches the generation in outstanding EventIds/heap records while the
    // slot is live; bumped on every free so stale references never match.
    // 64-bit: cannot wrap within any physically possible run.
    uint64_t generation = 1;
  };
  struct HeapItem {
    TimePoint when;
    uint64_t seq;  // Insertion order; breaks ties deterministically.
    uint64_t generation;
    uint32_t slot;
  };
  // Strict total order: (when, seq) ascending; seq is unique per queue.
  static bool Before(const HeapItem& a, const HeapItem& b) {
    if (a.when != b.when) {
      return a.when < b.when;
    }
    return a.seq < b.seq;
  }

  static EventId MakeId(uint32_t slot, uint64_t generation) {
    return EventId{generation, slot + 1};
  }

  // Destroys the slot's callback, bumps its generation, and returns it to
  // the freelist. The caller adjusts live_.
  void FreeSlot(uint32_t slot);

  // Drops stale (canceled) records from the head of the heap.
  void SkipStale();

  // 4-ary heap primitives. SiftHoleUp places `item` starting from the hole
  // at `index`; RemoveTop fills the root from the last record.
  void SiftHoleUp(size_t index, const HeapItem& item);
  void RemoveTop();

  std::pmr::vector<HeapItem> heap_;  // 4-ary implicit min-heap, root at 0.
  std::pmr::vector<Slot> slots_;
  std::pmr::vector<uint32_t> free_slots_;
  size_t live_ = 0;
  uint64_t max_live_ = 0;
  uint64_t next_seq_ = 0;
};

}  // namespace e2e

#endif  // SRC_SIM_EVENT_QUEUE_H_
