// A cancelable priority queue of timed events with deterministic ordering.
//
// Events scheduled for the same instant fire in insertion order (FIFO), which
// keeps whole-simulation runs bit-reproducible for a fixed seed.
//
// Storage is a slot store, not a hash map: each live event owns one slot in a
// freelist-backed vector that holds the callback inline (InlineCallback), and
// the binary heap orders {when, seq, slot, generation} records. An EventId
// packs (generation, slot); Cancel() is an O(1) generation check that frees
// the slot immediately, leaving the heap record behind as a stale entry that
// Pop()/NextTime() discard lazily (a freed slot's generation is bumped, so a
// stale record — or a stale id — can never match a reused slot). The
// schedule/pop path therefore does no hashing and, for callbacks that fit
// InlineCallback's buffer, no allocation beyond amortized vector growth.
//
// Complexity (n = live + stale heap records):
//   Push      O(log n); allocation-free once vectors reach steady capacity.
//   Cancel    O(1); never touches the heap.
//   Pop       O(log n) amortized — each stale record is discarded exactly once.
//   NextTime  O(log n) amortized, same skip loop as Pop.
//   Empty     O(1), const (live-event counter; never mutates).
//   size      O(1), const, always in sync with Empty().

#ifndef SRC_SIM_EVENT_QUEUE_H_
#define SRC_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <vector>

#include "src/sim/callback.h"
#include "src/sim/time.h"

namespace e2e {

// Identifies a scheduled event for cancellation: (generation << 32) |
// (slot + 1). Id 0 is never issued.
using EventId = uint64_t;
inline constexpr EventId kInvalidEventId = 0;

class EventQueue {
 public:
  using Callback = InlineCallback;

  // Schedules `cb` to fire at `when`. Returns an id usable with Cancel().
  EventId Push(TimePoint when, Callback cb);

  // Cancels a pending event. Returns false if the event already fired or was
  // already canceled (both are harmless). O(1).
  bool Cancel(EventId id);

  // True when no live (non-canceled) events remain. O(1), const.
  bool Empty() const { return live_ == 0; }

  // Time of the earliest live event. Must not be called when Empty().
  TimePoint NextTime();

  // Removes and returns the earliest live event. Must not be called when
  // Empty().
  struct Entry {
    TimePoint when;
    EventId id = kInvalidEventId;
    Callback cb;
  };
  Entry Pop();

  // Number of live events currently pending. O(1), const.
  size_t size() const { return live_; }

 private:
  struct Slot {
    Callback cb;
    // Matches the generation in outstanding EventIds/heap records while the
    // slot is live; bumped on every free so stale references never match.
    // (Wraps after 2^32 reuses of one slot — out of reach for simulation
    // runs, which top out around 10^9 events total.)
    uint32_t generation = 0;
  };
  struct HeapItem {
    TimePoint when;
    uint64_t seq;  // Insertion order; breaks ties deterministically.
    uint32_t slot;
    uint32_t generation;
  };
  struct Later {
    bool operator()(const HeapItem& a, const HeapItem& b) const {
      if (a.when != b.when) {
        return a.when > b.when;
      }
      return a.seq > b.seq;
    }
  };

  static EventId MakeId(uint32_t slot, uint32_t generation) {
    return (static_cast<EventId>(generation) << 32) | (static_cast<EventId>(slot) + 1);
  }

  // Destroys the slot's callback, bumps its generation, and returns it to
  // the freelist. The caller adjusts live_.
  void FreeSlot(uint32_t slot);

  // Drops stale (canceled) records from the head of the heap.
  void SkipStale();

  std::vector<HeapItem> heap_;  // Binary heap via std::push_heap/pop_heap.
  std::vector<Slot> slots_;
  std::vector<uint32_t> free_slots_;
  size_t live_ = 0;
  uint64_t next_seq_ = 0;
};

}  // namespace e2e

#endif  // SRC_SIM_EVENT_QUEUE_H_
