// Seeded random number generation for workloads and timing jitter.
//
// Wraps a SplitMix64-seeded xoshiro256** generator. Every experiment
// component takes an explicit `Rng` (or a seed) so runs are reproducible.

#ifndef SRC_SIM_RANDOM_H_
#define SRC_SIM_RANDOM_H_

#include <array>
#include <cstdint>

#include "src/sim/time.h"

namespace e2e {

class Rng {
 public:
  explicit Rng(uint64_t seed = 42);

  // Uniform in [0, 2^64).
  uint64_t NextU64();

  // Uniform double in [0, 1).
  double Uniform01();

  // Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  // Exponential with the given mean (> 0).
  double Exponential(double mean);

  // Exponential inter-arrival gap for a Poisson process of rate
  // `per_second` events per second.
  Duration ExpInterarrival(double per_second);

  // True with probability p.
  bool Bernoulli(double p);

  // Standard normal via Box-Muller.
  double Normal(double mean, double stddev);

  // Log-normal such that the *mean* of the distribution is `mean` and the
  // coefficient of variation (stddev/mean) is `cv`.
  double LogNormalMeanCv(double mean, double cv);

  // Zipf-like rank in [0, n) with exponent `s` (s=0 is uniform). Uses
  // rejection-free inverse-CDF over precomputed weights for small n; callers
  // needing large n should build a `ZipfTable` instead.
  int64_t Zipf(int64_t n, double s);

  // Derives an independent child generator (for per-component streams).
  Rng Fork();

 private:
  std::array<uint64_t, 4> s_;
};

// Keyed seed derivation for topology components: the child seed depends only
// on (base, domain, index) — never on construction order or on how many
// other components exist — so adding a host to a fabric cannot perturb any
// existing component's random stream. `domain` namespaces component kinds
// (see FabricSeedDomain in src/testbed/fabric_topology.h); `index` is the
// component's stable id within the domain. Implemented as three SplitMix64
// finalization rounds over the mixed-in key words.
uint64_t DeriveSeed(uint64_t base, uint64_t domain, uint64_t index);

}  // namespace e2e

#endif  // SRC_SIM_RANDOM_H_
