// Move-only type-erased void() callable with a large inline buffer.
//
// The event-loop hot path schedules millions of closures per simulated
// second; `std::function`'s small-buffer optimization (16 bytes in
// libstdc++) spills every capture that includes a `Packet` (~72 bytes with
// the `this` pointer) onto the heap. `InlineCallback` keeps captures up to
// `kInlineBytes` in the slot itself, so EventQueue's slot store owns the
// callback inline and Push/Pop never allocate for simulator-sized closures.
// Oversized or over-aligned callables still fall back to the heap, and
// move-only captures (which `std::function` rejects outright) are allowed.

#ifndef SRC_SIM_CALLBACK_H_
#define SRC_SIM_CALLBACK_H_

#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace e2e {

class InlineCallback {
 public:
  // Sized so sizeof(InlineCallback) == 112: room for a lambda capturing
  // `this` plus a full Packet (64 bytes) with headroom for a couple of
  // extra words, while an EventQueue slot (callback + generation tag)
  // stays within two cache lines.
  static constexpr size_t kInlineBytes = 104;

  InlineCallback() = default;

  template <typename F,
            typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, InlineCallback> &&
                                        std::is_invocable_r_v<void, D&>>>
  InlineCallback(F&& f) {  // NOLINT(google-explicit-constructor)
    if constexpr (FitsInline<D>()) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
      ops_ = &kInlineOps<D>;
    } else {
      D* p = new D(std::forward<F>(f));
      std::memcpy(buf_, &p, sizeof(p));
      ops_ = &kHeapOps<D>;
    }
  }

  InlineCallback(InlineCallback&& other) noexcept : ops_(other.ops_) {
    if (ops_ != nullptr) {
      ops_->relocate(other.buf_, buf_);
      other.ops_ = nullptr;
    }
  }

  InlineCallback& operator=(InlineCallback&& other) noexcept {
    if (this != &other) {
      Reset();
      ops_ = other.ops_;
      if (ops_ != nullptr) {
        ops_->relocate(other.buf_, buf_);
        other.ops_ = nullptr;
      }
    }
    return *this;
  }

  InlineCallback(const InlineCallback&) = delete;
  InlineCallback& operator=(const InlineCallback&) = delete;

  ~InlineCallback() { Reset(); }

  void operator()() { ops_->invoke(buf_); }

  explicit operator bool() const { return ops_ != nullptr; }

 private:
  struct Ops {
    void (*invoke)(void* storage);
    // Move the callable from `from` storage into `to` storage and destroy
    // the source. Both point at `buf_`-sized buffers.
    void (*relocate)(void* from, void* to);
    void (*destroy)(void* storage);
  };

  template <typename D>
  static constexpr bool FitsInline() {
    return sizeof(D) <= kInlineBytes && alignof(D) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<D>;
  }

  template <typename D>
  static D* HeapPtr(void* storage) {
    D* p;
    std::memcpy(&p, storage, sizeof(p));
    return p;
  }

  template <typename D>
  static constexpr Ops kInlineOps = {
      [](void* s) { (*std::launder(reinterpret_cast<D*>(s)))(); },
      [](void* from, void* to) {
        D* f = std::launder(reinterpret_cast<D*>(from));
        ::new (to) D(std::move(*f));
        f->~D();
      },
      [](void* s) { std::launder(reinterpret_cast<D*>(s))->~D(); },
  };

  template <typename D>
  static constexpr Ops kHeapOps = {
      [](void* s) { (*HeapPtr<D>(s))(); },
      [](void* from, void* to) { std::memcpy(to, from, sizeof(D*)); },
      [](void* s) { delete HeapPtr<D>(s); },
  };

  void Reset() {
    if (ops_ != nullptr) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

}  // namespace e2e

#endif  // SRC_SIM_CALLBACK_H_
