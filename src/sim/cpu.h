// A CPU core modeled as a FIFO work server.
//
// This mirrors the paper's experimental setup, where the application thread
// and the network-stack softirq context are each pinned to a dedicated core:
// every host in the simulation owns one `CpuCore` per execution context.
//
// A work item has two parts: a `StartFn` that runs when the core picks the
// item up and *returns the processing cost* (so the cost may depend on state
// observed at start time, e.g. how many requests are waiting), and an
// optional `DoneFn` that runs when that cost has elapsed (this is where
// externally visible effects — transmissions, responses — belong).

#ifndef SRC_SIM_CPU_H_
#define SRC_SIM_CPU_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <string>

#include "src/sim/simulator.h"
#include "src/sim/time.h"

namespace e2e {

class CpuCore {
 public:
  using StartFn = std::function<Duration()>;
  using DoneFn = std::function<void()>;

  CpuCore(Simulator* sim, std::string name);
  CpuCore(const CpuCore&) = delete;
  CpuCore& operator=(const CpuCore&) = delete;

  // Enqueues a work item. Runs immediately (at the current instant) when the
  // core is idle; otherwise after all previously queued work.
  void Submit(StartFn start, DoneFn done = nullptr);

  // Convenience for items whose cost is known at submission time.
  void SubmitFixed(Duration cost, DoneFn done = nullptr);

  // Freezes the core for `d` (a VM preemption or GC pause): the item
  // currently executing finishes on schedule, but nothing new starts until
  // the stall ends. Work keeps queueing meanwhile — exactly the backlog a
  // real pause leaves behind. Overlapping stalls extend the freeze.
  void Stall(Duration d);
  bool stalled() const { return sim_->Now() < stalled_until_; }
  uint64_t stalls() const { return stalls_; }

  bool busy() const { return busy_; }
  size_t queue_depth() const { return queue_.size(); }
  const std::string& name() const { return name_; }

  // Cumulative busy time, including the elapsed part of the item currently
  // executing. Utilization over a window is a delta of this divided by the
  // window length.
  Duration busy_time() const;

  // Total work items completed.
  uint64_t items_done() const { return items_done_; }

 private:
  struct Work {
    StartFn start;
    DoneFn done;
  };

  void BeginNext();
  void MaybeBegin();

  Simulator* sim_;
  std::string name_;
  std::deque<Work> queue_;
  bool busy_ = false;
  TimePoint current_started_;
  Duration busy_accum_;
  uint64_t items_done_ = 0;
  TimePoint stalled_until_;
  uint64_t stalls_ = 0;
};

}  // namespace e2e

#endif  // SRC_SIM_CPU_H_
