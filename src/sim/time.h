// Strong time types for the discrete-event simulator.
//
// All simulated time is kept in signed 64-bit nanoseconds. `Duration` is a
// span of time and `TimePoint` is an instant on the virtual clock; mixing the
// two incorrectly fails to compile. Both are trivially copyable value types.

#ifndef SRC_SIM_TIME_H_
#define SRC_SIM_TIME_H_

#include <cstdint>
#include <compare>
#include <limits>
#include <string>

namespace e2e {

// A span of simulated time with nanosecond resolution. May be negative
// (e.g. as the result of subtracting time points).
class Duration {
 public:
  constexpr Duration() = default;

  // Named constructors. Fractional inputs are supported via the double
  // overloads and rounded toward zero.
  static constexpr Duration Nanos(int64_t ns) { return Duration(ns); }
  static constexpr Duration Micros(int64_t us) { return Duration(us * 1000); }
  static constexpr Duration Millis(int64_t ms) { return Duration(ms * 1000 * 1000); }
  static constexpr Duration Seconds(int64_t s) { return Duration(s * 1000 * 1000 * 1000); }
  static constexpr Duration MicrosF(double us) { return Duration(static_cast<int64_t>(us * 1e3)); }
  static constexpr Duration MillisF(double ms) { return Duration(static_cast<int64_t>(ms * 1e6)); }
  static constexpr Duration SecondsF(double s) { return Duration(static_cast<int64_t>(s * 1e9)); }
  static constexpr Duration Zero() { return Duration(0); }
  static constexpr Duration Max() { return Duration(std::numeric_limits<int64_t>::max()); }

  constexpr int64_t nanos() const { return ns_; }
  constexpr double ToMicros() const { return static_cast<double>(ns_) / 1e3; }
  constexpr double ToMillis() const { return static_cast<double>(ns_) / 1e6; }
  constexpr double ToSeconds() const { return static_cast<double>(ns_) / 1e9; }

  constexpr bool IsZero() const { return ns_ == 0; }

  constexpr Duration operator+(Duration o) const { return Duration(ns_ + o.ns_); }
  constexpr Duration operator-(Duration o) const { return Duration(ns_ - o.ns_); }
  constexpr Duration operator-() const { return Duration(-ns_); }
  constexpr Duration operator*(int64_t k) const { return Duration(ns_ * k); }
  constexpr Duration operator*(int k) const { return Duration(ns_ * k); }
  constexpr Duration operator*(double k) const {
    return Duration(static_cast<int64_t>(static_cast<double>(ns_) * k));
  }
  constexpr Duration operator/(int64_t k) const { return Duration(ns_ / k); }
  constexpr Duration operator/(int k) const { return Duration(ns_ / k); }
  // Ratio of two durations as a real number. Divisor must be nonzero.
  constexpr double Ratio(Duration o) const {
    return static_cast<double>(ns_) / static_cast<double>(o.ns_);
  }
  constexpr Duration& operator+=(Duration o) {
    ns_ += o.ns_;
    return *this;
  }
  constexpr Duration& operator-=(Duration o) {
    ns_ -= o.ns_;
    return *this;
  }
  constexpr auto operator<=>(const Duration&) const = default;

  // Human-readable rendering with an auto-selected unit, e.g. "12.3us".
  std::string ToString() const;

 private:
  explicit constexpr Duration(int64_t ns) : ns_(ns) {}
  int64_t ns_ = 0;
};

constexpr Duration operator*(int64_t k, Duration d) { return d * k; }
constexpr Duration operator*(int k, Duration d) { return d * k; }
constexpr Duration operator*(double k, Duration d) { return d * k; }

// An instant on the simulated clock. Time zero is the start of simulation.
class TimePoint {
 public:
  constexpr TimePoint() = default;

  static constexpr TimePoint FromNanos(int64_t ns) { return TimePoint(ns); }
  static constexpr TimePoint Zero() { return TimePoint(0); }
  static constexpr TimePoint Max() { return TimePoint(std::numeric_limits<int64_t>::max()); }

  constexpr int64_t nanos() const { return ns_; }
  constexpr double ToSeconds() const { return static_cast<double>(ns_) / 1e9; }
  constexpr double ToMicros() const { return static_cast<double>(ns_) / 1e3; }

  constexpr TimePoint operator+(Duration d) const { return TimePoint(ns_ + d.nanos()); }
  constexpr TimePoint operator-(Duration d) const { return TimePoint(ns_ - d.nanos()); }
  constexpr Duration operator-(TimePoint o) const { return Duration::Nanos(ns_ - o.ns_); }
  constexpr TimePoint& operator+=(Duration d) {
    ns_ += d.nanos();
    return *this;
  }
  constexpr auto operator<=>(const TimePoint&) const = default;

  std::string ToString() const;

 private:
  explicit constexpr TimePoint(int64_t ns) : ns_(ns) {}
  int64_t ns_ = 0;
};

}  // namespace e2e

#endif  // SRC_SIM_TIME_H_
