#include "src/sim/cpu.h"

#include <cassert>
#include <utility>

namespace e2e {

CpuCore::CpuCore(Simulator* sim, std::string name) : sim_(sim), name_(std::move(name)) {
  assert(sim_ != nullptr);
}

void CpuCore::Submit(StartFn start, DoneFn done) {
  assert(start != nullptr);
  queue_.push_back(Work{std::move(start), std::move(done)});
  if (!busy_ && !stalled()) {
    BeginNext();
  }
}

void CpuCore::Stall(Duration d) {
  const TimePoint until = sim_->Now() + d;
  if (until > stalled_until_) {
    stalled_until_ = until;
  }
  ++stalls_;
  // Wake when the freeze lifts; stale wakes (from extended stalls) see
  // stalled() still true and do nothing.
  sim_->ScheduleAt(stalled_until_, [this] { MaybeBegin(); });
}

void CpuCore::MaybeBegin() {
  if (!busy_ && !stalled() && !queue_.empty()) {
    BeginNext();
  }
}

void CpuCore::SubmitFixed(Duration cost, DoneFn done) {
  assert(cost >= Duration::Zero());
  Submit([cost] { return cost; }, std::move(done));
}

Duration CpuCore::busy_time() const {
  Duration total = busy_accum_;
  if (busy_) {
    total += sim_->Now() - current_started_;
  }
  return total;
}

void CpuCore::BeginNext() {
  assert(!busy_ && !queue_.empty());
  busy_ = true;
  Work work = std::move(queue_.front());
  queue_.pop_front();
  current_started_ = sim_->Now();
  const Duration cost = work.start();
  assert(cost >= Duration::Zero());
  sim_->Schedule(cost, [this, done = std::move(work.done), cost] {
    busy_accum_ += cost;
    busy_ = false;
    ++items_done_;
    if (done) {
      done();
    }
    MaybeBegin();
  });
}

}  // namespace e2e
