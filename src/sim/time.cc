#include "src/sim/time.h"

#include <cmath>
#include <cstdio>

namespace e2e {

std::string Duration::ToString() const {
  char buf[64];
  const double abs_ns = std::fabs(static_cast<double>(ns_));
  if (abs_ns < 1e3) {
    std::snprintf(buf, sizeof(buf), "%ldns", static_cast<long>(ns_));
  } else if (abs_ns < 1e6) {
    std::snprintf(buf, sizeof(buf), "%.2fus", ToMicros());
  } else if (abs_ns < 1e9) {
    std::snprintf(buf, sizeof(buf), "%.2fms", ToMillis());
  } else {
    std::snprintf(buf, sizeof(buf), "%.3fs", ToSeconds());
  }
  return buf;
}

std::string TimePoint::ToString() const {
  return Duration::Nanos(ns_).ToString();
}

}  // namespace e2e
