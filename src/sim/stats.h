// Online statistics used throughout the simulator and the benches.

#ifndef SRC_SIM_STATS_H_
#define SRC_SIM_STATS_H_

#include <cstdint>
#include <limits>
#include <vector>

#include "src/sim/time.h"

namespace e2e {

// Welford's online mean/variance over double samples.
class RunningStats {
 public:
  void Add(double x);

  int64_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  // Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }
  double sum() const { return sum_; }

  // Merges another accumulator into this one (parallel-combinable).
  void Merge(const RunningStats& other);

 private:
  int64_t count_ = 0;
  double mean_ = 0;
  double m2_ = 0;
  double sum_ = 0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

// Log-bucketed histogram for nonnegative values (e.g. latencies in ns).
// Buckets grow geometrically from `min_value` to `max_value`; queries return
// an upper bound of the bucket containing the requested quantile.
class LogHistogram {
 public:
  // `buckets_per_decade` controls resolution (higher = finer, more memory).
  LogHistogram(double min_value = 1.0, double max_value = 1e12,
               int buckets_per_decade = 100);

  void Add(double value);
  // Quantile in [0, 1]; returns 0 when empty. Quantile(0) is the upper
  // bound of the smallest sample's bucket (or `min_value` if any sample
  // underflowed), never a value with no sample at or below it.
  double Quantile(double q) const;
  double Percentile(double p) const { return Quantile(p / 100.0); }
  int64_t count() const { return count_; }
  // Samples below `min_value` / above the bucketed range. Both still count
  // toward count(), mean(), and quantiles (as the extreme buckets).
  int64_t underflow() const { return underflow_; }
  int64_t overflow() const { return overflow_; }
  double mean() const { return count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0; }
  double max_seen() const { return count_ > 0 ? max_seen_ : 0.0; }
  void Clear();

  // Adds another histogram's counts. Both must share the same bucket
  // layout (min/max/resolution).
  void Merge(const LogHistogram& other);

 private:
  size_t BucketFor(double value) const;
  double BucketUpper(size_t idx) const;

  double min_value_;
  double log_min_;
  double scale_;  // Buckets per natural-log unit.
  std::vector<int64_t> counts_;
  int64_t count_ = 0;
  int64_t underflow_ = 0;
  int64_t overflow_ = 0;
  double sum_ = 0;
  double max_seen_ = 0;
};

// Time-weighted average of a piecewise-constant signal, e.g. queue depth or
// CPU busy state. Mirrors the "integral" bookkeeping of the paper's
// Algorithm 1 but for arbitrary doubles.
class TimeWeighted {
 public:
  explicit TimeWeighted(TimePoint start = TimePoint::Zero(), double initial = 0.0)
      : window_start_(start), last_time_(start), value_(initial) {}

  // Records that the signal changed to `value` at time `now` (>= last update).
  void Set(TimePoint now, double value);
  double value() const { return value_; }

  // Average over [start, now]. Returns `value()` if no time elapsed.
  double AverageUntil(TimePoint now) const;

  // Restarts the averaging window at `now`, keeping the current value.
  void ResetWindow(TimePoint now);

 private:
  TimePoint window_start_;
  TimePoint last_time_;
  double value_ = 0;
  double integral_ = 0;
};

}  // namespace e2e

#endif  // SRC_SIM_STATS_H_
