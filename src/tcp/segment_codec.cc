#include "src/tcp/segment_codec.h"

#include <algorithm>

#include "src/core/wire_format.h"

namespace e2e {
namespace {

void PutU16(std::vector<uint8_t>& out, uint16_t v) {
  out.push_back(static_cast<uint8_t>(v >> 8));
  out.push_back(static_cast<uint8_t>(v));
}

void PutU32(std::vector<uint8_t>& out, uint32_t v) {
  out.push_back(static_cast<uint8_t>(v >> 24));
  out.push_back(static_cast<uint8_t>(v >> 16));
  out.push_back(static_cast<uint8_t>(v >> 8));
  out.push_back(static_cast<uint8_t>(v));
}

uint16_t GetU16(const uint8_t* p) {
  return static_cast<uint16_t>((p[0] << 8) | p[1]);
}

uint32_t GetU32(const uint8_t* p) {
  return (static_cast<uint32_t>(p[0]) << 24) | (static_cast<uint32_t>(p[1]) << 16) |
         (static_cast<uint32_t>(p[2]) << 8) | static_cast<uint32_t>(p[3]);
}

// Real TCP flag bit positions, so the wire bytes look authentic.
constexpr uint8_t kWireAck = 0x10;
constexpr uint8_t kWirePsh = 0x08;
constexpr uint8_t kWireEce = 0x40;
constexpr uint8_t kWireCwr = 0x80;

}  // namespace

size_t E2eOptionSize(const WirePayload& payload) {
  const size_t body = payload.hint.has_value() ? kWirePayloadMaxSize : kWirePayloadBaseSize;
  return 2 + body;  // kind + length + body.
}

std::optional<EncodedSegment> EncodeSegmentHeader(const TcpSegment& seg, bool allow_oversize) {
  EncodedSegment out;
  out.payload_len = seg.len;

  // Options area first, to know the data offset. Emission order matches
  // common real-stack layouts: timestamps, then SACK, then the
  // experimental exchange option.
  std::vector<uint8_t> options;
  if (seg.ts.has_value()) {
    options.push_back(kTcpOptNop);
    options.push_back(kTcpOptNop);
    options.push_back(kTcpOptTimestamp);
    options.push_back(10);
    PutU32(options, seg.ts->tsval);
    PutU32(options, seg.ts->tsecr);
  }
  if (!seg.sack.empty()) {
    options.push_back(kTcpOptNop);
    options.push_back(kTcpOptNop);
    options.push_back(kTcpOptSack);
    options.push_back(static_cast<uint8_t>(2 + 8 * seg.sack.size()));
    for (const SackBlock& block : seg.sack) {
      PutU32(options, block.start);
      PutU32(options, block.end);
    }
  }
  if (seg.e2e_option.has_value()) {
    const size_t option_size = E2eOptionSize(*seg.e2e_option);
    if (option_size > kTcpMaxOptionBytes && !allow_oversize) {
      return std::nullopt;
    }
    options.push_back(kE2eOptionKind);
    options.push_back(static_cast<uint8_t>(option_size));
    const size_t body_at = options.size();
    options.resize(body_at + option_size - 2);
    if (EncodePayload(*seg.e2e_option, options.data() + body_at, options.size() - body_at) == 0) {
      return std::nullopt;
    }
  }
  while (options.size() % 4 != 0) {
    options.push_back(0);  // End-of-options / padding.
  }
  const size_t header_len = kTcpBaseHeaderBytes + options.size();
  if (header_len > 60 && !allow_oversize) {
    return std::nullopt;
  }

  std::vector<uint8_t>& hdr = out.header;
  hdr.reserve(header_len);
  // Ports carry the connection id (the simulator has no real addressing);
  // the "source port" high bit distinguishes the A side.
  const uint16_t port = static_cast<uint16_t>(seg.conn_id & 0x7FFF);
  PutU16(hdr, static_cast<uint16_t>(port | (seg.from_a ? 0x8000 : 0)));
  PutU16(hdr, port);
  PutU32(hdr, seg.seq);
  PutU32(hdr, seg.ack);
  uint8_t flags = 0;
  if ((seg.flags & kFlagAck) != 0) {
    flags |= kWireAck;
  }
  if ((seg.flags & kFlagPsh) != 0) {
    flags |= kWirePsh;
  }
  if ((seg.flags & kFlagEce) != 0) {
    flags |= kWireEce;
  }
  if ((seg.flags & kFlagCwr) != 0) {
    flags |= kWireCwr;
  }
  // Data offset in 32-bit words (4 bits, so it saturates at 60 bytes —
  // oversize headers rely on the decoder's EDO-style length override).
  hdr.push_back(static_cast<uint8_t>(std::min<size_t>(header_len / 4, 15) << 4));
  hdr.push_back(flags);
  PutU16(hdr, static_cast<uint16_t>(std::min<uint32_t>(seg.window, 0xFFFF)));
  PutU16(hdr, 0);  // Checksum (unused in simulation).
  PutU16(hdr, 0);  // Urgent pointer.
  hdr.insert(hdr.end(), options.begin(), options.end());
  return out;
}

std::optional<TcpSegment> DecodeSegmentHeader(const uint8_t* data, size_t len,
                                              uint32_t payload_len) {
  if (len < kTcpBaseHeaderBytes) {
    return std::nullopt;
  }
  TcpSegment seg;
  const uint16_t src_port = GetU16(data);
  seg.from_a = (src_port & 0x8000) != 0;
  seg.conn_id = src_port & 0x7FFF;
  seg.seq = GetU32(data + 4);
  seg.ack = GetU32(data + 8);
  size_t header_len = static_cast<size_t>(data[12] >> 4) * 4;
  if (len > kTcpBaseHeaderBytes + kTcpMaxOptionBytes) {
    // Oversize (EDO-style) emulation: the buffer length is authoritative
    // because the 4-bit data offset cannot express more than 60 bytes.
    header_len = len;
  }
  if (header_len < kTcpBaseHeaderBytes || header_len > len) {
    return std::nullopt;
  }
  const uint8_t flags = data[13];
  if ((flags & kWireAck) != 0) {
    seg.flags |= kFlagAck;
  }
  if ((flags & kWirePsh) != 0) {
    seg.flags |= kFlagPsh;
  }
  if ((flags & kWireEce) != 0) {
    seg.flags |= kFlagEce;
  }
  if ((flags & kWireCwr) != 0) {
    seg.flags |= kFlagCwr;
  }
  seg.window = GetU16(data + 14);
  seg.len = payload_len;

  // Walk the options TLVs.
  size_t pos = kTcpBaseHeaderBytes;
  while (pos < header_len) {
    const uint8_t kind = data[pos];
    if (kind == 0) {
      break;  // End of options.
    }
    if (kind == 1) {
      ++pos;  // NOP.
      continue;
    }
    if (pos + 1 >= header_len) {
      return std::nullopt;
    }
    const uint8_t option_len = data[pos + 1];
    if (option_len < 2 || pos + option_len > header_len) {
      return std::nullopt;
    }
    if (kind == kTcpOptTimestamp) {
      if (option_len != 10) {
        return std::nullopt;
      }
      TsOption ts;
      ts.tsval = GetU32(data + pos + 2);
      ts.tsecr = GetU32(data + pos + 6);
      seg.ts = ts;
    }
    if (kind == kTcpOptSack) {
      if (option_len < 10 || (option_len - 2) % 8 != 0) {
        return std::nullopt;
      }
      const size_t blocks = (option_len - 2) / 8;
      for (size_t i = 0; i < blocks; ++i) {
        SackBlock block;
        block.start = GetU32(data + pos + 2 + 8 * i);
        block.end = GetU32(data + pos + 6 + 8 * i);
        seg.sack.push_back(block);
      }
    }
    if (kind == kE2eOptionKind) {
      std::optional<WirePayload> payload = DecodePayload(data + pos + 2, option_len - 2);
      if (!payload.has_value()) {
        return std::nullopt;
      }
      seg.e2e_option = std::move(payload);
    }
    pos += option_len;
  }
  return seg;
}

OptionPlan ArbitrateOptions(const OptionDemand& demand) {
  OptionPlan plan;
  size_t budget = kTcpMaxOptionBytes;

  // Timestamps first: smallest footprint, and every segment benefits
  // (per-ack RTT samples feed SRTT and the RACK reordering window).
  if (demand.timestamps) {
    plan.timestamps = true;
    budget -= kTimestampOptionBytes;
  }

  // The exchange rides along only when it fits in what is left. An overdue
  // exchange evicts timestamps for this one segment (the estimator-health
  // freshness clock is a harder deadline than one RTT sample).
  if (demand.exchange_due) {
    if (demand.exchange_size <= budget) {
      plan.exchange = true;
      budget -= demand.exchange_size;
    } else if (demand.exchange_overdue) {
      plan.exchange = true;
      if (plan.timestamps) {
        plan.timestamps = false;
        plan.timestamps_omitted = true;
      }
      // An oversize (hint-bearing) payload leaves no room at all; the codec
      // models it with its EDO-style escape hatch.
      budget = kTcpMaxOptionBytes > demand.exchange_size
                   ? kTcpMaxOptionBytes - demand.exchange_size
                   : 0;
    } else {
      plan.exchange_deferred = true;
    }
  }

  // SACK blocks absorb the remainder, trimmed from the tail (the first
  // block is the freshest per RFC 2018's generation rule).
  if (demand.sack_blocks > 0) {
    const size_t max_fit = budget >= 12 ? std::min((budget - 4) / 8, kMaxSackBlocks) : 0;
    plan.sack_blocks = std::min(demand.sack_blocks, max_fit);
    plan.sack_blocks_trimmed = demand.sack_blocks - plan.sack_blocks;
    budget -= SackOptionBytes(plan.sack_blocks);
  }

  plan.bytes_used = kTcpMaxOptionBytes - budget;
  return plan;
}

}  // namespace e2e
