#include "src/tcp/segment_codec.h"

#include <algorithm>

#include "src/core/wire_format.h"

namespace e2e {
namespace {

void PutU16(std::vector<uint8_t>& out, uint16_t v) {
  out.push_back(static_cast<uint8_t>(v >> 8));
  out.push_back(static_cast<uint8_t>(v));
}

void PutU32(std::vector<uint8_t>& out, uint32_t v) {
  out.push_back(static_cast<uint8_t>(v >> 24));
  out.push_back(static_cast<uint8_t>(v >> 16));
  out.push_back(static_cast<uint8_t>(v >> 8));
  out.push_back(static_cast<uint8_t>(v));
}

uint16_t GetU16(const uint8_t* p) {
  return static_cast<uint16_t>((p[0] << 8) | p[1]);
}

uint32_t GetU32(const uint8_t* p) {
  return (static_cast<uint32_t>(p[0]) << 24) | (static_cast<uint32_t>(p[1]) << 16) |
         (static_cast<uint32_t>(p[2]) << 8) | static_cast<uint32_t>(p[3]);
}

// Real TCP flag bit positions, so the wire bytes look authentic.
constexpr uint8_t kWireAck = 0x10;
constexpr uint8_t kWirePsh = 0x08;
constexpr uint8_t kWireEce = 0x40;
constexpr uint8_t kWireCwr = 0x80;

}  // namespace

size_t E2eOptionSize(const WirePayload& payload) {
  const size_t body = payload.hint.has_value() ? kWirePayloadMaxSize : kWirePayloadBaseSize;
  return 2 + body;  // kind + length + body.
}

std::optional<EncodedSegment> EncodeSegmentHeader(const TcpSegment& seg, bool allow_oversize) {
  EncodedSegment out;
  out.payload_len = seg.len;

  // Options area first, to know the data offset.
  std::vector<uint8_t> options;
  if (seg.e2e_option.has_value()) {
    const size_t option_size = E2eOptionSize(*seg.e2e_option);
    if (option_size > kTcpMaxOptionBytes && !allow_oversize) {
      return std::nullopt;
    }
    options.push_back(kE2eOptionKind);
    options.push_back(static_cast<uint8_t>(option_size));
    const size_t body_at = options.size();
    options.resize(body_at + option_size - 2);
    if (EncodePayload(*seg.e2e_option, options.data() + body_at, options.size() - body_at) == 0) {
      return std::nullopt;
    }
  }
  while (options.size() % 4 != 0) {
    options.push_back(0);  // End-of-options / padding.
  }
  const size_t header_len = kTcpBaseHeaderBytes + options.size();
  if (header_len > 60 && !allow_oversize) {
    return std::nullopt;
  }

  std::vector<uint8_t>& hdr = out.header;
  hdr.reserve(header_len);
  // Ports carry the connection id (the simulator has no real addressing);
  // the "source port" high bit distinguishes the A side.
  const uint16_t port = static_cast<uint16_t>(seg.conn_id & 0x7FFF);
  PutU16(hdr, static_cast<uint16_t>(port | (seg.from_a ? 0x8000 : 0)));
  PutU16(hdr, port);
  PutU32(hdr, seg.seq);
  PutU32(hdr, seg.ack);
  uint8_t flags = 0;
  if ((seg.flags & kFlagAck) != 0) {
    flags |= kWireAck;
  }
  if ((seg.flags & kFlagPsh) != 0) {
    flags |= kWirePsh;
  }
  if ((seg.flags & kFlagEce) != 0) {
    flags |= kWireEce;
  }
  if ((seg.flags & kFlagCwr) != 0) {
    flags |= kWireCwr;
  }
  // Data offset in 32-bit words (4 bits, so it saturates at 60 bytes —
  // oversize headers rely on the decoder's EDO-style length override).
  hdr.push_back(static_cast<uint8_t>(std::min<size_t>(header_len / 4, 15) << 4));
  hdr.push_back(flags);
  PutU16(hdr, static_cast<uint16_t>(std::min<uint32_t>(seg.window, 0xFFFF)));
  PutU16(hdr, 0);  // Checksum (unused in simulation).
  PutU16(hdr, 0);  // Urgent pointer.
  hdr.insert(hdr.end(), options.begin(), options.end());
  return out;
}

std::optional<TcpSegment> DecodeSegmentHeader(const uint8_t* data, size_t len,
                                              uint32_t payload_len) {
  if (len < kTcpBaseHeaderBytes) {
    return std::nullopt;
  }
  TcpSegment seg;
  const uint16_t src_port = GetU16(data);
  seg.from_a = (src_port & 0x8000) != 0;
  seg.conn_id = src_port & 0x7FFF;
  seg.seq = GetU32(data + 4);
  seg.ack = GetU32(data + 8);
  size_t header_len = static_cast<size_t>(data[12] >> 4) * 4;
  if (len > kTcpBaseHeaderBytes + kTcpMaxOptionBytes) {
    // Oversize (EDO-style) emulation: the buffer length is authoritative
    // because the 4-bit data offset cannot express more than 60 bytes.
    header_len = len;
  }
  if (header_len < kTcpBaseHeaderBytes || header_len > len) {
    return std::nullopt;
  }
  const uint8_t flags = data[13];
  if ((flags & kWireAck) != 0) {
    seg.flags |= kFlagAck;
  }
  if ((flags & kWirePsh) != 0) {
    seg.flags |= kFlagPsh;
  }
  if ((flags & kWireEce) != 0) {
    seg.flags |= kFlagEce;
  }
  if ((flags & kWireCwr) != 0) {
    seg.flags |= kFlagCwr;
  }
  seg.window = GetU16(data + 14);
  seg.len = payload_len;

  // Walk the options TLVs.
  size_t pos = kTcpBaseHeaderBytes;
  while (pos < header_len) {
    const uint8_t kind = data[pos];
    if (kind == 0) {
      break;  // End of options.
    }
    if (kind == 1) {
      ++pos;  // NOP.
      continue;
    }
    if (pos + 1 >= header_len) {
      return std::nullopt;
    }
    const uint8_t option_len = data[pos + 1];
    if (option_len < 2 || pos + option_len > header_len) {
      return std::nullopt;
    }
    if (kind == kE2eOptionKind) {
      std::optional<WirePayload> payload = DecodePayload(data + pos + 2, option_len - 2);
      if (!payload.has_value()) {
        return std::nullopt;
      }
      seg.e2e_option = std::move(payload);
    }
    pos += option_len;
  }
  return seg;
}

}  // namespace e2e
