// One endpoint of a simulated TCP connection.
//
// Implements the transmit/receive machinery the paper's batching heuristics
// live in: send/receive socket buffers, Nagle with a generalized cork limit,
// auto-corking keyed off NIC TX completions, delayed acks with piggybacking,
// flow control (advertised windows), TSO super-segments, RTO retransmission
// with out-of-order reassembly — plus the instrumentation of the three
// monitored queues (unacked / unread / ackdelay) in every kernel unit mode,
// and the periodic end-to-end metadata exchange.
//
// Threading model: application-side calls (Send/Recv/SetNoDelay/...) must be
// made from work running on the host's app core; segment handling runs on
// the softirq core (driven by the NIC poll via TcpStack). CPU costs of the
// TX path are charged to whichever core triggered the transmission, as in
// Linux.

#ifndef SRC_TCP_ENDPOINT_H_
#define SRC_TCP_ENDPOINT_H_

#include <algorithm>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <memory_resource>
#include <optional>
#include <string>
#include <vector>

#include "src/core/endpoint_queues.h"
#include "src/core/estimator.h"
#include "src/core/hints.h"
#include "src/net/host.h"
#include "src/sim/simulator.h"
#include "src/tcp/byte_stream.h"
#include "src/tcp/rtt.h"
#include "src/tcp/segment.h"
#include "src/tcp/tcp_config.h"

namespace e2e {

class TcpEndpoint {
 public:
  using ReadableFn = std::function<void()>;
  using WritableFn = std::function<void()>;
  using EstimateFn = std::function<void(const ConnectionEstimator&)>;
  // Invoked once when this endpoint gives up on the peer: either the
  // keepalive probe budget (R2) ran out on an idle connection, or
  // `rto_give_up` consecutive timeouts made no forward progress. `reason`
  // is "keepalive" or "rto". The endpoint itself keeps running (the
  // application decides whether to close), but the signal is what lets
  // Lancet distinguish "slow" from "gone".
  using DeadPeerFn = std::function<void(const char* reason)>;
  // Fault hook on the metadata receive path: maps one arriving peer payload
  // to the payloads actually delivered to the estimator — {} withholds it,
  // {p} passes it through, {p, p} duplicates, {stale} replays an old one.
  using MetadataFilterFn = std::function<std::vector<WirePayload>(const WirePayload&)>;

  // `mem` backs the per-segment bookkeeping maps (SACK scoreboard, OOO
  // reassembly): the stack passes one pooled resource shared by all its
  // endpoints, so map nodes recycle without per-node malloc traffic. The
  // resource must outlive the endpoint.
  TcpEndpoint(Simulator* sim, Host* host, uint64_t conn_id, bool is_a, const TcpConfig& config,
              const StackCosts* costs,
              std::pmr::memory_resource* mem = std::pmr::get_default_resource());

  // ---- Application-side API (call from app-core work) ----

  // Queues `len` bytes ending one application message. Returns false when
  // the send buffer lacks space (retry from the writable callback). Charges
  // the TCP TX path to the app core.
  bool Send(uint64_t len, MessageRecord record);

  // As Send, but also passes the application's hint queue state through the
  // ancillary-data channel (paper §3.3). The tracker must outlive the
  // endpoint or be cleared with SetHintTracker(nullptr).
  bool SendWithHints(uint64_t len, MessageRecord record, HintTracker* hints);

  // Several application messages issued through ONE send() syscall (e.g. a
  // pipelining client coalescing requests — §3.3's "system calls do not
  // always correspond to application messages"). All messages are queued
  // atomically (false if they don't fit together) but count as a single
  // syscall unit in the instrumentation.
  struct BatchItem {
    uint64_t len = 0;
    MessageRecord record;
  };
  bool SendBatch(std::vector<BatchItem> items);

  struct RecvResult {
    uint64_t bytes = 0;
    std::vector<MessageRecord> messages;  // Completed message records, in order.
  };
  // Reads up to `max_bytes` from the receive queue (window updates are sent
  // from the app core when the window reopens meaningfully).
  RecvResult Recv(uint64_t max_bytes = UINT64_MAX);

  uint64_t ReadableBytes() const { return rcvq_.size_bytes(); }
  size_t ReadableMessages() const { return rcvq_.boundary_count(); }
  uint64_t SendBufferAvailable() const;

  // TCP_NODELAY: disables (true) / enables (false) Nagle. Enabling nodelay
  // immediately pushes held data.
  void SetNoDelay(bool nodelay);
  bool nodelay() const { return config_.nodelay; }

  // Generalized Nagle (AIMD extension, paper §5): hold a sub-MSS tail while
  // data is in flight only if fewer than `bytes` are pending. nullopt
  // restores classic behavior (hold any sub-MSS tail, i.e. limit = MSS);
  // 0 behaves like nodelay.
  void SetCorkLimit(std::optional<uint32_t> bytes);

  void SetHintTracker(HintTracker* hints) { hint_tracker_ = hints; }

  // On-demand metadata exchange (paper §5: "instead of using some fixed
  // exchange interval, we can do it on-demand"): the next outbound segment
  // carries this endpoint's counters; if nothing goes out within a short
  // grace window (100 µs), a pure ack is sent. Works even when the
  // periodic exchange is disabled.
  void RequestExchange();

  void SetReadableCallback(ReadableFn fn) { readable_cb_ = std::move(fn); }
  void SetWritableCallback(WritableFn fn) { writable_cb_ = std::move(fn); }
  // Invoked (softirq context) whenever a metadata exchange refreshes the
  // estimate; wiring point for dynamic batching controllers.
  void SetEstimateCallback(EstimateFn fn) { estimate_cb_ = std::move(fn); }
  // Installs/clears (nullptr) the metadata fault filter (testbed/faults).
  void SetMetadataFilter(MetadataFilterFn fn) { metadata_filter_ = std::move(fn); }
  // Dead-peer declaration hook (keepalive R2 / rto_give_up; see DeadPeerFn).
  void SetDeadPeerCallback(DeadPeerFn fn) { dead_peer_cb_ = std::move(fn); }

  // Kills this endpoint: cancels every timer, drops callbacks, and turns
  // all entry points into no-ops. Models the socket side of a process
  // crash / close. The object intentionally stays allocated (a zombie):
  // CPU-core work items and in-flight packets may still hold `this`, so
  // destruction is unsafe until the simulation ends — TcpStack keeps
  // ownership and merely removes the demux entry.
  void Shutdown();
  bool dead() const { return dead_; }

  // ---- Stack-side API ----

  // Processes one incoming segment (softirq context; called by TcpStack).
  // `ecn_ce` is the IP-layer Congestion Experienced mark applied by a
  // switch along the path (Packet::ecn_ce).
  void HandleSegment(const TcpSegment& seg, bool ecn_ce = false);

  // NIC TX-completion notification (flushes auto-corked data).
  void OnTxCompletions(size_t n);

  // Seeds the peer's receive window before any ack arrives (the topology
  // builder calls this with the peer's configured rcvbuf, standing in for
  // the window learned during the handshake).
  void InitPeerWindow(uint64_t bytes) {
    peer_rwnd_ = bytes;
    peer_rwnd_max_ = std::max(peer_rwnd_max_, bytes);
  }

  // Sets the peer host address stamped on every outgoing wire packet so a
  // switched fabric can forward it (ConnectPair wires this automatically;
  // 0 on point-to-point paths, where links ignore the address).
  void SetPeerHost(uint32_t id) { peer_host_ = id; }
  uint32_t peer_host() const { return peer_host_; }

  // Sets the local host address stamped as the source on every outgoing
  // wire packet. Together with the destination it forms the flow key a
  // multi-path fabric hashes for ECMP path pinning (ConnectPair wires this
  // automatically; 0 on point-to-point paths).
  void SetLocalHost(uint32_t id) { local_host_ = id; }
  uint32_t local_host() const { return local_host_; }

  // ---- Introspection ----

  EndpointQueues& queues() { return queues_; }
  ConnectionEstimator& estimator() { return estimator_; }
  const TcpConfig& config() const { return config_; }
  const RttEstimator& rtt() const { return rtt_; }
  const CongestionControlAlgorithm& congestion() const { return *cc_; }
  // Ground-truth sender state, readable in-sim (the diagnosis validation
  // harness compares the switch's passive inference against these).
  uint64_t flight_bytes() const { return snd_nxt_ - sndq_.head_offset(); }
  uint64_t unsent_bytes() const { return sndq_.tail_offset() - snd_nxt_; }
  uint64_t peer_rwnd() const { return peer_rwnd_; }
  bool in_recovery() const { return in_recovery_; }
  uint64_t conn_id() const { return conn_id_; }
  bool is_a() const { return is_a_; }
  Host* host() { return host_; }

  struct Stats {
    uint64_t sends = 0;
    uint64_t recvs = 0;
    uint64_t bytes_queued = 0;
    uint64_t data_segments_sent = 0;
    uint64_t wire_packets_sent = 0;
    uint64_t bytes_sent = 0;
    uint64_t pure_acks_sent = 0;
    uint64_t acks_piggybacked = 0;
    uint64_t delack_timer_fires = 0;
    uint64_t segments_received = 0;
    uint64_t bytes_received = 0;
    uint64_t ooo_segments = 0;
    uint64_t retransmits = 0;
    uint64_t nagle_holds = 0;
    uint64_t autocork_holds = 0;
    uint64_t nagle_timer_fires = 0;
    uint64_t persist_probes = 0;
    uint64_t exchanges_sent = 0;
    uint64_t exchanges_received = 0;
    uint64_t send_buffer_full = 0;
    // Loss recovery (SACK / RACK / TLP; zero with the features off).
    uint64_t rtt_ts_samples = 0;      // Karn-safe timestamp RTT samples taken.
    uint64_t sack_blocks_sent = 0;    // Blocks actually emitted on acks.
    uint64_t sack_retransmits = 0;    // Hole repairs driven by the scoreboard.
    uint64_t rack_marked_lost = 0;    // Segments the reordering window condemned.
    uint64_t spurious_loss_reverts = 0;  // Lost-marked segments later sacked.
    uint64_t tlp_probes = 0;          // Tail-loss probes sent.
    uint64_t rto_fires = 0;           // Retransmission timeouts that fired.
    uint64_t recovery_events = 0;     // Loss-recovery episodes entered.
    uint64_t recovery_us_total = 0;   // Time spent inside recovery episodes.
    uint64_t dup_segments_received = 0;  // Fully-duplicate data arrivals (the
                                         // receiver-side spurious-retransmit
                                         // signal).
    // Option-space arbitration sheds (see ArbitrateOptions).
    uint64_t sack_blocks_trimmed = 0;
    uint64_t exchange_deferrals = 0;
    uint64_t ts_omitted = 0;
    // Dead-peer machinery.
    uint64_t keepalive_probes = 0;
    uint64_t dead_peer_declarations = 0;
    uint64_t persist_backoffs = 0;    // Persist interval doublings applied.
    // ECN round trip (all zero unless config.cc.ecn is on).
    uint64_t ce_received = 0;     // CE-marked data segments that arrived.
    uint64_t ece_sent = 0;        // Acks we sent carrying the ECE echo.
    uint64_t ece_received = 0;    // Acks that arrived carrying ECE.
    uint64_t cwr_sent = 0;        // Segments we sent carrying CWR.
    uint64_t cwr_received = 0;    // Segments that arrived carrying CWR.
  };
  const Stats& stats() const { return stats_; }

 private:
  // Why a push was triggered; controls Nagle-override and pure-ack behavior.
  enum class PushReason {
    kApp,            // send() syscall.
    kAckAdvance,     // Incoming ack freed window / released Nagle hold.
    kNagleTimer,     // Nagle safety timeout — small send is forced out.
    kTxCompletion,   // NIC TX completion — auto-cork flush.
    kDelackTimer,    // Delayed-ack timeout — a pure ack is due.
    kImmediateAck,   // >= 2 MSS of unacked receive data — ack now.
    kDupAck,         // Duplicate or out-of-order data: ack unconditionally
                     // (RFC 5681 — the peer may have missed our last ack).
    kExchangeTimer,  // Metadata exchange fallback when no data piggybacks.
    kWindow,         // Receive window reopened — send a window update.
  };

  struct PlannedPacket {
    Packet packet;
    Duration cost;
  };

  // Submits a push work item on `core`; planning happens at work start.
  void SubmitPush(CpuCore* core, PushReason reason);
  // Plans transmittable segments right now (mutates snd state). Returns the
  // packets plus their CPU cost.
  std::vector<PlannedPacket> PlanPush(PushReason reason);
  // Builds one (possibly TSO super-) segment covering
  // [snd_nxt_, snd_nxt_ + take) and advances snd_nxt_.
  PlannedPacket BuildDataPacket(uint64_t take);
  // Builds a retransmission of up to one MSS starting at snd_una.
  PlannedPacket BuildRetransmit();
  // Queues a retransmission of the head segment on the softirq core.
  void SubmitRetransmit();
  // Builds the wire packet (with TSO slices when `take` exceeds one MSS)
  // for [start, start + take); shared by the two builders above.
  PlannedPacket BuildPacketFor(uint64_t start, uint64_t take, bool is_retransmit);
  void OnRtoFire();
  // Fills ack/window fields (and the e2e option when due) on a segment.
  void StampOutgoing(TcpSegment& seg, bool force_exchange);
  PlannedPacket BuildPureAck(bool force_exchange);

  bool MaySendSmallNow(uint64_t pending, PushReason reason);
  uint64_t EffectiveCorkLimit() const;

  // ---- SACK scoreboard / RACK / TLP (config_.features) ----

  // Records one wire segment [start, end) in the scoreboard (SACK on).
  void RecordSent(uint64_t start, uint64_t end, bool is_retransmit);
  // Applies the ack's SACK blocks; returns true if anything was newly sacked.
  bool ApplySackBlocks(const TcpSegment& seg, uint64_t una);
  // Marks scoreboard entries lost (RACK reordering window, or the 3-MSS
  // SACK rule without RACK) and enters recovery on a new loss event.
  void DetectLosses();
  void EnterLossRecovery();
  // Outstanding-and-undelivered bytes (RFC 6675 pipe).
  uint64_t PipeBytes() const;
  // Receiver: SACK blocks describing ooo_, most recent arrival first.
  std::vector<SackBlock> BuildSackBlocks() const;
  // Sender's microsecond timestamp clock (never returns 0).
  uint32_t TsClockNow() const;
  Duration RackReorderWindow() const;
  void OnTlpFire();
  void ArmRackTimer(Duration delay);
  void ArmKeepaliveTimer(Duration delay);
  void OnKeepaliveFire();
  void DeclareDeadPeer(const char* reason);

  void ProcessAck(const TcpSegment& seg);
  void ProcessData(const TcpSegment& seg, bool ecn_ce);
  void DeliverInOrder(uint64_t end_offset, std::vector<BoundaryEntry> boundaries);
  void MaybeAckOnReceive();
  void ArmDelackTimer();
  void ArmNagleTimer();
  void ArmRtoTimer();
  // Zero-window persist: when data is pending, nothing is in flight, and
  // the peer's window is closed, probe with one byte so a lost window
  // update cannot deadlock the connection.
  void ArmPersistTimer();
  void CancelTimer(EventId& id);
  void ScheduleExchangeTimer();
  void OnAckSent(uint64_t acked_to);  // Updates rcv_wup_ + ackdelay queues.

  uint64_t AdvertisedWindow() const;
  // MSS-grid crossings in (from, to] — the "packets" unit accounting.
  int64_t PacketUnits(uint64_t from, uint64_t to) const;
  void TrackThree(QueueKind kind, int64_t bytes, int64_t packets, int64_t syscalls);

  Simulator* sim_;
  Host* host_;
  uint64_t conn_id_;
  bool is_a_;
  uint32_t peer_host_ = 0;
  uint32_t local_host_ = 0;
  TcpConfig config_;
  const StackCosts* costs_;
  std::optional<uint32_t> cork_limit_override_;

  // ---- Send side ----
  ByteStreamQueue sndq_;  // head = snd_una; bytes retained until acked.
  uint64_t snd_nxt_ = 0;
  uint64_t peer_rwnd_ = 65536;  // Until the first ack; see InitPeerWindow().
  uint64_t peer_rwnd_max_ = 0;  // Largest window the peer ever offered.
  std::unique_ptr<CongestionControlAlgorithm> cc_;
  bool cwr_pending_ = false;    // Window was reduced: announce CWR on the
                                // next outgoing segment (RFC 3168 §6.1.2).
  bool send_blocked_ = false;   // A Send() failed; fire writable_cb_ on space.
  RttEstimator rtt_;
  EventId nagle_timer_ = kInvalidEventId;
  EventId rto_timer_ = kInvalidEventId;
  EventId persist_timer_ = kInvalidEventId;
  bool nagle_override_pending_ = false;
  std::optional<uint64_t> timed_end_;  // RTT sample: ack target offset.
  TimePoint timed_sent_at_;
  uint32_t dup_acks_ = 0;             // Consecutive duplicate acks seen.
  // NewReno loss recovery (RFC 6582): set when a loss event (third dup ack
  // or RTO) retransmits, covering everything sent before it. A partial ack
  // below `recovery_point_` means the next hole is now at the head of the
  // send queue — retransmit it immediately instead of waiting out another
  // three-dup-ack round (which burst losses never produce) or an RTO.
  bool in_recovery_ = false;
  uint64_t recovery_point_ = 0;
  // True when the current recovery was entered via RTO: the send pointer
  // was rewound and the normal path is resending the tail, so partial acks
  // must not inject extra one-MSS retransmits on top of it.
  bool rto_recovery_ = false;
  bool hold_for_completion_ = false;  // Auto-cork armed.
  TimePoint recovery_started_at_;     // Feeds Stats::recovery_us_total.

  // SACK scoreboard (populated only when config_.features.sack): one entry
  // per wire segment still outstanding, keyed by start offset. Entries are
  // trimmed/split by cumulative acks and carry the delivery/loss state the
  // RFC 6675 pipe and RACK reason over.
  struct SentSeg {
    uint64_t end = 0;
    TimePoint sent_at;          // Most recent (re)transmission time.
    // Sack high-water mark at the last (re)transmission: the 6675-style
    // dupthresh rule needs 3 MSS of sack evidence *newer* than the send it
    // judges, or a freshly retransmitted hole re-marks itself instantly.
    uint64_t sack_floor = 0;
    bool retransmitted = false;
    bool sacked = false;
    bool lost = false;          // Marked lost and not yet retransmitted.
  };
  // Pool-backed (see ctor's `mem`): at 100k+ connections the per-node
  // malloc overhead of ordinary map nodes dominates the entries themselves.
  std::pmr::map<uint64_t, SentSeg> scoreboard_;
  uint64_t sacked_bytes_ = 0;
  uint64_t lost_bytes_ = 0;
  uint64_t highest_sacked_ = 0;  // Highest sacked end offset.
  // RACK: send time / end offset of the most recently *delivered* segment
  // that was never retransmitted (delivery order vs send order exposes
  // losses without dup-ack counting).
  TimePoint rack_time_;
  uint64_t rack_end_ = 0;
  EventId rack_timer_ = kInvalidEventId;  // Reordering-window re-check.
  bool tlp_out_ = false;  // One tail-loss probe per flight.
  int consecutive_rtos_ = 0;  // R2 give-up accounting (rto_give_up).

  // RFC 7323 receiver state: the TSval to echo (ts_recent), per the
  // "earliest unacked segment" update rule that keeps RTTM honest under
  // delayed acks.
  uint32_t ts_recent_ = 0;
  bool ts_recent_valid_ = false;

  // Dead-peer detection.
  EventId keepalive_timer_ = kInvalidEventId;
  TimePoint last_rx_;
  int keepalive_unanswered_ = 0;
  bool dead_peer_declared_ = false;
  DeadPeerFn dead_peer_cb_;

  // Zero-window persist backoff: the probe interval doubles per unanswered
  // probe (capped at config_.persist_max_interval) instead of re-firing at
  // the instantaneous RTO.
  int persist_backoff_shift_ = 0;

  // ---- Receive side ----
  ByteStreamQueue rcvq_;  // head = app read position, tail = rcv_nxt.
  uint64_t rcv_nxt_ = 0;
  uint64_t rcv_wup_ = 0;  // Highest ack we sent.
  struct OooSegment {
    uint64_t len = 0;
    std::vector<BoundaryEntry> boundaries;  // Absolute offsets.
  };
  std::pmr::map<uint64_t, OooSegment> ooo_;  // Keyed by start offset; pool-backed.
  uint64_t ooo_bytes_ = 0;
  // Start offset of the most recent out-of-order arrival: RFC 2018 wants
  // the SACK block containing it listed first.
  uint64_t last_ooo_arrival_ = 0;
  EventId delack_timer_ = kInvalidEventId;
  std::deque<uint64_t> unacked_rx_boundaries_;  // Syscall-unit ackdelay queue.
  // ECN receiver state. Classic ECN (RFC 3168) latches the echo until the
  // peer answers with CWR; DCTCP (RFC 8257) instead echoes the CE state of
  // the segments covered by each individual ack (the latch clears whenever
  // an ack goes out) and acks immediately on every CE-state transition.
  bool ece_echo_pending_ = false;
  bool ce_state_ = false;  // DCTCP: CE bit of the most recent data arrival.
  uint64_t last_advertised_window_ = 0;
  uint64_t adv_right_edge_ = 0;  // Highest rcv_nxt + window ever advertised.

  // ---- Instrumentation & estimation ----
  EndpointQueues queues_;
  ConnectionEstimator estimator_;
  HintTracker* hint_tracker_ = nullptr;
  TimePoint last_exchange_sent_;
  EventId exchange_timer_ = kInvalidEventId;
  bool force_exchange_ = false;  // One-shot on-demand exchange pending.

  ReadableFn readable_cb_;
  WritableFn writable_cb_;
  EstimateFn estimate_cb_;
  MetadataFilterFn metadata_filter_;
  Stats stats_;
  uint64_t next_packet_id_ = 1;
  bool dead_ = false;
};

}  // namespace e2e

#endif  // SRC_TCP_ENDPOINT_H_
