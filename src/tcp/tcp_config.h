// Configuration for TCP endpoints and the CPU cost model of the stack.

#ifndef SRC_TCP_TCP_CONFIG_H_
#define SRC_TCP_TCP_CONFIG_H_

#include <cstdint>
#include <optional>

#include "src/core/units.h"
#include "src/sim/time.h"
#include "src/tcp/cc/congestion_control.h"
#include "src/tcp/rtt.h"

namespace e2e {

// TCP option / loss-recovery feature selection. Everything defaults off so
// the baseline stack (cumulative-ack NewReno + RTO rewind) is unchanged;
// drivers opt in per-cell. `rack` requires `sack` (the scoreboard supplies
// the per-segment delivery state RACK reasons over); `timestamps` is
// independent but recommended with RACK (Karn-safe RTT under retransmits).
struct TcpFeatureConfig {
  // RFC 7323 timestamps: TSval/TSecr on every segment (subject to the
  // option-space arbiter), giving one Karn-safe RTT sample per ack.
  bool timestamps = false;
  // RFC 2018 SACK generation (receiver) + RFC 6675 scoreboard (sender):
  // holes are retransmitted individually; an RTO marks outstanding data
  // lost and repairs it hole-by-hole instead of rewinding the send pointer.
  bool sack = false;
  // RACK-style time-based loss marking (RFC 8985, simplified): a segment is
  // lost once a segment sent sufficiently later was delivered, replacing
  // the dup-ack==3 heuristic. Implies a tail-loss probe (TLP) so a lost
  // tail is probed after ~2*SRTT instead of waiting out a backed-off RTO.
  bool rack = false;
};

// Dead-peer detection: idle keepalives with an R2-style give-up threshold
// (RFC 1122 §4.2.3.6). Defaults are sim-scale, not the kernel's 2 hours.
struct KeepaliveConfig {
  bool enabled = false;
  // Probe when nothing has arrived from the peer for this long.
  Duration idle = Duration::Millis(500);
  // Spacing of successive unanswered probes.
  Duration interval = Duration::Millis(100);
  // Unanswered probes before the peer is declared dead (R2).
  int probes = 5;
};

struct TcpConfig {
  uint32_t mss = 1448;  // 1500 MTU minus IP/TCP headers + timestamps.
  uint64_t sndbuf_bytes = 4 * 1024 * 1024;
  uint64_t rcvbuf_bytes = 4 * 1024 * 1024;

  // Nagle's algorithm: small segments are held while unacked data is in
  // flight. `nodelay` (TCP_NODELAY) disables it; see also
  // TcpEndpoint::SetCorkLimit for the AIMD-adjustable generalization.
  bool nodelay = false;
  // Safety valve: a held small segment is force-pushed after this delay
  // (the paper quotes 200 ms for Nagle's worst case).
  Duration nagle_timeout = Duration::Millis(200);

  // Auto-corking: even with nodelay, hold small segments while this
  // endpoint has uncompleted TX descriptors in the NIC ring; flush on the
  // TX-completion interrupt.
  bool autocork = false;

  // Delayed acks (RFC 1122): a pure ack is sent once `delack_segments` MSS
  // of unacked data accumulate, or when the timer expires, or piggybacked
  // on any outbound data.
  Duration delack_timeout = Duration::Millis(40);
  uint32_t delack_segments = 2;

  // TSO: hand super-segments of up to `tso_max_bytes` to the NIC, paying
  // the stack TX cost once; the NIC slices them to MSS on the wire.
  bool tso = true;
  uint32_t tso_max_bytes = 65536;

  RttEstimator::Config rtt;

  // Option / recovery features (timestamps, SACK, RACK+TLP) and dead-peer
  // keepalives; see the structs above. All off by default.
  TcpFeatureConfig features;
  KeepaliveConfig keepalive;

  // Zero-window persist probes back off exponentially from the current RTO
  // (doubling per unanswered probe) up to this cap; forward progress or a
  // reopened window resets the backoff. RFC 1122 wants the interval bounded
  // by 60 s; the sim default is tighter so tests stay fast.
  Duration persist_max_interval = Duration::Seconds(1);

  // Retransmission give-up (R2, RFC 1122 §4.2.3.5): after this many
  // consecutive RTO firings with no forward progress the peer is declared
  // dead (DeadPeerFn). 0 disables (the seed behavior: retry forever).
  int rto_give_up = 0;

  // Congestion control (the `mss` field is overridden with this config's
  // mss when the endpoint is constructed). `cc.algorithm` selects
  // Reno/CUBIC/DCTCP; `cc.ecn` turns on CE echo + CWR signalling.
  CcConfig cc;

  // End-to-end metadata exchange (paper §3.2/§5): attach the wire payload to
  // the first outbound segment after this interval elapses, with a pure-ack
  // fallback when the connection is idle. Zero disables the exchange.
  Duration e2e_exchange_interval = Duration::Millis(1);
  UnitMode e2e_mode = UnitMode::kBytes;
};

// CPU costs of stack operations, charged to the executing core. These are
// the calibration knobs standing in for the paper's Xeon testbed (see
// DESIGN.md §5); defaults approximate a modern server.
struct StackCosts {
  // Softirq RX. With GRO enabled (the default, as on the paper's testbed),
  // contiguous in-order packets of one flow arriving in the same NAPI poll
  // are coalesced: every wire packet pays the driver cost, but the full
  // stack traversal (`rx_per_packet`) is paid once per coalesced group.
  bool gro = true;
  uint32_t gro_max_bytes = 65536;
  Duration driver_rx_per_packet = Duration::Nanos(150);
  Duration rx_per_packet = Duration::Nanos(600);
  Duration rx_per_byte = Duration::Nanos(0);  // Often folded into app copy.

  // TX path (tcp_write_xmit + qdisc + driver), per (super-)segment handed to
  // the NIC and per payload byte, charged to the context that pushes.
  Duration tx_per_segment = Duration::Nanos(600);
  Duration tx_per_byte = Duration::Nanos(0);

  // Ringing the NIC doorbell, once per push that transmitted anything.
  Duration doorbell = Duration::Nanos(300);

  // Building/sending a pure ack.
  Duration pure_ack_tx = Duration::Nanos(400);
};

}  // namespace e2e

#endif  // SRC_TCP_TCP_CONFIG_H_
