// Round-trip-time estimation: Jacobson/Karels SRTT + RTTVAR smoothing with
// Karn's rule (no samples from retransmitted segments), feeding the
// retransmission timeout. Also the baseline the paper compares against —
// RTT ignores application read delays and is inflated by delayed acks, which
// is precisely why it is a poor proxy for end-to-end latency (§2).

#ifndef SRC_TCP_RTT_H_
#define SRC_TCP_RTT_H_

#include <optional>

#include "src/sim/time.h"

namespace e2e {

class RttEstimator {
 public:
  struct Config {
    Duration initial_rto = Duration::Millis(200);
    // Linux's floor. Must exceed the peer's delayed-ack timeout (40 ms),
    // or a quiet tail whose ack is being delayed retransmits spuriously.
    Duration min_rto = Duration::Millis(200);
    Duration max_rto = Duration::Seconds(4);
  };

  RttEstimator();
  explicit RttEstimator(const Config& config)
      : config_(config), rto_(config.initial_rto), base_rto_(config.initial_rto) {}

  // Feeds one RTT sample (from a never-retransmitted segment, per Karn).
  void AddSample(Duration rtt);

  // Exponential backoff after a retransmission timeout.
  void Backoff();

  // Clears accumulated backoff once the connection makes forward progress
  // (Linux does the same on a new cumulative ack).
  void ResetBackoff() { rto_ = base_rto_; }

  Duration rto() const { return rto_; }
  std::optional<Duration> srtt() const { return srtt_; }
  Duration rttvar() const { return rttvar_; }
  // Smallest sample ever seen — the propagation-delay floor RACK sizes its
  // reordering window from (RFC 8985 uses min_rtt/4).
  std::optional<Duration> min_rtt() const { return min_rtt_; }
  int64_t samples() const { return samples_; }

 private:
  Config config_;
  std::optional<Duration> srtt_;
  std::optional<Duration> min_rtt_;
  Duration rttvar_;
  Duration rto_;
  Duration base_rto_;  // RTO without timeout backoff.
  int64_t samples_ = 0;
};

}  // namespace e2e

#endif  // SRC_TCP_RTT_H_
