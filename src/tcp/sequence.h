// 32-bit TCP sequence-number arithmetic.
//
// Internally the stack tracks absolute 64-bit stream offsets (immune to
// wraparound); on the wire, sequence and ack numbers are 32-bit and wrap.
// `WrapSeq`/`UnwrapSeq` convert between the two: unwrapping picks the 64-bit
// offset closest to a reference offset, which is correct as long as the
// true offset is within 2^31 bytes of the reference (always true for a
// window-limited connection).

#ifndef SRC_TCP_SEQUENCE_H_
#define SRC_TCP_SEQUENCE_H_

#include <cstdint>

namespace e2e {

inline constexpr uint32_t WrapSeq(uint64_t offset) { return static_cast<uint32_t>(offset); }

// Returns the offset congruent to `seq` (mod 2^32) nearest to `reference`.
// If that nearest value would be negative (possible only within 2^31 of
// offset zero), the next congruent value is returned instead.
inline constexpr uint64_t UnwrapSeq(uint32_t seq, uint64_t reference) {
  const int32_t delta = static_cast<int32_t>(seq - static_cast<uint32_t>(reference));
  const int64_t result = static_cast<int64_t>(reference) + delta;
  return result >= 0 ? static_cast<uint64_t>(result)
                     : static_cast<uint64_t>(result + (int64_t{1} << 32));
}

// True when sequence `a` is strictly before `b` in wrapped 32-bit space.
inline constexpr bool SeqBefore(uint32_t a, uint32_t b) {
  return static_cast<int32_t>(a - b) < 0;
}
inline constexpr bool SeqAfter(uint32_t a, uint32_t b) { return SeqBefore(b, a); }
inline constexpr bool SeqBeforeEq(uint32_t a, uint32_t b) { return !SeqAfter(a, b); }

}  // namespace e2e

#endif  // SRC_TCP_SEQUENCE_H_
