// A virtual byte-stream queue with message-boundary records.
//
// The simulator does not shuffle real payload bytes around; a stream is a
// contiguous range of *offsets* plus a sorted list of message boundaries.
// Each boundary marks the exclusive end offset of one application message
// (one send() call) and carries an opaque record that rides the stream to
// the receiver — this is how the semantic gap between bytes and application
// messages is modeled (and how ground-truth latencies are measured).
//
// Used for both the send queue (append on send(), consume on ack) and the
// receive queue (append on in-order arrival, consume on recv()).

#ifndef SRC_TCP_BYTE_STREAM_H_
#define SRC_TCP_BYTE_STREAM_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "src/sim/time.h"

namespace e2e {

// Opaque per-message metadata attached to a boundary. `data` typically holds
// an application request/response object; `send_time` is stamped when the
// message enters the sender's stack (ground truth for latency measurement).
// `syscall_end` marks the last message of one send() call: when an
// application batches several messages into one syscall (paper §3.3's
// caveat about the syscall heuristic), only that boundary counts as a
// syscall unit.
struct MessageRecord {
  uint64_t id = 0;
  std::shared_ptr<void> data;
  TimePoint send_time;
  bool syscall_end = true;
};

struct BoundaryEntry {
  uint64_t end_offset = 0;  // Exclusive stream offset where the message ends.
  MessageRecord record;
};

class ByteStreamQueue {
 public:
  explicit ByteStreamQueue(uint64_t start_offset = 0)
      : head_(start_offset), tail_(start_offset) {}

  uint64_t head_offset() const { return head_; }
  uint64_t tail_offset() const { return tail_; }
  uint64_t size_bytes() const { return tail_ - head_; }
  bool empty() const { return head_ == tail_; }

  // Extends the stream by `len` bytes.
  void Append(uint64_t len) { tail_ += len; }

  // Registers a message boundary at `end_offset` (must be > the previous
  // boundary and <= tail).
  void AddBoundary(uint64_t end_offset, MessageRecord record);

  // Number of boundaries currently in the queue.
  size_t boundary_count() const { return boundaries_.size(); }

  struct Consumed {
    uint64_t bytes = 0;
    std::vector<BoundaryEntry> completed;  // Boundaries whose end was reached.
  };

  // Consumes up to `max_bytes` from the head, returning the boundaries whose
  // end offset the new head reached or passed.
  Consumed Consume(uint64_t max_bytes);

  // Consumes exactly up to absolute offset `to` (head <= to <= tail).
  Consumed ConsumeTo(uint64_t to);

  // Boundaries with end offset in (start, end]; used when building segments.
  std::vector<BoundaryEntry> BoundariesIn(uint64_t start, uint64_t end) const;

 private:
  uint64_t head_;
  uint64_t tail_;
  std::deque<BoundaryEntry> boundaries_;  // Sorted by end_offset.
};

}  // namespace e2e

#endif  // SRC_TCP_BYTE_STREAM_H_
