#include "src/tcp/endpoint.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <memory>
#include <utility>

#include "src/obs/trace.h"
#include "src/sim/logging.h"
#include "src/tcp/segment_codec.h"
#include "src/tcp/sequence.h"

namespace e2e {
namespace {

// Track name for one endpoint: "conn<N>/client" or "conn<N>/server".
uint32_t EndpointTrack(TraceRecorder* tr, uint64_t conn_id, bool is_a) {
  char name[32];
  std::snprintf(name, sizeof(name), "conn%llu/%s", static_cast<unsigned long long>(conn_id),
                is_a ? "client" : "server");
  return tr->Track(name);
}

}  // namespace

TcpEndpoint::TcpEndpoint(Simulator* sim, Host* host, uint64_t conn_id, bool is_a,
                         const TcpConfig& config, const StackCosts* costs,
                         std::pmr::memory_resource* mem)
    : sim_(sim),
      host_(host),
      conn_id_(conn_id),
      is_a_(is_a),
      config_(config),
      costs_(costs),
      cc_(MakeCongestionControl([&config] {
        CcConfig cc = config.cc;
        cc.mss = config.mss;
        return cc;
      }())),
      rtt_(config.rtt),
      scoreboard_(mem),
      last_rx_(sim->Now()),
      ooo_(mem),
      queues_(sim->Now()),
      estimator_(config.e2e_mode),
      last_exchange_sent_(sim->Now()) {
  assert(sim_ != nullptr && host_ != nullptr && costs_ != nullptr);
  if (config_.e2e_exchange_interval > Duration::Zero()) {
    ScheduleExchangeTimer();
  }
  if (config_.keepalive.enabled) {
    ArmKeepaliveTimer(config_.keepalive.idle);
  }
}

// ---------------------------------------------------------------------------
// Application-side API.
// ---------------------------------------------------------------------------

uint64_t TcpEndpoint::SendBufferAvailable() const {
  return config_.sndbuf_bytes - std::min(config_.sndbuf_bytes, sndq_.size_bytes());
}

bool TcpEndpoint::Send(uint64_t len, MessageRecord record) {
  record.syscall_end = true;
  std::vector<BatchItem> items(1);
  items[0].len = len;
  items[0].record = std::move(record);
  return SendBatch(std::move(items));
}

void TcpEndpoint::Shutdown() {
  if (dead_) {
    return;
  }
  dead_ = true;
  CancelTimer(nagle_timer_);
  CancelTimer(rto_timer_);
  CancelTimer(persist_timer_);
  CancelTimer(delack_timer_);
  CancelTimer(exchange_timer_);
  CancelTimer(rack_timer_);
  CancelTimer(keepalive_timer_);
  force_exchange_ = false;
  hold_for_completion_ = false;
  send_blocked_ = false;
  readable_cb_ = nullptr;
  writable_cb_ = nullptr;
  estimate_cb_ = nullptr;
  metadata_filter_ = nullptr;
  hint_tracker_ = nullptr;
  dead_peer_cb_ = nullptr;
}

bool TcpEndpoint::SendBatch(std::vector<BatchItem> items) {
  assert(!items.empty());
  if (dead_) {
    return false;
  }
  uint64_t total = 0;
  for (const BatchItem& item : items) {
    assert(item.len > 0);
    total += item.len;
  }
  if (sndq_.size_bytes() + total > config_.sndbuf_bytes) {
    ++stats_.send_buffer_full;
    send_blocked_ = true;
    return false;
  }
  const uint64_t old_tail = sndq_.tail_offset();
  for (size_t i = 0; i < items.size(); ++i) {
    BatchItem& item = items[i];
    item.record.send_time = sim_->Now();
    item.record.syscall_end = i + 1 == items.size();
    sndq_.Append(item.len);
    sndq_.AddBoundary(sndq_.tail_offset(), std::move(item.record));
    ++stats_.sends;
  }
  stats_.bytes_queued += total;
  if (TraceRecorder* tr = TraceIf(TraceCategory::kSyscall)) {
    TraceEvent e;
    e.time = sim_->Now();
    e.category = TraceCategory::kSyscall;
    e.name = "send";
    e.track = EndpointTrack(tr, conn_id_, is_a_);
    e.k1 = "bytes";
    e.v1 = static_cast<double>(total);
    e.k2 = "messages";
    e.v2 = static_cast<double>(items.size());
    tr->Record(e);
  }
  // One syscall unit regardless of how many messages the call carried.
  TrackThree(QueueKind::kUnacked, static_cast<int64_t>(total),
             PacketUnits(old_tail, old_tail + total), 1);
  SubmitPush(&host_->app_core(), PushReason::kApp);
  return true;
}

bool TcpEndpoint::SendWithHints(uint64_t len, MessageRecord record, HintTracker* hints) {
  hint_tracker_ = hints;
  return Send(len, std::move(record));
}

TcpEndpoint::RecvResult TcpEndpoint::Recv(uint64_t max_bytes) {
  if (dead_) {
    return RecvResult{};
  }
  const uint64_t old_head = rcvq_.head_offset();
  ByteStreamQueue::Consumed consumed = rcvq_.Consume(max_bytes);
  RecvResult result;
  result.bytes = consumed.bytes;
  result.messages.reserve(consumed.completed.size());
  for (BoundaryEntry& entry : consumed.completed) {
    result.messages.push_back(std::move(entry.record));
  }
  if (consumed.bytes > 0) {
    ++stats_.recvs;
    if (TraceRecorder* tr = TraceIf(TraceCategory::kSyscall)) {
      TraceEvent e;
      e.time = sim_->Now();
      e.category = TraceCategory::kSyscall;
      e.name = "recv";
      e.track = EndpointTrack(tr, conn_id_, is_a_);
      e.k1 = "bytes";
      e.v1 = static_cast<double>(consumed.bytes);
      e.k2 = "messages";
      e.v2 = static_cast<double>(result.messages.size());
      tr->Record(e);
    }
    int64_t syscall_units = 0;
    for (const MessageRecord& record : result.messages) {
      syscall_units += record.syscall_end ? 1 : 0;
    }
    TrackThree(QueueKind::kUnread, -static_cast<int64_t>(consumed.bytes),
               -PacketUnits(old_head, rcvq_.head_offset()), -syscall_units);
    // Send a window update if reading reopened a meaningfully larger window
    // than last advertised (Linux sends these from the read syscall path).
    const uint64_t window = AdvertisedWindow();
    if (window >= last_advertised_window_ + 2 * config_.mss ||
        (last_advertised_window_ < config_.mss && window >= config_.mss)) {
      SubmitPush(&host_->app_core(), PushReason::kWindow);
    }
  }
  return result;
}

void TcpEndpoint::SetNoDelay(bool nodelay) {
  if (dead_) {
    return;
  }
  const bool was = config_.nodelay;
  config_.nodelay = nodelay;
  if (nodelay && !was && snd_nxt_ < sndq_.tail_offset()) {
    // Push anything Nagle was holding. Runs on the app core: toggling is a
    // setsockopt-style application action.
    SubmitPush(&host_->app_core(), PushReason::kApp);
  }
}

void TcpEndpoint::RequestExchange() {
  if (dead_) {
    return;
  }
  force_exchange_ = true;
  // Give outbound data a short window to piggyback the option; if nothing
  // carries it by then, fall back to a pure ack.
  sim_->Schedule(Duration::Micros(100), [this] {
    if (force_exchange_) {
      SubmitPush(&host_->softirq_core(), PushReason::kExchangeTimer);
    }
  });
}

void TcpEndpoint::SetCorkLimit(std::optional<uint32_t> bytes) {
  if (dead_) {
    return;
  }
  cork_limit_override_ = bytes;
  if (snd_nxt_ < sndq_.tail_offset()) {
    SubmitPush(&host_->app_core(), PushReason::kApp);
  }
}

// ---------------------------------------------------------------------------
// Transmit path.
// ---------------------------------------------------------------------------

uint64_t TcpEndpoint::EffectiveCorkLimit() const {
  return cork_limit_override_.value_or(config_.mss);
}

bool TcpEndpoint::MaySendSmallNow(uint64_t pending, PushReason reason) {
  const bool in_flight = snd_nxt_ > sndq_.head_offset();
  const bool nagle_ok = config_.nodelay || !in_flight || reason == PushReason::kNagleTimer ||
                        pending >= EffectiveCorkLimit();
  if (!nagle_ok) {
    ++stats_.nagle_holds;
    ArmNagleTimer();
    return false;
  }
  if (config_.autocork && reason != PushReason::kTxCompletion &&
      host_->nic().tx_in_flight() > 0) {
    ++stats_.autocork_holds;
    hold_for_completion_ = true;
    return false;
  }
  return true;
}

std::vector<TcpEndpoint::PlannedPacket> TcpEndpoint::PlanPush(PushReason reason) {
  std::vector<PlannedPacket> packets;
  if (dead_) {
    return packets;  // Work submitted before Shutdown() plans nothing.
  }

  // SACK hole repair comes before new data: retransmit lost scoreboard
  // entries, gated on the RFC 6675 pipe. The first repair is exempt (the
  // rescue retransmission) so the head hole always moves even when the
  // pipe estimate is pessimistic; repairs stay ack-clocked because each
  // PlanPush runs from one ack or timer.
  if (config_.features.sack && lost_bytes_ > 0) {
    const uint64_t window = std::min(peer_rwnd_, cc_->window_bytes());
    bool first_repair = true;
    for (auto& [start, entry] : scoreboard_) {
      if (lost_bytes_ == 0) {
        break;
      }
      if (!entry.lost) {
        continue;
      }
      const uint64_t len = entry.end - start;
      if (!first_repair && PipeBytes() + len > window) {
        break;
      }
      first_repair = false;
      ++stats_.sack_retransmits;
      timed_end_.reset();  // Karn: no timed sample across a retransmission.
      // RecordSent (inside BuildPacketFor) clears entry.lost and re-stamps
      // its send time, so the pipe re-counts it and RACK can condemn a
      // lost retransmission again.
      packets.push_back(BuildPacketFor(start, len, /*is_retransmit=*/true));
    }
    if (!packets.empty()) {
      ArmRtoTimer();
    }
  }

  while (true) {
    const uint64_t pending = sndq_.tail_offset() - snd_nxt_;
    if (pending == 0) {
      CancelTimer(nagle_timer_);
      break;
    }
    const uint64_t window = std::min(peer_rwnd_, cc_->window_bytes());
    // With a scoreboard, sacked/lost bytes no longer occupy the pipe, so
    // recovery keeps the link filled instead of stalling on in-flight
    // accounting that counts delivered-but-unacked data.
    const uint64_t in_flight =
        config_.features.sack ? PipeBytes() : snd_nxt_ - sndq_.head_offset();
    const uint64_t window_avail = window > in_flight ? window - in_flight : 0;
    const uint64_t usable = std::min(pending, window_avail);
    if (usable == 0) {
      break;  // Window-limited; persist arming happens below.
    }
    // Sender-side silly-window avoidance (RFC 1122): a window-clipped
    // sub-MSS send is worthwhile only when it is at least half the largest
    // window the peer ever offered (handles peers whose whole buffer is
    // smaller than the MSS).
    const uint64_t sws_threshold =
        std::max<uint64_t>(1, std::min<uint64_t>(config_.mss, peer_rwnd_max_ / 2));
    uint64_t take = 0;
    if (usable >= config_.mss) {
      const uint64_t full = usable - usable % config_.mss;
      const uint64_t cap = config_.tso ? config_.tso_max_bytes : config_.mss;
      take = std::min<uint64_t>(full, cap);
      // Include the sub-MSS tail in this (TSO) segment when it is the end
      // of the buffer and would be sendable on its own — what
      // tcp_write_xmit does rather than leaving a one-packet remainder.
      if (take == full && usable == pending && usable - full > 0 && usable <= cap &&
          MaySendSmallNow(pending, reason)) {
        take = usable;
      }
    } else if (pending == usable && MaySendSmallNow(pending, reason)) {
      take = usable;
    } else if (usable < pending && usable >= sws_threshold &&
               MaySendSmallNow(usable, reason)) {
      take = usable;  // Window-clipped but above the SWS threshold.
    } else {
      break;  // Small tail held (Nagle / auto-cork) or window-clipped tail.
    }
    packets.push_back(BuildDataPacket(take));
  }

  // Persist arming: data pending, nothing in flight, nothing sendable. A
  // window update would normally retrigger us, but updates are unreliable
  // pure acks; probe so a lost one cannot deadlock the connection.
  if (packets.empty() && sndq_.tail_offset() > snd_nxt_ &&
      snd_nxt_ == sndq_.head_offset() &&
      std::min(peer_rwnd_, cc_->window_bytes()) < config_.mss) {
    ArmPersistTimer();
  }

  if (packets.empty()) {
    const bool ack_due =
        ((reason == PushReason::kDelackTimer || reason == PushReason::kImmediateAck) &&
         rcv_nxt_ > rcv_wup_) ||
        reason == PushReason::kDupAck;
    const bool window_update = reason == PushReason::kWindow;
    const bool exchange_due =
        reason == PushReason::kExchangeTimer &&
        (force_exchange_ || (config_.e2e_exchange_interval > Duration::Zero() &&
                             sim_->Now() - last_exchange_sent_ >= config_.e2e_exchange_interval));
    if (ack_due || window_update || exchange_due) {
      packets.push_back(BuildPureAck(exchange_due));
    }
  }
  return packets;
}

void TcpEndpoint::SubmitPush(CpuCore* core, PushReason reason) {
  auto planned = std::make_shared<std::vector<PlannedPacket>>();
  core->Submit(
      [this, reason, planned]() -> Duration {
        *planned = PlanPush(reason);
        Duration cost;
        for (const PlannedPacket& p : *planned) {
          cost += p.cost;
        }
        if (!planned->empty()) {
          cost += costs_->doorbell;
        }
        return cost;
      },
      [this, planned] {
        for (PlannedPacket& p : *planned) {
          host_->nic().Transmit(std::move(p.packet));
        }
        planned->clear();
      });
}

void TcpEndpoint::StampOutgoing(TcpSegment& seg, bool force_exchange) {
  seg.conn_id = conn_id_;
  seg.from_a = is_a_;
  seg.flags |= kFlagAck;
  seg.ack = WrapSeq(rcv_nxt_);
  // Never renege: the advertised right edge (ack + window) must not move
  // left even when SWS avoidance clamps the raw window to zero.
  uint64_t window = AdvertisedWindow();
  if (rcv_nxt_ + window < adv_right_edge_) {
    window = adv_right_edge_ - rcv_nxt_;
  } else {
    adv_right_edge_ = rcv_nxt_ + window;
  }
  seg.window = static_cast<uint32_t>(std::min<uint64_t>(window, UINT32_MAX));
  last_advertised_window_ = seg.window;
  if (config_.cc.ecn) {
    if (ece_echo_pending_) {
      seg.flags |= kFlagEce;
      ++stats_.ece_sent;
      if (config_.cc.algorithm == CcAlgorithm::kDctcp) {
        ece_echo_pending_ = false;  // Per-ack echo; classic ECN stays
                                    // latched until the peer's CWR.
      }
    }
    if (cwr_pending_) {
      seg.flags |= kFlagCwr;
      ++stats_.cwr_sent;
      cwr_pending_ = false;
    }
  }
  if (rcv_nxt_ > rcv_wup_ && seg.len > 0) {
    ++stats_.acks_piggybacked;
  }
  OnAckSent(rcv_nxt_);
  const Duration interval = config_.e2e_exchange_interval;
  bool attach_exchange =
      force_exchange || force_exchange_ ||
      (interval > Duration::Zero() && sim_->Now() - last_exchange_sent_ >= interval);
  if (config_.features.timestamps || config_.features.sack) {
    // Timestamps, SACK blocks, and the exchange payload compete for the
    // 40-byte option space; the arbiter decides what this segment carries
    // and the shed counters record what it could not.
    std::vector<SackBlock> blocks = BuildSackBlocks();
    OptionDemand demand;
    demand.timestamps = config_.features.timestamps;
    demand.sack_blocks = blocks.size();
    demand.exchange_due = attach_exchange;
    // A forced (on-demand / pure-ack fallback) exchange, or one already a
    // full extra interval late, is overdue: it may evict timestamps.
    demand.exchange_overdue =
        force_exchange || force_exchange_ ||
        (interval > Duration::Zero() && sim_->Now() - last_exchange_sent_ >= 2 * interval);
    demand.exchange_size =
        2 + (hint_tracker_ != nullptr ? kWirePayloadMaxSize : kWirePayloadBaseSize);
    const OptionPlan plan = ArbitrateOptions(demand);
    if (plan.timestamps) {
      TsOption ts;
      ts.tsval = TsClockNow();
      ts.tsecr = ts_recent_valid_ ? ts_recent_ : 0;
      seg.ts = ts;
    }
    blocks.resize(plan.sack_blocks);
    stats_.sack_blocks_sent += plan.sack_blocks;
    seg.sack = std::move(blocks);
    stats_.sack_blocks_trimmed += plan.sack_blocks_trimmed;
    if (plan.exchange_deferred) {
      ++stats_.exchange_deferrals;
    }
    if (plan.timestamps_omitted) {
      ++stats_.ts_omitted;
    }
    attach_exchange = plan.exchange;
  }
  if (attach_exchange) {
    seg.e2e_option = estimator_.BuildLocalPayload(queues_, hint_tracker_, sim_->Now());
    last_exchange_sent_ = sim_->Now();
    force_exchange_ = false;
    ++stats_.exchanges_sent;
    if (TraceRecorder* tr = TraceIf(TraceCategory::kEstimator)) {
      TraceEvent e;
      e.time = sim_->Now();
      e.category = TraceCategory::kEstimator;
      e.name = "exchange_sent";
      e.track = EndpointTrack(tr, conn_id_, is_a_);
      e.k1 = "has_hint";
      e.v1 = seg.e2e_option->hint.has_value() ? 1.0 : 0.0;
      tr->Record(e);
    }
  }
}

TcpEndpoint::PlannedPacket TcpEndpoint::BuildPacketFor(uint64_t start, uint64_t take,
                                                       bool is_retransmit) {
  assert(take > 0);
  std::vector<BoundaryEntry> bounds = sndq_.BoundariesIn(start, start + take);

  Packet packet;
  packet.id = next_packet_id_++;
  packet.wire_bytes = take + kWireHeaderBytes;
  packet.dst_host = peer_host_;
  packet.src_host = local_host_;

  auto make_segment = [&](uint64_t seg_start, uint64_t seg_len) {
    auto seg = std::make_shared<TcpSegment>();
    seg->seq = WrapSeq(seg_start);
    seg->len = static_cast<uint32_t>(seg_len);
    seg->is_retransmit = is_retransmit;
    for (const BoundaryEntry& b : bounds) {
      if (b.end_offset > seg_start && b.end_offset <= seg_start + seg_len) {
        seg->boundaries.push_back(
            TcpSegment::Boundary{static_cast<uint32_t>(b.end_offset - seg_start), b.record});
        seg->flags |= kFlagPsh;
      }
    }
    return seg;
  };

  // Note: when the first slice attaches the e2e option it refreshes
  // last_exchange_sent_, which automatically suppresses the option on the
  // remaining slices of this super-segment.
  auto stamp = [&](TcpSegment& seg) { StampOutgoing(seg, false); };

  if (take <= config_.mss) {
    auto seg = make_segment(start, take);
    if (start + take == sndq_.tail_offset()) {
      seg->flags |= kFlagPsh;
    }
    stamp(*seg);
    RecordSent(start, start + take, is_retransmit);
    packet.payload = std::move(seg);
  } else {
    // TSO super-segment: the stack pays one TX cost; the NIC emits the
    // MTU-sized slices built here.
    packet.slices.reserve((take + config_.mss - 1) / config_.mss);
    for (uint64_t off = 0; off < take; off += config_.mss) {
      const uint64_t slice_len = std::min<uint64_t>(config_.mss, take - off);
      Packet slice;
      slice.id = next_packet_id_++;
      slice.wire_bytes = slice_len + kWireHeaderBytes;
      slice.dst_host = peer_host_;
      slice.src_host = local_host_;
      auto seg = make_segment(start + off, slice_len);
      if (off + slice_len == take && start + take == sndq_.tail_offset()) {
        seg->flags |= kFlagPsh;
      }
      stamp(*seg);
      RecordSent(start + off, start + off + slice_len, is_retransmit);
      slice.payload = std::move(seg);
      packet.slices.push_back(std::move(slice));
    }
  }

  ++stats_.data_segments_sent;
  stats_.wire_packets_sent += packet.IsSuperSegment() ? packet.slices.size() : 1;
  stats_.bytes_sent += take;
  if (is_retransmit) {
    ++stats_.retransmits;
  }

  PlannedPacket planned;
  planned.packet = std::move(packet);
  planned.cost = costs_->tx_per_segment + costs_->tx_per_byte * static_cast<int64_t>(take);
  return planned;
}

TcpEndpoint::PlannedPacket TcpEndpoint::BuildDataPacket(uint64_t take) {
  const uint64_t start = snd_nxt_;
  // After an RTO rewind the normal send path re-covers old sequence space;
  // those segments are retransmissions (counted as such, never RTT-timed).
  const bool is_retransmit = in_recovery_ && start < recovery_point_;
  PlannedPacket planned = BuildPacketFor(start, take, is_retransmit);
  snd_nxt_ += take;
  // With timestamps on, every ack carries a Karn-safe sample (tsecr); the
  // one-timed-segment machinery is redundant.
  if (!is_retransmit && !timed_end_.has_value() && !config_.features.timestamps) {
    timed_end_ = snd_nxt_;
    timed_sent_at_ = sim_->Now();
  }
  ArmRtoTimer();
  return planned;
}

TcpEndpoint::PlannedPacket TcpEndpoint::BuildRetransmit() {
  const uint64_t start = sndq_.head_offset();
  // Exactly one MSS — the segment at the head is the one hole the ack
  // stream has exposed (RFC 6582 retransmits one segment per event).
  // Anything larger re-sends data the receiver has already stashed, and
  // each such duplicate comes back as a duplicate ack: a burst of them
  // re-trips the dup-ack threshold and the connection locks into a
  // self-sustaining spurious-retransmit loop.
  const uint64_t take = std::min<uint64_t>(config_.mss, snd_nxt_ - start);
  return BuildPacketFor(start, take, /*is_retransmit=*/true);
}

TcpEndpoint::PlannedPacket TcpEndpoint::BuildPureAck(bool force_exchange) {
  auto seg = std::make_shared<TcpSegment>();
  seg->seq = WrapSeq(snd_nxt_);
  seg->len = 0;
  StampOutgoing(*seg, force_exchange);
  Packet packet;
  packet.id = next_packet_id_++;
  packet.wire_bytes = kWireHeaderBytes;
  packet.dst_host = peer_host_;
  packet.src_host = local_host_;
  packet.payload = std::move(seg);
  ++stats_.pure_acks_sent;
  PlannedPacket planned;
  planned.packet = std::move(packet);
  planned.cost = costs_->pure_ack_tx;
  return planned;
}

void TcpEndpoint::OnTxCompletions(size_t n) {
  (void)n;
  if (dead_) {
    return;
  }
  if (hold_for_completion_) {
    hold_for_completion_ = false;
    SubmitPush(&host_->softirq_core(), PushReason::kTxCompletion);
  }
}

// ---------------------------------------------------------------------------
// Receive path.
// ---------------------------------------------------------------------------

void TcpEndpoint::HandleSegment(const TcpSegment& seg, bool ecn_ce) {
  if (dead_) {
    return;  // Late segment for a torn-down incarnation: silently dropped.
  }
  ++stats_.segments_received;
  last_rx_ = sim_->Now();
  keepalive_unanswered_ = 0;  // Any arrival proves the peer is alive.
  if (config_.features.timestamps && seg.ts.has_value()) {
    // RFC 7323 §4.3 ts_recent update: take the TSval only from a segment
    // that starts at or before our last-sent ack, so a delayed ack echoes
    // the *earliest* unacked segment and RTTM stays honest.
    const uint64_t start = UnwrapSeq(seg.seq, rcv_nxt_);
    if (start <= rcv_wup_ &&
        (!ts_recent_valid_ ||
         static_cast<int32_t>(seg.ts->tsval - ts_recent_) >= 0)) {
      ts_recent_ = seg.ts->tsval;
      ts_recent_valid_ = true;
    }
  }
  if (config_.cc.ecn && (seg.flags & kFlagCwr) != 0) {
    ++stats_.cwr_received;
    if (config_.cc.algorithm != CcAlgorithm::kDctcp) {
      // RFC 3168 §6.1.3: the peer reduced its window; stop echoing ECE.
      // (DCTCP never latches, so there is nothing to clear.)
      ece_echo_pending_ = false;
    }
  }
  if (seg.e2e_option.has_value()) {
    ++stats_.exchanges_received;
    auto ingest = [&](const WirePayload& payload) {
      estimator_.OnRemotePayload(payload, queues_, hint_tracker_, sim_->Now());
      if (TraceRecorder* tr = TraceIf(TraceCategory::kEstimator)) {
        TraceEvent e;
        e.time = sim_->Now();
        e.category = TraceCategory::kEstimator;
        e.name = "exchange_rx";
        e.track = EndpointTrack(tr, conn_id_, is_a_);
        e.k1 = "verdict";
        e.v1 = static_cast<double>(estimator_.last_verdict());
        e.k2 = "has_estimate";
        e.v2 = estimator_.has_estimate() ? 1.0 : 0.0;
        if (estimator_.has_estimate()) {
          e.k3 = "latency_us";
          e.v3 = static_cast<double>(estimator_.estimate().latency->ToMicros());
        }
        tr->Record(e);
      }
      if (estimate_cb_) {
        estimate_cb_(estimator_);
      }
    };
    if (metadata_filter_) {
      for (const WirePayload& payload : metadata_filter_(*seg.e2e_option)) {
        ingest(payload);
      }
    } else {
      ingest(*seg.e2e_option);
    }
  }
  if ((seg.flags & kFlagAck) != 0) {
    ProcessAck(seg);
  }
  if (seg.len > 0) {
    ProcessData(seg, ecn_ce);
  } else if (config_.keepalive.enabled && SeqBefore(seg.seq, WrapSeq(rcv_nxt_))) {
    // A zero-length segment below the window is a keepalive probe (seq =
    // snd_nxt - 1): answer with a duplicate ack so the prober's liveness
    // clock resets. Wire-space comparison, not unwrapped: a peer that has
    // never sent data probes from seq -1, which only the sign-based test
    // can place below rcv_nxt = 0 — otherwise its probes go unanswered and
    // a live peer gets declared dead after R2 silence. Gated on the
    // feature so baseline runs are unchanged.
    SubmitPush(&host_->softirq_core(), PushReason::kDupAck);
  }
}

void TcpEndpoint::ProcessAck(const TcpSegment& seg) {
  const uint64_t una = sndq_.head_offset();
  uint64_t ack_off = UnwrapSeq(seg.ack, una);
  if (ack_off > snd_nxt_) {
    ack_off = snd_nxt_;  // Bogus/futuristic ack; clamp.
  }
  const uint64_t prev_rwnd = peer_rwnd_;
  peer_rwnd_ = seg.window;
  peer_rwnd_max_ = std::max<uint64_t>(peer_rwnd_max_, seg.window);
  if (peer_rwnd_ >= config_.mss) {
    persist_backoff_shift_ = 0;  // Window reopened; probe pacing resets.
  }
  // SACK blocks first: they refine the scoreboard the loss detector and
  // the pipe both reason over, whatever the cumulative ack does.
  const bool newly_sacked = ApplySackBlocks(seg, una);
  // Any congestion reaction during this ack (ECN echo, fast retransmit, a
  // DCTCP window rollover) is announced to the peer with CWR, which is what
  // Linux does on every cwnd-reduction event when ECN is negotiated.
  const uint64_t decreases_before = cc_->decrease_events();
  if (config_.cc.ecn && (seg.flags & kFlagEce) != 0) {
    ++stats_.ece_received;
    // Before OnAck, with the same byte count (interface convention): DCTCP
    // attributes these bytes to its marked tally.
    cc_->OnEcnEcho(ack_off > una ? ack_off - una : 0, sim_->Now());
  }
  if (ack_off > una) {
    dup_acks_ = 0;
    tlp_out_ = false;         // Forward progress starts a fresh flight.
    consecutive_rtos_ = 0;    // R2 accounting resets on progress.
    if (config_.features.sack) {
      // Trim the scoreboard below the new cumulative ack. Originals
      // delivered in order advance the RACK delivery frontier exactly like
      // sacked ones; an entry straddling the ack is split so its unacked
      // remainder keeps its delivery/loss state.
      auto it = scoreboard_.begin();
      while (it != scoreboard_.end() && it->first < ack_off) {
        const SentSeg entry = it->second;
        const uint64_t covered = std::min(entry.end, ack_off) - it->first;
        if (entry.sacked) {
          sacked_bytes_ -= covered;
        }
        if (entry.lost) {
          lost_bytes_ -= covered;
        }
        if (!entry.retransmitted && !entry.sacked) {
          if (entry.sent_at > rack_time_) {
            rack_time_ = entry.sent_at;
          }
          rack_end_ = std::max(rack_end_, entry.end);
        }
        it = scoreboard_.erase(it);
        if (entry.end > ack_off) {
          scoreboard_[ack_off] = entry;  // Remainder keeps end and flags.
          break;
        }
      }
    }
    if (in_recovery_) {
      if (ack_off >= recovery_point_) {
        in_recovery_ = false;  // Full ack: the loss event is repaired.
        rto_recovery_ = false;
        stats_.recovery_us_total +=
            static_cast<uint64_t>((sim_->Now() - recovery_started_at_).nanos() / 1000);
      } else if (!rto_recovery_ && !config_.features.sack) {
        // Partial ack (RFC 6582 §3.2): exactly one more hole is exposed at
        // the new head; retransmit it now. Recovery proceeds one hole per
        // RTT, which is what keeps burst losses from stranding the flow
        // until the RTO. (After an RTO the rewound send path is already
        // resending everything below the recovery point — an extra one-MSS
        // retransmit here would only duplicate it.)
        SubmitRetransmit();
      }
    }
    cc_->OnAck(ack_off - una, sim_->Now());
    ByteStreamQueue::Consumed consumed = sndq_.ConsumeTo(ack_off);
    int64_t syscall_units = 0;
    for (const BoundaryEntry& entry : consumed.completed) {
      syscall_units += entry.record.syscall_end ? 1 : 0;
    }
    TrackThree(QueueKind::kUnacked, -static_cast<int64_t>(consumed.bytes),
               -PacketUnits(una, ack_off), -syscall_units);
    if (timed_end_.has_value() && ack_off >= *timed_end_) {
      const Duration sample = sim_->Now() - timed_sent_at_;
      rtt_.AddSample(sample);
      cc_->OnRttSample(sample, sim_->Now());
      timed_end_.reset();
    }
    if (config_.features.timestamps && seg.ts.has_value() && seg.ts->tsecr != 0) {
      // RFC 7323 RTTM: the echoed TSval identifies the exact transmission
      // this ack answers, so the sample is valid even across retransmits
      // (where Karn's rule starves the timed-segment estimator above).
      const uint32_t delta = TsClockNow() - seg.ts->tsecr;
      if (delta < 0x7FFFFFFF) {
        const Duration sample = Duration::Micros(delta);
        rtt_.AddSample(sample);
        cc_->OnRttSample(sample, sim_->Now());
        ++stats_.rtt_ts_samples;
      }
    }
    rtt_.ResetBackoff();  // Forward progress clears timeout backoff.
    CancelTimer(rto_timer_);
    if (snd_nxt_ > ack_off) {
      ArmRtoTimer();
    }
    if (send_blocked_ && SendBufferAvailable() > 0) {
      send_blocked_ = false;
      if (writable_cb_) {
        writable_cb_();
      }
    }
  } else if (config_.features.sack) {
    // With a scoreboard, loss detection is SACK/RACK-driven (below): the
    // dup-ack counter would misfire on acks whose only news is a SACK
    // block, and the reordering window subsumes the ==3 heuristic.
  } else if (ack_off == una && snd_nxt_ > una && seg.len == 0 && seg.window <= prev_rwnd) {
    // Duplicate ack for outstanding data: fast retransmit on the third
    // (RFC 5681), once per loss event. A pure ack that GROWS the advertised
    // window is a window update (the peer's app drained its receive queue),
    // not evidence of loss — RFC 5681 requires the window to be unchanged.
    // Genuine reorder/loss dup-acks still qualify: stashed out-of-order
    // bytes consume receive buffer, so their window never grows.
    ++dup_acks_;
    if (dup_acks_ == 3 && !in_recovery_) {
      // RFC 6582: while recovery is in progress, further dup-ack bursts
      // belong to the same loss event — no second reduction.
      cc_->OnDupAckThreshold();
      in_recovery_ = true;
      rto_recovery_ = false;
      recovery_point_ = snd_nxt_;
      recovery_started_at_ = sim_->Now();
      ++stats_.recovery_events;
      SubmitRetransmit();
    } else if (dup_acks_ % 3 == 0 && in_recovery_ && !rto_recovery_) {
      // The ack stream keeps producing dup acks with no forward progress:
      // the recovery retransmission itself was lost (an incast port drops
      // bursts, and the retransmit rides into the same full queue). Resend
      // the head — without a second window reduction — or the connection
      // idles until an RTO that is centuries long on this RTT scale. One
      // MSS per three dup acks is ack-clocked and cannot burst.
      SubmitRetransmit();
    }
  }
  if (config_.features.sack && (newly_sacked || ack_off > una)) {
    DetectLosses();
  }
  if (config_.cc.ecn && cc_->decrease_events() > decreases_before) {
    cwr_pending_ = true;
  }
  // The ack may have released a Nagle hold, opened the peer window, or
  // exposed scoreboard holes to repair.
  if (snd_nxt_ < sndq_.tail_offset() || (config_.features.sack && lost_bytes_ > 0)) {
    SubmitPush(&host_->softirq_core(), PushReason::kAckAdvance);
  }
}

void TcpEndpoint::ProcessData(const TcpSegment& seg, bool ecn_ce) {
  if (config_.cc.ecn) {
    if (ecn_ce) {
      ++stats_.ce_received;
      ece_echo_pending_ = true;  // Echoed on the next outgoing ack.
    }
    if (config_.cc.algorithm == CcAlgorithm::kDctcp && ecn_ce != ce_state_) {
      // RFC 8257 §3.3: ack immediately on a CE-state change so the per-ack
      // echo stays accurate under delayed acks. kDupAck acks
      // unconditionally (the pending latch rides along in StampOutgoing).
      ce_state_ = ecn_ce;
      SubmitPush(&host_->softirq_core(), PushReason::kDupAck);
    }
  }
  const uint64_t start = UnwrapSeq(seg.seq, rcv_nxt_);
  const uint64_t end = start + seg.len;

  if (start > rcv_nxt_) {
    // Out of order: stash and send an immediate duplicate ack.
    ++stats_.ooo_segments;
    last_ooo_arrival_ = start;
    OooSegment& slot = ooo_[start];
    if (end - start > slot.len) {
      ooo_bytes_ += (end - start) - slot.len;
      slot.len = end - start;
      slot.boundaries.clear();
      for (const TcpSegment::Boundary& b : seg.boundaries) {
        slot.boundaries.push_back(BoundaryEntry{start + b.rel_end, b.record});
      }
    }
    SubmitPush(&host_->softirq_core(), PushReason::kDupAck);
    return;
  }
  if (end <= rcv_nxt_) {
    // Entirely duplicate; re-ack unconditionally — our previous ack for
    // this data may have been lost. Counted as the receiver-side signal
    // of a spurious (or ack-loss-repairing) retransmission.
    ++stats_.dup_segments_received;
    SubmitPush(&host_->softirq_core(), PushReason::kDupAck);
    return;
  }

  std::vector<BoundaryEntry> bounds;
  for (const TcpSegment::Boundary& b : seg.boundaries) {
    bounds.push_back(BoundaryEntry{start + b.rel_end, b.record});
  }
  // Quickack (RFC 5681 and Linux's heuristic): ack at once when the sender
  // is repairing a loss — a segment that fills (part of) a gap, or one
  // re-sent after a timeout. A delayed ack here would clock the peer's
  // whole recovery off our 40 ms delack timer instead of the actual RTT.
  const bool quickack = seg.is_retransmit || !ooo_.empty();
  DeliverInOrder(end, std::move(bounds));

  // Drain any out-of-order segments that became contiguous.
  while (!ooo_.empty()) {
    auto it = ooo_.begin();
    if (it->first > rcv_nxt_) {
      break;
    }
    const uint64_t seg_end = it->first + it->second.len;
    ooo_bytes_ -= it->second.len;
    if (seg_end > rcv_nxt_) {
      DeliverInOrder(seg_end, std::move(it->second.boundaries));
    }
    ooo_.erase(it);
  }

  if (quickack) {
    SubmitPush(&host_->softirq_core(), PushReason::kImmediateAck);
  } else {
    MaybeAckOnReceive();
  }
  if (readable_cb_ && !rcvq_.empty()) {
    readable_cb_();
  }
}

void TcpEndpoint::DeliverInOrder(uint64_t end_offset, std::vector<BoundaryEntry> boundaries) {
  const uint64_t old = rcv_nxt_;
  assert(end_offset > old);
  rcvq_.Append(end_offset - old);
  int64_t delivered_syscalls = 0;
  for (BoundaryEntry& b : boundaries) {
    if (b.end_offset > old && b.end_offset <= end_offset) {
      if (b.record.syscall_end) {
        unacked_rx_boundaries_.push_back(b.end_offset);
        ++delivered_syscalls;
      }
      rcvq_.AddBoundary(b.end_offset, std::move(b.record));
    }
  }
  const int64_t bytes = static_cast<int64_t>(end_offset - old);
  const int64_t pkts = PacketUnits(old, end_offset);
  TrackThree(QueueKind::kUnread, bytes, pkts, delivered_syscalls);
  TrackThree(QueueKind::kAckDelay, bytes, pkts, delivered_syscalls);
  rcv_nxt_ = end_offset;
  stats_.bytes_received += end_offset - old;
}

void TcpEndpoint::MaybeAckOnReceive() {
  const uint64_t unacked_rx = rcv_nxt_ - rcv_wup_;
  if (unacked_rx >= static_cast<uint64_t>(config_.delack_segments) * config_.mss) {
    SubmitPush(&host_->softirq_core(), PushReason::kImmediateAck);
  } else if (unacked_rx > 0) {
    ArmDelackTimer();
  }
}

void TcpEndpoint::OnAckSent(uint64_t acked_to) {
  if (acked_to <= rcv_wup_) {
    return;
  }
  const int64_t bytes = static_cast<int64_t>(acked_to - rcv_wup_);
  const int64_t pkts = PacketUnits(rcv_wup_, acked_to);
  int64_t boundaries = 0;
  while (!unacked_rx_boundaries_.empty() && unacked_rx_boundaries_.front() <= acked_to) {
    unacked_rx_boundaries_.pop_front();
    ++boundaries;
  }
  TrackThree(QueueKind::kAckDelay, -bytes, -pkts, -boundaries);
  rcv_wup_ = acked_to;
  CancelTimer(delack_timer_);
}

// ---------------------------------------------------------------------------
// Timers.
// ---------------------------------------------------------------------------

void TcpEndpoint::CancelTimer(EventId& id) {
  if (id != kInvalidEventId) {
    sim_->Cancel(id);
    id = kInvalidEventId;
  }
}

void TcpEndpoint::ArmDelackTimer() {
  if (delack_timer_ != kInvalidEventId) {
    return;
  }
  delack_timer_ = sim_->Schedule(config_.delack_timeout, [this] {
    delack_timer_ = kInvalidEventId;
    ++stats_.delack_timer_fires;
    SubmitPush(&host_->softirq_core(), PushReason::kDelackTimer);
  });
}

void TcpEndpoint::ArmNagleTimer() {
  if (nagle_timer_ != kInvalidEventId) {
    return;
  }
  nagle_timer_ = sim_->Schedule(config_.nagle_timeout, [this] {
    nagle_timer_ = kInvalidEventId;
    ++stats_.nagle_timer_fires;
    SubmitPush(&host_->softirq_core(), PushReason::kNagleTimer);
  });
}

void TcpEndpoint::ArmPersistTimer() {
  if (persist_timer_ != kInvalidEventId) {
    return;
  }
  // Persist probes carry their own exponential backoff (RFC 1122 wants the
  // interval bounded, not the instantaneous RTO): each unanswered probe
  // doubles the interval up to persist_max_interval; a reopened window
  // resets it (ProcessAck).
  Duration interval = rtt_.rto();
  for (int i = 0; i < persist_backoff_shift_ && interval < config_.persist_max_interval; ++i) {
    interval = interval * 2;
  }
  interval = std::min(interval, config_.persist_max_interval);
  persist_timer_ = sim_->Schedule(interval, [this] {
    persist_timer_ = kInvalidEventId;
    if (dead_) {
      return;
    }
    const uint64_t pending = sndq_.tail_offset() - snd_nxt_;
    const uint64_t in_flight = snd_nxt_ - sndq_.head_offset();
    if (pending == 0 || in_flight > 0 || peer_rwnd_ >= config_.mss) {
      return;  // Recovered in the meantime; normal paths take over.
    }
    ++stats_.persist_probes;
    if (persist_backoff_shift_ < 24) {
      ++persist_backoff_shift_;
      ++stats_.persist_backoffs;
    }
    // Window probe: one byte past the advertised window. The receiver's
    // (possibly duplicate) ack carries its current window. Both halves of
    // the CPU work may run after CloseEndpoint parks this endpoint in the
    // graveyard (already-queued work items keep running), so each re-checks
    // dead_ before touching send state or the NIC.
    auto planned = std::make_shared<std::optional<PlannedPacket>>();
    host_->softirq_core().Submit(
        [this, planned]() -> Duration {
          if (dead_) {
            return Duration::Zero();
          }
          *planned = BuildDataPacket(1);
          return (*planned)->cost + costs_->doorbell;
        },
        [this, planned] {
          if (planned->has_value() && !dead_) {
            host_->nic().Transmit(std::move((*planned)->packet));
          }
        });
    ArmPersistTimer();  // Keep probing on the backed-off schedule.
  });
}

void TcpEndpoint::ArmRtoTimer() {
  if (rto_timer_ != kInvalidEventId) {
    return;
  }
  // RACK mode arms a tail-loss probe ahead of the RTO when the flight is
  // clean: PTO = 2*SRTT, plus the peer's worst-case delayed ack when the
  // flight is too small to trigger an immediate ack (RFC 8985 §7.3).
  Duration delay = rtt_.rto();
  bool is_tlp = false;
  if (config_.features.rack && config_.features.sack && !in_recovery_ && !tlp_out_ &&
      lost_bytes_ == 0 && rtt_.srtt().has_value()) {
    Duration pto = *rtt_.srtt() * 2;
    if (snd_nxt_ - sndq_.head_offset() < 2 * static_cast<uint64_t>(config_.mss)) {
      pto += config_.delack_timeout + Duration::Millis(2);
    }
    if (pto < delay) {
      delay = pto;
      is_tlp = true;
    }
  }
  rto_timer_ = sim_->Schedule(delay, [this, is_tlp] {
    rto_timer_ = kInvalidEventId;
    if (is_tlp) {
      OnTlpFire();
    } else {
      OnRtoFire();
    }
  });
}

void TcpEndpoint::OnTlpFire() {
  if (dead_ || snd_nxt_ == sndq_.head_offset()) {
    return;  // Everything got acked in the meantime.
  }
  tlp_out_ = true;  // One probe per flight; the next timer is a real RTO.
  ++stats_.tlp_probes;
  // RFC 8985: probe with new data when some exists and fits the window
  // (it doubles as useful transmission); otherwise re-send the tail
  // segment so its (S)ACK exposes what the scoreboard is missing.
  const uint64_t pending = sndq_.tail_offset() - snd_nxt_;
  const uint64_t window = std::min(peer_rwnd_, cc_->window_bytes());
  if (pending > 0 && PipeBytes() + std::min<uint64_t>(pending, config_.mss) <= window) {
    SubmitPush(&host_->softirq_core(), PushReason::kAckAdvance);
  } else if (!scoreboard_.empty()) {
    const auto tail = scoreboard_.rbegin();
    const uint64_t start = tail->first;
    const uint64_t len = tail->second.end - start;
    timed_end_.reset();  // Karn: the probe is a retransmission.
    auto planned = std::make_shared<std::optional<PlannedPacket>>();
    host_->softirq_core().Submit(
        [this, planned, start, len]() -> Duration {
          if (dead_ || start < sndq_.head_offset() || start + len > snd_nxt_) {
            return Duration::Zero();  // Acked while the work was queued.
          }
          *planned = BuildPacketFor(start, len, /*is_retransmit=*/true);
          return (*planned)->cost + costs_->doorbell;
        },
        [this, planned] {
          if (planned->has_value() && !dead_) {
            host_->nic().Transmit(std::move((*planned)->packet));
          }
        });
  }
  ArmRtoTimer();
}

void TcpEndpoint::OnRtoFire() {
  if (dead_ || snd_nxt_ == sndq_.head_offset()) {
    return;  // Closed, or everything got acked in the meantime.
  }
  ++stats_.rto_fires;
  rtt_.Backoff();
  cc_->OnRto();
  if (config_.cc.ecn) {
    cwr_pending_ = true;
  }
  ++consecutive_rtos_;
  if (config_.rto_give_up > 0 && consecutive_rtos_ >= config_.rto_give_up) {
    DeclareDeadPeer("rto");
    if (dead_) {
      // The dead-peer callback may close this endpoint synchronously
      // (TcpStack::CloseEndpoint -> Shutdown). Continuing would mutate a
      // zombie's scoreboard, queue CPU work for it, and re-arm the RTO
      // timer Shutdown just canceled.
      return;
    }
  }
  if (!in_recovery_) {
    recovery_started_at_ = sim_->Now();
    ++stats_.recovery_events;
  }
  in_recovery_ = true;
  rto_recovery_ = true;
  recovery_point_ = snd_nxt_;
  timed_end_.reset();  // Karn's rule: the timed range is being resent.
  if (config_.features.sack) {
    // SACK keeps what the receiver already holds: mark everything
    // outstanding and undelivered lost and let the pipe-gated planning
    // path repair hole-by-hole in slow start — no go-back-N rewind, no
    // resending sacked data.
    for (auto& [start, entry] : scoreboard_) {
      if (!entry.sacked && !entry.lost) {
        entry.lost = true;
        lost_bytes_ += entry.end - start;
      }
    }
  } else {
    // Everything in flight is suspect. Rewind the send pointer to the head
    // and let the ordinary cwnd-gated path resend the tail in slow start
    // (what pre-SACK BSD stacks do): the window doubles each RTT, so a
    // long consecutive drop run — the slow-start overshoot signature —
    // repairs in log time instead of one retransmit per timeout. Segments
    // below the recovery point go out marked as retransmissions.
    snd_nxt_ = sndq_.head_offset();
  }
  SubmitPush(&host_->softirq_core(), PushReason::kAckAdvance);
  ArmRtoTimer();
}

void TcpEndpoint::SubmitRetransmit() {
  timed_end_.reset();  // Karn's rule: no sample across a retransmission.
  auto planned = std::make_shared<std::optional<PlannedPacket>>();
  host_->softirq_core().Submit(
      [this, planned]() -> Duration {
        if (dead_ || snd_nxt_ == sndq_.head_offset()) {
          return Duration::Zero();
        }
        *planned = BuildRetransmit();
        return (*planned)->cost + costs_->doorbell;
      },
      [this, planned] {
        if (planned->has_value()) {
          host_->nic().Transmit(std::move((*planned)->packet));
        }
      });
}

// ---------------------------------------------------------------------------
// SACK scoreboard, RACK loss detection, timestamps, dead-peer machinery.
// ---------------------------------------------------------------------------

uint32_t TcpEndpoint::TsClockNow() const {
  // Microsecond clock, offset by one so a valid TSval/TSecr is never 0
  // (0 marks "no echo yet"). The +1 cancels in sender-side deltas.
  return static_cast<uint32_t>(sim_->Now().nanos() / 1000 + 1);
}

void TcpEndpoint::RecordSent(uint64_t start, uint64_t end, bool is_retransmit) {
  if (!config_.features.sack) {
    return;
  }
  auto it = scoreboard_.find(start);
  if (it != scoreboard_.end() && it->second.end == end) {
    // Retransmission of an existing entry: re-stamp its send time (so RACK
    // can condemn a lost retransmission) and return it to the pipe.
    SentSeg& entry = it->second;
    entry.sent_at = sim_->Now();
    entry.sack_floor = std::max(end, highest_sacked_);
    if (is_retransmit) {
      entry.retransmitted = true;
    }
    if (entry.lost) {
      entry.lost = false;
      lost_bytes_ -= end - start;
    }
    return;
  }
  SentSeg entry;
  entry.end = end;
  entry.sent_at = sim_->Now();
  entry.sack_floor = std::max(end, highest_sacked_);
  entry.retransmitted = is_retransmit;
  scoreboard_[start] = entry;
}

uint64_t TcpEndpoint::PipeBytes() const {
  const uint64_t outstanding = snd_nxt_ - sndq_.head_offset();
  const uint64_t delivered_or_lost = sacked_bytes_ + lost_bytes_;
  return outstanding > delivered_or_lost ? outstanding - delivered_or_lost : 0;
}

bool TcpEndpoint::ApplySackBlocks(const TcpSegment& seg, uint64_t una) {
  if (!config_.features.sack || seg.sack.empty()) {
    return false;
  }
  bool newly_sacked = false;
  for (const SackBlock& block : seg.sack) {
    const uint64_t start = UnwrapSeq(block.start, una);
    const uint64_t end = start + static_cast<uint32_t>(block.end - block.start);
    // Scoreboard entries mirror the wire segments the blocks were built
    // from, so covered entries align; anything partially covered (stale
    // block after a resegmenting retransmit) is left unsacked.
    for (auto it = scoreboard_.lower_bound(start);
         it != scoreboard_.end() && it->first < end; ++it) {
      SentSeg& entry = it->second;
      if (entry.sacked || entry.end > end) {
        continue;
      }
      entry.sacked = true;
      sacked_bytes_ += entry.end - it->first;
      highest_sacked_ = std::max(highest_sacked_, entry.end);
      if (entry.lost) {
        // The reordering window fired early; the data arrived after all.
        entry.lost = false;
        lost_bytes_ -= entry.end - it->first;
        ++stats_.spurious_loss_reverts;
      }
      if (!entry.retransmitted) {
        // A delivered original advances the RACK frontier: anything sent
        // reorder-window-earlier and still undelivered is presumed lost.
        if (entry.sent_at > rack_time_) {
          rack_time_ = entry.sent_at;
        }
        rack_end_ = std::max(rack_end_, entry.end);
      }
      newly_sacked = true;
    }
  }
  return newly_sacked;
}

Duration TcpEndpoint::RackReorderWindow() const {
  // RFC 8985's starting point: a quarter of the minimum RTT tolerates the
  // reordering the path has shown room for without stalling detection.
  if (rtt_.min_rtt().has_value()) {
    return *rtt_.min_rtt() / 4;
  }
  return Duration::Millis(1);
}

void TcpEndpoint::EnterLossRecovery() {
  if (in_recovery_) {
    return;  // Same loss event; no second window reduction (RFC 6582).
  }
  cc_->OnDupAckThreshold();
  if (config_.cc.ecn) {
    cwr_pending_ = true;
  }
  in_recovery_ = true;
  rto_recovery_ = false;
  recovery_point_ = snd_nxt_;
  recovery_started_at_ = sim_->Now();
  ++stats_.recovery_events;
}

void TcpEndpoint::DetectLosses() {
  if (!config_.features.sack || scoreboard_.empty() || rack_end_ == 0) {
    return;  // Nothing delivered yet: no evidence to reason from.
  }
  bool newly_lost = false;
  if (config_.features.rack) {
    // RACK (RFC 8985, simplified): a segment sent no later than one the
    // receiver has since delivered is lost once it has been outstanding
    // longer than the delivering RTT plus the reordering window. Segments
    // still inside the window get a timer so reordering that never
    // resolves is caught without another ack.
    const Duration timeout = rtt_.srtt().value_or(rtt_.rto()) + RackReorderWindow();
    const TimePoint now = sim_->Now();
    Duration min_remaining = Duration::Max();
    for (auto& [start, entry] : scoreboard_) {
      if (entry.sacked || entry.lost) {
        continue;
      }
      const bool sent_before_delivered =
          entry.sent_at < rack_time_ ||
          (entry.sent_at == rack_time_ && entry.end <= rack_end_);
      if (!sent_before_delivered) {
        continue;
      }
      const Duration waited = now - entry.sent_at;
      if (waited >= timeout) {
        entry.lost = true;
        lost_bytes_ += entry.end - start;
        ++stats_.rack_marked_lost;
        newly_lost = true;
      } else {
        min_remaining = std::min(min_remaining, timeout - waited);
      }
    }
    if (min_remaining < Duration::Max()) {
      ArmRackTimer(min_remaining);
    }
  } else {
    // SACK without RACK: the RFC 6675 dupthresh analogue — an unsacked
    // segment with three MSS of sacked data above it is lost. The floor is
    // the sack high-water mark at the segment's last (re)transmission, so a
    // lost retransmission is condemned again only by evidence that postdates
    // it (a plain `end`-based rule would also stall forever on re-lost
    // repairs, leaving the backed-off RTO as the only recourse). Evidence
    // alone is still not enough for a repair in flight — its sack cannot
    // arrive sooner than one RTT, so condemning before SRTT has elapsed
    // just duplicates the repair.
    const TimePoint now = sim_->Now();
    const Duration rexmit_guard = rtt_.srtt().value_or(rtt_.rto());
    for (auto& [start, entry] : scoreboard_) {
      if (entry.sacked || entry.lost) {
        continue;
      }
      if (entry.retransmitted && now - entry.sent_at < rexmit_guard) {
        continue;
      }
      if (entry.sack_floor + 3 * static_cast<uint64_t>(config_.mss) <= highest_sacked_) {
        entry.lost = true;
        lost_bytes_ += entry.end - start;
        newly_lost = true;
      }
    }
  }
  if (newly_lost) {
    EnterLossRecovery();
  }
}

void TcpEndpoint::ArmRackTimer(Duration delay) {
  if (rack_timer_ != kInvalidEventId) {
    return;  // The pending check re-evaluates and re-arms as needed.
  }
  rack_timer_ = sim_->Schedule(delay, [this] {
    rack_timer_ = kInvalidEventId;
    if (dead_) {
      return;
    }
    DetectLosses();
    if (lost_bytes_ > 0) {
      SubmitPush(&host_->softirq_core(), PushReason::kAckAdvance);
    }
  });
}

std::vector<SackBlock> TcpEndpoint::BuildSackBlocks() const {
  std::vector<SackBlock> blocks;
  if (!config_.features.sack || ooo_.empty()) {
    return blocks;
  }
  // Merge the stash into maximal contiguous ranges (ascending).
  std::vector<std::pair<uint64_t, uint64_t>> ranges;
  for (const auto& [start, seg] : ooo_) {
    const uint64_t end = start + seg.len;
    if (!ranges.empty() && start <= ranges.back().second) {
      ranges.back().second = std::max(ranges.back().second, end);
    } else {
      ranges.emplace_back(start, end);
    }
  }
  // RFC 2018: the block containing the most recent arrival goes first (it
  // is the one the sender has not seen yet); the rest follow in order and
  // the arbiter trims from the tail.
  size_t freshest = 0;
  for (size_t i = 0; i < ranges.size(); ++i) {
    if (last_ooo_arrival_ >= ranges[i].first && last_ooo_arrival_ < ranges[i].second) {
      freshest = i;
      break;
    }
  }
  blocks.reserve(std::min(ranges.size(), kMaxSackBlocks));
  blocks.push_back(SackBlock{WrapSeq(ranges[freshest].first), WrapSeq(ranges[freshest].second)});
  for (size_t i = 0; i < ranges.size() && blocks.size() < kMaxSackBlocks; ++i) {
    if (i == freshest) {
      continue;
    }
    blocks.push_back(SackBlock{WrapSeq(ranges[i].first), WrapSeq(ranges[i].second)});
  }
  return blocks;
}

void TcpEndpoint::ArmKeepaliveTimer(Duration delay) {
  if (keepalive_timer_ != kInvalidEventId) {
    return;
  }
  keepalive_timer_ = sim_->Schedule(delay, [this] {
    keepalive_timer_ = kInvalidEventId;
    OnKeepaliveFire();
  });
}

void TcpEndpoint::OnKeepaliveFire() {
  if (dead_ || dead_peer_declared_) {
    return;
  }
  const Duration idle_for = sim_->Now() - last_rx_;
  if (idle_for < config_.keepalive.idle) {
    ArmKeepaliveTimer(config_.keepalive.idle - idle_for);
    return;
  }
  if (keepalive_unanswered_ >= config_.keepalive.probes) {
    DeclareDeadPeer("keepalive");  // R2: the probe budget ran out.
    return;
  }
  if (snd_nxt_ > sndq_.head_offset()) {
    // Data in flight: the RTO/R2 machinery owns liveness; check back.
    ArmKeepaliveTimer(config_.keepalive.interval);
    return;
  }
  ++keepalive_unanswered_;
  ++stats_.keepalive_probes;
  // Probe below the window (seq = snd_nxt - 1, zero length): the peer
  // answers any such segment with a duplicate ack. With nothing ever sent
  // the subtraction underflows and WrapSeq lands on 0xFFFFFFFF — still one
  // below the peer's rcv_nxt in wire space, so pure receivers can probe too.
  const uint64_t probe_seq = snd_nxt_ - 1;
  // Like the persist probe, the queued CPU work may outlive the endpoint's
  // close (graveyard): re-check dead_ in both halves.
  auto planned = std::make_shared<std::optional<PlannedPacket>>();
  host_->softirq_core().Submit(
      [this, planned, probe_seq]() -> Duration {
        if (dead_) {
          return Duration::Zero();
        }
        auto seg = std::make_shared<TcpSegment>();
        seg->seq = WrapSeq(probe_seq);
        seg->len = 0;
        StampOutgoing(*seg, false);
        Packet packet;
        packet.id = next_packet_id_++;
        packet.wire_bytes = kWireHeaderBytes;
        packet.dst_host = peer_host_;
        packet.src_host = local_host_;
        packet.payload = std::move(seg);
        ++stats_.pure_acks_sent;
        PlannedPacket p;
        p.packet = std::move(packet);
        p.cost = costs_->pure_ack_tx;
        *planned = std::move(p);
        return (*planned)->cost + costs_->doorbell;
      },
      [this, planned] {
        if (planned->has_value() && !dead_) {
          host_->nic().Transmit(std::move((*planned)->packet));
        }
      });
  ArmKeepaliveTimer(config_.keepalive.interval);
}

void TcpEndpoint::DeclareDeadPeer(const char* reason) {
  if (dead_peer_declared_) {
    return;
  }
  dead_peer_declared_ = true;
  ++stats_.dead_peer_declarations;
  if (TraceRecorder* tr = TraceIf(TraceCategory::kEstimator)) {
    TraceEvent e;
    e.time = sim_->Now();
    e.category = TraceCategory::kEstimator;
    e.name = "dead_peer";
    e.track = EndpointTrack(tr, conn_id_, is_a_);
    tr->Record(e);
  }
  if (dead_peer_cb_) {
    dead_peer_cb_(reason);
  }
}

void TcpEndpoint::ScheduleExchangeTimer() {
  exchange_timer_ = sim_->Schedule(config_.e2e_exchange_interval, [this] {
    if (sim_->Now() - last_exchange_sent_ >= config_.e2e_exchange_interval) {
      SubmitPush(&host_->softirq_core(), PushReason::kExchangeTimer);
    }
    ScheduleExchangeTimer();
  });
}

// ---------------------------------------------------------------------------
// Helpers.
// ---------------------------------------------------------------------------

uint64_t TcpEndpoint::AdvertisedWindow() const {
  const uint64_t used = rcvq_.size_bytes() + ooo_bytes_;
  const uint64_t free = config_.rcvbuf_bytes > used ? config_.rcvbuf_bytes - used : 0;
  // Receiver-side silly-window avoidance (RFC 1122): advertise zero until a
  // meaningful window (min(MSS, buffer/2)) is available, so the sender
  // never dribbles tiny segments into a tiny window.
  const uint64_t sws = std::min<uint64_t>(config_.mss, config_.rcvbuf_bytes / 2);
  return free >= sws ? free : 0;
}

int64_t TcpEndpoint::PacketUnits(uint64_t from, uint64_t to) const {
  return static_cast<int64_t>(to / config_.mss) - static_cast<int64_t>(from / config_.mss);
}

void TcpEndpoint::TrackThree(QueueKind kind, int64_t bytes, int64_t packets, int64_t syscalls) {
  const TimePoint now = sim_->Now();
  queues_.Track(kind, UnitMode::kBytes, now, bytes);
  queues_.Track(kind, UnitMode::kPackets, now, packets);
  queues_.Track(kind, UnitMode::kSyscalls, now, syscalls);
  if (TraceRecorder* tr = TraceIf(TraceCategory::kQueue)) {
    // One event per Track call (all three unit modes share it): the byte
    // delta plus the queue's new size in bytes, on this endpoint's track.
    TraceEvent e;
    e.time = now;
    e.category = TraceCategory::kQueue;
    e.name = QueueKindName(kind);
    e.track = EndpointTrack(tr, conn_id_, is_a_);
    e.k1 = "delta_bytes";
    e.v1 = static_cast<double>(bytes);
    e.k2 = "size_bytes";
    e.v2 = static_cast<double>(queues_.Get(kind, UnitMode::kBytes).size());
    e.k3 = "size_syscalls";
    e.v3 = static_cast<double>(queues_.Get(kind, UnitMode::kSyscalls).size());
    tr->Record(e);
  }
}

}  // namespace e2e
