// The TCP segment payload carried inside a net::Packet.

#ifndef SRC_TCP_SEGMENT_H_
#define SRC_TCP_SEGMENT_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "src/core/wire_format.h"
#include "src/net/packet.h"
#include "src/tcp/byte_stream.h"

namespace e2e {

enum TcpFlags : uint16_t {
  kFlagAck = 1 << 0,
  kFlagPsh = 1 << 1,
  // ECN signalling (RFC 3168 §6.1): the receiver echoes a CE-marked arrival
  // with ECE; the sender acknowledges reducing its window with CWR.
  kFlagEce = 1 << 2,
  kFlagCwr = 1 << 3,
};

// RFC 7323 timestamps option: TSval is the sender's microsecond clock
// (mod 2^32), TSecr echoes the peer's most recent in-window TSval.
struct TsOption {
  uint32_t tsval = 0;
  uint32_t tsecr = 0;

  bool operator==(const TsOption&) const = default;
};

// One RFC 2018 SACK block: wire (wrapped) sequence range [start, end) the
// receiver holds above the cumulative ack.
struct SackBlock {
  uint32_t start = 0;
  uint32_t end = 0;

  bool operator==(const SackBlock&) const = default;
};

struct TcpSegment : public PacketPayload {
  // Connection demultiplexing key (one per endpoint pair).
  uint64_t conn_id = 0;
  // Direction: true when sent by the endpoint created first ("A side").
  bool from_a = false;

  uint32_t seq = 0;    // Wire (wrapped) sequence of the first payload byte.
  uint32_t ack = 0;    // Cumulative ack (valid when kFlagAck set).
  uint32_t len = 0;    // Payload bytes.
  uint16_t flags = 0;
  uint32_t window = 0;  // Advertised receive window in bytes.

  // Message boundaries within (seq, seq+len], relative to `seq` (1..len).
  // Models PSH-marked send() boundaries; carries app records to the peer.
  struct Boundary {
    uint32_t rel_end = 0;  // Boundary at seq + rel_end (exclusive end).
    MessageRecord record;
  };
  std::vector<Boundary> boundaries;

  // The end-to-end metadata exchange option (paper §3.2/§5), when attached.
  std::optional<WirePayload> e2e_option;

  // RFC 7323 timestamps, when the feature is on and the option-space
  // arbiter admitted them (see ArbitrateOptions in segment_codec.h).
  std::optional<TsOption> ts;

  // RFC 2018 SACK blocks (first = the block containing the most recently
  // received segment, per the RFC's generation rule), possibly trimmed by
  // the option-space arbiter.
  std::vector<SackBlock> sack;

  bool is_retransmit = false;

  bool HasPayload() const { return len > 0; }
};

}  // namespace e2e

#endif  // SRC_TCP_SEGMENT_H_
