// Byte-level encoding of TCP segment headers, including the end-to-end
// metadata exchange as a real TCP option (paper §5, "Metadata Exchange"),
// RFC 7323 timestamps, and RFC 2018 SACK blocks.
//
// The simulator moves segments as objects, but the wire format matters for
// the paper's feasibility argument: a standard TCP header has at most 40
// bytes of option space (data offset is 4 bits: 15*4 - 20). The base
// exchange payload — 2 header bytes + three 3-tuples of 4-byte counters —
// is 38 bytes; wrapped in a kind/length TLV it lands at exactly 40 bytes.
// It therefore fits ONLY on a segment carrying no other option: once
// timestamps (12 bytes with alignment NOPs) and SACK blocks (4 + 8n bytes)
// are negotiated, the three demands compete for the same 40 bytes and the
// exchange no longer "just fits". ArbitrateOptions below implements the
// graceful-degradation policy: SACK blocks are trimmed first, then the
// exchange is deferred to a later segment (lowering the effective exchange
// frequency), and only an overdue exchange may evict timestamps for one
// segment. Every shed decision is counted so the estimator-health layer
// can see exchange starvation coming. A hint-bearing payload (52 bytes
// with TLV) never fits; a real deployment would use extended options. The
// codec enforces the limit unless explicitly told to model an
// oversize/experimental encoding.

#ifndef SRC_TCP_SEGMENT_CODEC_H_
#define SRC_TCP_SEGMENT_CODEC_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "src/tcp/segment.h"

namespace e2e {

// Experimental option kind (RFC 4727 reserves 253 for experiments).
inline constexpr uint8_t kE2eOptionKind = 253;
// IANA-assigned kinds for the standard options we model.
inline constexpr uint8_t kTcpOptNop = 1;
inline constexpr uint8_t kTcpOptSack = 5;
inline constexpr uint8_t kTcpOptTimestamp = 8;
inline constexpr size_t kTcpBaseHeaderBytes = 20;
inline constexpr size_t kTcpMaxOptionBytes = 40;

// Wire cost of the timestamps option: 2 alignment NOPs + kind + len +
// TSval + TSecr (the classic 12-byte layout every real stack emits).
inline constexpr size_t kTimestampOptionBytes = 12;

// Wire cost of n SACK blocks: 2 alignment NOPs + kind + len + 8n.
inline constexpr size_t SackOptionBytes(size_t n) { return n == 0 ? 0 : 4 + 8 * n; }

// Most blocks that ever fit: 4 alone, 3 alongside timestamps.
inline constexpr size_t kMaxSackBlocks = 4;

struct EncodedSegment {
  std::vector<uint8_t> header;  // Base header + padded options.
  uint32_t payload_len = 0;     // Virtual payload bytes (not materialized).
};

// Encodes the header of `seg`. Fails (nullopt) when the combined options
// would exceed the 40-byte option space and `allow_oversize` is false.
// Callers that respect ArbitrateOptions never hit the limit.
std::optional<EncodedSegment> EncodeSegmentHeader(const TcpSegment& seg,
                                                  bool allow_oversize = false);

// Decodes a header produced by EncodeSegmentHeader. Message-boundary
// records are simulator-side metadata and are not round-tripped. Returns
// nullopt on malformed input.
std::optional<TcpSegment> DecodeSegmentHeader(const uint8_t* data, size_t len,
                                              uint32_t payload_len);

// Size the e2e option (TLV included) would occupy for a given payload.
size_t E2eOptionSize(const WirePayload& payload);

// ---------------------------------------------------------------------------
// Option-space arbitration.
// ---------------------------------------------------------------------------

// What one outgoing segment would like to carry.
struct OptionDemand {
  bool timestamps = false;
  size_t sack_blocks = 0;    // Blocks the receiver wants to advertise.
  bool exchange_due = false;  // An e2e exchange is pending.
  // Starvation guard: the pending exchange is overdue (deferred past the
  // configured slack), so it may evict timestamps for this one segment.
  bool exchange_overdue = false;
  size_t exchange_size = 0;   // E2eOptionSize of the pending payload.
};

// What the segment actually carries, plus the shed accounting.
struct OptionPlan {
  bool timestamps = false;
  size_t sack_blocks = 0;
  bool exchange = false;
  // Shed decisions made for this segment:
  size_t sack_blocks_trimmed = 0;  // Demanded blocks that did not fit.
  bool exchange_deferred = false;  // Exchange pending but pushed to later.
  bool timestamps_omitted = false;  // Timestamps evicted by an overdue exchange.

  size_t bytes_used = 0;  // Total option bytes consumed (<= 40).
};

// Sheds in a defined priority order when everything cannot fit:
//   1. timestamps are kept (smallest footprint, feeds RTT/RACK every
//      segment) — unless rule 3 fires;
//   2. SACK blocks are trimmed to the space left after timestamps and the
//      exchange (the first block carries the freshest information, so
//      trimming from the tail degrades gracefully);
//   3. the exchange is deferred when it cannot fit — lowering the
//      effective exchange frequency — until it is overdue, at which point
//      it evicts timestamps (and any SACK blocks) for one segment so the
//      estimator is starved by at most the configured slack.
OptionPlan ArbitrateOptions(const OptionDemand& demand);

}  // namespace e2e

#endif  // SRC_TCP_SEGMENT_CODEC_H_
