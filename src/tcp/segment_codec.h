// Byte-level encoding of TCP segment headers, including the end-to-end
// metadata exchange as a real TCP option (paper §5, "Metadata Exchange").
//
// The simulator moves segments as objects, but the wire format matters for
// the paper's feasibility argument: a standard TCP header has at most 40
// bytes of option space (data offset is 4 bits: 15*4 - 20). The base
// exchange payload — 2 header bytes + three 3-tuples of 4-byte counters —
// is 38 bytes; wrapped in a kind/length TLV it lands at exactly 40 bytes,
// i.e. it fits, but only when no other options (e.g. timestamps) are
// present. A hint-bearing payload (52 bytes with TLV) does NOT fit; a real
// deployment would lower the exchange frequency, alternate hint/queue
// payloads, or use extended options. The codec enforces the limit unless
// explicitly told to model an oversize/experimental encoding.

#ifndef SRC_TCP_SEGMENT_CODEC_H_
#define SRC_TCP_SEGMENT_CODEC_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "src/tcp/segment.h"

namespace e2e {

// Experimental option kind (RFC 4727 reserves 253 for experiments).
inline constexpr uint8_t kE2eOptionKind = 253;
inline constexpr size_t kTcpBaseHeaderBytes = 20;
inline constexpr size_t kTcpMaxOptionBytes = 40;

struct EncodedSegment {
  std::vector<uint8_t> header;  // Base header + padded options.
  uint32_t payload_len = 0;     // Virtual payload bytes (not materialized).
};

// Encodes the header of `seg`. Fails (nullopt) when the e2e option would
// exceed the 40-byte option space and `allow_oversize` is false.
std::optional<EncodedSegment> EncodeSegmentHeader(const TcpSegment& seg,
                                                  bool allow_oversize = false);

// Decodes a header produced by EncodeSegmentHeader. Message-boundary
// records are simulator-side metadata and are not round-tripped. Returns
// nullopt on malformed input.
std::optional<TcpSegment> DecodeSegmentHeader(const uint8_t* data, size_t len,
                                              uint32_t payload_len);

// Size the e2e option (TLV included) would occupy for a given payload.
size_t E2eOptionSize(const WirePayload& payload);

}  // namespace e2e

#endif  // SRC_TCP_SEGMENT_CODEC_H_
