#include "src/tcp/byte_stream.h"

#include <algorithm>
#include <cassert>

namespace e2e {

void ByteStreamQueue::AddBoundary(uint64_t end_offset, MessageRecord record) {
  assert(end_offset > head_ && end_offset <= tail_);
  assert(boundaries_.empty() || boundaries_.back().end_offset < end_offset);
  boundaries_.push_back(BoundaryEntry{end_offset, std::move(record)});
}

ByteStreamQueue::Consumed ByteStreamQueue::Consume(uint64_t max_bytes) {
  const uint64_t take = std::min(max_bytes, tail_ - head_);
  return ConsumeTo(head_ + take);
}

ByteStreamQueue::Consumed ByteStreamQueue::ConsumeTo(uint64_t to) {
  assert(to >= head_ && to <= tail_);
  Consumed consumed;
  consumed.bytes = to - head_;
  head_ = to;
  while (!boundaries_.empty() && boundaries_.front().end_offset <= head_) {
    consumed.completed.push_back(std::move(boundaries_.front()));
    boundaries_.pop_front();
  }
  return consumed;
}

std::vector<BoundaryEntry> ByteStreamQueue::BoundariesIn(uint64_t start, uint64_t end) const {
  std::vector<BoundaryEntry> result;
  for (const BoundaryEntry& entry : boundaries_) {
    if (entry.end_offset > end) {
      break;
    }
    if (entry.end_offset > start) {
      result.push_back(entry);
    }
  }
  return result;
}

}  // namespace e2e
