#include "src/tcp/rtt.h"

#include <algorithm>

namespace e2e {

RttEstimator::RttEstimator() : RttEstimator(Config{}) {}

void RttEstimator::AddSample(Duration rtt) {
  ++samples_;
  if (!min_rtt_.has_value() || rtt < *min_rtt_) {
    min_rtt_ = rtt;
  }
  if (!srtt_.has_value()) {
    // RFC 6298 initialization.
    srtt_ = rtt;
    rttvar_ = rtt / 2;
  } else {
    // SRTT = 7/8 SRTT + 1/8 sample; RTTVAR = 3/4 RTTVAR + 1/4 |SRTT - sample|.
    const Duration err = *srtt_ - rtt;
    const Duration abs_err = err >= Duration::Zero() ? err : -err;
    rttvar_ = (rttvar_ * 3) / 4 + abs_err / 4;
    srtt_ = (*srtt_ * 7) / 8 + rtt / 8;
  }
  const Duration candidate = *srtt_ + std::max(Duration::Millis(1), rttvar_ * 4);
  rto_ = std::clamp(candidate, config_.min_rto, config_.max_rto);
  base_rto_ = rto_;
}

void RttEstimator::Backoff() { rto_ = std::min(rto_ * 2, config_.max_rto); }

}  // namespace e2e
