// Back-compat shim: congestion control moved to the pluggable subsystem in
// src/tcp/cc/ (DESIGN.md §13). `CongestionControl` aliases the Reno
// implementation — the direct port of the fixed class that used to live
// here — so existing call sites (`CongestionControl::Config`, the tests in
// tests/tcp/congestion_test.cc) keep compiling unchanged. New code should
// include src/tcp/cc/congestion_control.h and go through
// MakeCongestionControl(CcConfig) instead.

#ifndef SRC_TCP_CONGESTION_H_
#define SRC_TCP_CONGESTION_H_

#include "src/tcp/cc/congestion_control.h"
#include "src/tcp/cc/reno.h"

namespace e2e {

using CongestionControl = RenoCongestionControl;

}  // namespace e2e

#endif  // SRC_TCP_CONGESTION_H_
