// Reno-style congestion control: slow start, congestion avoidance, and
// multiplicative decrease on loss. The batching experiments run far from
// congestion (100 Gbps link, microsecond RTTs), but the window machinery is
// part of any faithful TCP substrate and bounds the burst a newly started
// or loss-recovering connection can inject.

#ifndef SRC_TCP_CONGESTION_H_
#define SRC_TCP_CONGESTION_H_

#include <algorithm>
#include <cstdint>
#include <limits>

namespace e2e {

class CongestionControl {
 public:
  struct Config {
    bool enabled = true;
    uint32_t mss = 1448;
    uint32_t initial_window_segments = 10;  // RFC 6928 IW10.
    uint64_t max_window_bytes = 64ull * 1024 * 1024;
  };

  explicit CongestionControl(const Config& config)
      : config_(config),
        cwnd_(static_cast<uint64_t>(config.initial_window_segments) * config.mss),
        ssthresh_(config.max_window_bytes) {}

  // Current congestion window in bytes (effectively unbounded if disabled).
  uint64_t window_bytes() const {
    return config_.enabled ? cwnd_ : std::numeric_limits<uint64_t>::max();
  }

  bool in_slow_start() const { return cwnd_ < ssthresh_; }
  uint64_t ssthresh() const { return ssthresh_; }

  // Cumulative ack advanced by `acked` bytes: exponential growth in slow
  // start, ~one MSS per window in congestion avoidance.
  void OnAck(uint64_t acked_bytes) {
    if (!config_.enabled || acked_bytes == 0) {
      return;
    }
    if (in_slow_start()) {
      cwnd_ += acked_bytes;
    } else {
      // cwnd += MSS * (acked / cwnd), accumulated to avoid rounding to 0.
      avoid_accum_ += acked_bytes;
      if (avoid_accum_ >= cwnd_) {
        avoid_accum_ -= cwnd_;
        cwnd_ += config_.mss;
      }
    }
    cwnd_ = std::min(cwnd_, config_.max_window_bytes);
  }

  // Fast retransmit (triple duplicate ack): halve, per Reno.
  void OnFastRetransmit() {
    if (!config_.enabled) {
      return;
    }
    ssthresh_ = std::max<uint64_t>(cwnd_ / 2, 2ull * config_.mss);
    cwnd_ = ssthresh_;
  }

  // Retransmission timeout: collapse to one MSS and restart slow start.
  void OnTimeout() {
    if (!config_.enabled) {
      return;
    }
    ssthresh_ = std::max<uint64_t>(cwnd_ / 2, 2ull * config_.mss);
    cwnd_ = config_.mss;
    avoid_accum_ = 0;
  }

 private:
  Config config_;
  uint64_t cwnd_;
  uint64_t ssthresh_;
  uint64_t avoid_accum_ = 0;
};

}  // namespace e2e

#endif  // SRC_TCP_CONGESTION_H_
