#include "src/tcp/stack.h"

#include <algorithm>
#include <cassert>
#include <utility>

#include "src/tcp/segment.h"

namespace e2e {

TcpStack::TcpStack(Simulator* sim, Host* host, const StackCosts& costs)
    : sim_(sim), host_(host), costs_(costs) {
  assert(sim_ != nullptr && host_ != nullptr);
  host_->nic().SetRx([this](const std::vector<Packet>& batch) { return RxBatchCost(batch); },
                     [this](const Packet& packet) { OnRxPacket(packet); });
  host_->nic().SetTxCompleteHandler([this](size_t n) {
    for (TcpEndpoint* endpoint : endpoint_list_) {
      endpoint->OnTxCompletions(n);
    }
  });
}

TcpEndpoint* TcpStack::CreateEndpoint(uint64_t conn_id, bool is_a, const TcpConfig& config) {
  // The endpoint ctor arms timers (exchange, keepalive); on a sharded run
  // those must land in the host's own shard queue, not the global one.
  DomainScope in_host_domain(sim_, host_->domain());
  TcpEndpoint* raw = arena_.New(sim_, host_, conn_id, is_a, config, &costs_, &endpoint_mem_);
  const uint64_t key = KeyFor(conn_id, is_a);
  assert(endpoints_.find(key) == endpoints_.end());
  endpoints_.emplace(key, raw);
  endpoint_list_.push_back(raw);
  return raw;
}

void TcpStack::CloseEndpoint(uint64_t conn_id, bool is_a) {
  const uint64_t key = KeyFor(conn_id, is_a);
  auto it = endpoints_.find(key);
  if (it == endpoints_.end()) {
    return;
  }
  TcpEndpoint* raw = it->second;
  raw->Shutdown();
  endpoint_list_.erase(std::remove(endpoint_list_.begin(), endpoint_list_.end(), raw),
                       endpoint_list_.end());
  // The arena retains the zombie's allocation until the stack dies.
  endpoints_.erase(it);
  ++endpoints_closed_;
}

Duration TcpStack::RxBatchCost(const std::vector<Packet>& batch) {
  Duration cost;
  const TcpSegment* prev = nullptr;
  uint64_t group_bytes = 0;
  for (const Packet& packet : batch) {
    const size_t payload =
        packet.wire_bytes > kWireHeaderBytes ? packet.wire_bytes - kWireHeaderBytes : 0;
    cost += costs_.rx_per_byte * static_cast<int64_t>(payload);
    const auto* seg = dynamic_cast<const TcpSegment*>(packet.payload.get());
    if (!costs_.gro) {
      cost += costs_.rx_per_packet;
      continue;
    }
    cost += costs_.driver_rx_per_packet;
    const bool mergeable = seg != nullptr && prev != nullptr && seg->len > 0 && prev->len > 0 &&
                           seg->conn_id == prev->conn_id && seg->from_a == prev->from_a &&
                           seg->seq == prev->seq + prev->len &&
                           group_bytes + seg->len <= costs_.gro_max_bytes;
    if (mergeable) {
      ++gro_merged_;
    } else {
      cost += costs_.rx_per_packet;  // New coalesced group: one stack pass.
      group_bytes = 0;
    }
    group_bytes += seg != nullptr ? seg->len : 0;
    prev = seg;
  }
  return cost;
}

void TcpStack::OnRxPacket(const Packet& packet) {
  const auto* seg = dynamic_cast<const TcpSegment*>(packet.payload.get());
  if (seg == nullptr) {
    ++unknown_segments_;
    return;
  }
  // The receiving endpoint is the side *opposite* the sender.
  auto it = endpoints_.find(KeyFor(seg->conn_id, !seg->from_a));
  if (it == endpoints_.end()) {
    ++unknown_segments_;
    return;
  }
  it->second->HandleSegment(*seg, packet.ecn_ce);
}

ConnectedPair ConnectPair(TcpStack& stack_a, TcpStack& stack_b, uint64_t conn_id,
                          const TcpConfig& config_a, const TcpConfig& config_b) {
  ConnectedPair pair;
  pair.a = stack_a.CreateEndpoint(conn_id, /*is_a=*/true, config_a);
  pair.b = stack_b.CreateEndpoint(conn_id, /*is_a=*/false, config_b);
  pair.a->InitPeerWindow(config_b.rcvbuf_bytes);
  pair.b->InitPeerWindow(config_a.rcvbuf_bytes);
  pair.a->SetPeerHost(stack_b.host()->id());
  pair.b->SetPeerHost(stack_a.host()->id());
  pair.a->SetLocalHost(stack_a.host()->id());
  pair.b->SetLocalHost(stack_b.host()->id());
  return pair;
}

}  // namespace e2e
