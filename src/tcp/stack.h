// Per-host TCP stack: owns the host's endpoints, installs the NIC RX/TX
// callbacks, prices per-packet softirq processing, and demultiplexes
// incoming segments to their endpoint.

#ifndef SRC_TCP_STACK_H_
#define SRC_TCP_STACK_H_

#include <cstdint>
#include <memory>
#include <memory_resource>
#include <unordered_map>
#include <vector>

#include "src/net/host.h"
#include "src/sim/arena.h"
#include "src/sim/simulator.h"
#include "src/tcp/endpoint.h"
#include "src/tcp/tcp_config.h"

namespace e2e {

class TcpStack {
 public:
  TcpStack(Simulator* sim, Host* host, const StackCosts& costs);

  // Creates an endpoint for `conn_id`. `is_a` distinguishes the two sides
  // of a connection; see ConnectPair. The endpoint lives in the stack's
  // arena: one bump allocation per endpoint, stable address, destroyed with
  // the stack.
  TcpEndpoint* CreateEndpoint(uint64_t conn_id, bool is_a, const TcpConfig& config);

  // Tears down one endpoint (process crash / close): Shutdown()s it and
  // removes it from segment demux and TX-completion fan-out — late
  // segments count as unknown_segments, the RST-less drop a dead port
  // gives. The arena keeps the zombie's allocation alive because
  // already-queued CPU work items and in-flight packets may still
  // reference it; see TcpEndpoint::Shutdown(). Frees the (conn_id, is_a)
  // key for a replacement incarnation. No-op when absent.
  void CloseEndpoint(uint64_t conn_id, bool is_a);

  uint64_t endpoints_closed() const { return endpoints_closed_; }

  Host* host() { return host_; }
  const StackCosts& costs() const { return costs_; }

  uint64_t unknown_segments() const { return unknown_segments_; }
  // Wire packets whose stack traversal was saved by GRO coalescing.
  uint64_t gro_merged() const { return gro_merged_; }

 private:
  uint64_t KeyFor(uint64_t conn_id, bool is_a) const { return conn_id * 2 + (is_a ? 1 : 0); }
  Duration RxBatchCost(const std::vector<Packet>& batch);
  void OnRxPacket(const Packet& packet);

  Simulator* sim_;
  Host* host_;
  StackCosts costs_;
  // Pool behind every endpoint's per-segment maps (scoreboard/OOO). A host
  // lives in one shard domain, so the unsynchronized resource is never
  // touched concurrently. Declared before the arena: endpoints deallocate
  // into it as the arena destroys them.
  std::pmr::unsynchronized_pool_resource endpoint_mem_;
  // All endpoints this stack ever created, open or closed (the arena never
  // frees individually — closed endpoints are the graveyard). The map and
  // list only track the *open* ones.
  ObjectArena<TcpEndpoint> arena_;
  std::unordered_map<uint64_t, TcpEndpoint*> endpoints_;
  std::vector<TcpEndpoint*> endpoint_list_;
  uint64_t unknown_segments_ = 0;
  uint64_t gro_merged_ = 0;
  uint64_t endpoints_closed_ = 0;
};

// Creates the two endpoints of a connection between hosts running `stack_a`
// and `stack_b` (whose NICs must already be linked) and seeds each side's
// view of the peer's receive window.
struct ConnectedPair {
  TcpEndpoint* a = nullptr;
  TcpEndpoint* b = nullptr;
};
ConnectedPair ConnectPair(TcpStack& stack_a, TcpStack& stack_b, uint64_t conn_id,
                          const TcpConfig& config_a, const TcpConfig& config_b);

}  // namespace e2e

#endif  // SRC_TCP_STACK_H_
