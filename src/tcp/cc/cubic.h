// CUBIC congestion control (RFC 8312).
//
// After a congestion event the window regrows along a cubic curve in time:
//
//   W_cubic(t) = C * (t - K)^3 + W_max          [segments]
//   K          = cbrt(W_max * (1 - beta) / C)   [seconds]
//
// concave below the pre-event maximum W_max (fast recovery toward it),
// plateauing at W_max (t = K is the inflection point), then convex beyond
// it (probing for new capacity). The Reno-friendly region keeps CUBIC at
// least as aggressive as standard TCP on short-RTT paths:
//
//   W_est(t) = W_max * beta + 3 * (1 - beta) / (1 + beta) * t / RTT
//
// Decrease is by `beta` (default 0.7, gentler than Reno's 0.5); with fast
// convergence a flow that lost ground since the previous event releases
// extra room (W_max *= (1 + beta) / 2). Slow start and the RTO collapse
// are inherited from Reno semantics (RFC 8312 §4.8, §4.7).

#ifndef SRC_TCP_CC_CUBIC_H_
#define SRC_TCP_CC_CUBIC_H_

#include "src/tcp/cc/congestion_control.h"

namespace e2e {

// The raw window curve, exposed for the shape tests (monotonicity,
// concave/convex switch at t = K) and for plotting.
double CubicWindowSegments(double c, double w_max_segments, double k_seconds, double t_seconds);

class CubicCongestionControl : public CongestionControlAlgorithm {
 public:
  explicit CubicCongestionControl(const CcConfig& config);

  void OnAck(uint64_t acked_bytes, TimePoint now = TimePoint::Zero()) override;
  void OnDupAckThreshold() override;
  void OnRto() override;
  void OnEcnEcho(uint64_t acked_bytes, TimePoint now = TimePoint::Zero()) override;

  const char* name() const override { return "cubic"; }

  // Introspection for tests: the curve parameters of the current epoch.
  double w_max_segments() const { return w_max_seg_; }
  double k_seconds() const { return k_; }
  bool epoch_started() const { return epoch_started_; }

 private:
  void MultiplicativeDecrease();
  void SyncCwnd();  // cwnd_ (bytes) tracks cwnd_seg_ (segments).

  double cwnd_seg_;         // The window in (fractional) segments.
  double w_max_seg_ = 0;    // Window just before the last decrease.
  double k_ = 0;            // Seconds from epoch start to the plateau.
  double w_est_seg_ = 0;    // Reno-friendly estimate at epoch start.
  TimePoint epoch_start_ = TimePoint::Zero();
  bool epoch_started_ = false;
};

}  // namespace e2e

#endif  // SRC_TCP_CC_CUBIC_H_
