#include "src/tcp/cc/dctcp.h"

#include <algorithm>

namespace e2e {

void DctcpCongestionControl::RollWindow(TimePoint now) {
  if (window_end_ == TimePoint::Zero()) {
    window_end_ = now + ReactionWindow();
    return;
  }
  if (now < window_end_) {
    return;
  }
  // One observation window (~RTT) of acks is complete: fold its mark
  // fraction into alpha, and react if anything was marked (RFC 8257 §3.3).
  const double f = window_acked_bytes_ == 0
                       ? 0.0
                       : static_cast<double>(window_marked_bytes_) /
                             static_cast<double>(window_acked_bytes_);
  alpha_ = (1.0 - config_.dctcp_gain) * alpha_ + config_.dctcp_gain * f;
  if (window_marked_bytes_ > 0) {
    const double factor = 1.0 - alpha_ / 2.0;
    cwnd_ = ClampWindow(static_cast<uint64_t>(static_cast<double>(cwnd_) * factor));
    ssthresh_ = cwnd_;  // Proportional decrease also ends slow start.
    avoid_accum_ = 0;
    ++decrease_events_;
  }
  window_acked_bytes_ = 0;
  window_marked_bytes_ = 0;
  window_end_ = now + ReactionWindow();
}

void DctcpCongestionControl::OnAck(uint64_t acked_bytes, TimePoint now) {
  if (!config_.enabled || acked_bytes == 0) {
    return;
  }
  window_acked_bytes_ += acked_bytes;
  // Growth is standard Reno (RFC 8257 changes only the decrease law).
  if (in_slow_start()) {
    cwnd_ += acked_bytes;
  } else {
    avoid_accum_ += acked_bytes;
    if (avoid_accum_ >= cwnd_) {
      avoid_accum_ -= cwnd_;
      cwnd_ += config_.mss;
    }
  }
  cwnd_ = std::min(cwnd_, config_.max_window_bytes);
  RollWindow(now);
}

void DctcpCongestionControl::OnEcnEcho(uint64_t acked_bytes, TimePoint now) {
  if (!config_.enabled) {
    return;
  }
  // Called before OnAck for the same ack: these bytes land in both the
  // marked tally (here) and the total (there).
  window_marked_bytes_ += acked_bytes;
  RollWindow(now);
}

void DctcpCongestionControl::OnDupAckThreshold() {
  if (!config_.enabled) {
    return;
  }
  // Packet loss falls back to the conventional halving.
  ssthresh_ = std::max<uint64_t>(cwnd_ / 2, 2ull * config_.mss);
  cwnd_ = ssthresh_;
  avoid_accum_ = 0;
  ++decrease_events_;
}

void DctcpCongestionControl::OnRto() {
  if (!config_.enabled) {
    return;
  }
  // RFC 5681 §3.1 collapse; alpha deliberately survives the timeout.
  ssthresh_ = std::max<uint64_t>(cwnd_ / 2, 2ull * config_.mss);
  cwnd_ = config_.mss;
  avoid_accum_ = 0;
  window_acked_bytes_ = 0;
  window_marked_bytes_ = 0;
  ++decrease_events_;
}

}  // namespace e2e
