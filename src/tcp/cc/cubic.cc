#include "src/tcp/cc/cubic.h"

#include <algorithm>
#include <cmath>

namespace e2e {

double CubicWindowSegments(double c, double w_max_segments, double k_seconds,
                           double t_seconds) {
  const double d = t_seconds - k_seconds;
  return c * d * d * d + w_max_segments;
}

CubicCongestionControl::CubicCongestionControl(const CcConfig& config)
    : CongestionControlAlgorithm(config),
      cwnd_seg_(static_cast<double>(config.initial_window_segments)) {}

void CubicCongestionControl::SyncCwnd() {
  cwnd_seg_ = std::max(cwnd_seg_, 1.0);
  const double max_seg =
      static_cast<double>(config_.max_window_bytes) / static_cast<double>(config_.mss);
  cwnd_seg_ = std::min(cwnd_seg_, max_seg);
  cwnd_ = ClampWindow(static_cast<uint64_t>(cwnd_seg_ * config_.mss));
}

void CubicCongestionControl::OnAck(uint64_t acked_bytes, TimePoint now) {
  if (!config_.enabled || acked_bytes == 0) {
    return;
  }
  const double segs_acked = static_cast<double>(acked_bytes) / config_.mss;
  if (in_slow_start()) {
    cwnd_seg_ += segs_acked;
    SyncCwnd();
    return;
  }
  if (!epoch_started_) {
    // First avoidance ack since the last congestion event: anchor the curve.
    epoch_started_ = true;
    epoch_start_ = now;
    if (w_max_seg_ < cwnd_seg_) {
      w_max_seg_ = cwnd_seg_;  // Already past the old maximum: probe from here.
    }
    k_ = std::cbrt(std::max(0.0, (w_max_seg_ - cwnd_seg_) / config_.cubic_c));
    w_est_seg_ = cwnd_seg_;
  }
  const double rtt_s = ReactionWindow().ToSeconds();
  const double t = (now - epoch_start_).ToSeconds();
  // Aim one RTT ahead on the curve; each acked segment closes 1/cwnd of the
  // distance (RFC 8312 §4.1's per-ack increment).
  const double target = CubicWindowSegments(config_.cubic_c, w_max_seg_, k_, t + rtt_s);
  if (target > cwnd_seg_) {
    cwnd_seg_ += (target - cwnd_seg_) / cwnd_seg_ * segs_acked;
  }
  // Reno-friendly region (§4.2): never grow slower than an additive TCP
  // flow would have since the epoch started.
  w_est_seg_ += 3.0 * (1.0 - config_.cubic_beta) / (1.0 + config_.cubic_beta) * segs_acked /
                cwnd_seg_;
  if (cwnd_seg_ < w_est_seg_) {
    cwnd_seg_ = w_est_seg_;
  }
  SyncCwnd();
}

void CubicCongestionControl::MultiplicativeDecrease() {
  if (config_.cubic_fast_convergence && cwnd_seg_ < w_max_seg_) {
    // Losing ground since the last event: release room for newcomers.
    w_max_seg_ = cwnd_seg_ * (1.0 + config_.cubic_beta) / 2.0;
  } else {
    w_max_seg_ = cwnd_seg_;
  }
  cwnd_seg_ = std::max(cwnd_seg_ * config_.cubic_beta, 2.0);
  ssthresh_ = std::max<uint64_t>(static_cast<uint64_t>(cwnd_seg_) * config_.mss,
                                 2ull * config_.mss);
  epoch_started_ = false;
  ++decrease_events_;
  SyncCwnd();
}

void CubicCongestionControl::OnDupAckThreshold() {
  if (!config_.enabled) {
    return;
  }
  MultiplicativeDecrease();
}

void CubicCongestionControl::OnRto() {
  if (!config_.enabled) {
    return;
  }
  // Remember where we were (with fast convergence), then collapse to one
  // MSS and restart slow start toward beta * cwnd (RFC 8312 §4.7).
  if (config_.cubic_fast_convergence && cwnd_seg_ < w_max_seg_) {
    w_max_seg_ = cwnd_seg_ * (1.0 + config_.cubic_beta) / 2.0;
  } else {
    w_max_seg_ = cwnd_seg_;
  }
  ssthresh_ = std::max<uint64_t>(
      static_cast<uint64_t>(cwnd_seg_ * config_.cubic_beta) * config_.mss, 2ull * config_.mss);
  cwnd_seg_ = 1.0;
  epoch_started_ = false;
  ++decrease_events_;
  SyncCwnd();
}

void CubicCongestionControl::OnEcnEcho(uint64_t acked_bytes, TimePoint now) {
  (void)acked_bytes;
  if (!config_.enabled) {
    return;
  }
  if (now < cwr_until_) {
    return;  // Already reacted within this RTT (RFC 3168 §6.1.2).
  }
  MultiplicativeDecrease();
  cwr_until_ = now + ReactionWindow();
}

}  // namespace e2e
