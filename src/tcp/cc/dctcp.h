// DCTCP congestion control (RFC 8257).
//
// The switch marks CE above a shallow threshold K; the receiver echoes the
// marks; the sender maintains an EWMA of the *fraction* of acked bytes
// that were marked:
//
//   alpha = (1 - g) * alpha + g * F      once per observation window (~RTT)
//   F     = marked bytes / acked bytes   over that window
//
// and on a window containing any mark reduces proportionally:
//
//   cwnd = cwnd * (1 - alpha / 2)
//
// A lightly marked queue (small F) barely dents the window, so DCTCP holds
// queue occupancy near K — high throughput at a fraction of drop-tail
// Reno's queueing delay, which is exactly the buffer-sizing regime the
// sweep in bench/buffer_sizing_sweep reproduces. Loss handling (dup-ack
// threshold, RTO) falls back to Reno semantics, with alpha preserved
// across an RTO (RFC 8257 §3.5's conventional reaction).
//
// Growth is Reno's (slow start + one MSS per window): DCTCP only changes
// the *decrease* law.

#ifndef SRC_TCP_CC_DCTCP_H_
#define SRC_TCP_CC_DCTCP_H_

#include "src/tcp/cc/congestion_control.h"

namespace e2e {

class DctcpCongestionControl : public CongestionControlAlgorithm {
 public:
  explicit DctcpCongestionControl(const CcConfig& config)
      : CongestionControlAlgorithm(config), alpha_(config.dctcp_alpha_init) {}

  void OnAck(uint64_t acked_bytes, TimePoint now = TimePoint::Zero()) override;
  void OnDupAckThreshold() override;
  void OnRto() override;
  void OnEcnEcho(uint64_t acked_bytes, TimePoint now = TimePoint::Zero()) override;

  const char* name() const override { return "dctcp"; }

  // The congestion-extent EWMA, for tests and gauges.
  double alpha() const { return alpha_; }

 private:
  void RollWindow(TimePoint now);

  double alpha_;
  uint64_t window_acked_bytes_ = 0;
  uint64_t window_marked_bytes_ = 0;
  TimePoint window_end_ = TimePoint::Zero();
  uint64_t avoid_accum_ = 0;
};

}  // namespace e2e

#endif  // SRC_TCP_CC_DCTCP_H_
