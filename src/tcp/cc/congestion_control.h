// Pluggable congestion control (DESIGN.md §13).
//
// `CongestionControlAlgorithm` is the plug-point between the TCP endpoint's
// transmit machinery and the window-adaptation policy: the endpoint reports
// events (cumulative acks, the third duplicate ack, retransmission
// timeouts, ECN echoes, RTT samples) and reads back a congestion window
// that gates its send path alongside the peer's advertised window. Three
// policies implement the interface:
//
//   Reno   (reno.h)   — RFC 5681 slow start / congestion avoidance /
//                       multiplicative decrease; the port of the original
//                       fixed `CongestionControl` class.
//   CUBIC  (cubic.h)  — RFC 8312 cubic window curve around W_max with the
//                       Reno-friendly region and fast convergence.
//   DCTCP  (dctcp.h)  — RFC 8257 ECN-fraction EWMA (alpha) driving a
//                       proportional, not multiplicative, decrease.
//
// Event conventions (what the endpoint guarantees):
//   * OnEcnEcho(acked, now) is called BEFORE OnAck(acked, now) when one
//     arriving ack both advances snd_una and carries ECE, with the same
//     byte count, so DCTCP can attribute those bytes to the marked tally
//     that OnAck then also counts in the total.
//   * A pure duplicate ack with ECE calls OnEcnEcho(0, now) only.
//   * OnDupAckThreshold fires once per loss event (the third consecutive
//     duplicate ack), OnRto on every retransmission-timeout fire.
//   * `now` is simulation time; algorithms must not read wall clocks
//     (determinism contract, DESIGN.md §9).
//
// Windowing without sequence numbers: real implementations bound "react at
// most once per window of data" with sequence-space markers. The interface
// deliberately keeps algorithms sequence-free, so Reno/CUBIC gate repeated
// ECN reactions — and DCTCP rolls its observation window — on an RTT-sized
// *time* window (the smoothed RTT from OnRttSample, or a configured
// fallback before the first sample). In simulation the two are equivalent:
// a full window of data takes one RTT to be acked.

#ifndef SRC_TCP_CC_CONGESTION_CONTROL_H_
#define SRC_TCP_CC_CONGESTION_CONTROL_H_

#include <cstdint>
#include <limits>
#include <memory>

#include "src/sim/time.h"

namespace e2e {

enum class CcAlgorithm {
  kReno = 0,
  kCubic = 1,
  kDctcp = 2,
};

// Stable lowercase name ("reno", "cubic", "dctcp") for tables and JSON.
const char* CcAlgorithmName(CcAlgorithm algorithm);

// Coarse controller state, for introspection and time-series gauges.
enum class CcState {
  kSlowStart = 0,   // cwnd < ssthresh: exponential growth.
  kAvoidance = 1,   // At or above ssthresh: additive / curve-driven growth.
  kCwr = 2,         // Within one RTT of a congestion reaction.
};

const char* CcStateName(CcState state);

struct CcConfig {
  bool enabled = true;
  CcAlgorithm algorithm = CcAlgorithm::kReno;
  uint32_t mss = 1448;
  uint32_t initial_window_segments = 10;  // RFC 6928 IW10.
  uint64_t max_window_bytes = 64ull * 1024 * 1024;

  // Endpoint-level ECN: echo CE marks as ECE and react to echoed ECE with
  // CWR (segment.h / endpoint.cc). Off by default — the pre-ECN stack.
  bool ecn = false;

  // Reaction/observation window used before the first RTT sample arrives
  // (see the header comment on time-based windowing).
  Duration fallback_rtt = Duration::Micros(100);

  // CUBIC (RFC 8312).
  double cubic_c = 0.4;
  double cubic_beta = 0.7;  // Multiplicative decrease factor.
  bool cubic_fast_convergence = true;

  // DCTCP (RFC 8257).
  double dctcp_gain = 1.0 / 16.0;  // g, the alpha EWMA weight.
  double dctcp_alpha_init = 1.0;   // Conservative start, per the RFC.
};

class CongestionControlAlgorithm {
 public:
  // Lets pre-pluggable call sites keep writing CongestionControl::Config.
  using Config = CcConfig;

  explicit CongestionControlAlgorithm(const CcConfig& config);
  virtual ~CongestionControlAlgorithm() = default;

  // ---- Events (see header comment for ordering guarantees) ----

  // Cumulative ack advanced by `acked_bytes`.
  virtual void OnAck(uint64_t acked_bytes, TimePoint now = TimePoint::Zero()) = 0;
  // Third consecutive duplicate ack: one fast-retransmit loss event.
  virtual void OnDupAckThreshold() = 0;
  // Retransmission timeout: RFC 5681 §3.1 — cwnd collapses to one MSS and
  // slow start restarts toward ssthresh = max(flight/2, 2 MSS).
  virtual void OnRto() = 0;
  // Ack carrying ECE (RFC 3168 / 8257). `acked_bytes` is what this ack
  // newly acknowledged (0 for a pure duplicate). Default: no-op.
  virtual void OnEcnEcho(uint64_t acked_bytes, TimePoint now = TimePoint::Zero());
  // A fresh RTT measurement (Karn-filtered, from the endpoint's timer).
  virtual void OnRttSample(Duration rtt, TimePoint now = TimePoint::Zero());

  virtual const char* name() const = 0;

  // ---- Window / state introspection ----

  // The window gating the send path (effectively unbounded when disabled).
  uint64_t window_bytes() const {
    return config_.enabled ? cwnd_ : std::numeric_limits<uint64_t>::max();
  }
  // The raw congestion window, regardless of `enabled`.
  uint64_t cwnd_bytes() const { return cwnd_; }
  uint64_t ssthresh() const { return ssthresh_; }
  bool in_slow_start() const { return cwnd_ < ssthresh_; }
  // Pass the current sim time to see kCwr (the reaction window is a time
  // window); without it the state degenerates to slow-start vs avoidance.
  CcState state(TimePoint now = TimePoint::Zero()) const;
  // Congestion reactions applied (fast retransmit + RTO + ECN decreases).
  // The endpoint uses the delta across one ack to decide when to set CWR.
  uint64_t decrease_events() const { return decrease_events_; }
  const CcConfig& config() const { return config_; }

  // ---- Back-compat with the pre-pluggable CongestionControl API ----
  void OnFastRetransmit() { OnDupAckThreshold(); }
  void OnTimeout() { OnRto(); }

 protected:
  uint64_t ClampWindow(uint64_t bytes) const;
  // Smoothed RTT, or the configured fallback before any sample.
  Duration ReactionWindow() const;

  CcConfig config_;
  uint64_t cwnd_ = 0;
  uint64_t ssthresh_ = 0;
  Duration srtt_ = Duration::Zero();
  TimePoint cwr_until_ = TimePoint::Zero();  // End of the current reaction window.
  uint64_t decrease_events_ = 0;
};

// Builds the algorithm selected by `config.algorithm`.
std::unique_ptr<CongestionControlAlgorithm> MakeCongestionControl(const CcConfig& config);

}  // namespace e2e

#endif  // SRC_TCP_CC_CONGESTION_CONTROL_H_
