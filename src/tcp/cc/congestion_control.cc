#include "src/tcp/cc/congestion_control.h"

#include <algorithm>

#include "src/tcp/cc/cubic.h"
#include "src/tcp/cc/dctcp.h"
#include "src/tcp/cc/reno.h"

namespace e2e {

const char* CcAlgorithmName(CcAlgorithm algorithm) {
  switch (algorithm) {
    case CcAlgorithm::kReno:
      return "reno";
    case CcAlgorithm::kCubic:
      return "cubic";
    case CcAlgorithm::kDctcp:
      return "dctcp";
  }
  return "?";
}

const char* CcStateName(CcState state) {
  switch (state) {
    case CcState::kSlowStart:
      return "slow_start";
    case CcState::kAvoidance:
      return "avoidance";
    case CcState::kCwr:
      return "cwr";
  }
  return "?";
}

CongestionControlAlgorithm::CongestionControlAlgorithm(const CcConfig& config)
    : config_(config),
      cwnd_(static_cast<uint64_t>(config.initial_window_segments) * config.mss),
      ssthresh_(config.max_window_bytes) {}

void CongestionControlAlgorithm::OnEcnEcho(uint64_t acked_bytes, TimePoint now) {
  (void)acked_bytes;
  (void)now;
}

void CongestionControlAlgorithm::OnRttSample(Duration rtt, TimePoint now) {
  (void)now;
  if (rtt <= Duration::Zero()) {
    return;
  }
  // RFC 6298-style smoothing; the algorithms only need an RTT-sized window,
  // not the full RTO machinery (that stays in rtt.h).
  srtt_ = srtt_ == Duration::Zero() ? rtt : srtt_ * 7 / 8 + rtt / 8;
}

CcState CongestionControlAlgorithm::state(TimePoint now) const {
  if (now > TimePoint::Zero() && now < cwr_until_) {
    return CcState::kCwr;
  }
  if (in_slow_start()) {
    return CcState::kSlowStart;
  }
  return CcState::kAvoidance;
}

uint64_t CongestionControlAlgorithm::ClampWindow(uint64_t bytes) const {
  return std::min(std::max<uint64_t>(bytes, config_.mss), config_.max_window_bytes);
}

Duration CongestionControlAlgorithm::ReactionWindow() const {
  return srtt_ > Duration::Zero() ? srtt_ : config_.fallback_rtt;
}

std::unique_ptr<CongestionControlAlgorithm> MakeCongestionControl(const CcConfig& config) {
  switch (config.algorithm) {
    case CcAlgorithm::kCubic:
      return std::make_unique<CubicCongestionControl>(config);
    case CcAlgorithm::kDctcp:
      return std::make_unique<DctcpCongestionControl>(config);
    case CcAlgorithm::kReno:
      break;
  }
  return std::make_unique<RenoCongestionControl>(config);
}

}  // namespace e2e
