#include "src/tcp/cc/reno.h"

#include <algorithm>

namespace e2e {

void RenoCongestionControl::OnAck(uint64_t acked_bytes, TimePoint now) {
  (void)now;
  if (!config_.enabled || acked_bytes == 0) {
    return;
  }
  if (in_slow_start()) {
    cwnd_ += acked_bytes;
  } else {
    // cwnd += MSS * (acked / cwnd), accumulated to avoid rounding to 0.
    avoid_accum_ += acked_bytes;
    if (avoid_accum_ >= cwnd_) {
      avoid_accum_ -= cwnd_;
      cwnd_ += config_.mss;
    }
  }
  cwnd_ = std::min(cwnd_, config_.max_window_bytes);
}

void RenoCongestionControl::MultiplicativeDecrease() {
  ssthresh_ = std::max<uint64_t>(cwnd_ / 2, 2ull * config_.mss);
  cwnd_ = ssthresh_;
  ++decrease_events_;
}

void RenoCongestionControl::OnDupAckThreshold() {
  if (!config_.enabled) {
    return;
  }
  MultiplicativeDecrease();
}

void RenoCongestionControl::OnRto() {
  if (!config_.enabled) {
    return;
  }
  // RFC 5681 §3.1: collapse to one MSS and restart slow start.
  ssthresh_ = std::max<uint64_t>(cwnd_ / 2, 2ull * config_.mss);
  cwnd_ = config_.mss;
  avoid_accum_ = 0;
  ++decrease_events_;
}

void RenoCongestionControl::OnEcnEcho(uint64_t acked_bytes, TimePoint now) {
  (void)acked_bytes;
  if (!config_.enabled) {
    return;
  }
  // RFC 3168 §6.1.2: react like a loss, at most once per window (one RTT).
  if (now < cwr_until_) {
    return;
  }
  MultiplicativeDecrease();
  cwr_until_ = now + ReactionWindow();
}

}  // namespace e2e
