// Reno congestion control (RFC 5681), the port of the original fixed
// `CongestionControl` class onto the pluggable interface: exponential slow
// start, one-MSS-per-window congestion avoidance, halving on fast
// retransmit, collapse-to-one-MSS on RTO. ECN echoes (RFC 3168) are
// treated exactly like a fast-retransmit loss event, at most once per RTT.

#ifndef SRC_TCP_CC_RENO_H_
#define SRC_TCP_CC_RENO_H_

#include "src/tcp/cc/congestion_control.h"

namespace e2e {

class RenoCongestionControl : public CongestionControlAlgorithm {
 public:
  explicit RenoCongestionControl(const CcConfig& config)
      : CongestionControlAlgorithm(config) {}

  void OnAck(uint64_t acked_bytes, TimePoint now = TimePoint::Zero()) override;
  void OnDupAckThreshold() override;
  void OnRto() override;
  void OnEcnEcho(uint64_t acked_bytes, TimePoint now = TimePoint::Zero()) override;

  const char* name() const override { return "reno"; }

 private:
  void MultiplicativeDecrease();

  // Sub-window ack bytes accumulated toward the next avoidance increment,
  // so small acks don't round growth down to zero.
  uint64_t avoid_accum_ = 0;
};

}  // namespace e2e

#endif  // SRC_TCP_CC_RENO_H_
