#include "src/obs/registry.h"

#include <cassert>
#include <utility>

namespace e2e {

void CounterRegistry::Register(std::string entity, std::vector<std::string> counter_names,
                               Provider provider) {
  assert(provider != nullptr);
  entities_.push_back(Entity{std::move(entity), std::move(counter_names), std::move(provider)});
}

CounterRegistry::Values CounterRegistry::Sample() const {
  Values values;
  values.reserve(entities_.size());
  for (const Entity& entity : entities_) {
    values.push_back(entity.provider());
    assert(values.back().size() == entity.counter_names.size());
  }
  return values;
}

CounterRegistry::Values CounterRegistry::Delta(const Values& prev, const Values& cur,
                                               DeltaStats* stats) {
  assert(prev.size() == cur.size());
  Values delta;
  delta.reserve(cur.size());
  for (size_t i = 0; i < cur.size(); ++i) {
    assert(prev[i].size() == cur[i].size());
    std::vector<uint64_t> row;
    row.reserve(cur[i].size());
    for (size_t j = 0; j < cur[i].size(); ++j) {
      if (cur[i][j] < prev[i][j]) {
        // Regressed counter (entity restarted with zeroed state): clamp
        // instead of underflowing into a ~2^64 delta.
        row.push_back(0);
        if (stats != nullptr) {
          ++stats->regressed_cells;
        }
      } else {
        row.push_back(cur[i][j] - prev[i][j]);
      }
    }
    delta.push_back(std::move(row));
  }
  return delta;
}

}  // namespace e2e
