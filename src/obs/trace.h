// Deterministic sim-time tracing (DESIGN.md §11).
//
// A `TraceRecorder` collects typed instants and spans — packet tx/rx/drop,
// send/recv syscalls, queue Track deltas, estimator snapshot exchanges with
// the computed end-to-end latency L, health transitions, and controller
// decisions — into a bounded ring buffer and exports them as Chrome
// trace-event JSON (loadable in chrome://tracing and Perfetto), one track
// per host/connection/component.
//
// Instrumentation contract: hooks throughout the stack read one global
// recorder pointer (the simulation is single-threaded). With no recorder
// bound — the default — every hook is a single null check and no allocation,
// formatting, or branching beyond it happens; same-seed runs with tracing
// off are byte-identical to runs of an uninstrumented build. Recording never
// mutates simulation state: events carry the virtual timestamp of the site
// that emitted them and the recorder does no scheduling of its own.

#ifndef SRC_OBS_TRACE_H_
#define SRC_OBS_TRACE_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/sim/time.h"

namespace e2e {

// Event categories, maskable per-recorder. Kept coarse on purpose: a mask
// bit decides whether a whole hook site runs, so categories map to hook
// cost tiers (kQueue and kPacket are the hot ones).
enum class TraceCategory : uint32_t {
  kPacket = 0,      // Wire-level tx/rx/drop (NIC + link).
  kSyscall = 1,     // Application send()/recv() calls.
  kQueue = 2,       // Monitored-queue Track deltas (unacked/unread/ackdelay).
  kEstimator = 3,   // Metadata snapshot exchange + computed L.
  kHealth = 4,      // Estimator-health state transitions.
  kController = 5,  // Batching-controller decisions (switch/explore/freeze).
  kDiag = 6,        // In-switch flow-diagnosis epoch verdicts.
};
inline constexpr size_t kNumTraceCategories = 7;

constexpr uint32_t TraceBit(TraceCategory c) { return 1u << static_cast<uint32_t>(c); }
inline constexpr uint32_t kTraceAll = (1u << kNumTraceCategories) - 1;

const char* TraceCategoryName(TraceCategory category);

// One trace event. Plain value type sized for a ring buffer: names and arg
// keys must be string literals (static storage duration); up to three
// numeric args ride along and become Chrome `args` entries.
struct TraceEvent {
  TimePoint time;
  Duration duration = Duration::Zero();  // Zero => instant, else a span.
  TraceCategory category = TraceCategory::kPacket;
  const char* name = "";
  uint32_t track = 0;  // From TraceRecorder::Track(); 0 = the default track.
  const char* k1 = nullptr;
  double v1 = 0;
  const char* k2 = nullptr;
  double v2 = 0;
  const char* k3 = nullptr;
  double v3 = 0;
};

class TraceRecorder {
 public:
  // `capacity` bounds memory: once full, the oldest events are overwritten
  // (the tail of a run is usually the interesting part). `mask` selects the
  // recorded categories.
  explicit TraceRecorder(size_t capacity = 1 << 16, uint32_t mask = kTraceAll);

  bool enabled(TraceCategory category) const { return (mask_ & TraceBit(category)) != 0; }
  void SetMask(uint32_t mask) { mask_ = mask; }
  uint32_t mask() const { return mask_; }

  // Returns a stable track id for `name`, creating it on first use. Tracks
  // render as named rows ("threads") in the trace viewer; conventionally
  // "<host>/<component>" or "conn<N>/<side>".
  uint32_t Track(const std::string& name);
  const std::vector<std::string>& track_names() const { return track_names_; }

  // Appends one event (dropping the oldest when the ring is full). The
  // category mask is honored here too, so call sites may skip the
  // enabled() pre-check when they are not on a hot path.
  void Record(const TraceEvent& event);

  // Events currently held, oldest first.
  std::vector<TraceEvent> Events() const;

  size_t size() const { return ring_.size(); }
  size_t capacity() const { return capacity_; }
  // Total events ever recorded / lost to ring overwrite.
  uint64_t recorded() const { return recorded_; }
  uint64_t overwritten() const { return overwritten_; }

  void Clear();

  // Chrome trace-event JSON ("JSON Object Format": {"traceEvents": [...]}).
  // Timestamps are virtual microseconds with fixed %.3f formatting, so equal
  // event streams serialize byte-identically. Instants use phase "i", spans
  // phase "X"; track names are emitted as thread_name metadata.
  void WriteChromeTrace(FILE* out) const;
  // Convenience: WriteChromeTrace to `path`. Returns false on I/O error.
  bool WriteChromeTraceFile(const std::string& path) const;

 private:
  size_t capacity_;
  uint32_t mask_;
  std::vector<TraceEvent> ring_;
  size_t head_ = 0;  // Index of the oldest event once the ring wrapped.
  uint64_t recorded_ = 0;
  uint64_t overwritten_ = 0;
  std::vector<std::string> track_names_;
  std::unordered_map<std::string, uint32_t> track_ids_;
};

// ---- Global binding ----
//
// Each simulation is single-threaded, so the active recorder is one pointer
// — thread-local, because the sweep executor (src/testbed/sweep) runs
// independent Simulators on worker threads. Benches/tests bind a recorder
// around a run (ScopedTrace) on the thread that runs it and the hooks
// compiled into sim/net/tcp/core pick it up; the default on every thread is
// nullptr and every hook reduces to one pointer load + compare. A recorder
// is never shared across threads: binding is per-thread, so a traced cell
// records only its own simulation no matter how many run concurrently.

extern thread_local TraceRecorder* g_trace_recorder;

inline TraceRecorder* CurrentTrace() { return g_trace_recorder; }
void SetCurrentTrace(TraceRecorder* recorder);

// The hook-site guard: non-null iff a recorder is bound AND records
// `category`. Usage:
//   if (TraceRecorder* tr = TraceIf(TraceCategory::kPacket)) { ... }
inline TraceRecorder* TraceIf(TraceCategory category) {
  TraceRecorder* r = g_trace_recorder;
  return (r != nullptr && r->enabled(category)) ? r : nullptr;
}

// Binds `recorder` for a scope (nullptr to force-disable), restoring the
// previous binding on destruction.
class ScopedTrace {
 public:
  explicit ScopedTrace(TraceRecorder* recorder) : prev_(g_trace_recorder) {
    SetCurrentTrace(recorder);
  }
  ~ScopedTrace() { SetCurrentTrace(prev_); }
  ScopedTrace(const ScopedTrace&) = delete;
  ScopedTrace& operator=(const ScopedTrace&) = delete;

 private:
  TraceRecorder* prev_;
};

}  // namespace e2e

#endif  // SRC_OBS_TRACE_H_
