#include "src/obs/trace.h"

#include <cassert>

namespace e2e {

thread_local TraceRecorder* g_trace_recorder = nullptr;

void SetCurrentTrace(TraceRecorder* recorder) { g_trace_recorder = recorder; }

const char* TraceCategoryName(TraceCategory category) {
  switch (category) {
    case TraceCategory::kPacket:
      return "packet";
    case TraceCategory::kSyscall:
      return "syscall";
    case TraceCategory::kQueue:
      return "queue";
    case TraceCategory::kEstimator:
      return "estimator";
    case TraceCategory::kHealth:
      return "health";
    case TraceCategory::kController:
      return "controller";
    case TraceCategory::kDiag:
      return "diag";
  }
  return "?";
}

TraceRecorder::TraceRecorder(size_t capacity, uint32_t mask)
    : capacity_(capacity), mask_(mask) {
  assert(capacity_ > 0);
  ring_.reserve(capacity_);
}

uint32_t TraceRecorder::Track(const std::string& name) {
  const auto it = track_ids_.find(name);
  if (it != track_ids_.end()) {
    return it->second;
  }
  const uint32_t id = static_cast<uint32_t>(track_names_.size()) + 1;
  track_names_.push_back(name);
  track_ids_.emplace(name, id);
  return id;
}

void TraceRecorder::Record(const TraceEvent& event) {
  if (!enabled(event.category)) {
    return;
  }
  ++recorded_;
  if (ring_.size() < capacity_) {
    ring_.push_back(event);
    return;
  }
  // Full: overwrite the oldest slot and advance the head.
  ring_[head_] = event;
  head_ = (head_ + 1) % capacity_;
  ++overwritten_;
}

std::vector<TraceEvent> TraceRecorder::Events() const {
  std::vector<TraceEvent> events;
  events.reserve(ring_.size());
  for (size_t i = 0; i < ring_.size(); ++i) {
    events.push_back(ring_[(head_ + i) % ring_.size()]);
  }
  return events;
}

void TraceRecorder::Clear() {
  ring_.clear();
  head_ = 0;
  recorded_ = 0;
  overwritten_ = 0;
}

namespace {

// Minimal JSON string escaping (track/event names are plain ASCII; this
// guards against the odd '"' or '\' in a caller-supplied track name).
void WriteJsonString(FILE* out, const char* s) {
  std::fputc('"', out);
  for (; *s != '\0'; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      std::fputc('\\', out);
      std::fputc(c, out);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      std::fprintf(out, "\\u%04x", c);
    } else {
      std::fputc(c, out);
    }
  }
  std::fputc('"', out);
}

void WriteArg(FILE* out, bool* first, const char* key, double value) {
  if (key == nullptr) {
    return;
  }
  if (!*first) {
    std::fputc(',', out);
  }
  *first = false;
  WriteJsonString(out, key);
  // Fixed formatting: deterministic output for identical event streams.
  std::fprintf(out, ":%.6f", value);
}

}  // namespace

void TraceRecorder::WriteChromeTrace(FILE* out) const {
  std::fprintf(out, "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
  std::fprintf(out,
               "{\"ph\":\"M\",\"pid\":0,\"tid\":0,\"name\":\"process_name\","
               "\"args\":{\"name\":\"e2e-sim\"}}");
  std::fprintf(out,
               ",\n{\"ph\":\"M\",\"pid\":0,\"tid\":0,\"name\":\"thread_name\","
               "\"args\":{\"name\":\"(default)\"}}");
  for (size_t i = 0; i < track_names_.size(); ++i) {
    std::fprintf(out, ",\n{\"ph\":\"M\",\"pid\":0,\"tid\":%u,\"name\":\"thread_name\",\"args\":{\"name\":",
                 static_cast<uint32_t>(i) + 1);
    WriteJsonString(out, track_names_[i].c_str());
    std::fprintf(out, "}}");
  }
  for (const TraceEvent& e : Events()) {
    const bool span = !e.duration.IsZero();
    std::fprintf(out, ",\n{\"ph\":\"%s\",\"pid\":0,\"tid\":%u,\"ts\":%.3f", span ? "X" : "i",
                 e.track, e.time.ToMicros());
    if (span) {
      std::fprintf(out, ",\"dur\":%.3f", e.duration.ToMicros());
    } else {
      // Instant scope: thread-local, so instants stay on their track row.
      std::fprintf(out, ",\"s\":\"t\"");
    }
    std::fprintf(out, ",\"cat\":\"%s\",\"name\":", TraceCategoryName(e.category));
    WriteJsonString(out, e.name);
    std::fprintf(out, ",\"args\":{");
    bool first = true;
    WriteArg(out, &first, e.k1, e.v1);
    WriteArg(out, &first, e.k2, e.v2);
    WriteArg(out, &first, e.k3, e.v3);
    std::fprintf(out, "}}");
  }
  std::fprintf(out, "\n]}\n");
}

bool TraceRecorder::WriteChromeTraceFile(const std::string& path) const {
  FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    return false;
  }
  WriteChromeTrace(out);
  const bool ok = std::ferror(out) == 0;
  std::fclose(out);
  return ok;
}

}  // namespace e2e
