#include "src/obs/timeseries.h"

#include <cassert>

namespace e2e {

void TimeSeries::WriteCsv(FILE* out) const {
  std::fprintf(out, "time_us");
  for (const std::string& column : columns) {
    std::fprintf(out, ",%s", column.c_str());
  }
  std::fprintf(out, "\n");
  for (size_t i = 0; i < times.size(); ++i) {
    std::fprintf(out, "%.3f", times[i].ToMicros());
    for (const double value : rows[i]) {
      std::fprintf(out, ",%.6f", value);
    }
    std::fprintf(out, "\n");
  }
}

void TimeSeries::WriteJson(FILE* out) const {
  std::fprintf(out, "{\"columns\":[\"time_us\"");
  for (const std::string& column : columns) {
    std::fprintf(out, ",\"%s\"", column.c_str());
  }
  std::fprintf(out, "],\"rows\":[");
  for (size_t i = 0; i < times.size(); ++i) {
    std::fprintf(out, "%s\n[%.3f", i == 0 ? "" : ",", times[i].ToMicros());
    for (const double value : rows[i]) {
      std::fprintf(out, ",%.6f", value);
    }
    std::fprintf(out, "]");
  }
  std::fprintf(out, "\n]}\n");
}

bool TimeSeries::WriteFile(const std::string& path) const {
  FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    return false;
  }
  const bool json = path.size() >= 5 && path.compare(path.size() - 5, 5, ".json") == 0;
  if (json) {
    WriteJson(out);
  } else {
    WriteCsv(out);
  }
  const bool ok = std::ferror(out) == 0;
  std::fclose(out);
  return ok;
}

TimeSeriesSampler::TimeSeriesSampler(Simulator* sim, Duration interval)
    : sim_(sim), interval_(interval) {
  assert(sim_ != nullptr);
  assert(interval_ > Duration::Zero());
}

void TimeSeriesSampler::AddGauge(std::string name, std::function<double()> fn) {
  assert(!started_);
  assert(fn != nullptr);
  gauges_.emplace_back(std::move(name), std::move(fn));
}

void TimeSeriesSampler::AttachRegistry(const CounterRegistry* registry) {
  assert(!started_);
  registry_ = registry;
}

void TimeSeriesSampler::Start(TimePoint until) {
  assert(!started_);
  started_ = true;
  until_ = until;
  series_.columns.clear();
  series_.columns.reserve(gauges_.size());
  for (const auto& [name, fn] : gauges_) {
    series_.columns.push_back(name);
  }
  if (registry_ != nullptr) {
    for (size_t i = 0; i < registry_->num_entities(); ++i) {
      for (const std::string& counter : registry_->counter_names(i)) {
        series_.columns.push_back(registry_->entity_name(i) + "." + counter);
      }
    }
  }
  TakeSample();
}

void TimeSeriesSampler::TakeSample() {
  series_.times.push_back(sim_->Now());
  std::vector<double> row;
  row.reserve(series_.columns.size());
  for (const auto& [name, fn] : gauges_) {
    row.push_back(fn());
  }
  if (registry_ != nullptr) {
    for (const std::vector<uint64_t>& entity : registry_->Sample()) {
      for (const uint64_t value : entity) {
        row.push_back(static_cast<double>(value));
      }
    }
  }
  assert(row.size() == series_.columns.size());
  series_.rows.push_back(std::move(row));
  if (sim_->Now() + interval_ <= until_) {
    sim_->Schedule(interval_, [this] { TakeSample(); });
  }
}

}  // namespace e2e
