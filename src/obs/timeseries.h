// Aligned time-series sampling for simulated runs (DESIGN.md §11).
//
// A `TimeSeriesSampler` polls a set of named gauges (arbitrary double
// providers: queue sizes, estimated vs. measured latency, EWMA values,
// health state) plus, optionally, every entity of a CounterRegistry, on a
// fixed sim-time interval. All columns share one clock, so downstream
// plotting/joining needs no alignment pass — the jittertrap-style "one row
// per tick, one column per signal" shape. The collected `TimeSeries` is a
// plain data object exportable as CSV or JSON with fixed numeric
// formatting (deterministic byte-for-byte for identical runs).
//
// Sampling is read-only: gauge providers must not mutate simulation state,
// so attaching a sampler never changes what a same-seed run computes.

#ifndef SRC_OBS_TIMESERIES_H_
#define SRC_OBS_TIMESERIES_H_

#include <cstdio>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "src/obs/registry.h"
#include "src/sim/simulator.h"
#include "src/sim/time.h"

namespace e2e {

// Column-major metadata + row-major samples. `columns` excludes the
// implicit leading time column.
struct TimeSeries {
  std::vector<std::string> columns;
  std::vector<TimePoint> times;
  std::vector<std::vector<double>> rows;  // rows[i].size() == columns.size().

  size_t num_rows() const { return times.size(); }

  // CSV: "time_us,<col>,..." header then one row per sample. Deterministic
  // fixed formatting (%.3f for time, %.6f for values).
  void WriteCsv(FILE* out) const;
  // JSON: {"columns": ["time_us", ...], "rows": [[...], ...]}.
  void WriteJson(FILE* out) const;
  // Writes CSV unless `path` ends in ".json". Returns false on I/O error.
  bool WriteFile(const std::string& path) const;
};

class TimeSeriesSampler {
 public:
  // Samples every `interval` (> 0) once started.
  TimeSeriesSampler(Simulator* sim, Duration interval);

  // Adds a gauge column. `fn` is called at every sample point and must be a
  // pure read of simulation state. Call before Start().
  void AddGauge(std::string name, std::function<double()> fn);

  // Also samples every entity of `registry` (raw cumulative counter values,
  // one column per "<entity>.<counter>"). The registry must outlive the
  // sampler and be fully populated before Start().
  void AttachRegistry(const CounterRegistry* registry);

  // Begins sampling now; stops after `until` (absolute virtual time).
  void Start(TimePoint until);

  // The series collected so far (column names resolve at Start()).
  const TimeSeries& series() const { return series_; }
  // Moves the collected series out (the sampler must be done sampling).
  TimeSeries TakeSeries() { return std::move(series_); }

 private:
  void TakeSample();

  Simulator* sim_;
  Duration interval_;
  TimePoint until_;
  std::vector<std::pair<std::string, std::function<double()>>> gauges_;
  const CounterRegistry* registry_ = nullptr;
  TimeSeries series_;
  bool started_ = false;
};

}  // namespace e2e

#endif  // SRC_OBS_TIMESERIES_H_
