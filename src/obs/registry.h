// A registry of named counter sources, replacing hard-coded client/server
// counter fields in collectors and reports: NICs, links, and switch ports
// register once, and any consumer (collector tick, time-series sampler,
// bench JSON writer) reads all of them uniformly — the design scales from
// two endpoints to a fleet.
//
// Each entity exposes a fixed, ordered list of counter names plus a
// provider returning the current values in that order; samples are plain
// value vectors (no per-sample strings), so per-tick sampling of hundreds
// of entities stays cheap. Entities are reported in registration order,
// which the topology builder keeps deterministic.
//
// Lives in src/obs (it is pure observation plumbing shared by the trace and
// time-series layers); src/testbed/registry.h forwards here for existing
// includes.

#ifndef SRC_OBS_REGISTRY_H_
#define SRC_OBS_REGISTRY_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace e2e {

class CounterRegistry {
 public:
  using Provider = std::function<std::vector<uint64_t>()>;

  // One sample of every entity: values[i][j] is entity i's counter j.
  using Values = std::vector<std::vector<uint64_t>>;

  // Per-Delta bookkeeping: counters are nominally monotonic, but an entity
  // can legitimately regress mid-run — an endpoint restarting with zeroed
  // counters after a crash/reconnect is the canonical case. Raw `cur - prev`
  // would underflow uint64_t into a ~2^64 delta; Delta() clamps those cells
  // to 0 and reports them here instead.
  struct DeltaStats {
    uint64_t regressed_cells = 0;  // Cells where cur < prev (clamped to 0).
    bool regressed() const { return regressed_cells > 0; }
  };

  // Registers `entity` exposing `counter_names` (fixed order). The provider
  // must return exactly counter_names.size() values per call.
  void Register(std::string entity, std::vector<std::string> counter_names, Provider provider);

  size_t num_entities() const { return entities_.size(); }
  const std::string& entity_name(size_t i) const { return entities_[i].name; }
  const std::vector<std::string>& counter_names(size_t i) const {
    return entities_[i].counter_names;
  }

  // Reads every entity's current values.
  Values Sample() const;

  // Element-wise `cur - prev` (the counter deltas over a window). Both
  // samples must come from the same registry state. Cells that regressed
  // (cur < prev) are clamped to 0; pass `stats` to learn whether and how
  // often that happened.
  static Values Delta(const Values& prev, const Values& cur, DeltaStats* stats = nullptr);

 private:
  struct Entity {
    std::string name;
    std::vector<std::string> counter_names;
    Provider provider;
  };
  std::vector<Entity> entities_;
};

}  // namespace e2e

#endif  // SRC_OBS_REGISTRY_H_
