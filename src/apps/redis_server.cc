#include "src/apps/redis_server.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace e2e {

RedisServerApp::RedisServerApp(Simulator* sim, TcpEndpoint* socket, const Config& config)
    : sim_(sim), socket_(socket), config_(config) {
  assert(sim_ != nullptr && socket_ != nullptr);
  socket_->SetReadableCallback([this] { ScheduleWork(); });
}

// One event-loop iteration: epoll wakeup + one bounded recv(). Complete
// requests found in the chunk are handed to per-request work items, which
// serialize on the app core — each pays its processing cost and issues its
// own send(), exactly Redis's command-loop pattern. (This per-request
// serialization is what exposes the per-response transmit cost that Nagle
// amortizes; a batch of sends issued at one instant would coalesce even
// with TCP_NODELAY.)
void RedisServerApp::ScheduleWork() {
  // No read-ahead: while commands from the previous chunk are still being
  // processed, arriving bytes stay in the kernel receive queue (the pump
  // reschedules the read when it drains). The readable callback may fire at
  // any arrival, so the gate lives here.
  if (work_pending_ || request_work_active_ || !pending_requests_.empty()) {
    return;
  }
  work_pending_ = true;
  socket_->host()->app_core().Submit(
      [this]() -> Duration {
        ++stats_.wakeups;
        TcpEndpoint::RecvResult received = socket_->Recv(config_.recv_chunk_bytes);
        batch_.clear();
        for (MessageRecord& record : received.messages) {
          batch_.push_back(std::static_pointer_cast<AppRequest>(std::move(record.data)));
        }
        return config_.costs.wakeup + config_.costs.syscall;
      },
      [this] {
        stats_.max_batch = std::max<uint64_t>(stats_.max_batch, batch_.size());
        for (AppRequestPtr& request : batch_) {
          pending_requests_.push_back(std::move(request));
        }
        batch_.clear();
        work_pending_ = false;
        if (pending_requests_.empty()) {
          // The chunk held no complete request (mid-message); keep reading.
          if (socket_->ReadableBytes() > 0) {
            ScheduleWork();
          }
        } else {
          PumpRequests();
        }
      });
}

// Processes pending requests strictly one at a time: each request's send()
// (and, with TCP_NODELAY, its inline transmit work) finishes before the next
// request is picked up — Redis's command loop. Pre-queuing all requests
// would let their responses coalesce behind the first push even with Nagle
// disabled.
void RedisServerApp::PumpRequests() {
  if (request_work_active_ || pending_requests_.empty()) {
    return;
  }
  request_work_active_ = true;
  AppRequestPtr request = std::move(pending_requests_.front());
  pending_requests_.pop_front();
  // The command executes at work start (so the processing cost can reflect
  // the *response* payload — a GET's cost is dominated by serializing the
  // value it returns); the reply is sent when the cost has elapsed.
  auto response = std::make_shared<AppResponse>();
  socket_->host()->app_core().Submit(
      [this, request, response]() -> Duration {
        ++stats_.requests;
        response->request_id = request->id;
        response->op = request->op;
        response->request_created_at = request->created_at;
        response->request_sent_at = request->sent_at;
        response->server_received_at = sim_->Now();
        if (request->op == OpType::kSet) {
          ++stats_.sets;
          store_.Set(request->key_id, request->value_len);
        } else {
          ++stats_.gets;
          const std::optional<uint32_t> value_len = store_.Get(request->key_id);
          response->found = value_len.has_value();
          response->value_len = value_len.value_or(0);
        }
        // Parse + execute + reply build (request and reply payload bytes),
        // plus the send() syscall.
        return config_.costs.per_message +
               config_.costs.per_kilobyte *
                   static_cast<int64_t>((request->WireSize() + response->WireSize()) / 1024) +
               config_.costs.syscall;
      },
      [this, response] {
        response->response_sent_at = sim_->Now();
        MessageRecord record;
        record.id = response->request_id;
        record.data = response;
        socket_->Send(response->WireSize(), std::move(record));
        ++stats_.responses;
        request_work_active_ = false;
        if (!pending_requests_.empty()) {
          PumpRequests();
        } else if (socket_->ReadableBytes() > 0 || socket_->ReadableMessages() > 0) {
          // Event-loop style: the next read happens only after this chunk's
          // commands finished, so backlog stays in the kernel receive queue
          // (visible to the unread-queue instrumentation), not in app memory.
          ScheduleWork();
        }
      });
}

}  // namespace e2e
