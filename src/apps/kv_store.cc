#include "src/apps/kv_store.h"

namespace e2e {

void KvStore::Set(std::string_view key, std::string value) {
  ++stats_.sets;
  map_[std::string(key)] = std::move(value);
}

std::optional<std::string_view> KvStore::Get(std::string_view key) const {
  ++stats_.gets;
  auto it = map_.find(std::string(key));
  if (it == map_.end()) {
    return std::nullopt;
  }
  ++stats_.hits;
  return std::string_view(it->second);
}

bool KvStore::Del(std::string_view key) {
  ++stats_.dels;
  return map_.erase(std::string(key)) > 0;
}

bool KvStore::Exists(std::string_view key) const { return map_.contains(std::string(key)); }

}  // namespace e2e
