// Application-level request/response descriptors that ride the simulated
// byte streams (as MessageRecord payloads) between the load generator and
// the key-value server.

#ifndef SRC_APPS_MESSAGES_H_
#define SRC_APPS_MESSAGES_H_

#include <cstdint>
#include <memory>

#include "src/apps/resp.h"
#include "src/sim/time.h"

namespace e2e {

enum class OpType { kSet, kGet };

struct AppRequest {
  uint64_t id = 0;
  OpType op = OpType::kSet;
  uint64_t key_id = 0;     // Which key in the workload's key space.
  uint32_t key_len = 16;
  uint32_t value_len = 0;  // SET payload size; 0 for GET.
  TimePoint created_at;    // Load-generator arrival (intended send time).
  TimePoint sent_at;       // send() issued at the client.

  size_t WireSize() const {
    return op == OpType::kSet ? RespSetCommandSize(key_len, value_len)
                              : RespGetCommandSize(key_len);
  }
};

struct AppResponse {
  uint64_t request_id = 0;
  OpType op = OpType::kSet;
  uint32_t value_len = 0;  // GET reply payload; 0 for SET ("+OK").
  bool found = true;
  TimePoint request_created_at;
  TimePoint request_sent_at;     // Client issued send().
  TimePoint server_received_at;  // Server began processing the request.
  TimePoint response_sent_at;    // Server issued send() for this reply.

  size_t WireSize() const {
    if (op == OpType::kSet) {
      return kRespOkSize;
    }
    return found ? RespBulkReplySize(value_len) : kRespNullBulkSize;
  }
};

using AppRequestPtr = std::shared_ptr<AppRequest>;
using AppResponsePtr = std::shared_ptr<AppResponse>;

}  // namespace e2e

#endif  // SRC_APPS_MESSAGES_H_
