// Workload mixes for the Redis benchmark (paper §4): fixed-size SETs of
// 16 KiB values to 16 B keys, optionally mixed with GETs (Figure 4b uses a
// 95:5 SET:GET ratio, making 5% of responses ~34x heavier than the rest).

#ifndef SRC_APPS_WORKLOAD_H_
#define SRC_APPS_WORKLOAD_H_

#include <algorithm>
#include <cstdint>

#include "src/apps/messages.h"
#include "src/sim/random.h"

namespace e2e {

struct WorkloadMix {
  double set_ratio = 1.0;         // Fraction of requests that are SETs.
  uint32_t key_len = 16;
  uint32_t set_value_len = 16384;
  uint32_t get_value_len = 16384;  // Size of values GETs find.
  // Coefficient of variation of SET value sizes (lognormal around
  // set_value_len; 0 = fixed sizes). Probes the paper's §3.4 limitation:
  // byte-unit estimation assumes similarly sized messages.
  double set_value_cv = 0.0;
  uint64_t key_space = 1024;       // Distinct keys.

  static WorkloadMix SetOnly16K() { return WorkloadMix{}; }
  static WorkloadMix SetGet16K(double set_ratio) {
    WorkloadMix mix;
    mix.set_ratio = set_ratio;
    return mix;
  }
};

// Draws request parameters from a mix.
class WorkloadGenerator {
 public:
  WorkloadGenerator(const WorkloadMix& mix, Rng rng) : mix_(mix), rng_(rng) {}

  AppRequest Next() {
    AppRequest req;
    req.id = next_id_++;
    req.key_len = mix_.key_len;
    if (rng_.Bernoulli(mix_.set_ratio)) {
      req.op = OpType::kSet;
      if (mix_.set_value_cv > 0) {
        const double drawn =
            rng_.LogNormalMeanCv(static_cast<double>(mix_.set_value_len), mix_.set_value_cv);
        req.value_len = static_cast<uint32_t>(
            std::clamp(drawn, 64.0, 4.0 * 1024 * 1024));
      } else {
        req.value_len = mix_.set_value_len;
      }
    } else {
      req.op = OpType::kGet;
      req.value_len = 0;
    }
    return req;
  }

  // Key id for a request (uniform over the key space).
  uint64_t NextKeyId() { return static_cast<uint64_t>(rng_.UniformInt(0, mix_.key_space - 1)); }

  const WorkloadMix& mix() const { return mix_; }

 private:
  WorkloadMix mix_;
  Rng rng_;
  uint64_t next_id_ = 1;
};

}  // namespace e2e

#endif  // SRC_APPS_WORKLOAD_H_
