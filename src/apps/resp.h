// A RESP (REdis Serialization Protocol) codec.
//
// Used two ways: examples and unit tests encode/decode real byte buffers;
// the simulated Redis workload uses the *size calculators* so that the
// virtual byte streams carry protocol-exact byte counts (16 KiB SET values
// produce 16430-byte commands and 5-byte "+OK" replies, GETs produce
// 16394-byte bulk replies — the 34x ratio behind the paper's Figure 4b).

#ifndef SRC_APPS_RESP_H_
#define SRC_APPS_RESP_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace e2e {

// ---- Size calculators (no allocation; used by the simulator) ----

// Bytes of a bulk-string element: $<len>\r\n<payload>\r\n.
size_t RespBulkSize(size_t payload_len);

// Bytes of an n-element array header: *<n>\r\n.
size_t RespArrayHeaderSize(size_t n);

// Full SET command: *3 ["SET", key, value].
size_t RespSetCommandSize(size_t key_len, size_t value_len);

// Full GET command: *2 ["GET", key].
size_t RespGetCommandSize(size_t key_len);

// "+OK\r\n".
inline constexpr size_t kRespOkSize = 5;

// Bulk reply carrying a value (GET hit), or $-1\r\n for a miss.
size_t RespBulkReplySize(size_t value_len);
inline constexpr size_t kRespNullBulkSize = 5;

// ---- Real encoder/decoder (examples & tests) ----

struct RespValue {
  enum class Kind { kSimpleString, kError, kInteger, kBulkString, kNullBulk, kArray };
  Kind kind = Kind::kNullBulk;
  std::string str;               // Simple/error/bulk payload.
  int64_t integer = 0;
  std::vector<RespValue> array;

  bool operator==(const RespValue&) const = default;
};

// Encodes a command (array of bulk strings) such as {"SET", key, value}.
std::string RespEncodeCommand(const std::vector<std::string_view>& args);

std::string RespEncodeSimpleString(std::string_view s);
std::string RespEncodeError(std::string_view msg);
std::string RespEncodeInteger(int64_t v);
std::string RespEncodeBulk(std::string_view payload);
std::string RespEncodeNullBulk();

// Incremental parser over a byte stream; supports partial input.
class RespParser {
 public:
  // Appends bytes to the internal buffer.
  void Feed(std::string_view bytes);

  // Attempts to parse one complete value from the front of the buffer.
  // Returns nullopt when more bytes are needed. Malformed input throws
  // std::runtime_error.
  std::optional<RespValue> TryParse();

  size_t buffered_bytes() const { return buffer_.size() - pos_; }

 private:
  // Parses a value at `pos`; returns nullopt if incomplete.
  std::optional<RespValue> ParseAt(size_t& pos) const;
  std::optional<std::string_view> LineAt(size_t& pos) const;
  void Compact();

  std::string buffer_;
  size_t pos_ = 0;
};

}  // namespace e2e

#endif  // SRC_APPS_RESP_H_
