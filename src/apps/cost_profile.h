// Application CPU cost profiles — the calibration knobs standing in for the
// paper's testbed hardware (two Xeon E5-2660 servers; client run bare-metal
// or inside a VM). See DESIGN.md §5 for the calibration rationale.

#ifndef SRC_APPS_COST_PROFILE_H_
#define SRC_APPS_COST_PROFILE_H_

#include "src/sim/time.h"

namespace e2e {

struct AppCosts {
  // Event-loop wakeup (epoll_wait return) when work arrives.
  Duration wakeup = Duration::Nanos(800);
  // Per send()/recv() syscall.
  Duration syscall = Duration::Nanos(500);
  // Per request/response handled, excluding payload-size-dependent work.
  Duration per_message = Duration::MicrosF(1.5);
  // Per payload byte (parse/memcpy); ~0.06 ns/B ≈ 16 GB/s effective.
  Duration per_kilobyte = Duration::Nanos(60);

  // Scales every cost; the VM client profile uses this to model
  // virtualization overhead (vmexits, softirq steal — paper Figure 2a).
  AppCosts Scaled(double factor) const {
    AppCosts scaled = *this;
    scaled.wakeup = scaled.wakeup * factor;
    scaled.syscall = scaled.syscall * factor;
    scaled.per_message = scaled.per_message * factor;
    scaled.per_kilobyte = scaled.per_kilobyte * factor;
    return scaled;
  }

  // Total cost of handling one message of `payload_bytes`.
  Duration MessageCost(size_t payload_bytes) const {
    return per_message + per_kilobyte * (static_cast<int64_t>(payload_bytes) / 1024);
  }
};

// The Redis server profile: SET-heavy work (parse + hash insert + reply).
inline AppCosts RedisServerCosts() {
  AppCosts costs;
  costs.per_message = Duration::MicrosF(2.0);
  costs.per_kilobyte = Duration::Nanos(560);  // Parse + copy of the value.
  return costs;
}

// A bare-metal Lancet-like client: cheap response handling.
inline AppCosts BareMetalClientCosts() {
  AppCosts costs;
  costs.per_message = Duration::MicrosF(1.0);
  costs.per_kilobyte = Duration::Nanos(120);
  return costs;
}

// The same client inside a VM: every operation costs several times more
// (Figure 2a shows the client CPU multiplying while the server's stays put).
inline AppCosts VmClientCosts() { return BareMetalClientCosts().Scaled(6.0); }

}  // namespace e2e

#endif  // SRC_APPS_COST_PROFILE_H_
