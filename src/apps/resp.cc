#include "src/apps/resp.h"

#include <charconv>
#include <stdexcept>

namespace e2e {
namespace {

size_t DigitCount(size_t v) {
  size_t digits = 1;
  while (v >= 10) {
    v /= 10;
    ++digits;
  }
  return digits;
}

int64_t ParseInt(std::string_view s) {
  int64_t value = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc{} || ptr != s.data() + s.size()) {
    throw std::runtime_error("resp: bad integer: " + std::string(s));
  }
  return value;
}

}  // namespace

size_t RespBulkSize(size_t payload_len) {
  return 1 + DigitCount(payload_len) + 2 + payload_len + 2;
}

size_t RespArrayHeaderSize(size_t n) { return 1 + DigitCount(n) + 2; }

size_t RespSetCommandSize(size_t key_len, size_t value_len) {
  return RespArrayHeaderSize(3) + RespBulkSize(3) + RespBulkSize(key_len) +
         RespBulkSize(value_len);
}

size_t RespGetCommandSize(size_t key_len) {
  return RespArrayHeaderSize(2) + RespBulkSize(3) + RespBulkSize(key_len);
}

size_t RespBulkReplySize(size_t value_len) { return RespBulkSize(value_len); }

std::string RespEncodeCommand(const std::vector<std::string_view>& args) {
  std::string out = "*" + std::to_string(args.size()) + "\r\n";
  for (std::string_view arg : args) {
    out += "$" + std::to_string(arg.size()) + "\r\n";
    out.append(arg);
    out += "\r\n";
  }
  return out;
}

std::string RespEncodeSimpleString(std::string_view s) {
  return "+" + std::string(s) + "\r\n";
}

std::string RespEncodeError(std::string_view msg) { return "-" + std::string(msg) + "\r\n"; }

std::string RespEncodeInteger(int64_t v) { return ":" + std::to_string(v) + "\r\n"; }

std::string RespEncodeBulk(std::string_view payload) {
  std::string out = "$" + std::to_string(payload.size()) + "\r\n";
  out.append(payload);
  out += "\r\n";
  return out;
}

std::string RespEncodeNullBulk() { return "$-1\r\n"; }

void RespParser::Feed(std::string_view bytes) { buffer_.append(bytes); }

void RespParser::Compact() {
  if (pos_ > 0 && pos_ == buffer_.size()) {
    buffer_.clear();
    pos_ = 0;
  } else if (pos_ > 64 * 1024) {
    buffer_.erase(0, pos_);
    pos_ = 0;
  }
}

std::optional<std::string_view> RespParser::LineAt(size_t& pos) const {
  const size_t eol = buffer_.find("\r\n", pos);
  if (eol == std::string::npos) {
    return std::nullopt;
  }
  std::string_view line(buffer_.data() + pos, eol - pos);
  pos = eol + 2;
  return line;
}

std::optional<RespValue> RespParser::ParseAt(size_t& pos) const {
  if (pos >= buffer_.size()) {
    return std::nullopt;
  }
  const char type = buffer_[pos];
  size_t cursor = pos + 1;
  const std::optional<std::string_view> line = LineAt(cursor);
  if (!line.has_value()) {
    return std::nullopt;
  }
  RespValue value;
  switch (type) {
    case '+':
      value.kind = RespValue::Kind::kSimpleString;
      value.str = *line;
      break;
    case '-':
      value.kind = RespValue::Kind::kError;
      value.str = *line;
      break;
    case ':':
      value.kind = RespValue::Kind::kInteger;
      value.integer = ParseInt(*line);
      break;
    case '$': {
      const int64_t len = ParseInt(*line);
      if (len < 0) {
        value.kind = RespValue::Kind::kNullBulk;
        break;
      }
      if (buffer_.size() - cursor < static_cast<size_t>(len) + 2) {
        return std::nullopt;
      }
      value.kind = RespValue::Kind::kBulkString;
      value.str = buffer_.substr(cursor, len);
      if (buffer_.compare(cursor + len, 2, "\r\n") != 0) {
        throw std::runtime_error("resp: bulk string missing CRLF terminator");
      }
      cursor += len + 2;
      break;
    }
    case '*': {
      const int64_t n = ParseInt(*line);
      if (n < 0) {
        throw std::runtime_error("resp: negative array length");
      }
      value.kind = RespValue::Kind::kArray;
      value.array.reserve(n);
      for (int64_t i = 0; i < n; ++i) {
        std::optional<RespValue> element = ParseAt(cursor);
        if (!element.has_value()) {
          return std::nullopt;
        }
        value.array.push_back(std::move(*element));
      }
      break;
    }
    default:
      throw std::runtime_error(std::string("resp: unknown type byte '") + type + "'");
  }
  pos = cursor;
  return value;
}

std::optional<RespValue> RespParser::TryParse() {
  size_t cursor = pos_;
  std::optional<RespValue> value = ParseAt(cursor);
  if (value.has_value()) {
    pos_ = cursor;
    Compact();
  }
  return value;
}

}  // namespace e2e
