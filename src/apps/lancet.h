// A Lancet-like open-loop load generator with exact latency measurement.
//
// Requests arrive as a Poisson process at a configured rate regardless of
// completions (open loop — queueing delays are visible, not masked). Every
// response records its ground-truth latency on the virtual clock; results
// are filtered to a measurement window after warmup. The client maintains
// an application HintTracker (create() at request creation, complete() when
// the response has been processed) that the stack shares with the server —
// the paper's §3.3 cooperative path.

#ifndef SRC_APPS_LANCET_H_
#define SRC_APPS_LANCET_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "src/apps/cost_profile.h"
#include "src/apps/messages.h"
#include "src/apps/workload.h"
#include "src/core/hints.h"
#include "src/sim/random.h"
#include "src/sim/simulator.h"
#include "src/sim/stats.h"
#include "src/tcp/endpoint.h"

namespace e2e {

class LancetClient {
 public:
  struct Config {
    double rate_rps = 10000;
    WorkloadMix mix = WorkloadMix::SetOnly16K();
    AppCosts costs = BareMetalClientCosts();
    Duration warmup = Duration::Millis(200);
    Duration measure = Duration::Millis(800);
    uint64_t seed = 1;
    bool use_hints = true;
    // Syscall batching (paper §3.3's caveat): coalesce up to this many
    // requests into one send() call; a partial batch flushes after
    // `pipeline_flush`. Depth 1 = one syscall per request.
    int pipeline_depth = 1;
    Duration pipeline_flush = Duration::Micros(100);
    // Crash recovery: when enabled and the supervisor reports the
    // connection lost (OnConnectionLost), the client retries connecting
    // with exponential backoff. Each attempt waits
    // backoff * (1 ± jitter), then backoff *= multiplier up to
    // max_backoff. Arrivals while disconnected fail immediately (open
    // loop: a real load generator's connect() would fail fast, not queue).
    struct ReconnectPolicy {
      bool enabled = false;
      Duration initial_backoff = Duration::Millis(1);
      Duration max_backoff = Duration::Millis(64);
      double multiplier = 2.0;
      double jitter = 0.2;  // Fractional spread around the nominal backoff.
    };
    ReconnectPolicy reconnect;
    // Self-detect silent peer death from the transport's own dead-peer
    // declaration (keepalive R2 / rto_give_up — DESIGN.md §15) instead of
    // relying on a supervisor's OnConnectionLost call. Off by default so
    // the faults harness's scripted crash choreography is unchanged; the
    // endpoint's detectors must also be enabled for anything to fire.
    bool detect_dead_peer = false;
  };

  LancetClient(Simulator* sim, TcpEndpoint* socket, const Config& config);

  // Begins generating load at the current virtual time. Arrivals stop after
  // warmup + measure; run the simulator a bit longer to drain responses.
  void Start();

  // Supplies the dial-out path for crash recovery: returns a freshly
  // connected endpoint (a *new* connection incarnation — never the old
  // conn_id, whose stale in-flight segments must keep missing) or nullptr
  // while the server is still down.
  using ConnectFn = std::function<TcpEndpoint*()>;
  void SetConnectFn(ConnectFn fn) { connect_fn_ = std::move(fn); }

  // Supervisor notification that the transport died (server crash). Fails
  // the pipeline and all in-flight requests (completing their hints so the
  // shared tracker's occupancy doesn't leak) and, if reconnect is enabled
  // and a ConnectFn is set, starts the backoff loop.
  void OnConnectionLost();

  // Observes every completed response as (completion time, latency µs),
  // including outside the measurement window — lets a driver bucket
  // latency into pre-crash / degraded / post-recovery phases.
  using LatencyObserver = std::function<void(TimePoint, double)>;
  void SetLatencyObserver(LatencyObserver fn) { latency_observer_ = std::move(fn); }

  bool connected() const { return !disconnected_; }

  struct Results {
    RunningStats latency_us;     // send() -> response read (ground truth).
    LogHistogram latency_hist{0.1, 1e9, 100};  // In microseconds.
    RunningStats sojourn_us;     // arrival -> response fully processed.
    // Component decomposition of the measured latency (all µs):
    RunningStats request_leg_us;   // send() -> server starts processing.
    RunningStats server_us;        // server processing incl. send syscall.
    RunningStats response_leg_us;  // server send() -> response read.
    uint64_t sent = 0;           // All requests sent (incl. outside window).
    uint64_t dropped = 0;        // Sends refused by a full socket buffer.
    uint64_t completed = 0;      // All responses processed.
    uint64_t measured = 0;       // Responses counted in the window.
    double offered_rps = 0;
    double achieved_rps = 0;     // Measured completions / window.
    // Crash recovery accounting:
    uint64_t failed_disconnected = 0;  // Arrivals failed while disconnected.
    uint64_t abandoned_on_crash = 0;   // In-flight/pipelined at loss time.
    uint64_t reconnect_attempts = 0;   // Dial-outs tried (incl. failures).
    uint64_t reconnects = 0;           // Successful reconnections.
    uint64_t transport_death_detections = 0;  // Self-detected via DeadPeerFn.
  };
  const Results& results() const { return results_; }

  HintTracker& hints() { return hints_; }
  uint64_t in_flight() const { return in_flight_; }

 private:
  void ScheduleNextArrival();
  void OnArrival();
  void FlushPipeline();
  void ScheduleReceiveWork();
  bool InMeasureWindow(TimePoint created) const;
  void BindSocket(TcpEndpoint* socket);
  void ScheduleReconnectAttempt();
  void TryReconnect();

  Simulator* sim_;
  TcpEndpoint* socket_;
  Config config_;
  WorkloadGenerator workload_;
  Rng rng_;
  HintTracker hints_;

  TimePoint start_time_;
  TimePoint arrivals_end_;
  TimePoint measure_start_;
  TimePoint measure_end_;
  bool started_ = false;

  bool recv_pending_ = false;
  std::vector<AppResponsePtr> recv_batch_;
  TimePoint recv_syscall_time_;

  std::vector<AppRequestPtr> pipeline_;  // Requests awaiting one send().
  EventId pipeline_timer_ = kInvalidEventId;

  uint64_t in_flight_ = 0;
  Results results_;

  ConnectFn connect_fn_;
  LatencyObserver latency_observer_;
  bool disconnected_ = false;
  Duration backoff_ = Duration::Zero();  // Next attempt's nominal wait.
  // Bumped on every connection loss. CPU work submitted before the loss
  // checks it on completion: the crash already wrote off those requests
  // (hints completed, in_flight_ zeroed), so a stale work item must not
  // account them a second time.
  uint64_t epoch_ = 0;
};

}  // namespace e2e

#endif  // SRC_APPS_LANCET_H_
