// A Redis-like key-value server application running on a simulated host.
//
// Event-loop model: a readable socket schedules one work item on the app
// core; the work drains all complete requests with one recv(), pays the
// per-request processing costs, then issues one send() per response —
// exactly the syscall pattern whose interaction with Nagle the paper
// studies. Whether those sends become one wire packet or many is decided by
// the TCP layer (Nagle on/off/cork-limit).

#ifndef SRC_APPS_REDIS_SERVER_H_
#define SRC_APPS_REDIS_SERVER_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "src/apps/cost_profile.h"
#include "src/apps/kv_store.h"
#include "src/apps/messages.h"
#include "src/sim/simulator.h"
#include "src/tcp/endpoint.h"

namespace e2e {

class RedisServerApp {
 public:
  struct Config {
    AppCosts costs = RedisServerCosts();
    // Bytes read per event-loop iteration (Redis reads bounded chunks, so
    // under backlog bytes stay in the kernel receive queue — which is what
    // lets the unread queue reflect application-induced queueing).
    uint64_t recv_chunk_bytes = 32768;
  };

  RedisServerApp(Simulator* sim, TcpEndpoint* socket, const Config& config);

  const VirtualKvStore& store() const { return store_; }
  // Direct store access, e.g. to prefill keys before a GET-bearing run.
  VirtualKvStore& mutable_store() { return store_; }

  struct Stats {
    uint64_t wakeups = 0;
    uint64_t requests = 0;
    uint64_t sets = 0;
    uint64_t gets = 0;
    uint64_t responses = 0;
    uint64_t max_batch = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  void ScheduleWork();
  void PumpRequests();

  Simulator* sim_;
  TcpEndpoint* socket_;
  Config config_;
  VirtualKvStore store_;
  bool work_pending_ = false;
  bool request_work_active_ = false;
  std::vector<AppRequestPtr> batch_;
  std::deque<AppRequestPtr> pending_requests_;
  Stats stats_;
};

}  // namespace e2e

#endif  // SRC_APPS_REDIS_SERVER_H_
