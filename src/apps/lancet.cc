#include "src/apps/lancet.h"

#include <cassert>
#include <utility>

namespace e2e {

LancetClient::LancetClient(Simulator* sim, TcpEndpoint* socket, const Config& config)
    : sim_(sim),
      socket_(socket),
      config_(config),
      workload_(config.mix, Rng(config.seed)),
      rng_(config.seed ^ 0x9e3779b97f4a7c15ULL),
      hints_(sim->Now()) {
  assert(sim_ != nullptr && socket_ != nullptr);
  assert(config_.rate_rps > 0);
  BindSocket(socket_);
}

void LancetClient::BindSocket(TcpEndpoint* socket) {
  assert(socket != nullptr);
  socket_ = socket;
  socket_->SetReadableCallback([this] { ScheduleReceiveWork(); });
  if (config_.use_hints) {
    socket_->SetHintTracker(&hints_);
  }
  if (config_.detect_dead_peer) {
    // Re-attached on every reconnect incarnation: a restarted server can
    // die silently too.
    socket_->SetDeadPeerCallback([this](const char*) {
      ++results_.transport_death_detections;
      OnConnectionLost();
    });
  }
}

void LancetClient::OnConnectionLost() {
  if (disconnected_) {
    return;
  }
  ++epoch_;
  disconnected_ = true;
  // Write off everything outstanding: pipelined requests that never hit
  // send(), bytes in the dead socket, and responses that will never come
  // back. Their hints complete now or the shared tracker's occupancy
  // (and so the paper's §3.3 queue estimate) would grow without bound.
  results_.abandoned_on_crash += in_flight_;
  hints_.Complete(sim_->Now(), static_cast<int64_t>(in_flight_));
  in_flight_ = 0;
  pipeline_.clear();
  if (pipeline_timer_ != kInvalidEventId) {
    sim_->Cancel(pipeline_timer_);
    pipeline_timer_ = kInvalidEventId;
  }
  if (config_.reconnect.enabled && connect_fn_) {
    backoff_ = config_.reconnect.initial_backoff;
    ScheduleReconnectAttempt();
  }
}

void LancetClient::ScheduleReconnectAttempt() {
  const double spread =
      1.0 + config_.reconnect.jitter * (2.0 * rng_.Uniform01() - 1.0);
  const Duration wait = Duration::MicrosF(backoff_.ToMicros() * spread);
  sim_->Schedule(wait, [this] { TryReconnect(); });
}

void LancetClient::TryReconnect() {
  if (!disconnected_) {
    return;
  }
  ++results_.reconnect_attempts;
  TcpEndpoint* fresh = connect_fn_();
  if (fresh == nullptr) {
    // Server still down: back off exponentially (jittered), capped.
    const Duration next =
        Duration::MicrosF(backoff_.ToMicros() * config_.reconnect.multiplier);
    backoff_ = next < config_.reconnect.max_backoff ? next : config_.reconnect.max_backoff;
    ScheduleReconnectAttempt();
    return;
  }
  BindSocket(fresh);
  disconnected_ = false;
  ++results_.reconnects;
  backoff_ = config_.reconnect.initial_backoff;
}

void LancetClient::Start() {
  assert(!started_);
  started_ = true;
  start_time_ = sim_->Now();
  measure_start_ = start_time_ + config_.warmup;
  measure_end_ = measure_start_ + config_.measure;
  arrivals_end_ = measure_end_;
  results_.offered_rps = config_.rate_rps;
  ScheduleNextArrival();
}

bool LancetClient::InMeasureWindow(TimePoint created) const {
  return created >= measure_start_ && created < measure_end_;
}

void LancetClient::ScheduleNextArrival() {
  const Duration gap = rng_.ExpInterarrival(config_.rate_rps);
  sim_->Schedule(gap, [this] {
    if (sim_->Now() >= arrivals_end_) {
      return;
    }
    OnArrival();
    ScheduleNextArrival();
  });
}

void LancetClient::OnArrival() {
  if (disconnected_) {
    // Open loop, honestly: while the server is down a real generator's
    // requests fail fast — they are not queued for replay after reconnect.
    ++results_.failed_disconnected;
    return;
  }
  auto request = std::make_shared<AppRequest>(workload_.Next());
  request->key_id = workload_.NextKeyId();
  request->created_at = sim_->Now();
  hints_.Create(sim_->Now());
  ++in_flight_;

  pipeline_.push_back(std::move(request));
  if (static_cast<int>(pipeline_.size()) >= config_.pipeline_depth) {
    if (pipeline_timer_ != kInvalidEventId) {
      sim_->Cancel(pipeline_timer_);
      pipeline_timer_ = kInvalidEventId;
    }
    FlushPipeline();
  } else if (pipeline_timer_ == kInvalidEventId) {
    pipeline_timer_ = sim_->Schedule(config_.pipeline_flush, [this] {
      pipeline_timer_ = kInvalidEventId;
      FlushPipeline();
    });
  }
}

void LancetClient::FlushPipeline() {
  if (pipeline_.empty()) {
    return;
  }
  auto batch = std::make_shared<std::vector<AppRequestPtr>>(std::move(pipeline_));
  pipeline_.clear();
  socket_->host()->app_core().Submit(
      [this, batch]() -> Duration {
        // Build every request, pay ONE send() syscall for the batch.
        Duration cost = config_.costs.syscall;
        for (const AppRequestPtr& request : *batch) {
          cost += config_.costs.MessageCost(request->WireSize());
        }
        return cost;
      },
      [this, batch, epoch = epoch_] {
        if (epoch != epoch_) {
          // Connection died while this send was queued on the app core;
          // the crash path already wrote these requests off.
          return;
        }
        if (config_.use_hints) {
          socket_->SetHintTracker(&hints_);
        }
        std::vector<TcpEndpoint::BatchItem> items(batch->size());
        for (size_t i = 0; i < batch->size(); ++i) {
          AppRequestPtr& request = (*batch)[i];
          request->sent_at = sim_->Now();
          items[i].len = request->WireSize();
          items[i].record.id = request->id;
          items[i].record.data = request;
        }
        if (socket_->SendBatch(std::move(items))) {
          results_.sent += batch->size();
        } else {
          // Socket buffer full (the connection is saturated past flow
          // control). Open loop: the requests are abandoned, not retried.
          results_.dropped += batch->size();
          for (size_t i = 0; i < batch->size(); ++i) {
            if (in_flight_ > 0) {
              --in_flight_;
            }
            hints_.Complete(sim_->Now());
          }
        }
      });
}

void LancetClient::ScheduleReceiveWork() {
  if (recv_pending_) {
    return;
  }
  recv_pending_ = true;
  socket_->host()->app_core().Submit(
      [this]() -> Duration {
        recv_syscall_time_ = sim_->Now();
        TcpEndpoint::RecvResult received = socket_->Recv();
        recv_batch_.clear();
        Duration cost = config_.costs.wakeup + config_.costs.syscall;
        for (MessageRecord& record : received.messages) {
          auto response = std::static_pointer_cast<AppResponse>(record.data);
          cost += config_.costs.MessageCost(response->WireSize());
          recv_batch_.push_back(std::move(response));
        }
        return cost;
      },
      [this, epoch = epoch_] {
        if (epoch != epoch_) {
          // These responses raced the crash; their requests were already
          // written off (hints completed), so don't account them twice.
          recv_batch_.clear();
          recv_pending_ = false;
          return;
        }
        const TimePoint done = sim_->Now();
        for (const AppResponsePtr& response : recv_batch_) {
          ++results_.completed;
          if (in_flight_ > 0) {
            --in_flight_;
          }
          hints_.Complete(done);
          const double observed_us = (recv_syscall_time_ - response->request_sent_at).ToMicros();
          if (latency_observer_) {
            latency_observer_(recv_syscall_time_, observed_us);
          }
          if (InMeasureWindow(response->request_created_at)) {
            ++results_.measured;
            const double latency_us = observed_us;
            const double sojourn_us = (done - response->request_created_at).ToMicros();
            results_.latency_us.Add(latency_us);
            results_.latency_hist.Add(latency_us);
            results_.sojourn_us.Add(sojourn_us);
            results_.request_leg_us.Add(
                (response->server_received_at - response->request_sent_at).ToMicros());
            results_.server_us.Add(
                (response->response_sent_at - response->server_received_at).ToMicros());
            results_.response_leg_us.Add(
                (recv_syscall_time_ - response->response_sent_at).ToMicros());
          }
        }
        recv_batch_.clear();
        recv_pending_ = false;
        if (results_.measured > 0) {
          results_.achieved_rps =
              static_cast<double>(results_.measured) / config_.measure.ToSeconds();
        }
        if (socket_->ReadableMessages() > 0) {
          ScheduleReceiveWork();
        }
      });
}

}  // namespace e2e
