// An in-memory key-value store with Redis-like semantics (string keys and
// values, SET/GET/DEL/EXISTS). Examples and tests run it against real
// payloads; the simulated server uses the size-only fast path so multi-
// gigabyte workloads do not copy real bytes.

#ifndef SRC_APPS_KV_STORE_H_
#define SRC_APPS_KV_STORE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>

namespace e2e {

class KvStore {
 public:
  void Set(std::string_view key, std::string value);
  std::optional<std::string_view> Get(std::string_view key) const;
  bool Del(std::string_view key);
  bool Exists(std::string_view key) const;
  size_t size() const { return map_.size(); }

  struct Stats {
    uint64_t sets = 0;
    uint64_t gets = 0;
    uint64_t hits = 0;
    uint64_t dels = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  std::unordered_map<std::string, std::string> map_;
  mutable Stats stats_;
};

// Size-only variant used by the simulated server: stores value lengths
// keyed by key id, so a GET can answer "found, N bytes" without materials.
class VirtualKvStore {
 public:
  void Set(uint64_t key_id, uint32_t value_len) {
    ++stats_.sets;
    sizes_[key_id] = value_len;
  }
  std::optional<uint32_t> Get(uint64_t key_id) const {
    ++stats_.gets;
    auto it = sizes_.find(key_id);
    if (it == sizes_.end()) {
      return std::nullopt;
    }
    ++stats_.hits;
    return it->second;
  }
  size_t size() const { return sizes_.size(); }
  const KvStore::Stats& stats() const { return stats_; }

 private:
  std::unordered_map<uint64_t, uint32_t> sizes_;
  mutable KvStore::Stats stats_;
};

}  // namespace e2e

#endif  // SRC_APPS_KV_STORE_H_
