// Wire packets exchanged between simulated hosts.
//
// The network layer is payload-agnostic: a `Packet` carries its wire size
// (for serialization timing) and an opaque payload owned via shared_ptr
// (the TCP layer stores a `TcpSegment` there). TSO super-segments carry
// pre-built slices: the stack pays its TX cost once for the super-segment
// and the NIC puts each MTU-sized slice on the wire individually.

#ifndef SRC_NET_PACKET_H_
#define SRC_NET_PACKET_H_

#include <cstdint>
#include <memory>
#include <vector>

namespace e2e {

// Ethernet + IP + TCP header overhead added to every wire packet.
inline constexpr size_t kWireHeaderBytes = 66;

class PacketPayload {
 public:
  virtual ~PacketPayload() = default;
};

struct Packet {
  uint64_t id = 0;
  size_t wire_bytes = 0;  // Full on-the-wire size including headers.
  // Destination host id, stamped by the sending TCP endpoint. Switched
  // fabrics (src/net/fabric) forward on it; point-to-point links ignore it.
  // 0 means "unaddressed" and never matches a forwarding-table entry.
  uint32_t dst_host = 0;
  // Source host id, stamped by the sending TCP endpoint alongside dst_host.
  // Multi-path fabrics hash (src_host, dst_host) — the flow key — to pick an
  // ECMP member deterministically, pinning every packet of a flow to one
  // path. 0 means "unknown"; such packets still forward (they hash like any
  // other value) but all share one ECMP path.
  uint32_t src_host = 0;
  // Set by the impairment engine's corruption stage: the packet keeps its
  // size (it occupies the wire and reaches the receiver) but the receiving
  // NIC's checksum validation drops it on arrival.
  bool corrupted = false;
  // ECN congestion-experienced mark, set by a switch port whose queue
  // occupancy exceeds its marking threshold.
  bool ecn_ce = false;
  std::shared_ptr<PacketPayload> payload;
  // Non-empty for TSO super-segments: the MTU-sized wire packets the NIC
  // emits instead of this packet.
  std::vector<Packet> slices;

  bool IsSuperSegment() const { return !slices.empty(); }
};

// Interface for components that accept delivered packets (NIC RX side).
class PacketSink {
 public:
  virtual ~PacketSink() = default;
  virtual void DeliverPacket(Packet packet) = 0;
};

}  // namespace e2e

#endif  // SRC_NET_PACKET_H_
