// A simulated host: an application core, a softirq core, and a NIC —
// mirroring the paper's setup where the application thread and the network
// stack's IRQ/softIRQ routines are pinned to dedicated cores.

#ifndef SRC_NET_HOST_H_
#define SRC_NET_HOST_H_

#include <memory>
#include <string>

#include "src/net/link.h"
#include "src/net/nic.h"
#include "src/sim/cpu.h"
#include "src/sim/simulator.h"

namespace e2e {

class Host {
 public:
  // `tx_link` is the link this host transmits on; its NIC is registered as
  // the sink of the peer's link by the topology builder (or, on a switched
  // fabric, the link feeds a switch that forwards on `Packet::dst_host`).
  // `id` is the fabric-wide host address; 0 (the point-to-point default)
  // means the host is unaddressed.
  Host(Simulator* sim, Link* tx_link, const Nic::Config& nic_config, std::string name,
       uint32_t id = 0)
      : id_(id),
        name_(std::move(name)),
        app_core_(sim, name_ + ".app"),
        softirq_core_(sim, name_ + ".softirq"),
        nic_(sim, &softirq_core_, tx_link, nic_config, name_ + ".nic") {}

  uint32_t id() const { return id_; }
  const std::string& name() const { return name_; }
  CpuCore& app_core() { return app_core_; }
  CpuCore& softirq_core() { return softirq_core_; }
  Nic& nic() { return nic_; }

  // The simulation shard this host's event processing belongs to (0 = the
  // global domain, i.e. an unpartitioned run). Set by the topology builder;
  // drivers wrap host-poking setup in DomainScope(sim, host.domain()).
  uint32_t domain() const { return domain_; }
  void set_domain(uint32_t domain) { domain_ = domain; }

 private:
  uint32_t id_;
  uint32_t domain_ = 0;
  std::string name_;
  CpuCore app_core_;
  CpuCore softirq_core_;
  Nic nic_;
};

}  // namespace e2e

#endif  // SRC_NET_HOST_H_
