// A unidirectional point-to-point link with finite bandwidth, fixed
// propagation delay, FIFO serialization and optional i.i.d. loss.
//
// Bandwidth, propagation, and loss probability are mutable at run time (see
// the setters below) so a `LinkScheduler` can script time-varying behavior;
// changes apply to packets handed to Send() afterwards — bits already on the
// wire keep their original timing. Richer impairments (bursty loss,
// reordering, duplication, corruption, jitter) live in `src/net/impair` and
// install as a PacketSink between this link and the receiving NIC.

#ifndef SRC_NET_LINK_H_
#define SRC_NET_LINK_H_

#include <cstdint>
#include <string>

#include "src/net/impair/loss_model.h"
#include "src/net/packet.h"
#include "src/sim/random.h"
#include "src/sim/simulator.h"
#include "src/sim/time.h"

namespace e2e {

class Link {
 public:
  struct Config {
    // Bits per second; 0 means infinite (serialization takes zero time).
    double bandwidth_bps = 10e9;
    Duration propagation = Duration::Micros(5);
    double loss_probability = 0.0;
  };

  Link(Simulator* sim, const Config& config, Rng rng, std::string name);

  void SetSink(PacketSink* sink) { sink_ = sink; }

  // The simulation domain delivery fires in — the receiving component's
  // shard. 0 (the default) keeps delivery in the global domain, which is
  // exactly the pre-sharding behavior for unpartitioned runs.
  void set_dst_domain(uint32_t domain) { dst_domain_ = domain; }
  uint32_t dst_domain() const { return dst_domain_; }

  // Starts (or queues) serialization of `packet`; returns the time at which
  // the last bit leaves the sender (used by the NIC for TX completions).
  TimePoint Send(Packet packet);

  // Run-time parameter rewrites (the LinkScheduler's hook points).
  void set_bandwidth_bps(double bps);
  void set_propagation(Duration propagation);
  void set_loss_probability(double p);
  double bandwidth_bps() const { return config_.bandwidth_bps; }
  Duration propagation() const { return config_.propagation; }
  double loss_probability() const { return loss_.probability(); }

  uint64_t packets_sent() const { return packets_sent_; }
  uint64_t packets_dropped() const { return packets_dropped_; }
  uint64_t bytes_sent() const { return bytes_sent_; }
  const std::string& name() const { return name_; }

 private:
  Simulator* sim_;
  Config config_;
  Rng rng_;
  // The single i.i.d. loss code path, shared with the impairment engine's
  // IidLossStage (see src/net/impair/loss_model.h).
  IidLossModel loss_;
  std::string name_;
  PacketSink* sink_ = nullptr;
  uint32_t dst_domain_ = 0;
  TimePoint tx_available_;  // When the wire frees up.
  uint64_t packets_sent_ = 0;
  uint64_t packets_dropped_ = 0;
  uint64_t bytes_sent_ = 0;
};

}  // namespace e2e

#endif  // SRC_NET_LINK_H_
