// Simulated NIC: TX ring with completions, TSO slicing, and NAPI-style RX.
//
// TX: the stack enqueues (super-)segments; each is serialized onto the link
// (TSO super-segments slice into MTU packets on the wire) and a TX
// completion fires when the last bit leaves. Completions are processed in
// the softirq poll loop and reported to the stack — this is what Linux's
// auto-corking keys off ("buffer bytes until previous packets are freed from
// the NIC's transmit ring after a completion interrupt").
//
// RX: arriving packets join a backlog drained by a NAPI-like poll running on
// the host's softirq core. Entering the poll from idle pays an interrupt
// overhead; while the backlog stays non-empty, polling continues at a lower
// per-iteration cost, so bursts amortize interrupt work exactly as NAPI
// does. Per-packet stack processing cost is supplied by the TCP layer.

#ifndef SRC_NET_NIC_H_
#define SRC_NET_NIC_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "src/net/link.h"
#include "src/net/packet.h"
#include "src/sim/cpu.h"
#include "src/sim/simulator.h"
#include "src/sim/time.h"

namespace e2e {

class Nic : public PacketSink {
 public:
  struct Config {
    size_t tx_ring_size = 1024;       // Max in-flight (uncompleted) TX segments.
    int napi_budget = 64;             // Max packets per poll iteration.
    Duration irq_overhead = Duration::MicrosF(1.0);    // Idle -> poll entry.
    Duration poll_continue_cost = Duration::Nanos(150);  // Subsequent iterations.
    Duration tx_completion_cost = Duration::Nanos(200);  // Per completed TX segment.
  };

  // Cost of stack processing for one poll batch (charged to softirq). The
  // batch form lets the stack price GRO-style coalescing: contiguous
  // same-flow packets in one poll cost one stack traversal.
  using RxBatchCostFn = std::function<Duration(const std::vector<Packet>&)>;
  // Invoked (from softirq context) for each received packet.
  using RxHandler = std::function<void(const Packet&)>;
  // Invoked (from softirq context) after `n` TX segments completed.
  using TxCompleteHandler = std::function<void(size_t n)>;

  Nic(Simulator* sim, CpuCore* softirq, Link* tx_link, const Config& config, std::string name);

  void SetRx(RxBatchCostFn cost_fn, RxHandler handler);
  void SetTxCompleteHandler(TxCompleteHandler handler) { tx_complete_ = std::move(handler); }

  // Enqueues a (super-)segment for transmission. Returns false when the TX
  // ring is full (callers should treat this as backpressure).
  bool Transmit(Packet packet);

  // Super-segments handed to the NIC whose TX completion has not fired yet.
  size_t tx_in_flight() const { return tx_in_flight_; }

  // PacketSink: the RX side of this NIC (sink of the incoming link).
  void DeliverPacket(Packet packet) override;

  uint64_t rx_packets() const { return rx_packets_; }
  // Arrivals discarded by hardware checksum validation (corrupted on the
  // wire by an impairment stage); they never reach the softirq backlog.
  uint64_t rx_checksum_drops() const { return rx_checksum_drops_; }
  uint64_t tx_segments() const { return tx_segments_; }
  uint64_t tx_wire_packets() const { return tx_wire_packets_; }
  uint64_t polls() const { return polls_; }
  uint64_t irqs() const { return irqs_; }
  const std::string& name() const { return name_; }

 private:
  void SchedulePoll();

  Simulator* sim_;
  CpuCore* softirq_;
  Link* tx_link_;
  Config config_;
  std::string name_;

  RxBatchCostFn rx_cost_;
  RxHandler rx_handler_;
  TxCompleteHandler tx_complete_;

  std::deque<Packet> rx_backlog_;
  size_t tx_done_backlog_ = 0;
  size_t tx_in_flight_ = 0;
  bool poll_scheduled_ = false;
  bool in_poll_chain_ = false;

  // Per-poll scratch, captured at poll start and consumed at poll end.
  std::vector<Packet> poll_batch_;
  size_t poll_tx_done_ = 0;

  uint64_t rx_packets_ = 0;
  uint64_t rx_checksum_drops_ = 0;
  uint64_t tx_segments_ = 0;
  uint64_t tx_wire_packets_ = 0;
  uint64_t polls_ = 0;
  uint64_t irqs_ = 0;
};

}  // namespace e2e

#endif  // SRC_NET_NIC_H_
