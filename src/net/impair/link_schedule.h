// Time-varying links: scripted rewrites of a Link's bandwidth, propagation
// delay, and i.i.d. loss probability at fixed simulation times.
//
// A `LinkSchedule` is a declarative list of steps; `LinkScheduler` arms them
// on the simulator and applies each to the target link when its time comes.
// Profile builders cover the common shapes — a one-off step, a linear ramp
// (discretized into N steps), and a square wave (e.g. a flapping link that
// alternates between a healthy and a degraded parameter set).
//
// Semantics of a bandwidth change: it applies to packets whose serialization
// starts after the step fires; bits already on the wire keep their original
// timing (the simulator never rewrites scheduled deliveries).

#ifndef SRC_NET_IMPAIR_LINK_SCHEDULE_H_
#define SRC_NET_IMPAIR_LINK_SCHEDULE_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "src/net/link.h"
#include "src/sim/simulator.h"
#include "src/sim/time.h"

namespace e2e {

// One scripted rewrite. Unset fields leave the link's current value alone.
struct LinkScheduleStep {
  TimePoint at;
  std::optional<double> bandwidth_bps;
  std::optional<Duration> propagation;
  std::optional<double> loss_probability;
};

struct LinkSchedule {
  std::vector<LinkScheduleStep> steps;

  bool empty() const { return steps.empty(); }

  LinkSchedule& Add(LinkScheduleStep step) {
    steps.push_back(step);
    return *this;
  }

  // Appends another schedule's steps (they need not be sorted; the scheduler
  // orders them at Start()).
  LinkSchedule& Merge(const LinkSchedule& other);

  // A single step to `target` at `target.at`.
  static LinkSchedule Step(LinkScheduleStep target);

  // Linear interpolation from `from` to `to` over [start, start + duration],
  // discretized into `num_steps` equal steps (>= 1; the last step lands
  // exactly on `to`). Only fields set in BOTH endpoints are interpolated.
  static LinkSchedule Ramp(TimePoint start, Duration duration, int num_steps,
                           const LinkScheduleStep& from, const LinkScheduleStep& to);

  // Alternates `hi` and `lo` starting with `lo` at `start`, switching every
  // `half_period`, for `half_cycles` switches total. half_cycles = 2 is one
  // full flap (degrade, then recover).
  static LinkSchedule SquareWave(TimePoint start, Duration half_period, int half_cycles,
                                 const LinkScheduleStep& lo, const LinkScheduleStep& hi);
};

// Arms a schedule against one link. The scheduler must outlive the pending
// events (the topology owns it alongside the link).
class LinkScheduler {
 public:
  LinkScheduler(Simulator* sim, Link* link, LinkSchedule schedule);

  // Schedules every step at its absolute time. Steps at or before Now()
  // apply immediately, in order.
  void Start();

  uint64_t steps_applied() const { return steps_applied_; }

 private:
  void Apply(const LinkScheduleStep& step);

  Simulator* sim_;
  Link* link_;
  LinkSchedule schedule_;
  uint64_t steps_applied_ = 0;
};

}  // namespace e2e

#endif  // SRC_NET_IMPAIR_LINK_SCHEDULE_H_
