#include "src/net/impair/link_schedule.h"

#include <algorithm>
#include <cassert>

namespace e2e {

LinkSchedule& LinkSchedule::Merge(const LinkSchedule& other) {
  steps.insert(steps.end(), other.steps.begin(), other.steps.end());
  return *this;
}

LinkSchedule LinkSchedule::Step(LinkScheduleStep target) {
  LinkSchedule schedule;
  schedule.steps.push_back(target);
  return schedule;
}

LinkSchedule LinkSchedule::Ramp(TimePoint start, Duration duration, int num_steps,
                                const LinkScheduleStep& from, const LinkScheduleStep& to) {
  assert(num_steps >= 1);
  LinkSchedule schedule;
  for (int i = 1; i <= num_steps; ++i) {
    const double frac = static_cast<double>(i) / static_cast<double>(num_steps);
    LinkScheduleStep step;
    step.at = start + duration * frac;
    if (from.bandwidth_bps.has_value() && to.bandwidth_bps.has_value()) {
      step.bandwidth_bps = *from.bandwidth_bps + (*to.bandwidth_bps - *from.bandwidth_bps) * frac;
    }
    if (from.propagation.has_value() && to.propagation.has_value()) {
      step.propagation = *from.propagation + (*to.propagation - *from.propagation) * frac;
    }
    if (from.loss_probability.has_value() && to.loss_probability.has_value()) {
      step.loss_probability =
          *from.loss_probability + (*to.loss_probability - *from.loss_probability) * frac;
    }
    schedule.steps.push_back(step);
  }
  return schedule;
}

LinkSchedule LinkSchedule::SquareWave(TimePoint start, Duration half_period, int half_cycles,
                                      const LinkScheduleStep& lo, const LinkScheduleStep& hi) {
  assert(half_cycles >= 1);
  assert(half_period > Duration::Zero());
  LinkSchedule schedule;
  for (int i = 0; i < half_cycles; ++i) {
    LinkScheduleStep step = (i % 2 == 0) ? lo : hi;
    step.at = start + half_period * static_cast<int64_t>(i);
    schedule.steps.push_back(step);
  }
  return schedule;
}

LinkScheduler::LinkScheduler(Simulator* sim, Link* link, LinkSchedule schedule)
    : sim_(sim), link_(link), schedule_(std::move(schedule)) {
  assert(sim_ != nullptr && link_ != nullptr);
  std::stable_sort(schedule_.steps.begin(), schedule_.steps.end(),
                   [](const LinkScheduleStep& a, const LinkScheduleStep& b) { return a.at < b.at; });
}

void LinkScheduler::Start() {
  for (const LinkScheduleStep& step : schedule_.steps) {
    if (step.at <= sim_->Now()) {
      Apply(step);
    } else {
      sim_->ScheduleAt(step.at, [this, step] { Apply(step); });
    }
  }
}

void LinkScheduler::Apply(const LinkScheduleStep& step) {
  if (step.bandwidth_bps.has_value()) {
    link_->set_bandwidth_bps(*step.bandwidth_bps);
  }
  if (step.propagation.has_value()) {
    link_->set_propagation(*step.propagation);
  }
  if (step.loss_probability.has_value()) {
    link_->set_loss_probability(*step.loss_probability);
  }
  ++steps_applied_;
}

}  // namespace e2e
