#include "src/net/impair/loss_model.h"

#include <cassert>

namespace e2e {

IidLossModel::IidLossModel(double probability) { set_probability(probability); }

void IidLossModel::set_probability(double probability) {
  assert(probability >= 0 && probability < 1);
  probability_ = probability;
}

bool IidLossModel::ShouldDrop(Rng& rng) {
  return probability_ > 0 && rng.Bernoulli(probability_);
}

double GilbertElliottConfig::StationaryBadProbability() const {
  const double denom = p_good_to_bad + p_bad_to_good;
  if (denom <= 0) {
    return 0.0;
  }
  return p_good_to_bad / denom;
}

double GilbertElliottConfig::StationaryLossRate() const {
  const double pi_bad = StationaryBadProbability();
  return (1.0 - pi_bad) * loss_good + pi_bad * loss_bad;
}

GilbertElliottConfig GilbertElliottConfig::FromBurstAndRate(double mean_burst_packets,
                                                            double stationary_loss_rate) {
  assert(mean_burst_packets >= 1.0);
  assert(stationary_loss_rate >= 0 && stationary_loss_rate < 1);
  GilbertElliottConfig config;
  config.loss_good = 0.0;
  config.loss_bad = 1.0;
  config.p_bad_to_good = 1.0 / mean_burst_packets;
  // pi_bad = p / (p + r) = rate  =>  p = rate * r / (1 - rate).
  config.p_good_to_bad =
      stationary_loss_rate * config.p_bad_to_good / (1.0 - stationary_loss_rate);
  return config;
}

GilbertElliottModel::GilbertElliottModel(const GilbertElliottConfig& config) : config_(config) {
  assert(config.p_good_to_bad >= 0 && config.p_good_to_bad <= 1);
  assert(config.p_bad_to_good > 0 && config.p_bad_to_good <= 1);
  assert(config.loss_good >= 0 && config.loss_good <= 1);
  assert(config.loss_bad >= 0 && config.loss_bad <= 1);
}

bool GilbertElliottModel::ShouldDrop(Rng& rng) {
  const double loss = bad_ ? config_.loss_bad : config_.loss_good;
  // Always burn exactly two draws per packet (loss decision + transition) so
  // the consumption pattern — and therefore every downstream decision — is
  // independent of the state sequence. Deterministic replay depends on it.
  const bool drop = rng.Bernoulli(loss);
  const double transition = bad_ ? config_.p_bad_to_good : config_.p_good_to_bad;
  if (rng.Bernoulli(transition)) {
    bad_ = !bad_;
  }
  return drop;
}

}  // namespace e2e
