#include "src/net/impair/impairment.h"

#include <algorithm>
#include <cassert>

#include "src/sim/logging.h"

namespace e2e {

void GilbertElliottLossStage::DeliverPacket(Packet packet) {
  ++counters_.packets_in;
  if (model_.ShouldDrop(rng_)) {
    ++counters_.dropped;
    E2E_DEBUG(sim_->Now(), "impair", "ge_loss: dropped packet %lu",
              static_cast<unsigned long>(packet.id));
    return;
  }
  Forward(std::move(packet));
}

void IidLossStage::DeliverPacket(Packet packet) {
  ++counters_.packets_in;
  if (model_.ShouldDrop(rng_)) {
    ++counters_.dropped;
    return;
  }
  Forward(std::move(packet));
}

void CorruptStage::DeliverPacket(Packet packet) {
  ++counters_.packets_in;
  if (rng_.Bernoulli(probability_)) {
    packet.corrupted = true;
    ++counters_.corrupted;
  }
  Forward(std::move(packet));
}

void DuplicateStage::DeliverPacket(Packet packet) {
  ++counters_.packets_in;
  const bool dup = rng_.Bernoulli(probability_);
  if (dup) {
    ++counters_.duplicated;
    Packet copy = packet;  // Payload is shared_ptr-owned; the copy aliases it.
    Forward(std::move(packet));
    Forward(std::move(copy));
    return;
  }
  Forward(std::move(packet));
}

ReorderStage::ReorderStage(Simulator* sim, Rng rng, const ReorderConfig& config)
    : ImpairmentStage(sim, rng), config_(config) {
  assert(config_.probability >= 0 && config_.probability < 1);
  assert(config_.gap >= 1);
  assert(config_.max_hold > Duration::Zero());
}

void ReorderStage::DeliverPacket(Packet packet) {
  ++counters_.packets_in;
  if (rng_.Bernoulli(config_.probability)) {
    held_.push_back(Held{next_token_, std::move(packet), 0, kInvalidEventId});
    const uint64_t token = next_token_++;
    held_.back().timeout = sim_->Schedule(config_.max_hold, [this, token] {
      ReleaseByToken(token);
    });
    return;
  }
  Forward(std::move(packet));
  // The packet that just passed overtakes every held packet; release (in
  // hold order) the ones whose gap is now satisfied.
  for (Held& h : held_) {
    ++h.passed;
  }
  while (!held_.empty() && held_.front().passed >= config_.gap) {
    ReleaseFront(/*overtaken=*/true);
  }
}

void ReorderStage::ReleaseFront(bool overtaken) {
  Held h = std::move(held_.front());
  held_.pop_front();
  if (h.timeout != kInvalidEventId) {
    sim_->Cancel(h.timeout);
  }
  if (overtaken || h.passed > 0) {
    ++counters_.reordered;  // At least one packet actually got ahead of it.
  }
  Forward(std::move(h.packet));
}

void ReorderStage::ReleaseByToken(uint64_t token) {
  // Timeout release: FIFO among held packets, so everything held before the
  // timed-out packet goes out first. ReleaseFront cancels each entry's
  // timeout; for the entry whose timeout is firing right now the cancel is
  // a harmless no-op.
  while (!held_.empty() && held_.front().token <= token) {
    ReleaseFront(/*overtaken=*/false);
  }
}

Duration JitterStage::DrawDelay() {
  switch (config_.dist) {
    case JitterConfig::Dist::kUniform:
      return Duration::SecondsF(rng_.Uniform(0.0, 2.0 * config_.mean.ToSeconds()));
    case JitterConfig::Dist::kExponential:
      return Duration::SecondsF(rng_.Exponential(config_.mean.ToSeconds()));
    case JitterConfig::Dist::kNormal: {
      const double d = rng_.Normal(config_.mean.ToSeconds(), config_.stddev.ToSeconds());
      return Duration::SecondsF(std::max(0.0, d));
    }
  }
  return Duration::Zero();
}

void JitterStage::DeliverPacket(Packet packet) {
  ++counters_.packets_in;
  TimePoint release = sim_->Now() + DrawDelay();
  if (config_.preserve_order && release < last_release_) {
    release = last_release_;
  }
  last_release_ = release;
  sim_->ScheduleAt(release, [this, packet = std::move(packet)]() mutable {
    Forward(std::move(packet));
  });
}

ImpairmentChain::ImpairmentChain(Simulator* sim, const ImpairmentConfig& config, Rng rng,
                                 std::string name)
    : name_(std::move(name)) {
  assert(sim != nullptr);
  // Fixed stage order; each stage forks its own generator in this order.
  if (config.gilbert_elliott.has_value()) {
    stages_.push_back(
        std::make_unique<GilbertElliottLossStage>(sim, rng.Fork(), *config.gilbert_elliott));
  }
  if (config.iid_loss > 0) {
    stages_.push_back(std::make_unique<IidLossStage>(sim, rng.Fork(), config.iid_loss));
  }
  if (config.corrupt_probability > 0) {
    stages_.push_back(std::make_unique<CorruptStage>(sim, rng.Fork(), config.corrupt_probability));
  }
  if (config.duplicate_probability > 0) {
    stages_.push_back(
        std::make_unique<DuplicateStage>(sim, rng.Fork(), config.duplicate_probability));
  }
  if (config.reorder.has_value()) {
    stages_.push_back(std::make_unique<ReorderStage>(sim, rng.Fork(), *config.reorder));
  }
  if (config.jitter.has_value()) {
    stages_.push_back(std::make_unique<JitterStage>(sim, rng.Fork(), *config.jitter));
  }
  for (size_t i = 0; i + 1 < stages_.size(); ++i) {
    stages_[i]->SetNext(stages_[i + 1].get());
  }
}

void ImpairmentChain::SetSink(PacketSink* sink) {
  sink_ = sink;
  if (!stages_.empty()) {
    stages_.back()->SetNext(sink);
  }
}

void ImpairmentChain::DeliverPacket(Packet packet) {
  if (!stages_.empty()) {
    stages_.front()->DeliverPacket(std::move(packet));
    return;
  }
  if (sink_ != nullptr) {
    sink_->DeliverPacket(std::move(packet));
  }
}

ImpairmentSnapshot ImpairmentChain::Snapshot() const {
  ImpairmentSnapshot snapshot;
  snapshot.reserve(stages_.size());
  for (const auto& stage : stages_) {
    snapshot.emplace_back(stage->kind(), stage->counters());
  }
  return snapshot;
}

uint64_t ImpairmentChain::TotalDropped() const {
  uint64_t total = 0;
  for (const auto& stage : stages_) {
    total += stage->counters().dropped;
  }
  return total;
}

uint64_t ImpairmentChain::TotalReordered() const {
  uint64_t total = 0;
  for (const auto& stage : stages_) {
    total += stage->counters().reordered;
  }
  return total;
}

uint64_t ImpairmentChain::TotalDuplicated() const {
  uint64_t total = 0;
  for (const auto& stage : stages_) {
    total += stage->counters().duplicated;
  }
  return total;
}

uint64_t ImpairmentChain::TotalCorrupted() const {
  uint64_t total = 0;
  for (const auto& stage : stages_) {
    total += stage->counters().corrupted;
  }
  return total;
}

}  // namespace e2e
