// Per-packet loss decision models.
//
// Both the plain link (`Link::Config::loss_probability`) and the impairment
// stages draw their drop decisions from the models here, so there is exactly
// one loss code path in the simulator. Models are pure decision functions
// over an externally owned `Rng`: callers keep ownership of the generator so
// the per-component seeding contract (deterministic replay) is preserved.

#ifndef SRC_NET_IMPAIR_LOSS_MODEL_H_
#define SRC_NET_IMPAIR_LOSS_MODEL_H_

#include "src/sim/random.h"

namespace e2e {

// Independent (i.i.d.) Bernoulli loss. Draws from the rng only when the
// probability is positive, so a lossless link consumes no random numbers —
// identical traces with and without the loss feature compiled in.
class IidLossModel {
 public:
  explicit IidLossModel(double probability = 0.0);

  bool ShouldDrop(Rng& rng);

  double probability() const { return probability_; }
  void set_probability(double probability);

 private:
  double probability_ = 0.0;
};

// Two-state Markov (Gilbert-Elliott) bursty loss. Each packet is dropped
// with the loss probability of the current state; the chain then transitions
// with the configured per-packet probabilities. The classic Gilbert model is
// loss_good = 0, loss_bad = 1.
struct GilbertElliottConfig {
  double p_good_to_bad = 0.0;  // Per-packet P(good -> bad).
  double p_bad_to_good = 1.0;  // Per-packet P(bad -> good).
  double loss_good = 0.0;      // Drop probability while in the good state.
  double loss_bad = 1.0;       // Drop probability while in the bad state.

  // Expected number of packets spent in the bad state per visit.
  double MeanBurstPackets() const { return 1.0 / p_bad_to_good; }

  // Stationary probability of being in the bad state: p / (p + r).
  double StationaryBadProbability() const;

  // Long-run fraction of packets dropped (the analytic target the empirical
  // rate must converge to; checked by tests/net/impair_test.cc).
  double StationaryLossRate() const;

  // Builds a classic Gilbert config (loss_good=0, loss_bad=1) with the given
  // mean burst length (>= 1 packet) and stationary loss rate (< 1).
  static GilbertElliottConfig FromBurstAndRate(double mean_burst_packets,
                                               double stationary_loss_rate);
};

class GilbertElliottModel {
 public:
  explicit GilbertElliottModel(const GilbertElliottConfig& config);

  bool ShouldDrop(Rng& rng);

  bool in_bad_state() const { return bad_; }
  const GilbertElliottConfig& config() const { return config_; }

 private:
  GilbertElliottConfig config_;
  bool bad_ = false;  // Start in the good state.
};

}  // namespace e2e

#endif  // SRC_NET_IMPAIR_LOSS_MODEL_H_
