// Composable packet-impairment pipeline.
//
// An `ImpairmentChain` installs between a Link and the receiving NIC via the
// existing `PacketSink` interface:
//
//   link.SetSink(&chain);  chain.SetSink(&nic);
//
// Stages are instantiated from a declarative `ImpairmentConfig` and compose
// in a fixed order (mirroring netem's internal ordering):
//
//   Gilbert-Elliott loss -> i.i.d. loss -> corruption -> duplication
//     -> reordering -> jitter
//
// Determinism contract: every stage owns an `Rng` forked from one base
// generator in stage order, and consumes a state-independent number of draws
// per packet, so a given (config, seed) pair replays byte-identically. All
// deferred deliveries go through the simulator's event queue — no wall-clock
// or unordered containers anywhere in the pipeline.
//
// Each stage counts packets in/out plus its own impairment events
// (dropped / corrupted / duplicated / reordered); chains snapshot all stage
// counters for the testbed collector and bench reports.

#ifndef SRC_NET_IMPAIR_IMPAIRMENT_H_
#define SRC_NET_IMPAIR_IMPAIRMENT_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "src/net/impair/link_schedule.h"
#include "src/net/impair/loss_model.h"
#include "src/net/packet.h"
#include "src/sim/random.h"
#include "src/sim/simulator.h"
#include "src/sim/time.h"

namespace e2e {

struct ImpairmentCounters {
  uint64_t packets_in = 0;
  uint64_t packets_out = 0;
  uint64_t dropped = 0;
  uint64_t corrupted = 0;
  uint64_t duplicated = 0;
  uint64_t reordered = 0;

  ImpairmentCounters operator-(const ImpairmentCounters& o) const {
    ImpairmentCounters d;
    d.packets_in = packets_in - o.packets_in;
    d.packets_out = packets_out - o.packets_out;
    d.dropped = dropped - o.dropped;
    d.corrupted = corrupted - o.corrupted;
    d.duplicated = duplicated - o.duplicated;
    d.reordered = reordered - o.reordered;
    return d;
  }
};

// A named per-stage counter snapshot, e.g. {"ge_loss", {...}}.
using ImpairmentSnapshot = std::vector<std::pair<std::string, ImpairmentCounters>>;

struct ReorderConfig {
  // Chance that a packet is held back so later packets overtake it.
  double probability = 0.0;
  // The held packet is re-injected after this many packets pass it.
  int gap = 3;
  // Safety valve: a held packet is released after this long even when too
  // little traffic follows it (so a trailing packet cannot be parked
  // forever on an idling connection).
  Duration max_hold = Duration::Millis(1);
};

struct JitterConfig {
  enum class Dist {
    kUniform,      // Uniform in [0, 2*mean): mean extra delay = `mean`.
    kExponential,  // Exponential with the given mean.
    kNormal,       // Normal(mean, stddev), clamped at zero.
  };
  Dist dist = Dist::kUniform;
  Duration mean = Duration::Micros(10);
  Duration stddev = Duration::Zero();  // kNormal only.
  // Clamp release times to be monotone so jitter alone never reorders
  // (models a FIFO queue whose residence time varies). Disable to let large
  // draws overtake small ones.
  bool preserve_order = true;
};

// Declarative spec for one direction of a path. Unset/zero members
// instantiate no stage, so a default config is a transparent wire.
struct ImpairmentConfig {
  double iid_loss = 0.0;
  std::optional<GilbertElliottConfig> gilbert_elliott;
  double corrupt_probability = 0.0;
  double duplicate_probability = 0.0;
  std::optional<ReorderConfig> reorder;
  std::optional<JitterConfig> jitter;
  // Scripted parameter rewrites for this direction's link (applied by the
  // topology builder, not by the chain: the schedule mutates the Link).
  LinkSchedule schedule;

  // True when at least one packet-path stage would be instantiated.
  bool AnyStage() const {
    return iid_loss > 0 || gilbert_elliott.has_value() || corrupt_probability > 0 ||
           duplicate_probability > 0 || reorder.has_value() || jitter.has_value();
  }
  bool Any() const { return AnyStage() || !schedule.empty(); }
};

// Base class: a PacketSink that forwards to the next stage in the chain.
class ImpairmentStage : public PacketSink {
 public:
  ImpairmentStage(Simulator* sim, Rng rng) : sim_(sim), rng_(rng) {}
  ~ImpairmentStage() override = default;

  virtual const char* kind() const = 0;

  void SetNext(PacketSink* next) { next_ = next; }
  const ImpairmentCounters& counters() const { return counters_; }

 protected:
  void Forward(Packet packet) {
    ++counters_.packets_out;
    if (next_ != nullptr) {
      next_->DeliverPacket(std::move(packet));
    }
  }

  Simulator* sim_;
  Rng rng_;
  ImpairmentCounters counters_;

 private:
  PacketSink* next_ = nullptr;
};

class GilbertElliottLossStage : public ImpairmentStage {
 public:
  GilbertElliottLossStage(Simulator* sim, Rng rng, const GilbertElliottConfig& config)
      : ImpairmentStage(sim, rng), model_(config) {}
  const char* kind() const override { return "ge_loss"; }
  void DeliverPacket(Packet packet) override;
  const GilbertElliottModel& model() const { return model_; }

 private:
  GilbertElliottModel model_;
};

class IidLossStage : public ImpairmentStage {
 public:
  IidLossStage(Simulator* sim, Rng rng, double probability)
      : ImpairmentStage(sim, rng), model_(probability) {}
  const char* kind() const override { return "iid_loss"; }
  void DeliverPacket(Packet packet) override;

 private:
  IidLossModel model_;
};

// Flips `Packet::corrupted`; the receiving NIC's checksum validation drops
// the packet after it has consumed wire and arrival resources.
class CorruptStage : public ImpairmentStage {
 public:
  CorruptStage(Simulator* sim, Rng rng, double probability)
      : ImpairmentStage(sim, rng), probability_(probability) {}
  const char* kind() const override { return "corrupt"; }
  void DeliverPacket(Packet packet) override;

 private:
  double probability_;
};

// Emits a second copy immediately behind the original (payload is shared;
// the TCP receiver treats the copy as a duplicate segment and re-acks).
class DuplicateStage : public ImpairmentStage {
 public:
  DuplicateStage(Simulator* sim, Rng rng, double probability)
      : ImpairmentStage(sim, rng), probability_(probability) {}
  const char* kind() const override { return "duplicate"; }
  void DeliverPacket(Packet packet) override;

 private:
  double probability_;
};

// Holds selected packets until `gap` later packets have overtaken them (or
// `max_hold` expires), then re-injects. Held packets release in hold order,
// so the stage cannot invert two held packets against each other.
class ReorderStage : public ImpairmentStage {
 public:
  ReorderStage(Simulator* sim, Rng rng, const ReorderConfig& config);
  const char* kind() const override { return "reorder"; }
  void DeliverPacket(Packet packet) override;

  size_t held() const { return held_.size(); }

 private:
  struct Held {
    uint64_t token;
    Packet packet;
    int passed = 0;
    EventId timeout = kInvalidEventId;
  };
  void ReleaseFront(bool overtaken);
  void ReleaseByToken(uint64_t token);

  ReorderConfig config_;
  std::deque<Held> held_;
  uint64_t next_token_ = 1;
};

// Adds a random extra delay; with preserve_order (default) release times are
// clamped monotone so the stage is a pure delay-variation element.
class JitterStage : public ImpairmentStage {
 public:
  JitterStage(Simulator* sim, Rng rng, const JitterConfig& config)
      : ImpairmentStage(sim, rng), config_(config) {}
  const char* kind() const override { return "jitter"; }
  void DeliverPacket(Packet packet) override;

 private:
  Duration DrawDelay();

  JitterConfig config_;
  TimePoint last_release_;
};

// The composed pipeline. Transparent (zero overhead beyond a virtual call)
// when the config instantiates no stage.
class ImpairmentChain : public PacketSink {
 public:
  // `rng` seeds the whole chain; each stage gets an independent fork, in
  // stage order, so adding a stage never perturbs the draws of another.
  ImpairmentChain(Simulator* sim, const ImpairmentConfig& config, Rng rng, std::string name);

  // The downstream receiver (normally the peer host's NIC).
  void SetSink(PacketSink* sink);

  void DeliverPacket(Packet packet) override;

  size_t num_stages() const { return stages_.size(); }
  const ImpairmentStage& stage(size_t i) const { return *stages_[i]; }
  const std::string& name() const { return name_; }

  // Per-stage named counters, in chain order.
  ImpairmentSnapshot Snapshot() const;

  // Sums one field across stages (convenience for reports).
  uint64_t TotalDropped() const;
  uint64_t TotalReordered() const;
  uint64_t TotalDuplicated() const;
  uint64_t TotalCorrupted() const;

 private:
  std::string name_;
  std::vector<std::unique_ptr<ImpairmentStage>> stages_;
  PacketSink* sink_ = nullptr;  // Used directly when the chain is empty.
};

}  // namespace e2e

#endif  // SRC_NET_IMPAIR_IMPAIRMENT_H_
