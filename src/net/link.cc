#include "src/net/link.h"

#include <algorithm>
#include <cassert>
#include <utility>

#include "src/obs/trace.h"
#include "src/sim/logging.h"

namespace e2e {

Link::Link(Simulator* sim, const Config& config, Rng rng, std::string name)
    : sim_(sim),
      config_(config),
      rng_(rng),
      loss_(config.loss_probability),
      name_(std::move(name)) {
  assert(sim_ != nullptr);
  assert(config.bandwidth_bps >= 0);
}

void Link::set_bandwidth_bps(double bps) {
  assert(bps >= 0);
  config_.bandwidth_bps = bps;
}

void Link::set_propagation(Duration propagation) {
  assert(propagation >= Duration::Zero());
  config_.propagation = propagation;
}

void Link::set_loss_probability(double p) {
  loss_.set_probability(p);
  config_.loss_probability = p;
}

TimePoint Link::Send(Packet packet) {
  assert(!packet.IsSuperSegment());  // The NIC slices super-segments.
  const TimePoint start = std::max(sim_->Now(), tx_available_);
  Duration serialization = Duration::Zero();
  if (config_.bandwidth_bps > 0) {
    serialization =
        Duration::SecondsF(static_cast<double>(packet.wire_bytes) * 8.0 / config_.bandwidth_bps);
  }
  const TimePoint tx_end = start + serialization;
  tx_available_ = tx_end;
  ++packets_sent_;
  bytes_sent_ += packet.wire_bytes;

  if (loss_.ShouldDrop(rng_)) {
    ++packets_dropped_;
    E2E_DEBUG(sim_->Now(), "link", "%s: dropped packet %lu (%zuB)", name_.c_str(),
              static_cast<unsigned long>(packet.id), packet.wire_bytes);
    if (TraceRecorder* tr = TraceIf(TraceCategory::kPacket)) {
      TraceEvent e;
      e.time = start;
      e.category = TraceCategory::kPacket;
      e.name = "drop";
      e.track = tr->Track(name_);
      e.k1 = "packet_id";
      e.v1 = static_cast<double>(packet.id);
      e.k2 = "wire_bytes";
      e.v2 = static_cast<double>(packet.wire_bytes);
      tr->Record(e);
    }
    return tx_end;
  }

  if (TraceRecorder* tr = TraceIf(TraceCategory::kPacket)) {
    // The packet's life on the wire: serialization + propagation as a span.
    TraceEvent e;
    e.time = start;
    e.duration = (tx_end + config_.propagation) - start;
    e.category = TraceCategory::kPacket;
    e.name = "wire";
    e.track = tr->Track(name_);
    e.k1 = "packet_id";
    e.v1 = static_cast<double>(packet.id);
    e.k2 = "wire_bytes";
    e.v2 = static_cast<double>(packet.wire_bytes);
    tr->Record(e);
  }

  // Delivery fires in the receiver's domain. For an unpartitioned run (or a
  // link whose endpoints share a shard) this is a plain local push; for a
  // cross-shard link the engine buffers it for the epoch barrier, which is
  // safe because propagation >= the simulator's lookahead window.
  const TimePoint arrival = tx_end + config_.propagation;
  sim_->ScheduleCrossAt(dst_domain_, arrival, [this, packet = std::move(packet)]() mutable {
    if (sink_ != nullptr) {
      sink_->DeliverPacket(std::move(packet));
    }
  });
  return tx_end;
}

}  // namespace e2e
