#include "src/net/fabric/switch.h"

#include <algorithm>
#include <cassert>
#include <utility>

#include "src/sim/logging.h"
#include "src/sim/random.h"

namespace e2e {

SwitchPort::SwitchPort(Simulator* sim, Link* egress, const SwitchPortConfig& config,
                       std::string name)
    : sim_(sim), egress_(egress), config_(config), name_(std::move(name)) {
  assert(sim_ != nullptr && egress_ != nullptr);
}

void SwitchPort::Enqueue(Packet packet) {
  ++counters_.packets_in;
  const size_t arriving = packet.wire_bytes;
  const bool over_bytes =
      config_.buffer_bytes > 0 && queue_bytes_ + arriving > config_.buffer_bytes;
  const bool over_packets =
      config_.buffer_packets > 0 && queue_packets_ + 1 > config_.buffer_packets;
  if (over_bytes || over_packets) {
    ++counters_.tail_drops;
    counters_.dropped_bytes += arriving;
    if (over_bytes) {
      ++counters_.byte_limit_drops;
    } else {
      ++counters_.packet_limit_drops;
    }
    E2E_DEBUG(sim_->Now(), "switch", "%s: tail-drop packet %lu (%zuB, occupancy %zuB/%zup)",
              name_.c_str(), static_cast<unsigned long>(packet.id), arriving, queue_bytes_,
              queue_packets_);
    if (tap_ != nullptr) {
      tap_->OnSwitchPacket(packet, SwitchTapEvent{this, /*dropped=*/true, /*marked=*/false});
    }
    return;
  }
  queue_bytes_ += arriving;
  ++queue_packets_;
  counters_.max_queue_bytes = std::max<uint64_t>(counters_.max_queue_bytes, queue_bytes_);
  counters_.max_queue_packets = std::max<uint64_t>(counters_.max_queue_packets, queue_packets_);
  bool marked = false;
  if (config_.ecn_threshold_bytes > 0 && queue_bytes_ > config_.ecn_threshold_bytes) {
    packet.ecn_ce = true;
    marked = true;
    ++counters_.ecn_marked;
    counters_.ecn_marked_bytes += arriving;
  }
  if (tap_ != nullptr) {
    tap_->OnSwitchPacket(packet, SwitchTapEvent{this, /*dropped=*/false, marked});
  }
  queue_.push_back(std::move(packet));
  MaybeStartService();
}

void SwitchPort::MaybeStartService() {
  if (serving_ || queue_.empty()) {
    return;
  }
  serving_ = true;
  Packet packet = std::move(queue_.front());
  queue_.pop_front();
  const size_t bytes = packet.wire_bytes;
  ++counters_.packets_out;
  counters_.bytes_out += bytes;
  const TimePoint tx_end = egress_->Send(std::move(packet));
  // The buffer slot frees when the last bit is serialized; the next packet
  // starts at that instant, keeping the egress link's own queue empty.
  sim_->ScheduleAt(tx_end, [this, bytes] {
    assert(queue_bytes_ >= bytes && queue_packets_ > 0);
    queue_bytes_ -= bytes;
    --queue_packets_;
    serving_ = false;
    MaybeStartService();
  });
}

Switch::Switch(Simulator* sim, std::string name) : sim_(sim), name_(std::move(name)) {
  assert(sim_ != nullptr);
}

size_t Switch::AddPort(Link* egress, const SwitchPortConfig& config, std::string name) {
  ports_.push_back(std::make_unique<SwitchPort>(sim_, egress, config, std::move(name)));
  ports_.back()->SetTap(tap_);
  return ports_.size() - 1;
}

void Switch::SetRoute(uint32_t dst_host, size_t port) {
  assert(port < ports_.size());
  routes_[dst_host] = port;
}

SwitchPort* Switch::RouteFor(uint32_t dst_host) {
  const auto it = routes_.find(dst_host);
  return it == routes_.end() ? nullptr : ports_[it->second].get();
}

void Switch::AddEcmpMember(size_t port, uint64_t member_key) {
  assert(port < ports_.size());
  ecmp_members_.push_back(EcmpMember{port, member_key});
}

SwitchPort* Switch::EcmpRouteFor(uint32_t src_host, uint32_t dst_host) {
  if (ecmp_members_.empty()) {
    return nullptr;
  }
  // Rendezvous (highest-random-weight) hashing: score every member with a
  // keyed SplitMix64 mix of the flow key and keep the argmax. Ties break to
  // the earlier member, but with 64-bit scores they are effectively
  // impossible. O(members) per miss — spine fan-outs are single digits.
  size_t best = 0;
  uint64_t best_score = DeriveSeed(ecmp_members_[0].key, src_host, dst_host);
  for (size_t i = 1; i < ecmp_members_.size(); ++i) {
    const uint64_t score = DeriveSeed(ecmp_members_[i].key, src_host, dst_host);
    if (score > best_score) {
      best = i;
      best_score = score;
    }
  }
  return ports_[ecmp_members_[best].port].get();
}

void Switch::DeliverPacket(Packet packet) {
  SwitchPort* out = RouteFor(packet.dst_host);
  if (out == nullptr) {
    out = EcmpRouteFor(packet.src_host, packet.dst_host);
    if (out != nullptr) {
      ++ecmp_forwards_;
    }
  }
  if (out == nullptr) {
    ++forwarding_misses_;
    E2E_DEBUG(sim_->Now(), "switch", "%s: no route for host %u, dropping packet %lu",
              name_.c_str(), packet.dst_host, static_cast<unsigned long>(packet.id));
    if (tap_ != nullptr) {
      tap_->OnSwitchPacket(packet,
                           SwitchTapEvent{nullptr, /*dropped=*/true, /*marked=*/false});
    }
    return;
  }
  out->Enqueue(std::move(packet));
}

void Switch::SetTap(SwitchTap* tap) {
  tap_ = tap;
  for (auto& port : ports_) {
    port->SetTap(tap);
  }
}

}  // namespace e2e
