// In-switch passive flow diagnosis (DESIGN.md §14), after Dapper
// (Ghasemi/Benson/Rexford): a per-flow shadow-state engine attached to a
// Switch as a SwitchTap that reconstructs sender state purely from the
// headers of forwarded segments — inferred cwnd via flight-size tracking,
// rwnd from advertised windows, RTT from seq/ack matching, retransmission
// and ECE/CWR observation — and classifies every flow once per measurement
// epoch as
//
//   sender-limited    the application isn't filling the window,
//   network-limited   loss / CE marks / ECE echoes / queue backpressure
//                     on the flow's egress port, or
//   receiver-limited  the advertised window is the binding constraint
//                     (flight pinned at rwnd, or zero-window stalls).
//
// A "flow" is one direction of one connection: (conn_id, from_a) keys the
// data sender; segments from the opposite direction feed the same record's
// ack/rwnd/ECE state. Epochs are aligned to an absolute grid
// [k*epoch, (k+1)*epoch) and closed lazily — on the next packet for the
// flow or on an explicit ClosedVerdict() query — so the diagnoser never
// schedules simulator events.
//
// Passivity contract (inherited from SwitchTap): observation mutates only
// the diagnoser's own shadow state. Attaching a FlowDiagnoser to a switch
// leaves every simulated byte identical to an untapped run; `Peek()` and
// `Fresh()` are const reads safe to call from TimeSeriesSampler gauges.
//
// When the flow negotiates TCP options the diagnoser reads them too:
// SACK blocks on reverse-direction acks are direct evidence of loss or
// reordering on the data path (network-limited), and the timestamp echo
// (TSval -> TSecr) yields forward half-RTT samples that are Karn-safe by
// construction — the echo identifies the exact transmission, so the probe
// does not need the karn_dirty retransmission guard.
//
// Known blind spots vs Dapper (see DESIGN.md §14): single-switch vantage
// (no cross-switch aggregation), and delayed-ack-bound receivers are only
// caught when they surface as rwnd pressure or zero-window stalls.

#ifndef SRC_NET_FABRIC_DIAG_FLOW_DIAG_H_
#define SRC_NET_FABRIC_DIAG_FLOW_DIAG_H_

#include <cstdint>
#include <map>
#include <string>
#include <utility>

#include "src/net/fabric/switch.h"
#include "src/net/packet.h"
#include "src/sim/simulator.h"
#include "src/sim/time.h"

namespace e2e {

enum class FlowLimit : uint8_t {
  kIdle = 0,      // No data observed in the epoch: nothing to diagnose.
  kSender = 1,    // Application-limited: window open, flight small.
  kNetwork = 2,   // Loss / marks / echoes / egress-port backpressure.
  kReceiver = 3,  // Advertised window is the binding constraint.
};
inline constexpr size_t kNumFlowLimits = 4;

const char* FlowLimitName(FlowLimit limit);

struct DiagConfig {
  // Classification granularity; epochs align to the absolute grid
  // [k*epoch, (k+1)*epoch).
  Duration epoch = Duration::Millis(1);
  // Flight at or above this fraction of the epoch's smallest advertised
  // window reads as rwnd-bound (receiver-limited).
  double rwnd_fill_frac = 0.85;
  // Egress-port occupancy above this fraction of the port's reference
  // capacity (ECN threshold when configured, else the byte buffer) counts
  // as backpressure — network-limited evidence even between loss events.
  double backpressure_frac = 0.5;
  // A flow's diagnosis is "fresh" while a segment of the flow was observed
  // within this bound; the health chain's diag signal keys off this.
  Duration freshness_bound = Duration::Millis(5);
  // Shadow-state table cap (Dapper's heavy-hitter budget): segments of
  // flows beyond this are counted in untracked_packets() and ignored.
  size_t max_flows = 4096;
};

// Evidence accumulated over one epoch, reset at every epoch boundary.
struct DiagEpochEvidence {
  uint64_t data_packets = 0;
  uint64_t data_bytes = 0;
  uint64_t acks = 0;
  uint64_t retransmits = 0;        // Data segments not advancing the stream.
  uint64_t ece_acks = 0;           // Reverse-direction ECE echoes.
  uint64_t cwr_data = 0;           // Sender-announced window reductions.
  uint64_t ce_marked = 0;          // Marked at *this* switch.
  uint64_t drops = 0;              // Tail-dropped at this switch.
  uint64_t zero_window_acks = 0;
  uint64_t backpressure_packets = 0;
  uint64_t sack_acks = 0;          // Reverse acks carrying SACK blocks.
  uint64_t sack_blocks = 0;        // Total blocks across those acks.
  uint64_t max_flight_bytes = 0;   // Peak (highest data end − highest ack).
  uint64_t min_rwnd_bytes = 0;     // Smallest advertised window (0 if none).
};

// One closed epoch's classification.
struct FlowVerdict {
  FlowLimit limit = FlowLimit::kIdle;
  TimePoint epoch_end{};  // Exclusive end of the classified epoch.
  DiagEpochEvidence evidence;
};

// Cumulative per-flow tallies (never reset).
struct FlowDiagCounters {
  uint64_t epochs_by_limit[kNumFlowLimits] = {};
  uint64_t data_packets = 0;
  uint64_t data_bytes = 0;
  uint64_t acks = 0;
  uint64_t retransmits = 0;
  uint64_t ece_acks = 0;
  uint64_t cwr_data = 0;
  uint64_t ce_marked = 0;
  uint64_t drops = 0;
  uint64_t zero_window_acks = 0;
  uint64_t sack_acks = 0;
  uint64_t rtt_samples = 0;
  uint64_t ts_rtt_samples = 0;  // Subset of rtt_samples from the ts echo.
};

// The header fields the switch can observe on one forwarded segment —
// exactly what DecodeSegmentHeader yields at an endpoint (the codec
// observation tests prove the parity). Extracted from the packet payload
// in flow_diag.cc so this header stays free of tcp/ includes.
struct TcpSegmentView {
  uint64_t conn_id = 0;
  bool from_a = false;
  uint32_t seq = 0;
  uint32_t ack = 0;
  uint32_t len = 0;
  uint32_t window = 0;
  uint32_t flags = 0;
  bool has_ts = false;      // RFC 7323 timestamps present.
  uint32_t tsval = 0;
  uint32_t tsecr = 0;
  uint32_t sack_blocks = 0;  // RFC 2018 block count (0 = no SACK option).
};

class FlowDiagnoser : public SwitchTap {
 public:
  // Const view of a flow's live shadow state, for gauges and the health
  // signal. Reading it never rolls epochs.
  struct FlowSnapshot {
    bool valid = false;              // Flow has been observed at all.
    FlowLimit last_limit = FlowLimit::kIdle;  // Last non-idle verdict.
    TimePoint last_observed{};
    uint64_t inferred_cwnd_bytes = 0;  // Peak flight of last data epoch.
    uint64_t current_flight_bytes = 0;
    uint64_t last_rwnd_bytes = 0;
    double srtt_us = 0;  // EWMA of inferred RTT (0 until the first sample).
  };

  // Cumulative classified-epoch tallies per egress port (by port name;
  // "" collects flows whose egress was never matched).
  struct PortTally {
    uint64_t epochs_by_limit[kNumFlowLimits] = {};
  };

  explicit FlowDiagnoser(Simulator* sim, const DiagConfig& config = {});

  // SwitchTap: one call per packet offered to the tapped switch.
  void OnSwitchPacket(const Packet& packet, const SwitchTapEvent& event) override;

  // Closes every epoch of the flow that ended at or before `now` and
  // returns the most recently closed verdict. A flow never observed (or
  // with no closed epoch yet) returns a kIdle verdict with epoch_end zero.
  FlowVerdict ClosedVerdict(uint64_t conn_id, bool from_a, TimePoint now);

  // Const reads — safe from sampler gauges; no epoch rollover.
  FlowSnapshot Peek(uint64_t conn_id, bool from_a) const;
  bool Fresh(uint64_t conn_id, bool from_a, TimePoint now) const;
  const FlowDiagCounters* CountersFor(uint64_t conn_id, bool from_a) const;

  const std::map<std::string, PortTally>& port_tallies() const { return port_tallies_; }
  const DiagConfig& config() const { return config_; }
  size_t num_flows() const { return flows_.size(); }
  uint64_t non_tcp_packets() const { return non_tcp_packets_; }
  uint64_t untracked_packets() const { return untracked_packets_; }

 private:
  struct Flow {
    // 64-bit unwrapped stream tracking (both sides start at offset 0).
    bool seen_data = false;
    uint64_t highest_data_end = 0;  // Unwrap reference for data seqs.
    bool seen_ack = false;
    uint64_t highest_ack = 0;       // Unwrap reference for acks.
    uint64_t last_rwnd = 0;
    TimePoint last_observed{};
    std::string data_port;  // Name of the last egress port for data.

    int64_t epoch_index = -1;  // Open epoch; -1 until first observation.
    DiagEpochEvidence epoch;
    bool has_verdict = false;
    FlowVerdict last_verdict;

    // Snapshot fields updated on non-idle epoch close.
    FlowLimit last_data_limit = FlowLimit::kIdle;
    uint64_t inferred_cwnd_bytes = 0;

    // RTT probes: one outstanding per half-path, Karn-skipped across
    // retransmissions. fwd = data past the switch until the matching ack
    // returns (switch→receiver→switch); rev = an ack-advance until the
    // next new data it clocks out (switch→sender→switch).
    bool probe_fwd_active = false;
    uint64_t probe_fwd_target = 0;
    TimePoint probe_fwd_start{};
    bool probe_rev_active = false;
    uint64_t probe_rev_ack = 0;
    TimePoint probe_rev_start{};
    bool karn_dirty = false;  // Retransmit since the probes were armed.
    // Timestamp-echo forward probe: Karn-safe (the echo names the exact
    // transmission), so it keeps sampling through retransmission storms
    // where the seq/ack probes go quiet.
    bool ts_probe_active = false;
    uint32_t ts_probe_val = 0;
    TimePoint ts_probe_start{};
    double srtt_fwd_us = -1;
    double srtt_rev_us = -1;

    FlowDiagCounters counters;
    uint32_t trace_track = 0;  // Lazily created; 0 = not yet assigned.
  };

  using FlowKey = std::pair<uint64_t, uint8_t>;  // (conn_id, data dir).

  // Finds or creates the record; nullptr when the table is full.
  Flow* FlowFor(uint64_t conn_id, bool from_a);
  const Flow* PeekFlow(uint64_t conn_id, bool from_a) const;

  int64_t EpochIndex(TimePoint t) const;
  // Closes every epoch strictly before the one containing `now`.
  void Roll(Flow& flow, const FlowKey& key, TimePoint now);
  void CloseEpoch(Flow& flow, const FlowKey& key);
  FlowLimit Classify(const Flow& flow) const;

  void ObserveData(Flow& flow, const FlowKey& key, const TcpSegmentView& seg,
                   const SwitchTapEvent& event, TimePoint now);
  void ObserveAck(Flow& flow, const FlowKey& key, const TcpSegmentView& seg, TimePoint now);
  void AddRttSample(Flow& flow, double* srtt_us, Duration sample);

  Simulator* sim_;
  DiagConfig config_;
  // Ordered map: deterministic iteration for any future exporter.
  std::map<FlowKey, Flow> flows_;
  std::map<std::string, PortTally> port_tallies_;
  uint64_t non_tcp_packets_ = 0;
  uint64_t untracked_packets_ = 0;
};

}  // namespace e2e

#endif  // SRC_NET_FABRIC_DIAG_FLOW_DIAG_H_
