#include "src/net/fabric/diag/flow_diag.h"

#include <algorithm>
#include <cassert>

#include "src/obs/trace.h"
#include "src/tcp/segment.h"
#include "src/tcp/sequence.h"

namespace e2e {

const char* FlowLimitName(FlowLimit limit) {
  switch (limit) {
    case FlowLimit::kIdle:
      return "idle";
    case FlowLimit::kSender:
      return "sender";
    case FlowLimit::kNetwork:
      return "network";
    case FlowLimit::kReceiver:
      return "receiver";
  }
  return "?";
}

FlowDiagnoser::FlowDiagnoser(Simulator* sim, const DiagConfig& config)
    : sim_(sim), config_(config) {
  assert(sim_ != nullptr);
  assert(config_.epoch > Duration::Zero());
}

int64_t FlowDiagnoser::EpochIndex(TimePoint t) const {
  return t.nanos() / config_.epoch.nanos();
}

FlowDiagnoser::Flow* FlowDiagnoser::FlowFor(uint64_t conn_id, bool from_a) {
  const FlowKey key{conn_id, static_cast<uint8_t>(from_a ? 1 : 0)};
  auto it = flows_.find(key);
  if (it != flows_.end()) {
    return &it->second;
  }
  if (flows_.size() >= config_.max_flows) {
    return nullptr;
  }
  return &flows_[key];
}

const FlowDiagnoser::Flow* FlowDiagnoser::PeekFlow(uint64_t conn_id, bool from_a) const {
  const FlowKey key{conn_id, static_cast<uint8_t>(from_a ? 1 : 0)};
  const auto it = flows_.find(key);
  return it == flows_.end() ? nullptr : &it->second;
}

void FlowDiagnoser::OnSwitchPacket(const Packet& packet, const SwitchTapEvent& event) {
  const auto* seg = dynamic_cast<const TcpSegment*>(packet.payload.get());
  if (seg == nullptr) {
    ++non_tcp_packets_;
    return;
  }
  const TimePoint now = sim_->Now();
  TcpSegmentView view;
  view.conn_id = seg->conn_id;
  view.from_a = seg->from_a;
  view.seq = seg->seq;
  view.ack = seg->ack;
  view.len = static_cast<uint32_t>(seg->len);
  view.window = seg->window;
  view.flags = seg->flags;
  if (seg->ts.has_value()) {
    view.has_ts = true;
    view.tsval = seg->ts->tsval;
    view.tsecr = seg->ts->tsecr;
  }
  view.sack_blocks = static_cast<uint32_t>(seg->sack.size());

  // The segment is a *data* observation for the flow sending in its own
  // direction, and an *ack* observation for the opposite flow (every
  // stamped segment carries an ack; piggybacked data acks included).
  if (view.len > 0) {
    if (Flow* flow = FlowFor(view.conn_id, view.from_a)) {
      Roll(*flow, {view.conn_id, static_cast<uint8_t>(view.from_a ? 1 : 0)}, now);
      ObserveData(*flow, {view.conn_id, static_cast<uint8_t>(view.from_a ? 1 : 0)}, view,
                  event, now);
    } else {
      ++untracked_packets_;
    }
  }
  if ((view.flags & kFlagAck) != 0) {
    if (Flow* flow = FlowFor(view.conn_id, !view.from_a)) {
      Roll(*flow, {view.conn_id, static_cast<uint8_t>(view.from_a ? 0 : 1)}, now);
      ObserveAck(*flow, {view.conn_id, static_cast<uint8_t>(view.from_a ? 0 : 1)}, view, now);
    } else if (view.len == 0) {
      ++untracked_packets_;
    }
  }
}

void FlowDiagnoser::ObserveData(Flow& flow, const FlowKey& key, const TcpSegmentView& seg,
                                const SwitchTapEvent& event, TimePoint now) {
  (void)key;
  flow.last_observed = now;
  const uint64_t seq_abs = UnwrapSeq(seg.seq, flow.highest_data_end);
  const uint64_t seq_end = seq_abs + seg.len;

  ++flow.epoch.data_packets;
  flow.epoch.data_bytes += seg.len;
  ++flow.counters.data_packets;
  flow.counters.data_bytes += seg.len;

  const bool retransmit = flow.seen_data && seq_end <= flow.highest_data_end;
  if (retransmit) {
    ++flow.epoch.retransmits;
    ++flow.counters.retransmits;
    flow.karn_dirty = true;
  } else {
    // New data: advances the stream high-water mark. If an ack-advance
    // probe is armed and this data was clocked out by it, close the
    // sender-side half-RTT sample.
    if (flow.probe_rev_active && seq_abs >= flow.probe_rev_ack) {
      if (!flow.karn_dirty) {
        AddRttSample(flow, &flow.srtt_rev_us, now - flow.probe_rev_start);
      }
      flow.probe_rev_active = false;
    }
    flow.highest_data_end = std::max(flow.highest_data_end, seq_end);
    flow.seen_data = true;
  }

  if ((seg.flags & kFlagCwr) != 0) {
    ++flow.epoch.cwr_data;
    ++flow.counters.cwr_data;
  }
  if (event.dropped) {
    ++flow.epoch.drops;
    ++flow.counters.drops;
  }
  if (event.marked) {
    ++flow.epoch.ce_marked;
    ++flow.counters.ce_marked;
  }
  if (!event.dropped && event.port != nullptr) {
    flow.data_port = event.port->name();
    const SwitchPortConfig& pc = event.port->config();
    const size_t reference =
        pc.ecn_threshold_bytes > 0 ? pc.ecn_threshold_bytes : pc.buffer_bytes;
    if (reference > 0 && static_cast<double>(event.port->queue_bytes()) >
                             config_.backpressure_frac * static_cast<double>(reference)) {
      ++flow.epoch.backpressure_packets;
    }
  }

  // Flight: bytes past the switch not yet acked past it.
  if (flow.seen_ack && flow.highest_data_end > flow.highest_ack) {
    flow.epoch.max_flight_bytes =
        std::max(flow.epoch.max_flight_bytes, flow.highest_data_end - flow.highest_ack);
  } else if (!flow.seen_ack) {
    flow.epoch.max_flight_bytes = std::max(flow.epoch.max_flight_bytes, flow.highest_data_end);
  }

  // Arm the receiver-side half-RTT probe: this data's end until the ack
  // covering it comes back through the switch.
  if (!retransmit && !flow.probe_fwd_active) {
    flow.probe_fwd_active = true;
    flow.probe_fwd_target = seq_end;
    flow.probe_fwd_start = now;
    flow.karn_dirty = false;
  }

  // Timestamp probe: armed on any data segment (retransmits included —
  // the echo identifies this exact transmission, so Karn's rule is
  // satisfied by construction rather than by skipping).
  if (seg.has_ts && !flow.ts_probe_active) {
    flow.ts_probe_active = true;
    flow.ts_probe_val = seg.tsval;
    flow.ts_probe_start = now;
  }
}

void FlowDiagnoser::ObserveAck(Flow& flow, const FlowKey& key, const TcpSegmentView& seg,
                               TimePoint now) {
  (void)key;
  flow.last_observed = now;
  const uint64_t ack_abs = UnwrapSeq(seg.ack, flow.highest_ack);

  ++flow.epoch.acks;
  ++flow.counters.acks;
  flow.last_rwnd = seg.window;
  if (flow.epoch.min_rwnd_bytes == 0 || seg.window < flow.epoch.min_rwnd_bytes) {
    flow.epoch.min_rwnd_bytes = seg.window;
  }
  if (seg.window == 0) {
    ++flow.epoch.zero_window_acks;
    ++flow.counters.zero_window_acks;
  }
  if ((seg.flags & kFlagEce) != 0) {
    ++flow.epoch.ece_acks;
    ++flow.counters.ece_acks;
  }
  if (seg.sack_blocks > 0) {
    // A SACK block on the reverse path is the receiver reporting a hole:
    // direct loss/reordering evidence for this flow's data path.
    ++flow.epoch.sack_acks;
    flow.epoch.sack_blocks += seg.sack_blocks;
    ++flow.counters.sack_acks;
  }
  if (seg.has_ts && seg.tsecr != 0 && flow.ts_probe_active &&
      static_cast<int32_t>(seg.tsecr - flow.ts_probe_val) >= 0) {
    // The echo covers the probed transmission; no karn_dirty guard needed.
    AddRttSample(flow, &flow.srtt_fwd_us, now - flow.ts_probe_start);
    ++flow.counters.ts_rtt_samples;
    flow.ts_probe_active = false;
  }

  const bool advanced = !flow.seen_ack || ack_abs > flow.highest_ack;
  if (advanced) {
    if (flow.probe_fwd_active && ack_abs >= flow.probe_fwd_target) {
      if (!flow.karn_dirty) {
        AddRttSample(flow, &flow.srtt_fwd_us, now - flow.probe_fwd_start);
      }
      flow.probe_fwd_active = false;
    }
    flow.highest_ack = std::max(flow.highest_ack, ack_abs);
    flow.seen_ack = true;
    // Arm the sender-side half-RTT probe: this ack until the new data it
    // clocks out — meaningful only while the sender keeps the pipe busy;
    // Karn-skipped like the forward probe.
    if (flow.highest_data_end > flow.highest_ack && !flow.probe_rev_active) {
      flow.probe_rev_active = true;
      flow.probe_rev_ack = flow.highest_ack;
      flow.probe_rev_start = now;
    }
  }
}

void FlowDiagnoser::AddRttSample(Flow& flow, double* srtt_us, Duration sample) {
  const double us = sample.ToMicros();
  *srtt_us = *srtt_us < 0 ? us : *srtt_us + (us - *srtt_us) / 8.0;
  ++flow.counters.rtt_samples;
}

void FlowDiagnoser::Roll(Flow& flow, const FlowKey& key, TimePoint now) {
  const int64_t idx = EpochIndex(now);
  if (flow.epoch_index < 0) {
    flow.epoch_index = idx;
    return;
  }
  while (flow.epoch_index < idx) {
    CloseEpoch(flow, key);
    ++flow.epoch_index;
  }
}

FlowLimit FlowDiagnoser::Classify(const Flow& flow) const {
  const DiagEpochEvidence& e = flow.epoch;
  if (e.data_packets == 0) {
    return FlowLimit::kIdle;
  }
  if (e.retransmits > 0 || e.ece_acks > 0 || e.cwr_data > 0 || e.ce_marked > 0 ||
      e.drops > 0 || e.backpressure_packets > 0 || e.sack_acks > 0) {
    return FlowLimit::kNetwork;
  }
  const uint64_t rwnd = e.min_rwnd_bytes > 0 ? e.min_rwnd_bytes : flow.last_rwnd;
  if (e.zero_window_acks > 0 ||
      (rwnd > 0 && static_cast<double>(e.max_flight_bytes) >=
                       config_.rwnd_fill_frac * static_cast<double>(rwnd))) {
    return FlowLimit::kReceiver;
  }
  return FlowLimit::kSender;
}

void FlowDiagnoser::CloseEpoch(Flow& flow, const FlowKey& key) {
  const FlowLimit limit = Classify(flow);
  flow.last_verdict.limit = limit;
  flow.last_verdict.epoch_end =
      TimePoint::FromNanos((flow.epoch_index + 1) * config_.epoch.nanos());
  flow.last_verdict.evidence = flow.epoch;
  flow.has_verdict = true;
  ++flow.counters.epochs_by_limit[static_cast<size_t>(limit)];
  ++port_tallies_[flow.data_port].epochs_by_limit[static_cast<size_t>(limit)];
  if (limit != FlowLimit::kIdle) {
    flow.last_data_limit = limit;
    flow.inferred_cwnd_bytes = flow.epoch.max_flight_bytes;
    if (TraceRecorder* tr = TraceIf(TraceCategory::kDiag)) {
      if (flow.trace_track == 0) {
        flow.trace_track = tr->Track("diag/conn" + std::to_string(key.first) +
                                     (key.second != 0 ? "/a" : "/b"));
      }
      TraceEvent event;
      event.time = flow.last_verdict.epoch_end;
      event.category = TraceCategory::kDiag;
      event.name = FlowLimitName(limit);
      event.track = flow.trace_track;
      event.k1 = "flight";
      event.v1 = static_cast<double>(flow.epoch.max_flight_bytes);
      event.k2 = "rwnd";
      event.v2 = static_cast<double>(flow.epoch.min_rwnd_bytes > 0 ? flow.epoch.min_rwnd_bytes
                                                                   : flow.last_rwnd);
      event.k3 = "rtt_us";
      event.v3 = (flow.srtt_fwd_us < 0 ? 0 : flow.srtt_fwd_us) +
                 (flow.srtt_rev_us < 0 ? 0 : flow.srtt_rev_us);
      tr->Record(event);
    }
  }
  flow.epoch = DiagEpochEvidence{};
}

FlowVerdict FlowDiagnoser::ClosedVerdict(uint64_t conn_id, bool from_a, TimePoint now) {
  const FlowKey key{conn_id, static_cast<uint8_t>(from_a ? 1 : 0)};
  const auto it = flows_.find(key);
  if (it == flows_.end()) {
    return FlowVerdict{};
  }
  // Close epochs that ended at or before `now`: an epoch is closed once
  // `now` has reached its exclusive end, i.e. the open epoch is the one
  // containing `now` (or, exactly at a boundary, the one starting there).
  Roll(it->second, key, now);
  return it->second.has_verdict ? it->second.last_verdict : FlowVerdict{};
}

FlowDiagnoser::FlowSnapshot FlowDiagnoser::Peek(uint64_t conn_id, bool from_a) const {
  FlowSnapshot snap;
  const Flow* flow = PeekFlow(conn_id, from_a);
  if (flow == nullptr) {
    return snap;
  }
  snap.valid = true;
  snap.last_limit = flow->last_data_limit;
  snap.last_observed = flow->last_observed;
  snap.inferred_cwnd_bytes = flow->inferred_cwnd_bytes;
  snap.current_flight_bytes =
      flow->highest_data_end > flow->highest_ack ? flow->highest_data_end - flow->highest_ack : 0;
  snap.last_rwnd_bytes = flow->last_rwnd;
  const double fwd = flow->srtt_fwd_us < 0 ? 0 : flow->srtt_fwd_us;
  const double rev = flow->srtt_rev_us < 0 ? 0 : flow->srtt_rev_us;
  snap.srtt_us = fwd + rev;
  return snap;
}

bool FlowDiagnoser::Fresh(uint64_t conn_id, bool from_a, TimePoint now) const {
  const Flow* flow = PeekFlow(conn_id, from_a);
  return flow != nullptr && now - flow->last_observed <= config_.freshness_bound;
}

const FlowDiagCounters* FlowDiagnoser::CountersFor(uint64_t conn_id, bool from_a) const {
  const Flow* flow = PeekFlow(conn_id, from_a);
  return flow == nullptr ? nullptr : &flow->counters;
}

}  // namespace e2e
