// An output-queued switch: the shared data plane of multi-host topologies.
//
// Model: packets arrive from any ingress link (the switch is a single
// `PacketSink`; ingress ports need no state of their own), are looked up in
// a forwarding table keyed by `Packet::dst_host`, and join the matched
// output port's FIFO buffer. Each port drains in order onto its egress
// `Link` — one packet serializes at a time, so the port's queue is the real
// buffer and the link's internal serialization queue never grows.
//
// A packet occupies its buffer slot from acceptance until its last bit is
// on the wire (like a TX descriptor), so occupancy counts the packet in
// service. Admission is drop-tail against the configured byte and/or packet
// capacity; an accepted packet whose arrival pushes occupancy past the ECN
// threshold is marked CE (`Packet::ecn_ce`). When an endpoint runs with
// `cc.ecn` enabled the mark is echoed back as ECE and drives the sender's
// congestion controller (src/tcp/cc/); otherwise only the counters see it.
//
// Multi-path: a switch may carry one ECMP group — an ordered list of
// (port, member key) entries — consulted when the forwarding table has no
// exact entry for the destination. Selection is highest-random-weight
// (rendezvous) hashing: the member whose keyed SplitMix64 hash of the flow
// key (src_host, dst_host) scores highest wins. That gives per-flow path
// pinning (every packet of a flow takes one port, so a single-path flow can
// never reorder inside the fabric) and minimal disruption (adding a member
// only moves the flows that now score highest on the new member — existing
// streams keep their paths). Leaf switches in a leaf-spine fabric use this
// for their uplinks; see src/testbed/fabric_topology.*.
//
// Forwarding-table misses (no exact route and no ECMP group) are counted
// and dropped (there is no flooding: every simulated host is registered by
// the topology builder, so a miss is a wiring bug or an unaddressed
// packet).
//
// Determinism: the switch does no random draws — ECMP hashing is a pure
// function of the flow key and the configured member keys; all deferred
// work goes through the simulator event queue, and the forwarding table is
// only ever point-queried (no iteration), so runs replay byte-identically.

#ifndef SRC_NET_FABRIC_SWITCH_H_
#define SRC_NET_FABRIC_SWITCH_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/net/link.h"
#include "src/net/packet.h"
#include "src/sim/simulator.h"

namespace e2e {

struct SwitchPortConfig {
  // Output-buffer capacity. 0 disables the respective limit; both set means
  // a packet is tail-dropped when it would exceed either.
  size_t buffer_bytes = 512 * 1024;
  size_t buffer_packets = 0;
  // Mark accepted packets CE while occupancy (bytes, including the arrival)
  // exceeds this threshold. 0 disables marking.
  size_t ecn_threshold_bytes = 0;
};

class SwitchPort;

// One admission decision, as seen by a passive observer on the switch.
struct SwitchTapEvent {
  // The matched egress port; nullptr when the forwarding lookup missed.
  const SwitchPort* port = nullptr;
  bool dropped = false;  // Tail-dropped (or forwarding miss) — never queued.
  bool marked = false;   // Admitted and CE-marked on this admission.
};

// Passive observer attached to a switch: sees every packet offered to the
// data plane, after the admission/marking decision, with the packet exactly
// as it will be queued (CE already applied). Implementations must not
// mutate simulation state or schedule events — the contract is that an
// attached tap leaves every simulated byte identical to an untapped run.
class SwitchTap {
 public:
  virtual ~SwitchTap() = default;
  virtual void OnSwitchPacket(const Packet& packet, const SwitchTapEvent& event) = 0;
};

// One output port: a drop-tail FIFO draining onto an egress link.
class SwitchPort {
 public:
  struct Counters {
    uint64_t packets_in = 0;       // Offered to the port (pre-admission).
    uint64_t packets_out = 0;      // Handed to the egress link.
    uint64_t bytes_out = 0;
    uint64_t tail_drops = 0;       // Total admission failures.
    uint64_t byte_limit_drops = 0;
    uint64_t packet_limit_drops = 0;
    uint64_t dropped_bytes = 0;    // Wire bytes of tail-dropped packets.
    uint64_t ecn_marked = 0;
    // Wire bytes of packets that were admitted *and* CE-marked. Disjoint
    // from dropped_bytes by construction (a dropped packet is never
    // marked), so a mark burst during tail-drop attributes unambiguously.
    uint64_t ecn_marked_bytes = 0;
    uint64_t max_queue_bytes = 0;  // High-water occupancy.
    uint64_t max_queue_packets = 0;
  };

  SwitchPort(Simulator* sim, Link* egress, const SwitchPortConfig& config, std::string name);

  void Enqueue(Packet packet);

  // Installed by the owning Switch; nullptr disables observation.
  void SetTap(SwitchTap* tap) { tap_ = tap; }

  // Current occupancy, including the packet being serialized.
  size_t queue_bytes() const { return queue_bytes_; }
  size_t queue_packets() const { return queue_packets_; }

  const Counters& counters() const { return counters_; }
  const SwitchPortConfig& config() const { return config_; }
  Link* egress() { return egress_; }
  const std::string& name() const { return name_; }

 private:
  void MaybeStartService();

  Simulator* sim_;
  Link* egress_;
  SwitchPortConfig config_;
  std::string name_;
  std::deque<Packet> queue_;  // Excludes the packet in service.
  size_t queue_bytes_ = 0;    // Includes the packet in service.
  size_t queue_packets_ = 0;  // Includes the packet in service.
  bool serving_ = false;
  SwitchTap* tap_ = nullptr;
  Counters counters_;
};

class Switch : public PacketSink {
 public:
  Switch(Simulator* sim, std::string name);

  // Adds an output port draining onto `egress` (not owned; must outlive the
  // switch). Returns the port index used by SetRoute.
  size_t AddPort(Link* egress, const SwitchPortConfig& config, std::string name);

  // Routes packets addressed to `dst_host` out of port `port`.
  void SetRoute(uint32_t dst_host, size_t port);

  // Adds `port` to the switch's ECMP group with the given member key (a
  // keyed-hash seed, typically DeriveSeed(topology seed, ecmp domain, member
  // index) so it is stable across construction order). Packets with no
  // exact route are forwarded out of the member that wins rendezvous
  // hashing on the packet's (src_host, dst_host) flow key.
  void AddEcmpMember(size_t port, uint64_t member_key);

  // The ECMP member `flow (src_host, dst_host)` pins to, or nullptr when
  // the group is empty. Pure function of the flow key and member keys.
  SwitchPort* EcmpRouteFor(uint32_t src_host, uint32_t dst_host);

  size_t ecmp_group_size() const { return ecmp_members_.size(); }

  // Packets forwarded via the ECMP group (route-table misses that hashed to
  // a member instead of dropping).
  uint64_t ecmp_forwards() const { return ecmp_forwards_; }

  // PacketSink: ingress from any attached link.
  void DeliverPacket(Packet packet) override;

  size_t num_ports() const { return ports_.size(); }
  SwitchPort& port(size_t i) { return *ports_[i]; }
  const SwitchPort& port(size_t i) const { return *ports_[i]; }
  // The port currently routing `dst_host`, or nullptr on a miss.
  SwitchPort* RouteFor(uint32_t dst_host);

  uint64_t forwarding_misses() const { return forwarding_misses_; }
  const std::string& name() const { return name_; }

  // Attaches a passive observer to every current and future port (and to
  // forwarding misses). One tap per switch; nullptr detaches.
  void SetTap(SwitchTap* tap);
  SwitchTap* tap() { return tap_; }

 private:
  struct EcmpMember {
    size_t port;
    uint64_t key;
  };

  Simulator* sim_;
  std::string name_;
  std::vector<std::unique_ptr<SwitchPort>> ports_;
  std::unordered_map<uint32_t, size_t> routes_;  // Point-queried only.
  std::vector<EcmpMember> ecmp_members_;
  uint64_t forwarding_misses_ = 0;
  uint64_t ecmp_forwards_ = 0;
  SwitchTap* tap_ = nullptr;
};

}  // namespace e2e

#endif  // SRC_NET_FABRIC_SWITCH_H_
