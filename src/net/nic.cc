#include "src/net/nic.h"

#include <cassert>
#include <utility>

#include "src/obs/trace.h"
#include "src/sim/logging.h"

namespace e2e {
namespace {

void TracePacket(const char* name, const std::string& track, const Packet& packet,
                 TimePoint now) {
  if (TraceRecorder* tr = TraceIf(TraceCategory::kPacket)) {
    TraceEvent e;
    e.time = now;
    e.category = TraceCategory::kPacket;
    e.name = name;
    e.track = tr->Track(track);
    e.k1 = "packet_id";
    e.v1 = static_cast<double>(packet.id);
    e.k2 = "wire_bytes";
    e.v2 = static_cast<double>(packet.wire_bytes);
    tr->Record(e);
  }
}

}  // namespace

Nic::Nic(Simulator* sim, CpuCore* softirq, Link* tx_link, const Config& config, std::string name)
    : sim_(sim), softirq_(softirq), tx_link_(tx_link), config_(config), name_(std::move(name)) {
  assert(sim_ != nullptr && softirq_ != nullptr && tx_link_ != nullptr);
}

void Nic::SetRx(RxBatchCostFn cost_fn, RxHandler handler) {
  rx_cost_ = std::move(cost_fn);
  rx_handler_ = std::move(handler);
}

bool Nic::Transmit(Packet packet) {
  if (tx_in_flight_ >= config_.tx_ring_size) {
    return false;
  }
  ++tx_in_flight_;
  ++tx_segments_;
  TracePacket("tx", name_, packet, sim_->Now());
  TimePoint last_bit = sim_->Now();
  if (packet.IsSuperSegment()) {
    for (Packet& slice : packet.slices) {
      last_bit = tx_link_->Send(std::move(slice));
      ++tx_wire_packets_;
    }
  } else {
    last_bit = tx_link_->Send(std::move(packet));
    ++tx_wire_packets_;
  }
  // TX completion: the descriptor is freed once the last bit is serialized.
  sim_->ScheduleAt(last_bit, [this] {
    assert(tx_in_flight_ > 0);
    --tx_in_flight_;
    ++tx_done_backlog_;
    SchedulePoll();
  });
  return true;
}

void Nic::DeliverPacket(Packet packet) {
  if (packet.corrupted) {
    // Hardware checksum validation: the frame consumed the wire but is
    // discarded before it costs any softirq work.
    ++rx_checksum_drops_;
    TracePacket("rx_checksum_drop", name_, packet, sim_->Now());
    return;
  }
  ++rx_packets_;
  TracePacket("rx", name_, packet, sim_->Now());
  rx_backlog_.push_back(std::move(packet));
  SchedulePoll();
}

void Nic::SchedulePoll() {
  if (poll_scheduled_) {
    return;
  }
  if (rx_backlog_.empty() && tx_done_backlog_ == 0) {
    return;
  }
  poll_scheduled_ = true;
  softirq_->Submit(
      [this] {
        // Poll start: capture up to a NAPI budget of work and price it.
        ++polls_;
        Duration cost;
        if (in_poll_chain_) {
          cost = config_.poll_continue_cost;
        } else {
          cost = config_.irq_overhead;
          in_poll_chain_ = true;
          ++irqs_;
        }
        poll_batch_.clear();
        const int budget = config_.napi_budget;
        while (!rx_backlog_.empty() && static_cast<int>(poll_batch_.size()) < budget) {
          poll_batch_.push_back(std::move(rx_backlog_.front()));
          rx_backlog_.pop_front();
        }
        if (rx_cost_ && !poll_batch_.empty()) {
          cost += rx_cost_(poll_batch_);
        }
        poll_tx_done_ = tx_done_backlog_;
        tx_done_backlog_ = 0;
        cost += config_.tx_completion_cost * static_cast<int64_t>(poll_tx_done_);
        return cost;
      },
      [this] {
        // Poll end: hand packets and completions to the stack.
        for (const Packet& packet : poll_batch_) {
          if (rx_handler_) {
            rx_handler_(packet);
          }
        }
        poll_batch_.clear();
        const size_t tx_done = std::exchange(poll_tx_done_, 0);
        if (tx_done > 0 && tx_complete_) {
          tx_complete_(tx_done);
        }
        poll_scheduled_ = false;
        if (!rx_backlog_.empty() || tx_done_backlog_ > 0) {
          SchedulePoll();
        } else {
          in_poll_chain_ = false;
        }
      });
}

}  // namespace e2e
