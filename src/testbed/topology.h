// The two-host topology used by all full-stack experiments: a client and a
// server connected by a full-duplex link, mirroring the paper's pair of
// machines with 100 Gbps NICs.
//
// Each direction can carry an impairment pipeline (bursty loss, reordering,
// duplication, corruption, jitter — see src/net/impair) installed between
// the link and the receiving NIC, plus a scripted schedule of link-parameter
// rewrites (time-varying bandwidth/propagation/loss). Default-constructed
// impairment configs leave the path pristine and add no per-packet work.

#ifndef SRC_TESTBED_TOPOLOGY_H_
#define SRC_TESTBED_TOPOLOGY_H_

#include <cstdint>
#include <memory>

#include "src/net/host.h"
#include "src/net/impair/impairment.h"
#include "src/net/link.h"
#include "src/net/nic.h"
#include "src/sim/random.h"
#include "src/sim/simulator.h"
#include "src/tcp/stack.h"

namespace e2e {

struct TopologyConfig {
  Link::Config link;  // Applied to both directions.
  Nic::Config client_nic;
  Nic::Config server_nic;
  StackCosts client_stack_costs;
  StackCosts server_stack_costs;
  // Per-direction impairment specs (stages + link schedule). c2s is the
  // client->server request path, s2c the server->client response path.
  ImpairmentConfig c2s_impairment;
  ImpairmentConfig s2c_impairment;
  uint64_t seed = 42;

  TopologyConfig() {
    link.bandwidth_bps = 100e9;  // 100 Gbps ConnectX-5 class.
    link.propagation = Duration::MicrosF(3.0);
  }
};

class TwoHostTopology {
 public:
  explicit TwoHostTopology(const TopologyConfig& config = TopologyConfig{});

  Simulator& sim() { return sim_; }
  Host& client_host() { return client_host_; }
  Host& server_host() { return server_host_; }
  TcpStack& client_stack() { return client_tcp_; }
  TcpStack& server_stack() { return server_tcp_; }
  Link& client_to_server_link() { return client_to_server_; }
  Link& server_to_client_link() { return server_to_client_; }

  // Null when the corresponding direction has no impairment stages.
  const ImpairmentChain* c2s_impairment() const { return c2s_impair_.get(); }
  const ImpairmentChain* s2c_impairment() const { return s2c_impair_.get(); }

  // Creates one client<->server connection. Client is the "A" side.
  ConnectedPair Connect(uint64_t conn_id, const TcpConfig& client_config,
                        const TcpConfig& server_config) {
    return ConnectPair(client_tcp_, server_tcp_, conn_id, client_config, server_config);
  }

 private:
  Simulator sim_;
  Link client_to_server_;
  Link server_to_client_;
  Host client_host_;
  Host server_host_;
  TcpStack client_tcp_;
  TcpStack server_tcp_;
  std::unique_ptr<ImpairmentChain> c2s_impair_;
  std::unique_ptr<ImpairmentChain> s2c_impair_;
  std::unique_ptr<LinkScheduler> c2s_scheduler_;
  std::unique_ptr<LinkScheduler> s2c_scheduler_;
};

}  // namespace e2e

#endif  // SRC_TESTBED_TOPOLOGY_H_
