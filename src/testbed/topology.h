// The two-host topology used by the paper-reproduction experiments: a
// client and a server connected by a full-duplex link, mirroring the
// paper's pair of machines with 100 Gbps NICs. Since the fabric subsystem
// landed this is a thin facade over FabricTopology's kDirect shape (see
// src/testbed/fabric_topology.h for star/dumbbell/incast multi-host
// topologies); wiring, naming, and seed streams are unchanged.
//
// Each direction can carry an impairment pipeline (bursty loss, reordering,
// duplication, corruption, jitter — see src/net/impair) installed between
// the link and the receiving NIC, plus a scripted schedule of link-parameter
// rewrites (time-varying bandwidth/propagation/loss). Default-constructed
// impairment configs leave the path pristine and add no per-packet work.

#ifndef SRC_TESTBED_TOPOLOGY_H_
#define SRC_TESTBED_TOPOLOGY_H_

#include <cstdint>

#include "src/net/host.h"
#include "src/net/impair/impairment.h"
#include "src/net/link.h"
#include "src/net/nic.h"
#include "src/sim/simulator.h"
#include "src/tcp/stack.h"
#include "src/testbed/fabric_topology.h"

namespace e2e {

struct TopologyConfig {
  Link::Config link;  // Applied to both directions.
  Nic::Config client_nic;
  Nic::Config server_nic;
  StackCosts client_stack_costs;
  StackCosts server_stack_costs;
  // Per-direction impairment specs (stages + link schedule). c2s is the
  // client->server request path, s2c the server->client response path.
  ImpairmentConfig c2s_impairment;
  ImpairmentConfig s2c_impairment;
  uint64_t seed = 42;
  // Passed through to FabricConfig::shards. kDirect stays single-domain by
  // definition, so this is accepted-and-inert here — drivers expose the
  // flag uniformly and switched topologies act on it.
  int shards = 0;

  TopologyConfig() {
    link.bandwidth_bps = 100e9;  // 100 Gbps ConnectX-5 class.
    link.propagation = Duration::MicrosF(3.0);
  }

  // The equivalent kDirect fabric spec.
  FabricConfig ToFabric() const {
    FabricConfig fabric;
    fabric.shape = FabricShape::kDirect;
    fabric.num_clients = 1;
    fabric.num_servers = 1;
    fabric.edge_link = link;
    fabric.client.nic = client_nic;
    fabric.client.stack_costs = client_stack_costs;
    fabric.server.nic = server_nic;
    fabric.server.stack_costs = server_stack_costs;
    fabric.c2s_impairment = c2s_impairment;
    fabric.s2c_impairment = s2c_impairment;
    fabric.seed = seed;
    fabric.shards = shards;
    return fabric;
  }
};

class TwoHostTopology {
 public:
  explicit TwoHostTopology(const TopologyConfig& config = TopologyConfig{})
      : fabric_(config.ToFabric()) {}

  Simulator& sim() { return fabric_.sim(); }
  Host& client_host() { return fabric_.client_host(0); }
  Host& server_host() { return fabric_.server_host(0); }
  TcpStack& client_stack() { return fabric_.client_stack(0); }
  TcpStack& server_stack() { return fabric_.server_stack(0); }
  Link& client_to_server_link() { return fabric_.client_uplink(0); }
  Link& server_to_client_link() { return fabric_.server_uplink(0); }

  // Null when the corresponding direction has no impairment stages.
  const ImpairmentChain* c2s_impairment() const { return fabric_.c2s_impairment(0); }
  const ImpairmentChain* s2c_impairment() const { return fabric_.s2c_impairment(0); }

  // The underlying single-link fabric (e.g. for ExportCounters).
  FabricTopology& fabric() { return fabric_; }

  // Creates one client<->server connection. Client is the "A" side.
  ConnectedPair Connect(uint64_t conn_id, const TcpConfig& client_config,
                        const TcpConfig& server_config) {
    return fabric_.Connect(0, 0, conn_id, client_config, server_config);
  }

 private:
  FabricTopology fabric_;
};

}  // namespace e2e

#endif  // SRC_TESTBED_TOPOLOGY_H_
