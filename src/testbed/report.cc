#include "src/testbed/report.h"

#include <algorithm>
#include <cassert>

namespace e2e {

Table& Table::Row() {
  rows_.emplace_back();
  return *this;
}

Table& Table::Cell(std::string text) {
  assert(!rows_.empty());
  rows_.back().push_back(std::move(text));
  return *this;
}

Table& Table::Num(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return Cell(buf);
}

Table& Table::Int(int64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(value));
  return Cell(buf);
}

void Table::Print(FILE* out) const {
  std::vector<size_t> widths(headers_.size());
  for (size_t i = 0; i < headers_.size(); ++i) {
    widths[i] = headers_[i].size();
  }
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size() && i < widths.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (size_t i = 0; i < widths.size(); ++i) {
      const std::string& cell = i < cells.size() ? cells[i] : std::string();
      std::fprintf(out, "%s%-*s", i == 0 ? "" : "  ", static_cast<int>(widths[i]), cell.c_str());
    }
    std::fprintf(out, "\n");
  };
  print_row(headers_);
  size_t total = headers_.empty() ? 0 : 2 * (headers_.size() - 1);
  for (size_t w : widths) {
    total += w;
  }
  std::fprintf(out, "%s\n", std::string(total, '-').c_str());
  for (const auto& row : rows_) {
    print_row(row);
  }
}

void Table::PrintCsv(FILE* out) const {
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (size_t i = 0; i < cells.size(); ++i) {
      std::fprintf(out, "%s%s", i == 0 ? "" : ",", cells[i].c_str());
    }
    std::fprintf(out, "\n");
  };
  print_row(headers_);
  for (const auto& row : rows_) {
    print_row(row);
  }
}

void PrintBanner(const std::string& title, FILE* out) {
  std::fprintf(out, "\n=== %s ===\n\n", title.c_str());
}

std::string FormatFactor(double factor) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2fx", factor);
  return buf;
}

}  // namespace e2e
