#include "src/testbed/report.h"

#include <algorithm>
#include <cassert>

#include "src/tcp/endpoint.h"

namespace e2e {

Table& Table::Row() {
  rows_.emplace_back();
  return *this;
}

Table& Table::Cell(std::string text) {
  assert(!rows_.empty());
  rows_.back().push_back(std::move(text));
  return *this;
}

Table& Table::Num(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return Cell(buf);
}

Table& Table::Int(int64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(value));
  return Cell(buf);
}

void Table::Print(FILE* out) const {
  std::vector<size_t> widths(headers_.size());
  for (size_t i = 0; i < headers_.size(); ++i) {
    widths[i] = headers_[i].size();
  }
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size() && i < widths.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (size_t i = 0; i < widths.size(); ++i) {
      const std::string& cell = i < cells.size() ? cells[i] : std::string();
      std::fprintf(out, "%s%-*s", i == 0 ? "" : "  ", static_cast<int>(widths[i]), cell.c_str());
    }
    std::fprintf(out, "\n");
  };
  print_row(headers_);
  size_t total = headers_.empty() ? 0 : 2 * (headers_.size() - 1);
  for (size_t w : widths) {
    total += w;
  }
  std::fprintf(out, "%s\n", std::string(total, '-').c_str());
  for (const auto& row : rows_) {
    print_row(row);
  }
}

void Table::PrintCsv(FILE* out) const {
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (size_t i = 0; i < cells.size(); ++i) {
      std::fprintf(out, "%s%s", i == 0 ? "" : ",", cells[i].c_str());
    }
    std::fprintf(out, "\n");
  };
  print_row(headers_);
  for (const auto& row : rows_) {
    print_row(row);
  }
}

void PrintBanner(const std::string& title, FILE* out) {
  std::fprintf(out, "\n=== %s ===\n\n", title.c_str());
}

std::string FormatFactor(double factor) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2fx", factor);
  return buf;
}

Table TcpEndpointStatsTable(const std::vector<std::pair<std::string, TcpEndpoint::Stats>>& rows) {
  Table table({"endpoint", "segs_sent", "retransmits", "ooo_segs", "pure_acks", "delack_fires",
               "persist_probes", "sndbuf_full"});
  for (const auto& [name, s] : rows) {
    table.Row()
        .Cell(name)
        .Int(static_cast<int64_t>(s.data_segments_sent))
        .Int(static_cast<int64_t>(s.retransmits))
        .Int(static_cast<int64_t>(s.ooo_segments))
        .Int(static_cast<int64_t>(s.pure_acks_sent))
        .Int(static_cast<int64_t>(s.delack_timer_fires))
        .Int(static_cast<int64_t>(s.persist_probes))
        .Int(static_cast<int64_t>(s.send_buffer_full));
  }
  return table;
}

Table TcpEndpointStatsTable(const std::vector<std::pair<std::string, const TcpEndpoint*>>& rows) {
  std::vector<std::pair<std::string, TcpEndpoint::Stats>> stats;
  stats.reserve(rows.size());
  for (const auto& [name, endpoint] : rows) {
    stats.emplace_back(name, endpoint->stats());
  }
  return TcpEndpointStatsTable(stats);
}

Table ImpairmentCountersTable(
    const std::vector<std::pair<std::string, ImpairmentSnapshot>>& rows) {
  Table table({"dir", "stage", "in", "out", "dropped", "corrupted", "duplicated", "reordered"});
  for (const auto& [label, snapshot] : rows) {
    for (const auto& [stage, c] : snapshot) {
      table.Row()
          .Cell(label)
          .Cell(stage)
          .Int(static_cast<int64_t>(c.packets_in))
          .Int(static_cast<int64_t>(c.packets_out))
          .Int(static_cast<int64_t>(c.dropped))
          .Int(static_cast<int64_t>(c.corrupted))
          .Int(static_cast<int64_t>(c.duplicated))
          .Int(static_cast<int64_t>(c.reordered));
    }
  }
  return table;
}

Table SwitchPortsTable(const std::vector<std::pair<std::string, SwitchPort::Counters>>& rows) {
  Table table({"port", "in", "out", "bytes_out", "tail_drops", "byte_drops", "pkt_drops",
               "dropped_B", "ecn_marked", "marked_B", "max_q_bytes", "max_q_pkts"});
  for (const auto& [name, c] : rows) {
    table.Row()
        .Cell(name)
        .Int(static_cast<int64_t>(c.packets_in))
        .Int(static_cast<int64_t>(c.packets_out))
        .Int(static_cast<int64_t>(c.bytes_out))
        .Int(static_cast<int64_t>(c.tail_drops))
        .Int(static_cast<int64_t>(c.byte_limit_drops))
        .Int(static_cast<int64_t>(c.packet_limit_drops))
        .Int(static_cast<int64_t>(c.dropped_bytes))
        .Int(static_cast<int64_t>(c.ecn_marked))
        .Int(static_cast<int64_t>(c.ecn_marked_bytes))
        .Int(static_cast<int64_t>(c.max_queue_bytes))
        .Int(static_cast<int64_t>(c.max_queue_packets));
  }
  return table;
}

// ---- JsonWriter ----

void JsonWriter::Comma() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // "key": already emitted the separator.
  }
  if (!needs_comma_.empty()) {
    if (needs_comma_.back()) {
      std::fputc(',', out_);
    }
    needs_comma_.back() = true;
  }
}

JsonWriter& JsonWriter::BeginObject() {
  Comma();
  std::fputc('{', out_);
  needs_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  assert(!needs_comma_.empty());
  needs_comma_.pop_back();
  std::fputc('}', out_);
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  Comma();
  std::fputc('[', out_);
  needs_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  assert(!needs_comma_.empty());
  needs_comma_.pop_back();
  std::fputc(']', out_);
  return *this;
}

JsonWriter& JsonWriter::Key(const std::string& key) {
  Comma();
  std::fprintf(out_, "\"%s\":", key.c_str());
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::String(const std::string& value) {
  Comma();
  std::fputc('"', out_);
  for (char ch : value) {
    if (ch == '"' || ch == '\\') {
      std::fputc('\\', out_);
      std::fputc(ch, out_);
    } else if (ch == '\n') {
      std::fputs("\\n", out_);
    } else {
      std::fputc(ch, out_);
    }
  }
  std::fputc('"', out_);
  return *this;
}

JsonWriter& JsonWriter::Double(double value, int precision) {
  Comma();
  std::fprintf(out_, "%.*f", precision, value);
  return *this;
}

JsonWriter& JsonWriter::Int(int64_t value) {
  Comma();
  std::fprintf(out_, "%lld", static_cast<long long>(value));
  return *this;
}

JsonWriter& JsonWriter::Uint(uint64_t value) {
  Comma();
  std::fprintf(out_, "%llu", static_cast<unsigned long long>(value));
  return *this;
}

JsonWriter& JsonWriter::Bool(bool value) {
  Comma();
  std::fputs(value ? "true" : "false", out_);
  return *this;
}

JsonWriter& JsonWriter::Null() {
  Comma();
  std::fputs("null", out_);
  return *this;
}

JsonWriter& JsonWriter::KV(const std::string& key, const std::string& value) {
  return Key(key).String(value);
}
JsonWriter& JsonWriter::KV(const std::string& key, double value, int precision) {
  return Key(key).Double(value, precision);
}
JsonWriter& JsonWriter::KV(const std::string& key, int64_t value) { return Key(key).Int(value); }
JsonWriter& JsonWriter::KV(const std::string& key, uint64_t value) { return Key(key).Uint(value); }

JsonWriter& JsonWriter::ImpairmentArray(const ImpairmentSnapshot& snapshot) {
  BeginArray();
  for (const auto& [stage, c] : snapshot) {
    BeginObject();
    KV("stage", stage);
    KV("in", c.packets_in);
    KV("out", c.packets_out);
    KV("dropped", c.dropped);
    KV("corrupted", c.corrupted);
    KV("duplicated", c.duplicated);
    KV("reordered", c.reordered);
    EndObject();
  }
  EndArray();
  return *this;
}

JsonWriter& JsonWriter::RegistryArray(const CounterRegistry& registry,
                                      const CounterRegistry::Values& values) {
  assert(values.size() == registry.num_entities());
  BeginArray();
  for (size_t i = 0; i < values.size(); ++i) {
    const std::vector<std::string>& names = registry.counter_names(i);
    assert(values[i].size() == names.size());
    BeginObject();
    KV("entity", registry.entity_name(i));
    for (size_t j = 0; j < names.size(); ++j) {
      KV(names[j], values[i][j]);
    }
    EndObject();
  }
  EndArray();
  return *this;
}

void JsonWriter::Finish() {
  assert(needs_comma_.empty());
  std::fputc('\n', out_);
}

}  // namespace e2e
