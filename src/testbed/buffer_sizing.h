// Buffer-sizing study driver (DESIGN.md §13): one cell of the classic
// experiment behind the BDP and Appenzeller BDP/sqrt(n) rules, updated with
// ECN/DCTCP per Spang et al., "Updating the Theory of Buffer Sizing".
//
// n long-lived bulk flows (each client pours data as fast as its windows
// allow) share one bottleneck — the trunk port of a dumbbell, the server's
// downlink port of an incast star, or the remote rack's ECMP uplink ports
// of an oversubscribed leaf-spine — whose buffer, ECN threshold, and
// congestion-control algorithm the sweep varies. The driver reports what
// the theory is about: bottleneck utilization, time-sampled queue
// occupancy (mean / p99, and the queueing *delay* those bytes represent at
// the bottleneck rate), drop and mark counts, the ECN round trip
// (CE -> ECE -> decrease -> CWR), and Jain fairness across flows.
//
// Everything is deterministic: the driver draws no randomness of its own,
// and the fabric's keyed-seed contract covers the rest, so one cell is
// replayable and sweep cells are independent (bench/buffer_sizing_sweep
// runs them on a worker pool with in-order commits).

#ifndef SRC_TESTBED_BUFFER_SIZING_H_
#define SRC_TESTBED_BUFFER_SIZING_H_

#include <cstdint>
#include <vector>

#include "src/sim/stats.h"
#include "src/sim/time.h"
#include "src/tcp/cc/congestion_control.h"
#include "src/testbed/fabric_topology.h"

namespace e2e {

struct BufferSizingConfig {
  // kDumbbell:  n clients, 1 server, bottleneck = the shared trunk.
  // kStar:      incast — bottleneck = the server's downlink port.
  // kLeafSpine: 2 leaves x `num_spines` spines; all n clients pinned to
  //             leaf 1, one server per flow pinned to leaf 0, so every
  //             flow crosses the core and the receive capacity (n edge
  //             ports) can never bind before it. The bottleneck is the
  //             client rack's ECMP uplink ports. `bottleneck_bps` is the
  //             per-spine trunk rate — size the core below the rack's
  //             aggregate edge rate for an oversubscribed fabric.
  FabricShape shape = FabricShape::kDumbbell;
  int num_flows = 4;
  int num_spines = 2;  // kLeafSpine only (leaves fixed at 2).

  CcAlgorithm algorithm = CcAlgorithm::kReno;
  bool ecn = false;  // Endpoint-side CE echo (pair with ecn_threshold_bytes).

  // Bottleneck port provisioning. buffer_bytes = 0 means unlimited;
  // ecn_threshold_bytes = 0 disables marking.
  size_t buffer_bytes = 128 * 1024;
  size_t ecn_threshold_bytes = 0;

  // Dumbbell trunk rate, or the per-spine leaf-spine trunk rate; the
  // star's bottleneck runs at the 100 Gbps edge rate instead (incast needs
  // the fan-in, not a slow pipe).
  double bottleneck_bps = 10e9;
  // One-way trunk propagation. The default stretches the dumbbell RTT to
  // ~110 us end to end so a BDP (~10G * 110us = ~137 KB) is several dozen
  // segments — the regime where the sizing rules separate.
  Duration trunk_propagation = Duration::Micros(50);

  uint64_t chunk_bytes = 64 * 1024;  // App write size per send().
  uint64_t sndbuf_bytes = 8 * 1024 * 1024;
  uint64_t rcvbuf_bytes = 8 * 1024 * 1024;

  Duration warmup = Duration::Millis(20);
  Duration measure = Duration::Millis(80);
  Duration sample_interval = Duration::Micros(50);  // Queue/cwnd sampling.
  uint64_t seed = 7;

  // Passed through to FabricConfig::shards (0 = classic engine; >= 1 runs
  // domain-partitioned, bit-identical across values >= 1).
  int shards = 0;
};

struct BufferSizingResult {
  // Goodput = bytes the server application read during the measure window.
  double aggregate_goodput_bps = 0;
  // Goodput that crossed the bottleneck, over its aggregate capacity. On
  // the leaf-spine that is cross-rack goodput (all of it, with the pinned
  // placement — the accounting still excludes any rack-local flow so a
  // future mixed scenario can't inflate core utilization).
  double bottleneck_utilization = 0;
  double cross_rack_goodput_bps = 0;  // kLeafSpine only, else 0.
  std::vector<double> flow_goodput_bps;
  double jain_fairness = 0;  // (sum x)^2 / (n * sum x^2), 1 = perfectly fair.

  // Time-sampled bottleneck queue occupancy over the measure window.
  double mean_queue_bytes = 0;
  double p99_queue_bytes = 0;
  double max_queue_bytes = 0;
  // The delay those bytes represent draining at the bottleneck rate.
  double mean_queue_delay_us = 0;
  double p99_queue_delay_us = 0;

  // Bottleneck port counters, whole run.
  uint64_t drops = 0;
  uint64_t ecn_marked = 0;

  // Sender-side totals across all client endpoints, whole run.
  uint64_t retransmits = 0;
  uint64_t ce_received = 0;   // Server side: CE-marked arrivals.
  uint64_t ece_received = 0;  // Client side: echoed marks that came back.
  uint64_t cwr_sent = 0;      // Client side: reductions announced.
  uint64_t cc_decreases = 0;  // Client congestion reactions of any kind.

  double mean_cwnd_bytes = 0;  // Time-sampled mean across client flows.
};

// Bandwidth-delay product in bytes for a bottleneck rate and an RTT.
uint64_t BdpBytes(double bottleneck_bps, Duration rtt);

// The cell's end-to-end base RTT (propagation + per-hop serialization is
// negligible): what BDP provisioning should use.
Duration BufferSizingBaseRtt(const BufferSizingConfig& config);

BufferSizingResult RunBufferSizing(const BufferSizingConfig& config);

}  // namespace e2e

#endif  // SRC_TESTBED_BUFFER_SIZING_H_
