// Fixed-width table, CSV, and JSON reporting used by every bench binary,
// plus canned tables for per-endpoint TCP counters and impairment-stage
// counters (so benches surface retransmits/delayed-ack fires/drop counts
// without hand-rolling rows).

#ifndef SRC_TESTBED_REPORT_H_
#define SRC_TESTBED_REPORT_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "src/net/fabric/switch.h"
#include "src/net/impair/impairment.h"
#include "src/obs/registry.h"
#include "src/tcp/endpoint.h"

namespace e2e {

// Accumulates rows of preformatted cells; Print() pads columns to fit.
class Table {
 public:
  explicit Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

  // Starts a new row; append cells with Cell()/Num().
  Table& Row();
  Table& Cell(std::string text);
  Table& Num(double value, int precision = 1);
  Table& Int(int64_t value);

  void Print(FILE* out = stdout) const;
  // Comma-separated dump (headers + rows) for machine consumption.
  void PrintCsv(FILE* out) const;

  size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// Prints a section banner: "=== title ===".
void PrintBanner(const std::string& title, FILE* out = stdout);

// "x.xx" multiplier formatting helper.
std::string FormatFactor(double factor);

// One row per named endpoint: the TcpEndpoint::Stats counters that matter
// under impaired networks (retransmits, out-of-order segments, delayed-ack
// timer fires, pure acks, persist probes).
Table TcpEndpointStatsTable(const std::vector<std::pair<std::string, const TcpEndpoint*>>& rows);

// Same table from copied-out Stats values (e.g. RedisExperimentResult's
// endpoint-stats snapshots), for printing after the endpoints are gone.
Table TcpEndpointStatsTable(const std::vector<std::pair<std::string, TcpEndpoint::Stats>>& rows);

// One row per (direction, stage) with the stage's counters. Rows come from
// ImpairmentChain::Snapshot() or CounterCollector::ImpairmentWindow(); the
// `label` is typically "c2s" / "s2c".
Table ImpairmentCountersTable(
    const std::vector<std::pair<std::string, ImpairmentSnapshot>>& rows);

// One row per switch port with its queue/drop counters. Rows come from
// SwitchPort::counters(); the label is typically "<switch>.<host>".
Table SwitchPortsTable(const std::vector<std::pair<std::string, SwitchPort::Counters>>& rows);

// Minimal streaming JSON writer with deterministic formatting: fixed
// `%.*f` rendering for doubles (no locale, no shortest-round-trip
// variance), so equal inputs serialize byte-identically — the determinism
// contract bench JSON is checked against.
class JsonWriter {
 public:
  explicit JsonWriter(FILE* out) : out_(out) {}

  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();

  // Key for the next value (objects only).
  JsonWriter& Key(const std::string& key);

  JsonWriter& String(const std::string& value);
  JsonWriter& Double(double value, int precision = 3);
  JsonWriter& Int(int64_t value);
  JsonWriter& Uint(uint64_t value);
  JsonWriter& Bool(bool value);
  JsonWriter& Null();

  // Convenience: Key(k) + value.
  JsonWriter& KV(const std::string& key, const std::string& value);
  JsonWriter& KV(const std::string& key, double value, int precision = 3);
  JsonWriter& KV(const std::string& key, int64_t value);
  JsonWriter& KV(const std::string& key, uint64_t value);

  // Emits every counter of one impairment snapshot as an array of objects
  // under the current context (call after Key(...) inside an object).
  JsonWriter& ImpairmentArray(const ImpairmentSnapshot& snapshot);

  // Emits every registry entity as an array of {"entity": name, <counter>:
  // value, ...} objects. `values` is a sample (or Delta) matching the
  // registry's schema — e.g. CounterCollector::RegistryWindow() output.
  JsonWriter& RegistryArray(const CounterRegistry& registry, const CounterRegistry::Values& values);

  // Terminates the output with a newline.
  void Finish();

 private:
  void Comma();

  FILE* out_;
  std::vector<bool> needs_comma_;  // One entry per open container.
  bool pending_key_ = false;
};

}  // namespace e2e

#endif  // SRC_TESTBED_REPORT_H_
