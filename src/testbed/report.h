// Fixed-width table and CSV reporting used by every bench binary.

#ifndef SRC_TESTBED_REPORT_H_
#define SRC_TESTBED_REPORT_H_

#include <cstdio>
#include <string>
#include <vector>

namespace e2e {

// Accumulates rows of preformatted cells; Print() pads columns to fit.
class Table {
 public:
  explicit Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

  // Starts a new row; append cells with Cell()/Num().
  Table& Row();
  Table& Cell(std::string text);
  Table& Num(double value, int precision = 1);
  Table& Int(int64_t value);

  void Print(FILE* out = stdout) const;
  // Comma-separated dump (headers + rows) for machine consumption.
  void PrintCsv(FILE* out) const;

  size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// Prints a section banner: "=== title ===".
void PrintBanner(const std::string& title, FILE* out = stdout);

// "x.xx" multiplier formatting helper.
std::string FormatFactor(double factor);

}  // namespace e2e

#endif  // SRC_TESTBED_REPORT_H_
