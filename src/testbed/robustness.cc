#include "src/testbed/robustness.h"

#include <cassert>
#include <cmath>
#include <memory>
#include <vector>

#include "src/apps/redis_server.h"
#include "src/core/aggregator.h"
#include "src/core/policy.h"
#include "src/sim/stats.h"

namespace e2e {

namespace {

// One connection incarnation: endpoints + the server process bound to them.
// Crashed incarnations are parked (endpoints become stack-graveyard
// zombies; the app object is kept here) — never destroyed mid-run.
struct Incarnation {
  uint64_t conn_id = 0;
  ConnectedPair conn;
  std::unique_ptr<RedisServerApp> server;
};

}  // namespace

RobustnessResult RunRobustnessExperiment(const RobustnessConfig& config) {
  TwoHostTopology topo(config.topology);
  Simulator& sim = topo.sim();

  TcpConfig client_tcp = RedisExperimentConfig::DefaultClientTcp();
  TcpConfig server_tcp = RedisExperimentConfig::DefaultServerTcp();
  client_tcp.e2e_exchange_interval = config.exchange_interval;
  server_tcp.e2e_exchange_interval = config.exchange_interval;

  const TimePoint start = sim.Now();
  const TimePoint measure_start = start + config.warmup;
  const TimePoint measure_end = measure_start + config.measure;
  const TimePoint run_end = measure_end + config.drain;

  // Fault timeline landmarks (known up-front: the schedule is scripted).
  std::optional<TimePoint> first_fault_at;
  TimePoint last_fault_end = start;
  for (const FaultEvent& event : config.faults.events()) {
    if (!first_fault_at.has_value() || event.at < *first_fault_at) {
      first_fault_at = event.at;
    }
    if (event.at + event.duration > last_fault_end) {
      last_fault_end = event.at + event.duration;
    }
  }

  EstimateAggregator aggregator;
  aggregator.SetStalenessBound(config.aggregator_staleness);
  EstimatorHealth health(config.health, sim.Now());

  // Phase-bucketed ground truth and online estimates.
  RunningStats pre_truth_us, post_truth_us;
  RunningStats online_all_us, online_pre_us, online_post_us;
  std::optional<TimePoint> recovered_at;
  uint64_t rejected_payloads_total = 0;

  // Latest-value trackers for the time-series gauges. Plain shadows of
  // values the run computes anyway — updating them cannot alter the run.
  double last_online_est_us = 0;
  double last_measured_us = 0;

  std::vector<std::unique_ptr<Incarnation>> incarnations;
  TcpEndpoint* server_ep = nullptr;  // Current incarnation's side B.
  FaultInjector* injector_ptr = nullptr;
  std::unique_ptr<LancetClient> client;

  const auto in_window = [&](TimePoint t) { return t >= measure_start && t < measure_end; };
  const auto bucket = [&](TimePoint t, double value, RunningStats* pre, RunningStats* post) {
    if (!in_window(t)) {
      return;
    }
    if (!first_fault_at.has_value() || t < *first_fault_at) {
      pre->Add(value);
    } else if (recovered_at.has_value() && t >= *recovered_at) {
      post->Add(value);
    }
  };

  // Builds a fresh connection incarnation (initial connect and every
  // reconnect): new conn_id — stale in-flight segments of a dead
  // incarnation must keep missing — fresh server process, fresh estimator.
  const auto build_incarnation = [&]() -> TcpEndpoint* {
    auto inc = std::make_unique<Incarnation>();
    inc->conn_id = incarnations.size() + 1;
    inc->conn = topo.Connect(inc->conn_id, client_tcp, server_tcp);

    RedisServerApp::Config server_config;
    server_config.costs = config.server_costs;
    inc->server = std::make_unique<RedisServerApp>(&sim, inc->conn.b, server_config);
    if (config.prefill_store) {
      for (uint64_t key = 0; key < config.mix.key_space; ++key) {
        inc->server->mutable_store().Set(key, config.mix.get_value_len);
      }
    }

    server_ep = inc->conn.b;
    if (injector_ptr != nullptr) {
      server_ep->SetMetadataFilter(injector_ptr->MakeMetadataFilter());
    }
    server_ep->SetEstimateCallback([&](const ConnectionEstimator& est) {
      health.OnExchange(sim.Now(), est.last_verdict());
      if (est.has_estimate() && est.estimate().latency.has_value()) {
        last_online_est_us = est.estimate().latency->ToMicros();
        if (in_window(sim.Now())) {
          online_all_us.Add(last_online_est_us);
          bucket(sim.Now(), last_online_est_us, &online_pre_us, &online_post_us);
        }
      }
    });
    aggregator.AddSource(&server_ep->estimator());
    TcpEndpoint* client_side = inc->conn.a;
    incarnations.push_back(std::move(inc));
    return client_side;
  };

  // ---- Fault injection wiring ----
  FaultTargets targets;
  targets.client_host = &topo.client_host();
  targets.server_host = &topo.server_host();
  std::optional<TimePoint> last_restart_at;
  targets.crash_server = [&] {
    Incarnation& cur = *incarnations.back();
    rejected_payloads_total += cur.conn.b->estimator().rejected_payloads();
    // The server process dies: both endpoints of its connection are gone.
    // With the fallback chain enabled the dead estimator leaves the
    // aggregate; the legacy configuration keeps it registered, so its
    // frozen last estimate silently feeds the controller — the exact
    // failure mode the A/B quantifies.
    if (config.fallback_enabled) {
      aggregator.RemoveSource(&cur.conn.b->estimator());
    }
    topo.server_stack().CloseEndpoint(cur.conn_id, /*is_a=*/false);
    topo.client_stack().CloseEndpoint(cur.conn_id, /*is_a=*/true);
    server_ep = nullptr;
    health.OnConnectionLost(sim.Now());
    client->OnConnectionLost();
  };
  targets.restart_server = [&] { last_restart_at = sim.Now(); };

  FaultInjector injector(&sim, config.faults, targets);
  injector_ptr = &injector;

  // ---- Client ----
  TcpEndpoint* first_socket = build_incarnation();
  LancetClient::Config client_config;
  client_config.rate_rps = config.rate_rps;
  client_config.mix = config.mix;
  client_config.costs = config.client_costs;
  client_config.warmup = config.warmup;
  client_config.measure = config.measure;
  client_config.seed = config.seed;
  client_config.use_hints = config.client_hints;
  client_config.reconnect = config.reconnect;
  client = std::make_unique<LancetClient>(&sim, first_socket, client_config);
  client->SetConnectFn([&]() -> TcpEndpoint* {
    if (!injector.server_up()) {
      return nullptr;
    }
    TcpEndpoint* fresh = build_incarnation();
    health.OnReconnect(sim.Now());
    return fresh;
  });
  client->SetLatencyObserver([&](TimePoint t, double latency_us) {
    last_measured_us = latency_us;
    bucket(t, latency_us, &pre_truth_us, &post_truth_us);
  });

  // ---- Controller + fallback chain ----
  SloThroughputPolicy policy(config.slo);
  ToggleController toggle(config.controller, &policy, Rng(config.seed + 7),
                          /*initial_on=*/false);
  RobustnessResult result;
  uint64_t ticks_on = 0;
  std::function<void()> control_tick = [&] {
    const TimePoint now = sim.Now();
    health.Tick(now);

    std::optional<PerfSample> sample;
    bool force_static = false;
    if (!config.fallback_enabled) {
      // Legacy path: staleness-blind average of every estimator ever
      // registered, stale or dead.
      const E2eEstimate aggregate = aggregator.Aggregate();
      if (aggregate.valid()) {
        sample = PerfSample{*aggregate.latency, aggregate.a_send_throughput};
      }
    } else {
      switch (health.state()) {
        case HealthState::kFull: {
          const E2eEstimate aggregate = aggregator.Aggregate(now);
          if (aggregate.valid()) {
            sample = PerfSample{*aggregate.latency, aggregate.a_send_throughput};
          }
          break;
        }
        case HealthState::kLocalOnly:
        case HealthState::kDiagAssisted: {
          // Peer counters untrusted: estimate from the server's own queues
          // only. Under response batching the local unacked delay inflates,
          // so this keeps the controller honest about the damage even
          // without the remote legs of the combination formula.
          // kDiagAssisted consumes the same local estimate: the in-network
          // diagnosis vouches the transport is alive, so freezing would
          // throw away a usable signal (unreachable here without a diag
          // provider — the two-host robustness runs never install one).
          if (server_ep != nullptr) {
            const E2eEstimate local =
                server_ep->estimator().LocalOnlyEstimate(server_ep->queues(), now);
            if (local.valid()) {
              sample = PerfSample{*local.latency, local.a_send_throughput};
            }
          }
          break;
        }
        case HealthState::kStatic:
          force_static = true;
          break;
      }
    }

    if (sample.has_value() &&
        (!std::isfinite(sample->latency.ToMicros()) || !std::isfinite(sample->throughput))) {
      ++result.non_finite_samples;  // Would trip BatchPolicy's assert.
      sample.reset();
    }

    const bool was_frozen = toggle.frozen();
    if (config.fallback_enabled) {
      if (force_static && !was_frozen) {
        toggle.SetFrozen(true, now);
      } else if (!force_static && was_frozen) {
        toggle.SetFrozen(false, now);
      }
    }

    const bool on = toggle.OnTick(now, sample);
    if (server_ep != nullptr && !server_ep->dead()) {
      // kStatic pins the known-good static policy (TCP_NODELAY, the
      // shipped Redis default) instead of whatever arm the controller
      // froze on.
      server_ep->SetNoDelay(force_static ? true : !on);
    }

    if (in_window(now)) {
      ++result.ticks;
      ticks_on += (on && !force_static) ? 1 : 0;
      result.frozen_ticks += toggle.frozen() ? 1 : 0;
    }

    // Recovery landmark: all scheduled faults are over, the client is
    // connected, and health has climbed back to full confidence.
    if (!recovered_at.has_value() && first_fault_at.has_value() && now >= last_fault_end &&
        client->connected() && health.state() == HealthState::kFull) {
      recovered_at = now;
    }

    if (now + config.controller.tick < run_end) {
      sim.Schedule(config.controller.tick, control_tick);
    }
  };
  sim.Schedule(config.controller.tick, control_tick);

  uint64_t switches_at_end = 0;
  sim.ScheduleAt(measure_end, [&] { switches_at_end = toggle.switches(); });

  // ---- Optional aligned time-series (DESIGN.md §11) ----
  // Every gauge is a pure read of state the run maintains anyway, so the
  // sampler observes without perturbing: a same-seed run with the sampler
  // on computes byte-identical results.
  std::optional<TimeSeriesSampler> sampler;
  const auto server_queue_bytes = [&](QueueKind kind) -> double {
    if (server_ep == nullptr || server_ep->dead()) {
      return 0;  // Between crash and reconnect there is no server queue.
    }
    return static_cast<double>(server_ep->queues().Get(kind, UnitMode::kBytes).size());
  };
  const auto arm_latency_us = [&](bool on) -> double {
    const std::optional<PerfSample> est = toggle.ArmEstimate(on);
    return est.has_value() ? est->latency.ToMicros() : 0;
  };
  if (config.series_interval > Duration::Zero()) {
    sampler.emplace(&sim, config.series_interval);
    sampler->AddGauge("server_unacked_bytes",
                      [&] { return server_queue_bytes(QueueKind::kUnacked); });
    sampler->AddGauge("server_unread_bytes",
                      [&] { return server_queue_bytes(QueueKind::kUnread); });
    sampler->AddGauge("server_ackdelay_bytes",
                      [&] { return server_queue_bytes(QueueKind::kAckDelay); });
    sampler->AddGauge("online_est_latency_us", [&] { return last_online_est_us; });
    sampler->AddGauge("measured_latency_us", [&] { return last_measured_us; });
    sampler->AddGauge("arm_on_ewma_latency_us", [&] { return arm_latency_us(true); });
    sampler->AddGauge("arm_off_ewma_latency_us", [&] { return arm_latency_us(false); });
    sampler->AddGauge("health_state",
                      [&] { return static_cast<double>(health.state()); });
    sampler->AddGauge("controller_on", [&] { return toggle.batching_on() ? 1.0 : 0.0; });
    sampler->AddGauge("controller_frozen", [&] { return toggle.frozen() ? 1.0 : 0.0; });
    sampler->Start(run_end);
  }

  injector.Arm();
  client->Start();
  sim.RunUntil(run_end);

  // ---- Results ----
  result.offered_krps = config.rate_rps / 1e3;
  const LancetClient::Results& lancet = client->results();
  result.achieved_krps = lancet.achieved_rps / 1e3;
  result.measured_mean_us = lancet.latency_us.mean();
  result.measured_p99_us = lancet.latency_hist.Percentile(99);
  result.requests_completed = lancet.measured;
  result.reconnect_attempts = lancet.reconnect_attempts;
  result.reconnects = lancet.reconnects;
  result.failed_disconnected = lancet.failed_disconnected;
  result.abandoned_on_crash = lancet.abandoned_on_crash;

  result.pre_fault_mean_us = pre_truth_us.mean();
  result.pre_fault_count = pre_truth_us.count();
  result.post_recovery_mean_us = post_truth_us.mean();
  result.post_recovery_count = post_truth_us.count();
  if (online_all_us.count() > 0) {
    result.online_est_us = online_all_us.mean();
  }
  if (online_pre_us.count() > 0) {
    result.online_est_pre_us = online_pre_us.mean();
    if (pre_truth_us.count() > 0 && pre_truth_us.mean() > 0) {
      result.est_err_pre_pct =
          (online_pre_us.mean() - pre_truth_us.mean()) / pre_truth_us.mean() * 100.0;
    }
  }
  if (online_post_us.count() > 0) {
    result.online_est_post_us = online_post_us.mean();
    if (post_truth_us.count() > 0 && post_truth_us.mean() > 0) {
      result.est_err_post_pct =
          (online_post_us.mean() - post_truth_us.mean()) / post_truth_us.mean() * 100.0;
    }
  }

  result.controller_switches = switches_at_end;
  if (result.ticks > 0) {
    result.duty_cycle_on = static_cast<double>(ticks_on) / static_cast<double>(result.ticks);
  }

  result.health = health.counters();
  result.health_transitions = health.transitions();
  result.time_in_full_ms = health.TimeIn(HealthState::kFull, sim.Now()).ToMicros() / 1e3;
  result.time_in_local_ms = health.TimeIn(HealthState::kLocalOnly, sim.Now()).ToMicros() / 1e3;
  result.time_in_diag_ms =
      health.TimeIn(HealthState::kDiagAssisted, sim.Now()).ToMicros() / 1e3;
  result.time_in_static_ms = health.TimeIn(HealthState::kStatic, sim.Now()).ToMicros() / 1e3;

  if (first_fault_at.has_value()) {
    HealthState prev = result.health_transitions.empty() ? HealthState::kStatic
                                                         : result.health_transitions.front().second;
    for (const auto& [t, s] : result.health_transitions) {
      if (t >= *first_fault_at && static_cast<int>(s) > static_cast<int>(prev) &&
          !result.time_to_detect_ms.has_value()) {
        result.time_to_detect_ms = (t - *first_fault_at).ToMicros() / 1e3;
      }
      prev = s;
    }
    const TimePoint recover_from = last_restart_at.value_or(*first_fault_at);
    for (const auto& [t, s] : result.health_transitions) {
      if (t >= recover_from && s == HealthState::kFull) {
        result.time_to_recover_ms = (t - recover_from).ToMicros() / 1e3;
        break;
      }
    }
  }

  result.faults = injector.counters();
  result.estimator_rejected_payloads = rejected_payloads_total;
  if (!incarnations.empty()) {
    const Incarnation& cur = *incarnations.back();
    if (!cur.conn.b->dead()) {
      result.estimator_rejected_payloads += cur.conn.b->estimator().rejected_payloads();
    }
  }
  result.aggregator_stale_skips = aggregator.stale_connections();
  result.endpoints_closed = topo.server_stack().endpoints_closed();
  if (sampler.has_value()) {
    result.series = std::make_shared<const TimeSeries>(sampler->TakeSeries());
  }
  return result;
}

}  // namespace e2e
