#include "src/testbed/diagnosis/diagnosis.h"

#include <algorithm>
#include <array>
#include <cassert>
#include <cmath>
#include <functional>
#include <memory>

#include "src/apps/lancet.h"
#include "src/apps/redis_server.h"
#include "src/core/policy.h"
#include "src/sim/stats.h"
#include "src/tcp/tcp_config.h"
#include "src/testbed/experiment.h"
#include "src/testbed/fleet.h"

namespace e2e {

namespace {

// The engineered bottleneck: the trunk port on a dumbbell, the server's
// downlink port on a star (same convention as buffer_sizing.cc).
SwitchPort* FindBottleneck(FabricTopology* topo) {
  Switch* client_sw = topo->client_switch();
  if (client_sw != nullptr) {
    for (size_t p = 0; p < client_sw->num_ports(); ++p) {
      if (client_sw->port(p).name().find("trunk") != std::string::npos) {
        return &client_sw->port(p);
      }
    }
  }
  return topo->server_switch()->RouteFor(topo->server_host(0).id());
}

// Ground-truth label from the sender endpoint's real state — the oracle the
// diagnoser never sees. Receiver first: a flow pinned against the peer's
// advertised window is receiver-limited even while cwnd idles just above
// it (cwnd stops growing once rwnd binds, so a cwnd-vs-rwnd comparison
// would mislabel the steady state). Then congestion: recovery, or the
// window is the binding constraint. Else the app isn't filling the pipe.
FlowLimit TruthLabel(const TcpEndpoint& sender, uint32_t mss) {
  const uint64_t flight = sender.flight_bytes();
  const uint64_t rwnd = sender.peer_rwnd();
  const uint64_t cwnd = sender.congestion().cwnd_bytes();
  if (!sender.in_recovery() && flight + mss > rwnd) {
    return FlowLimit::kReceiver;
  }
  if (sender.in_recovery() || flight + mss > cwnd) {
    return FlowLimit::kNetwork;
  }
  return FlowLimit::kSender;
}

// Majority label over one epoch's truth samples; ties break toward the
// stronger claim (network > receiver > sender) so a half-congested epoch
// reads as congested.
FlowLimit MajorityLabel(const uint64_t counts[kNumFlowLimits]) {
  static constexpr FlowLimit kPriority[] = {FlowLimit::kNetwork, FlowLimit::kReceiver,
                                            FlowLimit::kSender};
  FlowLimit best = FlowLimit::kNetwork;
  uint64_t best_count = 0;
  for (const FlowLimit limit : kPriority) {
    const uint64_t c = counts[static_cast<size_t>(limit)];
    if (c > best_count) {
      best = limit;
      best_count = c;
    }
  }
  return best;
}

}  // namespace

const char* DiagScenarioName(DiagScenario scenario) {
  switch (scenario) {
    case DiagScenario::kNetworkBound:
      return "network_bound";
    case DiagScenario::kReceiverBound:
      return "receiver_bound";
    case DiagScenario::kSenderPaced:
      return "sender_paced";
  }
  return "?";
}

DiagnosisValidationConfig DiagnosisValidationConfig::For(DiagScenario scenario,
                                                         FabricShape shape,
                                                         CcAlgorithm algorithm) {
  DiagnosisValidationConfig config;
  config.scenario = scenario;
  config.shape = shape;
  config.algorithm = algorithm;
  config.ecn = algorithm == CcAlgorithm::kDctcp;
  // Evidence-or-not should track the scenario, not queue noise: a low
  // backpressure knee keeps sawtooth troughs (network-bound) above it
  // while staying far over the tiny queues of the benign scenarios.
  config.diag.backpressure_frac = 0.15;

  switch (scenario) {
    case DiagScenario::kNetworkBound:
      if (shape == FabricShape::kDumbbell) {
        // 10G trunk, ~106 us RTT -> BDP ~132 KB; a 256 KB (~2x BDP) buffer
        // keeps the queue off the floor across multiplicative decreases,
        // so troughs stay above the backpressure knee.
        config.num_flows = 4;
        config.buffer_bytes = 256 * 1024;
        if (config.ecn) {
          config.ecn_threshold_bytes = 64 * 1024;
        }
      } else {
        // Incast: 8 bulk senders into one server downlink port. DCTCP gets
        // the classic shallow-buffer 100G regime (marks do the
        // signalling). The loss-based algorithms get 10G edges and a
        // deeper buffer: at 100G/64 KB a tail-drop incast lives in
        // RTO-storm slow start and even the *ground truth* flaps between
        // network- and sender-limited; at 8:1 over 10G the queue dominates
        // the RTT, per-flow windows are big enough for fast recovery, and
        // the scenario is network-bound by any reading.
        config.num_flows = 8;
        if (config.ecn) {
          config.buffer_bytes = 64 * 1024;
          config.ecn_threshold_bytes = 32 * 1024;
        } else {
          config.edge_bps = 10e9;
          config.buffer_bytes = 256 * 1024;
        }
      }
      break;
    case DiagScenario::kReceiverBound:
      // A 16 KB receive window caps each flow at ~rwnd/RTT, far below the
      // bottleneck; the oversized buffer keeps congestion out of the
      // picture entirely (no drops, no marks, no backpressure).
      config.num_flows = 2;
      config.rcvbuf_bytes = 16 * 1024;
      config.buffer_bytes = 2 * 1024 * 1024;
      break;
    case DiagScenario::kSenderPaced:
      // 4 KB every 200 us per flow: ~160 Mb/s offered against a >=10G
      // path. Every epoch sees data but nothing ever queues.
      config.num_flows = 4;
      config.buffer_bytes = 256 * 1024;
      break;
  }
  return config;
}

DiagnosisValidationResult RunDiagnosisValidation(const DiagnosisValidationConfig& config) {
  const int n = config.num_flows;
  assert(n >= 1);

  FabricConfig fabric;
  if (config.shape == FabricShape::kDumbbell) {
    fabric = FabricConfig::Dumbbell(n, 1, config.bottleneck_bps);
    fabric.trunk_link.propagation = config.trunk_propagation;
    fabric.trunk_port.buffer_bytes = config.buffer_bytes;
    fabric.trunk_port.ecn_threshold_bytes = config.ecn_threshold_bytes;
  } else {
    fabric = FabricConfig::Star(n, 1);
    fabric.edge_link.bandwidth_bps = config.edge_bps;
    fabric.server_port.buffer_bytes = config.buffer_bytes;
    fabric.server_port.ecn_threshold_bytes = config.ecn_threshold_bytes;
  }
  fabric.seed = config.seed;

  FabricTopology topo(fabric);
  Simulator& sim = topo.sim();

  TcpConfig client_tcp;
  client_tcp.nodelay = true;
  client_tcp.sndbuf_bytes = config.sndbuf_bytes;
  client_tcp.rcvbuf_bytes = config.rcvbuf_bytes;
  client_tcp.e2e_exchange_interval = Duration::Zero();  // Pure transport.
  client_tcp.cc.algorithm = config.algorithm;
  client_tcp.cc.ecn = config.ecn;
  client_tcp.rtt.initial_rto = Duration::Millis(10);  // Datacenter RTO floor.
  client_tcp.rtt.min_rto = Duration::Millis(1);
  const TcpConfig server_tcp = client_tcp;
  const uint32_t mss = client_tcp.mss;

  // The observer under test, tapping the switch the bottleneck port lives
  // on (left switch on a dumbbell sees data before the trunk queue; the
  // single star switch sees everything).
  FlowDiagnoser diag(&sim, config.diag);
  topo.client_switch()->SetTap(&diag);

  std::vector<ConnectedPair> conns(static_cast<size_t>(n));
  std::vector<uint64_t> rx_bytes(static_cast<size_t>(n), 0);
  for (int i = 0; i < n; ++i) {
    conns[i] = topo.Connect(i, 0, static_cast<uint64_t>(i + 1), client_tcp, server_tcp);
    TcpEndpoint* src = conns[i].a;
    TcpEndpoint* dst = conns[i].b;
    dst->SetReadableCallback([dst, &rx_bytes, i] { rx_bytes[i] += dst->Recv().bytes; });
    if (config.scenario == DiagScenario::kSenderPaced) {
      // Heap-stable self-rescheduling closure: the pacer outlives each
      // scheduled invocation.
      auto tick = std::make_shared<std::function<void()>>();
      *tick = [&sim, src, tick, chunk = config.paced_chunk_bytes,
               interval = config.paced_interval] {
        src->Send(chunk, MessageRecord{});
        sim.Schedule(interval, *tick);
      };
      sim.Schedule(config.paced_interval, *tick);
    } else {
      auto pump = [src, chunk = config.chunk_bytes] {
        while (src->Send(chunk, MessageRecord{})) {
        }
      };
      src->SetWritableCallback(pump);
      sim.Schedule(Duration::Zero(), pump);
    }
  }

  SwitchPort* bottleneck = FindBottleneck(&topo);
  assert(bottleneck != nullptr);

  const TimePoint measure_start = sim.Now() + config.warmup;
  const TimePoint measure_end = measure_start + config.measure;
  const int64_t epoch_ns = config.diag.epoch.nanos();

  DiagnosisValidationResult result;

  // ---- Ground-truth sampling ----
  // Offset by half a sample so truth ticks never collide with epoch-poll
  // ticks: a sample at an exact boundary would belong to the *next* epoch
  // and same-timestamp execution order would decide which bucket it lands
  // in. The half-step offset makes bucketing order-independent.
  std::vector<std::array<uint64_t, kNumFlowLimits>> truth_counts(
      static_cast<size_t>(n), std::array<uint64_t, kNumFlowLimits>{});
  RunningStats true_cwnd, inferred_cwnd, cwnd_err, true_rtt, inferred_rtt, rtt_err;
  std::function<void()> truth_tick = [&] {
    for (int i = 0; i < n; ++i) {
      const TcpEndpoint& src = *conns[i].a;
      const FlowLimit label = TruthLabel(src, mss);
      ++truth_counts[i][static_cast<size_t>(label)];

      const FlowDiagnoser::FlowSnapshot snap =
          diag.Peek(static_cast<uint64_t>(i + 1), /*from_a=*/true);
      const double tc = static_cast<double>(src.congestion().cwnd_bytes());
      true_cwnd.Add(tc);
      if (snap.inferred_cwnd_bytes > 0) {
        const double ic = static_cast<double>(snap.inferred_cwnd_bytes);
        inferred_cwnd.Add(ic);
        if (tc > 0) {
          cwnd_err.Add(std::abs(ic - tc) / tc * 100.0);
        }
      }
      const std::optional<Duration> srtt = src.rtt().srtt();
      if (srtt.has_value()) {
        true_rtt.Add(srtt->ToMicros());
        if (snap.srtt_us > 0) {
          inferred_rtt.Add(snap.srtt_us);
          rtt_err.Add(std::abs(snap.srtt_us - srtt->ToMicros()) / srtt->ToMicros() * 100.0);
        }
      }
    }
    if (sim.Now() + config.truth_sample < measure_end) {
      sim.Schedule(config.truth_sample, truth_tick);
    }
  };
  sim.ScheduleAt(measure_start + Duration::Nanos(config.truth_sample.nanos() / 2), truth_tick);

  // ---- Epoch-boundary polls ----
  // The first scored epoch is the first one starting at/after
  // measure_start; a poll at its exclusive end closes it (flow_diag.h).
  const int64_t first_closed_epoch =
      (measure_start.nanos() + epoch_ns - 1) / epoch_ns;  // ceil
  uint64_t correct_by_limit[kNumFlowLimits] = {};
  uint64_t truth_by_limit[kNumFlowLimits] = {};
  uint64_t inferred_by_limit[kNumFlowLimits] = {};
  std::function<void()> poll_tick = [&] {
    const TimePoint now = sim.Now();
    for (int i = 0; i < n; ++i) {
      uint64_t samples = 0;
      for (const uint64_t c : truth_counts[i]) {
        samples += c;
      }
      const FlowVerdict verdict =
          diag.ClosedVerdict(static_cast<uint64_t>(i + 1), /*from_a=*/true, now);
      if (verdict.epoch_end == now && samples > 0) {
        if (verdict.limit == FlowLimit::kIdle) {
          ++result.epochs_idle_skipped;
        } else {
          const FlowLimit truth = MajorityLabel(truth_counts[i].data());
          ++result.epochs_compared;
          ++result.confusion[static_cast<size_t>(truth)][static_cast<size_t>(verdict.limit)];
          ++truth_by_limit[static_cast<size_t>(truth)];
          ++inferred_by_limit[static_cast<size_t>(verdict.limit)];
          if (truth == verdict.limit) {
            ++result.epochs_correct;
            ++correct_by_limit[static_cast<size_t>(truth)];
          }
        }
      }
      truth_counts[i] = {};
    }
    if (now + config.diag.epoch <= measure_end) {
      sim.Schedule(config.diag.epoch, poll_tick);
    }
  };
  sim.ScheduleAt(TimePoint::FromNanos((first_closed_epoch + 1) * epoch_ns), poll_tick);

  // ---- Optional aligned inferred-vs-true series for flow 0 ----
  std::optional<TimeSeriesSampler> sampler;
  if (config.series_interval > Duration::Zero()) {
    sampler.emplace(&sim, config.series_interval);
    sampler->AddGauge("true_cwnd_bytes", [&] {
      return static_cast<double>(conns[0].a->congestion().cwnd_bytes());
    });
    sampler->AddGauge("inferred_cwnd_bytes", [&] {
      return static_cast<double>(diag.Peek(1, true).inferred_cwnd_bytes);
    });
    sampler->AddGauge("true_flight_bytes",
                      [&] { return static_cast<double>(conns[0].a->flight_bytes()); });
    sampler->AddGauge("inferred_flight_bytes", [&] {
      return static_cast<double>(diag.Peek(1, true).current_flight_bytes);
    });
    sampler->AddGauge("true_srtt_us", [&] {
      const std::optional<Duration> srtt = conns[0].a->rtt().srtt();
      return srtt.has_value() ? srtt->ToMicros() : 0.0;
    });
    sampler->AddGauge("inferred_srtt_us", [&] { return diag.Peek(1, true).srtt_us; });
    sampler->AddGauge("diag_verdict",
                      [&] { return static_cast<double>(diag.Peek(1, true).last_limit); });
    sampler->AddGauge("bottleneck_queue_bytes",
                      [&] { return static_cast<double>(bottleneck->queue_bytes()); });
    sampler->Start(measure_end);
  }

  std::vector<uint64_t> rx_at_start(static_cast<size_t>(n), 0);
  sim.ScheduleAt(measure_start, [&] { rx_at_start = rx_bytes; });

  sim.RunUntil(measure_end);

  // ---- Score ----
  if (result.epochs_compared > 0) {
    result.accuracy = static_cast<double>(result.epochs_correct) /
                      static_cast<double>(result.epochs_compared);
    for (size_t l = 0; l < kNumFlowLimits; ++l) {
      result.inferred_dwell[l] = static_cast<double>(inferred_by_limit[l]) /
                                 static_cast<double>(result.epochs_compared);
      result.truth_dwell[l] = static_cast<double>(truth_by_limit[l]) /
                              static_cast<double>(result.epochs_compared);
    }
  }
  result.mean_true_cwnd_bytes = true_cwnd.mean();
  result.mean_inferred_cwnd_bytes = inferred_cwnd.mean();
  result.cwnd_err_pct = cwnd_err.mean();
  result.mean_true_srtt_us = true_rtt.mean();
  result.mean_inferred_srtt_us = inferred_rtt.mean();
  result.rtt_err_pct = rtt_err.mean();

  for (int i = 0; i < n; ++i) {
    if (const FlowDiagCounters* c = diag.CountersFor(static_cast<uint64_t>(i + 1), true)) {
      result.rtt_samples += c->rtt_samples;
      result.diag_retransmits += c->retransmits;
      result.diag_drops += c->drops;
      result.diag_ce_marked += c->ce_marked;
      result.diag_ece_acks += c->ece_acks;
      result.diag_zero_window_acks += c->zero_window_acks;
    }
    result.true_retransmits += conns[i].a->stats().retransmits;
    result.aggregate_goodput_bps +=
        static_cast<double>(rx_bytes[i] - rx_at_start[i]) * 8.0 / config.measure.ToSeconds();
  }
  result.non_tcp_packets = diag.non_tcp_packets();
  result.untracked_packets = diag.untracked_packets();
  for (const auto& [port, tally] : diag.port_tallies()) {
    result.port_tallies.emplace_back(port, tally);
  }
  if (sampler.has_value()) {
    result.series = std::make_shared<const TimeSeries>(sampler->TakeSeries());
  }
  return result;
}

DiagnosisFallbackResult RunDiagnosisFallback(const DiagnosisFallbackConfig& config) {
  // One client, one server, one switch: the smallest fabric with an
  // in-network vantage point.
  FabricConfig fabric = FleetExperimentConfig::DefaultFleetFabric(1);
  fabric.seed = config.seed;
  FabricTopology topo(fabric);
  Simulator& sim = topo.sim();

  TcpConfig client_tcp = RedisExperimentConfig::DefaultClientTcp();
  TcpConfig server_tcp = RedisExperimentConfig::DefaultServerTcp();
  client_tcp.e2e_exchange_interval = config.exchange_interval;
  server_tcp.e2e_exchange_interval = config.exchange_interval;

  const uint64_t conn_id = 1;
  ConnectedPair conn = topo.Connect(0, 0, conn_id, client_tcp, server_tcp);
  TcpEndpoint* server_ep = conn.b;

  RedisServerApp::Config server_config;
  server_config.costs = config.server_costs;
  RedisServerApp server(&sim, conn.b, server_config);
  if (config.prefill_store) {
    for (uint64_t key = 0; key < config.mix.key_space; ++key) {
      server.mutable_store().Set(key, config.mix.get_value_len);
    }
  }

  // ---- Scripted metadata-withhold windows ----
  const TimePoint start = sim.Now();
  FaultSchedule schedule;
  std::vector<std::pair<TimePoint, TimePoint>> windows;
  for (int k = 0; k < config.withhold_count; ++k) {
    const TimePoint at = start + config.withhold_start + config.withhold_period * k;
    schedule.Add(FaultKind::kMetaWithhold, at, config.withhold_duration);
    windows.emplace_back(at, at + config.withhold_duration);
  }
  FaultTargets targets;
  targets.client_host = &topo.client_host(0);
  targets.server_host = &topo.server_host(0);
  FaultInjector injector(&sim, schedule, targets);
  server_ep->SetMetadataFilter(injector.MakeMetadataFilter());

  EstimatorHealth health(config.health, sim.Now());
  server_ep->SetEstimateCallback([&](const ConnectionEstimator& est) {
    health.OnExchange(sim.Now(), est.last_verdict());
  });

  // ---- The diagnoser: attached in both arms (passive either way, so the
  // A and B runs see byte-identical traffic); only the signal wiring
  // differs. Fresh in either direction counts — a request-quiet flow whose
  // responses still transit is just as alive.
  FlowDiagnoser diag(&sim, config.diag);
  topo.server_switch()->SetTap(&diag);
  if (config.use_diag) {
    health.SetDiagSignal([&diag, conn_id](TimePoint now) {
      return diag.Fresh(conn_id, true, now) || diag.Fresh(conn_id, false, now);
    });
  }

  // ---- Client ----
  LancetClient::Config client_config;
  client_config.rate_rps = config.rate_rps;
  client_config.mix = config.mix;
  client_config.costs = config.client_costs;
  client_config.warmup = config.warmup;
  client_config.measure = config.measure;
  client_config.seed = config.seed;
  client_config.use_hints = config.client_hints;
  LancetClient client(&sim, conn.a, client_config);

  const TimePoint measure_start = start + config.warmup;
  const TimePoint measure_end = measure_start + config.measure;
  const TimePoint run_end = measure_end + config.drain;

  // ---- Controller + fallback chain (robustness.cc's ladder, minus the
  // crash/reconnect machinery: withholds never kill the transport) ----
  SloThroughputPolicy policy(config.slo);
  ToggleController toggle(config.controller, &policy, Rng(config.seed + 7),
                          /*initial_on=*/false);
  DiagnosisFallbackResult result;
  std::function<void()> control_tick = [&] {
    const TimePoint now = sim.Now();
    health.Tick(now);

    std::optional<PerfSample> sample;
    bool force_static = false;
    switch (health.state()) {
      case HealthState::kFull: {
        // Single connection: the estimator's own aggregate is the fleet
        // aggregate; consume it directly.
        if (server_ep->estimator().has_estimate()) {
          const E2eEstimate est = server_ep->estimator().estimate();
          if (est.valid()) {
            sample = PerfSample{*est.latency, est.a_send_throughput};
          }
        }
        break;
      }
      case HealthState::kLocalOnly:
      case HealthState::kDiagAssisted: {
        // Peer counters untrusted (kLocalOnly) or dead-but-vouched-for
        // (kDiagAssisted): estimate from the server's own queues only.
        const E2eEstimate local =
            server_ep->estimator().LocalOnlyEstimate(server_ep->queues(), now);
        if (local.valid()) {
          sample = PerfSample{*local.latency, local.a_send_throughput};
        }
        break;
      }
      case HealthState::kStatic:
        force_static = true;
        break;
    }

    if (sample.has_value() &&
        (!std::isfinite(sample->latency.ToMicros()) || !std::isfinite(sample->throughput))) {
      ++result.non_finite_samples;
      sample.reset();
    }

    const bool was_frozen = toggle.frozen();
    if (force_static && !was_frozen) {
      toggle.SetFrozen(true, now);
    } else if (!force_static && was_frozen) {
      toggle.SetFrozen(false, now);
    }
    const bool on = toggle.OnTick(now, sample);
    server_ep->SetNoDelay(force_static ? true : !on);

    if (now >= measure_start && now < measure_end) {
      ++result.ticks;
      result.frozen_ticks += toggle.frozen() ? 1 : 0;
    }
    if (now + config.controller.tick < run_end) {
      sim.Schedule(config.controller.tick, control_tick);
    }
  };
  sim.Schedule(config.controller.tick, control_tick);

  // ---- Optional gauges ----
  std::optional<TimeSeriesSampler> sampler;
  if (config.series_interval > Duration::Zero()) {
    sampler.emplace(&sim, config.series_interval);
    sampler->AddGauge("health_state", [&] { return static_cast<double>(health.state()); });
    sampler->AddGauge("controller_frozen", [&] { return toggle.frozen() ? 1.0 : 0.0; });
    sampler->AddGauge("diag_fresh", [&] {
      return (diag.Fresh(conn_id, true, sim.Now()) || diag.Fresh(conn_id, false, sim.Now()))
                 ? 1.0
                 : 0.0;
    });
    sampler->AddGauge("diag_flight_bytes", [&] {
      return static_cast<double>(diag.Peek(conn_id, true).current_flight_bytes);
    });
    sampler->Start(run_end);
  }

  injector.Arm();
  client.Start();
  sim.RunUntil(run_end);

  // ---- Results ----
  result.offered_krps = config.rate_rps / 1e3;
  const LancetClient::Results& lancet = client.results();
  result.achieved_krps = lancet.achieved_rps / 1e3;
  result.measured_mean_us = lancet.latency_us.mean();
  result.measured_p99_us = lancet.latency_hist.Percentile(99);
  result.requests_completed = lancet.measured;

  result.time_in_full_ms = health.TimeIn(HealthState::kFull, sim.Now()).ToMicros() / 1e3;
  result.time_in_local_ms = health.TimeIn(HealthState::kLocalOnly, sim.Now()).ToMicros() / 1e3;
  result.time_in_diag_ms =
      health.TimeIn(HealthState::kDiagAssisted, sim.Now()).ToMicros() / 1e3;
  result.time_in_static_ms = health.TimeIn(HealthState::kStatic, sim.Now()).ToMicros() / 1e3;

  // Dwell intersected with the scheduled withhold windows, from the
  // transition log (append a sentinel closing the final open span).
  std::vector<std::pair<TimePoint, HealthState>> spans = health.transitions();
  spans.emplace_back(sim.Now(), health.state());
  for (const auto& [wstart, wend] : windows) {
    result.withhold_total_ms += (wend - wstart).ToMicros() / 1e3;
    for (size_t i = 0; i + 1 < spans.size(); ++i) {
      const TimePoint s0 = std::max(spans[i].first, wstart);
      const TimePoint s1 = std::min(spans[i + 1].first, wend);
      if (s1 <= s0) {
        continue;
      }
      const double overlap_ms = (s1 - s0).ToMicros() / 1e3;
      if (spans[i].second == HealthState::kStatic) {
        result.static_in_withhold_ms += overlap_ms;
      } else if (spans[i].second == HealthState::kDiagAssisted) {
        result.diag_in_withhold_ms += overlap_ms;
      }
    }
  }

  result.health = health.counters();
  result.faults = injector.counters();
  for (const bool dir : {true, false}) {
    if (const FlowDiagCounters* c = diag.CountersFor(conn_id, dir)) {
      result.diag_data_packets += c->data_packets;
      result.diag_rtt_samples += c->rtt_samples;
    }
  }
  if (sampler.has_value()) {
    result.series = std::make_shared<const TimeSeries>(sampler->TakeSeries());
  }
  return result;
}

}  // namespace e2e
