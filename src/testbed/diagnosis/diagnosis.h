// Diagnosis experiment drivers (DESIGN.md §14): validates the in-switch
// FlowDiagnoser (src/net/fabric/diag) against simulator ground truth, and
// quantifies what the diag signal buys the estimator-health fallback chain.
//
// Two drivers:
//
//   RunDiagnosisValidation  bulk/paced flows over a dumbbell or star fabric
//       engineered so the *true* binding constraint is known by
//       construction (network-bound, receiver-bound, or sender-paced). A
//       ground-truth labeler samples each sender's real cwnd / rwnd /
//       flight / recovery state (directly readable in-sim) on a fine grid,
//       reduces each diagnosis epoch to a majority label, and scores the
//       diagnoser's per-epoch verdicts against it: classification accuracy,
//       a full confusion matrix, per-limit dwell fractions, and inferred-
//       vs-true cwnd/RTT error.
//
//   RunDiagnosisFallback  the health-chain A/B: one Lancet client drives a
//       Redis server through a star fabric while scripted kMetaWithhold
//       windows kill the metadata channel. Both arms attach the diagnoser
//       (passive, so traffic is byte-identical); only `use_diag` wires
//       FlowDiagnoser::Fresh into EstimatorHealth::SetDiagSignal. With the
//       signal, a withhold bottoms out at kDiagAssisted (controller keeps
//       the local-only estimate); without it the chain freezes at kStatic.
//       The result reports frozen/diag dwell inside the withhold windows —
//       the bench asserts the diag arm strictly reduces frozen dwell.
//
// Both drivers schedule only plain simulator callbacks (pacing, sampling,
// epoch polls); the diagnoser itself stays passive per its SwitchTap
// contract.

#ifndef SRC_TESTBED_DIAGNOSIS_DIAGNOSIS_H_
#define SRC_TESTBED_DIAGNOSIS_DIAGNOSIS_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/apps/cost_profile.h"
#include "src/apps/workload.h"
#include "src/core/controller.h"
#include "src/core/health.h"
#include "src/net/fabric/diag/flow_diag.h"
#include "src/obs/timeseries.h"
#include "src/tcp/cc/congestion_control.h"
#include "src/testbed/fabric_topology.h"
#include "src/testbed/faults/fault_schedule.h"
#include "src/testbed/faults/injector.h"

namespace e2e {

// What the scenario is engineered to make true, i.e. the expected majority
// ground-truth label. The validation result does not assume it — truth is
// sampled from the endpoints — but scenario construction targets it.
enum class DiagScenario : uint8_t {
  kNetworkBound = 0,  // Bulk flows into an undersized bottleneck.
  kReceiverBound,     // Bulk flows throttled by a tiny receive buffer.
  kSenderPaced,       // Application sends far below every other limit.
};
inline constexpr int kNumDiagScenarios = 3;

const char* DiagScenarioName(DiagScenario scenario);

struct DiagnosisValidationConfig {
  DiagScenario scenario = DiagScenario::kNetworkBound;
  // kDumbbell: trunk bottleneck. kStar: the server downlink port is the
  // bottleneck (the incast regime when buffer_bytes is small).
  FabricShape shape = FabricShape::kDumbbell;
  int num_flows = 4;
  CcAlgorithm algorithm = CcAlgorithm::kReno;
  bool ecn = false;

  double bottleneck_bps = 10e9;          // Dumbbell trunk rate.
  double edge_bps = 100e9;               // Star edge-link rate.
  Duration trunk_propagation = Duration::MicrosF(50.0);
  size_t buffer_bytes = 256 * 1024;      // Bottleneck port buffer.
  size_t ecn_threshold_bytes = 0;        // 0 = no marking.
  size_t sndbuf_bytes = 8 * 1024 * 1024;
  size_t rcvbuf_bytes = 8 * 1024 * 1024;
  uint32_t chunk_bytes = 64 * 1024;      // Bulk-pump write size.

  // kSenderPaced: every flow writes `paced_chunk_bytes` each
  // `paced_interval` instead of running the bulk pump.
  Duration paced_interval = Duration::Micros(200);
  uint32_t paced_chunk_bytes = 4096;

  Duration warmup = Duration::Millis(20);
  Duration measure = Duration::Millis(200);
  uint64_t seed = 1;

  DiagConfig diag;                       // Diagnoser under test.
  Duration truth_sample = Duration::Micros(100);
  // When > 0, records aligned inferred-vs-true gauges for flow 0 (cwnd,
  // RTT, flight, verdict) plus the bottleneck queue. Pure reads: attaching
  // the sampler never changes what the run computes.
  Duration series_interval = Duration::Zero();

  // Scenario presets: picks flows, buffers, and diag knobs so the intended
  // limit actually binds on the given shape/CC. Fields stay overridable.
  static DiagnosisValidationConfig For(DiagScenario scenario, FabricShape shape,
                                       CcAlgorithm algorithm);
};

struct DiagnosisValidationResult {
  // Per-epoch classification score. An epoch is compared when the
  // diagnoser closed it exactly at the poll boundary with a non-idle
  // verdict and ground truth sampled at least once inside it.
  uint64_t epochs_compared = 0;
  uint64_t epochs_correct = 0;
  uint64_t epochs_idle_skipped = 0;  // Diagnoser said idle (not scored).
  double accuracy = 0;               // correct / compared (0 if none).
  // confusion[truth][inferred], kNumFlowLimits^2; truth row kIdle unused.
  uint64_t confusion[kNumFlowLimits][kNumFlowLimits] = {};
  // Fraction of compared epochs the diagnoser spent in each limit.
  double inferred_dwell[kNumFlowLimits] = {};
  double truth_dwell[kNumFlowLimits] = {};

  // Inference quality, sampled on the truth grid (flow-averaged).
  double mean_true_cwnd_bytes = 0;
  double mean_inferred_cwnd_bytes = 0;
  double cwnd_err_pct = 0;  // Mean |inferred-true|/true over samples.
  double mean_true_srtt_us = 0;
  double mean_inferred_srtt_us = 0;
  double rtt_err_pct = 0;
  uint64_t rtt_samples = 0;  // Diagnoser probe samples, all flows.

  // Aggregate diagnoser evidence (all flows, whole run).
  uint64_t diag_retransmits = 0;
  uint64_t diag_drops = 0;
  uint64_t diag_ce_marked = 0;
  uint64_t diag_ece_acks = 0;
  uint64_t diag_zero_window_acks = 0;
  uint64_t true_retransmits = 0;  // Endpoint-reported, for cross-checking.
  uint64_t non_tcp_packets = 0;
  uint64_t untracked_packets = 0;

  double aggregate_goodput_bps = 0;

  // Cumulative per-egress-port classified-epoch tallies.
  std::vector<std::pair<std::string, FlowDiagnoser::PortTally>> port_tallies;

  // Non-null iff config.series_interval > 0.
  std::shared_ptr<const TimeSeries> series;
};

DiagnosisValidationResult RunDiagnosisValidation(const DiagnosisValidationConfig& config);

struct DiagnosisFallbackConfig {
  // The A/B bit: wire FlowDiagnoser::Fresh into the health chain?
  bool use_diag = true;

  double rate_rps = 20000;
  WorkloadMix mix = WorkloadMix::SetOnly16K();
  AppCosts client_costs = BareMetalClientCosts();
  AppCosts server_costs = RedisServerCosts();

  Duration warmup = Duration::Millis(100);
  Duration measure = Duration::Millis(400);
  Duration drain = Duration::Millis(50);
  uint64_t seed = 1;
  bool prefill_store = true;
  bool client_hints = true;

  ControllerConfig controller;
  Duration slo = Duration::Micros(500);
  Duration exchange_interval = Duration::Millis(1);
  HealthConfig health;
  DiagConfig diag;

  // kMetaWithhold windows, measured from sim start: `withhold_count`
  // windows of `withhold_duration`, the first at `withhold_start`, spaced
  // `withhold_period` apart. Withholds must be longer than
  // health.static_after for the no-diag arm to freeze at all.
  Duration withhold_start = Duration::Millis(150);
  Duration withhold_duration = Duration::Millis(100);
  Duration withhold_period = Duration::Millis(200);
  int withhold_count = 2;

  // When > 0, records health state / frozen flag / diag freshness gauges.
  Duration series_interval = Duration::Zero();
};

struct DiagnosisFallbackResult {
  double offered_krps = 0;
  double achieved_krps = 0;
  double measured_mean_us = 0;
  double measured_p99_us = 0;
  uint64_t requests_completed = 0;

  uint64_t ticks = 0;          // Control ticks in the measure window.
  uint64_t frozen_ticks = 0;   // Ticks with the controller frozen.
  uint64_t non_finite_samples = 0;  // Must be zero; bench asserts.

  // Health-chain dwell over the whole run.
  double time_in_full_ms = 0;
  double time_in_local_ms = 0;
  double time_in_diag_ms = 0;
  double time_in_static_ms = 0;
  // Dwell intersected with the scheduled withhold windows — the A/B's
  // headline: diag-assisted mode exists to keep this out of kStatic.
  double static_in_withhold_ms = 0;
  double diag_in_withhold_ms = 0;
  double withhold_total_ms = 0;

  HealthCounters health;
  FaultCounters faults;
  uint64_t diag_data_packets = 0;  // Diagnoser's view of the tapped flow.
  uint64_t diag_rtt_samples = 0;

  std::shared_ptr<const TimeSeries> series;
};

DiagnosisFallbackResult RunDiagnosisFallback(const DiagnosisFallbackConfig& config);

}  // namespace e2e

#endif  // SRC_TESTBED_DIAGNOSIS_DIAGNOSIS_H_
