// The full Redis/Lancet experiment of the paper's §4, as a reusable driver:
// one run = one (offered load, batching mode) point producing measured
// ground-truth latency, offline counter-based estimates in every unit mode,
// and CPU utilizations. Benches sweep this to regenerate Figures 2 and 4.

#ifndef SRC_TESTBED_EXPERIMENT_H_
#define SRC_TESTBED_EXPERIMENT_H_

#include <cstdint>
#include <optional>

#include "src/apps/cost_profile.h"
#include "src/apps/lancet.h"
#include "src/apps/workload.h"
#include "src/core/aimd.h"
#include "src/core/controller.h"
#include "src/core/policy.h"
#include "src/testbed/offline_analysis.h"
#include "src/testbed/topology.h"

namespace e2e {

// How the server's response batching is driven.
enum class BatchMode {
  kStaticOff,  // TCP_NODELAY (Redis's shipped default).
  kStaticOn,   // Nagle always enabled.
  kDynamic,    // ε-greedy toggling on end-to-end estimates (paper §5).
  kAimd,       // AIMD cork-limit adaptation (paper §5).
};

const char* BatchModeName(BatchMode mode);

struct RedisExperimentConfig {
  double rate_rps = 20000;  // Aggregate across all connections.
  BatchMode batch_mode = BatchMode::kStaticOff;
  WorkloadMix mix = WorkloadMix::SetOnly16K();
  // Concurrent client connections; the batching setting is applied to all
  // of them and (in dynamic modes) driven by their *averaged* estimates,
  // per §3.2's multi-connection note.
  int num_connections = 1;

  AppCosts client_costs = BareMetalClientCosts();
  AppCosts server_costs = RedisServerCosts();
  TopologyConfig topology = DefaultRedisTopology();

  Duration warmup = Duration::Millis(150);
  Duration measure = Duration::Millis(600);
  Duration drain = Duration::Millis(50);
  Duration collect_interval = Duration::Millis(1);
  uint64_t seed = 1;
  bool prefill_store = true;  // Preload keys so GETs hit.
  bool client_hints = true;
  // Client-side syscall batching (see LancetClient::Config::pipeline_depth).
  int pipeline_depth = 1;

  // Controller parameters (kDynamic / kAimd).
  ControllerConfig controller;
  Duration slo = Duration::Micros(500);
  AimdBatchController::Config aimd;

  // Metadata exchange period used by both endpoints (paper §5 discusses
  // reducing the frequency; estimates stay correct regardless).
  Duration exchange_interval = Duration::Millis(1);

  // Connections whose last accepted exchange is older than this drop out
  // of the server's aggregate estimate instead of freezing it
  // (aggregator.h staleness bound; zero disables).
  Duration aggregator_staleness = Duration::Millis(10);

  // Keep the per-tick byte-mode estimate series of connection 0 in the
  // result (for offline would-have-been toggle analysis, paper §3.4/§4).
  bool keep_series = false;

  // Print a per-endpoint TCP stats table (retransmits, delayed-ack fires,
  // out-of-order segments, ...) for connection 0 at the end of the run.
  bool print_endpoint_stats = false;

  // Default stack/NIC/link calibration; see DESIGN.md §5. The dominant
  // knobs: the server's per-(small-)segment transmit path cost is the
  // amortizable per-batch cost β, and the server app's per-request work is
  // α. Their ~1:1 ratio is what makes Nagle roughly double the sustainable
  // load, as in the paper.
  static TopologyConfig DefaultRedisTopology();
  static TcpConfig DefaultClientTcp();
  static TcpConfig DefaultServerTcp();
};

struct RedisExperimentResult {
  double offered_krps = 0;
  double achieved_krps = 0;
  // Ground truth (send -> response read), measurement window only.
  double measured_mean_us = 0;
  double measured_p50_us = 0;
  double measured_p99_us = 0;
  // App-perceived ground truth (request created -> response processed),
  // including client-side queueing/batching before the send syscall.
  double measured_sojourn_us = 0;
  // Mean of the server's *online* estimates (computed from wire-exchanged
  // metadata payloads) over the window; empty when no exchange completed.
  std::optional<double> online_est_us;
  // Offline window estimates per unit mode (µs); empty when undefined.
  std::optional<double> est_bytes_us;
  std::optional<double> est_packets_us;
  std::optional<double> est_syscalls_us;
  std::optional<double> est_hints_us;
  // Estimated throughput (request rate) from the syscall/hint queues.
  double est_krps = 0;

  // Mean latency components (µs): where the measured latency lives.
  double comp_request_leg_us = 0;   // Client send() -> server picks it up.
  double comp_server_us = 0;        // Server processing + send syscall.
  double comp_response_leg_us = 0;  // Server send() -> client reads it.

  // CPU utilization over the measurement window, [0, 1].
  double client_app_util = 0;
  double client_softirq_util = 0;
  double server_app_util = 0;
  double server_softirq_util = 0;

  // Network health over the measurement window (per-endpoint; `client` is
  // side A). Retransmits/delayed-ack fires are whole-run totals from
  // TcpEndpoint::Stats summed across connections.
  uint64_t client_retransmits = 0;
  uint64_t server_retransmits = 0;
  uint64_t client_delack_fires = 0;
  uint64_t server_delack_fires = 0;
  uint64_t rx_checksum_drops = 0;  // Both NICs (corrupted-on-wire arrivals).
  // Per-stage impairment counter deltas over the measurement window, from
  // connection 0's collector. Empty when the direction has no chain.
  ImpairmentSnapshot impair_c2s;
  ImpairmentSnapshot impair_s2c;

  // Whole-run TcpEndpoint::Stats snapshots for connection 0 (client = side
  // A), so benches can render TcpEndpointStatsTable rows after the driver
  // returns — the endpoints themselves die with the topology. Copying the
  // counters out keeps all bench printing in commit order under the
  // parallel sweep executor (DESIGN.md §12).
  TcpEndpoint::Stats client_endpoint_stats;
  TcpEndpoint::Stats server_endpoint_stats;

  // Batching behavior.
  uint64_t server_data_segments = 0;
  uint64_t server_wire_packets = 0;
  uint64_t server_nagle_holds = 0;
  double responses_per_packet = 0;
  uint64_t controller_switches = 0;
  double duty_cycle_on = 0;       // Fraction of ticks with batching enabled.
  double aimd_limit_bytes = 0;    // Mean AIMD cork limit over the window.
  uint64_t requests_completed = 0;
  uint64_t retransmits = 0;
  uint64_t exchanges = 0;         // Metadata payloads the server received.

  // Per-collect-interval byte-mode estimates (only when keep_series).
  EstimateSeries series_bytes;

  // The individual Figure-3 formula terms over the window (byte mode,
  // connection 0): client = side A, server = side B.
  EndpointAverages terms_client_bytes;
  EndpointAverages terms_server_bytes;

  std::optional<double> EstimateFor(UnitMode mode) const {
    switch (mode) {
      case UnitMode::kBytes:
        return est_bytes_us;
      case UnitMode::kPackets:
        return est_packets_us;
      case UnitMode::kSyscalls:
        return est_syscalls_us;
      case UnitMode::kHints:
        return est_hints_us;
    }
    return std::nullopt;
  }

  // Signed estimator error vs. measured ground truth, in percent:
  // (estimate - measured) / measured * 100. The degradation of this number
  // under impairment is what bench/impairment_sweep quantifies.
  std::optional<double> EstimateErrorPct(UnitMode mode) const {
    const std::optional<double> est = EstimateFor(mode);
    if (!est.has_value() || measured_mean_us <= 0) {
      return std::nullopt;
    }
    return (*est - measured_mean_us) / measured_mean_us * 100.0;
  }
};

RedisExperimentResult RunRedisExperiment(const RedisExperimentConfig& config);

}  // namespace e2e

#endif  // SRC_TESTBED_EXPERIMENT_H_
