#include "src/testbed/fabric_topology.h"

#include <cassert>
#include <utility>

namespace e2e {
namespace {

// Hosts keep the historical bare names when a side has exactly one member,
// so the two-host facade (and its tests) see "client"/"server" unchanged.
std::string HostName(const char* side, int index, int count) {
  return count == 1 ? side : side + std::to_string(index);
}

}  // namespace

FabricConfig FabricConfig::Star(int clients, int servers) {
  FabricConfig config;
  config.shape = FabricShape::kStar;
  config.num_clients = clients;
  config.num_servers = servers;
  return config;
}

FabricConfig FabricConfig::Incast(int clients, size_t server_buffer_bytes) {
  FabricConfig config = Star(clients, 1);
  config.server_port.buffer_bytes = server_buffer_bytes;
  return config;
}

FabricConfig FabricConfig::Dumbbell(int clients, int servers, double trunk_bps) {
  FabricConfig config;
  config.shape = FabricShape::kDumbbell;
  config.num_clients = clients;
  config.num_servers = servers;
  config.trunk_link.bandwidth_bps = trunk_bps;
  return config;
}

FabricConfig FabricConfig::LeafSpine(int clients, int servers, int leaves, int spines,
                                     double trunk_bps) {
  FabricConfig config;
  config.shape = FabricShape::kLeafSpine;
  config.num_clients = clients;
  config.num_servers = servers;
  config.num_leaves = leaves;
  config.num_spines = spines;
  config.trunk_link.bandwidth_bps = trunk_bps;
  return config;
}

FabricTopology::FabricTopology(const FabricConfig& config) : config_(config) {
  assert(config_.num_clients >= 1 && config_.num_servers >= 1);
  assert(!IsLeafSpine() || (config_.num_leaves >= 1 && config_.num_spines >= 1));
  client_at_.resize(config_.num_clients);
  server_at_.resize(config_.num_servers);
  // Domain layout for sharded runs: one domain per host and per switch, in
  // a fixed order (clients, servers, switches; leaves before spines), so
  // the layout — and with it the execution order — depends only on the
  // topology, never on the worker count. kDirect has no fabric hop to use
  // as the lookahead window and keeps the classic single-domain engine
  // regardless of `shards`.
  sharded_ = config_.shards >= 1 && config_.shape != FabricShape::kDirect;
  if (sharded_) {
    for (int i = 0; i < config_.num_clients; ++i) {
      client_domains_.push_back(sim_.AddDomain());
    }
    for (int i = 0; i < config_.num_servers; ++i) {
      server_domains_.push_back(sim_.AddDomain());
    }
    int num_switches = 1;
    if (config_.shape == FabricShape::kDumbbell) {
      num_switches = 2;
    } else if (IsLeafSpine()) {
      num_switches = config_.num_leaves + config_.num_spines;
    }
    for (int s = 0; s < num_switches; ++s) {
      switch_domains_.push_back(sim_.AddDomain());
    }
    sim_.SetWorkers(config_.shards);
  }
  if (config_.shape == FabricShape::kDirect) {
    assert(config_.num_clients == 1 && config_.num_servers == 1);
    BuildDirect();
  } else if (IsLeafSpine()) {
    BuildLeafSpine();
  } else {
    BuildSwitched();
  }
  if (sharded_) {
    // The conservative lookahead: every cross-domain handoff is a link
    // traversal, so the minimum propagation across the fabric bounds how
    // far any domain may safely run ahead of the others. Link schedules can
    // rewrite propagation mid-run, so scripted values count toward the
    // minimum too.
    Duration lookahead = Duration::Max();
    for (const auto& link : links_) {
      lookahead = std::min(lookahead, link->propagation());
    }
    for (const ImpairmentConfig* impair : {&config_.c2s_impairment, &config_.s2c_impairment}) {
      for (const LinkScheduleStep& step : impair->schedule.steps) {
        if (step.propagation.has_value()) {
          lookahead = std::min(lookahead, *step.propagation);
        }
      }
    }
    assert(lookahead > Duration::Zero());
    sim_.SetLookahead(lookahead);
  }
  for (int i = 0; i < config_.num_clients; ++i) {
    client_stacks_.push_back(
        std::make_unique<TcpStack>(&sim_, client_hosts_[i].get(), config_.client.stack_costs));
  }
  for (int i = 0; i < config_.num_servers; ++i) {
    server_stacks_.push_back(
        std::make_unique<TcpStack>(&sim_, server_hosts_[i].get(), config_.server.stack_costs));
  }
}

Link* FabricTopology::MakeLink(const Link::Config& link_config, uint64_t seed, std::string name) {
  links_.push_back(std::make_unique<Link>(&sim_, link_config, Rng(seed), std::move(name)));
  return links_.back().get();
}

void FabricTopology::FinishRxPath(HostAttachment* at, Host* host, const ImpairmentConfig& impair,
                                  uint64_t impair_seed, const std::string& label) {
  if (impair.AnyStage()) {
    at->rx_impair = std::make_unique<ImpairmentChain>(&sim_, impair, Rng(impair_seed), label);
    at->rx_impair->SetSink(&host->nic());
    at->downlink->SetSink(at->rx_impair.get());
  } else {
    at->downlink->SetSink(&host->nic());
  }
  if (!impair.schedule.empty()) {
    at->rx_scheduler = std::make_unique<LinkScheduler>(&sim_, at->downlink, impair.schedule);
    at->rx_scheduler->Start();
  }
}

void FabricTopology::BuildDirect() {
  // The original TwoHostTopology wiring, with its exact seed constants: the
  // client's TX link doubles as the server's RX "downlink" and vice versa.
  const uint64_t seed = config_.seed;
  Link* c2s = MakeLink(config_.edge_link, seed * 2 + 1, "c2s");
  Link* s2c = MakeLink(config_.edge_link, seed * 2 + 2, "s2c");

  client_hosts_.push_back(
      std::make_unique<Host>(&sim_, c2s, config_.client.nic, "client", /*id=*/1));
  server_hosts_.push_back(
      std::make_unique<Host>(&sim_, s2c, config_.server.nic, "server", /*id=*/2));

  client_at_[0].uplink = c2s;
  client_at_[0].downlink = s2c;
  server_at_[0].uplink = s2c;
  server_at_[0].downlink = c2s;

  FinishRxPath(&server_at_[0], server_hosts_[0].get(), config_.c2s_impairment, seed * 2 + 3,
               "c2s");
  FinishRxPath(&client_at_[0], client_hosts_[0].get(), config_.s2c_impairment, seed * 2 + 4,
               "s2c");
}

// Attach one host to `sw`: uplink into the switch, a dedicated output port +
// downlink back, and a forwarding entry for the host id. On sharded runs
// each link's delivery domain is its receiver's: the uplink fires in the
// switch's shard, the downlink in the host's.
void FabricTopology::AttachHost(Switch* sw, const FabricHostSpec& spec, const char* side,
                                int index, int count, uint32_t host_id,
                                const SwitchPortConfig& port_config,
                                std::vector<std::unique_ptr<Host>>* hosts, HostAttachment* at,
                                uint32_t host_domain, uint32_t sw_domain) {
  const uint64_t seed = config_.seed;
  const std::string name = HostName(side, index, count);
  at->uplink =
      MakeLink(config_.edge_link, DeriveSeed(seed, kFabricSeedUplink, host_id), name + ".up");
  at->uplink->SetSink(sw);
  at->uplink->set_dst_domain(sw_domain);
  at->downlink = MakeLink(config_.edge_link, DeriveSeed(seed, kFabricSeedDownlink, host_id),
                          name + ".down");
  at->downlink->set_dst_domain(host_domain);
  const size_t port = sw->AddPort(at->downlink, port_config, sw->name() + "." + name);
  sw->SetRoute(host_id, port);
  hosts->push_back(std::make_unique<Host>(&sim_, at->uplink, spec.nic, name, host_id));
  hosts->back()->set_domain(host_domain);
}

void FabricTopology::FinishAllRxPaths() {
  // RX impairment paths install on the final (switch -> host) hop.
  const uint64_t seed = config_.seed;
  for (int i = 0; i < config_.num_servers; ++i) {
    const uint32_t id = static_cast<uint32_t>(config_.num_clients + i + 1);
    FinishRxPath(&server_at_[i], server_hosts_[i].get(), config_.c2s_impairment,
                 DeriveSeed(seed, kFabricSeedC2sImpair, id),
                 "c2s." + server_hosts_[i]->name());
  }
  for (int i = 0; i < config_.num_clients; ++i) {
    const uint32_t id = static_cast<uint32_t>(i + 1);
    FinishRxPath(&client_at_[i], client_hosts_[i].get(), config_.s2c_impairment,
                 DeriveSeed(seed, kFabricSeedS2cImpair, id),
                 "s2c." + client_hosts_[i]->name());
  }
}

void FabricTopology::BuildSwitched() {
  const uint64_t seed = config_.seed;
  const bool dumbbell = config_.shape == FabricShape::kDumbbell;
  switches_.push_back(std::make_unique<Switch>(&sim_, dumbbell ? "swL" : "sw0"));
  Switch* left = switches_.front().get();
  Switch* right = left;
  if (dumbbell) {
    switches_.push_back(std::make_unique<Switch>(&sim_, "swR"));
    right = switches_.back().get();
  }
  client_switch_idx_ = 0;
  server_switch_idx_ = switches_.size() - 1;

  const uint32_t left_domain = sharded_ ? switch_domains_.front() : 0;
  const uint32_t right_domain = sharded_ ? switch_domains_.back() : 0;
  for (int i = 0; i < config_.num_clients; ++i) {
    const uint32_t id = static_cast<uint32_t>(i + 1);
    AttachHost(left, config_.client, "client", i, config_.num_clients, id, config_.client_port,
               &client_hosts_, &client_at_[i], sharded_ ? client_domains_[i] : 0, left_domain);
  }
  for (int i = 0; i < config_.num_servers; ++i) {
    const uint32_t id = static_cast<uint32_t>(config_.num_clients + i + 1);
    AttachHost(right, config_.server, "server", i, config_.num_servers, id, config_.server_port,
               &server_hosts_, &server_at_[i], sharded_ ? server_domains_[i] : 0, right_domain);
  }

  if (dumbbell) {
    // One trunk per direction; every cross-switch destination routes into
    // the local trunk port.
    Link* l2r = MakeLink(config_.trunk_link, DeriveSeed(seed, kFabricSeedTrunk, 0), "trunk.l2r");
    Link* r2l = MakeLink(config_.trunk_link, DeriveSeed(seed, kFabricSeedTrunk, 1), "trunk.r2l");
    l2r->SetSink(right);
    l2r->set_dst_domain(right_domain);
    r2l->SetSink(left);
    r2l->set_dst_domain(left_domain);
    const size_t left_trunk = left->AddPort(l2r, config_.trunk_port, "swL.trunk");
    const size_t right_trunk = right->AddPort(r2l, config_.trunk_port, "swR.trunk");
    for (int i = 0; i < config_.num_servers; ++i) {
      left->SetRoute(static_cast<uint32_t>(config_.num_clients + i + 1), left_trunk);
    }
    for (int i = 0; i < config_.num_clients; ++i) {
      right->SetRoute(static_cast<uint32_t>(i + 1), right_trunk);
    }
  }

  FinishAllRxPaths();
}

void FabricTopology::BuildLeafSpine() {
  const uint64_t seed = config_.seed;
  const int leaves = config_.num_leaves;
  const int spines = config_.num_spines;
  for (int l = 0; l < leaves; ++l) {
    switches_.push_back(std::make_unique<Switch>(&sim_, "leaf" + std::to_string(l)));
  }
  for (int s = 0; s < spines; ++s) {
    switches_.push_back(std::make_unique<Switch>(&sim_, "spine" + std::to_string(s)));
  }
  // client_switch()/server_switch() name the leaf of host 0 on each side
  // (both leaf 0 under round-robin placement, the pinned rack otherwise).
  client_switch_idx_ = static_cast<size_t>(client_leaf(0));
  server_switch_idx_ = static_cast<size_t>(server_leaf(0));
  const auto leaf_domain = [&](int l) { return sharded_ ? switch_domains_[l] : 0; };
  const auto spine_domain = [&](int s) { return sharded_ ? switch_domains_[leaves + s] : 0; };

  // Hosts round-robin over the racks; the leaf routes its local hosts
  // directly (AttachHost installs the route).
  for (int i = 0; i < config_.num_clients; ++i) {
    const uint32_t id = static_cast<uint32_t>(i + 1);
    const int l = client_leaf(i);
    AttachHost(switches_[l].get(), config_.client, "client", i, config_.num_clients, id,
               config_.client_port, &client_hosts_, &client_at_[i],
               sharded_ ? client_domains_[i] : 0, leaf_domain(l));
  }
  for (int i = 0; i < config_.num_servers; ++i) {
    const uint32_t id = static_cast<uint32_t>(config_.num_clients + i + 1);
    const int l = server_leaf(i);
    AttachHost(switches_[l].get(), config_.server, "server", i, config_.num_servers, id,
               config_.server_port, &server_hosts_, &server_at_[i],
               sharded_ ? server_domains_[i] : 0, leaf_domain(l));
  }

  // Full bipartite leaf<->spine mesh: one link per direction per pair. The
  // leaf side of each pair joins the leaf's ECMP uplink group — remote
  // destinations have no exact route on a leaf, so they rendezvous-hash
  // across the spines. The spine side gets an exact route to every host on
  // that leaf. Member keys are derived from the spine index alone
  // (kFabricSeedEcmp), so a spine hashes identically at every leaf and
  // adding a leaf or spine never re-keys existing members.
  for (int l = 0; l < leaves; ++l) {
    Switch* leaf = switches_[l].get();
    for (int s = 0; s < spines; ++s) {
      Switch* spine = switches_[leaves + s].get();
      const uint64_t pair_index = (static_cast<uint64_t>(l) << 16) | static_cast<uint64_t>(s);
      const std::string ls = std::to_string(l);
      const std::string ss = std::to_string(s);
      Link* up = MakeLink(config_.trunk_link, DeriveSeed(seed, kFabricSeedLeafSpineUp, pair_index),
                          "leaf" + ls + ".up" + ss);
      up->SetSink(spine);
      up->set_dst_domain(spine_domain(s));
      Link* down =
          MakeLink(config_.trunk_link, DeriveSeed(seed, kFabricSeedLeafSpineDown, pair_index),
                   "spine" + ss + ".down" + ls);
      down->SetSink(leaf);
      down->set_dst_domain(leaf_domain(l));
      const size_t up_port =
          leaf->AddPort(up, config_.trunk_port, "leaf" + ls + ".up" + ss);
      leaf->AddEcmpMember(up_port, DeriveSeed(seed, kFabricSeedEcmp, s));
      const size_t down_port =
          spine->AddPort(down, config_.trunk_port, "spine" + ss + ".down" + ls);
      for (int i = 0; i < config_.num_clients; ++i) {
        if (client_leaf(i) == l) {
          spine->SetRoute(static_cast<uint32_t>(i + 1), down_port);
        }
      }
      for (int i = 0; i < config_.num_servers; ++i) {
        if (server_leaf(i) == l) {
          spine->SetRoute(static_cast<uint32_t>(config_.num_clients + i + 1), down_port);
        }
      }
    }
  }

  FinishAllRxPaths();
}

Link& FabricTopology::c2s_final_link(int si) { return *server_at_.at(si).downlink; }
Link& FabricTopology::s2c_final_link(int ci) { return *client_at_.at(ci).downlink; }
Link& FabricTopology::client_uplink(int ci) { return *client_at_.at(ci).uplink; }
Link& FabricTopology::server_uplink(int si) { return *server_at_.at(si).uplink; }

const ImpairmentChain* FabricTopology::c2s_impairment(int si) const {
  return server_at_.at(si).rx_impair.get();
}

const ImpairmentChain* FabricTopology::s2c_impairment(int ci) const {
  return client_at_.at(ci).rx_impair.get();
}

uint64_t FabricTopology::total_switch_drops() const {
  uint64_t total = 0;
  for (const auto& sw : switches_) {
    for (size_t p = 0; p < sw->num_ports(); ++p) {
      total += sw->port(p).counters().tail_drops;
    }
  }
  return total;
}

uint64_t FabricTopology::total_ecn_marked() const {
  uint64_t total = 0;
  for (const auto& sw : switches_) {
    for (size_t p = 0; p < sw->num_ports(); ++p) {
      total += sw->port(p).counters().ecn_marked;
    }
  }
  return total;
}

uint64_t FabricTopology::total_forwarding_misses() const {
  uint64_t total = 0;
  for (const auto& sw : switches_) {
    total += sw->forwarding_misses();
  }
  return total;
}

void FabricTopology::ExportCounters(CounterRegistry* registry) const {
  assert(registry != nullptr);
  const auto register_host = [&](const Host* host) {
    const Nic* nic = &const_cast<Host*>(host)->nic();
    registry->Register(host->name() + ".nic",
                       {"rx_packets", "rx_checksum_drops", "tx_segments", "tx_wire_packets",
                        "polls", "irqs"},
                       [nic]() -> std::vector<uint64_t> {
                         return {nic->rx_packets(), nic->rx_checksum_drops(), nic->tx_segments(),
                                 nic->tx_wire_packets(), nic->polls(), nic->irqs()};
                       });
  };
  for (const auto& host : client_hosts_) {
    register_host(host.get());
  }
  for (const auto& host : server_hosts_) {
    register_host(host.get());
  }
  for (const auto& link : links_) {
    const Link* raw = link.get();
    registry->Register(raw->name() + ".link", {"packets_sent", "packets_dropped", "bytes_sent"},
                       [raw]() -> std::vector<uint64_t> {
                         return {raw->packets_sent(), raw->packets_dropped(), raw->bytes_sent()};
                       });
  }
  for (const auto& sw : switches_) {
    for (size_t p = 0; p < sw->num_ports(); ++p) {
      const SwitchPort* port = &sw->port(p);
      // dropped_bytes and ecn_marked_bytes are disjoint by construction
      // (a packet is either dropped or admitted-and-possibly-marked), so a
      // window delta can attribute every congested byte to exactly one
      // fate even when both happen within the same epoch.
      registry->Register(port->name() + ".port",
                         {"packets_in", "packets_out", "bytes_out", "tail_drops",
                          "byte_limit_drops", "packet_limit_drops", "dropped_bytes",
                          "ecn_marked", "ecn_marked_bytes", "max_queue_bytes",
                          "max_queue_packets"},
                         [port]() -> std::vector<uint64_t> {
                           const SwitchPort::Counters& c = port->counters();
                           return {c.packets_in, c.packets_out, c.bytes_out, c.tail_drops,
                                   c.byte_limit_drops, c.packet_limit_drops, c.dropped_bytes,
                                   c.ecn_marked, c.ecn_marked_bytes, c.max_queue_bytes,
                                   c.max_queue_packets};
                         });
    }
    const Switch* raw = sw.get();
    registry->Register(raw->name() + ".switch", {"forwarding_misses"},
                       [raw]() -> std::vector<uint64_t> { return {raw->forwarding_misses()}; });
  }
}

void FabricTopology::ExportQueueGauges(TimeSeriesSampler* sampler) const {
  assert(sampler != nullptr);
  for (const auto& sw : switches_) {
    for (size_t p = 0; p < sw->num_ports(); ++p) {
      const SwitchPort* port = &sw->port(p);
      sampler->AddGauge(port->name() + ".queue_bytes",
                        [port] { return static_cast<double>(port->queue_bytes()); });
      sampler->AddGauge(port->name() + ".queue_packets",
                        [port] { return static_cast<double>(port->queue_packets()); });
      sampler->AddGauge(port->name() + ".ecn_marked",
                        [port] { return static_cast<double>(port->counters().ecn_marked); });
      sampler->AddGauge(port->name() + ".ecn_marked_bytes", [port] {
        return static_cast<double>(port->counters().ecn_marked_bytes);
      });
      sampler->AddGauge(port->name() + ".tail_drops",
                        [port] { return static_cast<double>(port->counters().tail_drops); });
      sampler->AddGauge(port->name() + ".dropped_bytes", [port] {
        return static_cast<double>(port->counters().dropped_bytes);
      });
    }
  }
}

}  // namespace e2e
