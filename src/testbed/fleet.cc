#include "src/testbed/fleet.h"

#include <cassert>
#include <chrono>
#include <memory>
#include <optional>

#include "src/apps/lancet.h"
#include "src/apps/redis_server.h"
#include "src/core/aggregator.h"
#include "src/core/policy.h"
#include "src/testbed/collector.h"

namespace e2e {

FabricConfig FleetExperimentConfig::DefaultFleetFabric(int num_clients) {
  FabricConfig fabric = FabricConfig::Star(num_clients, 1);
  fabric.client.stack_costs.tx_per_segment = Duration::MicrosF(2.0);
  fabric.client.stack_costs.doorbell = Duration::Nanos(300);
  fabric.server.stack_costs.tx_per_segment = Duration::MicrosF(12.0);
  fabric.server.stack_costs.doorbell = Duration::Nanos(300);
  return fabric;
}

FleetExperimentResult RunFleetExperiment(const FleetExperimentConfig& config) {
  const int n = config.fabric.num_clients;
  const int m = config.fabric.num_servers;
  assert(n >= 1 && m >= 1);
  assert(!config.client_profiles.empty());
  // collect_interval == 0 runs lean: no collectors, no online sampling.
  const bool lean = config.collect_interval == Duration::Zero();

  FabricTopology topo(config.fabric);
  Simulator& sim = topo.sim();
  CounterRegistry registry;
  if (!lean) {
    topo.ExportCounters(&registry);
  }

  TcpConfig client_tcp = RedisExperimentConfig::DefaultClientTcp();
  TcpConfig server_tcp = RedisExperimentConfig::DefaultServerTcp();
  client_tcp.e2e_exchange_interval = config.exchange_interval;
  server_tcp.e2e_exchange_interval = config.exchange_interval;
  server_tcp.nodelay = config.batch_mode != BatchMode::kStaticOn;
  client_tcp.cc.ecn = config.ecn;
  server_tcp.cc.ecn = config.ecn;
  server_tcp.cc.algorithm = config.server_cc;

  struct PerConnection {
    ConnectedPair conn;
    std::unique_ptr<RedisServerApp> server;
    std::unique_ptr<LancetClient> client;
    std::unique_ptr<CounterCollector> collector;
    int profile = 0;
    int server_index = 0;
  };
  std::vector<PerConnection> connections(static_cast<size_t>(n));

  for (int i = 0; i < n; ++i) {
    PerConnection& pc = connections[i];
    TcpConfig conn_client_tcp = client_tcp;
    if (!config.client_cc.empty()) {
      conn_client_tcp.cc.algorithm = config.client_cc[i % config.client_cc.size()];
    }
    pc.server_index = i % m;
    pc.conn = topo.Connect(i, pc.server_index, static_cast<uint64_t>(i + 1), conn_client_tcp,
                           server_tcp);
    pc.profile = i % static_cast<int>(config.client_profiles.size());

    RedisServerApp::Config server_config;
    server_config.costs = config.server_costs;
    pc.server = std::make_unique<RedisServerApp>(&sim, pc.conn.b, server_config);
    if (config.prefill_store) {
      for (uint64_t key = 0; key < config.mix.key_space; ++key) {
        pc.server->mutable_store().Set(key, config.mix.get_value_len);
      }
    }

    LancetClient::Config client_config;
    client_config.rate_rps = config.total_rate_rps / n;
    client_config.mix = config.mix;
    client_config.costs = config.client_profiles[pc.profile];
    client_config.warmup = config.warmup;
    client_config.measure = config.measure;
    // Keyed by host id, like the fabric's own streams: adding clients never
    // perturbs existing clients' arrival processes.
    client_config.seed = DeriveSeed(config.seed, kFleetSeedWorkload, static_cast<uint64_t>(i + 1));
    client_config.use_hints = config.client_hints;
    client_config.pipeline_depth = config.pipeline_depth;
    pc.client = std::make_unique<LancetClient>(&sim, pc.conn.a, client_config);

    if (!lean) {
      pc.collector = std::make_unique<CounterCollector>(&sim, pc.conn.a, pc.conn.b,
                                                        &pc.client->hints(),
                                                        config.collect_interval);
      if (i == 0) {
        // Fabric-wide state is sampled once, alongside connection 0.
        pc.collector->AttachImpairments(topo.c2s_impairment(0), topo.s2c_impairment(0));
        pc.collector->AttachRegistry(&registry);
      }
    }
  }

  // The server aggregates every connection's online estimate (§3.2) and —
  // in dynamic modes — drives one batching decision for all of them.
  EstimateAggregator aggregator;
  aggregator.SetStalenessBound(config.aggregator_staleness);
  for (PerConnection& pc : connections) {
    aggregator.AddSource(&pc.conn.b->estimator());
  }
  std::unique_ptr<ToggleController> toggle;
  std::unique_ptr<AimdBatchController> aimd;
  SloThroughputPolicy policy(config.slo);
  if (config.batch_mode == BatchMode::kDynamic) {
    toggle = std::make_unique<ToggleController>(config.controller, &policy,
                                                Rng(DeriveSeed(config.seed, kFleetSeedControl, 0)),
                                                /*initial_on=*/false);
  } else if (config.batch_mode == BatchMode::kAimd) {
    AimdBatchController::Config aimd_config = config.aimd;
    aimd_config.slo = config.slo;
    aimd = std::make_unique<AimdBatchController>(aimd_config);
  }

  const TimePoint start = sim.Now();
  const TimePoint measure_start = start + config.warmup;
  const TimePoint measure_end = measure_start + config.measure;
  const TimePoint run_end = measure_end + config.drain;

  std::function<void()> control_tick = [&] {
    std::optional<PerfSample> sample;
    const E2eEstimate aggregate = aggregator.Aggregate(sim.Now());
    if (aggregate.valid()) {
      sample = PerfSample{*aggregate.latency, aggregate.a_send_throughput};
    }
    if (toggle != nullptr) {
      const bool on = toggle->OnTick(sim.Now(), sample);
      for (PerConnection& pc : connections) {
        // The control tick is a global event; endpoint pokes that flush (and
        // so schedule CPU work) must land in the endpoint's own shard.
        DomainScope in_server(&sim, topo.server_host(pc.server_index).domain());
        pc.conn.b->SetNoDelay(!on);
      }
    } else if (aimd != nullptr) {
      const double limit = aimd->OnTick(sim.Now(), sample);
      for (PerConnection& pc : connections) {
        DomainScope in_server(&sim, topo.server_host(pc.server_index).domain());
        pc.conn.b->SetNoDelay(false);
        pc.conn.b->SetCorkLimit(static_cast<uint32_t>(limit));
      }
    }
    sim.Schedule(config.controller.tick, control_tick);
  };
  if (toggle != nullptr || aimd != nullptr) {
    sim.Schedule(config.controller.tick, control_tick);
  }

  // Fleet-aggregate online estimate, sampled on the collector cadence.
  RunningStats online_est_us;
  std::function<void()> online_tick = [&] {
    const E2eEstimate aggregate = aggregator.Aggregate(sim.Now());
    if (aggregate.valid() && sim.Now() >= measure_start && sim.Now() < measure_end) {
      online_est_us.Add(aggregate.latency->ToMicros());
    }
    sim.Schedule(config.collect_interval, online_tick);
  };
  if (!lean) {
    sim.Schedule(config.collect_interval, online_tick);
  }

  for (int i = 0; i < n; ++i) {
    PerConnection& pc = connections[i];
    if (!lean) {
      pc.collector->Start(run_end);
    }
    // The first arrival (and the open-loop clock behind it) belongs to the
    // client's shard.
    DomainScope in_client(&sim, topo.client_host(i).domain());
    pc.client->Start();
  }

  struct BusySnapshot {
    Duration server_app, server_softirq;
    std::vector<Duration> client_app;
  };
  const auto take_busy = [&] {
    BusySnapshot snap;
    for (int s = 0; s < m; ++s) {
      snap.server_app += topo.server_host(s).app_core().busy_time();
      snap.server_softirq += topo.server_host(s).softirq_core().busy_time();
    }
    for (int i = 0; i < n; ++i) {
      snap.client_app.push_back(topo.client_host(i).app_core().busy_time());
    }
    return snap;
  };
  BusySnapshot at_start{};
  sim.ScheduleAt(measure_start, [&] { at_start = take_busy(); });
  BusySnapshot at_end{};
  sim.ScheduleAt(measure_end, [&] { at_end = take_busy(); });

  // Optional aligned time-series. Sampling runs as global events, so every
  // domain's clock is synced when the gauges read cross-domain state.
  std::optional<TimeSeriesSampler> sampler;
  if (config.series_interval > Duration::Zero()) {
    sampler.emplace(&sim, config.series_interval);
    sampler->AddGauge("requests_completed", [&connections] {
      double total = 0;
      for (const PerConnection& pc : connections) {
        total += static_cast<double>(pc.client->results().completed);
      }
      return total;
    });
    sampler->AddGauge("switch_tail_drops",
                      [&topo] { return static_cast<double>(topo.total_switch_drops()); });
    const SwitchPort* bottleneck =
        topo.num_switches() > 0 ? topo.server_switch()->RouteFor(topo.server_host(0).id())
                                : nullptr;
    sampler->AddGauge("server_port_queue_bytes", [bottleneck] {
      return bottleneck != nullptr ? static_cast<double>(bottleneck->queue_bytes()) : 0.0;
    });
    sampler->Start(run_end);
  }

  const auto wall_start = std::chrono::steady_clock::now();
  const uint64_t events_before = sim.events_fired();
  sim.RunUntil(run_end);
  const auto wall_end = std::chrono::steady_clock::now();

  // ---- Collect results ----
  FleetExperimentResult result;
  result.offered_krps = config.total_rate_rps / 1e3;
  result.events_fired = sim.events_fired() - events_before;
  result.wall_seconds = std::chrono::duration<double>(wall_end - wall_start).count();
  const Simulator::QueueOccupancy occupancy = sim.queue_occupancy();
  result.queue_peak_max = occupancy.peak_max;
  result.queue_peak_mean = occupancy.peak_mean;
  result.queue_domains = occupancy.domains;
  if (sampler.has_value()) {
    result.series = std::make_shared<const TimeSeries>(sampler->TakeSeries());
  }

  RunningStats latency_us;
  LogHistogram latency_hist{0.1, 1e9, 100};
  std::vector<E2eEstimate> estimates;
  for (int i = 0; i < n; ++i) {
    PerConnection& pc = connections[i];
    const LancetClient::Results& lancet = pc.client->results();
    latency_us.Merge(lancet.latency_us);
    latency_hist.Merge(lancet.latency_hist);

    FleetConnectionResult cr;
    cr.client = i;
    cr.profile = pc.profile;
    cr.offered_krps = config.total_rate_rps / n / 1e3;
    cr.achieved_krps = lancet.achieved_rps / 1e3;
    cr.measured_mean_us = lancet.latency_us.mean();
    cr.measured_p99_us = lancet.latency_hist.Percentile(99);
    cr.requests_completed = lancet.measured;
    cr.retransmits = pc.conn.a->stats().retransmits + pc.conn.b->stats().retransmits;

    if (!lean) {
      const E2eEstimate est =
          pc.collector->EstimateWindow(UnitMode::kBytes, measure_start, measure_end);
      estimates.push_back(est);
      if (est.latency.has_value()) {
        cr.est_bytes_us = est.latency->ToMicros();
      }
    }

    result.achieved_krps += cr.achieved_krps;
    result.requests_completed += cr.requests_completed;
    result.retransmits += cr.retransmits;
    result.connections.push_back(cr);
  }
  result.measured_mean_us = latency_us.mean();
  result.measured_p50_us = latency_hist.Percentile(50);
  result.measured_p99_us = latency_hist.Percentile(99);

  const E2eEstimate fleet_est = AverageEstimates(estimates.data(), estimates.size());
  if (fleet_est.latency.has_value()) {
    result.fleet_est_bytes_us = fleet_est.latency->ToMicros();
  }
  if (online_est_us.count() > 0) {
    result.online_est_us = online_est_us.mean();
  }

  const double window_sec = config.measure.ToSeconds();
  result.server_app_util =
      (at_end.server_app - at_start.server_app).ToSeconds() / window_sec / m;
  result.server_softirq_util =
      (at_end.server_softirq - at_start.server_softirq).ToSeconds() / window_sec / m;
  double client_util_sum = 0;
  for (int i = 0; i < n; ++i) {
    client_util_sum +=
        (at_end.client_app[i] - at_start.client_app[i]).ToSeconds() / window_sec;
  }
  result.mean_client_app_util = client_util_sum / n;

  result.switch_tail_drops = topo.total_switch_drops();
  result.switch_ecn_marked = topo.total_ecn_marked();
  result.forwarding_misses = topo.total_forwarding_misses();
  for (size_t s = 0; s < topo.num_switches(); ++s) {
    Switch& sw = topo.fabric_switch(s);
    for (size_t p = 0; p < sw.num_ports(); ++p) {
      result.port_stats.emplace_back(sw.port(p).name(), sw.port(p).counters());
    }
  }
  if (topo.num_switches() > 0) {
    const SwitchPort* server_port =
        topo.server_switch()->RouteFor(topo.server_host(0).id());
    if (server_port != nullptr) {
      result.server_port_max_queue_bytes = server_port->counters().max_queue_bytes;
      result.server_port_max_queue_packets = server_port->counters().max_queue_packets;
    }
  }

  if (!lean) {
    const CounterRegistry::Values window =
        connections[0].collector->RegistryWindow(measure_start, measure_end);
    for (size_t e = 0; e < window.size(); ++e) {
      FleetExperimentResult::EntityCounters counters;
      const std::vector<std::string>& names = registry.counter_names(e);
      for (size_t c = 0; c < names.size(); ++c) {
        counters.emplace_back(names[c], window[e][c]);
      }
      result.fabric_window.emplace_back(registry.entity_name(e), std::move(counters));
    }
  }
  return result;
}

}  // namespace e2e
