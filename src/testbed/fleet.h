// Fleet-scale experiment driver: N Lancet clients, each on its own host
// with its own (possibly heterogeneous) cost profile, drive one Redis-like
// server over independent TCP connections through a switched fabric
// (src/testbed/fabric_topology.h). Every connection runs its own counter
// collector and wire estimator; the server feeds all of them into the
// existing multi-connection EstimateAggregator (paper §3.2), and the result
// reports per-connection and fleet-aggregate estimated vs measured latency
// plus fabric health: switch queue occupancy, tail drops, ECN marks.
//
// This is the scale-out companion of RunRedisExperiment (one topology, many
// connections): here each connection also gets its own host, NIC, uplink,
// and switch port, so shared-bottleneck queueing at the server's downlink
// port — invisible in the two-host setup — shows up in both the ground
// truth and the estimates.

#ifndef SRC_TESTBED_FLEET_H_
#define SRC_TESTBED_FLEET_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "src/apps/cost_profile.h"
#include "src/apps/workload.h"
#include "src/core/aimd.h"
#include "src/core/controller.h"
#include "src/obs/timeseries.h"
#include "src/testbed/experiment.h"
#include "src/testbed/fabric_topology.h"

namespace e2e {

// DeriveSeed domains for fleet-level randomness (the fabric's own domains
// are 1..5; see fabric_topology.h).
inline constexpr uint64_t kFleetSeedWorkload = 16;  // index = client host id.
inline constexpr uint64_t kFleetSeedControl = 17;   // index = 0.

struct FleetExperimentConfig {
  // Topology; num_clients is the fleet size. Connection i lands on server
  // i % num_servers (with one server — the default — exactly the historical
  // single-server wiring).
  FabricConfig fabric = DefaultFleetFabric(4);

  double total_rate_rps = 40000;  // Split evenly across clients.
  BatchMode batch_mode = BatchMode::kStaticOff;
  WorkloadMix mix = WorkloadMix::SetOnly16K();

  // Per-client app cost profiles, cycled: client i uses
  // profiles[i % profiles.size()]. The default mixes bare-metal and VM
  // clients, the paper's two client configurations.
  std::vector<AppCosts> client_profiles = {BareMetalClientCosts(), VmClientCosts()};
  AppCosts server_costs = RedisServerCosts();

  // Congestion control, per endpoint: client i runs
  // client_cc[i % client_cc.size()] (Reno when the list is empty); the
  // server side runs server_cc. `ecn` enables CE echo + CWR signalling on
  // every endpoint — pair it with a fabric whose bottleneck port sets
  // `ecn_threshold_bytes`, or the marks never happen.
  std::vector<CcAlgorithm> client_cc;
  CcAlgorithm server_cc = CcAlgorithm::kReno;
  bool ecn = false;

  Duration warmup = Duration::Millis(100);
  Duration measure = Duration::Millis(400);
  Duration drain = Duration::Millis(50);
  // Zero runs *lean*: no per-connection collectors, no online-estimate
  // sampling, no fabric counter window — the mode the 100k+-connection
  // scaling cells use, where per-connection observers would dominate both
  // memory and event count. Offline estimate fields stay empty.
  Duration collect_interval = Duration::Millis(1);
  uint64_t seed = 1;
  bool prefill_store = true;
  bool client_hints = true;
  int pipeline_depth = 1;

  // Controller parameters (kDynamic / kAimd), applied to every connection
  // and driven by the fleet-aggregate estimate.
  ControllerConfig controller;
  Duration slo = Duration::Micros(500);
  AimdBatchController::Config aimd;

  Duration exchange_interval = Duration::Millis(1);
  // Connections whose last accepted exchange is older than this drop out
  // of the fleet-aggregate estimate instead of freezing it (aggregator.h).
  Duration aggregator_staleness = Duration::Millis(10);

  // > 0 samples fleet gauges (completed requests, switch drops, bottleneck
  // queue depth) every `series_interval` and the result carries the aligned
  // series. Sampling is read-only, so attaching it never changes what a
  // same-seed run computes — but the sampler's own events do shift engine
  // event counts, so callers comparing raw output bytes re-run with the
  // series rather than folding it into the main pass (bench/fleet_sweep).
  Duration series_interval = Duration::Zero();

  // A star fabric with the DESIGN.md §5 stack calibration (same per-segment
  // costs as RedisExperimentConfig::DefaultRedisTopology; the two 1.5 µs
  // edge hops reproduce the two-host link's 3 µs end-to-end propagation).
  static FabricConfig DefaultFleetFabric(int num_clients);
};

// One connection = one client host.
struct FleetConnectionResult {
  int client = 0;          // Client index (host id = client + 1).
  int profile = 0;         // Index into client_profiles.
  double offered_krps = 0;
  double achieved_krps = 0;
  double measured_mean_us = 0;
  double measured_p99_us = 0;
  // Offline byte-mode window estimate for this connection alone.
  std::optional<double> est_bytes_us;
  uint64_t requests_completed = 0;
  uint64_t retransmits = 0;  // Both endpoints of the connection.

  std::optional<double> EstimateErrorPct() const {
    if (!est_bytes_us.has_value() || measured_mean_us <= 0) {
      return std::nullopt;
    }
    return (*est_bytes_us - measured_mean_us) / measured_mean_us * 100.0;
  }
};

struct FleetExperimentResult {
  double offered_krps = 0;
  double achieved_krps = 0;
  // Ground truth pooled across every connection, measurement window only.
  double measured_mean_us = 0;
  double measured_p50_us = 0;
  double measured_p99_us = 0;
  // Fleet-aggregate offline estimate: AverageEstimates over the
  // per-connection byte-mode window estimates (§3.2's multi-connection
  // combination). Empty when no window was valid.
  std::optional<double> fleet_est_bytes_us;
  // Mean of the server-side EstimateAggregator's online (wire-exchanged)
  // aggregate sampled every collect_interval over the window.
  std::optional<double> online_est_us;

  uint64_t requests_completed = 0;
  uint64_t retransmits = 0;  // All endpoints.

  // Fabric health, whole run.
  uint64_t switch_tail_drops = 0;
  uint64_t switch_ecn_marked = 0;
  uint64_t forwarding_misses = 0;
  // High-water occupancy of the server's downlink port — the shared
  // bottleneck queue (0 when the fabric has no switch).
  uint64_t server_port_max_queue_bytes = 0;
  uint64_t server_port_max_queue_packets = 0;

  // CPU utilization over the window, [0, 1]. Server figures average across
  // server hosts (one server: exactly that host).
  double server_app_util = 0;
  double server_softirq_util = 0;
  double mean_client_app_util = 0;  // Averaged across client hosts.

  // Engine cost of the run: simulator events executed and coordinator wall
  // time, for events/sec scaling curves (bench/engine_perf).
  uint64_t events_fired = 0;
  double wall_seconds = 0;

  // Per-domain event-queue occupancy high-water marks (Simulator
  // ::queue_occupancy): max and mean of each domain's peak live-event
  // count, plus the domain count. On classic (unsharded) runs this is the
  // single global queue's peak.
  uint64_t queue_peak_max = 0;
  double queue_peak_mean = 0;
  uint64_t queue_domains = 0;

  // Aligned gauge samples; non-null iff config.series_interval > 0.
  std::shared_ptr<const TimeSeries> series;

  std::vector<FleetConnectionResult> connections;

  // Whole-run switch-port counters in port registration order, labeled
  // "<switch>.<host>" (feed to SwitchPortsTable or JSON).
  std::vector<std::pair<std::string, SwitchPort::Counters>> port_stats;

  // Measurement-window fabric counter deltas, materialized from the
  // topology's CounterRegistry: entity name -> ordered (counter, delta)
  // pairs covering every NIC, link, and switch port.
  using EntityCounters = std::vector<std::pair<std::string, uint64_t>>;
  std::vector<std::pair<std::string, EntityCounters>> fabric_window;

  std::optional<double> FleetEstimateErrorPct() const {
    if (!fleet_est_bytes_us.has_value() || measured_mean_us <= 0) {
      return std::nullopt;
    }
    return (*fleet_est_bytes_us - measured_mean_us) / measured_mean_us * 100.0;
  }
};

FleetExperimentResult RunFleetExperiment(const FleetExperimentConfig& config);

}  // namespace e2e

#endif  // SRC_TESTBED_FLEET_H_
