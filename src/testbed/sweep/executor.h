// Parallel sweep executor: run independent experiment cells on a worker
// pool, committing results in strict cell-index order (DESIGN.md §12).
//
// Every sweep bench is a grid of independent, deterministic simulation
// cells: each cell builds its own Simulator, derives its random streams
// from a keyed seed (never from global state), and only its *reporting*
// touches shared output. That makes the parallelism contract simple:
//
//   * `body(i)` runs cell i — possibly concurrently with other cells, on a
//     worker thread — and must only write caller-owned per-cell state (its
//     result slot). No stdout/JSON, no shared mutable state.
//   * `commit(i)` runs on the calling thread, strictly in order i = 0, 1,
//     ..., n-1, as soon as cell i's body has finished. All printing,
//     scoring against earlier cells, and JSON assembly belongs here.
//
// Under that contract the sweep's stdout and JSON output are byte-identical
// between jobs=1 and jobs=N (CI compares them), because every output byte is
// produced serially in cell order from deterministic per-cell results.
//
// Tracing composes: the trace-recorder binding is thread-local
// (src/obs/trace.h), so a body that wants its cell traced binds a
// ScopedTrace around its own run and records only that cell regardless of
// what the other workers are doing.

#ifndef SRC_TESTBED_SWEEP_EXECUTOR_H_
#define SRC_TESTBED_SWEEP_EXECUTOR_H_

#include <cstddef>
#include <functional>

namespace e2e {

class SweepExecutor {
 public:
  // `jobs` is the worker-pool size; <= 1 means fully serial execution in
  // the calling thread (no threads are created at all — the reference
  // behavior the parallel path must reproduce byte-for-byte).
  explicit SweepExecutor(int jobs) : jobs_(jobs) {}

  int jobs() const { return jobs_; }

  // Runs body(0..n-1) on the pool and commit(0..n-1) in order on the
  // calling thread (see the contract above). Returns after every body and
  // commit has finished.
  void Run(size_t num_cells, const std::function<void(size_t)>& body,
           const std::function<void(size_t)>& commit) const;

 private:
  int jobs_;
};

// Parses a `--jobs=N` argument. Returns true (and sets *jobs) when `arg`
// has that form; N = 0 selects the hardware concurrency. Invalid values
// (negative, non-numeric) leave *jobs untouched and still return true so
// callers can reject the flag; *ok reports whether N parsed cleanly.
bool ParseJobsFlag(const char* arg, int* jobs, bool* ok);

// Parses a `--shards=N` argument (same contract as ParseJobsFlag). N = 0
// selects the classic single-domain engine; N >= 1 runs the cell's
// simulation domain-partitioned with N worker threads — output must be
// byte-identical for every N >= 1 (ctest label `shard` compares them).
bool ParseShardsFlag(const char* arg, int* shards, bool* ok);

}  // namespace e2e

#endif  // SRC_TESTBED_SWEEP_EXECUTOR_H_
