#include "src/testbed/sweep/executor.h"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <condition_variable>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <thread>
#include <vector>

namespace e2e {

void SweepExecutor::Run(size_t num_cells, const std::function<void(size_t)>& body,
                        const std::function<void(size_t)>& commit) const {
  if (jobs_ <= 1 || num_cells <= 1) {
    for (size_t i = 0; i < num_cells; ++i) {
      body(i);
      commit(i);
    }
    return;
  }

  std::mutex mu;
  std::condition_variable done_cv;
  std::vector<char> done(num_cells, 0);
  std::atomic<size_t> next{0};

  const size_t workers = std::min(static_cast<size_t>(jobs_), num_cells);
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (size_t w = 0; w < workers; ++w) {
    pool.emplace_back([&] {
      for (;;) {
        const size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= num_cells) {
          return;
        }
        body(i);
        {
          std::lock_guard<std::mutex> lock(mu);
          done[i] = 1;
        }
        done_cv.notify_one();
      }
    });
  }

  // Commit strictly in cell order, each as soon as its body finishes; the
  // pool keeps running ahead on later cells meanwhile.
  for (size_t i = 0; i < num_cells; ++i) {
    {
      std::unique_lock<std::mutex> lock(mu);
      done_cv.wait(lock, [&] { return done[i] != 0; });
    }
    commit(i);
  }
  for (std::thread& t : pool) {
    t.join();
  }
}

bool ParseJobsFlag(const char* arg, int* jobs, bool* ok) {
  constexpr const char* kPrefix = "--jobs=";
  const size_t prefix_len = std::strlen(kPrefix);
  if (std::strncmp(arg, kPrefix, prefix_len) != 0) {
    return false;
  }
  const char* value = arg + prefix_len;
  char* end = nullptr;
  errno = 0;
  const long parsed = std::strtol(value, &end, 10);
  if (*value == '\0' || end == nullptr || *end != '\0' || errno != 0 || parsed < 0) {
    *ok = false;
    return true;
  }
  if (parsed == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    *jobs = hw > 0 ? static_cast<int>(hw) : 1;
  } else {
    *jobs = static_cast<int>(parsed);
  }
  *ok = true;
  return true;
}

bool ParseShardsFlag(const char* arg, int* shards, bool* ok) {
  constexpr const char* kPrefix = "--shards=";
  const size_t prefix_len = std::strlen(kPrefix);
  if (std::strncmp(arg, kPrefix, prefix_len) != 0) {
    return false;
  }
  const char* value = arg + prefix_len;
  char* end = nullptr;
  errno = 0;
  const long parsed = std::strtol(value, &end, 10);
  if (*value == '\0' || end == nullptr || *end != '\0' || errno != 0 || parsed < 0) {
    *ok = false;
    return true;
  }
  *shards = static_cast<int>(parsed);
  *ok = true;
  return true;
}

}  // namespace e2e
