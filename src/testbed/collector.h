// The paper's prototype methodology (§3.4): queue states are exported like
// ethtool counters and analyzed offline. The collector periodically
// snapshots all queue states (every kernel unit mode) at both endpoints,
// plus the client's hint queue; `EstimateWindow` then applies GETAVGS and
// the combination formula over any [from, to] interval after the fact.

#ifndef SRC_TESTBED_COLLECTOR_H_
#define SRC_TESTBED_COLLECTOR_H_

#include <array>
#include <optional>
#include <vector>

#include "src/core/endpoint_queues.h"
#include "src/core/hints.h"
#include "src/core/latency_combiner.h"
#include "src/core/units.h"
#include "src/net/impair/impairment.h"
#include "src/sim/simulator.h"
#include "src/tcp/endpoint.h"
#include "src/obs/registry.h"
#include "src/obs/timeseries.h"

namespace e2e {

class CounterCollector {
 public:
  // Snapshots endpoints `a` and `b` every `interval`. `hints` may be null.
  CounterCollector(Simulator* sim, TcpEndpoint* a, TcpEndpoint* b, HintTracker* hints,
                   Duration interval);

  // Optionally snapshots the per-direction impairment chains alongside the
  // queue states (either pointer may be null). Call before Start().
  void AttachImpairments(const ImpairmentChain* c2s, const ImpairmentChain* s2c);

  // Optionally samples every entity of `registry` (NICs, links, switch
  // ports — whatever the topology exported) alongside the queue states, so
  // fabric-wide counters come from one registration point instead of
  // hard-coded client/server fields. Call before Start(); the registry must
  // outlive the collector.
  void AttachRegistry(const CounterRegistry* registry);

  // Begins sampling now; stops after `until` (absolute virtual time).
  void Start(TimePoint until);

  struct Sample {
    TimePoint time;
    std::array<EndpointSnapshot, kNumKernelUnitModes> a;
    std::array<EndpointSnapshot, kNumKernelUnitModes> b;
    std::optional<QueueSnapshot> hint;
    // Per-stage counters at sample time (empty when unattached).
    ImpairmentSnapshot impair_c2s;
    ImpairmentSnapshot impair_s2c;
    // Registry entity values at sample time (empty when unattached).
    CounterRegistry::Values registry;
  };
  const std::vector<Sample>& samples() const { return samples_; }

  // Offline end-to-end estimate over the closest sampled sub-interval of
  // [from, to], in kernel unit mode `mode`. Invalid when fewer than two
  // samples fall inside.
  E2eEstimate EstimateWindow(UnitMode mode, TimePoint from, TimePoint to) const;

  // Hint-queue Little's-law estimate over the same kind of window: the
  // create->complete delay and completion rate.
  QueueAverages HintWindow(TimePoint from, TimePoint to) const;

  // Per-queue Algorithm-2 averages for one endpoint over the window — the
  // individual terms of the combination formula (Figure 3). `side_a` picks
  // endpoint a, else b. Zeroes when the window has under two samples.
  EndpointAverages WindowAverages(bool side_a, UnitMode mode, TimePoint from, TimePoint to) const;

  // Per-interval estimate series (consecutive sample pairs), e.g. to drive
  // an offline would-have-been controller analysis.
  std::vector<std::pair<TimePoint, E2eEstimate>> EstimateSeries(UnitMode mode) const;

  // Per-stage impairment counter deltas over the closest sampled
  // sub-interval of [from, to] for one direction (`c2s` picks the
  // client->server chain). Empty when unattached or the window is invalid.
  ImpairmentSnapshot ImpairmentWindow(bool c2s, TimePoint from, TimePoint to) const;

  // Registry counter deltas over the closest sampled sub-interval of
  // [from, to] (same schema/order as the attached registry). Empty when
  // unattached or the window is invalid. Gauge-like counters (high-water
  // marks) subtract like any other; read them from the raw samples instead.
  CounterRegistry::Values RegistryWindow(TimePoint from, TimePoint to) const;
  const CounterRegistry* registry() const { return registry_; }

  // The attached registry's raw samples reshaped into the shared
  // TimeSeries export object ("<entity>.<counter>" columns, same clock as
  // samples(); see DESIGN.md §11) — so collector data exports through the
  // same CSV/JSON path as TimeSeriesSampler instead of an ad-hoc format.
  // Empty when no registry is attached.
  TimeSeries RegistrySeries() const;

 private:
  void TakeSample();
  // Indices of the first sample >= from and the last sample <= to.
  std::optional<std::pair<size_t, size_t>> WindowIndices(TimePoint from, TimePoint to) const;

  Simulator* sim_;
  TcpEndpoint* a_;
  TcpEndpoint* b_;
  HintTracker* hints_;
  const ImpairmentChain* impair_c2s_ = nullptr;
  const ImpairmentChain* impair_s2c_ = nullptr;
  const CounterRegistry* registry_ = nullptr;
  Duration interval_;
  TimePoint until_;
  std::vector<Sample> samples_;
};

}  // namespace e2e

#endif  // SRC_TESTBED_COLLECTOR_H_
