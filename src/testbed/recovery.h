// Loss-recovery experiment: one client->server transfer over an impaired
// two-host path, graded on goodput, recovery latency, spurious
// retransmissions, RTT-estimation quality, and estimator-health dwell
// times. One run = one (feature set, congestion control, workload,
// impairment) point of bench/recovery_sweep's grid.
//
// The driver owns an EstimatorHealth fed from the *client's* estimate
// callback: the client is the data sender, so its outbound segments are
// where timestamps + SACK + the e2e exchange compete for option space —
// the health dwell times surface what the option-space arbiter's shed
// decisions cost the estimator under loss storms (DESIGN.md §15).

#ifndef SRC_TESTBED_RECOVERY_H_
#define SRC_TESTBED_RECOVERY_H_

#include <cstdint>

#include "src/core/health.h"
#include "src/net/impair/impairment.h"
#include "src/sim/time.h"
#include "src/tcp/cc/congestion_control.h"
#include "src/tcp/tcp_config.h"

namespace e2e {

enum class RecoveryWorkload {
  // Saturating transfer: the client keeps the send buffer full; goodput
  // and recovery latency are the interesting outputs.
  kBulk = 0,
  // Paced sub-MSS sends that engage the receiver's delayed acks: the
  // RTT-estimation A/B (timestamps on vs off) runs on this shape.
  kPacedSmall = 1,
};

struct RecoveryConfig {
  // Applied to both endpoints (features are "negotiated" by symmetry).
  TcpFeatureConfig features;
  CcAlgorithm cc = CcAlgorithm::kReno;
  RecoveryWorkload workload = RecoveryWorkload::kBulk;

  // Per-direction impairments: c2s is the data path, s2c the ack path.
  ImpairmentConfig c2s_impairment;
  ImpairmentConfig s2c_impairment;

  // Path shape. Modest bandwidth so loss recovery (not the 100 Gbps
  // default link) is the bottleneck under study.
  double link_bps = 1e9;
  Duration propagation = Duration::Micros(50);

  Duration run = Duration::Millis(500);
  uint64_t bulk_chunk = 64 * 1024;
  Duration paced_interval = Duration::Millis(5);
  uint32_t paced_bytes = 600;

  // E2e metadata exchange cadence (zero disables, e.g. for the pure
  // RTT-estimation cells).
  Duration exchange_interval = Duration::Millis(1);

  // Estimator-health chain fed from the client's exchange verdicts.
  HealthConfig health;
  Duration health_tick = Duration::Millis(1);

  uint64_t seed = 1;
};

struct RecoveryResult {
  // Delivery.
  uint64_t bytes_delivered = 0;
  double goodput_mbps = 0;

  // Sender-side recovery behavior (client stats).
  uint64_t retransmits = 0;
  uint64_t sack_retransmits = 0;
  uint64_t rack_marked_lost = 0;
  uint64_t spurious_loss_reverts = 0;
  uint64_t tlp_probes = 0;
  uint64_t rto_fires = 0;
  uint64_t recovery_events = 0;
  double recovery_mean_us = 0;  // Mean loss-recovery episode length.
  // Receiver-side spurious-retransmit signal: data that had already been
  // delivered arriving again.
  uint64_t dup_segments_received = 0;

  // RTT estimation quality (client estimator).
  double srtt_us = 0;
  double min_rtt_us = 0;
  int64_t rtt_samples = 0;
  uint64_t rtt_ts_samples = 0;

  // Option-space arbitration, summed over both endpoints.
  uint64_t sack_blocks_sent = 0;
  uint64_t sack_blocks_trimmed = 0;
  uint64_t exchange_deferrals = 0;
  uint64_t ts_omitted = 0;
  uint64_t exchanges_sent = 0;
  uint64_t exchanges_received = 0;

  // Impairment ground truth (chain counters; zero when a direction is
  // unimpaired).
  uint64_t c2s_dropped = 0;
  uint64_t s2c_dropped = 0;

  // Estimator-health dwell times over the run.
  double time_in_full_ms = 0;
  double time_in_local_ms = 0;
  double time_in_diag_ms = 0;
  double time_in_static_ms = 0;
  uint64_t health_demotions = 0;
};

RecoveryResult RunRecoveryExperiment(const RecoveryConfig& config);

}  // namespace e2e

#endif  // SRC_TESTBED_RECOVERY_H_
