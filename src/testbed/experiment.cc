#include "src/testbed/experiment.h"

#include <cassert>
#include <memory>
#include <vector>

#include "src/apps/redis_server.h"
#include "src/core/aggregator.h"
#include "src/testbed/collector.h"
#include "src/testbed/report.h"

namespace e2e {

const char* BatchModeName(BatchMode mode) {
  switch (mode) {
    case BatchMode::kStaticOff:
      return "nodelay";
    case BatchMode::kStaticOn:
      return "nagle";
    case BatchMode::kDynamic:
      return "dynamic";
    case BatchMode::kAimd:
      return "aimd";
  }
  return "?";
}

TopologyConfig RedisExperimentConfig::DefaultRedisTopology() {
  TopologyConfig topo;
  topo.link.bandwidth_bps = 100e9;
  topo.link.propagation = Duration::MicrosF(3.0);

  // Client stack: a modern sender; requests go out as TSO super-segments.
  topo.client_stack_costs.tx_per_segment = Duration::MicrosF(2.0);
  topo.client_stack_costs.doorbell = Duration::Nanos(300);

  // Server stack: the per-segment transmit path is the amortizable β —
  // skb alloc + tcp_write_xmit + qdisc + driver on the paper's 2.2 GHz
  // Xeons. Charged inline in Redis's thread when Nagle is off; charged on
  // the softirq core (amortized over coalesced responses) when acks flush
  // Nagle-held data.
  topo.server_stack_costs.tx_per_segment = Duration::MicrosF(12.0);
  topo.server_stack_costs.doorbell = Duration::Nanos(300);
  return topo;
}

TcpConfig RedisExperimentConfig::DefaultClientTcp() {
  TcpConfig tcp;
  tcp.nodelay = true;  // Redis clients run with TCP_NODELAY.
  tcp.e2e_mode = UnitMode::kBytes;
  return tcp;
}

TcpConfig RedisExperimentConfig::DefaultServerTcp() {
  TcpConfig tcp;
  tcp.nodelay = true;  // Redis disables Nagle; batch modes override below.
  tcp.e2e_mode = UnitMode::kBytes;
  return tcp;
}

RedisExperimentResult RunRedisExperiment(const RedisExperimentConfig& config) {
  assert(config.num_connections >= 1);
  TwoHostTopology topo(config.topology);
  Simulator& sim = topo.sim();

  TcpConfig client_tcp = RedisExperimentConfig::DefaultClientTcp();
  TcpConfig server_tcp = RedisExperimentConfig::DefaultServerTcp();
  client_tcp.e2e_exchange_interval = config.exchange_interval;
  server_tcp.e2e_exchange_interval = config.exchange_interval;
  server_tcp.nodelay = config.batch_mode != BatchMode::kStaticOn;

  struct PerConnection {
    ConnectedPair conn;
    std::unique_ptr<RedisServerApp> server;
    std::unique_ptr<LancetClient> client;
    std::unique_ptr<CounterCollector> collector;
  };
  std::vector<PerConnection> connections(config.num_connections);

  for (int i = 0; i < config.num_connections; ++i) {
    PerConnection& pc = connections[i];
    pc.conn = topo.Connect(static_cast<uint64_t>(i + 1), client_tcp, server_tcp);

    RedisServerApp::Config server_config;
    server_config.costs = config.server_costs;
    pc.server = std::make_unique<RedisServerApp>(&sim, pc.conn.b, server_config);
    if (config.prefill_store) {
      for (uint64_t key = 0; key < config.mix.key_space; ++key) {
        pc.server->mutable_store().Set(key, config.mix.get_value_len);
      }
    }

    LancetClient::Config client_config;
    client_config.rate_rps = config.rate_rps / config.num_connections;
    client_config.mix = config.mix;
    client_config.costs = config.client_costs;
    client_config.warmup = config.warmup;
    client_config.measure = config.measure;
    client_config.seed = config.seed + static_cast<uint64_t>(i) * 7919;
    client_config.use_hints = config.client_hints;
    client_config.pipeline_depth = config.pipeline_depth;
    pc.client = std::make_unique<LancetClient>(&sim, pc.conn.a, client_config);

    pc.collector = std::make_unique<CounterCollector>(&sim, pc.conn.a, pc.conn.b,
                                                      &pc.client->hints(),
                                                      config.collect_interval);
    if (i == 0) {
      // Impairment chains are topology-wide; sample them once, alongside
      // connection 0's queue counters.
      pc.collector->AttachImpairments(topo.c2s_impairment(), topo.s2c_impairment());
    }
  }

  // Dynamic batching control at the server, driven by the *averaged*
  // estimates of all its connections and applied to all of them.
  EstimateAggregator aggregator;
  aggregator.SetStalenessBound(config.aggregator_staleness);
  for (PerConnection& pc : connections) {
    aggregator.AddSource(&pc.conn.b->estimator());
  }
  std::unique_ptr<ToggleController> toggle;
  std::unique_ptr<AimdBatchController> aimd;
  SloThroughputPolicy policy(config.slo);
  if (config.batch_mode == BatchMode::kDynamic) {
    toggle = std::make_unique<ToggleController>(config.controller, &policy, Rng(config.seed + 7),
                                                /*initial_on=*/false);
  } else if (config.batch_mode == BatchMode::kAimd) {
    AimdBatchController::Config aimd_config = config.aimd;
    aimd_config.slo = config.slo;
    aimd = std::make_unique<AimdBatchController>(aimd_config);
  }

  const TimePoint start = sim.Now();
  const TimePoint measure_start = start + config.warmup;
  const TimePoint measure_end = measure_start + config.measure;
  const TimePoint run_end = measure_end + config.drain;

  uint64_t ticks_in_window = 0;
  uint64_t ticks_on = 0;
  double limit_sum = 0;
  std::function<void()> control_tick = [&] {
    std::optional<PerfSample> sample;
    const E2eEstimate aggregate = aggregator.Aggregate(sim.Now());
    if (aggregate.valid()) {
      sample = PerfSample{*aggregate.latency, aggregate.a_send_throughput};
    }
    const bool in_window = sim.Now() >= measure_start && sim.Now() < measure_end;
    if (toggle != nullptr) {
      const bool on = toggle->OnTick(sim.Now(), sample);
      for (PerConnection& pc : connections) {
        pc.conn.b->SetNoDelay(!on);
      }
      if (in_window) {
        ++ticks_in_window;
        ticks_on += on ? 1 : 0;
      }
    } else if (aimd != nullptr) {
      const double limit = aimd->OnTick(sim.Now(), sample);
      for (PerConnection& pc : connections) {
        pc.conn.b->SetNoDelay(false);
        pc.conn.b->SetCorkLimit(static_cast<uint32_t>(limit));
      }
      if (in_window) {
        ++ticks_in_window;
        limit_sum += limit;
      }
    }
    sim.Schedule(config.controller.tick, control_tick);
  };
  if (toggle != nullptr || aimd != nullptr) {
    sim.Schedule(config.controller.tick, control_tick);
  }

  // Online estimate accumulation at the server (wire-exchange path).
  RunningStats online_est_us;
  for (PerConnection& pc : connections) {
    pc.conn.b->SetEstimateCallback([&](const ConnectionEstimator& est) {
      if (est.has_estimate() && sim.Now() >= measure_start && sim.Now() < measure_end) {
        online_est_us.Add(est.estimate().latency->ToMicros());
      }
    });
  }

  for (PerConnection& pc : connections) {
    pc.collector->Start(run_end);
    pc.client->Start();
  }

  // Utilization bookkeeping: snapshot busy counters at the window edges.
  struct BusySnapshot {
    Duration client_app, client_softirq, server_app, server_softirq;
  };
  const auto take_busy = [&] {
    return BusySnapshot{
        topo.client_host().app_core().busy_time(), topo.client_host().softirq_core().busy_time(),
        topo.server_host().app_core().busy_time(), topo.server_host().softirq_core().busy_time()};
  };
  BusySnapshot at_start{};
  sim.ScheduleAt(measure_start, [&] { at_start = take_busy(); });
  BusySnapshot at_end{};
  uint64_t switches_at_end = 0;
  sim.ScheduleAt(measure_end, [&] {
    at_end = take_busy();
    switches_at_end = toggle != nullptr ? toggle->switches() : 0;
  });

  sim.RunUntil(run_end);

  // ---- Collect results across connections ----
  RedisExperimentResult result;
  result.offered_krps = config.rate_rps / 1e3;

  RunningStats latency_us;
  LogHistogram latency_hist{0.1, 1e9, 100};
  RunningStats sojourn_us;
  RunningStats request_leg_us;
  RunningStats server_us;
  RunningStats response_leg_us;
  double achieved_rps = 0;
  for (PerConnection& pc : connections) {
    const LancetClient::Results& lancet = pc.client->results();
    latency_us.Merge(lancet.latency_us);
    latency_hist.Merge(lancet.latency_hist);
    sojourn_us.Merge(lancet.sojourn_us);
    request_leg_us.Merge(lancet.request_leg_us);
    server_us.Merge(lancet.server_us);
    response_leg_us.Merge(lancet.response_leg_us);
    achieved_rps += lancet.achieved_rps;
    result.requests_completed += lancet.measured;
  }
  result.comp_request_leg_us = request_leg_us.mean();
  result.comp_server_us = server_us.mean();
  result.comp_response_leg_us = response_leg_us.mean();
  result.achieved_krps = achieved_rps / 1e3;
  result.measured_mean_us = latency_us.mean();
  result.measured_sojourn_us = sojourn_us.mean();
  result.measured_p50_us = latency_hist.Percentile(50);
  result.measured_p99_us = latency_hist.Percentile(99);

  const auto window_est = [&](UnitMode mode) -> std::optional<double> {
    std::vector<E2eEstimate> estimates;
    for (PerConnection& pc : connections) {
      estimates.push_back(pc.collector->EstimateWindow(mode, measure_start, measure_end));
    }
    const E2eEstimate avg = AverageEstimates(estimates.data(), estimates.size());
    if (!avg.latency.has_value()) {
      return std::nullopt;
    }
    return avg.latency->ToMicros();
  };
  if (online_est_us.count() > 0) {
    result.online_est_us = online_est_us.mean();
  }
  result.est_bytes_us = window_est(UnitMode::kBytes);
  result.est_packets_us = window_est(UnitMode::kPackets);
  result.est_syscalls_us = window_est(UnitMode::kSyscalls);

  double hint_sum_us = 0;
  int hint_count = 0;
  double syscall_tput = 0;
  for (PerConnection& pc : connections) {
    const QueueAverages hint_avgs = pc.collector->HintWindow(measure_start, measure_end);
    if (hint_avgs.delay.has_value()) {
      hint_sum_us += hint_avgs.delay->ToMicros();
      ++hint_count;
    }
    syscall_tput +=
        pc.collector->EstimateWindow(UnitMode::kSyscalls, measure_start, measure_end)
            .a_send_throughput;
  }
  if (hint_count > 0) {
    result.est_hints_us = hint_sum_us / hint_count;
  }
  result.est_krps = syscall_tput / 1e3;

  const double window_sec = config.measure.ToSeconds();
  result.client_app_util = (at_end.client_app - at_start.client_app).ToSeconds() / window_sec;
  result.client_softirq_util =
      (at_end.client_softirq - at_start.client_softirq).ToSeconds() / window_sec;
  result.server_app_util = (at_end.server_app - at_start.server_app).ToSeconds() / window_sec;
  result.server_softirq_util =
      (at_end.server_softirq - at_start.server_softirq).ToSeconds() / window_sec;

  uint64_t server_sends = 0;
  for (PerConnection& pc : connections) {
    const TcpEndpoint::Stats& server_stats = pc.conn.b->stats();
    const TcpEndpoint::Stats& client_stats = pc.conn.a->stats();
    result.server_data_segments += server_stats.data_segments_sent;
    result.server_wire_packets += server_stats.wire_packets_sent;
    result.server_nagle_holds += server_stats.nagle_holds;
    server_sends += server_stats.sends;
    result.retransmits += server_stats.retransmits + client_stats.retransmits;
    result.client_retransmits += client_stats.retransmits;
    result.server_retransmits += server_stats.retransmits;
    result.client_delack_fires += client_stats.delack_timer_fires;
    result.server_delack_fires += server_stats.delack_timer_fires;
    result.exchanges += server_stats.exchanges_received;
  }
  result.rx_checksum_drops =
      topo.client_host().nic().rx_checksum_drops() + topo.server_host().nic().rx_checksum_drops();
  result.impair_c2s =
      connections[0].collector->ImpairmentWindow(/*c2s=*/true, measure_start, measure_end);
  result.impair_s2c =
      connections[0].collector->ImpairmentWindow(/*c2s=*/false, measure_start, measure_end);
  result.responses_per_packet =
      result.server_data_segments > 0
          ? static_cast<double>(server_sends) / static_cast<double>(result.server_data_segments)
          : 0.0;
  result.terms_client_bytes = connections[0].collector->WindowAverages(
      /*side_a=*/true, UnitMode::kBytes, measure_start, measure_end);
  result.terms_server_bytes = connections[0].collector->WindowAverages(
      /*side_a=*/false, UnitMode::kBytes, measure_start, measure_end);
  if (config.keep_series) {
    // Series restricted to the measurement window, from connection 0.
    for (auto& entry : connections[0].collector->EstimateSeries(UnitMode::kBytes)) {
      if (entry.first > measure_start && entry.first <= measure_end) {
        result.series_bytes.push_back(std::move(entry));
      }
    }
  }
  result.controller_switches = switches_at_end;
  if (ticks_in_window > 0) {
    result.duty_cycle_on = static_cast<double>(ticks_on) / static_cast<double>(ticks_in_window);
    result.aimd_limit_bytes = limit_sum / static_cast<double>(ticks_in_window);
  }
  result.client_endpoint_stats = connections[0].conn.a->stats();
  result.server_endpoint_stats = connections[0].conn.b->stats();
  if (config.print_endpoint_stats) {
    std::printf("\nPer-endpoint TCP stats (connection 0):\n");
    TcpEndpointStatsTable(
        {{"client", connections[0].conn.a}, {"server", connections[0].conn.b}})
        .Print();
  }
  return result;
}

}  // namespace e2e
