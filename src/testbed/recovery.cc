#include "src/testbed/recovery.h"

#include <functional>
#include <memory>

#include "src/testbed/topology.h"

namespace e2e {

RecoveryResult RunRecoveryExperiment(const RecoveryConfig& config) {
  TopologyConfig topo_config;
  topo_config.link.bandwidth_bps = config.link_bps;
  topo_config.link.propagation = config.propagation;
  topo_config.c2s_impairment = config.c2s_impairment;
  topo_config.s2c_impairment = config.s2c_impairment;
  topo_config.seed = config.seed;
  TwoHostTopology topo(topo_config);
  Simulator& sim = topo.sim();

  TcpConfig tcp;
  tcp.nodelay = true;
  tcp.features = config.features;
  tcp.cc.algorithm = config.cc;
  tcp.cc.ecn = config.cc == CcAlgorithm::kDctcp;
  tcp.e2e_exchange_interval = config.exchange_interval;
  ConnectedPair conn = topo.Connect(1, tcp, tcp);

  // Health graded on the client: its estimator consumes the server's
  // exchange payloads, which ride the (option-crowded) reverse path.
  EstimatorHealth health(config.health, sim.Now());
  conn.a->SetEstimateCallback([&sim, &health](const ConnectionEstimator& est) {
    health.OnExchange(sim.Now(), est.last_verdict());
  });
  if (config.health_tick > Duration::Zero()) {
    const int64_t ticks = config.run.nanos() / config.health_tick.nanos();
    for (int64_t i = 1; i <= ticks; ++i) {
      sim.Schedule(config.health_tick * i, [&sim, &health] { health.Tick(sim.Now()); });
    }
  }

  CpuCore& client_app = topo.client_host().app_core();
  CpuCore& server_app = topo.server_host().app_core();

  uint64_t next_id = 1;
  if (config.workload == RecoveryWorkload::kBulk) {
    // Keep the send buffer full; the writable callback refills it.
    auto pump = std::make_shared<std::function<void()>>();
    *pump = [&conn, &config, &next_id] {
      MessageRecord rec;
      rec.id = next_id;
      while (conn.a->Send(config.bulk_chunk, rec)) {
        rec.id = ++next_id;
      }
    };
    conn.a->SetWritableCallback([&client_app, pump] {
      client_app.SubmitFixed(Duration::Nanos(100), [pump] { (*pump)(); });
    });
    client_app.SubmitFixed(Duration::Nanos(100), [pump] { (*pump)(); });
  } else {
    const int64_t sends = config.run.nanos() / config.paced_interval.nanos();
    for (int64_t i = 0; i < sends; ++i) {
      sim.Schedule(config.paced_interval * i, [&sim, &client_app, &conn, &config, &next_id] {
        (void)sim;
        client_app.SubmitFixed(Duration::Nanos(100), [&conn, &config, &next_id] {
          MessageRecord rec;
          rec.id = next_id++;
          conn.a->Send(config.paced_bytes, rec);
        });
      });
    }
  }

  // Prompt reader: the receive window never binds.
  conn.b->SetReadableCallback([&server_app, &conn] {
    server_app.SubmitFixed(Duration::Nanos(200), [&conn] { conn.b->Recv(); });
  });

  sim.RunFor(config.run);

  const TimePoint end = sim.Now();
  const TcpEndpoint::Stats& cs = conn.a->stats();
  const TcpEndpoint::Stats& ss = conn.b->stats();

  RecoveryResult r;
  r.bytes_delivered = ss.bytes_received;
  const double secs = config.run.ToMicros() / 1e6;
  r.goodput_mbps = secs > 0 ? ss.bytes_received * 8.0 / 1e6 / secs : 0;

  r.retransmits = cs.retransmits;
  r.sack_retransmits = cs.sack_retransmits;
  r.rack_marked_lost = cs.rack_marked_lost;
  r.spurious_loss_reverts = cs.spurious_loss_reverts;
  r.tlp_probes = cs.tlp_probes;
  r.rto_fires = cs.rto_fires;
  r.recovery_events = cs.recovery_events;
  r.recovery_mean_us = cs.recovery_events > 0
                           ? static_cast<double>(cs.recovery_us_total) / cs.recovery_events
                           : 0;
  r.dup_segments_received = ss.dup_segments_received;

  r.srtt_us = conn.a->rtt().srtt().value_or(Duration::Zero()).ToMicros();
  r.min_rtt_us = conn.a->rtt().min_rtt().value_or(Duration::Zero()).ToMicros();
  r.rtt_samples = conn.a->rtt().samples();
  r.rtt_ts_samples = cs.rtt_ts_samples;

  r.sack_blocks_sent = cs.sack_blocks_sent + ss.sack_blocks_sent;
  r.sack_blocks_trimmed = cs.sack_blocks_trimmed + ss.sack_blocks_trimmed;
  r.exchange_deferrals = cs.exchange_deferrals + ss.exchange_deferrals;
  r.ts_omitted = cs.ts_omitted + ss.ts_omitted;
  r.exchanges_sent = cs.exchanges_sent + ss.exchanges_sent;
  r.exchanges_received = cs.exchanges_received + ss.exchanges_received;

  if (const ImpairmentChain* chain = topo.c2s_impairment()) {
    r.c2s_dropped = chain->TotalDropped();
  }
  if (const ImpairmentChain* chain = topo.s2c_impairment()) {
    r.s2c_dropped = chain->TotalDropped();
  }

  r.time_in_full_ms = health.TimeIn(HealthState::kFull, end).ToMicros() / 1000.0;
  r.time_in_local_ms = health.TimeIn(HealthState::kLocalOnly, end).ToMicros() / 1000.0;
  r.time_in_diag_ms = health.TimeIn(HealthState::kDiagAssisted, end).ToMicros() / 1000.0;
  r.time_in_static_ms = health.TimeIn(HealthState::kStatic, end).ToMicros() / 1000.0;
  r.health_demotions = health.counters().demotions;
  return r;
}

}  // namespace e2e
