#include "src/testbed/faults/fault_schedule.h"

#include <algorithm>

namespace e2e {

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kClientStall:
      return "client_stall";
    case FaultKind::kServerStall:
      return "server_stall";
    case FaultKind::kServerCrash:
      return "server_crash";
    case FaultKind::kMetaWithhold:
      return "meta_withhold";
    case FaultKind::kMetaDuplicate:
      return "meta_duplicate";
    case FaultKind::kMetaStaleReplay:
      return "meta_stale_replay";
  }
  return "unknown";
}

FaultSchedule& FaultSchedule::Add(FaultKind kind, TimePoint at, Duration duration) {
  FaultEvent event;
  event.kind = kind;
  event.at = at;
  event.duration = duration;
  events_.push_back(event);
  std::stable_sort(events_.begin(), events_.end(),
                   [](const FaultEvent& a, const FaultEvent& b) { return a.at < b.at; });
  return *this;
}

FaultSchedule& FaultSchedule::Periodic(FaultKind kind, TimePoint start, TimePoint end,
                                       Duration period, Duration duration) {
  for (TimePoint at = start; at < end; at = at + period) {
    Add(kind, at, duration);
  }
  return *this;
}

uint64_t FaultSchedule::CountOf(FaultKind kind) const {
  uint64_t n = 0;
  for (const FaultEvent& event : events_) {
    if (event.kind == kind) {
      ++n;
    }
  }
  return n;
}

}  // namespace e2e
